package x100_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPIDocumented enforces the godoc contract on the public x100
// package: every exported identifier — functions, methods, types, and the
// names inside exported const/var groups — must carry a doc comment (a
// group doc on the enclosing declaration counts for its specs). CI runs
// this test in the docs job, so an undocumented export fails the build.
func TestPublicAPIDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["x100"]
	if !ok {
		t.Fatalf("package x100 not found in %v", pkgs)
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "func", funcName(d))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(n.Pos(), "value", n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

// exportedRecv reports whether a function is package-level or a method on
// an exported receiver type (methods on unexported types are not part of
// the public API surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}
