// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark name carries the paper artifact it reproduces; run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or cmd/x100bench for the formatted renditions at
// larger scale factors.
package x100_test

import (
	"fmt"
	"sync"
	"testing"

	"x100/internal/core"
	"x100/internal/mil"
	"x100/internal/primitives"
	"x100/internal/tpch"
	"x100/internal/trace"
	"x100/internal/volcano"
)

const benchSF = 0.02

var (
	benchOnce sync.Once
	benchDB   *core.Database
)

func getBenchDB(b *testing.B) *core.Database {
	b.Helper()
	benchOnce.Do(func() {
		db, err := tpch.Generate(tpch.Config{SF: benchSF, Seed: 1})
		if err != nil {
			panic(err)
		}
		benchDB = db
	})
	return benchDB
}

// --- Figure 2: branch vs predicated selection across selectivities ---

func benchSelInput() ([]int32, []int32) {
	n := 1 << 16
	in := make([]int32, n)
	r := uint64(42)
	for i := range in {
		r ^= r >> 12
		r ^= r << 25
		r ^= r >> 27
		in[i] = int32(r % 100)
	}
	return in, make([]int32, n)
}

func BenchmarkFig2_SelectBranch(b *testing.B) {
	in, res := benchSelInput()
	for _, sel := range []int32{10, 50, 90} {
		b.Run(fmt.Sprintf("selectivity%d", sel), func(b *testing.B) {
			b.SetBytes(int64(4 * len(in)))
			for i := 0; i < b.N; i++ {
				primitives.SelectLTColValBranch(res, in, sel, nil)
			}
		})
	}
}

func BenchmarkFig2_SelectPredicated(b *testing.B) {
	in, res := benchSelInput()
	for _, sel := range []int32{10, 50, 90} {
		b.Run(fmt.Sprintf("selectivity%d", sel), func(b *testing.B) {
			b.SetBytes(int64(4 * len(in)))
			for i := 0; i < b.N; i++ {
				primitives.SelectLTColVal(res, in, sel, nil)
			}
		})
	}
}

// --- Table 1: Q1 across the four architectures ---

func BenchmarkTable1_Q1_Volcano(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	eng := volcano.New(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Q1_MIL(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	eng := mil.New(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Q1_X100(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(db, plan, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Q1_Hardcoded(b *testing.B) {
	db := getBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpch.HardcodedQ1(db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_Q1_X100Parallel measures the multi-core scan-aggregate
// path (morsel-partitioned scan, parallel partial aggregation) at several
// worker counts; compare against BenchmarkTable1_Q1_X100 for the speedup.
func BenchmarkTable1_Q1_X100Parallel(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism%d", p), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Parallelism = p
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(db, plan, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: profiled tuple-at-a-time Q1 ---

func BenchmarkTable2_Q1_VolcanoProfiled(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := &volcano.Engine{DB: db, Profile: volcano.NewProfile()}
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: MIL statement trace of Q1 ---

func BenchmarkTable3_Q1_MILTraced(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := &mil.Engine{DB: db, Trace: &mil.Trace{}}
		if _, err := eng.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 4: all 22 queries, MIL vs X100 ---

func BenchmarkTable4_MIL(b *testing.B) {
	db := getBenchDB(b)
	eng := mil.New(db)
	for q := 1; q <= tpch.NumQueries; q++ {
		plan, err := tpch.Query(q, benchSF)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Q%02d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable4_X100(b *testing.B) {
	db := getBenchDB(b)
	for q := 1; q <= tpch.NumQueries; q++ {
		plan, err := tpch.Query(q, benchSF)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Q%02d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(db, plan, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 5: traced X100 Q1 ---

func BenchmarkTable5_Q1_X100Traced(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.Tracer = trace.New()
		if _, err := core.Run(db, plan, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10: Q1 vs vector size ---

func BenchmarkFig10_VectorSize(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 16, 256, 1024, 16 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.BatchSize = size
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(db, plan, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 4.2 ablation: compound primitives ---

func BenchmarkAblation_MahalanobisFused(b *testing.B) {
	n := 1 << 16
	a := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	res := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i], c[i], d[i] = float64(i%97), float64(i%89), float64(i%83)+1
	}
	b.SetBytes(int64(8 * 4 * n))
	for i := 0; i < b.N; i++ {
		primitives.FusedMahalanobis(res, a, c, d, nil)
	}
}

func BenchmarkAblation_MahalanobisUnfused(b *testing.B) {
	n := 1 << 16
	a := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	res := make([]float64, n)
	t1 := make([]float64, n)
	t2 := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i], c[i], d[i] = float64(i%97), float64(i%89), float64(i%83)+1
	}
	b.SetBytes(int64(8 * 4 * n))
	for i := 0; i < b.N; i++ {
		primitives.MahalanobisUnfused(res, a, c, d, t1, t2, nil)
	}
}

func BenchmarkAblation_Q1Fused(b *testing.B) {
	benchQ1Fusion(b, true)
}

func BenchmarkAblation_Q1Unfused(b *testing.B) {
	benchQ1Fusion(b, false)
}

func benchQ1Fusion(b *testing.B, fuse bool) {
	db := getBenchDB(b)
	plan, err := tpch.Query(1, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Fuse = fuse
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(db, plan, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 4.3 ablation: summary-index pruning ---

func BenchmarkAblation_SummaryIndex(b *testing.B) {
	db := getBenchDB(b)
	plan, err := tpch.Query(6, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.NoSummaryIndex = disabled
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(db, plan, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
