package x100_test

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"x100"
)

var (
	parDBOnce sync.Once
	parDB     *x100.DB
	parDBErr  error
)

func parallelTPCH(t *testing.T) *x100.DB {
	t.Helper()
	parDBOnce.Do(func() { parDB, parDBErr = x100.GenerateTPCH(0.01) })
	if parDBErr != nil {
		t.Fatal(parDBErr)
	}
	return parDB
}

// sameRowSets compares two results as row multisets: bit-exact when
// possible, otherwise paired by non-float columns with relative 1e-9
// tolerance on floats (parallel aggregation sums in a different order).
func sameRowSets(t *testing.T, want, got *x100.Result) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("row count %d, want %d", got.NumRows(), want.NumRows())
	}
	key := func(row []any, withFloats bool) string {
		s := ""
		for _, v := range row {
			if _, ok := v.(float64); ok && !withFloats {
				continue
			}
			s += fmt.Sprintf("|%v", v)
		}
		return s
	}
	exact := func(res *x100.Result) []string {
		keys := make([]string, res.NumRows())
		for i := range keys {
			keys[i] = key(res.Row(i), true)
		}
		sort.Strings(keys)
		return keys
	}
	ew, eg := exact(want), exact(got)
	same := true
	for i := range ew {
		if ew[i] != eg[i] {
			same = false
			break
		}
	}
	if same {
		return
	}
	index := func(res *x100.Result) map[string][]any {
		m := make(map[string][]any, res.NumRows())
		for i := 0; i < res.NumRows(); i++ {
			row := res.Row(i)
			k := key(row, false)
			if _, dup := m[k]; dup {
				t.Fatalf("non-float key %q not unique", k)
			}
			m[k] = row
		}
		return m
	}
	mw, mg := index(want), index(got)
	for k, wrow := range mw {
		grow, ok := mg[k]
		if !ok {
			t.Fatalf("row %q missing from parallel result", k)
		}
		for c := range wrow {
			wf, wok := wrow[c].(float64)
			gf, gok := grow[c].(float64)
			if wok && gok {
				if diff := math.Abs(wf - gf); diff > 1e-9*math.Max(1, math.Abs(wf)) {
					t.Fatalf("row %q col %d: %v != %v", k, c, gf, wf)
				}
				continue
			}
			if wrow[c] != grow[c] {
				t.Fatalf("row %q col %d: %v != %v", k, c, grow[c], wrow[c])
			}
		}
	}
}

func execLevels(t *testing.T, db *x100.DB, plan x100.Node) {
	t.Helper()
	want, err := db.Exec(plan, x100.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		t.Run(fmt.Sprintf("parallelism%d", p), func(t *testing.T) {
			got, err := db.Exec(plan, x100.WithParallelism(p))
			if err != nil {
				t.Fatal(err)
			}
			sameRowSets(t, want, got)
		})
	}
}

// TestParallelQ1 runs the paper's flagship scan-select-aggregate query at
// Parallelism 1, 2 and 8 and requires identical results.
func TestParallelQ1(t *testing.T) {
	db := parallelTPCH(t)
	plan, err := x100.TPCHQuery(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	execLevels(t, db, plan)
}

// TestParallelJoinQuery exercises the shared-build/concurrent-probe hash
// join through the public API: lineitem (partitioned probe) against orders
// (shared build), aggregated above the exchange.
func TestParallelJoinQuery(t *testing.T) {
	db := parallelTPCH(t)
	q := x100.ScanT("lineitem", "l_orderkey", "l_extendedprice").
		Join(
			x100.ScanT("orders", "o_orderkey", "o_orderpriority"),
			x100.On("l_orderkey", "o_orderkey"),
		).
		AggrBy(
			[]x100.Named{x100.As("priority", x100.Col("o_orderpriority"))},
			x100.SumA("revenue", x100.Col("l_extendedprice")),
			x100.CountA("n"),
		)
	execLevels(t, db, q.Node())
}

// TestParallelEmptyTableAPI: parallel execution over a zero-row table.
func TestParallelEmptyTableAPI(t *testing.T) {
	db := x100.NewDB()
	err := db.CreateTable("nothing",
		x100.ColumnData{Name: "a", Type: x100.Int64T, Data: []int64{}},
		x100.ColumnData{Name: "b", Type: x100.Float64T, Data: []float64{}},
	)
	if err != nil {
		t.Fatal(err)
	}
	q := x100.ScanT("nothing", "a", "b").
		Where(x100.Gt(x100.Col("a"), x100.I(0))).
		AggrBy(nil, x100.SumA("s", x100.Col("b")), x100.CountA("n"))
	execLevels(t, db, q.Node())
}

// TestParallelTraced: the per-worker trace collectors must merge into the
// query tracer without racing.
func TestParallelTraced(t *testing.T) {
	db := parallelTPCH(t)
	plan, err := x100.TPCHQuery(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tr := x100.NewTracer()
	if _, err := db.Exec(plan, x100.WithParallelism(4), x100.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	prims := tr.Primitives()
	if len(prims) == 0 {
		t.Fatal("no primitive stats collected from parallel workers")
	}
	var tuples int64
	for _, s := range prims {
		tuples += s.Tuples
	}
	if tuples == 0 {
		t.Fatal("merged trace has zero tuples")
	}
}
