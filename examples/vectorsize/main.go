// vectorsize demonstrates Figure 10 of the paper interactively: the same
// query run with vector sizes from 1 (tuple-at-a-time interpretation
// overhead) through the cache-resident sweet spot (~1K) to table-sized
// vectors (full materialization, MIL behavior).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"x100"
)

func main() {
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	flag.Parse()

	db, err := x100.GenerateTPCH(*sf)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := x100.TPCHQuery(1, *sf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H Q1 at SF=%g, varying vector size (paper Figure 10):\n\n", *sf)
	fmt.Printf("%12s %12s %16s\n", "vector size", "seconds", "vs best")
	type point struct {
		size int
		d    time.Duration
	}
	var pts []point
	best := time.Duration(1<<62 - 1)
	for _, size := range []int{1, 4, 16, 64, 256, 1024, 4096, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		t0 := time.Now()
		if _, err := db.Exec(plan, x100.WithVectorSize(size)); err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		pts = append(pts, point{size, d})
		if d < best {
			best = d
		}
	}
	for _, p := range pts {
		fmt.Printf("%12d %12.4f %15.1fx\n", p.size, p.d.Seconds(), p.d.Seconds()/best.Seconds())
	}
	fmt.Println("\nThe sweet spot sits where all vectors of the query fit the CPU caches;")
	fmt.Println("size 1 pays interpretation overhead per tuple, table-sized vectors pay")
	fmt.Println("materialization bandwidth — the two architectures the paper improves on.")
}
