// retail is a domain-specific example: a star-schema point-of-sale dataset
// (stores dimension + receipts fact table) analyzed with joins, CASE
// expressions, LIKE filters and top-N — the decision-support workload class
// the paper's introduction motivates.
package main

import (
	"fmt"
	"log"

	"x100"
)

func main() {
	db := buildData()

	// 1. Revenue and basket size per region, weekends vs weekdays.
	q1 := x100.ScanT("receipts", "store_id", "amount", "items", "weekday").
		Join(x100.ScanT("stores", "s_id", "region", "format"), x100.On("store_id", "s_id")).
		Map(
			x100.Keep("region"),
			x100.As("wknd_rev", x100.Case(x100.Ge(x100.Col("weekday"), x100.I32(5)), x100.Col("amount"), x100.F(0))),
			x100.As("week_rev", x100.Case(x100.Lt(x100.Col("weekday"), x100.I32(5)), x100.Col("amount"), x100.F(0))),
			x100.As("items", x100.Cast(x100.Float64T, x100.Col("items"))),
		).
		AggrBy(
			[]x100.Named{x100.Keep("region")},
			x100.SumA("weekend_revenue", x100.Col("wknd_rev")),
			x100.SumA("weekday_revenue", x100.Col("week_rev")),
			x100.AvgA("avg_items", x100.Col("items")),
			x100.CountA("receipts"),
		).
		OrderBy(x100.Asc(x100.Col("region")))
	mustPrint(db, "revenue per region, weekend vs weekday", q1)

	// 2. Top 5 hypermarkets by average ticket.
	q2 := x100.ScanT("receipts", "store_id", "amount").
		Join(x100.ScanT("stores", "s_id", "name", "format"), x100.On("store_id", "s_id")).
		Where(x100.Like(x100.Col("format"), "HYPER%")).
		AggrBy(
			[]x100.Named{x100.Keep("name")},
			x100.AvgA("avg_ticket", x100.Col("amount")),
			x100.CountA("n"),
		).
		Top(5, x100.Desc(x100.Col("avg_ticket")))
	mustPrint(db, "top 5 hypermarkets by average ticket", q2)

	// 3. Stores with no weekend sales at all (anti join).
	weekend := x100.ScanT("receipts", "store_id", "weekday").
		Where(x100.Ge(x100.Col("weekday"), x100.I32(5)))
	q3 := x100.ScanT("stores", "s_id", "name", "region").
		AntiJoin(weekend, x100.On("s_id", "store_id")).
		OrderBy(x100.Asc(x100.Col("name")))
	mustPrint(db, "stores with no weekend sales", q3)
}

func mustPrint(db *x100.DB, title string, q x100.Q) {
	res, err := db.Exec(q.Node())
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("== %s ==\n%s\n", title, res.Format(10))
}

func buildData() *x100.DB {
	db := x100.NewDB()
	regions := []string{"NORTH", "SOUTH", "EAST", "WEST"}
	formats := []string{"HYPERMARKET", "SUPERMARKET", "CONVENIENCE"}
	nStores := 40
	sID := make([]int32, nStores)
	sName := make([]string, nStores)
	sRegion := make([]string, nStores)
	sFormat := make([]string, nStores)
	for i := range sID {
		sID[i] = int32(i + 1)
		sName[i] = fmt.Sprintf("Store#%03d", i+1)
		sRegion[i] = regions[i%len(regions)]
		sFormat[i] = formats[i%len(formats)]
	}
	if err := db.CreateTable("stores",
		x100.ColumnData{Name: "s_id", Type: x100.Int32T, Data: sID},
		x100.ColumnData{Name: "name", Type: x100.StringT, Data: sName},
		x100.ColumnData{Name: "region", Type: x100.StringT, Data: sRegion, Enum: true},
		x100.ColumnData{Name: "format", Type: x100.StringT, Data: sFormat, Enum: true},
	); err != nil {
		log.Fatal(err)
	}

	n := 200000
	rStore := make([]int32, n)
	rAmount := make([]float64, n)
	rItems := make([]int64, n)
	rDay := make([]int32, n)
	seed := uint64(99)
	next := func() uint64 {
		seed ^= seed >> 12
		seed ^= seed << 25
		seed ^= seed >> 27
		return seed * 0x2545F4914F6CDD1D
	}
	for i := 0; i < n; i++ {
		// Store #1..#8 never sell on weekends (exercises the anti join).
		store := int(next()%uint64(nStores)) + 1
		day := int32(next() % 7)
		if store <= 8 && day >= 5 {
			day = int32(next() % 5)
		}
		rStore[i] = int32(store)
		rItems[i] = int64(next()%20 + 1)
		rAmount[i] = float64(next()%10000) / 100 * float64(rItems[i]) / 4
		rDay[i] = day
	}
	if err := db.CreateTable("receipts",
		x100.ColumnData{Name: "store_id", Type: x100.Int32T, Data: rStore},
		x100.ColumnData{Name: "amount", Type: x100.Float64T, Data: rAmount},
		x100.ColumnData{Name: "items", Type: x100.Int64T, Data: rItems},
		x100.ColumnData{Name: "weekday", Type: x100.Int32T, Data: rDay},
	); err != nil {
		log.Fatal(err)
	}
	return db
}
