// Quickstart: create a table, run a vectorized select/aggregate query via
// the fluent builder and via the paper's textual algebra, and inspect the
// plan.
package main

import (
	"fmt"
	"log"

	"x100"
)

func main() {
	db := x100.NewDB()

	// A small sales table, stored column-wise. The city column is
	// enumeration-compressed (single-byte codes + dictionary).
	n := 10000
	amounts := make([]float64, n)
	qty := make([]int64, n)
	cities := make([]string, n)
	names := []string{"Amsterdam", "Rotterdam", "Utrecht", "Eindhoven"}
	for i := 0; i < n; i++ {
		amounts[i] = float64(i%500) * 1.25
		qty[i] = int64(i%7 + 1)
		cities[i] = names[i%len(names)]
	}
	err := db.CreateTable("sales",
		x100.ColumnData{Name: "amount", Type: x100.Float64T, Data: amounts},
		x100.ColumnData{Name: "qty", Type: x100.Int64T, Data: qty},
		x100.ColumnData{Name: "city", Type: x100.StringT, Data: cities, Enum: true},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Fluent builder: revenue per city for large sales.
	q := x100.ScanT("sales", "amount", "qty", "city").
		Where(x100.Gt(x100.Col("amount"), x100.F(100))).
		AggrBy(
			[]x100.Named{x100.Keep("city")},
			x100.SumA("revenue", x100.Mul(x100.Col("amount"), x100.Cast(x100.Float64T, x100.Col("qty")))),
			x100.CountA("n"),
		).
		OrderBy(x100.Desc(x100.Col("revenue")))

	fmt.Println("plan:")
	fmt.Print(x100.Explain(q.Node()))

	res, err := db.Exec(q.Node())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult:")
	fmt.Print(res.Format(10))

	// The same query in the paper's textual X100 algebra.
	res2, err := db.ExecText(`
		Order(
		  Aggr(
		    Select(Scan(sales), >(amount, 100.0)),
		    [city],
		    [revenue = sum(*(amount, flt(qty))), n = count()]),
		  [revenue DESC])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame query from algebra text:")
	fmt.Print(res2.Format(10))
}
