// updates demonstrates the paper's Figure 8 update scheme: immutable
// vertical fragments with a deletion list and insert delta columns, scans
// that merge deltas transparently, and reorganization once the deltas
// exceed a threshold.
package main

import (
	"fmt"
	"log"

	"x100"
)

func main() {
	db := x100.NewDB()
	if err := db.CreateTable("inventory",
		x100.ColumnData{Name: "sku", Type: x100.Int32T, Data: []int32{1, 2, 3, 4, 5}},
		x100.ColumnData{Name: "item", Type: x100.StringT,
			Data: []string{"bolt", "nut", "washer", "screw", "nail"}, Enum: true},
		x100.ColumnData{Name: "stock", Type: x100.Int64T, Data: []int64{100, 250, 75, 310, 42}},
	); err != nil {
		log.Fatal(err)
	}

	show := func(title string) {
		res, err := db.Exec(x100.ScanT("inventory").Node())
		if err != nil {
			log.Fatal(err)
		}
		frac, _ := db.DeltaFraction("inventory")
		fmt.Printf("== %s (delta fraction %.0f%%) ==\n%s\n", title, 100*frac, res.Format(0))
	}
	show("initial")

	// Deletes go to the deletion list; the column fragments stay untouched.
	if err := db.Delete("inventory", 2); err != nil { // washer
		log.Fatal(err)
	}
	// Inserts append to uncompressed delta columns.
	if err := db.Insert("inventory", int32(6), "rivet", int64(500)); err != nil {
		log.Fatal(err)
	}
	// An update is a delete plus an insert (Figure 8).
	if err := db.Update("inventory", 0, int32(1), "bolt", int64(95)); err != nil {
		log.Fatal(err)
	}
	show("after delete(washer), insert(rivet), update(bolt)")

	// Queries run on the merged view, including aggregation.
	res, err := db.Exec(
		x100.ScanT("inventory", "stock").
			AggrBy(nil, x100.SumA("total_stock", x100.Col("stock")), x100.CountA("items")).
			Node())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== totals over merged view ==\n%s\n", res.Format(0))

	// Reorganize absorbs the deltas into fresh immutable fragments.
	if err := db.Reorganize("inventory"); err != nil {
		log.Fatal(err)
	}
	show("after reorganize")
}
