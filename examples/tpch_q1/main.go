// tpch_q1 runs the paper's flagship microbenchmark — TPC-H Query 1 — on
// all three execution architectures and prints the per-primitive trace of
// the vectorized run (the Table 5 experience at laptop scale).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"x100"
)

func main() {
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("generating TPC-H at SF=%g ...\n", *sf)
	db, err := x100.GenerateTPCH(*sf)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := x100.TPCHQuery(1, *sf)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, opts ...x100.ExecOption) *x100.Result {
		t0 := time.Now()
		res, err := db.Exec(plan, opts...)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-28s %10.4fs\n", name, time.Since(t0).Seconds())
		return res
	}

	fmt.Println("\nTPC-H Query 1:")
	run("Volcano (tuple-at-a-time)", x100.WithEngine(x100.Volcano))
	run("MIL (column-at-a-time)", x100.WithEngine(x100.MIL))
	res := run("X100 (vectorized)", x100.WithEngine(x100.Vectorized))

	fmt.Println("\nresult:")
	fmt.Print(res.Format(10))

	tr := x100.NewTracer()
	if _, err := db.Exec(plan, x100.WithTracer(tr)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvectorized primitive trace (paper Table 5 format):")
	fmt.Print(tr.Render())
}
