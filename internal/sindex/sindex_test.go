package sindex

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBoundsOnSorted(t *testing.T) {
	col := make([]int32, 1000)
	for i := range col {
		col[i] = int32(i)
	}
	s := BuildSummary(col, 100)
	lo, hi := s.Bounds(250, true, 349, true)
	if lo > 250 || hi < 350 {
		t.Fatalf("bounds [%d,%d) exclude matches", lo, hi)
	}
	// Bounds must be tight to within a granule on sorted data.
	if lo < 200 || hi > 400 {
		t.Fatalf("bounds [%d,%d) too loose", lo, hi)
	}
	// One-sided predicates.
	lo, hi = s.Bounds(900, true, 0, false)
	if lo < 800 || hi != 1000 {
		t.Fatalf(">=900: [%d,%d)", lo, hi)
	}
	lo, hi = s.Bounds(0, false, 99, true)
	if lo != 0 || hi > 200 {
		t.Fatalf("<=99: [%d,%d)", lo, hi)
	}
	// Empty range clamps sanely.
	lo, hi = s.Bounds(5000, true, 6000, true)
	if lo != hi {
		t.Fatalf("no-match range should be empty, got [%d,%d)", lo, hi)
	}
}

func TestSummaryEmptyAndSmall(t *testing.T) {
	s := BuildSummary([]int32{}, 10)
	lo, hi := s.Bounds(1, true, 2, true)
	if lo != 0 || hi != 0 {
		t.Fatal("empty column")
	}
	s2 := BuildSummary([]float64{3.5}, 10)
	lo, hi = s2.Bounds(0, false, 10, true)
	if lo != 0 || hi != 1 {
		t.Fatalf("single value: [%d,%d)", lo, hi)
	}
}

// Property: bounds are sound for arbitrary (unsorted) data — every row
// matching lo <= v <= hi lies inside the returned range.
func TestSummarySoundness(t *testing.T) {
	f := func(col []int32, a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		s := BuildSummary(col, 4)
		lo, hi := s.Bounds(a, true, b, true)
		for i, v := range col {
			if v >= a && v <= b {
				if i < lo || i >= hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinIndex(t *testing.T) {
	refKey := []int32{100, 200, 300}
	fk := []int32{200, 100, 300, 200}
	ji, err := BuildJoinIndex("fact", "dim", fk, refKey)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 0, 2, 1}
	for i := range want {
		if ji.RowIDs[i] != want[i] {
			t.Fatalf("rowids: %v", ji.RowIDs)
		}
	}
	if _, err := BuildJoinIndex("f", "d", []int32{999}, refKey); err == nil {
		t.Fatal("dangling fk must fail")
	}
	if _, err := BuildJoinIndex("f", "d", fk, []int32{1, 1}); err == nil {
		t.Fatal("duplicate ref key must fail")
	}
}

func TestRangeIndex(t *testing.T) {
	// lineitem-style: clustered referencing rows 0..5 over 3 referenced rows.
	ji := &JoinIndex{From: "lineitem", To: "orders", RowIDs: []int32{0, 0, 1, 2, 2, 2}}
	ri, err := BuildRangeIndex(ji, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ ref, lo, hi int32 }{{0, 0, 2}, {1, 2, 3}, {2, 3, 6}}
	for _, c := range cases {
		lo, hi := ri.Range(c.ref)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("range(%d) = [%d,%d)", c.ref, lo, hi)
		}
	}
	// Gaps: referenced row with no referencing rows.
	ji2 := &JoinIndex{RowIDs: []int32{0, 2}}
	ri2, err := BuildRangeIndex(ji2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := ri2.Range(1); lo != hi {
		t.Fatalf("empty range: [%d,%d)", lo, hi)
	}
	// Unclustered input is rejected.
	if _, err := BuildRangeIndex(&JoinIndex{RowIDs: []int32{1, 0}}, 2); err == nil {
		t.Fatal("unclustered must fail")
	}
}

// Property: for a clustered join index, every referencing row appears in
// exactly the range of its referenced row.
func TestRangeIndexProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) == 0 || len(counts) > 50 {
			return true
		}
		var rows []int32
		for ref, c := range counts {
			for j := 0; j < int(c%5); j++ {
				rows = append(rows, int32(ref))
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		ji := &JoinIndex{RowIDs: rows}
		ri, err := BuildRangeIndex(ji, len(counts))
		if err != nil {
			return false
		}
		for i, ref := range rows {
			lo, hi := ri.Range(ref)
			if int32(i) < lo || int32(i) >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
