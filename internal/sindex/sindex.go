// Package sindex implements the two index structures of Section 4.3/5 of
// the paper:
//
//   - Summary indices: coarse-granularity sparse indices over (almost)
//     sorted columns. Every granule records the running maximum of the
//     column so far and the reversely running minimum from that point on.
//     Range predicates use them to derive #rowId bounds without touching
//     the column. Because vertical fragments are immutable, these indices
//     need no maintenance.
//
//   - Join indices over foreign-key paths: for each row of the referencing
//     table, the #rowId of the matching row in the referenced table
//     (Fetch1Join input); and the inverse — for each referenced row, the
//     contiguous [start,end) range of referencing rows when the referencing
//     table is clustered (FetchNJoin input).
package sindex

import (
	"fmt"

	"x100/internal/primitives"
)

// DefaultGranule is the default summary-index granularity (the paper's
// default size is 1000 entries taken at fixed intervals).
const DefaultGranule = 1024

// Summary is a sparse min/max index over one numeric column.
type Summary[T primitives.Ordered] struct {
	Granule int
	N       int
	// RunMax[i] = max(col[0 : i*Granule]); RunMax[0] is unused.
	RunMax []T
	// RevMin[i] = min(col[i*Granule : N]).
	RevMin []T
}

// BuildSummary scans the column once and builds the index.
func BuildSummary[T primitives.Ordered](col []T, granule int) *Summary[T] {
	if granule <= 0 {
		granule = DefaultGranule
	}
	n := len(col)
	ng := (n + granule - 1) / granule
	s := &Summary[T]{Granule: granule, N: n, RunMax: make([]T, ng+1), RevMin: make([]T, ng+1)}
	if n == 0 {
		return s
	}
	// Forward pass: running maxima at granule boundaries.
	var runMax T
	for g := 0; g < ng; g++ {
		lo, hi := g*granule, min((g+1)*granule, n)
		for i := lo; i < hi; i++ {
			if i == 0 || col[i] > runMax {
				runMax = col[i]
			}
		}
		s.RunMax[g+1] = runMax
	}
	// Backward pass: reverse running minima from each boundary.
	var revMin T
	for g := ng - 1; g >= 0; g-- {
		lo, hi := g*granule, min((g+1)*granule, n)
		for i := hi - 1; i >= lo; i-- {
			if g == ng-1 && i == hi-1 {
				revMin = col[i]
			} else if col[i] < revMin {
				revMin = col[i]
			}
		}
		s.RevMin[g] = revMin
	}
	return s
}

// Bounds returns a conservative row id range [lo, hi) outside of which no
// row can satisfy lo <= col[row] <= hi. Pass hasLo/hasHi=false for
// one-sided predicates. The bounds are sound for any column content and
// tight for clustered (almost sorted) columns.
func (s *Summary[T]) Bounds(loVal T, hasLo bool, hiVal T, hasHi bool) (lo, hi int) {
	lo, hi = 0, s.N
	if s.N == 0 {
		return 0, 0
	}
	ng := (s.N + s.Granule - 1) / s.Granule
	if hasLo {
		// Rows in granules whose running max is still < loVal cannot match.
		g := 0
		for g < ng && s.RunMax[g+1] < loVal {
			g++
		}
		lo = g * s.Granule
	}
	if hasHi {
		// Rows from the first granule whose reverse min is > hiVal onwards
		// cannot match.
		g := ng
		for g > 0 && s.RevMin[g-1] > hiVal {
			g--
		}
		hi = g * s.Granule
	}
	if lo > s.N {
		lo = s.N
	}
	if hi > s.N {
		hi = s.N
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// PruneFragments derives a conservative row id range [lo, hi) from
// per-fragment min/max bounds — the chunk-granularity analogue of
// Summary.Bounds for disk-backed columns whose ColumnBM chunks record
// their value range. starts has one entry per fragment plus the total row
// count; fragments with ok[i]==false have unknown bounds and are assumed
// to match. Because a scan range is contiguous, only a non-matching prefix
// and suffix can be pruned; interior gaps still pass through the full
// predicate downstream.
func PruneFragments[T primitives.Ordered](starts []int, mins, maxs []T, ok []bool, loVal T, hasLo bool, hiVal T, hasHi bool) (lo, hi int) {
	nf := len(mins)
	cannotMatch := func(i int) bool {
		return ok[i] && ((hasLo && maxs[i] < loVal) || (hasHi && mins[i] > hiVal))
	}
	first := 0
	for first < nf && cannotMatch(first) {
		first++
	}
	last := nf
	for last > first && cannotMatch(last-1) {
		last--
	}
	return starts[first], starts[last]
}

// JoinIndex maps each row of the referencing (fact) table to the #rowId of
// its match in the referenced (dimension) table. It is the input of
// Fetch1Join.
type JoinIndex struct {
	From, To string // table names, for the catalog
	RowIDs   []int32
}

// BuildJoinIndex resolves foreign keys to referenced row ids given the
// referenced table's key column. Keys must be unique in ref.
func BuildJoinIndex[K comparable](from, to string, fk []K, refKey []K) (*JoinIndex, error) {
	pos := make(map[K]int32, len(refKey))
	for i, k := range refKey {
		if _, dup := pos[k]; dup {
			return nil, fmt.Errorf("sindex: duplicate key %v in referenced table %s", k, to)
		}
		pos[k] = int32(i)
	}
	ids := make([]int32, len(fk))
	for i, k := range fk {
		p, ok := pos[k]
		if !ok {
			return nil, fmt.Errorf("sindex: foreign key %v from %s has no match in %s", k, from, to)
		}
		ids[i] = p
	}
	return &JoinIndex{From: from, To: to, RowIDs: ids}, nil
}

// RangeIndex is the inverse join index for clustered tables: referencing
// rows of referenced row r occupy [Starts[r], Starts[r+1]). It is the input
// of FetchNJoin (e.g. orders -> lineitem when lineitem is clustered by
// order).
type RangeIndex struct {
	From, To string
	Starts   []int32
}

// BuildRangeIndex inverts a join index, requiring the referencing rows of
// each referenced row to be contiguous and in referenced-row order (i.e. the
// fact table is clustered with the dimension, as the paper keeps lineitem
// clustered with orders).
func BuildRangeIndex(ji *JoinIndex, refN int) (*RangeIndex, error) {
	starts := make([]int32, refN+1)
	prev := int32(-1)
	for i, r := range ji.RowIDs {
		if r < prev {
			return nil, fmt.Errorf("sindex: table %s is not clustered with %s at row %d", ji.From, ji.To, i)
		}
		if r != prev {
			for x := prev + 1; x <= r; x++ {
				starts[x] = int32(i)
			}
			prev = r
		}
	}
	for x := prev + 1; x <= int32(refN); x++ {
		starts[x] = int32(len(ji.RowIDs))
	}
	return &RangeIndex{From: ji.From, To: ji.To, Starts: starts}, nil
}

// Range returns the referencing row range of referenced row r.
func (ri *RangeIndex) Range(r int32) (lo, hi int32) {
	return ri.Starts[r], ri.Starts[r+1]
}
