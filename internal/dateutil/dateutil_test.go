package dateutil

import (
	"testing"
	"testing/quick"
)

func TestKnownDates(t *testing.T) {
	cases := []struct {
		s    string
		days int32
	}{
		{"1970-01-01", 0},
		{"1970-01-02", 1},
		{"1969-12-31", -1},
		{"2000-03-01", 11017},
		{"1998-09-02", 10471},
		{"1992-01-01", 8035},
	}
	for _, c := range cases {
		got, err := Parse(c.s)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.days {
			t.Errorf("%s: %d, want %d", c.s, got, c.days)
		}
		if Format(c.days) != c.s {
			t.Errorf("format(%d) = %s, want %s", c.days, Format(c.days), c.s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(d int32) bool {
		d = d % 200000 // stay within a few hundred millennia
		y, m, day := CivilFromDays(d)
		return DaysFromCivil(y, m, day) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYearMonth(t *testing.T) {
	d := MustParse("1995-06-17")
	if Year(d) != 1995 || Month(d) != 6 {
		t.Fatalf("year/month of %d", d)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "1995-13-01", "1995-01-45", "1995/01/01"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("%q should fail", s)
		}
	}
}

func TestAddMonthsClamping(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"1993-01-31", 1, "1993-02-28"},
		{"1996-01-31", 1, "1996-02-29"}, // leap year
		{"1995-12-15", 1, "1996-01-15"},
		{"1995-01-15", -1, "1994-12-15"},
		{"1995-03-31", 3, "1995-06-30"},
	}
	for _, c := range cases {
		got := AddMonths(MustParse(c.in), c.n)
		if Format(got) != c.want {
			t.Errorf("%s + %d months = %s, want %s", c.in, c.n, Format(got), c.want)
		}
	}
	if Format(AddYears(MustParse("1992-02-29"), 1)) != "1993-02-28" {
		t.Error("leap-day year shift")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not-a-date")
}
