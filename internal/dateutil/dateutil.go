// Package dateutil converts between civil dates and day numbers since the
// Unix epoch (1970-01-01). Dates are stored in columns as int32 day numbers
// (the paper stores dates as integers and uses summary indices over them),
// so the engines only ever compare integers; these helpers are used at plan
// construction, data generation and result rendering time.
package dateutil

import "fmt"

// DaysFromCivil converts a proleptic Gregorian calendar date to the number
// of days since 1970-01-01 (Howard Hinnant's algorithm).
func DaysFromCivil(y, m, d int) int32 {
	if m <= 2 {
		y--
	}
	var era int
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return int32(era*146097 + doe - 719468)
}

// CivilFromDays converts a day number since 1970-01-01 back to (y, m, d).
func CivilFromDays(z int32) (y, m, d int) {
	zz := int(z) + 719468
	var era int
	if zz >= 0 {
		era = zz / 146097
	} else {
		era = (zz - 146096) / 146097
	}
	doe := zz - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y = yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = doy - (153*mp+2)/5 + 1
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return y, m, d
}

// Year returns the calendar year of a day number.
func Year(z int32) int32 {
	y, _, _ := CivilFromDays(z)
	return int32(y)
}

// Month returns the calendar month (1-12) of a day number.
func Month(z int32) int32 {
	_, m, _ := CivilFromDays(z)
	return int32(m)
}

// Parse converts a "YYYY-MM-DD" literal into a day number.
func Parse(s string) (int32, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("dateutil: bad date %q: %w", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("dateutil: bad date %q", s)
	}
	return DaysFromCivil(y, m, d), nil
}

// MustParse is Parse for literals known to be valid (plan constants).
func MustParse(s string) int32 {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Format renders a day number as "YYYY-MM-DD".
func Format(z int32) string {
	y, m, d := CivilFromDays(z)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// AddMonths shifts a day number by n calendar months, clamping the day of
// month (SQL interval semantics: 1993-01-31 + 1 month = 1993-02-28).
func AddMonths(z int32, n int) int32 {
	y, m, d := CivilFromDays(z)
	total := y*12 + (m - 1) + n
	ny, nm := total/12, total%12+1
	if nm < 1 {
		nm += 12
		ny--
	}
	if dim := daysInMonth(ny, nm); d > dim {
		d = dim
	}
	return DaysFromCivil(ny, nm, d)
}

// AddYears shifts a day number by n years with day clamping.
func AddYears(z int32, n int) int32 { return AddMonths(z, 12*n) }

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if (y%4 == 0 && y%100 != 0) || y%400 == 0 {
			return 29
		}
		return 28
	}
}
