package mil

import (
	"strings"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/core"
	"x100/internal/expr"
	"x100/internal/vector"
)

func milDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	tab := colstore.NewTable("t")
	if err := tab.AddColumn("a", vector.Float64, []float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("g", []string{"x", "y", "x", "y", "x", "y"}); err != nil {
		t.Fatal(err)
	}
	db.AddTable(tab)
	return db
}

func TestMILSelectMaterializesJoins(t *testing.T) {
	db := milDB(t)
	tr := &Trace{}
	eng := &Engine{DB: db, Trace: tr}
	plan := algebra.NewSelect(algebra.NewScan("t", "a", "g"),
		expr.GTE(expr.C("a"), expr.Float(3)))
	res, err := eng.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	rendered := tr.Render()
	// Table 3 pattern: a select statement followed by positional joins for
	// each materialized column, plus the enum decode.
	for _, want := range []string{"select(", "join(oids,a)", "join(oids,g)", "decode(t.g)", "TOTAL"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("trace missing %q:\n%s", want, rendered)
		}
	}
	// Every statement accounts bytes.
	for _, s := range tr.Statements {
		if s.Text == "" || s.Nanos < 0 {
			t.Fatalf("bad statement %+v", s)
		}
	}
}

func TestMILExpressionsMaterializeIntermediates(t *testing.T) {
	db := milDB(t)
	tr := &Trace{}
	eng := &Engine{DB: db, Trace: tr}
	plan := algebra.NewProject(algebra.NewScan("t", "a"),
		algebra.NE("out", expr.MulE(expr.SubE(expr.Float(1), expr.C("a")), expr.C("a"))))
	res, err := eng.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 {
		t.Fatal("rows")
	}
	// Two multiplex statements: [-] then [*]; no fusion in MIL.
	var mapStmts int
	for _, s := range tr.Statements {
		if strings.Contains(s.Text, ":= [-]") || strings.Contains(s.Text, ":= [*]") {
			mapStmts++
			if s.OutBytes != 6*8 {
				t.Fatalf("intermediate not fully materialized: %+v", s)
			}
		}
	}
	if mapStmts != 2 {
		t.Fatalf("map statements: %d", mapStmts)
	}
}

func TestMILRejectsPendingDeltas(t *testing.T) {
	db := milDB(t)
	ds, err := db.Delta("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Delete(0); err != nil {
		t.Fatal(err)
	}
	eng := New(db)
	if _, err := eng.Run(algebra.NewScan("t", "a")); err == nil {
		t.Fatal("MIL scan over pending deltas must be rejected")
	}
}

func TestMILNilTraceIsFine(t *testing.T) {
	db := milDB(t)
	eng := New(db)
	res, err := eng.Run(algebra.NewAggr(algebra.NewScan("t", "a", "g"),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
		[]algebra.AggExpr{algebra.Sum("s", expr.C("a"))}))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows: %d", res.NumRows())
	}
}

func TestMILArray(t *testing.T) {
	eng := New(core.NewDatabase())
	res, err := eng.Run(algebra.NewArray(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatal("array rows")
	}
	if res.Row(1)[0].(int32) != 1 || res.Row(1)[1].(int32) != 0 {
		t.Fatalf("column-major order: %v", res.Row(1))
	}
}

func TestStatementBandwidth(t *testing.T) {
	s := Statement{InBytes: 500_000, OutBytes: 500_000, Nanos: 1_000_000} // 1MB in 1ms
	if mbs := s.MBs(); mbs < 999 || mbs > 1001 {
		t.Fatalf("MBs: %v", mbs)
	}
	if (Statement{}).MBs() != 0 {
		t.Fatal("zero statement")
	}
}
