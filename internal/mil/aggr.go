package mil

import (
	"fmt"
	"time"

	"x100/internal/algebra"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// evalAggr implements grouped aggregation column-at-a-time: a group()
// statement assigns dense group ids to all rows at once, then one
// {sum}/{count}/... statement per aggregate folds a full column.
func (e *Engine) evalAggr(n *algebra.Aggr) (*rel, error) {
	in, err := e.eval(n.Input)
	if err != nil {
		return nil, err
	}
	// Evaluate group key columns.
	keys := make([]*vector.Vector, len(n.GroupBy))
	for i, g := range n.GroupBy {
		v, _, err := e.evalExpr(in, g.E)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	gids, reps, nGroups, err := e.groupIDs(in.n, keys)
	if err != nil {
		return nil, err
	}

	out := &rel{n: nGroups}
	for i, g := range n.GroupBy {
		gathered := vector.New(keys[i].Typ, nGroups)
		gathered.Gather(keys[i], reps)
		gathered.Typ = keys[i].Typ
		out.schema = append(out.schema, vector.Field{Name: g.Alias, Type: keys[i].Typ})
		out.cols = append(out.cols, gathered)
	}

	rowCount := make([]int64, nGroups)
	primitives.AggrCount(rowCount, gids, nil, in.n)
	for _, a := range n.Aggs {
		v, t, err := e.evalAggOne(in, a, gids, nGroups, rowCount)
		if err != nil {
			return nil, err
		}
		out.schema = append(out.schema, vector.Field{Name: a.Alias, Type: t})
		out.cols = append(out.cols, v)
	}
	return out, nil
}

// groupIDs assigns dense group ids over full columns; with no keys it is
// scalar aggregation (a single group, even for empty input).
func (e *Engine) groupIDs(n int, keys []*vector.Vector) ([]int32, []int32, int, error) {
	gids := make([]int32, n)
	if len(keys) == 0 {
		return gids, []int32{0}, 1, nil
	}
	t0 := time.Now()
	hashes := make([]uint64, n)
	var keyBytes int64
	for i, k := range keys {
		if err := hashFullVector(hashes, k, i == 0); err != nil {
			return nil, nil, 0, err
		}
		keyBytes += int64(k.Bytes())
	}
	table := make(map[uint64][]int32, 1024)
	var reps []int32
	for i := 0; i < n; i++ {
		h := hashes[i]
		found := int32(-1)
		for _, g := range table[h] {
			if rowsEqual(keys, int(reps[g]), i) {
				found = g
				break
			}
		}
		if found < 0 {
			found = int32(len(reps))
			reps = append(reps, int32(i))
			table[h] = append(table[h], found)
		}
		gids[i] = found
	}
	e.Trace.record(fmt.Sprintf("%s := group(keys)", e.Trace.name("s")),
		keyBytes, int64(4*n), n, time.Since(t0))
	return gids, reps, len(reps), nil
}

func rowsEqual(keys []*vector.Vector, i, j int) bool {
	for _, k := range keys {
		if compareAt(k, i, j) != 0 {
			return false
		}
	}
	return true
}

func hashFullVector(hashes []uint64, v *vector.Vector, first bool) error {
	switch v.Typ.Physical() {
	case vector.Int32:
		if first {
			primitives.HashInt(hashes, v.Int32s(), nil)
		} else {
			primitives.HashCombineInt(hashes, v.Int32s(), nil)
		}
	case vector.Int64:
		if first {
			primitives.HashInt(hashes, v.Int64s(), nil)
		} else {
			primitives.HashCombineInt(hashes, v.Int64s(), nil)
		}
	case vector.UInt8:
		if first {
			primitives.HashInt(hashes, v.UInt8s(), nil)
		} else {
			primitives.HashCombineInt(hashes, v.UInt8s(), nil)
		}
	case vector.UInt16:
		if first {
			primitives.HashInt(hashes, v.UInt16s(), nil)
		} else {
			primitives.HashCombineInt(hashes, v.UInt16s(), nil)
		}
	case vector.Float64:
		if first {
			primitives.HashFloat64(hashes, v.Float64s(), nil)
		} else {
			primitives.HashCombineFloat64(hashes, v.Float64s(), nil)
		}
	case vector.String:
		if first {
			primitives.HashString(hashes, v.Strings(), nil)
		} else {
			primitives.HashCombineString(hashes, v.Strings(), nil)
		}
	case vector.Bool:
		if first {
			primitives.HashBool(hashes, v.Bools(), nil)
		} else {
			primitives.HashCombineBool(hashes, v.Bools(), nil)
		}
	default:
		return fmt.Errorf("mil: cannot hash %v", v.Typ)
	}
	return nil
}

func (e *Engine) evalAggOne(in *rel, a algebra.AggExpr, gids []int32, nGroups int, rowCount []int64) (*vector.Vector, vector.Type, error) {
	switch a.Fn {
	case algebra.AggCount:
		t0 := time.Now()
		out := vector.FromInt64s(append([]int64(nil), rowCount...))
		e.Trace.record(fmt.Sprintf("%s := {count}(grp)", e.Trace.name("r")),
			int64(4*in.n), int64(out.Bytes()), nGroups, time.Since(t0))
		return out, vector.Int64, nil
	case algebra.AggAvg:
		arg, _, err := e.evalExpr(in, a.Arg)
		if err != nil {
			return nil, vector.Unknown, err
		}
		t0 := time.Now()
		sums := make([]float64, nGroups)
		if err := sumInto(sums, arg, gids); err != nil {
			return nil, vector.Unknown, err
		}
		for g := range sums {
			if rowCount[g] > 0 {
				sums[g] /= float64(rowCount[g])
			}
		}
		out := vector.FromFloat64s(sums)
		e.Trace.record(fmt.Sprintf("%s := {avg}(%s, grp)", e.Trace.name("r"), a.Arg),
			int64(arg.Bytes()+4*in.n), int64(out.Bytes()), nGroups, time.Since(t0))
		return out, vector.Float64, nil
	case algebra.AggSum:
		arg, _, err := e.evalExpr(in, a.Arg)
		if err != nil {
			return nil, vector.Unknown, err
		}
		t0 := time.Now()
		if arg.Typ.Physical() == vector.Float64 {
			sums := make([]float64, nGroups)
			primitives.AggrSum(sums, arg.Float64s(), gids, nil)
			out := vector.FromFloat64s(sums)
			e.Trace.record(fmt.Sprintf("%s := {sum}(%s, grp)", e.Trace.name("r"), a.Arg),
				int64(arg.Bytes()+4*in.n), int64(out.Bytes()), nGroups, time.Since(t0))
			return out, vector.Float64, nil
		}
		sums := make([]int64, nGroups)
		switch arg.Typ.Physical() {
		case vector.Int32:
			primitives.AggrSum(sums, arg.Int32s(), gids, nil)
		case vector.Int64:
			primitives.AggrSum(sums, arg.Int64s(), gids, nil)
		case vector.UInt8:
			primitives.AggrSum(sums, arg.UInt8s(), gids, nil)
		case vector.UInt16:
			primitives.AggrSum(sums, arg.UInt16s(), gids, nil)
		default:
			return nil, vector.Unknown, fmt.Errorf("mil: sum of %v", arg.Typ)
		}
		out := vector.FromInt64s(sums)
		e.Trace.record(fmt.Sprintf("%s := {sum}(%s, grp)", e.Trace.name("r"), a.Arg),
			int64(arg.Bytes()+4*in.n), int64(out.Bytes()), nGroups, time.Since(t0))
		return out, vector.Int64, nil
	case algebra.AggMin, algebra.AggMax:
		arg, _, err := e.evalExpr(in, a.Arg)
		if err != nil {
			return nil, vector.Unknown, err
		}
		t0 := time.Now()
		out := vector.New(arg.Typ, nGroups)
		seen := make([]bool, nGroups)
		isMin := a.Fn == algebra.AggMin
		switch arg.Typ.Physical() {
		case vector.Float64:
			minMax(out.Float64s(), seen, arg.Float64s(), gids, isMin)
		case vector.Int64:
			minMax(out.Int64s(), seen, arg.Int64s(), gids, isMin)
		case vector.Int32:
			minMax(out.Int32s(), seen, arg.Int32s(), gids, isMin)
		case vector.String:
			minMax(out.Strings(), seen, arg.Strings(), gids, isMin)
		default:
			return nil, vector.Unknown, fmt.Errorf("mil: min/max of %v", arg.Typ)
		}
		e.Trace.record(fmt.Sprintf("%s := {%s}(%s, grp)", e.Trace.name("r"), a.Fn, a.Arg),
			int64(arg.Bytes()+4*in.n), int64(out.Bytes()), nGroups, time.Since(t0))
		return out, arg.Typ, nil
	default:
		return nil, vector.Unknown, fmt.Errorf("mil: unknown aggregate %v", a.Fn)
	}
}

func sumInto(dst []float64, v *vector.Vector, gids []int32) error {
	switch v.Typ.Physical() {
	case vector.Float64:
		primitives.AggrSum(dst, v.Float64s(), gids, nil)
	case vector.Int32:
		primitives.AggrSum(dst, v.Int32s(), gids, nil)
	case vector.Int64:
		primitives.AggrSum(dst, v.Int64s(), gids, nil)
	case vector.UInt8:
		primitives.AggrSum(dst, v.UInt8s(), gids, nil)
	case vector.UInt16:
		primitives.AggrSum(dst, v.UInt16s(), gids, nil)
	default:
		return fmt.Errorf("mil: avg of %v", v.Typ)
	}
	return nil
}

func minMax[T primitives.Ordered](acc []T, seen []bool, vals []T, gids []int32, isMin bool) {
	if isMin {
		primitives.AggrMin(acc, seen, vals, gids, nil)
		return
	}
	primitives.AggrMax(acc, seen, vals, gids, nil)
}
