package mil

import (
	"fmt"
	"time"

	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// oper is an evaluated operand: either a full column or a scalar constant
// (MIL multiplex operators take BATs or constants).
type oper struct {
	vec  *vector.Vector
	cval any
	typ  vector.Type
}

func (o oper) isConst() bool { return o.vec == nil }

func (o oper) bytes() int64 {
	if o.vec == nil {
		return 0
	}
	return int64(o.vec.Bytes())
}

// evalExpr evaluates an expression column-at-a-time, materializing every
// intermediate result as a full column. It returns the result vector and
// the total input bytes consumed by the statement chain.
func (e *Engine) evalExpr(r *rel, x expr.Expr) (*vector.Vector, int64, error) {
	o, in, err := e.evalOperand(r, x)
	if err != nil {
		return nil, 0, err
	}
	if o.isConst() {
		// Materialize a constant column (rare: constant projections).
		v := vector.New(o.typ, r.n)
		for i := 0; i < r.n; i++ {
			v.Set(i, o.cval)
		}
		return v, in, nil
	}
	return o.vec, in, nil
}

// evalBool evaluates a boolean expression to a full []bool column.
func (e *Engine) evalBool(r *rel, x expr.Expr) ([]bool, int64, error) {
	v, in, err := e.evalExpr(r, x)
	if err != nil {
		return nil, 0, err
	}
	if v.Typ != vector.Bool {
		return nil, 0, fmt.Errorf("mil: predicate has type %v", v.Typ)
	}
	return v.Bools(), in, nil
}

func (e *Engine) evalOperand(r *rel, x expr.Expr) (oper, int64, error) {
	switch n := x.(type) {
	case *expr.Col:
		v := r.col(n.Name)
		if v == nil {
			return oper{}, 0, fmt.Errorf("mil: unknown column %q", n.Name)
		}
		return oper{vec: v, typ: v.Typ}, 0, nil
	case *expr.Const:
		return oper{cval: n.Val, typ: n.Typ}, 0, nil
	case *expr.Bin:
		return e.evalBin(r, n)
	case *expr.Cmp:
		return e.evalCmp(r, n)
	case *expr.And:
		return e.evalLogic(r, n.Args, true)
	case *expr.Or:
		return e.evalLogic(r, n.Args, false)
	case *expr.Not:
		a, in, err := e.evalOperand(r, n.Arg)
		if err != nil {
			return oper{}, 0, err
		}
		t0 := time.Now()
		out := vector.New(vector.Bool, r.n)
		primitives.MapNotCol(out.Bools(), a.vec.Bools(), nil)
		e.statement("[not](b)", a.bytes(), out, r.n, t0)
		return oper{vec: out, typ: vector.Bool}, in + a.bytes(), nil
	case *expr.Cast:
		return e.evalCast(r, n)
	case *expr.Like:
		return e.evalLike(r, n)
	case *expr.In:
		return e.evalIn(r, n)
	case *expr.Case:
		return e.evalCase(r, n)
	case *expr.Func:
		return e.evalFunc(r, n)
	default:
		return oper{}, 0, fmt.Errorf("mil: cannot evaluate %T", x)
	}
}

func (e *Engine) statement(text string, in int64, out *vector.Vector, rows int, t0 time.Time) {
	e.Trace.record(fmt.Sprintf("%s := %s", e.Trace.name("r"), text), in, int64(out.Bytes()), rows, time.Since(t0))
}

func (e *Engine) evalBin(r *rel, n *expr.Bin) (oper, int64, error) {
	l, inL, err := e.evalOperand(r, n.L)
	if err != nil {
		return oper{}, 0, err
	}
	rr, inR, err := e.evalOperand(r, n.R)
	if err != nil {
		return oper{}, 0, err
	}
	if l.isConst() && rr.isConst() {
		v, err := foldConstBin(n.Op, l, rr)
		if err != nil {
			return oper{}, 0, err
		}
		return oper{cval: v, typ: l.typ}, inL + inR, nil
	}
	t := l.typ
	if l.isConst() {
		t = rr.typ
	}
	out := vector.New(t, r.n)
	t0 := time.Now()
	switch t.Physical() {
	case vector.Float64:
		milArith[float64](n.Op, out, l, rr)
	case vector.Int64:
		milArith[int64](n.Op, out, l, rr)
	case vector.Int32:
		milArith[int32](n.Op, out, l, rr)
	default:
		return oper{}, 0, fmt.Errorf("mil: arithmetic on %v", t)
	}
	e.statement(fmt.Sprintf("[%s](%s, %s)", n.Op, n.L, n.R), l.bytes()+rr.bytes(), out, r.n, t0)
	return oper{vec: out, typ: t}, inL + inR + l.bytes() + rr.bytes(), nil
}

// foldConstBin evaluates constant arithmetic at plan time.
func foldConstBin(op expr.BinKind, l, r oper) (any, error) {
	switch l.typ.Physical() {
	case vector.Float64:
		return foldNum(op, l.cval.(float64), r.cval.(float64)), nil
	case vector.Int64:
		return foldNum(op, l.cval.(int64), r.cval.(int64)), nil
	case vector.Int32:
		return foldNum(op, l.cval.(int32), r.cval.(int32)), nil
	default:
		return nil, fmt.Errorf("mil: constant arithmetic on %v", l.typ)
	}
}

func foldNum[T primitives.Number](op expr.BinKind, a, b T) T {
	switch op {
	case expr.Add:
		return a + b
	case expr.Sub:
		return a - b
	case expr.Mul:
		return a * b
	default:
		return a / b
	}
}

func milArith[T primitives.Number](op expr.BinKind, out *vector.Vector, l, r oper) {
	res := vector.Data[T](out)
	switch {
	case l.isConst():
		v := l.cval.(T)
		a := vector.Data[T](r.vec)
		switch op {
		case expr.Add:
			primitives.MapAddColVal(res, a, v, nil)
		case expr.Sub:
			primitives.MapSubValCol(res, v, a, nil)
		case expr.Mul:
			primitives.MapMulColVal(res, a, v, nil)
		case expr.Div:
			primitives.MapDivValCol(res, v, a, nil)
		}
	case r.isConst():
		a := vector.Data[T](l.vec)
		v := r.cval.(T)
		switch op {
		case expr.Add:
			primitives.MapAddColVal(res, a, v, nil)
		case expr.Sub:
			primitives.MapSubColVal(res, a, v, nil)
		case expr.Mul:
			primitives.MapMulColVal(res, a, v, nil)
		case expr.Div:
			primitives.MapDivColVal(res, a, v, nil)
		}
	default:
		a := vector.Data[T](l.vec)
		b := vector.Data[T](r.vec)
		switch op {
		case expr.Add:
			primitives.MapAddColCol(res, a, b, nil)
		case expr.Sub:
			primitives.MapSubColCol(res, a, b, nil)
		case expr.Mul:
			primitives.MapMulColCol(res, a, b, nil)
		case expr.Div:
			primitives.MapDivColCol(res, a, b, nil)
		}
	}
}

func (e *Engine) evalCmp(r *rel, n *expr.Cmp) (oper, int64, error) {
	l, inL, err := e.evalOperand(r, n.L)
	if err != nil {
		return oper{}, 0, err
	}
	rr, inR, err := e.evalOperand(r, n.R)
	if err != nil {
		return oper{}, 0, err
	}
	op := n.Op
	if l.isConst() {
		l, rr = rr, l
		op = flipCmp(op)
	}
	out := vector.New(vector.Bool, r.n)
	t0 := time.Now()
	var err2 error
	switch l.typ.Physical() {
	case vector.Float64:
		milCmp[float64](op, out, l, rr)
	case vector.Int64:
		milCmp[int64](op, out, l, rr)
	case vector.Int32:
		milCmp[int32](op, out, l, rr)
	case vector.UInt8:
		milCmp[uint8](op, out, l, rr)
	case vector.UInt16:
		milCmp[uint16](op, out, l, rr)
	case vector.String:
		milCmp[string](op, out, l, rr)
	case vector.Bool:
		err2 = milCmpBool(op, out, l, rr)
	default:
		err2 = fmt.Errorf("mil: comparison on %v", l.typ)
	}
	if err2 != nil {
		return oper{}, 0, err2
	}
	e.statement(fmt.Sprintf("[%s](%s, %s)", op, n.L, n.R), l.bytes()+rr.bytes(), out, r.n, t0)
	return oper{vec: out, typ: vector.Bool}, inL + inR + l.bytes() + rr.bytes(), nil
}

func flipCmp(op expr.CmpKind) expr.CmpKind {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

func milCmp[T primitives.Ordered](op expr.CmpKind, out *vector.Vector, l, r oper) {
	res := out.Bools()
	a := vector.Data[T](l.vec)
	if r.isConst() {
		v := r.cval.(T)
		switch op {
		case expr.LT:
			primitives.MapLTColValBool(res, a, v, nil)
		case expr.LE:
			primitives.MapLEColValBool(res, a, v, nil)
		case expr.GT:
			primitives.MapGTColValBool(res, a, v, nil)
		case expr.GE:
			primitives.MapGEColValBool(res, a, v, nil)
		case expr.EQ:
			primitives.MapEQColValBool(res, a, v, nil)
		default:
			primitives.MapNEColValBool(res, a, v, nil)
		}
		return
	}
	b := vector.Data[T](r.vec)
	switch op {
	case expr.LT:
		primitives.MapLTColColBool(res, a, b, nil)
	case expr.LE:
		primitives.MapLEColColBool(res, a, b, nil)
	case expr.GT:
		primitives.MapGTColColBool(res, a, b, nil)
	case expr.GE:
		primitives.MapGEColColBool(res, a, b, nil)
	case expr.EQ:
		primitives.MapEQColColBool(res, a, b, nil)
	default:
		primitives.MapNEColColBool(res, a, b, nil)
	}
}

func milCmpBool(op expr.CmpKind, out *vector.Vector, l, r oper) error {
	if op != expr.EQ && op != expr.NE {
		return fmt.Errorf("mil: bool comparison supports only =/!=")
	}
	res := out.Bools()
	a := l.vec.Bools()
	if r.isConst() {
		v := r.cval.(bool)
		if op == expr.EQ {
			primitives.MapEQColValBool(res, a, v, nil)
		} else {
			primitives.MapNEColValBool(res, a, v, nil)
		}
		return nil
	}
	b := r.vec.Bools()
	if op == expr.EQ {
		primitives.MapEQColColBool(res, a, b, nil)
	} else {
		primitives.MapNEColColBool(res, a, b, nil)
	}
	return nil
}

func (e *Engine) evalLogic(r *rel, args []expr.Expr, isAnd bool) (oper, int64, error) {
	acc, in, err := e.evalOperand(r, args[0])
	if err != nil {
		return oper{}, 0, err
	}
	for _, arg := range args[1:] {
		nxt, inN, err := e.evalOperand(r, arg)
		if err != nil {
			return oper{}, 0, err
		}
		out := vector.New(vector.Bool, r.n)
		t0 := time.Now()
		if isAnd {
			primitives.MapAndColCol(out.Bools(), acc.vec.Bools(), nxt.vec.Bools(), nil)
			e.statement("[and](a, b)", acc.bytes()+nxt.bytes(), out, r.n, t0)
		} else {
			primitives.MapOrColCol(out.Bools(), acc.vec.Bools(), nxt.vec.Bools(), nil)
			e.statement("[or](a, b)", acc.bytes()+nxt.bytes(), out, r.n, t0)
		}
		in += inN + acc.bytes() + nxt.bytes()
		acc = oper{vec: out, typ: vector.Bool}
	}
	return acc, in, nil
}

func (e *Engine) evalCast(r *rel, n *expr.Cast) (oper, int64, error) {
	a, in, err := e.evalOperand(r, n.Arg)
	if err != nil {
		return oper{}, 0, err
	}
	if a.isConst() {
		return oper{cval: castConst(a.cval, n.To), typ: n.To}, in, nil
	}
	if a.typ.Physical() == n.To.Physical() {
		v := a.vec.Slice(0, a.vec.Len())
		v.Typ = n.To
		return oper{vec: v, typ: n.To}, in, nil
	}
	out := vector.New(n.To, r.n)
	t0 := time.Now()
	if err := milCast(out, a.vec); err != nil {
		return oper{}, 0, err
	}
	e.statement(fmt.Sprintf("[%s](%s)", n.To, n.Arg), a.bytes(), out, r.n, t0)
	return oper{vec: out, typ: n.To}, in + a.bytes(), nil
}

func castConst(v any, to vector.Type) any {
	var f float64
	switch x := v.(type) {
	case int32:
		f = float64(x)
	case int64:
		f = float64(x)
	case float64:
		f = x
	case uint8:
		f = float64(x)
	case uint16:
		f = float64(x)
	}
	switch to.Physical() {
	case vector.Int32:
		return int32(f)
	case vector.Int64:
		return int64(f)
	default:
		return f
	}
}

func milCast(out, in *vector.Vector) error {
	switch out.Typ.Physical() {
	case vector.Float64:
		switch in.Typ.Physical() {
		case vector.Int32:
			primitives.MapConvert(out.Float64s(), in.Int32s(), nil)
		case vector.Int64:
			primitives.MapConvert(out.Float64s(), in.Int64s(), nil)
		case vector.UInt8:
			primitives.MapConvert(out.Float64s(), in.UInt8s(), nil)
		case vector.UInt16:
			primitives.MapConvert(out.Float64s(), in.UInt16s(), nil)
		default:
			return fmt.Errorf("mil: cast %v -> %v", in.Typ, out.Typ)
		}
	case vector.Int64:
		switch in.Typ.Physical() {
		case vector.Int32:
			primitives.MapConvert(out.Int64s(), in.Int32s(), nil)
		case vector.Float64:
			primitives.MapConvert(out.Int64s(), in.Float64s(), nil)
		case vector.UInt8:
			primitives.MapConvert(out.Int64s(), in.UInt8s(), nil)
		case vector.UInt16:
			primitives.MapConvert(out.Int64s(), in.UInt16s(), nil)
		default:
			return fmt.Errorf("mil: cast %v -> %v", in.Typ, out.Typ)
		}
	case vector.Int32:
		switch in.Typ.Physical() {
		case vector.Int64:
			primitives.MapConvert(out.Int32s(), in.Int64s(), nil)
		case vector.Float64:
			primitives.MapConvert(out.Int32s(), in.Float64s(), nil)
		case vector.UInt8:
			primitives.MapConvert(out.Int32s(), in.UInt8s(), nil)
		case vector.UInt16:
			primitives.MapConvert(out.Int32s(), in.UInt16s(), nil)
		default:
			return fmt.Errorf("mil: cast %v -> %v", in.Typ, out.Typ)
		}
	default:
		return fmt.Errorf("mil: cast to %v", out.Typ)
	}
	return nil
}

func (e *Engine) evalLike(r *rel, n *expr.Like) (oper, int64, error) {
	a, in, err := e.evalOperand(r, n.Arg)
	if err != nil {
		return oper{}, 0, err
	}
	out := vector.New(vector.Bool, r.n)
	t0 := time.Now()
	m := primitives.CompileLike(n.Pattern)
	res := out.Bools()
	strs := a.vec.Strings()
	for i := range res {
		res[i] = m.Match(strs[i]) != n.Negate
	}
	e.statement(fmt.Sprintf("[like](%s, %q)", n.Arg, n.Pattern), a.bytes(), out, r.n, t0)
	return oper{vec: out, typ: vector.Bool}, in + a.bytes(), nil
}

func (e *Engine) evalIn(r *rel, n *expr.In) (oper, int64, error) {
	a, in, err := e.evalOperand(r, n.Arg)
	if err != nil {
		return oper{}, 0, err
	}
	out := vector.New(vector.Bool, r.n)
	res := out.Bools()
	t0 := time.Now()
	switch a.typ.Physical() {
	case vector.String:
		set := map[string]struct{}{}
		for _, cst := range n.List {
			set[cst.Val.(string)] = struct{}{}
		}
		vals := a.vec.Strings()
		for i := range res {
			_, res[i] = set[vals[i]]
		}
	case vector.Int32:
		set := map[int32]struct{}{}
		for _, cst := range n.List {
			set[cst.Val.(int32)] = struct{}{}
		}
		vals := a.vec.Int32s()
		for i := range res {
			_, res[i] = set[vals[i]]
		}
	case vector.Int64:
		set := map[int64]struct{}{}
		for _, cst := range n.List {
			set[cst.Val.(int64)] = struct{}{}
		}
		vals := a.vec.Int64s()
		for i := range res {
			_, res[i] = set[vals[i]]
		}
	default:
		return oper{}, 0, fmt.Errorf("mil: in-list on %v", a.typ)
	}
	e.statement(fmt.Sprintf("[in](%s, ...)", n.Arg), a.bytes(), out, r.n, t0)
	return oper{vec: out, typ: vector.Bool}, in + a.bytes(), nil
}

func (e *Engine) evalCase(r *rel, n *expr.Case) (oper, int64, error) {
	cond, in1, err := e.evalExpr(r, n.Cond)
	if err != nil {
		return oper{}, 0, err
	}
	th, in2, err := e.evalExpr(r, n.Then)
	if err != nil {
		return oper{}, 0, err
	}
	el, in3, err := e.evalExpr(r, n.Else)
	if err != nil {
		return oper{}, 0, err
	}
	out := vector.New(th.Typ, r.n)
	t0 := time.Now()
	switch th.Typ.Physical() {
	case vector.Float64:
		primitives.MapSelectColBool(out.Float64s(), cond.Bools(), th.Float64s(), el.Float64s(), nil)
	case vector.Int64:
		primitives.MapSelectColBool(out.Int64s(), cond.Bools(), th.Int64s(), el.Int64s(), nil)
	case vector.Int32:
		primitives.MapSelectColBool(out.Int32s(), cond.Bools(), th.Int32s(), el.Int32s(), nil)
	case vector.String:
		primitives.MapSelectColBool(out.Strings(), cond.Bools(), th.Strings(), el.Strings(), nil)
	default:
		return oper{}, 0, fmt.Errorf("mil: case of %v", th.Typ)
	}
	e.statement("[ifthenelse](c, t, e)", int64(cond.Bytes()+th.Bytes()+el.Bytes()), out, r.n, t0)
	return oper{vec: out, typ: th.Typ}, in1 + in2 + in3, nil
}

func (e *Engine) evalFunc(r *rel, n *expr.Func) (oper, int64, error) {
	switch n.Kind {
	case expr.FuncYear:
		a, in, err := e.evalExpr(r, n.Args[0])
		if err != nil {
			return oper{}, 0, err
		}
		t0 := time.Now()
		out := vector.FromInt32s(dateYear(a.Int32s()))
		e.statement(fmt.Sprintf("[year](%s)", n.Args[0]), int64(a.Bytes()), out, r.n, t0)
		return oper{vec: out, typ: vector.Int32}, in + int64(a.Bytes()), nil
	case expr.FuncSquare:
		a, in, err := e.evalExpr(r, n.Args[0])
		if err != nil {
			return oper{}, 0, err
		}
		out := vector.New(a.Typ, r.n)
		t0 := time.Now()
		switch a.Typ.Physical() {
		case vector.Float64:
			primitives.MapMulColCol(out.Float64s(), a.Float64s(), a.Float64s(), nil)
		case vector.Int64:
			primitives.MapMulColCol(out.Int64s(), a.Int64s(), a.Int64s(), nil)
		case vector.Int32:
			primitives.MapMulColCol(out.Int32s(), a.Int32s(), a.Int32s(), nil)
		default:
			return oper{}, 0, fmt.Errorf("mil: square on %v", a.Typ)
		}
		e.statement(fmt.Sprintf("[square](%s)", n.Args[0]), int64(a.Bytes()), out, r.n, t0)
		return oper{vec: out, typ: a.Typ}, in + int64(a.Bytes()), nil
	case expr.FuncSubstr:
		a, in, err := e.evalExpr(r, n.Args[0])
		if err != nil {
			return oper{}, 0, err
		}
		out := vector.New(vector.String, r.n)
		t0 := time.Now()
		primitives.MapSubstrCol(out.Strings(), a.Strings(), n.Start, n.Length, nil)
		e.statement(fmt.Sprintf("[substr](%s)", n.Args[0]), int64(a.Bytes()), out, r.n, t0)
		return oper{vec: out, typ: vector.String}, in + int64(a.Bytes()), nil
	case expr.FuncConcat:
		a, in1, err := e.evalExpr(r, n.Args[0])
		if err != nil {
			return oper{}, 0, err
		}
		b, in2, err := e.evalExpr(r, n.Args[1])
		if err != nil {
			return oper{}, 0, err
		}
		out := vector.New(vector.String, r.n)
		t0 := time.Now()
		primitives.MapConcatColCol(out.Strings(), a.Strings(), b.Strings(), nil)
		e.statement("[concat](a, b)", int64(a.Bytes()+b.Bytes()), out, r.n, t0)
		return oper{vec: out, typ: vector.String}, in1 + in2, nil
	default:
		return oper{}, 0, fmt.Errorf("mil: unknown function kind %d", n.Kind)
	}
}
