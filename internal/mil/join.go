package mil

import (
	"fmt"
	"time"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/core"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// evalJoin executes joins column-at-a-time: the right side is fully
// materialized and hashed, all left rows are probed in one pass producing
// materialized index BATs, and every output column is materialized by a
// positional join through those indices.
func (e *Engine) evalJoin(n *algebra.Join) (*rel, error) {
	left, err := e.eval(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(n.Right)
	if err != nil {
		return nil, err
	}
	if len(n.On) == 0 {
		if n.Kind != algebra.Inner {
			return nil, fmt.Errorf("mil: %v join requires equi-conditions", n.Kind)
		}
		return e.cartProd(left, right, n.Residual)
	}
	lKeys := make([]*vector.Vector, len(n.On))
	rKeys := make([]*vector.Vector, len(n.On))
	for i, cond := range n.On {
		lKeys[i] = left.col(cond.L)
		rKeys[i] = right.col(cond.R)
		if lKeys[i] == nil || rKeys[i] == nil {
			return nil, fmt.Errorf("mil: join key %s=%s not found", cond.L, cond.R)
		}
	}
	t0 := time.Now()
	// Build: hash all right rows.
	rHash := make([]uint64, right.n)
	for i, k := range rKeys {
		if err := hashFullVector(rHash, k, i == 0); err != nil {
			return nil, err
		}
	}
	table := make(map[uint64][]int32, right.n)
	for i := 0; i < right.n; i++ {
		table[rHash[i]] = append(table[rHash[i]], int32(i))
	}
	// Probe: hash all left rows.
	lHash := make([]uint64, left.n)
	for i, k := range lKeys {
		if err := hashFullVector(lHash, k, i == 0); err != nil {
			return nil, err
		}
	}
	var scalar expr.Scalar
	if n.Residual != nil {
		combined := append(left.schema.Clone(), right.schema.Clone()...)
		sc, _, err := expr.Bind(n.Residual, combined)
		if err != nil {
			return nil, err
		}
		scalar = sc
	}
	resOK := func(li int, ri int32) bool {
		if scalar == nil {
			return true
		}
		row := make([]any, 0, len(left.cols)+len(right.cols))
		for _, v := range left.cols {
			row = append(row, v.Value(li))
		}
		for _, v := range right.cols {
			row = append(row, v.Value(int(ri)))
		}
		return scalar(row).(bool)
	}
	keysEqual := func(li int, ri int32) bool {
		for i := range lKeys {
			if !valuesEqualAt(lKeys[i], li, rKeys[i], int(ri)) {
				return false
			}
		}
		return true
	}

	var lIdx, rIdx []int32
	var marks []bool
	if n.Kind == algebra.Mark {
		marks = make([]bool, 0, left.n)
	}
	for i := 0; i < left.n; i++ {
		matched := false
		for _, ri := range table[lHash[i]] {
			if !keysEqual(i, ri) || !resOK(i, ri) {
				continue
			}
			matched = true
			if n.Kind == algebra.Inner || n.Kind == algebra.LeftOuter {
				lIdx = append(lIdx, int32(i))
				rIdx = append(rIdx, ri)
			} else {
				break
			}
		}
		switch n.Kind {
		case algebra.LeftOuter:
			if !matched {
				lIdx = append(lIdx, int32(i))
				rIdx = append(rIdx, -1)
			}
		case algebra.Semi:
			if matched {
				lIdx = append(lIdx, int32(i))
			}
		case algebra.Anti:
			if !matched {
				lIdx = append(lIdx, int32(i))
			}
		case algebra.Mark:
			lIdx = append(lIdx, int32(i))
			marks = append(marks, matched)
		}
	}
	e.Trace.record(fmt.Sprintf("%s := hashjoin(%s)", e.Trace.name("s"), n.Name()),
		int64(8*(left.n+right.n)), int64(8*len(lIdx)), len(lIdx), time.Since(t0))

	// Materialize output columns through the index BATs.
	out := &rel{n: len(lIdx)}
	gatherInto := func(src *rel, idx []int32, outer bool) {
		for ci, v := range src.cols {
			t1 := time.Now()
			g := vector.New(v.Typ, len(idx))
			if outer {
				for j, r := range idx {
					if r < 0 {
						continue
					}
					g.Set(j, v.Value(int(r)))
				}
			} else {
				g.Gather(v, idx)
			}
			g.Typ = v.Typ
			out.schema = append(out.schema, src.schema[ci])
			out.cols = append(out.cols, g)
			e.Trace.record(fmt.Sprintf("%s := join(idx,%s)", e.Trace.name("s"), src.schema[ci].Name),
				int64(4*len(idx))+int64(v.Bytes()), int64(g.Bytes()), len(idx), time.Since(t1))
		}
	}
	gatherInto(left, lIdx, false)
	switch n.Kind {
	case algebra.Inner:
		gatherInto(right, rIdx, false)
	case algebra.LeftOuter:
		gatherInto(right, rIdx, true)
	case algebra.Mark:
		out.schema = append(out.schema, vector.Field{Name: n.MarkCol, Type: vector.Bool})
		out.cols = append(out.cols, vector.FromBools(marks))
	}
	return out, nil
}

func valuesEqualAt(a *vector.Vector, i int, b *vector.Vector, j int) bool {
	switch a.Typ.Physical() {
	case vector.Bool:
		return a.Bools()[i] == b.Bools()[j]
	case vector.UInt8:
		return a.UInt8s()[i] == b.UInt8s()[j]
	case vector.UInt16:
		return a.UInt16s()[i] == b.UInt16s()[j]
	case vector.Int32:
		return a.Int32s()[i] == b.Int32s()[j]
	case vector.Int64:
		return a.Int64s()[i] == b.Int64s()[j]
	case vector.Float64:
		return a.Float64s()[i] == b.Float64s()[j]
	default:
		return a.Strings()[i] == b.Strings()[j]
	}
}

func (e *Engine) cartProd(left, right *rel, residual expr.Expr) (*rel, error) {
	t0 := time.Now()
	total := left.n * right.n
	lIdx := make([]int32, 0, total)
	rIdx := make([]int32, 0, total)
	for i := 0; i < left.n; i++ {
		for j := 0; j < right.n; j++ {
			lIdx = append(lIdx, int32(i))
			rIdx = append(rIdx, int32(j))
		}
	}
	out := &rel{n: total}
	for ci, v := range left.cols {
		g := vector.New(v.Typ, total)
		g.Gather(v, lIdx)
		g.Typ = v.Typ
		out.schema = append(out.schema, left.schema[ci])
		out.cols = append(out.cols, g)
	}
	for ci, v := range right.cols {
		g := vector.New(v.Typ, total)
		g.Gather(v, rIdx)
		g.Typ = v.Typ
		out.schema = append(out.schema, right.schema[ci])
		out.cols = append(out.cols, g)
	}
	e.Trace.record(fmt.Sprintf("%s := cartprod()", e.Trace.name("s")),
		left.bytes()+right.bytes(), out.bytes(), total, time.Since(t0))
	if residual == nil {
		return out, nil
	}
	return e.filterRel(out, residual)
}

// filterRel applies a predicate to a materialized relation (select + joins).
func (e *Engine) filterRel(in *rel, pred expr.Expr) (*rel, error) {
	t0 := time.Now()
	bools, inBytes, err := e.evalBool(in, pred)
	if err != nil {
		return nil, err
	}
	tmp := make([]int32, in.n)
	k := primitives.SelectBoolCol(tmp, bools, nil)
	oids := tmp[:k]
	e.Trace.record(fmt.Sprintf("%s := select(%s)", e.Trace.name("s"), pred),
		inBytes, int64(4*k), k, time.Since(t0))
	out := &rel{schema: in.schema.Clone(), n: k}
	for i, v := range in.cols {
		t1 := time.Now()
		g := vector.New(v.Typ, k)
		g.Gather(v, oids)
		g.Typ = v.Typ
		out.cols = append(out.cols, g)
		e.Trace.record(fmt.Sprintf("%s := join(oids,%s)", e.Trace.name("s"), in.schema[i].Name),
			int64(4*k)+int64(v.Bytes()), int64(g.Bytes()), k, time.Since(t1))
	}
	return out, nil
}

// evalFetch1Join materializes a positional fetch: one join statement per
// fetched column.
func (e *Engine) evalFetch1Join(n *algebra.Fetch1Join) (*rel, error) {
	in, err := e.eval(n.Input)
	if err != nil {
		return nil, err
	}
	t, err := e.DB.Table(n.Table)
	if err != nil {
		return nil, err
	}
	ids, _, err := e.evalExpr(in, n.RowID)
	if err != nil {
		return nil, err
	}
	out := &rel{schema: in.schema.Clone(), cols: append([]*vector.Vector{}, in.cols...), n: in.n}
	for i, cname := range n.Cols {
		col := t.Col(cname)
		if col == nil {
			return nil, fmt.Errorf("mil: table %s has no column %q", n.Table, cname)
		}
		name := cname
		if i < len(n.As) && n.As[i] != "" {
			name = n.As[i]
		}
		t0 := time.Now()
		g := vector.New(col.Typ, in.n)
		if err := fetchBaseColumn(g, col, ids.Int32s()); err != nil {
			return nil, err
		}
		e.Trace.record(fmt.Sprintf("%s := join(%s,%s.%s)", e.Trace.name("s"), n.RowID, n.Table, cname),
			int64(4*in.n), int64(g.Bytes()), in.n, time.Since(t0))
		out.schema = append(out.schema, vector.Field{Name: name, Type: col.Typ})
		out.cols = append(out.cols, g)
	}
	return out, nil
}

func fetchBaseColumn(dst *vector.Vector, col *colstore.Column, ids []int32) error {
	return core.FetchColumn(dst, col, ids, nil, len(ids))
}

func (e *Engine) evalFetchNJoin(n *algebra.FetchNJoin) (*rel, error) {
	in, err := e.eval(n.Input)
	if err != nil {
		return nil, err
	}
	t, err := e.DB.Table(n.Table)
	if err != nil {
		return nil, err
	}
	ri := e.DB.RangeIndexAny(n.Table)
	if ri == nil {
		return nil, fmt.Errorf("mil: no range index registered for table %s", n.Table)
	}
	rc := in.col(n.RangeOf)
	if rc == nil {
		return nil, fmt.Errorf("mil: input has no column %q", n.RangeOf)
	}
	t0 := time.Now()
	refs := rc.Int32s()
	var lIdx, fIdx []int32
	for i := 0; i < in.n; i++ {
		lo, hi := ri.Starts[refs[i]], ri.Starts[refs[i]+1]
		for x := lo; x < hi; x++ {
			lIdx = append(lIdx, int32(i))
			fIdx = append(fIdx, x)
		}
	}
	e.Trace.record(fmt.Sprintf("%s := fetchNjoin(%s)", e.Trace.name("s"), n.Table),
		int64(4*in.n), int64(8*len(lIdx)), len(lIdx), time.Since(t0))
	out := &rel{n: len(lIdx)}
	for ci, v := range in.cols {
		g := vector.New(v.Typ, len(lIdx))
		g.Gather(v, lIdx)
		g.Typ = v.Typ
		out.schema = append(out.schema, in.schema[ci])
		out.cols = append(out.cols, g)
	}
	for i, cname := range n.Cols {
		col := t.Col(cname)
		if col == nil {
			return nil, fmt.Errorf("mil: table %s has no column %q", n.Table, cname)
		}
		name := cname
		if i < len(n.As) && n.As[i] != "" {
			name = n.As[i]
		}
		g := vector.New(col.Typ, len(fIdx))
		if err := fetchBaseColumn(g, col, fIdx); err != nil {
			return nil, err
		}
		out.schema = append(out.schema, vector.Field{Name: name, Type: col.Typ})
		out.cols = append(out.cols, g)
	}
	return out, nil
}
