// Package mil reimplements the MonetDB/MIL execution model the paper uses
// as its column-at-a-time baseline (Section 3.2): every algebra operator
// consumes fully materialized columns (BATs) and materializes its complete
// result before the next operator starts. Expressions become multiplexed
// map statements ([-](1.0,tax)), selections produce candidate oid lists
// followed by one positional join per projected column, and aggregates are
// grouped {sum}/{count} statements.
//
// Each executed statement is recorded with its input/output byte volume and
// elapsed time, reproducing the bandwidth trace of Table 3. The per-value
// work is done by the same loop-friendly primitives as the X100 engine —
// MonetDB's multiplex operators are equally loop-pipelined; what differs is
// that every intermediate result is a full column, which is exactly what
// makes MIL memory-bandwidth-bound on large inputs.
package mil

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/core"
	"x100/internal/dateutil"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// Statement is one executed MIL statement with its Table 3 accounting.
type Statement struct {
	Text     string
	InBytes  int64
	OutBytes int64
	Nanos    int64
	Rows     int
}

// MBs returns the statement bandwidth in MB/s (input + output volume).
func (s Statement) MBs() float64 {
	if s.Nanos == 0 {
		return 0
	}
	return float64(s.InBytes+s.OutBytes) / 1e6 / (float64(s.Nanos) / 1e9)
}

// Trace collects executed statements.
type Trace struct {
	Statements []Statement
	nextID     int
}

func (t *Trace) record(text string, in, out int64, rows int, d time.Duration) {
	if t == nil {
		return
	}
	t.Statements = append(t.Statements, Statement{Text: text, InBytes: in, OutBytes: out, Rows: rows, Nanos: d.Nanoseconds()})
}

func (t *Trace) name(prefix string) string {
	if t == nil {
		return prefix
	}
	t.nextID++
	return fmt.Sprintf("%s%d", prefix, t.nextID-1)
}

// Render formats the trace in the layout of the paper's Table 3.
func (t *Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %9s %9s %10s  %s\n", "ms", "BW MB/s", "MB out", "rows", "MIL statement")
	var totalNs, totalOut int64
	for _, s := range t.Statements {
		fmt.Fprintf(&b, "%10.2f %9.0f %9.2f %10d  %s\n",
			float64(s.Nanos)/1e6, s.MBs(), float64(s.OutBytes)/1e6, s.Rows, s.Text)
		totalNs += s.Nanos
		totalOut += s.OutBytes
	}
	fmt.Fprintf(&b, "%10.2f %9s %9.2f %10s  TOTAL\n", float64(totalNs)/1e6, "", float64(totalOut)/1e6, "")
	return b.String()
}

// rel is a fully materialized intermediate relation (a set of aligned BATs).
type rel struct {
	schema vector.Schema
	cols   []*vector.Vector
	n      int
}

func (r *rel) bytes() int64 {
	var total int64
	for _, v := range r.cols {
		total += int64(v.Bytes())
	}
	return total
}

func (r *rel) col(name string) *vector.Vector {
	if i := r.schema.ColIndex(name); i >= 0 {
		return r.cols[i]
	}
	return nil
}

// Engine executes algebra plans column-at-a-time against a database.
type Engine struct {
	DB    *core.Database
	Trace *Trace
}

// New creates a MIL engine without tracing.
func New(db *core.Database) *Engine { return &Engine{DB: db} }

// Run executes a plan and returns the materialized result.
func (e *Engine) Run(plan algebra.Node) (*core.Result, error) {
	if _, err := plan.Out(e.DB); err != nil {
		return nil, err
	}
	r, err := e.eval(plan)
	if err != nil {
		return nil, err
	}
	return relToResult(r), nil
}

func relToResult(r *rel) *core.Result {
	res := &core.Result{Schema: r.schema}
	b := &vector.Batch{Schema: r.schema, Vecs: r.cols, N: r.n}
	res.AppendBatch(b)
	return res
}

func (e *Engine) eval(plan algebra.Node) (*rel, error) {
	switch n := plan.(type) {
	case *algebra.Scan:
		return e.evalScan(n)
	case *algebra.Select:
		return e.evalSelect(n)
	case *algebra.Project:
		return e.evalProject(n)
	case *algebra.Aggr:
		return e.evalAggr(n)
	case *algebra.Join:
		return e.evalJoin(n)
	case *algebra.Fetch1Join:
		return e.evalFetch1Join(n)
	case *algebra.FetchNJoin:
		return e.evalFetchNJoin(n)
	case *algebra.Order:
		return e.evalOrder(n.Input, n.Keys, 0)
	case *algebra.TopN:
		return e.evalOrder(n.Input, n.Keys, n.N)
	case *algebra.Array:
		return e.evalArray(n)
	default:
		return nil, fmt.Errorf("mil: cannot evaluate %T", plan)
	}
}

// evalScan materializes the requested columns as full BATs (decoding enum
// columns — MonetDB/MIL has no enum compression, Section 5 notes MIL
// storage is larger for exactly this reason).
func (e *Engine) evalScan(n *algebra.Scan) (*rel, error) {
	t, err := e.DB.Table(n.Table)
	if err != nil {
		return nil, err
	}
	ds, err := e.DB.Delta(n.Table)
	if err != nil {
		return nil, err
	}
	if ds.NumDeleted() > 0 || ds.NumDeltaRows() > 0 {
		return nil, fmt.Errorf("mil: table %s has pending deltas; reorganize before MIL scans", n.Table)
	}
	cols := n.Cols
	if len(cols) == 0 {
		for _, c := range t.Cols {
			cols = append(cols, c.Name)
		}
	}
	out := &rel{n: t.N}
	for _, name := range cols {
		v, f, err := e.scanColumn(t, name)
		if err != nil {
			return nil, err
		}
		out.schema = append(out.schema, f)
		out.cols = append(out.cols, v)
	}
	return out, nil
}

func (e *Engine) scanColumn(t *colstore.Table, name string) (*vector.Vector, vector.Field, error) {
	if name == algebra.RowIDCol {
		ids := make([]int32, t.N)
		for i := range ids {
			ids[i] = int32(i)
		}
		return vector.FromInt32s(ids), vector.Field{Name: name, Type: vector.Int32}, nil
	}
	if strings.HasSuffix(name, core.CodeSuffix) {
		c := t.Col(strings.TrimSuffix(name, core.CodeSuffix))
		if c == nil || !c.IsEnum() {
			return nil, vector.Field{}, fmt.Errorf("mil: %s.%s is not an enum column", t.Name, name)
		}
		if _, err := c.Pin(); err != nil {
			return nil, vector.Field{}, fmt.Errorf("mil: scan %s.%s: %w", t.Name, name, err)
		}
		v := c.VectorAt(0, t.N)
		return v, vector.Field{Name: name, Type: c.PhysType()}, nil
	}
	c := t.Col(name)
	if c == nil {
		return nil, vector.Field{}, fmt.Errorf("mil: table %s has no column %q", t.Name, name)
	}
	// Materialize with a returned error: the column may be disk-backed, and
	// a corrupt chunk must surface as an error, not a panic from VectorAt.
	if _, err := c.Pin(); err != nil {
		return nil, vector.Field{}, fmt.Errorf("mil: scan %s.%s: %w", t.Name, name, err)
	}
	if !c.IsEnum() {
		return c.VectorAt(0, t.N), vector.Field{Name: name, Type: c.Typ}, nil
	}
	// Decode the enum fully (a materializing positional join in MIL terms).
	t0 := time.Now()
	out := vector.New(c.Typ, t.N)
	codes := c.VectorAt(0, t.N)
	if c.Dict.Typ == vector.Float64 {
		if codes.Typ == vector.UInt8 {
			primitives.GatherColU8(out.Float64s(), c.Dict.F64s, codes.UInt8s(), nil)
		} else {
			primitives.GatherColU16(out.Float64s(), c.Dict.F64s, codes.UInt16s(), nil)
		}
	} else {
		if codes.Typ == vector.UInt8 {
			primitives.GatherColU8(out.Strings(), c.Dict.Values, codes.UInt8s(), nil)
		} else {
			primitives.GatherColU16(out.Strings(), c.Dict.Values, codes.UInt16s(), nil)
		}
	}
	e.Trace.record(fmt.Sprintf("%s := decode(%s.%s)", e.Trace.name("s"), t.Name, name),
		int64(codes.Bytes()), int64(out.Bytes()), t.N, time.Since(t0))
	return out, vector.Field{Name: name, Type: c.Typ}, nil
}

// evalSelect computes the predicate column-at-a-time into a candidate oid
// list, then materializes every column through a positional join — the
// select + six join()s pattern of Table 3.
func (e *Engine) evalSelect(n *algebra.Select) (*rel, error) {
	in, err := e.eval(n.Input)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	bools, inBytes, err := e.evalBool(in, n.Pred)
	if err != nil {
		return nil, err
	}
	tmp := make([]int32, in.n)
	k := primitives.SelectBoolCol(tmp, bools, nil)
	oids := tmp[:k]
	e.Trace.record(fmt.Sprintf("%s := select(%s)", e.Trace.name("s"), n.Pred),
		inBytes, int64(4*k), k, time.Since(t0))
	// Positional joins materialize the surviving values of each column.
	out := &rel{schema: in.schema.Clone(), n: k}
	for i, v := range in.cols {
		t1 := time.Now()
		g := vector.New(v.Typ, k)
		g.Gather(v, oids)
		g.Typ = v.Typ
		out.cols = append(out.cols, g)
		e.Trace.record(fmt.Sprintf("%s := join(oids,%s)", e.Trace.name("s"), in.schema[i].Name),
			int64(4*k)+int64(v.Bytes()), int64(g.Bytes()), k, time.Since(t1))
	}
	return out, nil
}

// evalProject evaluates each output expression as a chain of multiplexed
// map statements over full columns.
func (e *Engine) evalProject(n *algebra.Project) (*rel, error) {
	in, err := e.eval(n.Input)
	if err != nil {
		return nil, err
	}
	out := &rel{n: in.n}
	for _, neE := range n.Exprs {
		v, _, err := e.evalExpr(in, neE.E)
		if err != nil {
			return nil, err
		}
		out.schema = append(out.schema, vector.Field{Name: neE.Alias, Type: v.Typ})
		out.cols = append(out.cols, v)
	}
	return out, nil
}

func (e *Engine) evalArray(n *algebra.Array) (*rel, error) {
	total := 1
	for _, d := range n.Dims {
		total *= d
	}
	if len(n.Dims) == 0 {
		total = 0
	}
	out := &rel{n: total}
	for di, d := range n.Dims {
		v := vector.New(vector.Int32, total)
		xs := v.Int32s()
		stride := 1
		for j := 0; j < di; j++ {
			stride *= n.Dims[j]
		}
		for i := 0; i < total; i++ {
			xs[i] = int32(i / stride % d)
		}
		out.schema = append(out.schema, vector.Field{Name: fmt.Sprintf("dim%d", di), Type: vector.Int32})
		out.cols = append(out.cols, v)
	}
	return out, nil
}

// dateYear computes year() over a full date column.
func dateYear(days []int32) []int32 {
	out := make([]int32, len(days))
	for i, d := range days {
		out[i] = dateutil.Year(d)
	}
	return out
}

func typeName(t vector.Type) string { return t.String() }

// Bind re-exports expr.Bind for the boxed fallback paths.
func bindScalar(eE expr.Expr, s vector.Schema) (expr.Scalar, vector.Type, error) {
	return expr.Bind(eE, s)
}

// sortPerm returns the permutation ordering rows by the given key columns.
func sortPerm(keys []*vector.Vector, desc []bool, n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		i, j := int(perm[a]), int(perm[b])
		for k, kv := range keys {
			c := compareAt(kv, i, j)
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return perm
}

func compareAt(v *vector.Vector, i, j int) int {
	switch v.Typ.Physical() {
	case vector.Bool:
		a, b := v.Bools()[i], v.Bools()[j]
		switch {
		case a == b:
			return 0
		case !a:
			return -1
		default:
			return 1
		}
	case vector.UInt8:
		return cmpOrd(v.UInt8s()[i], v.UInt8s()[j])
	case vector.UInt16:
		return cmpOrd(v.UInt16s()[i], v.UInt16s()[j])
	case vector.Int32:
		return cmpOrd(v.Int32s()[i], v.Int32s()[j])
	case vector.Int64:
		return cmpOrd(v.Int64s()[i], v.Int64s()[j])
	case vector.Float64:
		return cmpOrd(v.Float64s()[i], v.Float64s()[j])
	default:
		return cmpOrd(v.Strings()[i], v.Strings()[j])
	}
}

func cmpOrd[T primitives.Ordered](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func (e *Engine) evalOrder(input algebra.Node, keys []algebra.OrdExpr, limit int) (*rel, error) {
	in, err := e.eval(input)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	keyVecs := make([]*vector.Vector, len(keys))
	desc := make([]bool, len(keys))
	for i, k := range keys {
		v, _, err := e.evalExpr(in, k.E)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
		desc[i] = k.Desc
	}
	perm := sortPerm(keyVecs, desc, in.n)
	if limit > 0 && len(perm) > limit {
		perm = perm[:limit]
	}
	out := &rel{schema: in.schema.Clone(), n: len(perm)}
	for _, v := range in.cols {
		g := vector.New(v.Typ, len(perm))
		g.Gather(v, perm)
		g.Typ = v.Typ
		out.cols = append(out.cols, g)
	}
	e.Trace.record(fmt.Sprintf("%s := sort(...)", e.Trace.name("s")),
		in.bytes(), out.bytes(), out.n, time.Since(t0))
	return out, nil
}
