package columnbm

import (
	"fmt"
	"math"
	"slices"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// This file implements the durable-checkpoint append protocol: the insert
// delta of a disk-attached table is written back to the chunk directory as
// new compressed chunks, and the manifest is extended and committed with
// one atomic rename. The protocol's invariant is that chunk files
// referenced by the committed manifest are never modified in place:
//
//  1. Delta rows are split into fresh chunks (the manifest's chunk grid)
//     and written to new files at indices >= the committed chunk count.
//  2. The manifest is extended — chunk counts, per-chunk row counts
//     (appended chunks start a fresh chunk, so interior chunks may be
//     short), per-chunk min/max bounds, grown enum dictionaries, and the
//     current deletion list — and committed via temp-file + rename.
//
// A crash before the rename leaves the old manifest referencing only the
// old files: re-attaching sees exactly the pre-checkpoint state, and the
// partially written chunks are unreferenced orphans that the next append
// simply overwrites. A crash after the rename is a completed checkpoint.

// AppendTable writes the physical column parts (one typed slice per column
// of t, equal lengths; the encoded insert delta) back to the table's chunk
// directory as new compressed chunks, records the deletion list, and
// commits the extended manifest atomically. It returns, per column, the new
// chunks as lazily decoded colstore fragments so the caller can re-attach
// them to the live table. parts may be nil (or empty) to persist only a
// grown deletion list. Enum columns pass their code slices (uint8/uint16);
// the manifest's dictionary is refreshed from the live (append-only)
// column dictionaries.
func (s *Store) AppendTable(t *colstore.Table, parts []any, deleted []int32) ([][]colstore.Fragment, error) {
	m, err := s.readManifest(t.Name)
	if err != nil {
		return nil, err
	}
	if len(m.Columns) != len(t.Cols) {
		return nil, fmt.Errorf("columnbm: append to %s: manifest has %d columns, table has %d", t.Name, len(m.Columns), len(t.Cols))
	}
	chunkRows := m.ChunkRows
	if chunkRows <= 0 {
		chunkRows = s.chunkValues
	}
	n := 0
	if len(parts) > 0 {
		if len(parts) != len(t.Cols) {
			return nil, fmt.Errorf("columnbm: append to %s: %d parts, table has %d columns", t.Name, len(parts), len(t.Cols))
		}
		n = vector.FromAny(vector.Unknown, parts[0]).Len()
	}
	oldChunks := chunkCount(m)
	counts, err := m.chunkRowCounts(chunkRows, oldChunks)
	if err != nil {
		return nil, fmt.Errorf("columnbm: append to %s: %w", t.Name, err)
	}
	// Validate the whole grid BEFORE writing anything: the manifest commit
	// must never reference a column whose chunk layout disagrees with the
	// shared grid, and a failed append must leave the directory untouched
	// so the caller can safely retry.
	for ci := range t.Cols {
		cm := &m.Columns[ci]
		if cm.Name != t.Cols[ci].Name {
			return nil, fmt.Errorf("columnbm: append to %s: manifest column %q, table column %q", t.Name, cm.Name, t.Cols[ci].Name)
		}
		if cm.Chunks != oldChunks {
			return nil, fmt.Errorf("columnbm: append to %s: column %s has %d chunks, grid has %d", t.Name, cm.Name, cm.Chunks, oldChunks)
		}
		if n > 0 {
			if k := vector.FromAny(vector.Unknown, parts[ci]).Len(); k != n {
				return nil, fmt.Errorf("columnbm: append to %s: column %s part has %d rows, want %d", t.Name, cm.Name, k, n)
			}
		}
	}
	counts = slices.Clone(counts)
	for lo := 0; lo < n; lo += chunkRows {
		counts = append(counts, min(chunkRows, n-lo))
	}
	w := s.withChunkValues(chunkRows)
	for ci := range t.Cols {
		col := t.Cols[ci]
		cm := &m.Columns[ci]
		if n > 0 {
			if err := w.appendColumn(m, cm, col, parts[ci], oldChunks); err != nil {
				return nil, fmt.Errorf("columnbm: append %s.%s: %w", t.Name, cm.Name, err)
			}
		}
		if cm.Enum {
			// The dictionary is append-only in memory; persist its current
			// state so re-attached code chunks decode identically.
			if col.Dict.Typ == vector.Float64 {
				cm.DictF64 = col.Dict.Floats()
			} else {
				cm.DictStr = col.Dict.Strings()
			}
		}
	}
	m.Rows += n
	m.ChunkCounts = counts
	m.Deleted = slices.Clone(deleted)
	slices.Sort(m.Deleted)
	if err := s.writeManifest(m); err != nil {
		return nil, err
	}
	if n == 0 {
		return make([][]colstore.Fragment, len(t.Cols)), nil
	}
	frags := make([][]colstore.Fragment, len(t.Cols))
	for ci := range t.Cols {
		frags[ci] = s.columnFragments(m, &m.Columns[ci], t.Cols[ci].PhysType(), counts, oldChunks)
	}
	return frags, nil
}

// chunkCount returns the committed chunk count of a manifest's shared grid.
func chunkCount(m *Manifest) int {
	if len(m.Columns) > 0 {
		return m.Columns[0].Chunks
	}
	return len(m.ChunkCounts)
}

// appendColumn writes one column's delta part as chunks starting at index
// `start` and extends the column manifest (chunk count, bounds, dict
// cardinality). The receiver's chunkValues is the manifest grid.
func (s *Store) appendColumn(m *Manifest, cm *ColumnManifest, col *colstore.Column, part any, start int) error {
	key := m.Table + "." + cm.Name
	// Checksums, like bounds, are only usable when they cover every chunk:
	// extend the array when it exactly covers the committed chunks, drop it
	// otherwise (readers treat length-mismatched arrays as "no checksums").
	var crcs *[]uint32
	if len(cm.ChunkCRC32) == start {
		crcs = &cm.ChunkCRC32
	} else {
		cm.ChunkCRC32 = nil
	}
	var k int
	var err error
	switch d := part.(type) {
	case []int32:
		vals := make([]int64, len(d))
		for i, v := range d {
			vals[i] = int64(v)
		}
		appendBoundsI64(cm, vals, s.chunkValues, start)
		k, err = s.writeInt64Chunks(key, m.Gen, start, vals, crcs)
	case []int64:
		appendBoundsI64(cm, d, s.chunkValues, start)
		k, err = s.writeInt64Chunks(key, m.Gen, start, d, crcs)
	case []float64:
		appendBoundsF64(cm, d, s.chunkValues, start)
		k, err = s.writeFloat64Chunks(key, m.Gen, start, d, crcs)
	case []string:
		appendBoundsStr(cm, d, s.chunkValues, start)
		var cards *[]int
		if len(cm.ChunkDictCard) == start {
			cards = &cm.ChunkDictCard
		} else {
			cm.ChunkDictCard = nil
		}
		k, err = s.writeStringChunks(key, m.Gen, start, d, cards, crcs)
	case []bool:
		vals := make([]int64, len(d))
		for i, v := range d {
			if v {
				vals[i] = 1
			}
		}
		k, err = s.writeInt64Chunks(key, m.Gen, start, vals, crcs)
	case []uint8:
		vals := make([]int64, len(d))
		for i, v := range d {
			vals[i] = int64(v)
		}
		k, err = s.writeInt64Chunks(key, m.Gen, start, vals, crcs)
	case []uint16:
		vals := make([]int64, len(d))
		for i, v := range d {
			vals[i] = int64(v)
		}
		k, err = s.writeInt64Chunks(key, m.Gen, start, vals, crcs)
	default:
		return fmt.Errorf("unsupported part payload %T", part)
	}
	if err != nil {
		return err
	}
	cm.Chunks = start + k
	return nil
}

// appendBoundsI64 extends a column's per-chunk min/max bounds for the
// appended chunks. Bounds are only usable when they cover every chunk, so
// if the existing arrays do not exactly cover the committed chunks the
// column's bounds are dropped entirely (readers already treat
// length-mismatched arrays as "no bounds"; dropping keeps the manifest
// tidy).
func appendBoundsI64(cm *ColumnManifest, vals []int64, chunkRows, start int) {
	if cm.Enum || len(cm.ChunkMinI64) != start || len(cm.ChunkMaxI64) != start {
		cm.ChunkMinI64, cm.ChunkMaxI64 = nil, nil
		return
	}
	for lo := 0; lo < len(vals); lo += chunkRows {
		hi := min(lo+chunkRows, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			mn, mx = min(mn, v), max(mx, v)
		}
		cm.ChunkMinI64 = append(cm.ChunkMinI64, mn)
		cm.ChunkMaxI64 = append(cm.ChunkMaxI64, mx)
	}
}

// appendBoundsF64 is the float counterpart; a NaN anywhere in the appended
// values drops the column's bounds (NaN breaks ordering, so pruning over
// it would be unsound — matching the save-time stats).
func appendBoundsF64(cm *ColumnManifest, vals []float64, chunkRows, start int) {
	if cm.Enum || len(cm.ChunkMinF64) != start || len(cm.ChunkMaxF64) != start {
		cm.ChunkMinF64, cm.ChunkMaxF64 = nil, nil
		return
	}
	for lo := 0; lo < len(vals); lo += chunkRows {
		hi := min(lo+chunkRows, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo:hi] {
			if math.IsNaN(v) {
				cm.ChunkMinF64, cm.ChunkMaxF64 = nil, nil
				return
			}
			mn, mx = min(mn, v), max(mx, v)
		}
		cm.ChunkMinF64 = append(cm.ChunkMinF64, mn)
		cm.ChunkMaxF64 = append(cm.ChunkMaxF64, mx)
	}
}

// appendBoundsStr is the string counterpart of appendBoundsI64.
func appendBoundsStr(cm *ColumnManifest, vals []string, chunkRows, start int) {
	if cm.Enum || len(cm.ChunkMinStr) != start || len(cm.ChunkMaxStr) != start {
		cm.ChunkMinStr, cm.ChunkMaxStr = nil, nil
		return
	}
	for lo := 0; lo < len(vals); lo += chunkRows {
		hi := min(lo+chunkRows, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			mn, mx = min(mn, v), max(mx, v)
		}
		cm.ChunkMinStr = append(cm.ChunkMinStr, mn)
		cm.ChunkMaxStr = append(cm.ChunkMaxStr, mx)
	}
}
