// Package columnbm is the ColumnBM-style storage substrate of the paper's
// Figure 5: a buffer-managed, chunked column store geared towards efficient
// sequential access.
//
// While MonetDB stores each BAT in a single continuous file, ColumnBM
// partitions column files into large (>1MB) chunks and applies lightweight
// compression so that scans are bandwidth-, not latency-, bound (Section 4
// "Disk"). Tables persisted here can be attached back as fragment-backed
// colstore tables (AttachTable): each chunk becomes one colstore.Fragment
// that decompresses on demand through the buffer pool, so the X100 engine
// scans straight off disk chunks with bounded memory — one decoded chunk
// per column per scan worker.
//
// On-disk format, per chunk:
//
//	magic(4) | codec(1) | count(4) | rawSize(4) | payloadSize(4) | payload
//
// Codecs: raw, RLE (run-length on repeated values), FoR (frame-of-reference:
// per-chunk base + narrow deltas), delta (FoR over successive differences,
// for sorted/clustered integer columns like l_orderkey), dict (per-chunk
// string dictionary with narrow integer codes, for low-cardinality string
// columns) and prefix (front coding: shared prefix with the previous value
// elided, for near-sorted or shared-prefix strings). The writer picks the
// smallest encoding per chunk. See docs/STORAGE_FORMAT.md for the full
// byte-level specification.
package columnbm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// DefaultChunkValues is the number of values per chunk; at 8 bytes/value
// this is a little over 1MB, matching the paper's ">1MB chunks".
const DefaultChunkValues = 1 << 17

const chunkMagic = 0xB41C0DE

// Codec identifies a chunk compression scheme.
type Codec uint8

// Supported codecs. Integer chunks use raw/RLE/FoR/delta; string chunks
// use raw/dict/prefix.
const (
	CodecRaw Codec = iota
	CodecRLE
	CodecFoR
	CodecDelta
	CodecDict
	CodecPrefix
)

// codecNames lists every codec name indexed by its Codec value. It is the
// single registration point for codec enumeration: Codec.String and
// FormatCodecs both derive from it, so adding a codec constant plus one
// entry here keeps every report complete.
var codecNames = [...]string{
	CodecRaw:    "raw",
	CodecRLE:    "rle",
	CodecFoR:    "for",
	CodecDelta:  "delta",
	CodecDict:   "dict",
	CodecPrefix: "prefix",
}

func (c Codec) String() string {
	if int(c) < len(codecNames) {
		return codecNames[c]
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// FormatCodecs renders a codec-name -> chunk-count map as "rle:7,for:8",
// listing codecs in their declaration order ("memory" — used by storage
// reports for resident fragments — first, unknown names last) so output is
// stable.
func FormatCodecs(codecs map[string]int) string {
	known := append([]string{"memory"}, codecNames[:]...)
	out := ""
	emit := func(k string) {
		if n := codecs[k]; n > 0 {
			if out != "" {
				out += ","
			}
			out += fmt.Sprintf("%s:%d", k, n)
		}
	}
	for _, k := range known {
		emit(k)
	}
	rest := make([]string, 0, len(codecs))
	for k := range codecs {
		if !slices.Contains(known, k) {
			rest = append(rest, k)
		}
	}
	slices.Sort(rest)
	for _, k := range rest {
		emit(k)
	}
	return out
}

// ErrCorrupt is returned when a chunk fails validation.
var ErrCorrupt = errors.New("columnbm: corrupt chunk")

// ErrTransient classifies a read failure as retryable (wrapped by injected
// faults and matched, alongside EINTR/EAGAIN, by the read path's bounded
// exponential-backoff retry loop). Errors that still carry it after escaping
// the store exhausted their retries.
var ErrTransient = errors.New("columnbm: transient i/o error")

// Store manages chunked column files under a directory.
type Store struct {
	dir         string
	chunkValues int
	pool        *Pool
	dcache      *DecodedCache
	counters    *storeCounters

	// FaultHook, when non-nil, is called at the stages of a write-back
	// ("chunk" after each appended chunk file, "manifest-temp" after the
	// temp manifest is written, "manifest-commit" after the rename), of
	// the write-ahead log ("wal-append" after a record write, "wal-sync"
	// after an fsync, "wal-rotate" after the temp WAL of a rotation is
	// written, "wal-truncate" after the rotation rename, "wal-replay"
	// before replayed records are applied), and of the read path
	// ("read-chunk" before each chunk-file read attempt — errors wrapping
	// ErrTransient exercise the retry loop); a non-nil return aborts the
	// operation with that error. It exists for crash-safety and
	// fault-injection tests, which kill a checkpoint or a logged write
	// mid-stream and assert that re-attaching sees exactly the last
	// committed state.
	FaultHook func(stage string) error
}

// storeCounters aggregates the read-path and durability health counters of
// one store directory. They are shared across withChunkValues views and
// surfaced via Stats (the shell's \storage command and trace output).
type storeCounters struct {
	checksumFailures atomic.Int64
	dirSyncErrors    atomic.Int64
	dirSyncLogOnce   sync.Once
	retriedReads     atomic.Int64
	scrubVerified    atomic.Int64
	scrubFailed      atomic.Int64
}

// StoreStats is a snapshot of a store's health counters.
type StoreStats struct {
	// ChecksumFailures counts chunk loads rejected because the file's
	// CRC32 did not match the manifest (manifest v3 checksums).
	ChecksumFailures int64
	// DirSyncErrors counts directory fsync failures after a rename commit.
	// Renames may not survive power loss on such filesystems; the error is
	// logged once per store and counted here instead of being discarded.
	DirSyncErrors int64
	// RetriedReads counts chunk-file read attempts that failed with a
	// transient error and were retried with backoff.
	RetriedReads int64
	// ScrubVerified/ScrubFailed count chunks the background CRC scrubber
	// checked against the manifest: verified clean vs failed (corrupt or
	// unreadable).
	ScrubVerified, ScrubFailed int64
	// PoolHits/PoolMisses/PoolEvictions are the compressed-chunk buffer
	// pool counters (whole chunk files, pre-decode).
	PoolHits, PoolMisses, PoolEvictions int64
	// Cache is the decoded-chunk (cooperative scan) cache snapshot; the
	// zero value with CapacityBytes == 0 means the cache is disabled.
	Cache DecodedCacheStats
}

// Stats returns a snapshot of the store's health counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		ChecksumFailures: s.counters.checksumFailures.Load(),
		DirSyncErrors:    s.counters.dirSyncErrors.Load(),
		RetriedReads:     s.counters.retriedReads.Load(),
		ScrubVerified:    s.counters.scrubVerified.Load(),
		ScrubFailed:      s.counters.scrubFailed.Load(),
	}
	st.PoolHits, st.PoolMisses, st.PoolEvictions = s.pool.Stats()
	if s.dcache != nil {
		st.Cache = s.dcache.Stats()
	}
	return st
}

// syncDir fsyncs the store directory so a rename commit itself is durable:
// without it a power loss can roll a committed rename back even though the
// process saw it succeed. Filesystems that reject directory fsync make this
// a soft failure: the error is logged once per store and counted (Stats),
// never silently discarded.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err == nil {
		err = d.Sync()
		d.Close()
	}
	if err != nil {
		s.counters.dirSyncErrors.Add(1)
		s.counters.dirSyncLogOnce.Do(func() {
			log.Printf("columnbm: directory fsync of %s failed (rename commits may not survive power loss; counted in store stats): %v", s.dir, err)
		})
	}
}

// fault runs the fault-injection hook for a write-back stage.
func (s *Store) fault(stage string) error {
	if s.FaultHook == nil {
		return nil
	}
	return s.FaultHook(stage)
}

// NewStore opens (creating if needed) a store in dir. chunkValues <= 0
// selects DefaultChunkValues; poolChunks <= 0 selects 64 buffered chunks.
func NewStore(dir string, chunkValues, poolChunks int) (*Store, error) {
	if chunkValues <= 0 {
		chunkValues = DefaultChunkValues
	}
	if poolChunks <= 0 {
		poolChunks = 64
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("columnbm: %w", err)
	}
	return &Store{
		dir:         dir,
		chunkValues: chunkValues,
		pool:        NewPool(poolChunks),
		dcache:      NewDecodedCache(DefaultDecodedCacheBytes, PolicyScanResistant),
		counters:    &storeCounters{},
	}, nil
}

// DefaultDecodedCacheBytes is the default decoded-chunk cache budget:
// large enough that concurrent scans of a hot table share decodes, small
// enough to never dominate the process footprint.
const DefaultDecodedCacheBytes = 64 << 20

// Pool exposes the store's buffer pool (for stats in benches/tests).
func (s *Store) Pool() *Pool { return s.pool }

// DecodedCache exposes the decoded-chunk cooperative-scan cache (nil when
// disabled).
func (s *Store) DecodedCache() *DecodedCache { return s.dcache }

// ConfigureDecodedCache replaces the decoded-chunk cache: capacityBytes
// <= 0 disables cooperative scan sharing (every scan decodes privately,
// the pre-cache behaviour). Call before issuing queries; the previous
// cache's contents and counters are dropped.
func (s *Store) ConfigureDecodedCache(capacityBytes int64, policy CachePolicy) {
	if capacityBytes <= 0 {
		s.dcache = nil
		return
	}
	s.dcache = NewDecodedCache(capacityBytes, policy)
}

// ChunkValues returns the number of values per chunk this store writes.
func (s *Store) ChunkValues() int { return s.chunkValues }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// chunkPath names chunk idx of a column at a chunk-file generation.
// Generation 0 keeps the original (version 1) naming so old directories
// attach unchanged; rewrites bump the generation and add a ".gN" infix, so
// a rewrite never touches files referenced by the committed manifest.
func (s *Store) chunkPath(column string, gen, idx int) string {
	if gen == 0 {
		return filepath.Join(s.dir, fmt.Sprintf("%s.%06d.chunk", column, idx))
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s.g%d.%06d.chunk", column, gen, idx))
}

// WriteInt64Column splits vals into chunks, compresses each with the best
// of the available codecs, and writes them. It returns the number of chunks.
func (s *Store) WriteInt64Column(column string, vals []int64) (int, error) {
	return s.writeInt64Chunks(column, 0, 0, vals, nil)
}

// writeInt64Chunks writes vals as chunks [start, start+k) of a column at a
// generation; it returns k. start > 0 is the checkpoint append path. When
// crcs is non-nil the CRC32 of each written chunk file is appended to it
// (for the manifest's chunk_crc32 field).
func (s *Store) writeInt64Chunks(column string, gen, start int, vals []int64, crcs *[]uint32) (int, error) {
	nchunks := 0
	for lo := 0; lo < len(vals) || (lo == 0 && len(vals) == 0); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		payload, codec := encodeInt64(vals[lo:hi])
		crc, err := s.writeChunk(column, gen, start+nchunks, codec, hi-lo, 8*(hi-lo), payload)
		if err != nil {
			return nchunks, err
		}
		if crcs != nil {
			*crcs = append(*crcs, crc)
		}
		nchunks++
		if len(vals) == 0 {
			break
		}
	}
	return nchunks, nil
}

// ReadInt64Column reads all chunks of a column written by WriteInt64Column.
func (s *Store) ReadInt64Column(column string, nchunks int) ([]int64, error) {
	return s.readInt64Chunks(column, 0, nchunks)
}

func (s *Store) readInt64Chunks(column string, gen, nchunks int) ([]int64, error) {
	var out []int64
	for i := 0; i < nchunks; i++ {
		hdr, payload, err := s.readChunk(column, gen, i)
		if err != nil {
			return nil, err
		}
		vals, err := decodeInt64(hdr, payload)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	return out, nil
}

// WriteFloat64Column writes a float column (raw codec: floats rarely RLE).
func (s *Store) WriteFloat64Column(column string, vals []float64) (int, error) {
	return s.writeFloat64Chunks(column, 0, 0, vals, nil)
}

func (s *Store) writeFloat64Chunks(column string, gen, start int, vals []float64, crcs *[]uint32) (int, error) {
	nchunks := 0
	for lo := 0; lo < len(vals) || (lo == 0 && len(vals) == 0); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		payload := make([]byte, 8*(hi-lo))
		for i, v := range vals[lo:hi] {
			binary.LittleEndian.PutUint64(payload[8*i:], floatBits(v))
		}
		crc, err := s.writeChunk(column, gen, start+nchunks, CodecRaw, hi-lo, len(payload), payload)
		if err != nil {
			return nchunks, err
		}
		if crcs != nil {
			*crcs = append(*crcs, crc)
		}
		nchunks++
		if len(vals) == 0 {
			break
		}
	}
	return nchunks, nil
}

// ReadFloat64Column reads a float column.
func (s *Store) ReadFloat64Column(column string, nchunks int) ([]float64, error) {
	return s.readFloat64Chunks(column, 0, nchunks)
}

func (s *Store) readFloat64Chunks(column string, gen, nchunks int) ([]float64, error) {
	var out []float64
	for i := 0; i < nchunks; i++ {
		hdr, payload, err := s.readChunk(column, gen, i)
		if err != nil {
			return nil, err
		}
		if hdr.codec != CodecRaw || len(payload) != 8*hdr.count {
			return nil, fmt.Errorf("%w: column %s chunk %d", ErrCorrupt, column, i)
		}
		for j := 0; j < hdr.count; j++ {
			out = append(out, floatFromBits(binary.LittleEndian.Uint64(payload[8*j:])))
		}
	}
	return out, nil
}

// WriteStringColumn splits a string column into chunks, compresses each
// with the best of the string codecs (raw, dict, prefix), and writes them.
// It returns the number of chunks. writeStringChunks is the variant that
// also reports per-chunk dictionary cardinality for the manifest.
func (s *Store) WriteStringColumn(column string, vals []string) (int, error) {
	return s.writeStringChunks(column, 0, 0, vals, nil, nil)
}

// writeStringChunks writes vals as chunks [start, start+k) of a column at a
// generation and, when cards is non-nil, appends the dictionary cardinality
// of each chunk (0 for non-dict chunks) to *cards; when crcs is non-nil,
// each chunk file's CRC32 is appended to it. rawSize always records the raw
// (length-prefixed) encoding size, so compression ratios compare against
// the uncompressed layout.
func (s *Store) writeStringChunks(column string, gen, start int, vals []string, cards *[]int, crcs *[]uint32) (int, error) {
	nchunks := 0
	for lo := 0; lo < len(vals) || (lo == 0 && len(vals) == 0); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		payload, codec, card, rawSize := encodeString(vals[lo:hi])
		crc, err := s.writeChunk(column, gen, start+nchunks, codec, hi-lo, rawSize, payload)
		if err != nil {
			return nchunks, err
		}
		if cards != nil {
			*cards = append(*cards, card)
		}
		if crcs != nil {
			*crcs = append(*crcs, crc)
		}
		nchunks++
		if len(vals) == 0 {
			break
		}
	}
	return nchunks, nil
}

// ReadStringColumn reads a string column written by WriteStringColumn.
func (s *Store) ReadStringColumn(column string, nchunks int) ([]string, error) {
	return s.readStringChunks(column, 0, nchunks)
}

func (s *Store) readStringChunks(column string, gen, nchunks int) ([]string, error) {
	var out []string
	for i := 0; i < nchunks; i++ {
		hdr, payload, err := s.readChunk(column, gen, i)
		if err != nil {
			return nil, err
		}
		dst := make([]string, hdr.count)
		if err := decodeStringInto(dst, hdr, payload); err != nil {
			return nil, fmt.Errorf("column %s chunk %d: %w", column, i, err)
		}
		out = append(out, dst...)
	}
	return out, nil
}

type chunkHeader struct {
	codec   Codec
	count   int
	rawSize int
}

// writeChunk writes one chunk file (header + payload, fsynced) and returns
// the CRC32 (IEEE) of the full file contents, which the manifest records so
// readers can detect any on-disk corruption before decoding.
func (s *Store) writeChunk(column string, gen, idx int, codec Codec, count, rawSize int, payload []byte) (uint32, error) {
	buf := make([]byte, 17+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], chunkMagic)
	buf[4] = byte(codec)
	binary.LittleEndian.PutUint32(buf[5:], uint32(count))
	binary.LittleEndian.PutUint32(buf[9:], uint32(rawSize))
	binary.LittleEndian.PutUint32(buf[13:], uint32(len(payload)))
	copy(buf[17:], payload)
	crc := crc32.ChecksumIEEE(buf)
	// Chunk data is fsynced before the manifest commit can reference it:
	// the crash contract ("a committed manifest's chunks are readable")
	// must hold under power loss, not just process death.
	f, err := os.OpenFile(s.chunkPath(column, gen, idx), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return crc, s.fault("chunk")
}

func (s *Store) readChunk(column string, gen, idx int) (chunkHeader, []byte, error) {
	return s.readChunkChecked(column, gen, idx, 0, false)
}

// readChunkChecked reads a chunk through the buffer pool and, when check is
// set, verifies the CRC32 the manifest recorded for it. Verification happens
// inside the pool's load function, so a chunk is checksummed once per load —
// pool hits serve pre-verified bytes — and a corrupt file never enters the
// pool.
func (s *Store) readChunkChecked(column string, gen, idx int, crc uint32, check bool) (chunkHeader, []byte, error) {
	key := s.chunkPath(column, gen, idx)
	raw, err := s.pool.Get(key, func() ([]byte, error) {
		b, err := s.readChunkFile(key)
		if err != nil {
			return nil, err
		}
		if check {
			if got := crc32.ChecksumIEEE(b); got != crc {
				s.counters.checksumFailures.Add(1)
				return nil, fmt.Errorf("%w: %s checksum %08x, manifest records %08x", ErrCorrupt, key, got, crc)
			}
		}
		return b, nil
	})
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return chunkHeader{}, nil, err
		}
		return chunkHeader{}, nil, fmt.Errorf("columnbm: column %s gen %d chunk %d: %w", column, gen, idx, err)
	}
	if len(raw) < 17 || binary.LittleEndian.Uint32(raw[0:]) != chunkMagic {
		return chunkHeader{}, nil, fmt.Errorf("%w: %s", ErrCorrupt, key)
	}
	hdr := chunkHeader{
		codec:   Codec(raw[4]),
		count:   int(binary.LittleEndian.Uint32(raw[5:])),
		rawSize: int(binary.LittleEndian.Uint32(raw[9:])),
	}
	plen := int(binary.LittleEndian.Uint32(raw[13:]))
	if len(raw) != 17+plen {
		return chunkHeader{}, nil, fmt.Errorf("%w: %s payload size mismatch", ErrCorrupt, key)
	}
	return hdr, raw[17:], nil
}

// maxReadAttempts bounds the transient-read retry loop: up to three
// backoff sleeps (1/2/4 ms) after the initial attempt.
const maxReadAttempts = 4

// readChunkFile reads one chunk file, retrying transient failures
// (interrupted/temporarily-unavailable syscalls and injected faults
// wrapping ErrTransient) with bounded exponential backoff. Permanent
// failures — missing files, corruption — return immediately; a transient
// failure that survives every attempt escapes still wrapping ErrTransient
// so callers can classify it.
func (s *Store) readChunkFile(key string) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		var b []byte
		err := s.fault("read-chunk")
		if err == nil {
			b, err = os.ReadFile(key)
		}
		if err == nil {
			return b, nil
		}
		if !transientReadError(err) {
			return nil, err
		}
		if attempt == maxReadAttempts-1 {
			return nil, fmt.Errorf("read failed after %d attempts: %w", maxReadAttempts, err)
		}
		s.counters.retriedReads.Add(1)
		time.Sleep(time.Millisecond << attempt)
	}
}

// transientReadError classifies a chunk-read failure as retryable.
func transientReadError(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}

// CompressedSize returns the total on-disk size of a column's chunks
// (generation 0; column-level experiments that bypass manifests).
func (s *Store) CompressedSize(column string, nchunks int) (int64, error) {
	var total int64
	for i := 0; i < nchunks; i++ {
		fi, err := os.Stat(s.chunkPath(column, 0, i))
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

// --- int64 codecs ---

func encodeInt64(vals []int64) ([]byte, Codec) {
	rle := tryRLE(vals)
	forEnc := tryFoR(vals)
	deltaEnc := tryDelta(vals)
	raw := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
	}
	best, codec := raw, CodecRaw
	if rle != nil && len(rle) < len(best) {
		best, codec = rle, CodecRLE
	}
	if forEnc != nil && len(forEnc) < len(best) {
		best, codec = forEnc, CodecFoR
	}
	if deltaEnc != nil && len(deltaEnc) < len(best) {
		best, codec = deltaEnc, CodecDelta
	}
	return best, codec
}

// tryRLE encodes (value, runLength) pairs; nil when unprofitable.
func tryRLE(vals []int64) []byte {
	if len(vals) == 0 {
		return []byte{}
	}
	var out []byte
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] && j-i < 1<<31 {
			j++
		}
		var buf [12]byte
		binary.LittleEndian.PutUint64(buf[0:], uint64(vals[i]))
		binary.LittleEndian.PutUint32(buf[8:], uint32(j-i))
		out = append(out, buf[:]...)
		i = j
		if len(out) >= 8*len(vals) {
			return nil
		}
	}
	return out
}

// tryFoR encodes base + per-value deltas in the narrowest of 1/2/4 bytes;
// nil when deltas do not fit 4 bytes.
func tryFoR(vals []int64) []byte {
	if len(vals) == 0 {
		return nil
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = min(lo, v), max(hi, v)
	}
	span := uint64(hi - lo)
	var width int
	switch {
	case span < 1<<8:
		width = 1
	case span < 1<<16:
		width = 2
	case span < 1<<32:
		width = 4
	default:
		return nil
	}
	out := make([]byte, 9+width*len(vals))
	binary.LittleEndian.PutUint64(out[0:], uint64(lo))
	out[8] = byte(width)
	for i, v := range vals {
		d := uint64(v - lo)
		switch width {
		case 1:
			out[9+i] = byte(d)
		case 2:
			binary.LittleEndian.PutUint16(out[9+2*i:], uint16(d))
		case 4:
			binary.LittleEndian.PutUint32(out[9+4*i:], uint32(d))
		}
	}
	return out
}

// tryDelta encodes the first value plus frame-of-reference-compressed
// successive differences: ideal for sorted or clustered integer columns
// (l_orderkey, dates) whose absolute values span too wide for plain FoR but
// whose steps are tiny. Layout: first(8) | diffBase(8) | width(1) | narrow
// (diff - diffBase) per value after the first. Arithmetic wraps, so the
// round trip is exact for any int64 input; nil when the diff span needs
// more than 4 bytes.
func tryDelta(vals []int64) []byte {
	if len(vals) < 2 {
		return nil
	}
	lo := vals[1] - vals[0]
	hi := lo
	for i := 2; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		lo, hi = min(lo, d), max(hi, d)
	}
	span := uint64(hi - lo)
	var width int
	switch {
	case span < 1<<8:
		width = 1
	case span < 1<<16:
		width = 2
	case span < 1<<32:
		width = 4
	default:
		return nil
	}
	out := make([]byte, 17+width*(len(vals)-1))
	binary.LittleEndian.PutUint64(out[0:], uint64(vals[0]))
	binary.LittleEndian.PutUint64(out[8:], uint64(lo))
	out[16] = byte(width)
	for i := 1; i < len(vals); i++ {
		d := uint64(vals[i] - vals[i-1] - lo)
		switch width {
		case 1:
			out[17+(i-1)] = byte(d)
		case 2:
			binary.LittleEndian.PutUint16(out[17+2*(i-1):], uint16(d))
		case 4:
			binary.LittleEndian.PutUint32(out[17+4*(i-1):], uint32(d))
		}
	}
	return out
}

func decodeInt64(hdr chunkHeader, payload []byte) ([]int64, error) {
	out := make([]int64, hdr.count)
	if err := decodeIntInto(out, hdr, payload); err != nil {
		return nil, err
	}
	return out, nil
}

// intNative constrains the destination element types of narrow-native chunk
// decoding: integer chunks decode straight into the column's physical
// representation (int32 keys, uint8/uint16 enum codes) with no intermediate
// int64 buffer.
type intNative interface {
	~uint8 | ~uint16 | ~int32 | ~int64
}

// decodeIntInto decodes an integer chunk into dst, which must have length
// hdr.count. Codec arithmetic runs in int64 (the stored representation) and
// each value is truncated to the destination type on store; the writer only
// produces values from the column's physical domain, so the truncation is
// lossless on well-formed chunks. It is the allocation-free core of the
// chunk-at-a-time scan path.
func decodeIntInto[T intNative](dst []T, hdr chunkHeader, payload []byte) error {
	if len(dst) != hdr.count {
		return ErrCorrupt
	}
	switch hdr.codec {
	case CodecRaw:
		if len(payload) != 8*hdr.count {
			return ErrCorrupt
		}
		for i := range dst {
			dst[i] = T(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return nil
	case CodecRLE:
		n := 0
		for off := 0; off+12 <= len(payload); off += 12 {
			v := T(binary.LittleEndian.Uint64(payload[off:]))
			k := int(binary.LittleEndian.Uint32(payload[off+8:]))
			if k < 0 || n+k > hdr.count {
				return ErrCorrupt
			}
			for j := 0; j < k; j++ {
				dst[n+j] = v
			}
			n += k
		}
		if n != hdr.count {
			return ErrCorrupt
		}
		return nil
	case CodecFoR:
		if len(payload) < 9 {
			return ErrCorrupt
		}
		base := int64(binary.LittleEndian.Uint64(payload[0:]))
		width := int(payload[8])
		if width != 1 && width != 2 && width != 4 {
			return ErrCorrupt
		}
		if len(payload) != 9+width*hdr.count {
			return ErrCorrupt
		}
		for i := range dst {
			switch width {
			case 1:
				dst[i] = T(base + int64(payload[9+i]))
			case 2:
				dst[i] = T(base + int64(binary.LittleEndian.Uint16(payload[9+2*i:])))
			case 4:
				dst[i] = T(base + int64(binary.LittleEndian.Uint32(payload[9+4*i:])))
			}
		}
		return nil
	case CodecDelta:
		if hdr.count < 2 || len(payload) < 17 {
			return ErrCorrupt
		}
		base := int64(binary.LittleEndian.Uint64(payload[8:]))
		width := int(payload[16])
		if width != 1 && width != 2 && width != 4 {
			return ErrCorrupt
		}
		if len(payload) != 17+width*(hdr.count-1) {
			return ErrCorrupt
		}
		v := int64(binary.LittleEndian.Uint64(payload[0:]))
		dst[0] = T(v)
		for i := 1; i < hdr.count; i++ {
			var d int64
			switch width {
			case 1:
				d = int64(payload[17+(i-1)])
			case 2:
				d = int64(binary.LittleEndian.Uint16(payload[17+2*(i-1):]))
			case 4:
				d = int64(binary.LittleEndian.Uint32(payload[17+4*(i-1):]))
			}
			v += base + d
			dst[i] = T(v)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown codec %d", ErrCorrupt, hdr.codec)
	}
}

// --- string codecs ---

// maxDictCard caps per-chunk dictionary cardinality: codes are at most two
// bytes wide.
const maxDictCard = 1 << 16

// encodeString compresses a chunk of strings with the best of the string
// codecs and reports the chosen codec, the dictionary cardinality for dict
// chunks (0 otherwise), and the raw-layout size the chunk header records.
// A compressed codec must beat the raw layout by at least 1/16th of its
// size: prefix coding's shorter varint lengths win a few percent on any
// input, and such marginal wins neither pay for the extra decode work nor
// keep codec reports stable across chunks.
func encodeString(vals []string) (payload []byte, codec Codec, dictCard, rawSize int) {
	raw := encodeStringRaw(vals)
	limit := len(raw) - len(raw)/16
	payload, codec = raw, CodecRaw
	if d, card := tryDictStr(vals, limit); d != nil && len(d) < min(limit, len(payload)) {
		payload, codec, dictCard = d, CodecDict, card
	}
	if p := tryPrefix(vals, limit); p != nil && len(p) < min(limit, len(payload)) {
		payload, codec, dictCard = p, CodecPrefix, 0
	}
	return payload, codec, dictCard, len(raw)
}

// encodeStringRaw is the uncompressed string layout: per value, a 4-byte
// little-endian length followed by the bytes.
func encodeStringRaw(vals []string) []byte {
	size := 0
	for _, v := range vals {
		size += 4 + len(v)
	}
	out := make([]byte, 0, size)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
		out = append(out, v...)
	}
	return out
}

// tryDictStr encodes a per-chunk dictionary of distinct values (in order of
// first occurrence) followed by narrow per-row codes:
//
//	card(4) | card × (len(4) | bytes) | width(1) | count × code(width)
//
// width is 1 byte for up to 256 distinct values, else 2. Returns nil when
// the chunk exceeds maxDictCard distinct values or the encoding would not
// beat the raw layout (limit short-circuits the dictionary build on
// high-cardinality chunks).
func tryDictStr(vals []string, limit int) ([]byte, int) {
	if len(vals) == 0 {
		return nil, 0
	}
	index := make(map[string]int)
	var order []string
	dictBytes := 4
	codes := make([]int, len(vals))
	for i, v := range vals {
		c, ok := index[v]
		if !ok {
			c = len(order)
			if c+1 > maxDictCard {
				return nil, 0
			}
			index[v] = c
			order = append(order, v)
			dictBytes += 4 + len(v)
			// A dict encoding is at least the dictionary plus one code per
			// row; stop early once that can no longer beat raw.
			if dictBytes+1+len(vals) >= limit {
				return nil, 0
			}
		}
		codes[i] = c
	}
	width := 1
	if len(order) > 256 {
		width = 2
	}
	out := make([]byte, 0, dictBytes+1+width*len(vals))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(order)))
	for _, v := range order {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
		out = append(out, v...)
	}
	out = append(out, byte(width))
	for _, c := range codes {
		if width == 1 {
			out = append(out, byte(c))
		} else {
			out = binary.LittleEndian.AppendUint16(out, uint16(c))
		}
	}
	return out, len(order)
}

// tryPrefix front-codes the chunk: each value stores the length of its
// common prefix with the previous value (uvarint), the suffix length
// (uvarint), and the suffix bytes. The first value has prefix length 0.
// Returns nil once the encoding reaches the raw size.
func tryPrefix(vals []string, limit int) []byte {
	if len(vals) == 0 {
		return nil
	}
	out := make([]byte, 0, limit)
	prev := ""
	for _, v := range vals {
		p := commonPrefixLen(prev, v)
		out = binary.AppendUvarint(out, uint64(p))
		out = binary.AppendUvarint(out, uint64(len(v)-p))
		out = append(out, v[p:]...)
		if len(out) >= limit {
			return nil
		}
		prev = v
	}
	return out
}

func commonPrefixLen(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// decodeStringInto decodes a string chunk (raw, dict or prefix codec) into
// dst, which must have length hdr.count. Decoded strings are fresh copies:
// they never alias the (pooled, reusable) compressed payload.
func decodeStringInto(dst []string, hdr chunkHeader, payload []byte) error {
	if len(dst) != hdr.count {
		return ErrCorrupt
	}
	switch hdr.codec {
	case CodecRaw:
		off := 0
		for i := range dst {
			if off+4 > len(payload) {
				return fmt.Errorf("%w: truncated string chunk", ErrCorrupt)
			}
			n := int(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
			if n < 0 || off+n > len(payload) {
				return fmt.Errorf("%w: truncated string chunk", ErrCorrupt)
			}
			dst[i] = string(payload[off : off+n])
			off += n
		}
		if off != len(payload) {
			return fmt.Errorf("%w: trailing bytes in string chunk", ErrCorrupt)
		}
		return nil
	case CodecDict:
		dict, width, codes, err := scanDictPayload(hdr, payload, true)
		if err != nil {
			return err
		}
		for i := range dst {
			var c int
			if width == 1 {
				c = int(codes[i])
			} else {
				c = int(binary.LittleEndian.Uint16(codes[2*i:]))
			}
			if c >= len(dict) {
				return fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, c)
			}
			dst[i] = dict[c]
		}
		return nil
	case CodecPrefix:
		off := 0
		prev := ""
		for i := range dst {
			p, n := binary.Uvarint(payload[off:])
			if n <= 0 || p > uint64(len(prev)) {
				return fmt.Errorf("%w: bad prefix length", ErrCorrupt)
			}
			off += n
			sl, n := binary.Uvarint(payload[off:])
			if n <= 0 || sl > uint64(len(payload)) {
				return fmt.Errorf("%w: bad suffix length", ErrCorrupt)
			}
			off += n
			if off+int(sl) > len(payload) {
				return fmt.Errorf("%w: truncated prefix chunk", ErrCorrupt)
			}
			v := prev[:p] + string(payload[off:off+int(sl)])
			off += int(sl)
			dst[i] = v
			prev = v
		}
		if off != len(payload) {
			return fmt.Errorf("%w: trailing bytes in prefix chunk", ErrCorrupt)
		}
		return nil
	default:
		return fmt.Errorf("%w: codec %v is not a string codec", ErrCorrupt, hdr.codec)
	}
}

// scanDictPayload validates a dict-codec chunk payload and splits it into
// its sections: the dictionary values (materialized only when wantValues is
// set — code-only readers skip the string allocations), the code width
// (1 or 2 bytes), and the raw code section.
func scanDictPayload(hdr chunkHeader, payload []byte, wantValues bool) (dict []string, width int, codes []byte, err error) {
	card, width, codes, dictBytes, err := dictSections(hdr, payload)
	if err != nil {
		return nil, 0, nil, err
	}
	if wantValues {
		dict = make([]string, card)
		off := 4
		for i := range dict {
			n := int(binary.LittleEndian.Uint32(dictBytes[off:]))
			dict[i] = string(dictBytes[off+4 : off+4+n])
			off += 4 + n
		}
	}
	return dict, width, codes, nil
}

// dictSections walks a dict chunk payload without materializing any value:
// it returns the dictionary cardinality, code width, the code section, and
// the payload prefix holding card + the length-prefixed values.
func dictSections(hdr chunkHeader, payload []byte) (card, width int, codes, dictBytes []byte, err error) {
	if len(payload) < 4 {
		return 0, 0, nil, nil, fmt.Errorf("%w: dict chunk too short", ErrCorrupt)
	}
	card = int(binary.LittleEndian.Uint32(payload[0:]))
	if card <= 0 || card > maxDictCard {
		return 0, 0, nil, nil, fmt.Errorf("%w: dict cardinality %d", ErrCorrupt, card)
	}
	off := 4
	for i := 0; i < card; i++ {
		if off+4 > len(payload) {
			return 0, 0, nil, nil, fmt.Errorf("%w: truncated dict", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if n < 0 || off+n > len(payload) {
			return 0, 0, nil, nil, fmt.Errorf("%w: truncated dict", ErrCorrupt)
		}
		off += n
	}
	if off >= len(payload) {
		return 0, 0, nil, nil, fmt.Errorf("%w: dict chunk missing code width", ErrCorrupt)
	}
	width = int(payload[off])
	dictBytes = payload[:off]
	off++
	if width != 1 && width != 2 {
		return 0, 0, nil, nil, fmt.Errorf("%w: dict code width %d", ErrCorrupt, width)
	}
	if len(payload) != off+width*hdr.count {
		return 0, 0, nil, nil, fmt.Errorf("%w: dict code section size mismatch", ErrCorrupt)
	}
	return card, width, payload[off:], dictBytes, nil
}

// decodeDictCodesInto extracts the code section of a dict chunk into dst,
// mapping each chunk-local code through remap (chunk-local -> table-level
// code). It allocates nothing: the per-chunk dictionary strings are never
// materialized. dst must have length hdr.count; remap must cover the
// chunk's dictionary cardinality.
func decodeDictCodesInto[T intNative](dst []T, remap []T, hdr chunkHeader, payload []byte) error {
	if len(dst) != hdr.count {
		return ErrCorrupt
	}
	card, width, codes, _, err := dictSections(hdr, payload)
	if err != nil {
		return err
	}
	if card > len(remap) {
		return fmt.Errorf("%w: dict cardinality %d exceeds remap table %d", ErrCorrupt, card, len(remap))
	}
	if width == 1 {
		for i := range dst {
			c := int(codes[i])
			if c >= card {
				return fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, c)
			}
			dst[i] = remap[c]
		}
		return nil
	}
	for i := range dst {
		c := int(binary.LittleEndian.Uint16(codes[2*i:]))
		if c >= card {
			return fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, c)
		}
		dst[i] = remap[c]
	}
	return nil
}

// decodeLocalDictCodes extracts the code section of a dict chunk as
// chunk-local codes (uint8 or uint16 by the chunk's own width) plus the
// chunk dictionary, for per-chunk code-domain predicate evaluation.
func decodeLocalDictCodes(hdr chunkHeader, payload []byte, codeBuf any) (dict []string, out any, err error) {
	dict, width, codes, err := scanDictPayload(hdr, payload, true)
	if err != nil {
		return nil, nil, err
	}
	card := len(dict)
	if width == 1 {
		dst := sliceBuf[uint8](codeBuf, hdr.count)
		for i := range dst {
			if int(codes[i]) >= card {
				return nil, nil, fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, codes[i])
			}
			dst[i] = codes[i]
		}
		return dict, dst, nil
	}
	dst := sliceBuf[uint16](codeBuf, hdr.count)
	for i := range dst {
		c := binary.LittleEndian.Uint16(codes[2*i:])
		if int(c) >= card {
			return nil, nil, fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, c)
		}
		dst[i] = c
	}
	return dict, dst, nil
}

// ChunkInfo describes one stored chunk (for storage introspection: the
// shell's \storage command and dbgen's codec report). Only the fixed-size
// header is read.
type ChunkInfo struct {
	Codec       Codec
	Count       int
	RawSize     int
	PayloadSize int
}

// ChunkInfo reads the header of chunk idx of a column (generation 0)
// without loading the payload (and without touching the buffer pool).
// TableStorage resolves the committed generation from the manifest.
func (s *Store) ChunkInfo(column string, idx int) (ChunkInfo, error) {
	return s.chunkInfoGen(column, 0, idx)
}

func (s *Store) chunkInfoGen(column string, gen, idx int) (ChunkInfo, error) {
	f, err := os.Open(s.chunkPath(column, gen, idx))
	if err != nil {
		return ChunkInfo{}, fmt.Errorf("columnbm: %w", err)
	}
	defer f.Close()
	var hdr [17]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return ChunkInfo{}, fmt.Errorf("%w: %s", ErrCorrupt, s.chunkPath(column, gen, idx))
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != chunkMagic {
		return ChunkInfo{}, fmt.Errorf("%w: %s", ErrCorrupt, s.chunkPath(column, gen, idx))
	}
	return ChunkInfo{
		Codec:       Codec(hdr[4]),
		Count:       int(binary.LittleEndian.Uint32(hdr[5:])),
		RawSize:     int(binary.LittleEndian.Uint32(hdr[9:])),
		PayloadSize: int(binary.LittleEndian.Uint32(hdr[13:])),
	}, nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
