package columnbm

import (
	"container/list"
	"fmt"
	"sync"
)

// CachePolicy selects the decoded-chunk cache's eviction strategy.
type CachePolicy uint8

const (
	// PolicyLRU evicts the least-recently-used decoded chunk. Simple, but
	// one sequential scan of a table larger than the cache floods out the
	// entire hot set.
	PolicyLRU CachePolicy = iota
	// PolicyScanResistant is a segmented LRU (2Q-style): fresh decodes
	// enter a probationary segment and only a re-reference — a second scan
	// attaching to the circulating chunk stream — promotes them to the
	// protected segment. A one-pass sequential flood cycles through
	// probation and never displaces the protected working set.
	PolicyScanResistant
)

// String names the policy as accepted by configuration surfaces.
func (p CachePolicy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyScanResistant:
		return "scan-resistant"
	default:
		return fmt.Sprintf("policy(%d)", p)
	}
}

// ParseCachePolicy resolves a policy name ("lru", "scan-resistant").
func ParseCachePolicy(name string) (CachePolicy, error) {
	switch name {
	case "lru":
		return PolicyLRU, nil
	case "scan-resistant", "scanresistant", "2q":
		return PolicyScanResistant, nil
	default:
		return 0, fmt.Errorf("columnbm: unknown cache policy %q", name)
	}
}

// DecodedCache is the cooperative-scan layer of the buffer manager: it
// holds decoded (decompressed, typed) chunk slices keyed by chunk file, so
// concurrent scans of the same table attach to the chunks the first scan
// is already circulating instead of each decoding every chunk privately.
// Entries are immutable shared slices — the same contract in-memory
// columns already have — which is what makes attaching free: a follower
// gets the finished slice, no hand-off protocol, no waiting on a leader.
//
// Capacity is in decoded bytes. Two policies are available (CachePolicy);
// both run under one mutex, which is off the decode path on hits and
// amortized over a whole chunk (≥ tens of thousands of values) otherwise.
type DecodedCache struct {
	mu       sync.Mutex
	capacity int64
	policy   CachePolicy
	size     int64
	protSize int64

	probation *list.List // front = most recent; LRU keeps everything here
	protected *list.List // scan-resistant hot segment
	entries   map[string]*list.Element

	hits, misses, attaches, evictions int64
}

type dcEntry struct {
	key  string
	data any
	size int64
	// prot marks residence in the protected segment.
	prot bool
	// refed marks that the entry has been re-referenced since it was
	// decoded; the first re-reference is an "attach" — a second scan
	// joining the chunk stream the first decode paid for.
	refed bool
}

// DecodedCacheStats is a point-in-time snapshot of the decoded-chunk
// cache: occupancy and the hit/miss/attach/eviction counters the
// `\storage` command and trace surface.
type DecodedCacheStats struct {
	// Policy is the active eviction policy.
	Policy CachePolicy
	// CapacityBytes is the configured decoded-byte budget.
	CapacityBytes int64
	// SizeBytes is the current decoded-byte occupancy.
	SizeBytes int64
	// Entries is the number of resident decoded chunks.
	Entries int
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that had to decode.
	Misses int64
	// Attaches counts first re-references of a decoded chunk — scans that
	// joined ("attached to") a chunk stream another scan already decoded.
	Attaches int64
	// Evictions counts evicted decoded chunks.
	Evictions int64
}

// NewDecodedCache creates a cache with the given decoded-byte capacity.
func NewDecodedCache(capacityBytes int64, policy CachePolicy) *DecodedCache {
	if capacityBytes <= 0 {
		capacityBytes = 1
	}
	return &DecodedCache{
		capacity:  capacityBytes,
		policy:    policy,
		probation: list.New(),
		protected: list.New(),
		entries:   make(map[string]*list.Element),
	}
}

// Get returns the decoded slice for key, decoding it with load on a miss.
// load must return a freshly allocated slice (never a caller-owned buffer)
// and its decoded size in bytes; the returned slice is shared and must be
// treated as immutable by every caller.
func (c *DecodedCache) Get(key string, load func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*dcEntry)
		c.hits++
		if !e.refed {
			e.refed = true
			c.attaches++
		}
		c.touch(el, e)
		data := e.data
		c.mu.Unlock()
		return data, nil
	}
	c.misses++
	c.mu.Unlock()

	data, size, err := load()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Raced with another decoder; keep the resident copy so all
		// followers share one slice.
		e := el.Value.(*dcEntry)
		if !e.refed {
			e.refed = true
			c.attaches++
		}
		c.touch(el, e)
		return e.data, nil
	}
	e := &dcEntry{key: key, data: data, size: size}
	c.entries[key] = c.probation.PushFront(e)
	c.size += size
	c.evict()
	return data, nil
}

// touch applies the policy's re-reference move. Called with mu held.
func (c *DecodedCache) touch(el *list.Element, e *dcEntry) {
	if c.policy == PolicyLRU {
		c.probation.MoveToFront(el)
		return
	}
	if e.prot {
		c.protected.MoveToFront(el)
		return
	}
	// Promotion probation -> protected on re-reference.
	c.probation.Remove(el)
	e.prot = true
	c.entries[e.key] = c.protected.PushFront(e)
	c.protSize += e.size
	// The protected segment may use at most half the budget; overflow
	// demotes its coldest entries back to probation, where the normal
	// eviction order applies.
	for c.protSize > c.capacity/2 && c.protected.Len() > 1 {
		back := c.protected.Back()
		d := back.Value.(*dcEntry)
		c.protected.Remove(back)
		d.prot = false
		c.protSize -= d.size
		c.entries[d.key] = c.probation.PushBack(d)
	}
}

// evict enforces the byte budget: probation evicts from the back first;
// only when probation is empty does the protected segment shrink. Called
// with mu held.
func (c *DecodedCache) evict() {
	for c.size > c.capacity && len(c.entries) > 1 {
		seg := c.probation
		if seg.Len() == 0 {
			seg = c.protected
		}
		back := seg.Back()
		if back == nil {
			return
		}
		e := back.Value.(*dcEntry)
		seg.Remove(back)
		delete(c.entries, e.key)
		c.size -= e.size
		if e.prot {
			c.protSize -= e.size
		}
		c.evictions++
	}
}

// Stats snapshots the cache counters.
func (c *DecodedCache) Stats() DecodedCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return DecodedCacheStats{
		Policy:        c.policy,
		CapacityBytes: c.capacity,
		SizeBytes:     c.size,
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Attaches:      c.attaches,
		Evictions:     c.evictions,
	}
}

// Len returns the number of resident decoded chunks.
func (c *DecodedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// decodedSize estimates the in-memory bytes of a decoded chunk slice.
func decodedSize(data any) int64 {
	switch s := data.(type) {
	case []int64:
		return int64(len(s)) * 8
	case []float64:
		return int64(len(s)) * 8
	case []int32:
		return int64(len(s)) * 4
	case []uint16:
		return int64(len(s)) * 2
	case []uint8:
		return int64(len(s))
	case []bool:
		return int64(len(s))
	case []string:
		n := int64(len(s)) * 16 // string headers
		for _, v := range s {
			n += int64(len(v))
		}
		return n
	default:
		return 0
	}
}
