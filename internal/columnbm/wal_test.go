package columnbm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

func walTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir(), 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func collectWAL(t *testing.T, s *Store, table string, epoch int64) (*WAL, []WALRecord) {
	t.Helper()
	var recs []WALRecord
	w, err := s.OpenWAL(table, epoch, func(r WALRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, recs
}

var walSampleRow = []any{
	true, uint8(7), uint16(300), int32(-4), int64(1 << 40),
	3.25, "hello, wal", "",
}

func TestWALRoundtrip(t *testing.T) {
	s := walTestStore(t)
	w, _ := collectWAL(t, s, "tbl", 3)
	if _, err := os.Stat(w.Path()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("OpenWAL of a missing log must not create the file (read-only attach); stat err = %v", err)
	}
	if err := w.LogInsert(walSampleRow, true); err != nil {
		t.Fatal(err)
	}
	if err := w.LogDelete(41, true); err != nil {
		t.Fatal(err)
	}
	if err := w.LogUpdate(12, walSampleRow, true); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Appends != 3 || st.Syncs == 0 {
		t.Fatalf("stats = %+v, want 3 appends and >0 syncs", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs := collectWAL(t, s, "tbl", 3)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Kind != WALInsert || fmt.Sprint(recs[0].Row) != fmt.Sprint(walSampleRow) {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Kind != WALDelete || recs[1].RowID != 41 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Kind != WALUpdate || recs[2].RowID != 12 || fmt.Sprint(recs[2].Row) != fmt.Sprint(walSampleRow) {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	st = w2.Stats()
	if st.Replayed != 3 || st.TailTruncations != 0 || st.StaleDiscards != 0 {
		t.Fatalf("replay stats = %+v", st)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	s := walTestStore(t)
	w, _ := collectWAL(t, s, "tbl", 1)
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.LogInsert([]any{int32(i)}, true)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	if st.Syncs == 0 || st.Syncs > n {
		t.Fatalf("syncs = %d, want 1..%d", st.Syncs, n)
	}
	w.Close()
	_, recs := collectWAL(t, s, "tbl", 1)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
}

// writeWAL builds a log with k int32-insert records and returns its path.
func writeWAL(t *testing.T, s *Store, table string, epoch int64, k int) string {
	t.Helper()
	w, _ := collectWAL(t, s, table, epoch)
	for i := 0; i < k; i++ {
		if err := w.LogInsert([]any{int32(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w.Path()
}

func TestWALTornTail(t *testing.T) {
	s := walTestStore(t)
	path := writeWAL(t, s, "tbl", 1, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final 3 bytes, then append garbage that
	// can never parse as a frame.
	torn := append(append([]byte{}, raw[:len(raw)-3]...), 0xFF, 0xFF)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs := collectWAL(t, s, "tbl", 1)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records from torn log, want 2", len(recs))
	}
	st := w.Stats()
	if st.TailTruncations != 1 {
		t.Fatalf("stats = %+v, want 1 tail truncation", st)
	}
	// The first append truncates the torn tail and extends the valid prefix.
	if err := w.LogInsert([]any{int32(99)}, true); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs = collectWAL(t, s, "tbl", 1)
	if len(recs) != 3 || recs[2].Row[0] != int32(99) {
		t.Fatalf("after heal: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

func TestWALBitFlips(t *testing.T) {
	s := walTestStore(t)
	path := writeWAL(t, s, "tbl", 1, 3)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any byte of the second frame must cut replay at or before
	// record 1 and must never panic or resurrect record 2 alone.
	frame := 8 + 1 + 1 + 1 + 4 // length+crc | kind | ncols | tag | int32
	start := walHeaderSize + frame
	for off := start; off < start+frame; off++ {
		raw := append([]byte{}, pristine...)
		raw[off] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs := collectWAL(t, s, "tbl", 1)
		if len(recs) > 1 {
			// A flip in the length field may still describe a valid-looking
			// frame only if the CRC also matches — impossible — so anything
			// past the first record means corruption went undetected.
			t.Fatalf("flip at %d: replayed %d records, want <=1", off, len(recs))
		}
		for _, r := range recs {
			if r.Row[0] != int32(0) {
				t.Fatalf("flip at %d resurrected record %+v", off, r)
			}
		}
		if st := w.Stats(); st.TailTruncations != 1 {
			t.Fatalf("flip at %d: stats %+v, want a tail truncation", off, st)
		}
	}
}

func TestWALStaleEpochDiscard(t *testing.T) {
	s := walTestStore(t)
	path := writeWAL(t, s, "tbl", 1, 2)
	w, recs := collectWAL(t, s, "tbl", 2) // epoch moved on: log is stale
	if len(recs) != 0 {
		t.Fatalf("stale log replayed %d records, want 0", len(recs))
	}
	if st := w.Stats(); st.StaleDiscards != 1 {
		t.Fatalf("stats = %+v, want 1 stale discard", st)
	}
	// First append recreates the file under the new epoch.
	if err := w.LogInsert([]any{int32(5)}, true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.LittleEndian.Uint64(raw[8:])); got != 2 {
		t.Fatalf("recreated header epoch = %d, want 2", got)
	}
	w.Close()
	_, recs = collectWAL(t, s, "tbl", 2)
	if len(recs) != 1 || recs[0].Row[0] != int32(5) {
		t.Fatalf("replay after recreate: %+v", recs)
	}
}

func TestWALGarbageAndEmptyFiles(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2, 3}},
		{"garbage", []byte("this is not a wal file at all, but long enough")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := walTestStore(t)
			path := WALPath(s.dir, "tbl")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			w, recs := collectWAL(t, s, "tbl", 1)
			if len(recs) != 0 {
				t.Fatalf("replayed %d records from %s file", len(recs), tc.name)
			}
			if st := w.Stats(); st.StaleDiscards != 1 {
				t.Fatalf("stats = %+v, want 1 stale discard", st)
			}
			if err := w.LogInsert([]any{int32(1)}, true); err != nil {
				t.Fatal(err)
			}
			w.Close()
			_, recs = collectWAL(t, s, "tbl", 1)
			if len(recs) != 1 {
				t.Fatalf("replay after recreate: %+v", recs)
			}
		})
	}
}

func TestWALAppendFaultNotDurable(t *testing.T) {
	s := walTestStore(t)
	w, _ := collectWAL(t, s, "tbl", 1)
	if err := w.LogInsert([]any{int32(1)}, true); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	s.FaultHook = func(stage string) error {
		if stage == "wal-append" {
			return boom
		}
		return nil
	}
	if err := w.LogInsert([]any{int32(2)}, true); !errors.Is(err, boom) {
		t.Fatalf("append fault: err = %v", err)
	}
	s.FaultHook = nil
	// The failed record must not survive: a later durable append (which
	// syncs the file) must not resurrect it.
	if err := w.LogInsert([]any{int32(3)}, true); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs := collectWAL(t, s, "tbl", 1)
	if len(recs) != 2 || recs[0].Row[0] != int32(1) || recs[1].Row[0] != int32(3) {
		t.Fatalf("replay = %+v, want rows 1 and 3 only", recs)
	}
}

func TestWALSyncFaultNotDurable(t *testing.T) {
	s := walTestStore(t)
	w, _ := collectWAL(t, s, "tbl", 1)
	if err := w.LogInsert([]any{int32(1)}, true); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	s.FaultHook = func(stage string) error {
		if stage == "wal-sync" {
			return boom
		}
		return nil
	}
	if err := w.LogInsert([]any{int32(2)}, true); !errors.Is(err, boom) {
		t.Fatalf("sync fault: err = %v", err)
	}
	s.FaultHook = nil
	w.Close()
	_, recs := collectWAL(t, s, "tbl", 1)
	if len(recs) != 1 || recs[0].Row[0] != int32(1) {
		t.Fatalf("replay = %+v, want only row 1 (failed sync truncated row 2)", recs)
	}
}

func TestWALRotate(t *testing.T) {
	s := walTestStore(t)
	w, _ := collectWAL(t, s, "tbl", 1)
	if err := w.LogInsert([]any{int32(1)}, true); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	err := w.rotateLocked(2)
	w.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LogInsert([]any{int32(2)}, true); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Old-epoch record is gone; only the post-rotation record replays.
	_, recs := collectWAL(t, s, "tbl", 2)
	if len(recs) != 1 || recs[0].Row[0] != int32(2) {
		t.Fatalf("replay after rotate = %+v", recs)
	}
}

func TestWALRotateFaultRetried(t *testing.T) {
	for _, stage := range []string{"wal-rotate", "wal-truncate"} {
		t.Run(stage, func(t *testing.T) {
			s := walTestStore(t)
			w, _ := collectWAL(t, s, "tbl", 1)
			if err := w.LogInsert([]any{int32(1)}, true); err != nil {
				t.Fatal(err)
			}
			boom := errors.New("boom")
			s.FaultHook = func(st string) error {
				if st == stage {
					return boom
				}
				return nil
			}
			w.mu.Lock()
			err := w.rotateLocked(2)
			w.mu.Unlock()
			if !errors.Is(err, boom) {
				t.Fatalf("rotate fault: err = %v", err)
			}
			s.FaultHook = nil
			// "wal-rotate" fails before the rename: the rotation is pending
			// and the next append retries it. "wal-truncate" fires after the
			// rename commits: the rotation already happened.
			if err := w.LogInsert([]any{int32(2)}, true); err != nil {
				t.Fatal(err)
			}
			w.Close()
			_, recs := collectWAL(t, s, "tbl", 2)
			if len(recs) != 1 || recs[0].Row[0] != int32(2) {
				t.Fatalf("replay after recovered rotation = %+v", recs)
			}
		})
	}
}

func TestWALReplayFaultFailsAttach(t *testing.T) {
	s := walTestStore(t)
	writeWAL(t, s, "tbl", 1, 2)
	boom := errors.New("boom")
	s.FaultHook = func(stage string) error {
		if stage == "wal-replay" {
			return boom
		}
		return nil
	}
	if _, err := s.OpenWAL("tbl", 1, nil); !errors.Is(err, boom) {
		t.Fatalf("replay fault: err = %v", err)
	}
	s.FaultHook = nil
	_, recs := collectWAL(t, s, "tbl", 1)
	if len(recs) != 2 {
		t.Fatalf("retry replayed %d records, want 2", len(recs))
	}
}

func TestWALApplyErrorCutsTail(t *testing.T) {
	s := walTestStore(t)
	writeWAL(t, s, "tbl", 1, 3)
	n := 0
	w, err := s.OpenWAL("tbl", 1, func(r WALRecord) error {
		if n == 1 {
			return errors.New("table disagrees")
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("apply error must not fail the attach: %v", err)
	}
	st := w.Stats()
	if st.Replayed != 1 || st.TailTruncations != 1 {
		t.Fatalf("stats = %+v, want 1 replayed + tail cut", st)
	}
}
