package columnbm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// This file implements the per-table write-ahead log that closes the
// durability gap between checkpoints: every insert and delete is appended
// as a CRC32-framed record and fsynced by a group commit before the caller
// is acknowledged, so committed updates survive a crash even though the
// chunk files only absorb them at the next checkpoint.
//
// Layout: one file per table, `<table>.wal`, next to the chunk files.
//
//	header (16 bytes): magic (4) | version (4) | epoch (8)
//	record frame:      length (4) | crc32 (4, IEEE over payload) | payload
//	insert payload:    kind=1 (1) | uvarint ncols | per value: tag (1) | data
//	delete payload:    kind=2 (1) | uvarint rowID
//
// The epoch ties a WAL to the manifest generation it logs against.
// writeManifest advances the manifest's WalEpoch on every commit, and a
// completed checkpoint rotates the WAL to the new epoch (Rotate). On
// attach, a WAL whose header epoch differs from the manifest's is stale —
// its records are already absorbed (crash after the manifest rename but
// before the rotation finished) or superseded (table rewritten) — and is
// discarded wholesale rather than replayed twice.
//
// Replay walks frames until the first one that fails validation: a torn
// final write is expected after a crash, so a truncated or corrupt tail is
// cut at the last valid record and counted, never fatal. Records past a
// bad frame are NEVER applied — a frame is only committed if every frame
// before it is intact.
//
// Crash injection: the store's FaultHook fires at "wal-append" (after a
// record write), "wal-sync" (after an fsync), "wal-rotate" (after the
// rotation's temp file is written), "wal-truncate" (after the rotation
// rename commits), and "wal-replay" (before an existing log's records are
// applied). Append and sync failures physically truncate the file back to
// the last durable boundary, so the caller's error and the post-restart
// state always agree: a failed append/sync is a row that never happened.

const (
	walMagic      = 0xB41CA106
	walVersion    = 1
	walHeaderSize = 16
	// walMaxRecord bounds a frame's length field so a corrupt length can
	// not drive a huge allocation during replay.
	walMaxRecord = 1 << 26
)

// WALKind discriminates write-ahead-log record payloads.
type WALKind uint8

// The logged operations. An update is one atomic record (delete rowID,
// insert row): a replay applies both halves or — if the frame is torn —
// neither.
const (
	WALInsert WALKind = 1
	WALDelete WALKind = 2
	WALUpdate WALKind = 3
)

// WALRecord is one decoded log record: an inserted row (boxed logical
// values, schema order), a deleted row id, or both (update).
type WALRecord struct {
	Kind  WALKind
	Row   []any // WALInsert, WALUpdate
	RowID int32 // WALDelete, WALUpdate
}

// WALStats counts write-ahead-log activity for observability (`\storage`,
// trace counters) and for the recovery tests.
type WALStats struct {
	Appends         int64 // records appended
	Syncs           int64 // group-commit fsyncs (each may cover many appends)
	Rotations       int64 // completed checkpoint rotations
	Replayed        int64 // records replayed at attach
	TailTruncations int64 // replays that cut a torn/corrupt tail
	StaleDiscards   int64 // whole logs discarded for a stale epoch or bad header
}

// WAL is the write-ahead log of one attached table. All methods are safe
// for concurrent use; durable appends share fsyncs through a group commit
// (sync-leader: the first appender to reach the sync point flushes
// everything written so far, concurrent appenders wait on its barrier).
type WAL struct {
	store *Store
	table string
	path  string

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	// size is the end offset of valid appended frames; synced is the
	// prefix known durable. Failed appends/syncs truncate back to these.
	size    int64
	synced  int64
	syncing bool
	// epoch this log is (or will be, on lazy creation) stamped with.
	epoch int64
	// pendingRotate records a failed rotation's target epoch so the next
	// append retries it instead of logging into a superseded epoch.
	pendingRotate bool
	pendingEpoch  int64
	// Lazy-open state from recovery: the file is only created/truncated on
	// the first append, so a read-only attach never writes.
	haveFile  bool  // a valid WAL file exists on disk
	recreate  bool  // an unusable (stale/garbage) file must be truncated
	validEnd  int64 // end of the last valid replayed frame
	needTrunc bool  // a torn tail past validEnd awaits truncation

	stats WALStats
}

// WALPath returns the log file path for a table in a store directory.
func WALPath(dir, table string) string {
	return filepath.Join(dir, table+".wal")
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Stats returns a snapshot of the log's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// walNextPath is the sidecar a prepared rotation writes the next-epoch log
// to; see WAL.PrepareRotate.
func walNextPath(path string) string { return path + ".next" }

// adoptNext completes a rotation a crash interrupted between the manifest
// commit and the log rename: when the sidecar written by PrepareRotate
// carries exactly the committed manifest epoch, it IS the table's log
// (post-cutover writes were relogged into it before the commit), so it is
// renamed into place. A sidecar with any other epoch belongs to a cutover
// that never committed and is removed.
func (s *Store) adoptNext(path string, epoch int64) {
	next := walNextPath(path)
	raw, err := os.ReadFile(next)
	if err != nil {
		return
	}
	if len(raw) >= walHeaderSize &&
		binary.LittleEndian.Uint32(raw[0:]) == walMagic &&
		binary.LittleEndian.Uint32(raw[4:]) == walVersion &&
		int64(binary.LittleEndian.Uint64(raw[8:])) == epoch {
		if os.Rename(next, path) == nil {
			s.syncDir()
		}
		return
	}
	os.Remove(next)
}

// OpenWAL opens the write-ahead log of a table against the given manifest
// epoch and replays any committed tail through apply (in log order).
// A missing file is an empty log; creation is deferred to the first
// append. A stale or unrecognizable file is discarded (recreated on first
// append). A torn or corrupt tail is cut at the last valid record. Only a
// replay fault or an I/O error reading the file is fatal.
func (s *Store) OpenWAL(table string, epoch int64, apply func(WALRecord) error) (*WAL, error) {
	w := &WAL{store: s, table: table, path: WALPath(s.dir, table), epoch: epoch}
	w.cond = sync.NewCond(&w.mu)
	s.adoptNext(w.path, epoch)
	raw, err := os.ReadFile(w.path)
	if errors.Is(err, fs.ErrNotExist) {
		return w, nil
	}
	if err != nil {
		return nil, fmt.Errorf("columnbm: wal %s: %w", table, err)
	}
	if err := s.fault("wal-replay"); err != nil {
		return nil, err
	}
	if len(raw) < walHeaderSize ||
		binary.LittleEndian.Uint32(raw[0:]) != walMagic ||
		binary.LittleEndian.Uint32(raw[4:]) != walVersion ||
		int64(binary.LittleEndian.Uint64(raw[8:])) != epoch {
		// Stale epoch (already absorbed or superseded) or not a WAL we
		// understand: never replay, recreate on first append.
		w.stats.StaleDiscards++
		w.recreate = true
		return w, nil
	}
	off := walHeaderSize
	for off < len(raw) {
		rec, n, err := decodeWALFrame(raw[off:])
		if err != nil {
			break // torn/corrupt tail: cut here
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				// A record that decodes but cannot apply means the log
				// disagrees with the table; treat like a corrupt tail
				// rather than failing the attach.
				break
			}
		}
		w.stats.Replayed++
		off += n
	}
	w.haveFile = true
	w.validEnd = int64(off)
	if off < len(raw) {
		w.stats.TailTruncations++
		w.needTrunc = true
	}
	return w, nil
}

// ensureOpenLocked opens or creates the log file on first use, applying
// any deferred recovery truncation or pending rotation retry.
func (w *WAL) ensureOpenLocked() error {
	if w.pendingRotate {
		if err := w.rotateLocked(w.pendingEpoch); err != nil {
			return err
		}
	}
	if w.f != nil {
		return nil
	}
	flags := os.O_RDWR | os.O_CREATE
	fresh := !w.haveFile || w.recreate
	if w.recreate {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(w.path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("columnbm: wal %s: %w", w.table, err)
	}
	if fresh {
		var hdr [walHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], walMagic)
		binary.LittleEndian.PutUint32(hdr[4:], walVersion)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(w.epoch))
		if _, err := f.WriteAt(hdr[:], 0); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			os.Remove(w.path)
			return fmt.Errorf("columnbm: wal %s: %w", w.table, err)
		}
		// The file itself is synced; make its directory entry durable too.
		w.store.syncDir()
		w.size, w.synced = walHeaderSize, walHeaderSize
	} else {
		if w.needTrunc {
			if err := f.Truncate(w.validEnd); err != nil {
				f.Close()
				return fmt.Errorf("columnbm: wal %s: %w", w.table, err)
			}
			w.needTrunc = false
		}
		w.size, w.synced = w.validEnd, w.validEnd
	}
	w.f = f
	w.haveFile, w.recreate = true, false
	return nil
}

// LogInsert appends an insert record; with durable it does not return
// until the record is fsynced (sharing the fsync with concurrent appends).
func (w *WAL) LogInsert(row []any, durable bool) error {
	return w.LogInsertCancel(row, durable, nil)
}

// LogInsertCancel is LogInsert with a cancellation channel: if cancel
// fires while the record is parked waiting for another appender's group
// commit, the wait is abandoned and context.Canceled (wrapped) is
// returned. The record itself has already been appended — cancellation
// gives up the durability *acknowledgement*, not the write — so the row
// may still survive a restart; the caller must treat the insert's fate
// as unknown, exactly as it would after a crash.
func (w *WAL) LogInsertCancel(row []any, durable bool, cancel <-chan struct{}) error {
	payload, err := encodeWALInsert(row)
	if err != nil {
		return err
	}
	return w.append(payload, durable, cancel)
}

// LogDelete appends a delete record (see LogInsert for durability).
func (w *WAL) LogDelete(rowID int32, durable bool) error {
	payload := make([]byte, 0, 6)
	payload = append(payload, byte(WALDelete))
	payload = binary.AppendUvarint(payload, uint64(uint32(rowID)))
	return w.append(payload, durable, nil)
}

// LogUpdate appends an update (delete rowID + insert row) as one atomic
// record, so a torn tail can never persist the delete without the insert.
func (w *WAL) LogUpdate(rowID int32, row []any, durable bool) error {
	ins, err := encodeWALInsert(row)
	if err != nil {
		return err
	}
	payload := make([]byte, 0, 8+len(ins))
	payload = append(payload, byte(WALUpdate))
	payload = binary.AppendUvarint(payload, uint64(uint32(rowID)))
	payload = append(payload, ins[1:]...) // insert body without its kind byte
	return w.append(payload, durable, nil)
}

func (w *WAL) append(payload []byte, durable bool, cancel <-chan struct{}) error {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	w.mu.Lock()
	if err := w.ensureOpenLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	off := w.size
	_, err := w.f.WriteAt(frame, off)
	if err == nil {
		err = w.store.fault("wal-append")
	}
	if err != nil {
		// Remove the partial/uncommitted record so a later successful sync
		// cannot make it durable: the caller saw an error, so after a
		// restart the row must not exist.
		w.f.Truncate(off)
		w.mu.Unlock()
		return fmt.Errorf("columnbm: wal %s append: %w", w.table, err)
	}
	w.size = off + int64(len(frame))
	end := w.size
	w.stats.Appends++
	if !durable {
		w.mu.Unlock()
		return nil
	}
	// Group commit: wait for an in-flight sync to finish, then either our
	// record is already covered or we become the next sync leader and
	// flush everything appended so far. A cancel channel can abandon the
	// wait: cond.Wait cannot select on a channel, so a watcher goroutine
	// turns the cancel signal into a Broadcast and the waiter re-checks
	// the channel on every wake.
	var watchDone chan struct{}
	if cancel != nil && durable {
		watchDone = make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-cancel:
				w.mu.Lock()
				w.cond.Broadcast()
				w.mu.Unlock()
			case <-watchDone:
			}
		}()
	}
	for {
		if w.synced >= end {
			w.mu.Unlock()
			return nil
		}
		if w.size < end {
			// A failed sync truncated our record away.
			w.mu.Unlock()
			return fmt.Errorf("columnbm: wal %s append: lost in failed group commit", w.table)
		}
		if cancel != nil {
			select {
			case <-cancel:
				w.mu.Unlock()
				return fmt.Errorf("columnbm: wal %s group commit abandoned (record appended, durability unconfirmed): %w", w.table, context.Canceled)
			default:
			}
		}
		if !w.syncing {
			break
		}
		w.cond.Wait()
	}
	w.syncing = true
	target := w.size
	w.mu.Unlock()

	err = w.f.Sync()
	if err == nil {
		err = w.store.fault("wal-sync")
	}

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		// Roll the file back to the durable prefix: every record in the
		// failed batch is reported failed, so none may survive a restart.
		w.f.Truncate(w.synced)
		w.size = w.synced
		w.cond.Broadcast()
		w.mu.Unlock()
		return fmt.Errorf("columnbm: wal %s sync: %w", w.table, err)
	}
	w.synced = max(w.synced, target)
	w.stats.Syncs++
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}

// Rotate starts a fresh log under the manifest's current WAL epoch — the
// post-checkpoint step that discards absorbed records. The caller must
// have committed the manifest first: a crash between the two leaves a
// stale-epoch log that the next attach discards instead of replaying
// twice. A failed rotation is retried by the next append, so records are
// never logged into a superseded epoch.
func (w *WAL) Rotate() error {
	m, err := w.store.readManifest(w.table)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateLocked(m.WalEpoch)
}

func (w *WAL) rotateLocked(epoch int64) error {
	if raw, err := os.ReadFile(walNextPath(w.path)); err == nil &&
		len(raw) >= walHeaderSize &&
		binary.LittleEndian.Uint32(raw[0:]) == walMagic &&
		binary.LittleEndian.Uint32(raw[4:]) == walVersion &&
		int64(binary.LittleEndian.Uint64(raw[8:])) == epoch {
		// A prepared sidecar for this epoch — a CommitRotate interrupted
		// before its rename — already carries the cutover's relogged
		// records; adopt it instead of starting an empty log, which would
		// silently drop them.
		return w.commitRotateLocked(epoch)
	}
	if w.f == nil && !w.haveFile && !w.recreate {
		// Nothing was ever logged and no file exists: adopt the new epoch
		// without creating one (read-only attaches stay write-free).
		w.epoch = epoch
		w.pendingRotate = false
		return nil
	}
	tmp := w.path + ".tmp"
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(epoch))
	err := os.WriteFile(tmp, hdr[:], 0o644)
	if err == nil {
		var f *os.File
		if f, err = os.OpenFile(tmp, os.O_WRONLY, 0o644); err == nil {
			err = f.Sync()
			f.Close()
		}
	}
	if err == nil {
		err = w.store.fault("wal-rotate")
	}
	if err != nil {
		os.Remove(tmp)
		w.pendingRotate, w.pendingEpoch = true, epoch
		return fmt.Errorf("columnbm: wal %s rotate: %w", w.table, err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		w.pendingRotate, w.pendingEpoch = true, epoch
		return fmt.Errorf("columnbm: wal %s rotate: %w", w.table, err)
	}
	w.store.syncDir()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		// The rotation committed; only the handle is gone. The next append
		// reopens via the recovery path.
		w.haveFile, w.recreate, w.needTrunc = true, false, false
		w.validEnd = walHeaderSize
	} else {
		w.f = f
		w.haveFile, w.recreate, w.needTrunc = true, false, false
	}
	w.epoch = epoch
	w.size, w.synced = walHeaderSize, walHeaderSize
	w.pendingRotate = false
	w.stats.Rotations++
	return w.store.fault("wal-truncate")
}

// PrepareRotate writes the post-cutover log to the sidecar file
// `<table>.wal.next`: a header stamped with the epoch the upcoming manifest
// commit will carry, followed by the given records (the writes that arrived
// after the cutover's snapshot, re-encoded — for a compaction, in the new
// row id space), fsynced before returning. Called BEFORE the manifest
// commit, it closes the incremental-cutover durability gap: a crash after
// the commit but before CommitRotate leaves a stale-epoch main log (which
// attach discards) plus this sidecar, which attach adopts as the log
// (adoptNext) — so no acknowledged write is lost. A crash before the commit
// leaves a sidecar with a future epoch that attach removes. The FaultHook
// stage "wal-prepare-next" fires after the sidecar is written.
func (w *WAL) PrepareRotate(epoch int64, records []WALRecord) error {
	buf := make([]byte, walHeaderSize, walHeaderSize+64*len(records))
	binary.LittleEndian.PutUint32(buf[0:], walMagic)
	binary.LittleEndian.PutUint32(buf[4:], walVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(epoch))
	for _, rec := range records {
		payload, err := encodeWALRecord(rec)
		if err != nil {
			return err
		}
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
		buf = append(buf, frame[:]...)
		buf = append(buf, payload...)
	}
	next := walNextPath(w.path)
	f, err := os.OpenFile(next, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("columnbm: wal %s prepare: %w", w.table, err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(next)
		return fmt.Errorf("columnbm: wal %s prepare: %w", w.table, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("columnbm: wal %s prepare: %w", w.table, err)
	}
	w.store.syncDir()
	return w.store.fault("wal-prepare-next")
}

// CommitRotate publishes a prepared rotation after the manifest commit:
// the sidecar from PrepareRotate is renamed over the main log and the WAL
// continues appending after the relogged records. On a failure the
// rotation is left pending (like Rotate) so the next append retries —
// adopting the still-present sidecar — before logging into a superseded
// epoch. The FaultHook stage "wal-rotate" fires before the rename, the
// same semantic point as in Rotate: the new log is durable but not yet
// published.
func (w *WAL) CommitRotate(epoch int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.store.fault("wal-rotate"); err != nil {
		w.pendingRotate, w.pendingEpoch = true, epoch
		return fmt.Errorf("columnbm: wal %s rotate: %w", w.table, err)
	}
	return w.commitRotateLocked(epoch)
}

func (w *WAL) commitRotateLocked(epoch int64) error {
	next := walNextPath(w.path)
	if err := os.Rename(next, w.path); err != nil {
		w.pendingRotate, w.pendingEpoch = true, epoch
		return fmt.Errorf("columnbm: wal %s rotate: %w", w.table, err)
	}
	w.store.syncDir()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	end := int64(walHeaderSize)
	if fi, err := os.Stat(w.path); err == nil {
		end = fi.Size()
	}
	if f, err := os.OpenFile(w.path, os.O_RDWR, 0o644); err == nil {
		w.f = f
	}
	w.epoch = epoch
	w.haveFile, w.recreate, w.needTrunc = true, false, false
	w.validEnd = end
	w.size, w.synced = end, end
	w.pendingRotate = false
	w.stats.Rotations++
	return w.store.fault("wal-truncate")
}

// Close releases the log's file handle (records already synced stay
// durable; an open handle is only needed to append).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	w.validEnd = w.size
	return err
}

// --- record codec ---

// Value tags of insert payloads, covering every physical type a delta
// column can hold (logical boxed values; enum columns log the decoded
// string/float, since replay re-inserts through the dictionary).
const (
	walValBool   = 0
	walValUint8  = 1
	walValUint16 = 2
	walValInt32  = 3
	walValInt64  = 4
	walValFloat  = 5
	walValString = 6
)

// encodeWALRecord encodes any record kind as a frame payload (the relog
// path of a prepared rotation; the append paths build payloads directly).
func encodeWALRecord(rec WALRecord) ([]byte, error) {
	switch rec.Kind {
	case WALInsert:
		return encodeWALInsert(rec.Row)
	case WALDelete:
		payload := make([]byte, 0, 6)
		payload = append(payload, byte(WALDelete))
		payload = binary.AppendUvarint(payload, uint64(uint32(rec.RowID)))
		return payload, nil
	case WALUpdate:
		ins, err := encodeWALInsert(rec.Row)
		if err != nil {
			return nil, err
		}
		payload := make([]byte, 0, 8+len(ins))
		payload = append(payload, byte(WALUpdate))
		payload = binary.AppendUvarint(payload, uint64(uint32(rec.RowID)))
		return append(payload, ins[1:]...), nil
	default:
		return nil, fmt.Errorf("columnbm: wal cannot encode record kind %d", rec.Kind)
	}
}

func encodeWALInsert(row []any) ([]byte, error) {
	buf := make([]byte, 0, 16+8*len(row))
	buf = append(buf, byte(WALInsert))
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		switch x := v.(type) {
		case bool:
			b := byte(0)
			if x {
				b = 1
			}
			buf = append(buf, walValBool, b)
		case uint8:
			buf = append(buf, walValUint8, x)
		case uint16:
			buf = append(buf, walValUint16)
			buf = binary.LittleEndian.AppendUint16(buf, x)
		case int32:
			buf = append(buf, walValInt32)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		case int64:
			buf = append(buf, walValInt64)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		case float64:
			buf = append(buf, walValFloat)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		case string:
			buf = append(buf, walValString)
			buf = binary.AppendUvarint(buf, uint64(len(x)))
			buf = append(buf, x...)
		default:
			return nil, fmt.Errorf("columnbm: wal cannot log value %T", v)
		}
	}
	return buf, nil
}

// decodeWALFrame decodes the frame at the start of b, returning the record
// and the frame's total size. Any violation — short header, oversized
// length, truncated payload, CRC mismatch, malformed record — returns a
// wrapped ErrCorrupt; replay treats it as the end of the committed log.
func decodeWALFrame(b []byte) (WALRecord, int, error) {
	if len(b) < 8 {
		return WALRecord{}, 0, fmt.Errorf("%w: wal frame header truncated", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b[0:]))
	if n <= 0 || n > walMaxRecord || n > len(b)-8 {
		return WALRecord{}, 0, fmt.Errorf("%w: wal frame length %d", ErrCorrupt, n)
	}
	payload := b[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return WALRecord{}, 0, fmt.Errorf("%w: wal frame checksum mismatch", ErrCorrupt)
	}
	rec, err := decodeWALRecord(payload)
	if err != nil {
		return WALRecord{}, 0, err
	}
	return rec, 8 + n, nil
}

func decodeWALRecord(payload []byte) (WALRecord, error) {
	if len(payload) == 0 {
		return WALRecord{}, fmt.Errorf("%w: empty wal record", ErrCorrupt)
	}
	switch WALKind(payload[0]) {
	case WALDelete:
		id, n := binary.Uvarint(payload[1:])
		if n <= 0 || 1+n != len(payload) || id > math.MaxUint32 {
			return WALRecord{}, fmt.Errorf("%w: bad wal delete record", ErrCorrupt)
		}
		return WALRecord{Kind: WALDelete, RowID: int32(uint32(id))}, nil
	case WALInsert:
		row, err := decodeWALRow(payload[1:])
		if err != nil {
			return WALRecord{}, err
		}
		return WALRecord{Kind: WALInsert, Row: row}, nil
	case WALUpdate:
		id, n := binary.Uvarint(payload[1:])
		if n <= 0 || id > math.MaxUint32 {
			return WALRecord{}, fmt.Errorf("%w: bad wal update record", ErrCorrupt)
		}
		row, err := decodeWALRow(payload[1+n:])
		if err != nil {
			return WALRecord{}, err
		}
		return WALRecord{Kind: WALUpdate, RowID: int32(uint32(id)), Row: row}, nil
	default:
		return WALRecord{}, fmt.Errorf("%w: wal record kind %d", ErrCorrupt, payload[0])
	}
}

// decodeWALRow decodes an insert body (uvarint ncols + tagged values),
// which must consume b exactly.
func decodeWALRow(b []byte) ([]any, error) {
	ncols, n := binary.Uvarint(b)
	if n <= 0 || ncols > 1<<16 {
		return nil, fmt.Errorf("%w: bad wal insert width", ErrCorrupt)
	}
	b = b[n:]
	row := make([]any, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case walValBool:
			if len(b) < 1 {
				return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
			}
			row = append(row, b[0] != 0)
			b = b[1:]
		case walValUint8:
			if len(b) < 1 {
				return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
			}
			row = append(row, b[0])
			b = b[1:]
		case walValUint16:
			if len(b) < 2 {
				return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
			}
			row = append(row, binary.LittleEndian.Uint16(b))
			b = b[2:]
		case walValInt32:
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
			}
			row = append(row, int32(binary.LittleEndian.Uint32(b)))
			b = b[4:]
		case walValInt64:
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
			}
			row = append(row, int64(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case walValFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
			}
			row = append(row, math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case walValString:
			sl, k := binary.Uvarint(b)
			if k <= 0 || sl > uint64(len(b)-k) {
				return nil, fmt.Errorf("%w: truncated wal insert", ErrCorrupt)
			}
			row = append(row, string(b[k:k+int(sl)]))
			b = b[k+int(sl):]
		default:
			return nil, fmt.Errorf("%w: wal value tag %d", ErrCorrupt, tag)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in wal insert", ErrCorrupt)
	}
	return row, nil
}
