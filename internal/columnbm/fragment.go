package columnbm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
	"sync"
	"sync/atomic"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// chunkFragment is a colstore.Fragment backed by one compressed ColumnBM
// chunk. Materialize reads the (cached) compressed bytes through the buffer
// pool and decodes them into a caller-owned typed slice, so concurrent scan
// workers share only the immutable compressed chunk while each owns its
// decoded copy — at most one decoded chunk per column per worker.
type chunkFragment struct {
	store *Store
	key   string
	gen   int
	idx   int
	rows  int
	phys  vector.Type

	// remap maps this chunk's local dictionary codes to the table-level
	// merged dictionary built at attach time ([]uint8 or []uint16, the
	// merged code width). Non-nil only on dict-coded string chunks of a
	// column whose every chunk is dict-coded; it makes the fragment a
	// colstore.CodeMaterializer, so scans can read globally comparable
	// codes without ever materializing the strings.
	remap any
	// remapID identifies the merged-dictionary generation the remap maps
	// into (a process-global sequence number). It keys the decoded-code
	// cache: after a checkpoint refreshes the merged dictionary, new
	// remaps carry new ids, so stale cached code slices can never be
	// served for the new code domain.
	remapID uint64
	// dictCard is the chunk's dictionary cardinality from the manifest:
	// > 0 dict-coded, 0 known not dict-coded, -1 unknown (manifest predates
	// the chunk_dict_card field). It lets MaterializeDict reject raw/prefix
	// chunks without any I/O (colstore.DictHint).
	dictCard int

	// crc is the whole-file CRC32 the manifest records for this chunk;
	// hasCRC is false for manifests that predate the chunk_crc32 field (or
	// whose checksum array no longer covers every chunk), in which case the
	// read is unverified — exactly the v2 behaviour.
	crc    uint32
	hasCRC bool

	minI, maxI       int64
	minF, maxF       float64
	minS, maxS       string
	hasI, hasF, hasS bool
}

func (f *chunkFragment) Rows() int { return f.rows }

// CloneFragment implements colstore.CloneableFragment: a copy-on-write
// column append clones each chunk fragment so a later merged-dictionary
// refresh (which installs new remap tables in place) can never disturb a
// scan pinned to the pre-append column object.
func (f *chunkFragment) CloneFragment() colstore.Fragment {
	cp := *f
	return &cp
}

// BoundsI64 implements colstore.I64Bounded from the per-chunk min/max the
// writer recorded in the manifest.
func (f *chunkFragment) BoundsI64() (int64, int64, bool) { return f.minI, f.maxI, f.hasI }

// BoundsF64 implements colstore.F64Bounded.
func (f *chunkFragment) BoundsF64() (float64, float64, bool) { return f.minF, f.maxF, f.hasF }

// BoundsStr implements colstore.StrBounded.
func (f *chunkFragment) BoundsStr() (string, string, bool) { return f.minS, f.maxS, f.hasS }

// u8Scratch pools the narrow intermediate buffer of the bool decode path:
// bool chunks are stored as 0/1 integer chunks, decode narrow-native into
// uint8 (no int64 scratch round-trip), and convert to bool with one pass.
var u8Scratch = sync.Pool{New: func() any { return new([]uint8) }}

func getU8Scratch(n int) *[]uint8 {
	p := u8Scratch.Get().(*[]uint8)
	if cap(*p) < n {
		*p = make([]uint8, n)
	}
	*p = (*p)[:n]
	return p
}

func sliceBuf[T any](buf any, n int) []T {
	if s, ok := buf.([]T); ok && cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// remapIDSeq issues merged-dictionary generation ids (see
// chunkFragment.remapID). The zero id is reserved for "no remap".
var remapIDSeq atomic.Uint64

// nextRemapID returns a fresh merged-dictionary generation id.
func nextRemapID() uint64 { return remapIDSeq.Add(1) }

// cacheKey names this chunk's decoded slice in the cooperative-scan
// cache; kind distinguishes decoded values ("v") from merged-dictionary
// codes (which additionally carry the remap generation).
func (f *chunkFragment) cacheKey(kind string) string {
	return fmt.Sprintf("%s|g%d|%06d|%s", f.key, f.gen, f.idx, kind)
}

// Materialize decodes the chunk into a caller-owned slice — or, when the
// store's cooperative-scan cache is enabled, returns the shared immutable
// decoded slice (scratch=false), decoding it at most once per residency
// no matter how many concurrent scans stream the table.
func (f *chunkFragment) Materialize(buf any) (any, bool, error) {
	if c := f.store.dcache; c != nil {
		data, err := c.Get(f.cacheKey("v"), func() (any, int64, error) {
			// Decode into a fresh slice (buf may be retained by the
			// caller's reader and must never alias a cached entry).
			data, _, err := f.decode(nil)
			if err != nil {
				return nil, 0, err
			}
			return data, decodedSize(data), nil
		})
		if err != nil {
			return nil, false, err
		}
		return data, false, nil
	}
	return f.decode(buf)
}

// decode reads the chunk through the compressed-chunk pool and decodes it
// into buf (reused when large enough, freshly allocated otherwise).
func (f *chunkFragment) decode(buf any) (any, bool, error) {
	hdr, payload, err := f.store.readChunkChecked(f.key, f.gen, f.idx, f.crc, f.hasCRC)
	if err != nil {
		return nil, false, err
	}
	if hdr.count != f.rows {
		return nil, false, fmt.Errorf("%w: %s chunk %d has %d values, manifest says %d",
			ErrCorrupt, f.key, f.idx, hdr.count, f.rows)
	}
	switch f.phys {
	case vector.Int64:
		return decodeNarrow[int64](f, buf, hdr, payload)
	case vector.Int32:
		return decodeNarrow[int32](f, buf, hdr, payload)
	case vector.UInt8:
		return decodeNarrow[uint8](f, buf, hdr, payload)
	case vector.UInt16:
		return decodeNarrow[uint16](f, buf, hdr, payload)
	case vector.Bool:
		tmp := getU8Scratch(f.rows)
		defer u8Scratch.Put(tmp)
		if err := decodeIntInto(*tmp, hdr, payload); err != nil {
			return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
		}
		dst := sliceBuf[bool](buf, f.rows)
		for i, v := range *tmp {
			dst[i] = v != 0
		}
		return dst, true, nil
	case vector.Float64:
		if hdr.codec != CodecRaw || len(payload) != 8*hdr.count {
			return nil, false, fmt.Errorf("%w: %s chunk %d", ErrCorrupt, f.key, f.idx)
		}
		dst := sliceBuf[float64](buf, f.rows)
		for i := range dst {
			dst[i] = floatFromBits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return dst, true, nil
	case vector.String:
		dst := sliceBuf[string](buf, f.rows)
		if err := decodeStringInto(dst, hdr, payload); err != nil {
			return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
		}
		return dst, true, nil
	default:
		return nil, false, fmt.Errorf("columnbm: cannot materialize %v fragment %s", f.phys, f.key)
	}
}

// MaterializeCodes implements colstore.CodeMaterializer: the chunk's rows
// as table-level merged-dictionary codes. It decodes only the narrow code
// section of the dict chunk and maps it through the attach-time remap
// table — no string is ever materialized.
func (f *chunkFragment) MaterializeCodes(buf any) (any, bool, error) {
	if f.remap == nil {
		return nil, false, fmt.Errorf("columnbm: %s chunk %d has no merged dictionary", f.key, f.idx)
	}
	if c := f.store.dcache; c != nil {
		key := f.cacheKey(fmt.Sprintf("c%d", f.remapID))
		data, err := c.Get(key, func() (any, int64, error) {
			data, _, err := f.decodeCodes(nil)
			if err != nil {
				return nil, 0, err
			}
			return data, decodedSize(data), nil
		})
		if err != nil {
			return nil, false, err
		}
		return data, false, nil
	}
	return f.decodeCodes(buf)
}

// decodeCodes decodes the chunk's merged-dictionary codes into buf.
func (f *chunkFragment) decodeCodes(buf any) (any, bool, error) {
	hdr, payload, err := f.store.readChunkChecked(f.key, f.gen, f.idx, f.crc, f.hasCRC)
	if err != nil {
		return nil, false, err
	}
	if hdr.count != f.rows || hdr.codec != CodecDict {
		return nil, false, fmt.Errorf("%w: %s chunk %d is not the dict chunk the manifest promised", ErrCorrupt, f.key, f.idx)
	}
	switch remap := f.remap.(type) {
	case []uint8:
		dst := sliceBuf[uint8](buf, f.rows)
		if err := decodeDictCodesInto(dst, remap, hdr, payload); err != nil {
			return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
		}
		return dst, true, nil
	case []uint16:
		dst := sliceBuf[uint16](buf, f.rows)
		if err := decodeDictCodesInto(dst, remap, hdr, payload); err != nil {
			return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
		}
		return dst, true, nil
	default:
		return nil, false, fmt.Errorf("columnbm: %s chunk %d: bad remap table %T", f.key, f.idx, f.remap)
	}
}

// MayServeDict implements colstore.DictHint from the manifest's per-chunk
// dictionary cardinality — no I/O.
func (f *chunkFragment) MayServeDict() bool {
	return f.phys == vector.String && f.dictCard != 0
}

// MaterializeDict implements colstore.DictFragment: the chunk's own
// dictionary plus chunk-local codes when the chunk is dict-coded, ok=false
// (decode-first fallback) for raw and prefix chunks — decided without I/O
// when the manifest records the chunk's dictionary cardinality.
func (f *chunkFragment) MaterializeDict(codeBuf any) ([]string, any, bool, error) {
	if !f.MayServeDict() {
		return nil, nil, false, nil
	}
	hdr, payload, err := f.store.readChunkChecked(f.key, f.gen, f.idx, f.crc, f.hasCRC)
	if err != nil {
		return nil, nil, false, err
	}
	if hdr.count != f.rows {
		return nil, nil, false, fmt.Errorf("%w: %s chunk %d has %d values, manifest says %d",
			ErrCorrupt, f.key, f.idx, hdr.count, f.rows)
	}
	if hdr.codec != CodecDict {
		return nil, nil, false, nil
	}
	dict, codes, err := decodeLocalDictCodes(hdr, payload, codeBuf)
	if err != nil {
		return nil, nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
	}
	return dict, codes, true, nil
}

// decodeNarrow decodes an integer chunk straight into a typed destination
// buffer of the column's physical type — no int64 round-trip on the scan
// hot path.
func decodeNarrow[T intNative](f *chunkFragment, buf any, hdr chunkHeader, payload []byte) (any, bool, error) {
	dst := sliceBuf[T](buf, f.rows)
	if err := decodeIntInto(dst, hdr, payload); err != nil {
		return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
	}
	return dst, true, nil
}

// enumPhys returns the physical code type for an attached enum dictionary.
func enumPhys(table, column string, dict *colstore.Dict) (vector.Type, error) {
	switch {
	case dict.Len() <= 256:
		return vector.UInt8, nil
	case dict.Len() <= 65536:
		return vector.UInt16, nil
	default:
		return vector.Unknown, fmt.Errorf("columnbm: enum column %s.%s has %d dictionary values", table, column, dict.Len())
	}
}

// attachDict rebuilds an enum dictionary from its manifest entry.
func attachDict(cm *ColumnManifest) *colstore.Dict {
	if cm.DictF64 != nil {
		dict := colstore.NewF64Dict()
		for _, v := range cm.DictF64 {
			dict.CodeF64(v)
		}
		return dict
	}
	dict := colstore.NewDict()
	for _, v := range cm.DictStr {
		dict.Code(v)
	}
	return dict
}

// columnFragments builds the lazily decoded fragments [from, cm.Chunks) of
// a persisted column, carrying per-chunk min/max bounds when the manifest
// records them for every chunk. counts is the table's shared per-chunk row
// grid. It is used by AttachTable (from 0) and by the checkpoint write-back
// (from the pre-append chunk count, to re-attach just the new chunks).
func (s *Store) columnFragments(m *Manifest, cm *ColumnManifest, phys vector.Type, counts []int, from int) []colstore.Fragment {
	key := m.Table + "." + cm.Name
	useI := !cm.Enum && len(cm.ChunkMinI64) == cm.Chunks && len(cm.ChunkMaxI64) == cm.Chunks &&
		(phys == vector.Int32 || phys == vector.Int64)
	useF := !cm.Enum && len(cm.ChunkMinF64) == cm.Chunks && len(cm.ChunkMaxF64) == cm.Chunks &&
		phys == vector.Float64
	useS := !cm.Enum && len(cm.ChunkMinStr) == cm.Chunks && len(cm.ChunkMaxStr) == cm.Chunks &&
		phys == vector.String
	frags := make([]colstore.Fragment, 0, cm.Chunks-from)
	for i := from; i < cm.Chunks; i++ {
		cf := &chunkFragment{store: s, key: key, gen: m.Gen, idx: i, rows: counts[i], phys: phys, dictCard: -1}
		if len(cm.ChunkDictCard) == cm.Chunks {
			cf.dictCard = cm.ChunkDictCard[i]
		}
		if len(cm.ChunkCRC32) == cm.Chunks {
			cf.crc, cf.hasCRC = cm.ChunkCRC32[i], true
		}
		if useI {
			cf.minI, cf.maxI, cf.hasI = cm.ChunkMinI64[i], cm.ChunkMaxI64[i], true
		}
		if useF {
			cf.minF, cf.maxF, cf.hasF = cm.ChunkMinF64[i], cm.ChunkMaxF64[i], true
		}
		if useS {
			cf.minS, cf.maxS, cf.hasS = cm.ChunkMinStr[i], cm.ChunkMaxStr[i], true
		}
		frags = append(frags, cf)
	}
	return frags
}

// readChunkDict reads just the fixed header and dictionary section of a
// dict-coded chunk file — a streamed prefix read that never loads the code
// section and never touches the buffer pool, keeping attach cost
// proportional to the dictionary bytes, not the column bytes. It returns
// (nil, nil) when the chunk is stored with a different codec.
func (s *Store) readChunkDict(column string, gen, idx int) ([]string, error) {
	f, err := os.Open(s.chunkPath(column, gen, idx))
	if err != nil {
		return nil, fmt.Errorf("columnbm: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 16*1024)
	var hdr [21]byte // chunk header (17) + dict cardinality (4)
	if _, err := io.ReadFull(br, hdr[:17]); err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, s.chunkPath(column, gen, idx))
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != chunkMagic {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, s.chunkPath(column, gen, idx))
	}
	if Codec(hdr[4]) != CodecDict {
		return nil, nil
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[13:]))
	if _, err := io.ReadFull(br, hdr[17:]); err != nil {
		return nil, fmt.Errorf("%w: truncated dict chunk", ErrCorrupt)
	}
	card := int(binary.LittleEndian.Uint32(hdr[17:]))
	if card <= 0 || card > maxDictCard {
		return nil, fmt.Errorf("%w: dict cardinality %d", ErrCorrupt, card)
	}
	remaining := payloadLen - 4
	dict := make([]string, card)
	var lb [4]byte
	for i := range dict {
		if _, err := io.ReadFull(br, lb[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated dict", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(lb[:]))
		remaining -= 4 + n
		if n < 0 || remaining < 0 {
			return nil, fmt.Errorf("%w: truncated dict", ErrCorrupt)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated dict", ErrCorrupt)
		}
		dict[i] = string(buf)
	}
	return dict, nil
}

// attachMergedDict builds the table-level merged dictionary of a plain
// (non-enum) string column when every chunk is dict-coded (per the
// manifest's ChunkDictCard) and the union of the chunk dictionaries fits
// the two-byte code space. It reads only the header + dictionary prefix of
// each chunk (readChunkDict — no code sections, no buffer-pool traffic),
// sorts the merged values so codes are order-isomorphic to the strings,
// and installs a chunk-local -> merged remap table on every fragment.
// Returns the merged dictionary and its code type, or nil when the column
// does not qualify — the decode-first path then applies.
func (s *Store) attachMergedDict(m *Manifest, cm *ColumnManifest, counts []int, frags []colstore.Fragment) (*colstore.Dict, vector.Type) {
	if cm.Enum || cm.Chunks == 0 || len(cm.ChunkDictCard) != cm.Chunks {
		return nil, vector.Unknown
	}
	total := 0
	for i, card := range cm.ChunkDictCard {
		if card <= 0 || counts[i] == 0 {
			return nil, vector.Unknown
		}
		total += card
	}
	key := m.Table + "." + cm.Name
	chunkDicts := make([][]string, cm.Chunks)
	set := make(map[string]struct{}, min(total, maxDictCard))
	for i := 0; i < cm.Chunks; i++ {
		dict, err := s.readChunkDict(key, m.Gen, i)
		if err != nil || dict == nil {
			return nil, vector.Unknown
		}
		chunkDicts[i] = dict
		for _, v := range dict {
			set[v] = struct{}{}
		}
		if len(set) > maxDictCard {
			return nil, vector.Unknown
		}
	}
	values := make([]string, 0, len(set))
	for v := range set {
		values = append(values, v)
	}
	slices.Sort(values)
	merged := colstore.NewSortedDict(values)
	phys := vector.UInt8
	if len(values) > 256 {
		phys = vector.UInt16
	}
	id := nextRemapID()
	for i, frag := range frags {
		cf, ok := frag.(*chunkFragment)
		if !ok {
			return nil, vector.Unknown
		}
		installRemap(cf, chunkDicts[i], merged, phys, id)
	}
	return merged, phys
}

// installRemap builds and installs chunk-local -> merged remap table on a
// fragment, stamping the merged-dictionary generation id.
func installRemap(cf *chunkFragment, local []string, merged *colstore.Dict, phys vector.Type, id uint64) {
	if phys == vector.UInt8 {
		remap := make([]uint8, len(local))
		for c, v := range local {
			g, _ := merged.Lookup(v)
			remap[c] = uint8(g)
		}
		cf.remap = remap
	} else {
		remap := make([]uint16, len(local))
		for c, v := range local {
			g, _ := merged.Lookup(v)
			remap[c] = uint16(g)
		}
		cf.remap = remap
	}
	cf.remapID = id
}

// SavedMergedDict snapshots one column's merged-dictionary view before a
// checkpoint append invalidates it (colstore drops the view whenever a
// fragment is appended). SnapshotMergedDicts + RefreshMergedDicts bracket
// the append so code-domain execution survives updates.
type SavedMergedDict struct {
	// Dict is the pre-append sorted merged dictionary.
	Dict *colstore.Dict
	// Phys is the pre-append code width (UInt8/UInt16).
	Phys vector.Type
}

// SnapshotMergedDicts captures the merged dictionaries of a table's plain
// (non-enum) string columns, keyed by column name.
func SnapshotMergedDicts(t *colstore.Table) map[string]SavedMergedDict {
	out := make(map[string]SavedMergedDict)
	for _, c := range t.Cols {
		if c.IsEnum() {
			continue
		}
		if d, phys, ok := c.CodeDomain(); ok {
			out[c.Name] = SavedMergedDict{Dict: d, Phys: phys}
		}
	}
	return out
}

// RefreshMergedDicts restores the merged-dictionary views a checkpoint
// append dropped, incrementally: only the dictionaries of the *new* chunks
// are read (cheap header-prefix reads). When every new value is already in
// the saved dictionary — the common case, appends repeat the existing
// domain — the saved dictionary is reinstalled unchanged and only the new
// fragments get remap tables (existing fragments keep their remaps and
// their cached code slices stay valid). Otherwise the merged dictionary is
// rebuilt over all chunks, re-mapping every fragment under a fresh
// dictionary generation. A column whose new chunks are not dict-coded
// legitimately loses its code domain (decode-first applies) — that is not
// an error.
func (s *Store) RefreshMergedDicts(t *colstore.Table, saved map[string]SavedMergedDict) error {
	if len(saved) == 0 {
		return nil
	}
	m, err := s.readManifest(t.Name)
	if err != nil {
		return err
	}
	chunkRows := m.ChunkRows
	if chunkRows <= 0 {
		chunkRows = s.chunkValues
	}
	for i := range m.Columns {
		cm := &m.Columns[i]
		sv, ok := saved[cm.Name]
		if !ok {
			continue
		}
		col := t.Col(cm.Name)
		if col == nil || col.NumFrags() != cm.Chunks {
			continue
		}
		counts, err := m.chunkRowCounts(chunkRows, cm.Chunks)
		if err != nil {
			return fmt.Errorf("columnbm: refresh %s.%s: %w", t.Name, cm.Name, err)
		}
		s.refreshMergedDict(m, cm, counts, col, sv)
	}
	return nil
}

// refreshMergedDict restores one column's merged dictionary (see
// RefreshMergedDicts). It leaves the view dropped when the column no
// longer qualifies.
func (s *Store) refreshMergedDict(m *Manifest, cm *ColumnManifest, counts []int, col *colstore.Column, sv SavedMergedDict) {
	if len(cm.ChunkDictCard) != cm.Chunks {
		return
	}
	frags := make([]colstore.Fragment, cm.Chunks)
	var fresh []*chunkFragment // appended fragments, no remap yet
	var freshDicts [][]string
	key := m.Table + "." + cm.Name
	for i := 0; i < cm.Chunks; i++ {
		frags[i] = col.Frag(i)
		cf, ok := frags[i].(*chunkFragment)
		if !ok {
			return
		}
		if cf.remap != nil {
			continue
		}
		if cm.ChunkDictCard[i] <= 0 || counts[i] == 0 {
			return // new chunk not dict-coded: code domain is gone
		}
		dict, err := s.readChunkDict(key, m.Gen, i)
		if err != nil || dict == nil {
			return
		}
		fresh = append(fresh, cf)
		freshDicts = append(freshDicts, dict)
	}
	covered := true
	for _, dict := range freshDicts {
		for _, v := range dict {
			if _, ok := sv.Dict.Lookup(v); !ok {
				covered = false
				break
			}
		}
		if !covered {
			break
		}
	}
	if covered {
		// Incremental path: the appended chunks introduce no new values, so
		// the saved dictionary (and every existing remap, and every cached
		// code slice) stays valid — only the new fragments need remaps.
		id := nextRemapID()
		for i, cf := range fresh {
			installRemap(cf, freshDicts[i], sv.Dict, sv.Phys, id)
		}
		col.SetMergedDict(sv.Dict, sv.Phys)
		return
	}
	// New values appeared: rebuild the merged dictionary over all chunks.
	if merged, phys := s.attachMergedDict(m, cm, counts, frags); merged != nil {
		col.SetMergedDict(merged, phys)
	}
}

// AttachTable builds a fragment-backed colstore table over the chunks
// written by SaveTable, without materializing any column: every chunk
// becomes a lazily decoded fragment, and per-chunk min/max bounds from the
// manifest feed chunk-granularity scan pruning. Enum dictionaries are
// rebuilt from the manifest; fully dict-coded plain string columns
// additionally get a table-level merged dictionary (attachMergedDict), so
// scans, predicates, and keys over them can run in the code domain. The
// persisted deletion list (if any) is recovered separately via
// ReadManifest — the storage layer has no notion of delta stores.
func (s *Store) AttachTable(name string) (*colstore.Table, error) {
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	chunkRows := m.ChunkRows
	if chunkRows <= 0 {
		// Manifests from before the chunk_rows field: the writer used its
		// store's configured chunk size.
		chunkRows = s.chunkValues
	}
	t := colstore.NewTable(m.Table)
	t.ChunkRows = chunkRows
	for i := range m.Columns {
		cm := &m.Columns[i]
		typ, err := vector.ParseType(cm.Type)
		if err != nil {
			return nil, err
		}
		var dict *colstore.Dict
		phys := typ.Physical()
		if cm.Enum {
			dict = attachDict(cm)
			phys, err = enumPhys(name, cm.Name, dict)
			if err != nil {
				return nil, err
			}
		}
		counts, err := m.chunkRowCounts(chunkRows, cm.Chunks)
		if err != nil {
			return nil, fmt.Errorf("columnbm: column %s.%s: %w", name, cm.Name, err)
		}
		frags := s.columnFragments(m, cm, phys, counts, 0)
		col := colstore.NewFragColumn(cm.Name, typ, dict, phys, frags)
		if dict == nil && phys == vector.String {
			if merged, codeTyp := s.attachMergedDict(m, cm, counts, frags); merged != nil {
				col.SetMergedDict(merged, codeTyp)
			}
		}
		if err := t.AttachColumn(col); err != nil {
			return nil, err
		}
	}
	if t.N != m.Rows {
		return nil, fmt.Errorf("columnbm: table %s attached %d rows, manifest says %d", name, t.N, m.Rows)
	}
	return t, nil
}

// ColumnStorage summarizes how one attached column is stored on disk.
type ColumnStorage struct {
	Name            string
	Type            string
	Enum            bool
	Chunks          int
	Codecs          map[string]int // codec name -> chunk count
	RawBytes        int64
	CompressedBytes int64
	// DictCard is the largest per-chunk dictionary cardinality of the
	// column's dict-coded chunks (0 when no chunk is dict-coded).
	DictCard int
}

// TableStorage reads per-column chunk headers of a persisted table and
// reports codec usage, compression ratios, and dictionary cardinality.
func (s *Store) TableStorage(name string) ([]ColumnStorage, error) {
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	out := make([]ColumnStorage, 0, len(m.Columns))
	for _, cm := range m.Columns {
		cs := ColumnStorage{Name: cm.Name, Type: cm.Type, Enum: cm.Enum, Chunks: cm.Chunks, Codecs: map[string]int{}}
		key := m.Table + "." + cm.Name
		for i := 0; i < cm.Chunks; i++ {
			ci, err := s.chunkInfoGen(key, m.Gen, i)
			if err != nil {
				return nil, err
			}
			cs.Codecs[ci.Codec.String()]++
			cs.RawBytes += int64(ci.RawSize)
			cs.CompressedBytes += int64(ci.PayloadSize)
		}
		for _, card := range cm.ChunkDictCard {
			cs.DictCard = max(cs.DictCard, card)
		}
		out = append(out, cs)
	}
	return out, nil
}
