package columnbm

import (
	"encoding/binary"
	"fmt"
	"sync"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// chunkFragment is a colstore.Fragment backed by one compressed ColumnBM
// chunk. Materialize reads the (cached) compressed bytes through the buffer
// pool and decodes them into a caller-owned typed slice, so concurrent scan
// workers share only the immutable compressed chunk while each owns its
// decoded copy — at most one decoded chunk per column per worker.
type chunkFragment struct {
	store *Store
	key   string
	gen   int
	idx   int
	rows  int
	phys  vector.Type

	minI, maxI       int64
	minF, maxF       float64
	minS, maxS       string
	hasI, hasF, hasS bool
}

func (f *chunkFragment) Rows() int { return f.rows }

// BoundsI64 implements colstore.I64Bounded from the per-chunk min/max the
// writer recorded in the manifest.
func (f *chunkFragment) BoundsI64() (int64, int64, bool) { return f.minI, f.maxI, f.hasI }

// BoundsF64 implements colstore.F64Bounded.
func (f *chunkFragment) BoundsF64() (float64, float64, bool) { return f.minF, f.maxF, f.hasF }

// BoundsStr implements colstore.StrBounded.
func (f *chunkFragment) BoundsStr() (string, string, bool) { return f.minS, f.maxS, f.hasS }

// i64Scratch pools intermediate decode buffers for the one physical type
// (bool) that still round-trips through the stored int64 representation;
// integer types decode narrow-native via decodeIntInto.
var i64Scratch = sync.Pool{New: func() any { return new([]int64) }}

func getI64Scratch(n int) *[]int64 {
	p := i64Scratch.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

func sliceBuf[T any](buf any, n int) []T {
	if s, ok := buf.([]T); ok && cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func (f *chunkFragment) Materialize(buf any) (any, bool, error) {
	hdr, payload, err := f.store.readChunk(f.key, f.gen, f.idx)
	if err != nil {
		return nil, false, err
	}
	if hdr.count != f.rows {
		return nil, false, fmt.Errorf("%w: %s chunk %d has %d values, manifest says %d",
			ErrCorrupt, f.key, f.idx, hdr.count, f.rows)
	}
	switch f.phys {
	case vector.Int64:
		return decodeNarrow[int64](f, buf, hdr, payload)
	case vector.Int32:
		return decodeNarrow[int32](f, buf, hdr, payload)
	case vector.UInt8:
		return decodeNarrow[uint8](f, buf, hdr, payload)
	case vector.UInt16:
		return decodeNarrow[uint16](f, buf, hdr, payload)
	case vector.Bool:
		tmp := getI64Scratch(f.rows)
		defer i64Scratch.Put(tmp)
		if err := decodeInt64Into(*tmp, hdr, payload); err != nil {
			return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
		}
		dst := sliceBuf[bool](buf, f.rows)
		for i, v := range *tmp {
			dst[i] = v != 0
		}
		return dst, true, nil
	case vector.Float64:
		if hdr.codec != CodecRaw || len(payload) != 8*hdr.count {
			return nil, false, fmt.Errorf("%w: %s chunk %d", ErrCorrupt, f.key, f.idx)
		}
		dst := sliceBuf[float64](buf, f.rows)
		for i := range dst {
			dst[i] = floatFromBits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return dst, true, nil
	case vector.String:
		dst := sliceBuf[string](buf, f.rows)
		if err := decodeStringInto(dst, hdr, payload); err != nil {
			return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
		}
		return dst, true, nil
	default:
		return nil, false, fmt.Errorf("columnbm: cannot materialize %v fragment %s", f.phys, f.key)
	}
}

// decodeNarrow decodes an integer chunk straight into a typed destination
// buffer of the column's physical type — no int64 round-trip on the scan
// hot path.
func decodeNarrow[T intNative](f *chunkFragment, buf any, hdr chunkHeader, payload []byte) (any, bool, error) {
	dst := sliceBuf[T](buf, f.rows)
	if err := decodeIntInto(dst, hdr, payload); err != nil {
		return nil, false, fmt.Errorf("%s chunk %d: %w", f.key, f.idx, err)
	}
	return dst, true, nil
}

// enumPhys returns the physical code type for an attached enum dictionary.
func enumPhys(table, column string, dict *colstore.Dict) (vector.Type, error) {
	switch {
	case dict.Len() <= 256:
		return vector.UInt8, nil
	case dict.Len() <= 65536:
		return vector.UInt16, nil
	default:
		return vector.Unknown, fmt.Errorf("columnbm: enum column %s.%s has %d dictionary values", table, column, dict.Len())
	}
}

// attachDict rebuilds an enum dictionary from its manifest entry.
func attachDict(cm *ColumnManifest) *colstore.Dict {
	if cm.DictF64 != nil {
		dict := colstore.NewF64Dict()
		for _, v := range cm.DictF64 {
			dict.CodeF64(v)
		}
		return dict
	}
	dict := colstore.NewDict()
	for _, v := range cm.DictStr {
		dict.Code(v)
	}
	return dict
}

// columnFragments builds the lazily decoded fragments [from, cm.Chunks) of
// a persisted column, carrying per-chunk min/max bounds when the manifest
// records them for every chunk. counts is the table's shared per-chunk row
// grid. It is used by AttachTable (from 0) and by the checkpoint write-back
// (from the pre-append chunk count, to re-attach just the new chunks).
func (s *Store) columnFragments(m *Manifest, cm *ColumnManifest, phys vector.Type, counts []int, from int) []colstore.Fragment {
	key := m.Table + "." + cm.Name
	useI := !cm.Enum && len(cm.ChunkMinI64) == cm.Chunks && len(cm.ChunkMaxI64) == cm.Chunks &&
		(phys == vector.Int32 || phys == vector.Int64)
	useF := !cm.Enum && len(cm.ChunkMinF64) == cm.Chunks && len(cm.ChunkMaxF64) == cm.Chunks &&
		phys == vector.Float64
	useS := !cm.Enum && len(cm.ChunkMinStr) == cm.Chunks && len(cm.ChunkMaxStr) == cm.Chunks &&
		phys == vector.String
	frags := make([]colstore.Fragment, 0, cm.Chunks-from)
	for i := from; i < cm.Chunks; i++ {
		cf := &chunkFragment{store: s, key: key, gen: m.Gen, idx: i, rows: counts[i], phys: phys}
		if useI {
			cf.minI, cf.maxI, cf.hasI = cm.ChunkMinI64[i], cm.ChunkMaxI64[i], true
		}
		if useF {
			cf.minF, cf.maxF, cf.hasF = cm.ChunkMinF64[i], cm.ChunkMaxF64[i], true
		}
		if useS {
			cf.minS, cf.maxS, cf.hasS = cm.ChunkMinStr[i], cm.ChunkMaxStr[i], true
		}
		frags = append(frags, cf)
	}
	return frags
}

// AttachTable builds a fragment-backed colstore table over the chunks
// written by SaveTable, without materializing any column: every chunk
// becomes a lazily decoded fragment, and per-chunk min/max bounds from the
// manifest feed chunk-granularity scan pruning. Enum dictionaries are
// rebuilt from the manifest. The persisted deletion list (if any) is
// recovered separately via ReadManifest — the storage layer has no notion
// of delta stores.
func (s *Store) AttachTable(name string) (*colstore.Table, error) {
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	chunkRows := m.ChunkRows
	if chunkRows <= 0 {
		// Manifests from before the chunk_rows field: the writer used its
		// store's configured chunk size.
		chunkRows = s.chunkValues
	}
	t := colstore.NewTable(m.Table)
	t.ChunkRows = chunkRows
	for i := range m.Columns {
		cm := &m.Columns[i]
		typ, err := vector.ParseType(cm.Type)
		if err != nil {
			return nil, err
		}
		var dict *colstore.Dict
		phys := typ.Physical()
		if cm.Enum {
			dict = attachDict(cm)
			phys, err = enumPhys(name, cm.Name, dict)
			if err != nil {
				return nil, err
			}
		}
		counts, err := m.chunkRowCounts(chunkRows, cm.Chunks)
		if err != nil {
			return nil, fmt.Errorf("columnbm: column %s.%s: %w", name, cm.Name, err)
		}
		col := colstore.NewFragColumn(cm.Name, typ, dict, phys, s.columnFragments(m, cm, phys, counts, 0))
		if err := t.AttachColumn(col); err != nil {
			return nil, err
		}
	}
	if t.N != m.Rows {
		return nil, fmt.Errorf("columnbm: table %s attached %d rows, manifest says %d", name, t.N, m.Rows)
	}
	return t, nil
}

// ColumnStorage summarizes how one attached column is stored on disk.
type ColumnStorage struct {
	Name            string
	Type            string
	Enum            bool
	Chunks          int
	Codecs          map[string]int // codec name -> chunk count
	RawBytes        int64
	CompressedBytes int64
	// DictCard is the largest per-chunk dictionary cardinality of the
	// column's dict-coded chunks (0 when no chunk is dict-coded).
	DictCard int
}

// TableStorage reads per-column chunk headers of a persisted table and
// reports codec usage, compression ratios, and dictionary cardinality.
func (s *Store) TableStorage(name string) ([]ColumnStorage, error) {
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	out := make([]ColumnStorage, 0, len(m.Columns))
	for _, cm := range m.Columns {
		cs := ColumnStorage{Name: cm.Name, Type: cm.Type, Enum: cm.Enum, Chunks: cm.Chunks, Codecs: map[string]int{}}
		key := m.Table + "." + cm.Name
		for i := 0; i < cm.Chunks; i++ {
			ci, err := s.chunkInfoGen(key, m.Gen, i)
			if err != nil {
				return nil, err
			}
			cs.Codecs[ci.Codec.String()]++
			cs.RawBytes += int64(ci.RawSize)
			cs.CompressedBytes += int64(ci.PayloadSize)
		}
		for _, card := range cm.ChunkDictCard {
			cs.DictCard = max(cs.DictCard, card)
		}
		out = append(out, cs)
	}
	return out, nil
}
