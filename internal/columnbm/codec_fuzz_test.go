package columnbm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// codecRoundTrip encodes vals with the best-codec heuristic and decodes the
// result, failing on any mismatch.
func codecRoundTrip(t *testing.T, vals []int64) {
	t.Helper()
	payload, codec := encodeInt64(vals)
	hdr := chunkHeader{codec: codec, count: len(vals), rawSize: 8 * len(vals)}
	got, err := decodeInt64(hdr, payload)
	if err != nil {
		t.Fatalf("codec %v: decode failed: %v", codec, err)
	}
	if len(got) != len(vals) {
		t.Fatalf("codec %v: %d values decoded, want %d", codec, len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("codec %v: value %d: got %d, want %d", codec, i, got[i], vals[i])
		}
	}
}

// forceRoundTrip round-trips one specific codec encoding when it applies.
func forceRoundTrip(t *testing.T, vals []int64, codec Codec, enc func([]int64) []byte) {
	t.Helper()
	payload := enc(vals)
	if payload == nil {
		return // codec declined (unprofitable or out of range)
	}
	hdr := chunkHeader{codec: codec, count: len(vals), rawSize: 8 * len(vals)}
	got, err := decodeInt64(hdr, payload)
	if err != nil {
		t.Fatalf("%v: decode failed: %v", codec, err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%v: value %d: got %d, want %d", codec, i, got[i], vals[i])
		}
	}
}

func TestCodecRoundTripAdversarial(t *testing.T) {
	cases := map[string][]int64{
		"empty":          {},
		"single":         {42},
		"constant":       {7, 7, 7, 7, 7, 7, 7, 7},
		"sorted":         {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		"sorted-steps":   {100, 100, 101, 105, 105, 105, 200, 201},
		"descending":     {10, 9, 8, 7, 6, 5},
		"extremes":       {math.MinInt64, math.MaxInt64, 0, -1, 1},
		"overflow-diffs": {math.MinInt64, math.MaxInt64, math.MinInt64, math.MaxInt64},
		"near-max":       {math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 - 255},
		"near-min":       {math.MinInt64, math.MinInt64 + 1, math.MinInt64 + 65535},
		"wide-for":       {0, 1 << 31, 42, 1<<32 - 1},
		"too-wide-for":   {0, 1 << 40},
		"negatives":      {-5, -4, -4, -3, 0, 2, 2, 2},
		"runs":           {1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3},
		"zigzag":         {0, 100, 0, 100, 0, 100},
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			codecRoundTrip(t, vals)
			forceRoundTrip(t, vals, CodecRLE, tryRLE)
			forceRoundTrip(t, vals, CodecFoR, tryFoR)
			forceRoundTrip(t, vals, CodecDelta, tryDelta)
		})
	}
}

func TestCodecRoundTripRandom(t *testing.T) {
	shapes := []func(r *rand.Rand, n int) []int64{
		// Uniform random over the full int64 range.
		func(r *rand.Rand, n int) []int64 {
			v := make([]int64, n)
			for i := range v {
				v[i] = int64(r.Uint64())
			}
			return v
		},
		// Sorted with small steps: the delta codec's home turf.
		func(r *rand.Rand, n int) []int64 {
			v := make([]int64, n)
			x := int64(r.Uint64() >> 1)
			for i := range v {
				x += int64(r.Intn(7))
				v[i] = x
			}
			return v
		},
		// Runs of repeated values: RLE territory.
		func(r *rand.Rand, n int) []int64 {
			v := make([]int64, 0, n)
			for len(v) < n {
				x := int64(r.Intn(16))
				k := min(1+r.Intn(32), n-len(v))
				for j := 0; j < k; j++ {
					v = append(v, x)
				}
			}
			return v
		},
		// Narrow domain around a huge base: FoR territory.
		func(r *rand.Rand, n int) []int64 {
			v := make([]int64, n)
			base := int64(r.Uint64())
			for i := range v {
				v[i] = base + int64(r.Intn(1000))
			}
			return v
		},
	}
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		for si, shape := range shapes {
			n := r.Intn(2000)
			vals := shape(r, n)
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("seed %d shape %d: panic: %v", seed, si, p)
					}
				}()
				codecRoundTrip(t, vals)
				forceRoundTrip(t, vals, CodecRLE, tryRLE)
				forceRoundTrip(t, vals, CodecFoR, tryFoR)
				forceRoundTrip(t, vals, CodecDelta, tryDelta)
			}()
		}
	}
}

// FuzzInt64CodecRoundTrip feeds arbitrary byte strings in as values
// (interpreted as int64s) and asserts the chosen codec round-trips.
func FuzzInt64CodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.MaxUint64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]int64, len(raw)/8)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		codecRoundTrip(t, vals)
	})
}

// FuzzInt64CodecDecode asserts the decoder never panics or over-reads on
// arbitrary (possibly corrupt) payloads under any codec id.
func FuzzInt64CodecDecode(f *testing.F) {
	good, codec := encodeInt64([]int64{1, 2, 3, 1000, -7})
	f.Add(uint8(codec), 5, good)
	f.Add(uint8(CodecRLE), 3, []byte{1, 2, 3})
	f.Add(uint8(CodecDelta), 2, bytes.Repeat([]byte{0x80}, 19))
	f.Fuzz(func(t *testing.T, codec uint8, count int, payload []byte) {
		if count < 0 || count > 1<<16 {
			return
		}
		hdr := chunkHeader{codec: Codec(codec), count: count, rawSize: 8 * count}
		_, _ = decodeInt64(hdr, payload) // must not panic
	})
}

// --- string codecs ---

// stringRoundTrip encodes vals with the best-codec heuristic and decodes
// the result, failing on any mismatch.
func stringRoundTrip(t *testing.T, vals []string) Codec {
	t.Helper()
	payload, codec, card, rawSize := encodeString(vals)
	if want := len(encodeStringRaw(vals)); rawSize != want {
		t.Fatalf("rawSize = %d, want %d", rawSize, want)
	}
	if codec == CodecDict && (card <= 0 || card > maxDictCard) {
		t.Fatalf("dict chunk reports cardinality %d", card)
	}
	if codec != CodecDict && card != 0 {
		t.Fatalf("codec %v reports dict cardinality %d", codec, card)
	}
	hdr := chunkHeader{codec: codec, count: len(vals)}
	got := make([]string, len(vals))
	if err := decodeStringInto(got, hdr, payload); err != nil {
		t.Fatalf("codec %v: decode failed: %v", codec, err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("codec %v: value %d: got %q, want %q", codec, i, got[i], vals[i])
		}
	}
	return codec
}

// forceStringRoundTrip round-trips one specific string codec when it
// applies.
func forceStringRoundTrip(t *testing.T, vals []string, codec Codec, payload []byte) {
	t.Helper()
	if payload == nil {
		return // codec declined (unprofitable or out of range)
	}
	hdr := chunkHeader{codec: codec, count: len(vals)}
	got := make([]string, len(vals))
	if err := decodeStringInto(got, hdr, payload); err != nil {
		t.Fatalf("%v: decode failed: %v", codec, err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%v: value %d: got %q, want %q", codec, i, got[i], vals[i])
		}
	}
}

func TestStringCodecRoundTripAdversarial(t *testing.T) {
	repeat := func(v string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	highCard := make([]string, 3000)
	for i := range highCard {
		highCard[i] = fmt.Sprintf("value-%d-%x", i, i*2654435761)
	}
	sortedKeys := make([]string, 500)
	for i := range sortedKeys {
		sortedKeys[i] = fmt.Sprintf("Customer#%09d", i)
	}
	cases := map[string][]string{
		"empty-chunk":     {},
		"single":          {"x"},
		"empty-strings":   repeat("", 100),
		"all-identical":   repeat("PROMO BURNISHED", 512),
		"two-values":      {"yes", "no", "no", "yes", "yes", "no"},
		"high-card":       highCard,
		"shared-prefix":   sortedKeys,
		"dates":           {"1994-01-01", "1994-01-02", "1994-01-02", "1994-02-17", "1995-12-31"},
		"non-utf8":        {string([]byte{0xff, 0xfe, 0x00}), string([]byte{0x80}), "", string(bytes.Repeat([]byte{0xc3, 0x28}, 40))},
		"nul-bytes":       {"a\x00b", "a\x00", "\x00\x00", "a\x00b"},
		"prefix-regress":  {"aaaa", "aaab", "a", "aaac", "", "aaad"},
		"long-and-short":  {string(bytes.Repeat([]byte("ab"), 5000)), "x", string(bytes.Repeat([]byte("ab"), 5000))},
		"mixed-emptiness": {"", "a", "", "aa", "", "aaa"},
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			stringRoundTrip(t, vals)
			rawLimit := len(encodeStringRaw(vals))
			dictPayload, _ := tryDictStr(vals, rawLimit)
			forceStringRoundTrip(t, vals, CodecDict, dictPayload)
			forceStringRoundTrip(t, vals, CodecPrefix, tryPrefix(vals, rawLimit))
		})
	}
}

// TestStringCodecChoice pins the codec the heuristic picks for the shapes
// the codecs were designed for.
func TestStringCodecChoice(t *testing.T) {
	lowCard := make([]string, 4096)
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	for i := range lowCard {
		lowCard[i] = modes[i%len(modes)]
	}
	if c := stringRoundTrip(t, lowCard); c != CodecDict {
		t.Errorf("low-cardinality column picked %v, want dict", c)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("Supplier#%09d", i)
	}
	if c := stringRoundTrip(t, keys); c != CodecPrefix {
		t.Errorf("shared-prefix column picked %v, want prefix", c)
	}
	// Incompressible data must stay raw: prefix's varint lengths shave a
	// few percent off any input, but below the profitability margin the
	// writer keeps the raw layout.
	random := make([]string, 1024)
	r := rand.New(rand.NewSource(7))
	for i := range random {
		b := make([]byte, 30+r.Intn(30))
		r.Read(b)
		random[i] = string(b)
	}
	if c := stringRoundTrip(t, random); c != CodecRaw {
		t.Errorf("random column picked %v, want raw", c)
	}
}

// FuzzStringCodecRoundTrip splits an arbitrary byte string into values on
// 0xFF and asserts the chosen codec round-trips.
func FuzzStringCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello\xffhello\xffworld"))
	f.Add(bytes.Repeat([]byte{0xfe, 0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := []string{}
		for _, part := range bytes.Split(raw, []byte{0xff}) {
			vals = append(vals, string(part))
		}
		stringRoundTrip(t, vals)
	})
}

// FuzzStringCodecDecode asserts the string decoder never panics or
// over-reads on arbitrary (possibly corrupt) payloads under any codec id.
func FuzzStringCodecDecode(f *testing.F) {
	good, codec, _, _ := encodeString([]string{"a", "bb", "a", "ccc"})
	f.Add(uint8(codec), 4, good)
	f.Add(uint8(CodecDict), 2, []byte{1, 0, 0, 0})
	f.Add(uint8(CodecPrefix), 3, []byte{0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, codec uint8, count int, payload []byte) {
		if count < 0 || count > 1<<16 {
			return
		}
		dst := make([]string, count)
		hdr := chunkHeader{codec: Codec(codec), count: count}
		_ = decodeStringInto(dst, hdr, payload) // must not panic
	})
}
