package columnbm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// seedManifests covers both manifest versions: a version-1 manifest (no
// version field, uniform grid) and a version-2 manifest with generation,
// explicit chunk counts (short interior chunk from an append) and a
// persisted deletion list.
var seedManifests = []string{
	// v1, pre-chunk_rows era.
	`{"table":"t","rows":10,"columns":[{"name":"a","type":"int64","chunks":1}]}`,
	// v1 with grid and bounds.
	`{"table":"t","rows":250,"chunk_rows":100,"columns":[
	   {"name":"a","type":"int64","chunks":3,"chunk_min_i64":[0,100,200],"chunk_max_i64":[99,199,249]},
	   {"name":"s","type":"string","chunks":3,"chunk_dict_card":[3,3,3]}]}`,
	// v2 after an append: gen, counts, deletions, grown enum dict.
	`{"version":2,"table":"t","rows":380,"chunk_rows":100,"gen":1,
	  "chunk_counts":[100,100,50,100,30],"deleted":[3,7,42],
	  "columns":[
	   {"name":"a","type":"int64","chunks":5},
	   {"name":"e","type":"string","chunks":5,"enum":true,"dict_str":["x","y","z"]}]}`,
	// Torn/hostile inputs.
	`{"version":99,"table":"t","rows":1,"columns":[]}`,
	`{"table":"t","rows":-5,"columns":[]}`,
	`{"version":2,"table":"t","rows":10,"chunk_counts":[4,7],"columns":[{"name":"a","type":"int64","chunks":2}]}`,
	`{"version":2,"table":"t","rows":10,"chunk_counts":[5,5],"deleted":[9,3],"columns":[{"name":"a","type":"int64","chunks":2}]}`,
	`{"table":"t","rows":10,"columns":[{"name":"a","type":"int64","chunks":-3}]}`,
	`not json at all`,
}

// FuzzManifestReader feeds arbitrary bytes to the manifest reader and the
// attach path: neither may panic, a manifest that reads back must satisfy
// the cross-field invariants, and a table that attaches must have exactly
// the manifest's row count. This locks the version-2 bump down against
// torn writes and hostile directories.
func FuzzManifestReader(f *testing.F) {
	for _, seed := range seedManifests {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		var probe struct {
			Table string `json:"table"`
		}
		name := "t"
		if err := json.Unmarshal(raw, &probe); err == nil && probe.Table != "" {
			// The reader looks the manifest up by table name; only
			// manifests whose name matches their file are reachable.
			if filepath.Base(probe.Table) == probe.Table && probe.Table != "." && probe.Table != ".." {
				name = probe.Table
			}
		}
		if err := os.WriteFile(manifestPath(dir, name), raw, 0o644); err != nil {
			t.Skip()
		}
		s, err := NewStore(dir, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.ReadManifest(name)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if m.Version > ManifestVersion {
			t.Fatalf("accepted future manifest version %d", m.Version)
		}
		if err := m.validate(); err != nil {
			t.Fatalf("ReadManifest returned invalid manifest: %v", err)
		}
		tab, err := s.AttachTable(name)
		if err != nil {
			return // chunks missing / inconsistent grid: rejected cleanly
		}
		if tab.N != m.Rows {
			t.Fatalf("attached %d rows, manifest says %d", tab.N, m.Rows)
		}
	})
}

// TestManifestRoundTripAcrossVersions writes a v1-shaped manifest by hand,
// appends through the v2 writer, and asserts the result still reads back
// and re-marshals stably — the backward-compatibility contract of the
// version bump.
func TestManifestRoundTripAcrossVersions(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, wbChunkRows, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := wbTable(t, 250)
	if err := s.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest as version 1: strip the v2 fields.
	m, err := s.ReadManifest("wb")
	if err != nil {
		t.Fatal(err)
	}
	m.Version = 0
	m.ChunkCounts = nil
	m.Deleted = nil
	m.Gen = 0
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath(dir, "wb"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	// v1 manifests attach (uniform grid) ...
	att, err := s.AttachTable("wb")
	if err != nil {
		t.Fatal(err)
	}
	if att.N != 250 {
		t.Fatalf("v1 attach: %d rows", att.N)
	}
	// ... and appending upgrades them to v2 in place.
	frags, err := s.AppendTable(att, wbParts(att, 250, 30), []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := att.AppendFragments(frags); err != nil {
		t.Fatal(err)
	}
	m2, err := s.ReadManifest("wb")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != ManifestVersion || m2.Rows != 280 || len(m2.ChunkCounts) != 4 {
		t.Fatalf("upgraded manifest: version=%d rows=%d counts=%v", m2.Version, m2.Rows, m2.ChunkCounts)
	}
	att2, err := s.AttachTable("wb")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "v1->v2", materialize(t, att), materialize(t, att2))
}
