package columnbm

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newTestStore(t *testing.T, chunkValues int) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir(), chunkValues, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInt64RoundTrip(t *testing.T) {
	s := newTestStore(t, 16)
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	n, err := s.WriteInt64Column("c", vals)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 { // ceil(100/16)
		t.Fatalf("chunks: %d", n)
	}
	got, err := s.ReadInt64Column("c", n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len %d", len(got))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("at %d: %d vs %d", i, got[i], vals[i])
		}
	}
}

func TestRLEWinsOnRuns(t *testing.T) {
	s := newTestStore(t, 1<<12)
	vals := make([]int64, 1<<12)
	for i := range vals {
		vals[i] = int64(i / 512) // long runs
	}
	n, err := s.WriteInt64Column("runs", vals)
	if err != nil {
		t.Fatal(err)
	}
	sz, err := s.CompressedSize("runs", n)
	if err != nil {
		t.Fatal(err)
	}
	if sz >= int64(8*len(vals)) {
		t.Fatalf("no compression: %d bytes", sz)
	}
	got, err := s.ReadInt64Column("runs", n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatal("roundtrip")
		}
	}
}

func TestFoRWinsOnNarrowRange(t *testing.T) {
	s := newTestStore(t, 1<<12)
	vals := make([]int64, 1<<12)
	for i := range vals {
		vals[i] = 1_000_000_000 + int64(i%200) // narrow deltas, no runs
	}
	n, err := s.WriteInt64Column("narrow", vals)
	if err != nil {
		t.Fatal(err)
	}
	sz, err := s.CompressedSize("narrow", n)
	if err != nil {
		t.Fatal(err)
	}
	if sz >= int64(2*len(vals)) {
		t.Fatalf("FoR should pack to ~1 byte/value, got %d bytes", sz)
	}
	got, err := s.ReadInt64Column("narrow", n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatal("roundtrip")
		}
	}
}

func TestFloatAndStringRoundTrip(t *testing.T) {
	s := newTestStore(t, 8)
	fvals := []float64{1.5, -2.25, 0, 3.14159}
	n, err := s.WriteFloat64Column("f", fvals)
	if err != nil {
		t.Fatal(err)
	}
	fgot, err := s.ReadFloat64Column("f", n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fvals {
		if fgot[i] != fvals[i] {
			t.Fatal("float roundtrip")
		}
	}
	svals := []string{"", "hello", "a\x00b", "UTF-8 ✓"}
	n, err = s.WriteStringColumn("s", svals)
	if err != nil {
		t.Fatal(err)
	}
	sgot, err := s.ReadStringColumn("s", n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range svals {
		if sgot[i] != svals[i] {
			t.Fatal("string roundtrip")
		}
	}
}

func TestEmptyColumn(t *testing.T) {
	s := newTestStore(t, 8)
	n, err := s.WriteInt64Column("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadInt64Column("empty", n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.WriteInt64Column("c", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Flip magic bytes of the first chunk.
	path := filepath.Join(dir, "c.000000.chunk")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadInt64Column("c", n); err == nil {
		t.Fatal("corrupt chunk must be detected")
	}
	// Truncated payload is detected too.
	raw[0] ^= 0xff // restore magic
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(dir, 8, 2) // fresh pool (no cached copy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ReadInt64Column("c", n); err == nil {
		t.Fatal("truncated chunk must be detected")
	}
}

func TestMissingChunk(t *testing.T) {
	s := newTestStore(t, 8)
	if _, err := s.ReadInt64Column("missing", 1); err == nil {
		t.Fatal("missing chunk must error")
	}
}

func TestPoolLRUAndStats(t *testing.T) {
	p := NewPool(2)
	load := func(v byte) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte{v}, nil }
	}
	p.Get("a", load(1))
	p.Get("b", load(2))
	p.Get("a", load(1)) // hit, refreshes a
	p.Get("c", load(3)) // evicts b
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
	hits, misses, evictions := p.Stats()
	if hits != 1 || misses != 3 || evictions != 1 {
		t.Fatalf("stats: %d %d %d", hits, misses, evictions)
	}
	p.Invalidate("a")
	if p.Len() != 1 {
		t.Fatal("invalidate")
	}
}

// Property: arbitrary int64 data round-trips through the codec selection.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		payload, codec := encodeInt64(vals)
		got, err := decodeInt64(chunkHeader{codec: codec, count: len(vals), rawSize: 8 * len(vals)}, payload)
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
