package columnbm

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTransientReadRetry injects a transient fault into the first two
// attempts of every chunk read and requires the read to succeed anyway,
// with the retries counted.
func TestTransientReadRetry(t *testing.T) {
	s := newTestStore(t, 16)
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	n, err := s.WriteInt64Column("c", vals)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s.FaultHook = func(stage string) error {
		if stage != "read-chunk" {
			return nil
		}
		if calls.Add(1)%3 != 0 { // fail attempts 1 and 2 of each read, pass the 3rd
			return fmt.Errorf("injected: %w", ErrTransient)
		}
		return nil
	}
	got, err := s.ReadInt64Column("c", n)
	s.FaultHook = nil
	if err != nil {
		t.Fatalf("read with transient faults: %v", err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("at %d: %d vs %d", i, got[i], vals[i])
		}
	}
	if r := s.Stats().RetriedReads; r < int64(2*n) {
		t.Fatalf("RetriedReads = %d, want >= %d (2 per chunk)", r, 2*n)
	}
}

// TestTransientReadExhausted keeps the fault on for every attempt: the
// read must give up after the bounded retries, still classifiable as
// transient, and the error must name the column and chunk.
func TestTransientReadExhausted(t *testing.T) {
	s := newTestStore(t, 16)
	if _, err := s.WriteInt64Column("c", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s.FaultHook = func(stage string) error {
		if stage != "read-chunk" {
			return nil
		}
		calls.Add(1)
		return fmt.Errorf("injected: %w", ErrTransient)
	}
	_, err := s.ReadInt64Column("c", 1)
	s.FaultHook = nil
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want wrapped ErrTransient after exhausted retries, got %v", err)
	}
	if got := calls.Load(); got != maxReadAttempts {
		t.Fatalf("attempts = %d, want %d", got, maxReadAttempts)
	}
	if !strings.Contains(err.Error(), "column c") || !strings.Contains(err.Error(), "chunk 0") {
		t.Fatalf("error lacks chunk identity: %v", err)
	}
}

// TestPermanentReadErrorNoRetry requires a permanent failure to surface
// immediately: one attempt, no backoff sleeps, no retry count.
func TestPermanentReadErrorNoRetry(t *testing.T) {
	s := newTestStore(t, 16)
	if _, err := s.WriteInt64Column("c", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	permanent := errors.New("disk on fire")
	var calls atomic.Int64
	s.FaultHook = func(stage string) error {
		if stage != "read-chunk" {
			return nil
		}
		calls.Add(1)
		return permanent
	}
	_, err := s.ReadInt64Column("c", 1)
	s.FaultHook = nil
	if !errors.Is(err, permanent) {
		t.Fatalf("want the permanent error, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on permanent errors)", got)
	}
	if s.Stats().RetriedReads != 0 {
		t.Fatalf("RetriedReads = %d, want 0", s.Stats().RetriedReads)
	}
}

// TestScrubTable verifies an intact table end to end, then corrupts one
// chunk file and requires the next sweep to identify exactly that chunk —
// with the failure counted and named — while the rest still verifies.
func TestScrubTable(t *testing.T) {
	const n, chunk = 2500, 700
	orig := buildMixedTable(t, n)
	s, err := NewStore(t.TempDir(), chunk, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveTable(orig); err != nil {
		t.Fatal(err)
	}
	res, err := s.ScrubTable("mixed", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked == 0 || len(res.Failed) != 0 {
		t.Fatalf("intact table: checked=%d failed=%v", res.Checked, res.Failed)
	}
	if res.Skipped != 0 {
		t.Fatalf("intact table: %d chunks skipped (missing manifest CRCs)", res.Skipped)
	}

	// Flip one byte in one chunk of column k.
	m, err := s.ReadManifest("mixed")
	if err != nil {
		t.Fatal(err)
	}
	path := s.chunkPath("mixed.k", m.Gen, 1)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	res2, err := s.ScrubTable("mixed", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Failed) != 1 {
		t.Fatalf("corrupt chunk: failed=%v, want exactly one", res2.Failed)
	}
	if !strings.Contains(res2.Failed[0], "mixed.k") || !strings.Contains(res2.Failed[0], "chunk 1") {
		t.Fatalf("failure lacks chunk identity: %s", res2.Failed[0])
	}
	if res2.Checked != res.Checked-1 {
		t.Fatalf("checked %d, want %d (all but the corrupt chunk)", res2.Checked, res.Checked-1)
	}
	st := s.Stats()
	if st.ScrubFailed != 1 || st.ScrubVerified != int64(res.Checked+res2.Checked) {
		t.Fatalf("scrub counters = verified %d failed %d", st.ScrubVerified, st.ScrubFailed)
	}

	// A cancelled sweep stops between chunks and reports what it covered.
	stop := make(chan struct{})
	close(stop)
	res3, err := s.ScrubTable("mixed", stop)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Checked != 0 || len(res3.Failed) != 0 {
		t.Fatalf("pre-stopped sweep did work: %+v", res3)
	}
}

// TestWALGroupCommitCancel parks a durable append behind another writer's
// in-flight fsync (blocked via the wal-sync fault stage), cancels it, and
// requires a prompt return wrapping context.Canceled — without disturbing
// the leader's commit.
func TestWALGroupCommitCancel(t *testing.T) {
	s := walTestStore(t)
	w, _ := collectWAL(t, s, "tbl", 1)
	defer w.Close()

	syncEntered := make(chan struct{})
	syncRelease := make(chan struct{})
	var once atomic.Bool
	s.FaultHook = func(stage string) error {
		if stage == "wal-sync" && once.CompareAndSwap(false, true) {
			close(syncEntered)
			<-syncRelease
		}
		return nil
	}
	defer func() { s.FaultHook = nil }()

	leaderDone := make(chan error, 1)
	go func() { leaderDone <- w.LogInsert([]any{int32(1)}, true) }()
	<-syncEntered // the leader is now mid-fsync, holding no lock

	cancel := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() { waiterDone <- w.LogInsertCancel([]any{int32(2)}, true, cancel) }()
	time.Sleep(20 * time.Millisecond) // let the waiter append and park
	close(cancel)

	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter: want wrapped context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return while the group commit was blocked")
	}

	close(syncRelease)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader append failed: %v", err)
	}
}
