package columnbm

import (
	"testing"

	"x100/internal/colstore"
	"x100/internal/vector"
)

func TestTableRoundTrip(t *testing.T) {
	tab := colstore.NewTable("mixed")
	if err := tab.AddColumn("i32", vector.Int32, []int32{-1, 0, 5}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("i64", vector.Int64, []int64{1 << 40, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("f", vector.Float64, []float64{0.5, -1.25, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("s", vector.String, []string{"a", "", "long string here"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("b", vector.Bool, []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("d", vector.Date, []int32{100, 200, 300}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("es", []string{"x", "y", "x"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumF64Column("ef", []float64{0.1, 0.1, 0.2}); err != nil {
		t.Fatal(err)
	}

	store, err := NewStore(t.TempDir(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	got, err := store.LoadTable("mixed")
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tab.N || len(got.Cols) != len(tab.Cols) {
		t.Fatalf("shape: %d cols %d rows", len(got.Cols), got.N)
	}
	for _, col := range tab.Cols {
		lc := got.Col(col.Name)
		if lc == nil {
			t.Fatalf("missing column %s", col.Name)
		}
		if lc.Typ != col.Typ || lc.IsEnum() != col.IsEnum() {
			t.Fatalf("%s: type %v enum %v", col.Name, lc.Typ, lc.IsEnum())
		}
		for i := 0; i < tab.N; i++ {
			if lc.DecodedValue(i) != col.DecodedValue(i) {
				t.Fatalf("%s row %d: %v vs %v", col.Name, i, lc.DecodedValue(i), col.DecodedValue(i))
			}
		}
	}
}

func TestLoadMissingTable(t *testing.T) {
	store, err := NewStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.LoadTable("ghost"); err == nil {
		t.Fatal("missing manifest must error")
	}
}
