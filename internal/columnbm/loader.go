package columnbm

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// ManifestVersion is the manifest format version this package writes.
// Version 2 added durable updates: the Gen, ChunkCounts and Deleted fields
// plus the atomic (temp-file + rename) manifest commit protocol. Version 3
// added per-chunk CRC32 checksums (chunk_crc32, verified on load) and the
// write-ahead-log epoch (wal_epoch, which ties a WAL file to the manifest
// commit it logs changes against). Version 2 manifests read unchanged:
// absent checksums mean "no verification" and an absent epoch is 0.
// Manifests without a version field are version 1 and attach with the
// uniform chunk grid; readers reject manifests from the future.
const ManifestVersion = 3

// Manifest records how a table was persisted: per column, the logical
// type, chunk count, and (for enum columns) the dictionary values. It makes
// a chunk directory self-describing, so databases survive a round trip
// through the store.
type Manifest struct {
	// Version is the manifest format version (0 or absent = version 1).
	Version int    `json:"version,omitempty"`
	Table   string `json:"table"`
	Rows    int    `json:"rows"`
	// ChunkRows is the chunk size (values per chunk) the writer used; the
	// last chunk of each column may be shorter. It stays the nominal grid
	// (morsel alignment) even when ChunkCounts records shorter chunks.
	ChunkRows int `json:"chunk_rows,omitempty"`
	// Gen is the chunk-file generation: Reorganize rewrites a table into
	// fresh files of the next generation and commits them with one manifest
	// rename, so chunk files referenced by a committed manifest are never
	// modified in place. Generation 0 files carry no generation infix in
	// their names (version 1 layout).
	Gen int `json:"gen,omitempty"`
	// ChunkCounts lists the exact row count of every chunk (all columns
	// share one grid). Absent means the uniform grid: ChunkRows per chunk,
	// last chunk shorter. Checkpoint write-back appends delta chunks that
	// start a fresh chunk, so a table that has absorbed deltas has "short"
	// interior chunks and needs the explicit counts.
	ChunkCounts []int `json:"chunk_counts,omitempty"`
	// Deleted is the persisted deletion list (ascending row ids): deletions
	// survive restarts once a checkpoint has written them back. Reorganize
	// compacts them away and clears the list.
	Deleted []int32 `json:"deleted,omitempty"`
	// WalEpoch ties the table's write-ahead log to this manifest commit:
	// every manifest commit increments it, and a WAL file replays only when
	// its header carries the same epoch. A WAL left behind by a crash
	// between a checkpoint's manifest commit and its WAL rotation carries
	// the previous epoch, so its (already absorbed) records are discarded
	// instead of being applied twice.
	WalEpoch int64            `json:"wal_epoch,omitempty"`
	Columns  []ColumnManifest `json:"columns"`
}

// ColumnManifest describes one persisted column. The per-chunk min/max
// arrays (when present, one entry per chunk) drive summary-index-style scan
// pruning at chunk granularity; ChunkDictCard records, per chunk, the
// dictionary cardinality of dict-coded string chunks (0 for other codecs).
type ColumnManifest struct {
	Name          string    `json:"name"`
	Type          string    `json:"type"`
	Chunks        int       `json:"chunks"`
	Enum          bool      `json:"enum,omitempty"`
	DictStr       []string  `json:"dict_str,omitempty"`
	DictF64       []float64 `json:"dict_f64,omitempty"`
	ChunkMinI64   []int64   `json:"chunk_min_i64,omitempty"`
	ChunkMaxI64   []int64   `json:"chunk_max_i64,omitempty"`
	ChunkMinF64   []float64 `json:"chunk_min_f64,omitempty"`
	ChunkMaxF64   []float64 `json:"chunk_max_f64,omitempty"`
	ChunkMinStr   []string  `json:"chunk_min_str,omitempty"`
	ChunkMaxStr   []string  `json:"chunk_max_str,omitempty"`
	ChunkDictCard []int     `json:"chunk_dict_card,omitempty"`
	// ChunkCRC32 records the CRC32 (IEEE) of each chunk file's full
	// contents (manifest v3). Readers verify it when the array covers every
	// chunk; a mismatch surfaces as a wrapped ErrCorrupt instead of a
	// decode panic. Like the bounds arrays, a length mismatch means "no
	// checksums" (v2 manifests, or appends that could not extend the
	// array).
	ChunkCRC32 []uint32 `json:"chunk_crc32,omitempty"`
}

func manifestPath(dir, table string) string {
	return filepath.Join(dir, table+".manifest.json")
}

func (s *Store) readManifest(name string) (*Manifest, error) {
	raw, err := os.ReadFile(manifestPath(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("columnbm: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("columnbm: bad manifest for %s: %w", name, err)
	}
	if m.Version > ManifestVersion {
		return nil, fmt.Errorf("columnbm: manifest for %s has version %d, this build reads up to %d", name, m.Version, ManifestVersion)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("columnbm: bad manifest for %s: %w", name, err)
	}
	return &m, nil
}

// ReadManifest returns the committed manifest of a persisted table (storage
// introspection and recovery: core reads the persisted deletion list from
// it at attach time).
func (s *Store) ReadManifest(name string) (*Manifest, error) { return s.readManifest(name) }

// validate checks the cross-field invariants shared by every manifest
// version, so corrupt or torn manifests are rejected before any chunk I/O.
func (m *Manifest) validate() error {
	if m.Rows < 0 || m.ChunkRows < 0 || m.Gen < 0 {
		return fmt.Errorf("negative rows/chunk_rows/gen")
	}
	if m.ChunkCounts != nil {
		sum := 0
		// A zero-count chunk is legal: saving an empty table writes one
		// empty chunk per column, and appends extend that grid.
		for _, c := range m.ChunkCounts {
			if c < 0 {
				return fmt.Errorf("chunk_counts entry %d negative", c)
			}
			sum += c
		}
		if sum != m.Rows {
			return fmt.Errorf("chunk_counts sum %d, manifest says %d rows", sum, m.Rows)
		}
		for _, cm := range m.Columns {
			if cm.Chunks != len(m.ChunkCounts) {
				return fmt.Errorf("column %s has %d chunks, chunk_counts lists %d", cm.Name, cm.Chunks, len(m.ChunkCounts))
			}
		}
	}
	for i, id := range m.Deleted {
		if int(id) < 0 || int(id) >= m.Rows {
			return fmt.Errorf("deleted row id %d out of range [0,%d)", id, m.Rows)
		}
		if i > 0 && m.Deleted[i-1] >= id {
			return fmt.Errorf("deleted list not strictly ascending at %d", id)
		}
	}
	for _, cm := range m.Columns {
		if cm.Chunks < 0 {
			return fmt.Errorf("column %s has negative chunk count", cm.Name)
		}
	}
	return nil
}

// chunkRowCounts returns the exact per-chunk row counts of the table's
// shared chunk grid: the explicit v2 counts when present, else the uniform
// grid (chunkRows per chunk, last chunk shorter) over nchunks chunks.
func (m *Manifest) chunkRowCounts(chunkRows, nchunks int) ([]int, error) {
	if m.ChunkCounts != nil {
		return m.ChunkCounts, nil
	}
	counts := make([]int, nchunks)
	rows := m.Rows
	for i := range counts {
		n := chunkRows
		if i == nchunks-1 {
			n = rows
		}
		if n < 0 || n > chunkRows || (n == 0 && nchunks > 1) {
			return nil, fmt.Errorf("%d rows do not fit %d chunks of %d", m.Rows, nchunks, chunkRows)
		}
		counts[i] = n
		rows -= n
	}
	if rows != 0 {
		return nil, fmt.Errorf("%d rows do not fit %d chunks of %d", m.Rows, nchunks, chunkRows)
	}
	return counts, nil
}

// writeManifest commits a manifest atomically: the JSON is written and
// fsynced to a temp file in the same directory, then renamed over the live
// manifest. A crash at any point leaves either the old or the new manifest,
// never a torn one — chunk files referenced by a committed manifest are
// never modified in place, so the rename is the single commit point of
// every write-back. The store's FaultHook (tests) can inject failures
// between the stages.
func (s *Store) writeManifest(m *Manifest) error {
	m.Version = ManifestVersion
	// Every manifest commit advances the WAL epoch: whatever the table's
	// WAL logged before this commit is now either absorbed (checkpoint) or
	// superseded (rewrite), so a WAL still carrying the old epoch must not
	// replay. Callers that keep a live WAL rotate it to the new epoch right
	// after the commit.
	m.WalEpoch++
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := manifestPath(s.dir, m.Table)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("columnbm: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("columnbm: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("columnbm: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("columnbm: %w", err)
	}
	if err := s.fault("manifest-temp"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("columnbm: %w", err)
	}
	// Fsync the directory so the rename itself is durable: without it a
	// power loss can roll the commit back even though the process saw it
	// succeed. Failures are logged once and counted (syncDir), never
	// silently discarded.
	s.syncDir()
	return s.fault("manifest-commit")
}

// SaveTable persists a colstore table through the chunk store and writes
// its manifest (including per-chunk min/max for numeric columns). Enum
// columns persist their codes plus the dictionary. When the directory
// already holds a manifest for the table, the new chunk files are written
// under the next generation and committed by the atomic manifest rename, so
// a crash mid-save leaves the previous version intact; the superseded
// generation's files are removed after the commit.
func (s *Store) SaveTable(t *colstore.Table) error {
	return s.saveTableNextGen(t, s.chunkValues)
}

// RewriteTable is SaveTable preserving the table's existing chunk grid: the
// disk Reorganize path, which compacts deletions and re-encodes enums into
// a fresh generation of chunk files without changing the chunk size the
// directory was created with.
func (s *Store) RewriteTable(t *colstore.Table) error {
	chunkRows := s.chunkValues
	if old, err := s.readManifest(t.Name); err == nil && old.ChunkRows > 0 {
		chunkRows = old.ChunkRows
	}
	return s.saveTableNextGen(t, chunkRows)
}

// withChunkValues returns a view of the store writing chunkRows-value
// chunks (sharing the directory, pool, counters and fault hook).
func (s *Store) withChunkValues(chunkRows int) *Store {
	if chunkRows == s.chunkValues {
		return s
	}
	return &Store{dir: s.dir, chunkValues: chunkRows, pool: s.pool, dcache: s.dcache, counters: s.counters, FaultHook: s.FaultHook}
}

func (s *Store) saveTableNextGen(t *colstore.Table, chunkRows int) error {
	gen := 0
	var old *Manifest
	if m, err := s.readManifest(t.Name); err == nil {
		old = m
		gen = m.Gen + 1
	}
	w := s.withChunkValues(chunkRows)
	m := Manifest{Table: t.Name, Rows: t.N, ChunkRows: chunkRows, Gen: gen}
	if old != nil {
		// Carry the WAL epoch forward; writeManifest bumps it, so any WAL
		// written against the superseded manifest is invalidated.
		m.WalEpoch = old.WalEpoch
	}
	for _, col := range t.Cols {
		cm := ColumnManifest{Name: col.Name, Type: col.Typ.String(), Enum: col.IsEnum()}
		key := t.Name + "." + col.Name
		var err error
		switch {
		case col.IsEnum():
			cm.Chunks, err = w.writeCodes(key, gen, col, &cm)
			if col.Dict.Typ == vector.Float64 {
				cm.DictF64 = col.Dict.Floats()
			} else {
				cm.DictStr = col.Dict.Strings()
			}
		default:
			cm.Chunks, err = w.writePlain(key, gen, col, &cm)
		}
		if err != nil {
			return fmt.Errorf("columnbm: save %s: %w", key, err)
		}
		m.Columns = append(m.Columns, cm)
	}
	if err := s.writeManifest(&m); err != nil {
		return err
	}
	if old != nil && old.Gen != gen {
		s.removeGeneration(old)
	}
	return nil
}

// PendingRewrite is a prepared but uncommitted table rewrite: the
// next-generation chunk files are fully written and fsynced, but the
// committed manifest still references the old generation, so attaches (and
// crashes) see the pre-rewrite table. Commit publishes the new generation
// with the atomic manifest rename. The background compactor uses this split
// to do all chunk I/O off the write path and hold the database's cutover
// lock only across Commit.
type PendingRewrite struct {
	s   *Store
	m   *Manifest
	old *Manifest
}

// PrepareRewrite writes a fresh generation of chunk files for the table
// (same semantics as RewriteTable: existing chunk grid preserved, enum
// dictionaries re-persisted) WITHOUT committing the manifest. A crash or an
// abandoned rewrite leaves unreferenced orphan files that the next rewrite
// of the same generation simply overwrites. The table must already have a
// committed manifest.
func (s *Store) PrepareRewrite(t *colstore.Table) (*PendingRewrite, error) {
	old, err := s.readManifest(t.Name)
	if err != nil {
		return nil, err
	}
	chunkRows := old.ChunkRows
	if chunkRows <= 0 {
		chunkRows = s.chunkValues
	}
	gen := old.Gen + 1
	w := s.withChunkValues(chunkRows)
	m := Manifest{Table: t.Name, Rows: t.N, ChunkRows: chunkRows, Gen: gen, WalEpoch: old.WalEpoch}
	for _, col := range t.Cols {
		cm := ColumnManifest{Name: col.Name, Type: col.Typ.String(), Enum: col.IsEnum()}
		key := t.Name + "." + col.Name
		var err error
		switch {
		case col.IsEnum():
			cm.Chunks, err = w.writeCodes(key, gen, col, &cm)
			if col.Dict.Typ == vector.Float64 {
				cm.DictF64 = col.Dict.Floats()
			} else {
				cm.DictStr = col.Dict.Strings()
			}
		default:
			cm.Chunks, err = w.writePlain(key, gen, col, &cm)
		}
		if err != nil {
			return nil, fmt.Errorf("columnbm: rewrite %s: %w", key, err)
		}
		m.Columns = append(m.Columns, cm)
	}
	if err := s.fault("compact-prepare"); err != nil {
		return nil, err
	}
	return &PendingRewrite{s: s, m: &m, old: old}, nil
}

// NextWalEpoch returns the WAL epoch the committed manifest will carry
// (writeManifest advances the epoch by one at commit), so a caller can
// prepare the post-cutover log before committing.
func (p *PendingRewrite) NextWalEpoch() int64 { return p.m.WalEpoch + 1 }

// Commit atomically publishes the prepared generation (temp manifest +
// fsync + rename; the single commit point) and returns the superseded
// manifest. The caller removes the old generation's files — immediately, or
// deferred until scans pinned to it drain — via RemoveGeneration. The
// FaultHook stage "compact-cutover" fires just before the commit.
func (p *PendingRewrite) Commit() (*Manifest, error) {
	if err := p.s.fault("compact-cutover"); err != nil {
		return nil, err
	}
	if err := p.s.writeManifest(p.m); err != nil {
		return nil, err
	}
	return p.old, nil
}

// RemoveGeneration deletes the chunk files of a superseded manifest
// generation (best-effort; see removeGeneration). Callers defer it until no
// scan remains pinned to the old generation.
func (s *Store) RemoveGeneration(old *Manifest) { s.removeGeneration(old) }

// removeGeneration deletes the chunk files of a superseded manifest
// generation (best-effort: the files are unreferenced once the new manifest
// is committed, so failures only leave orphans behind).
func (s *Store) removeGeneration(old *Manifest) {
	for _, cm := range old.Columns {
		key := old.Table + "." + cm.Name
		for i := 0; i < cm.Chunks; i++ {
			path := s.chunkPath(key, old.Gen, i)
			s.pool.Invalidate(path)
			os.Remove(path)
		}
	}
}

// LoadTable reads a table previously written with SaveTable, fully
// materialized in memory. AttachTable is the streaming alternative.
func (s *Store) LoadTable(name string) (*colstore.Table, error) {
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	t := colstore.NewTable(m.Table)
	for _, cm := range m.Columns {
		typ, err := vector.ParseType(cm.Type)
		if err != nil {
			return nil, err
		}
		key := m.Table + "." + cm.Name
		if cm.Enum {
			codes, err := s.readInt64Chunks(key, m.Gen, cm.Chunks)
			if err != nil {
				return nil, err
			}
			if cm.DictF64 != nil {
				vals := make([]float64, len(codes))
				for i, c := range codes {
					vals[i] = cm.DictF64[c]
				}
				if err := t.AddEnumF64Column(cm.Name, vals); err != nil {
					return nil, err
				}
			} else {
				vals := make([]string, len(codes))
				for i, c := range codes {
					vals[i] = cm.DictStr[c]
				}
				if err := t.AddEnumColumn(cm.Name, vals); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := s.loadPlain(t, key, m.Gen, cm, typ); err != nil {
			return nil, err
		}
	}
	if t.N != m.Rows {
		return nil, fmt.Errorf("columnbm: table %s loaded %d rows, manifest says %d", name, t.N, m.Rows)
	}
	return t, nil
}

// int64ChunkStats records per-chunk min/max into the column manifest.
func (s *Store) int64ChunkStats(vals []int64, cm *ColumnManifest) {
	for lo := 0; lo < len(vals); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			mn, mx = min(mn, v), max(mx, v)
		}
		cm.ChunkMinI64 = append(cm.ChunkMinI64, mn)
		cm.ChunkMaxI64 = append(cm.ChunkMaxI64, mx)
	}
}

// f64ChunkStats records per-chunk min/max; columns containing NaN get no
// bounds (NaN breaks ordering, so pruning would be unsound).
func (s *Store) f64ChunkStats(vals []float64, cm *ColumnManifest) {
	var mins, maxs []float64
	for lo := 0; lo < len(vals); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo:hi] {
			if math.IsNaN(v) {
				return
			}
			mn, mx = min(mn, v), max(mx, v)
		}
		mins = append(mins, mn)
		maxs = append(maxs, mx)
	}
	cm.ChunkMinF64, cm.ChunkMaxF64 = mins, maxs
}

// strChunkStats records per-chunk min/max of a string column (byte-wise
// string ordering, matching the engine's string comparisons).
func (s *Store) strChunkStats(vals []string, cm *ColumnManifest) {
	for lo := 0; lo < len(vals); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			mn, mx = min(mn, v), max(mx, v)
		}
		cm.ChunkMinStr = append(cm.ChunkMinStr, mn)
		cm.ChunkMaxStr = append(cm.ChunkMaxStr, mx)
	}
}

func (s *Store) writePlain(key string, gen int, col *colstore.Column, cm *ColumnManifest) (int, error) {
	data, err := col.Pin()
	if err != nil {
		return 0, err
	}
	switch d := data.(type) {
	case []int32:
		vals := make([]int64, len(d))
		for i, v := range d {
			vals[i] = int64(v)
		}
		s.int64ChunkStats(vals, cm)
		return s.writeInt64Chunks(key, gen, 0, vals, &cm.ChunkCRC32)
	case []int64:
		s.int64ChunkStats(d, cm)
		return s.writeInt64Chunks(key, gen, 0, d, &cm.ChunkCRC32)
	case []float64:
		s.f64ChunkStats(d, cm)
		return s.writeFloat64Chunks(key, gen, 0, d, &cm.ChunkCRC32)
	case []string:
		s.strChunkStats(d, cm)
		return s.writeStringChunks(key, gen, 0, d, &cm.ChunkDictCard, &cm.ChunkCRC32)
	case []bool:
		vals := make([]int64, len(d))
		for i, v := range d {
			if v {
				vals[i] = 1
			}
		}
		return s.writeInt64Chunks(key, gen, 0, vals, &cm.ChunkCRC32)
	default:
		return 0, fmt.Errorf("unsupported column payload %T", d)
	}
}

func (s *Store) writeCodes(key string, gen int, col *colstore.Column, cm *ColumnManifest) (int, error) {
	data, err := col.Pin()
	if err != nil {
		return 0, err
	}
	switch codes := data.(type) {
	case []uint8:
		vals := make([]int64, len(codes))
		for i, c := range codes {
			vals[i] = int64(c)
		}
		return s.writeInt64Chunks(key, gen, 0, vals, &cm.ChunkCRC32)
	case []uint16:
		vals := make([]int64, len(codes))
		for i, c := range codes {
			vals[i] = int64(c)
		}
		return s.writeInt64Chunks(key, gen, 0, vals, &cm.ChunkCRC32)
	default:
		return 0, fmt.Errorf("unsupported code payload %T", codes)
	}
}

func (s *Store) loadPlain(t *colstore.Table, key string, gen int, cm ColumnManifest, typ vector.Type) error {
	switch typ.Physical() {
	case vector.Int32:
		raw, err := s.readInt64Chunks(key, gen, cm.Chunks)
		if err != nil {
			return err
		}
		vals := make([]int32, len(raw))
		for i, v := range raw {
			vals[i] = int32(v)
		}
		return t.AddColumn(cm.Name, typ, vals)
	case vector.Int64:
		raw, err := s.readInt64Chunks(key, gen, cm.Chunks)
		if err != nil {
			return err
		}
		return t.AddColumn(cm.Name, typ, raw)
	case vector.Float64:
		raw, err := s.readFloat64Chunks(key, gen, cm.Chunks)
		if err != nil {
			return err
		}
		return t.AddColumn(cm.Name, typ, raw)
	case vector.String:
		raw, err := s.readStringChunks(key, gen, cm.Chunks)
		if err != nil {
			return err
		}
		return t.AddColumn(cm.Name, typ, raw)
	case vector.Bool:
		raw, err := s.readInt64Chunks(key, gen, cm.Chunks)
		if err != nil {
			return err
		}
		vals := make([]bool, len(raw))
		for i, v := range raw {
			vals[i] = v != 0
		}
		return t.AddColumn(cm.Name, typ, vals)
	default:
		return fmt.Errorf("columnbm: cannot load %v column %s", typ, key)
	}
}
