package columnbm

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// Manifest records how a table was persisted: per column, the logical
// type, chunk count, and (for enum columns) the dictionary values. It makes
// a chunk directory self-describing, so databases survive a round trip
// through the store.
type Manifest struct {
	Table string `json:"table"`
	Rows  int    `json:"rows"`
	// ChunkRows is the chunk size (values per chunk) the writer used; the
	// last chunk of each column may be shorter.
	ChunkRows int              `json:"chunk_rows,omitempty"`
	Columns   []ColumnManifest `json:"columns"`
}

// ColumnManifest describes one persisted column. The per-chunk min/max
// arrays (when present, one entry per chunk) drive summary-index-style scan
// pruning at chunk granularity; ChunkDictCard records, per chunk, the
// dictionary cardinality of dict-coded string chunks (0 for other codecs).
type ColumnManifest struct {
	Name          string    `json:"name"`
	Type          string    `json:"type"`
	Chunks        int       `json:"chunks"`
	Enum          bool      `json:"enum,omitempty"`
	DictStr       []string  `json:"dict_str,omitempty"`
	DictF64       []float64 `json:"dict_f64,omitempty"`
	ChunkMinI64   []int64   `json:"chunk_min_i64,omitempty"`
	ChunkMaxI64   []int64   `json:"chunk_max_i64,omitempty"`
	ChunkMinF64   []float64 `json:"chunk_min_f64,omitempty"`
	ChunkMaxF64   []float64 `json:"chunk_max_f64,omitempty"`
	ChunkMinStr   []string  `json:"chunk_min_str,omitempty"`
	ChunkMaxStr   []string  `json:"chunk_max_str,omitempty"`
	ChunkDictCard []int     `json:"chunk_dict_card,omitempty"`
}

func manifestPath(dir, table string) string {
	return filepath.Join(dir, table+".manifest.json")
}

func (s *Store) readManifest(name string) (*Manifest, error) {
	raw, err := os.ReadFile(manifestPath(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("columnbm: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("columnbm: bad manifest for %s: %w", name, err)
	}
	return &m, nil
}

// SaveTable persists a colstore table through the chunk store and writes
// its manifest (including per-chunk min/max for numeric columns). Enum
// columns persist their codes plus the dictionary.
func (s *Store) SaveTable(t *colstore.Table) error {
	m := Manifest{Table: t.Name, Rows: t.N, ChunkRows: s.chunkValues}
	for _, col := range t.Cols {
		cm := ColumnManifest{Name: col.Name, Type: col.Typ.String(), Enum: col.IsEnum()}
		key := t.Name + "." + col.Name
		var err error
		switch {
		case col.IsEnum():
			cm.Chunks, err = s.writeCodes(key, col)
			if col.Dict.Typ == vector.Float64 {
				cm.DictF64 = col.Dict.F64s
			} else {
				cm.DictStr = col.Dict.Values
			}
		default:
			cm.Chunks, err = s.writePlain(key, col, &cm)
		}
		if err != nil {
			return fmt.Errorf("columnbm: save %s: %w", key, err)
		}
		m.Columns = append(m.Columns, cm)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(manifestPath(s.dir, t.Name), data, 0o644)
}

// LoadTable reads a table previously written with SaveTable, fully
// materialized in memory. AttachTable is the streaming alternative.
func (s *Store) LoadTable(name string) (*colstore.Table, error) {
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	t := colstore.NewTable(m.Table)
	for _, cm := range m.Columns {
		typ, err := vector.ParseType(cm.Type)
		if err != nil {
			return nil, err
		}
		key := m.Table + "." + cm.Name
		if cm.Enum {
			codes, err := s.ReadInt64Column(key, cm.Chunks)
			if err != nil {
				return nil, err
			}
			if cm.DictF64 != nil {
				vals := make([]float64, len(codes))
				for i, c := range codes {
					vals[i] = cm.DictF64[c]
				}
				if err := t.AddEnumF64Column(cm.Name, vals); err != nil {
					return nil, err
				}
			} else {
				vals := make([]string, len(codes))
				for i, c := range codes {
					vals[i] = cm.DictStr[c]
				}
				if err := t.AddEnumColumn(cm.Name, vals); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := s.loadPlain(t, key, cm, typ); err != nil {
			return nil, err
		}
	}
	if t.N != m.Rows {
		return nil, fmt.Errorf("columnbm: table %s loaded %d rows, manifest says %d", name, t.N, m.Rows)
	}
	return t, nil
}

// int64ChunkStats records per-chunk min/max into the column manifest.
func (s *Store) int64ChunkStats(vals []int64, cm *ColumnManifest) {
	for lo := 0; lo < len(vals); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			mn, mx = min(mn, v), max(mx, v)
		}
		cm.ChunkMinI64 = append(cm.ChunkMinI64, mn)
		cm.ChunkMaxI64 = append(cm.ChunkMaxI64, mx)
	}
}

// f64ChunkStats records per-chunk min/max; columns containing NaN get no
// bounds (NaN breaks ordering, so pruning would be unsound).
func (s *Store) f64ChunkStats(vals []float64, cm *ColumnManifest) {
	var mins, maxs []float64
	for lo := 0; lo < len(vals); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo:hi] {
			if math.IsNaN(v) {
				return
			}
			mn, mx = min(mn, v), max(mx, v)
		}
		mins = append(mins, mn)
		maxs = append(maxs, mx)
	}
	cm.ChunkMinF64, cm.ChunkMaxF64 = mins, maxs
}

// strChunkStats records per-chunk min/max of a string column (byte-wise
// string ordering, matching the engine's string comparisons).
func (s *Store) strChunkStats(vals []string, cm *ColumnManifest) {
	for lo := 0; lo < len(vals); lo += s.chunkValues {
		hi := min(lo+s.chunkValues, len(vals))
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			mn, mx = min(mn, v), max(mx, v)
		}
		cm.ChunkMinStr = append(cm.ChunkMinStr, mn)
		cm.ChunkMaxStr = append(cm.ChunkMaxStr, mx)
	}
}

func (s *Store) writePlain(key string, col *colstore.Column, cm *ColumnManifest) (int, error) {
	switch d := col.Data().(type) {
	case []int32:
		vals := make([]int64, len(d))
		for i, v := range d {
			vals[i] = int64(v)
		}
		s.int64ChunkStats(vals, cm)
		return s.WriteInt64Column(key, vals)
	case []int64:
		s.int64ChunkStats(d, cm)
		return s.WriteInt64Column(key, d)
	case []float64:
		s.f64ChunkStats(d, cm)
		return s.WriteFloat64Column(key, d)
	case []string:
		s.strChunkStats(d, cm)
		return s.writeStringChunks(key, d, &cm.ChunkDictCard)
	case []bool:
		vals := make([]int64, len(d))
		for i, v := range d {
			if v {
				vals[i] = 1
			}
		}
		return s.WriteInt64Column(key, vals)
	default:
		return 0, fmt.Errorf("unsupported column payload %T", d)
	}
}

func (s *Store) writeCodes(key string, col *colstore.Column) (int, error) {
	switch codes := col.Data().(type) {
	case []uint8:
		vals := make([]int64, len(codes))
		for i, c := range codes {
			vals[i] = int64(c)
		}
		return s.WriteInt64Column(key, vals)
	case []uint16:
		vals := make([]int64, len(codes))
		for i, c := range codes {
			vals[i] = int64(c)
		}
		return s.WriteInt64Column(key, vals)
	default:
		return 0, fmt.Errorf("unsupported code payload %T", codes)
	}
}

func (s *Store) loadPlain(t *colstore.Table, key string, cm ColumnManifest, typ vector.Type) error {
	switch typ.Physical() {
	case vector.Int32:
		raw, err := s.ReadInt64Column(key, cm.Chunks)
		if err != nil {
			return err
		}
		vals := make([]int32, len(raw))
		for i, v := range raw {
			vals[i] = int32(v)
		}
		return t.AddColumn(cm.Name, typ, vals)
	case vector.Int64:
		raw, err := s.ReadInt64Column(key, cm.Chunks)
		if err != nil {
			return err
		}
		return t.AddColumn(cm.Name, typ, raw)
	case vector.Float64:
		raw, err := s.ReadFloat64Column(key, cm.Chunks)
		if err != nil {
			return err
		}
		return t.AddColumn(cm.Name, typ, raw)
	case vector.String:
		raw, err := s.ReadStringColumn(key, cm.Chunks)
		if err != nil {
			return err
		}
		return t.AddColumn(cm.Name, typ, raw)
	case vector.Bool:
		raw, err := s.ReadInt64Column(key, cm.Chunks)
		if err != nil {
			return err
		}
		vals := make([]bool, len(raw))
		for i, v := range raw {
			vals[i] = v != 0
		}
		return t.AddColumn(cm.Name, typ, vals)
	default:
		return fmt.Errorf("columnbm: cannot load %v column %s", typ, key)
	}
}
