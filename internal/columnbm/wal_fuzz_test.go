package columnbm

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
)

// fuzzWALFile builds a valid 2-record epoch-1 log to seed the corpus.
func fuzzWALFile() []byte {
	var buf bytes.Buffer
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:], 1)
	buf.Write(hdr[:])
	for _, payload := range [][]byte{
		mustEncodeInsert([]any{int32(7), "abc", 1.5}),
		{byte(WALDelete), 42},
	} {
		var fr [8]byte
		binary.LittleEndian.PutUint32(fr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(fr[4:], crc32.ChecksumIEEE(payload))
		buf.Write(fr[:])
		buf.Write(payload)
	}
	return buf.Bytes()
}

func mustEncodeInsert(row []any) []byte {
	b, err := encodeWALInsert(row)
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzWALReplay feeds arbitrary bytes to OpenWAL as a log file. Replay must
// never panic, and — because a frame is only committed if every frame
// before it is intact — must never apply a record that follows a bad frame.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzWALFile()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage preamble garbage preamble"))
	f.Add(valid[:len(valid)-3])                           // truncated tail
	f.Add(append(append([]byte{}, valid...), 0xFF, 0x00)) // trailing junk
	flip := append([]byte{}, valid...)
	flip[walHeaderSize] ^= 0x01 // length-field bit flip
	f.Add(flip)
	flip2 := append([]byte{}, valid...)
	flip2[walHeaderSize+4] ^= 0x80 // crc bit flip
	f.Add(flip2)
	flip3 := append([]byte{}, valid...)
	flip3[walHeaderSize+9] ^= 0x20 // payload bit flip
	f.Add(flip3)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := NewStore(dir, 1024, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(dir, "tbl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var applied int
		w, err := s.OpenWAL("tbl", 1, func(rec WALRecord) error {
			applied++
			return nil
		})
		if err != nil {
			t.Fatalf("OpenWAL must tolerate arbitrary log bytes, got %v", err)
		}
		st := w.Stats()
		if int(st.Replayed) != applied {
			t.Fatalf("stats.Replayed = %d but apply ran %d times", st.Replayed, applied)
		}
		// Independently reparse: replay must have stopped at the first
		// frame the codec rejects, applying exactly the valid prefix.
		want := 0
		if len(data) >= walHeaderSize &&
			binary.LittleEndian.Uint32(data[0:]) == walMagic &&
			binary.LittleEndian.Uint32(data[4:]) == walVersion &&
			binary.LittleEndian.Uint64(data[8:]) == 1 {
			off := walHeaderSize
			for off < len(data) {
				_, n, err := decodeWALFrame(data[off:])
				if err != nil {
					break
				}
				off += n
				want++
			}
		} else if st.StaleDiscards != 1 {
			t.Fatalf("unrecognizable log not discarded: %+v", st)
		}
		if applied != want {
			t.Fatalf("applied %d records, valid prefix has %d", applied, want)
		}
	})
}
