package columnbm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// wbChunkRows is small so appends span multiple chunks and the table has
// short interior chunks after a couple of checkpoints.
const wbChunkRows = 100

// wbTable builds the test table: an int column with appendable bounds, a
// float, a plain string, and an enum string column.
func wbTable(t *testing.T, n int) *colstore.Table {
	t.Helper()
	tab := colstore.NewTable("wb")
	keys := make([]int64, n)
	vals := make([]float64, n)
	names := make([]string, n)
	tags := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(i)
		vals[i] = float64(i%17) / 4
		names[i] = fmt.Sprintf("row#%08d", i)
		tags[i] = []string{"a", "b", "c"}[i%3]
	}
	if err := tab.AddColumn("k", vector.Int64, keys); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("v", vector.Float64, vals); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("name", vector.String, names); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("tag", tags); err != nil {
		t.Fatal(err)
	}
	return tab
}

// wbParts builds delta parts [base, base+k) matching wbTable's physical
// column layout (the enum column passes codes).
func wbParts(tab *colstore.Table, base, k int) []any {
	keys := make([]int64, k)
	vals := make([]float64, k)
	names := make([]string, k)
	codes := make([]uint8, k)
	for i := 0; i < k; i++ {
		keys[i] = int64(base + i)
		vals[i] = float64((base + i) % 17)
		names[i] = fmt.Sprintf("row#%08d", base+i)
		codes[i] = uint8(tab.Cols[3].Dict.Code([]string{"a", "b", "c", "d"}[(base+i)%4]))
	}
	return []any{keys, vals, names, codes}
}

// materialize reads every row of an attached table value-at-a-time through
// locators (no pinning) and returns a row-key snapshot for comparisons.
func materialize(t *testing.T, tab *colstore.Table) []string {
	t.Helper()
	locs := make([]*colstore.FragLocator, len(tab.Cols))
	for i, c := range tab.Cols {
		locs[i] = c.Locator(2)
	}
	out := make([]string, tab.N)
	for r := 0; r < tab.N; r++ {
		s := ""
		for _, l := range locs {
			v, err := l.Value(r)
			if err != nil {
				t.Fatal(err)
			}
			s += fmt.Sprintf("|%v", v)
		}
		out[r] = s
	}
	return out
}

func sameRows(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestWriteBackAppendRoundTrip checkpoints two delta batches into the
// directory and asserts a fresh attach sees all rows, the manifest has
// exact per-chunk counts (short interior chunks), bounds still cover every
// chunk, and the persisted deletion list is recovered.
func TestWriteBackAppendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, wbChunkRows, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := wbTable(t, 250) // 3 chunks: 100/100/50
	if err := s.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	att, err := s.AttachTable("wb")
	if err != nil {
		t.Fatal(err)
	}

	// First append: 130 rows -> chunks of 100/30 after the short 50-row
	// chunk, leaving a short interior chunk.
	parts := wbParts(att, 250, 130)
	frags, err := s.AppendTable(att, parts, []int32{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := att.AppendFragments(frags); err != nil {
		t.Fatal(err)
	}
	if att.N != 380 {
		t.Fatalf("attached table has %d rows after append, want 380", att.N)
	}
	// Second append: deletions only (no parts).
	if _, err := s.AppendTable(att, nil, []int32{3, 7, 380 - 1}); err != nil {
		t.Fatal(err)
	}

	m, err := s.ReadManifest("wb")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != ManifestVersion || m.Rows != 380 {
		t.Fatalf("manifest version=%d rows=%d", m.Version, m.Rows)
	}
	wantCounts := []int{100, 100, 50, 100, 30}
	if len(m.ChunkCounts) != len(wantCounts) {
		t.Fatalf("chunk counts %v, want %v", m.ChunkCounts, wantCounts)
	}
	for i, c := range wantCounts {
		if m.ChunkCounts[i] != c {
			t.Fatalf("chunk counts %v, want %v", m.ChunkCounts, wantCounts)
		}
	}
	if len(m.Deleted) != 3 {
		t.Fatalf("deleted list %v, want 3 entries", m.Deleted)
	}
	for _, cm := range m.Columns {
		if cm.Chunks != 5 {
			t.Fatalf("column %s has %d chunks, want 5", cm.Name, cm.Chunks)
		}
		switch cm.Name {
		case "k":
			if len(cm.ChunkMinI64) != 5 || len(cm.ChunkMaxI64) != 5 {
				t.Fatalf("k bounds not extended: %d/%d", len(cm.ChunkMinI64), len(cm.ChunkMaxI64))
			}
			if cm.ChunkMinI64[3] != 250 || cm.ChunkMaxI64[4] != 379 {
				t.Fatalf("k bounds wrong: min[3]=%d max[4]=%d", cm.ChunkMinI64[3], cm.ChunkMaxI64[4])
			}
		case "v":
			if len(cm.ChunkMinF64) != 5 {
				t.Fatalf("v bounds not extended: %d", len(cm.ChunkMinF64))
			}
		case "name":
			if len(cm.ChunkMinStr) != 5 || len(cm.ChunkDictCard) != 5 {
				t.Fatalf("name bounds/cards not extended: %d/%d", len(cm.ChunkMinStr), len(cm.ChunkDictCard))
			}
		case "tag":
			if len(cm.DictStr) != 4 {
				t.Fatalf("tag dictionary %v, want 4 values (grew by 'd')", cm.DictStr)
			}
		}
	}

	// A fresh attach (cold store) decodes every appended row identically to
	// the live re-attached table.
	s2, err := NewStore(dir, wbChunkRows, 4)
	if err != nil {
		t.Fatal(err)
	}
	att2, err := s2.AttachTable("wb")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "reattach", materialize(t, att), materialize(t, att2))
	for _, c := range att2.Cols {
		if c.Pinned() {
			t.Fatalf("column %s pinned by locator materialization", c.Name)
		}
	}
}

// TestWriteBackEmptyTable appends to a table persisted empty (its grid is a
// single zero-row chunk).
func TestWriteBackEmptyTable(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, wbChunkRows, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := wbTable(t, 0)
	if err := s.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	att, err := s.AttachTable("wb")
	if err != nil {
		t.Fatal(err)
	}
	frags, err := s.AppendTable(att, wbParts(att, 0, 42), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := att.AppendFragments(frags); err != nil {
		t.Fatal(err)
	}
	att2, err := s.AttachTable("wb")
	if err != nil {
		t.Fatal(err)
	}
	if att2.N != 42 {
		t.Fatalf("re-attached %d rows, want 42", att2.N)
	}
	sameRows(t, "empty-append", materialize(t, att), materialize(t, att2))
}

// snapshotDir records name -> content of every file in a directory.
func snapshotDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(raw)
	}
	return out
}

// TestCrashSafetyMidWriteBack kills the write-back at every fault stage (a
// counted number of chunk writes, the temp manifest, the rename) and
// asserts that a fresh attach sees exactly the pre-checkpoint state for
// every pre-commit stage, the post-checkpoint state once the rename
// happened, and that the manifest always parses (never torn).
func TestCrashSafetyMidWriteBack(t *testing.T) {
	errBoom := errors.New("injected crash")
	type stage struct {
		name      string
		stageName string
		failAt    int // fail on the n-th call of that stage
		committed bool
	}
	stages := []stage{
		{"first-chunk", "chunk", 1, false},
		{"mid-chunk", "chunk", 3, false},
		{"last-chunk", "chunk", 8, false},
		{"manifest-temp", "manifest-temp", 1, false},
		{"manifest-commit", "manifest-commit", 1, true},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewStore(dir, wbChunkRows, 0)
			if err != nil {
				t.Fatal(err)
			}
			tab := wbTable(t, 250)
			if err := s.SaveTable(tab); err != nil {
				t.Fatal(err)
			}
			att, err := s.AttachTable("wb")
			if err != nil {
				t.Fatal(err)
			}
			before := materialize(t, att)
			pre := snapshotDir(t, dir)

			calls := 0
			s.FaultHook = func(stageName string) error {
				if stageName != st.stageName {
					return nil
				}
				calls++
				if calls == st.failAt {
					return errBoom
				}
				return nil
			}
			// 180 rows x 4 columns over 100-row chunks = 8 chunk writes.
			_, err = s.AppendTable(att, wbParts(att, 250, 180), []int32{5})
			if !errors.Is(err, errBoom) {
				t.Fatalf("append error = %v, want injected crash", err)
			}
			s.FaultHook = nil

			// The manifest on disk must always parse as valid JSON.
			raw, err := os.ReadFile(filepath.Join(dir, "wb.manifest.json"))
			if err != nil {
				t.Fatal(err)
			}
			var js map[string]any
			if err := json.Unmarshal(raw, &js); err != nil {
				t.Fatalf("torn manifest after %s: %v", st.name, err)
			}

			// Re-attach through a fresh store (cold pool): pre-commit crashes
			// recover the exact pre-checkpoint state; a post-commit crash is a
			// completed checkpoint.
			s2, err := NewStore(dir, wbChunkRows, 0)
			if err != nil {
				t.Fatal(err)
			}
			att2, err := s2.AttachTable("wb")
			if err != nil {
				t.Fatal(err)
			}
			m, err := s2.ReadManifest("wb")
			if err != nil {
				t.Fatal(err)
			}
			if st.committed {
				if att2.N != 430 || len(m.Deleted) != 1 {
					t.Fatalf("post-commit crash: %d rows, deleted %v", att2.N, m.Deleted)
				}
				return
			}
			if att2.N != 250 || len(m.Deleted) != 0 {
				t.Fatalf("pre-commit crash: %d rows, deleted %v; want pristine 250", att2.N, m.Deleted)
			}
			sameRows(t, st.name, before, materialize(t, att2))
			// No committed file may have changed (orphan chunks and a stale
			// .tmp are allowed; they are unreferenced).
			post := snapshotDir(t, dir)
			for name, content := range pre {
				if post[name] != content {
					t.Fatalf("%s: committed file %s changed by crashed write-back", st.name, name)
				}
			}

			// A retry with the fault cleared completes and sees everything.
			att3, err := s2.AttachTable("wb")
			if err != nil {
				t.Fatal(err)
			}
			frags, err := s2.AppendTable(att3, wbParts(att3, 250, 180), []int32{5})
			if err != nil {
				t.Fatal(err)
			}
			if err := att3.AppendFragments(frags); err != nil {
				t.Fatal(err)
			}
			if att3.N != 430 {
				t.Fatalf("retry: %d rows, want 430", att3.N)
			}
		})
	}
}

// TestReorganizeDiskRewrite rewrites a directory through RewriteTable and
// asserts the new generation attaches identically, the manifest generation
// advanced, and the previous generation's files are gone.
func TestReorganizeDiskRewrite(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, wbChunkRows, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := wbTable(t, 250)
	if err := s.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	want := materialize(t, tab)

	if err := s.RewriteTable(tab); err != nil {
		t.Fatal(err)
	}
	m, err := s.ReadManifest("wb")
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 1 {
		t.Fatalf("generation %d after rewrite, want 1", m.Gen)
	}
	// Old generation-0 chunk files are unreferenced and removed.
	matches, err := filepath.Glob(filepath.Join(dir, "wb.k.0*.chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("generation-0 files survive rewrite: %v", matches)
	}
	att, err := s.AttachTable("wb")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "rewrite", want, materialize(t, att))
	// Storage reports read the rewritten generation.
	storage, err := s.TableStorage("wb")
	if err != nil {
		t.Fatal(err)
	}
	if len(storage) != 4 || storage[0].Chunks != 3 {
		t.Fatalf("storage report after rewrite: %+v", storage)
	}

	// A second rewrite bumps the generation again.
	if err := s.RewriteTable(att); err != nil {
		t.Fatal(err)
	}
	m2, err := s.ReadManifest("wb")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Gen != 2 {
		t.Fatalf("generation %d after second rewrite, want 2", m2.Gen)
	}
}
