package columnbm

import (
	"container/list"
	"sync"
)

// Pool is the buffer manager: a small LRU cache of whole chunks keyed by
// file path. ColumnBM's role in the paper is to keep sequential scans
// bandwidth-bound; the pool keeps hot chunks resident so repeated scans of
// the working set avoid I/O, and evicts least-recently-used chunks when the
// budget is exceeded.
type Pool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // of *poolEntry, front = most recent
	entries  map[string]*list.Element

	hits, misses, evictions int64
}

type poolEntry struct {
	key  string
	data []byte
}

// NewPool creates a pool holding up to capacity chunks.
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = 1
	}
	return &Pool{capacity: capacity, lru: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the chunk for key, loading it with load on a miss.
func (p *Pool) Get(key string, load func() ([]byte, error)) ([]byte, error) {
	p.mu.Lock()
	if el, ok := p.entries[key]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		data := el.Value.(*poolEntry).data
		p.mu.Unlock()
		return data, nil
	}
	p.misses++
	p.mu.Unlock()

	data, err := load()
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		// Raced with another loader; keep the resident copy.
		p.lru.MoveToFront(el)
		return el.Value.(*poolEntry).data, nil
	}
	el := p.lru.PushFront(&poolEntry{key: key, data: data})
	p.entries[key] = el
	for p.lru.Len() > p.capacity {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.entries, back.Value.(*poolEntry).key)
		p.evictions++
	}
	return data, nil
}

// Invalidate drops a chunk from the pool (e.g. after a rewrite).
func (p *Pool) Invalidate(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		p.lru.Remove(el)
		delete(p.entries, key)
	}
}

// Stats returns hit/miss/eviction counters.
func (p *Pool) Stats() (hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// Len returns the number of resident chunks.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
