package columnbm

import (
	"fmt"
	"sync"
	"testing"
)

// loadInts is a deterministic chunk loader: key i decodes to an 8-value
// int64 slice stamped with i, 64 bytes per entry.
func loadInts(i int) func() (any, int64, error) {
	return func() (any, int64, error) {
		s := make([]int64, 8)
		for j := range s {
			s[j] = int64(i)
		}
		return s, decodedSize(s), nil
	}
}

func keyOf(i int) string { return fmt.Sprintf("chunk%06d", i) }

func getChunk(t *testing.T, c *DecodedCache, i int) []int64 {
	t.Helper()
	v, err := c.Get(keyOf(i), loadInts(i))
	if err != nil {
		t.Fatal(err)
	}
	s := v.([]int64)
	if len(s) != 8 || s[0] != int64(i) {
		t.Fatalf("key %d decoded to %v", i, s)
	}
	return s
}

// TestDecodedCacheCounterAccounting checks the counter identities every
// observable surface (\storage, trace, bench) relies on: each Get is
// exactly one hit or one miss, the first re-reference of an entry is
// exactly one attach, and occupancy equals the sum of resident entries.
func TestDecodedCacheCounterAccounting(t *testing.T) {
	c := NewDecodedCache(1<<20, PolicyScanResistant)
	const n = 10
	for i := 0; i < n; i++ {
		getChunk(t, c, i)
	}
	st := c.Stats()
	if st.Misses != n || st.Hits != 0 || st.Attaches != 0 {
		t.Fatalf("after cold pass: %+v", st)
	}
	if st.Entries != n || st.SizeBytes != n*64 {
		t.Fatalf("occupancy: %+v", st)
	}
	// Second pass: every lookup hits; every entry attaches exactly once.
	for i := 0; i < n; i++ {
		getChunk(t, c, i)
	}
	// Third pass: hits again, but no further attaches.
	for i := 0; i < n; i++ {
		getChunk(t, c, i)
	}
	st = c.Stats()
	if st.Hits != 2*n || st.Misses != n {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
	if st.Attaches != n {
		t.Fatalf("attach must count first re-reference only: %+v", st)
	}
	if total := st.Hits + st.Misses; total != 3*n {
		t.Fatalf("every Get must be one hit or one miss: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("nothing should evict under capacity: %+v", st)
	}
}

// TestDecodedCacheLRUFlood shows the LRU failure mode the scan-resistant
// policy exists to fix: a one-pass sequential flood larger than the cache
// displaces the re-referenced hot set.
func TestDecodedCacheLRUFlood(t *testing.T) {
	// Capacity 16 entries of 64 bytes.
	c := NewDecodedCache(16*64, PolicyLRU)
	// Hot set: entries 0..3, referenced twice (hot by any definition).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4; i++ {
			getChunk(t, c, i)
		}
	}
	// Sequential flood of 64 one-shot chunks.
	for i := 100; i < 164; i++ {
		getChunk(t, c, i)
	}
	miss0 := c.Stats().Misses
	for i := 0; i < 4; i++ {
		getChunk(t, c, i)
	}
	if refetch := c.Stats().Misses - miss0; refetch != 4 {
		t.Fatalf("LRU should have flooded out all 4 hot entries, re-decoded %d", refetch)
	}
}

// TestDecodedCacheScanResistantFlood checks the protected segment survives
// the same sequential flood that wipes LRU: re-referenced entries are
// promoted and a one-pass scan only cycles through probation.
func TestDecodedCacheScanResistantFlood(t *testing.T) {
	c := NewDecodedCache(16*64, PolicyScanResistant)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4; i++ {
			getChunk(t, c, i) // second pass promotes to protected
		}
	}
	for i := 100; i < 164; i++ {
		getChunk(t, c, i)
	}
	miss0 := c.Stats().Misses
	for i := 0; i < 4; i++ {
		getChunk(t, c, i)
	}
	if refetch := c.Stats().Misses - miss0; refetch != 0 {
		t.Fatalf("scan-resistant cache flooded out %d of 4 protected entries", refetch)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("the flood must have evicted probation entries: %+v", st)
	}
}

// TestDecodedCacheProtectedBounded checks the protected segment demotes
// instead of monopolizing the budget: promoting everything leaves at most
// half the capacity protected, and the cache never exceeds capacity.
func TestDecodedCacheProtectedBounded(t *testing.T) {
	c := NewDecodedCache(16*64, PolicyScanResistant)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 32; i++ {
			getChunk(t, c, i)
		}
	}
	c.mu.Lock()
	size, protSize, capacity := c.size, c.protSize, c.capacity
	prob, prot, ents := c.probation.Len(), c.protected.Len(), len(c.entries)
	c.mu.Unlock()
	if size > capacity {
		t.Fatalf("size %d exceeds capacity %d", size, capacity)
	}
	if protSize > capacity/2 {
		t.Fatalf("protected segment %d exceeds half the budget %d", protSize, capacity/2)
	}
	if prob+prot != ents {
		t.Fatalf("segment lists (%d+%d) disagree with entry map (%d)", prob, prot, ents)
	}
}

// TestDecodedCacheDisabledStore checks ConfigureDecodedCache(<=0) turns the
// cooperative layer off without breaking the store accessors.
func TestDecodedCacheDisabledStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecodedCache() == nil {
		t.Fatal("decoded cache should default on")
	}
	s.ConfigureDecodedCache(0, PolicyLRU)
	if s.DecodedCache() != nil {
		t.Fatal("capacity <= 0 must disable the cache")
	}
	if st := s.Stats(); st.Cache.CapacityBytes != 0 {
		t.Fatalf("disabled cache must report zero stats: %+v", st.Cache)
	}
	s.ConfigureDecodedCache(1<<20, PolicyScanResistant)
	if c := s.DecodedCache(); c == nil || c.Stats().Policy != PolicyScanResistant {
		t.Fatal("reconfiguration must install a fresh cache with the given policy")
	}
}

// FuzzDecodedCacheFollowers drives the cooperative-scan layer with an
// interleaving of scan followers attaching to and detaching from the
// circulating chunk stream mid-flight: a byte-string program schedules
// concurrent partial scans (attach at some chunk, detach after some
// count) over a shared key space on both policies. Invariants: every Get
// returns the correct chunk contents (shared slices are never corrupted or
// cross-wired), occupancy never exceeds capacity, the segment lists agree
// with the entry map, and hits+misses add up to the lookups issued.
func FuzzDecodedCacheFollowers(f *testing.F) {
	f.Add([]byte{0x01, 0x20, 0x83, 0x04, 0xff, 0x10, 0x42}, uint8(1))
	f.Add([]byte{0x00, 0x00, 0x00}, uint8(0))
	f.Add([]byte{0xaa, 0x55, 0x13, 0x37, 0x99, 0x01, 0x02, 0x03, 0x04}, uint8(1))
	f.Fuzz(func(t *testing.T, program []byte, policyByte uint8) {
		policy := PolicyLRU
		if policyByte%2 == 1 {
			policy = PolicyScanResistant
		}
		const keySpace = 24
		// Capacity below the key space so the interleaving exercises
		// eviction and re-decode races, not just warm hits.
		c := NewDecodedCache(8*64, policy)
		var wg sync.WaitGroup
		var lookups int64
		var mu sync.Mutex
		if len(program) > 64 {
			program = program[:64]
		}
		// Each program byte schedules one follower: high nibble = chunk to
		// attach at, low nibble = chunks to read before detaching.
		for _, b := range program {
			start := int(b >> 4)
			count := int(b&0x0f) + 1
			wg.Add(1)
			go func(start, count int) {
				defer wg.Done()
				n := 0
				for j := 0; j < count; j++ {
					i := (start + j) % keySpace
					v, err := c.Get(keyOf(i), loadInts(i))
					if err != nil {
						t.Error(err)
						return
					}
					s := v.([]int64)
					for _, got := range s {
						if got != int64(i) {
							t.Errorf("chunk %d corrupted: %v", i, s)
							return
						}
					}
					n++
				}
				mu.Lock()
				lookups += int64(n)
				mu.Unlock()
			}(start, count)
		}
		wg.Wait()
		st := c.Stats()
		if st.Hits+st.Misses != lookups {
			t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
		}
		if st.SizeBytes > st.CapacityBytes && st.Entries > 1 {
			t.Fatalf("over budget with %d entries: %+v", st.Entries, st)
		}
		c.mu.Lock()
		prob, prot, ents := c.probation.Len(), c.protected.Len(), len(c.entries)
		c.mu.Unlock()
		if prob+prot != ents {
			t.Fatalf("segment lists (%d+%d) disagree with entry map (%d)", prob, prot, ents)
		}
	})
}
