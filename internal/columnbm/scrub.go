package columnbm

import (
	"fmt"
	"hash/crc32"
	"os"
)

// ScrubResult summarizes one CRC verification sweep over a persisted table.
type ScrubResult struct {
	Table string
	// Checked counts chunks that were read back and verified against the
	// manifest's recorded CRC32.
	Checked int
	// Skipped counts chunks without manifest checksums (pre-v3 manifests
	// or appends that dropped the CRC array); they cannot be verified.
	Skipped int
	// Failed lists the identities (table.column gen chunk) of chunks whose
	// on-disk bytes no longer match the manifest, or that could not be
	// read at all.
	Failed []string
}

// ScrubTable re-reads every chunk file the committed manifest of a table
// references and verifies it against the recorded CRC32 — the background
// scrubber's work function. Reads bypass the buffer pool (a scrub must
// check the disk, not the cache, and must not evict hot chunks) and go
// through the same transient-retry loop as query reads. A corrupt chunk is
// recorded and counted (Stats.ScrubFailed), not fatal: the sweep continues
// so one bad chunk doesn't hide others. stop, when non-nil, aborts the
// sweep between chunks.
func (s *Store) ScrubTable(name string, stop <-chan struct{}) (ScrubResult, error) {
	res := ScrubResult{Table: name}
	m, err := s.readManifest(name)
	if err != nil {
		return res, err
	}
	for _, cm := range m.Columns {
		key := m.Table + "." + cm.Name
		hasCRC := len(cm.ChunkCRC32) == cm.Chunks
		if !hasCRC {
			res.Skipped += cm.Chunks
			continue
		}
		for i := 0; i < cm.Chunks; i++ {
			if stop != nil {
				select {
				case <-stop:
					return res, nil
				default:
				}
			}
			id := fmt.Sprintf("%s.%s gen %d chunk %d", m.Table, cm.Name, m.Gen, i)
			b, err := s.readChunkFile(s.chunkPath(key, m.Gen, i))
			if err != nil {
				if os.IsNotExist(err) {
					// The manifest was superseded mid-sweep (compaction
					// removed the generation): not a corruption.
					res.Skipped++
					continue
				}
				s.counters.scrubFailed.Add(1)
				res.Failed = append(res.Failed, id+": "+err.Error())
				continue
			}
			if got := crc32.ChecksumIEEE(b); got != cm.ChunkCRC32[i] {
				s.counters.scrubFailed.Add(1)
				res.Failed = append(res.Failed, fmt.Sprintf("%s: checksum %08x, manifest records %08x", id, got, cm.ChunkCRC32[i]))
				continue
			}
			s.counters.scrubVerified.Add(1)
			res.Checked++
		}
	}
	return res, nil
}
