package columnbm

import (
	"fmt"
	"sort"
	"testing"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// saveAttach persists one single-column table and attaches it back.
func saveAttach(t *testing.T, name string, typ vector.Type, data any, chunkRows int) (*colstore.Table, *Store) {
	t.Helper()
	tab := colstore.NewTable(name)
	if err := tab.AddColumn("c", typ, data); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(t.TempDir(), chunkRows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	att, err := store.AttachTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return att, store
}

// TestAttachMergedDict checks the attach-time merged dictionary: sorted,
// complete, installed only when every chunk is dict-coded, and the
// fragments' MaterializeCodes produce codes that decode back to the
// original values through it.
func TestAttachMergedDict(t *testing.T) {
	const n = 5000
	vals := make([]string, n)
	for i := range vals {
		// Pools shift every chunk so chunk dictionaries differ.
		vals[i] = fmt.Sprintf("v%02d", (i/1000*2+i%7)%20)
	}
	tab, _ := saveAttach(t, "md", vector.String, vals, 1000)
	col := tab.Col("c")
	md := col.MergedDict()
	if md == nil {
		t.Fatal("no merged dictionary")
	}
	if !sort.StringsAreSorted(md.Values) || !md.Sorted {
		t.Fatalf("merged dictionary not sorted: %v", md.Values)
	}
	distinct := map[string]struct{}{}
	for _, v := range vals {
		distinct[v] = struct{}{}
	}
	if md.Len() != len(distinct) {
		t.Fatalf("merged cardinality %d, want %d", md.Len(), len(distinct))
	}
	// Codes round-trip through the merged dictionary.
	r := col.CodeReader()
	for lo := 0; lo < n; lo += 1000 {
		cv, err := r.Vector(lo, min(lo+1000, n))
		if err != nil {
			t.Fatal(err)
		}
		codes := cv.UInt8s()
		for j, c := range codes {
			if got := md.Values[c]; got != vals[lo+j] {
				t.Fatalf("row %d: code %d decodes to %q, want %q", lo+j, c, got, vals[lo+j])
			}
		}
	}
}

// TestAttachMergedDictSkipsMixed verifies a column with any non-dict chunk
// gets no merged dictionary (the per-chunk/per-fallback path owns it).
func TestAttachMergedDictSkipsMixed(t *testing.T) {
	const n = 3000
	vals := make([]string, n)
	for i := range vals {
		if i/1000 == 1 {
			vals[i] = fmt.Sprintf("unique-%08d-%08d", i*7919, i*104729) // raw chunk
		} else {
			vals[i] = fmt.Sprintf("m%d", i%5)
		}
	}
	tab, _ := saveAttach(t, "mixed", vector.String, vals, 1000)
	if tab.Col("c").MergedDict() != nil {
		t.Fatal("mixed-codec column got a merged dictionary")
	}
	// The dict chunks still serve per-chunk dictionaries.
	r := tab.Col("c").Reader()
	codes, dict, ok, err := r.DictVector(0, 1000)
	if err != nil || !ok {
		t.Fatalf("first chunk should be dict-coded: ok=%v err=%v", ok, err)
	}
	for j := 0; j < 1000; j++ {
		if dict[codes.UInt8s()[j]] != vals[j] {
			t.Fatalf("row %d chunk-dict decode mismatch", j)
		}
	}
	// The raw chunk reports ok=false and falls back to value decode.
	r2 := tab.Col("c").Reader()
	if _, _, ok, err := r2.DictVector(1000, 2000); err != nil || ok {
		t.Fatalf("raw chunk should not serve a dictionary: ok=%v err=%v", ok, err)
	}
	v, err := r2.Vector(1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Strings()[0] != vals[1000] {
		t.Fatal("fallback decode mismatch")
	}
}

// TestBoolNarrowDecode round-trips bool chunks through every codec shape
// (constant runs -> RLE, alternating -> FoR/raw) via the narrow uint8
// scratch path.
func TestBoolNarrowDecode(t *testing.T) {
	const n = 4000
	shapes := map[string]func(i int) bool{
		"alternating": func(i int) bool { return i%2 == 0 },
		"runs":        func(i int) bool { return i/500%2 == 0 },
		"constant":    func(i int) bool { return true },
		"sparse":      func(i int) bool { return i%97 == 0 },
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			vals := make([]bool, n)
			for i := range vals {
				vals[i] = gen(i)
			}
			tab, _ := saveAttach(t, "b_"+name, vector.Bool, vals, 1000)
			col := tab.Col("c")
			r := col.Reader()
			for lo := 0; lo < n; lo += 1000 {
				v, err := r.Vector(lo, lo+1000)
				if err != nil {
					t.Fatal(err)
				}
				for j, b := range v.Bools() {
					if b != vals[lo+j] {
						t.Fatalf("row %d: %v, want %v", lo+j, b, vals[lo+j])
					}
				}
			}
		})
	}
}
