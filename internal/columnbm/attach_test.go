package columnbm

import (
	"testing"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// buildMixedTable creates a table covering every physical column kind with
// enough rows for several chunks at small chunk sizes.
func buildMixedTable(t *testing.T, n int) *colstore.Table {
	t.Helper()
	tab := colstore.NewTable("mixed")
	keys := make([]int64, n)
	dates := make([]int32, n)
	prices := make([]float64, n)
	names := make([]string, n)
	flags := make([]bool, n)
	enums := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(i) * 3
		dates[i] = int32(10000 + i/5)
		prices[i] = float64(i%97) * 1.5
		names[i] = string(rune('a'+i%26)) + "-val"
		flags[i] = i%3 == 0
		enums[i] = []string{"N", "R", "A"}[i%3]
	}
	if err := tab.AddColumn("k", vector.Int64, keys); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("d", vector.Date, dates); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("p", vector.Float64, prices); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("s", vector.String, names); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("b", vector.Bool, flags); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("e", enums); err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestAttachTableStreams saves a table, attaches it fragment-backed, and
// verifies every value through a FragReader — including batch ranges that
// stop at chunk boundaries — and through Pin (full materialization).
func TestAttachTableStreams(t *testing.T) {
	const n, chunk = 2500, 700 // chunk deliberately not a power of two
	orig := buildMixedTable(t, n)
	store, err := NewStore(t.TempDir(), chunk, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(orig); err != nil {
		t.Fatal(err)
	}
	got, err := store.AttachTable("mixed")
	if err != nil {
		t.Fatal(err)
	}
	if got.N != n {
		t.Fatalf("attached %d rows, want %d", got.N, n)
	}
	if got.ChunkRows != chunk {
		t.Fatalf("ChunkRows = %d, want %d", got.ChunkRows, chunk)
	}
	for _, col := range orig.Cols {
		ac := got.Col(col.Name)
		if ac == nil {
			t.Fatalf("column %s missing after attach", col.Name)
		}
		wantFrags := (n + chunk - 1) / chunk
		if ac.NumFrags() != wantFrags {
			t.Fatalf("column %s has %d fragments, want %d", col.Name, ac.NumFrags(), wantFrags)
		}
		// Stream in steps that exercise mid-fragment and boundary reads.
		r := ac.Reader()
		for lo := 0; lo < n; {
			_, fe := ac.FragSpan(lo)
			hi := min(lo+64, fe)
			v, err := r.Vector(lo, hi)
			if err != nil {
				t.Fatalf("column %s [%d,%d): %v", col.Name, lo, hi, err)
			}
			if v.Len() != hi-lo {
				t.Fatalf("column %s [%d,%d): %d values", col.Name, lo, hi, v.Len())
			}
			lo = hi
		}
		// Value-level comparison via the pinned path.
		for i := 0; i < n; i += 41 {
			if ac.DecodedValue(i) != col.DecodedValue(i) {
				t.Fatalf("column %s row %d: %v vs %v", col.Name, i, ac.DecodedValue(i), col.DecodedValue(i))
			}
		}
	}
}

// TestAttachReaderCrossFragment asserts a read spanning a chunk boundary is
// rejected (scans clamp batches, so this is an internal contract check).
func TestAttachReaderCrossFragment(t *testing.T) {
	orig := buildMixedTable(t, 100)
	store, err := NewStore(t.TempDir(), 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(orig); err != nil {
		t.Fatal(err)
	}
	got, err := store.AttachTable("mixed")
	if err != nil {
		t.Fatal(err)
	}
	r := got.Col("k").Reader()
	if _, err := r.Vector(35, 45); err == nil {
		t.Fatal("expected cross-fragment read to fail")
	}
	if v, err := r.Vector(40, 45); err != nil || v.Len() != 5 {
		t.Fatalf("aligned read failed: %v", err)
	}
}

// TestAttachChunkBounds verifies per-chunk min/max land in the manifest and
// expose through the fragment bounds interfaces.
func TestAttachChunkBounds(t *testing.T) {
	orig := buildMixedTable(t, 1000)
	store, err := NewStore(t.TempDir(), 250, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(orig); err != nil {
		t.Fatal(err)
	}
	got, err := store.AttachTable("mixed")
	if err != nil {
		t.Fatal(err)
	}
	k := got.Col("k") // k[i] = 3i, chunks of 250 rows
	for i := 0; i < k.NumFrags(); i++ {
		b, ok := k.Frag(i).(colstore.I64Bounded)
		if !ok {
			t.Fatalf("fragment %d has no int bounds", i)
		}
		mn, mx, has := b.BoundsI64()
		if !has {
			t.Fatalf("fragment %d bounds missing", i)
		}
		wantMin, wantMax := int64(3*250*i), int64(3*(250*(i+1)-1))
		if mn != wantMin || mx != wantMax {
			t.Fatalf("fragment %d bounds [%d,%d], want [%d,%d]", i, mn, mx, wantMin, wantMax)
		}
	}
	p := got.Col("p")
	if _, ok := p.Frag(0).(colstore.F64Bounded); !ok {
		t.Fatal("float column has no float bounds")
	}
	// Enum codes must not advertise value bounds (code order is not value
	// order).
	e := got.Col("e")
	if b, ok := e.Frag(0).(colstore.I64Bounded); ok {
		if _, _, has := b.BoundsI64(); has {
			t.Fatal("enum column advertises int bounds")
		}
	}
}

// TestAttachStorageReport sanity-checks TableStorage totals.
func TestAttachStorageReport(t *testing.T) {
	orig := buildMixedTable(t, 1000)
	store, err := NewStore(t.TempDir(), 250, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(orig); err != nil {
		t.Fatal(err)
	}
	cols, err := store.TableStorage("mixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != len(orig.Cols) {
		t.Fatalf("%d columns reported, want %d", len(cols), len(orig.Cols))
	}
	for _, c := range cols {
		if c.Chunks != 4 {
			t.Fatalf("column %s: %d chunks, want 4", c.Name, c.Chunks)
		}
		total := 0
		for _, n := range c.Codecs {
			total += n
		}
		if total != c.Chunks {
			t.Fatalf("column %s: codec counts %v do not sum to %d", c.Name, c.Codecs, c.Chunks)
		}
		if c.CompressedBytes <= 0 && c.RawBytes > 0 {
			t.Fatalf("column %s: no compressed bytes", c.Name)
		}
	}
	// The sequential key column must compress (delta or FoR).
	for _, c := range cols {
		if c.Name == "k" && c.CompressedBytes >= c.RawBytes {
			t.Fatalf("sequential column did not compress: %+v", c)
		}
	}
}
