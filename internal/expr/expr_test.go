package expr

import (
	"math"
	"testing"
	"testing/quick"

	"x100/internal/vector"
)

// testBatch builds a batch with float, int, string and date columns.
func testBatch(f []float64, g []float64, s []string, d []int32) *vector.Batch {
	n := len(f)
	return &vector.Batch{
		Schema: vector.Schema{
			{Name: "f", Type: vector.Float64},
			{Name: "g", Type: vector.Float64},
			{Name: "s", Type: vector.String},
			{Name: "d", Type: vector.Date},
		},
		Vecs: []*vector.Vector{
			vector.FromFloat64s(f), vector.FromFloat64s(g),
			vector.FromStrings(s), vector.FromDates(d),
		},
		N: n,
	}
}

var testSchema = vector.Schema{
	{Name: "f", Type: vector.Float64},
	{Name: "g", Type: vector.Float64},
	{Name: "s", Type: vector.String},
	{Name: "d", Type: vector.Date},
}

// compiledEqualsScalar checks that the vectorized program and the scalar
// interpreter agree on an expression for arbitrary inputs.
func compiledEqualsScalar(t *testing.T, e Expr, fuse bool) {
	t.Helper()
	prog, err := Compile(e, testSchema, Options{Fuse: fuse})
	if err != nil {
		t.Fatalf("compile %s: %v", e, err)
	}
	scalar, _, err := Bind(e, testSchema)
	if err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	check := func(f, g []float64, s []string, d []int32) bool {
		n := min(len(f), len(g), len(s), len(d))
		if n == 0 {
			return true
		}
		b := testBatch(f[:n], g[:n], s[:n], d[:n])
		out := prog.Run(b)
		for i := 0; i < n; i++ {
			want := scalar(b.Row(i))
			got := out.Value(i)
			if wf, ok := want.(float64); ok {
				gf := got.(float64)
				if wf != gf && !(math.IsNaN(wf) && math.IsNaN(gf)) {
					return false
				}
				continue
			}
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatalf("%s (fuse=%v): %v", e, fuse, err)
	}
}

func TestCompileMatchesScalar(t *testing.T) {
	exprs := []Expr{
		AddE(C("f"), C("g")),
		SubE(C("f"), Float(1.5)),
		MulE(SubE(Float(1), C("f")), C("g")),               // fusion pattern
		MulE(AddE(Float(1), C("f")), C("g")),               // fusion pattern
		MulE(C("g"), SubE(Float(1), C("f"))),               // flipped fusion
		DivE(SquareE(SubE(C("f"), C("g"))), C("g")),        // Mahalanobis
		AddE(MulE(C("f"), C("g")), DivE(C("f"), Float(2))), // nested
		LTE(C("f"), C("g")),
		GEE(C("f"), Float(0.5)),
		EQE(C("s"), Str("abc")),
		AndE(LTE(C("f"), Float(0.7)), GTE(C("g"), Float(0.2))),
		OrE(LTE(C("f"), Float(0.1)), GTE(C("g"), Float(0.9))),
		NotE(LEE(C("f"), C("g"))),
		CaseE(LTE(C("f"), C("g")), C("f"), C("g")),
		LikeE(C("s"), "%a%"),
		NotLikeE(C("s"), "a%"),
		InE(C("s"), Str("x"), Str("abc")),
		SubstrE(C("s"), 1, 2),
		ConcatE(C("s"), C("s")),
		YearE(C("d")),
		CastE(vector.Int64, C("d")),
		CastE(vector.Float64, C("d")),
	}
	for _, e := range exprs {
		compiledEqualsScalar(t, e, true)
		compiledEqualsScalar(t, e, false)
	}
}

func TestCompileRespectsSelectionVector(t *testing.T) {
	e := MulE(C("f"), Float(2))
	prog, err := Compile(e, testSchema, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := testBatch([]float64{1, 2, 3}, []float64{0, 0, 0}, []string{"", "", ""}, []int32{0, 0, 0})
	b.Sel = []int32{0, 2}
	out := prog.Run(b)
	v := out.Float64s()
	if v[0] != 2 || v[2] != 6 {
		t.Fatalf("selected positions wrong: %v", v)
	}
}

func TestConstantFolding(t *testing.T) {
	e := MulE(AddE(Float(2), Float(3)), C("f"))
	prog, err := Compile(e, testSchema, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := testBatch([]float64{2}, []float64{0}, []string{""}, []int32{0})
	if got := prog.Run(b).Float64s()[0]; got != 10 {
		t.Fatalf("got %v", got)
	}
}

func TestTypeErrors(t *testing.T) {
	bad := []Expr{
		AddE(C("f"), C("s")),                       // float + string
		AddE(C("f"), Int(1)),                       // float + int64 (no implicit cast)
		LTE(C("f"), C("s")),                        // mixed comparison
		AndE(C("f")),                               // non-bool conjunct
		LikeE(C("f"), "%x"),                        // like on float
		CaseE(C("f"), C("f"), C("f")),              // non-bool condition
		CaseE(LTE(C("f"), C("g")), C("f"), C("s")), // branch type mismatch
		YearE(C("s")),                              // year of string
		CastE(vector.String, C("f")),               // cast to string
	}
	for _, e := range bad {
		if _, err := e.Type(testSchema); err == nil {
			t.Errorf("%s: expected type error", e)
		}
	}
	if _, err := C("nope").Type(testSchema); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestPredConjunctionChain(t *testing.T) {
	pred, err := CompilePred(
		AndE(GEE(C("f"), Float(0.25)), LTE(C("f"), Float(0.75)), GTE(C("g"), Float(0.5))),
		testSchema, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := []float64{0.1, 0.3, 0.5, 0.9, 0.6}
	g := []float64{0.9, 0.9, 0.2, 0.9, 0.8}
	b := testBatch(f, g, make([]string, 5), make([]int32, 5))
	sel := pred.Select(b)
	// f in [0.25,0.75) and g > 0.5: rows 1 and 4.
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 4 {
		t.Fatalf("sel=%v", sel)
	}
}

func TestPredWithIncomingSelection(t *testing.T) {
	pred, err := CompilePred(GTE(C("f"), Float(0.0)), testSchema, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := testBatch([]float64{1, -1, 1, 1}, make([]float64, 4), make([]string, 4), make([]int32, 4))
	b.Sel = []int32{1, 2}
	sel := pred.Select(b)
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("sel=%v", sel)
	}
}

func TestPredFallbackBoolPath(t *testing.T) {
	// OR predicates take the boolean-program + select_bit_col path.
	pred, err := CompilePred(
		OrE(LTE(C("f"), Float(0.2)), GTE(C("f"), Float(0.8))),
		testSchema, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := testBatch([]float64{0.1, 0.5, 0.9}, make([]float64, 3), make([]string, 3), make([]int32, 3))
	sel := pred.Select(b)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Fatalf("sel=%v", sel)
	}
}

func TestPredMatchesScalar(t *testing.T) {
	preds := []Expr{
		LTE(C("f"), Float(0.5)),
		AndE(GTE(C("f"), C("g")), NEE(C("s"), Str(""))),
		OrE(EQE(C("s"), Str("a")), LTE(C("f"), Float(0.25))),
		InE(C("s"), Str("a"), Str("b")),
	}
	for _, p := range preds {
		pred, err := CompilePred(p, testSchema, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		scalar, _, err := Bind(p, testSchema)
		if err != nil {
			t.Fatal(err)
		}
		check := func(f, g []float64, s []string) bool {
			n := min(len(f), len(g), len(s))
			if n == 0 {
				return true
			}
			b := testBatch(f[:n], g[:n], s[:n], make([]int32, n))
			sel := pred.Select(b)
			var want []int32
			for i := 0; i < n; i++ {
				if scalar(b.Row(i)).(bool) {
					want = append(want, int32(i))
				}
			}
			if len(sel) != len(want) {
				return false
			}
			for i := range want {
				if sel[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestColumnsCollection(t *testing.T) {
	e := AndE(LTE(C("f"), C("g")), LikeE(C("s"), "%x"), CaseE(GTE(C("f"), Float(0)), YearE(C("d")), CastE(vector.Int32, C("g"))))
	cols := Columns(e, nil)
	seen := map[string]bool{}
	for _, c := range cols {
		seen[c] = true
	}
	for _, want := range []string{"f", "g", "s", "d"} {
		if !seen[want] {
			t.Errorf("missing column %s in %v", want, cols)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := MulE(SubE(Float(1), C("disc")), C("price"))
	if e.String() != "*(-(float64(1), disc), price)" {
		t.Fatalf("got %q", e.String())
	}
}
