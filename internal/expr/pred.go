package expr

import (
	"fmt"

	"x100/internal/primitives"
	"x100/internal/vector"
)

// Pred is a compiled predicate: it maps a batch (with an optional incoming
// selection vector) to an outgoing selection vector of qualifying positions.
//
// A conjunctive predicate compiles to a chain of select_* primitives, each
// shrinking the candidate list — the X100 Select operator "creates a
// selection-vector, filled with positions of tuples that match our
// predicate" (Section 4.1.1). Conjuncts that are not simple column/constant
// comparisons fall back to a boolean-vector program followed by
// select_bit_col.
type Pred struct {
	steps []selStep
	bufA  []int32
	// bufs tracks the per-step scratch buffers so Reserve can preallocate
	// them once per execution instead of growing lazily on the hot path.
	bufs []*selBuf
}

// Reserve preallocates all selection buffers for batches of up to n values.
// The Select operator calls it at Open so steady-state Next calls allocate
// nothing.
func (pr *Pred) Reserve(n int) {
	if cap(pr.bufA) < n {
		pr.bufA = make([]int32, n)
	}
	for _, b := range pr.bufs {
		b.get(n)
	}
}

// newSelBuf registers a fresh per-step scratch buffer with the predicate.
func (pr *Pred) newSelBuf() *selBuf {
	b := &selBuf{}
	pr.bufs = append(pr.bufs, b)
	return b
}

type selStep func(b *vector.Batch, sel []int32) []int32

// CompilePred builds a predicate program for a boolean expression e.
func CompilePred(e Expr, schema vector.Schema, opts Options) (*Pred, error) {
	t, err := e.Type(schema)
	if err != nil {
		return nil, err
	}
	if t != vector.Bool {
		return nil, fmt.Errorf("expr: predicate %s has type %v, want bool", e, t)
	}
	pr := &Pred{}
	conjuncts := flattenAnd(e, nil)
	for _, cj := range conjuncts {
		step, err := compileConjunct(pr, cj, schema, opts)
		if err != nil {
			return nil, err
		}
		pr.steps = append(pr.steps, step)
	}
	return pr, nil
}

func flattenAnd(e Expr, dst []Expr) []Expr {
	if a, ok := e.(*And); ok {
		for _, arg := range a.Args {
			dst = flattenAnd(arg, dst)
		}
		return dst
	}
	return append(dst, e)
}

// Select evaluates the predicate over b and returns the selection vector of
// qualifying positions. The returned slice is owned by the Pred and valid
// until the next Select call.
func (pr *Pred) Select(b *vector.Batch) []int32 {
	if cap(pr.bufA) < b.N {
		pr.bufA = make([]int32, b.N)
	}
	sel := b.Sel
	for _, step := range pr.steps {
		sel = step(b, sel)
		if len(sel) == 0 {
			return sel
		}
	}
	if sel == nil {
		// Degenerate: empty conjunct list (constant true).
		sel = pr.bufA[:b.N]
		for i := range sel {
			sel[i] = int32(i)
		}
	}
	return sel
}

func compileConjunct(pr *Pred, e Expr, schema vector.Schema, opts Options) (selStep, error) {
	if cmp, ok := e.(*Cmp); ok {
		if step, ok, err := trySelectPrimitive(pr, cmp, schema, opts); err != nil {
			return nil, err
		} else if ok {
			return step, nil
		}
	}
	// Fallback: boolean program + select_bit_col.
	prog, err := Compile(e, schema, opts)
	if err != nil {
		return nil, err
	}
	return wrapBoolStep(pr, prog, opts), nil
}

// trySelectPrimitive recognizes col-vs-const and col-vs-col comparisons on
// raw batch columns and emits a direct select primitive.
func trySelectPrimitive(pr *Pred, cmp *Cmp, schema vector.Schema, opts Options) (selStep, bool, error) {
	lc, lok := cmp.L.(*Col)
	rc, rok := cmp.R.(*Col)
	lv, lconst := cmp.L.(*Const)
	rv, rconst := cmp.R.(*Const)
	op := cmp.Op

	switch {
	case lok && rconst:
		return selColVal(pr, op, schema, lc.Name, rv, opts)
	case rok && lconst:
		return selColVal(pr, flipCmp(op), schema, rc.Name, lv, opts)
	case lok && rok:
		return selColCol(pr, op, schema, lc.Name, rc.Name, opts)
	default:
		return nil, false, nil
	}
}

func selColVal(pr *Pred, op CmpKind, schema vector.Schema, col string, cst *Const, opts Options) (selStep, bool, error) {
	ci := schema.ColIndex(col)
	if ci < 0 {
		return nil, false, fmt.Errorf("expr: unknown column %q", col)
	}
	t := schema[ci].Type
	if t.Physical() != cst.Typ.Physical() {
		return nil, false, fmt.Errorf("expr: comparison of %v column %s with %v literal", t, col, cst.Typ)
	}
	name := fmt.Sprintf("select_%s_%s_col_%s_val", cmpName(op), typeAbbrev(t), typeAbbrev(t))
	switch t.Physical() {
	case vector.Int32:
		return selColValT[int32](pr, op, ci, cst.Val.(int32), name, opts), true, nil
	case vector.Int64:
		return selColValT[int64](pr, op, ci, cst.Val.(int64), name, opts), true, nil
	case vector.Float64:
		return selColValT[float64](pr, op, ci, cst.Val.(float64), name, opts), true, nil
	case vector.String:
		return selColValT[string](pr, op, ci, cst.Val.(string), name, opts), true, nil
	case vector.UInt8:
		return selColValT[uint8](pr, op, ci, cst.Val.(uint8), name, opts), true, nil
	case vector.UInt16:
		return selColValT[uint16](pr, op, ci, cst.Val.(uint16), name, opts), true, nil
	default:
		return nil, false, nil
	}
}

// selBuf is a per-step scratch selection buffer. Each step owns one and
// grows it to the batch size on demand; select primitives may safely write
// in place over their input, but distinct buffers keep the incoming
// operator-owned selection vector intact.
type selBuf struct{ buf []int32 }

func (s *selBuf) get(n int) []int32 {
	if cap(s.buf) < n {
		s.buf = make([]int32, n)
	}
	return s.buf[:n]
}

func selColValT[T primitives.Ordered](pr *Pred, op CmpKind, ci int, v T, name string, opts Options) selStep {
	buf := pr.newSelBuf()
	tr := opts.Tracer
	return func(b *vector.Batch, sel []int32) []int32 {
		res := buf.get(b.N)
		in := vector.Data[T](b.Vecs[ci])[:b.N]
		nin := b.N
		if sel != nil {
			nin = len(sel)
		}
		t0 := tr.Now()
		var k int
		switch op {
		case LT:
			k = primitives.SelectLTColVal(res, in, v, sel)
		case LE:
			k = primitives.SelectLEColVal(res, in, v, sel)
		case GT:
			k = primitives.SelectGTColVal(res, in, v, sel)
		case GE:
			k = primitives.SelectGEColVal(res, in, v, sel)
		case EQ:
			k = primitives.SelectEQColVal(res, in, v, sel)
		default:
			k = primitives.SelectNEColVal(res, in, v, sel)
		}
		tr.RecordPrimitiveSince(name, t0, nin, nin*int(unsafeWidth[T]())+4*k)
		return res[:k]
	}
}

func selColCol(pr *Pred, op CmpKind, schema vector.Schema, colL, colR string, opts Options) (selStep, bool, error) {
	li := schema.ColIndex(colL)
	ri := schema.ColIndex(colR)
	if li < 0 || ri < 0 {
		return nil, false, fmt.Errorf("expr: unknown column %q or %q", colL, colR)
	}
	t := schema[li].Type
	if t.Physical() != schema[ri].Type.Physical() {
		return nil, false, fmt.Errorf("expr: comparison of %v with %v", t, schema[ri].Type)
	}
	name := fmt.Sprintf("select_%s_%s_col_%s_col", cmpName(op), typeAbbrev(t), typeAbbrev(t))
	switch t.Physical() {
	case vector.Int32:
		return selColColT[int32](pr, op, li, ri, name, opts), true, nil
	case vector.Int64:
		return selColColT[int64](pr, op, li, ri, name, opts), true, nil
	case vector.Float64:
		return selColColT[float64](pr, op, li, ri, name, opts), true, nil
	case vector.String:
		return selColColT[string](pr, op, li, ri, name, opts), true, nil
	default:
		return nil, false, nil
	}
}

func selColColT[T primitives.Ordered](pr *Pred, op CmpKind, li, ri int, name string, opts Options) selStep {
	buf := pr.newSelBuf()
	tr := opts.Tracer
	return func(b *vector.Batch, sel []int32) []int32 {
		res := buf.get(b.N)
		a := vector.Data[T](b.Vecs[li])[:b.N]
		bb := vector.Data[T](b.Vecs[ri])[:b.N]
		nin := b.N
		if sel != nil {
			nin = len(sel)
		}
		t0 := tr.Now()
		var k int
		switch op {
		case LT:
			k = primitives.SelectLTColCol(res, a, bb, sel)
		case LE:
			k = primitives.SelectLEColCol(res, a, bb, sel)
		case GT:
			k = primitives.SelectGTColCol(res, a, bb, sel)
		case GE:
			k = primitives.SelectGEColCol(res, a, bb, sel)
		case EQ:
			k = primitives.SelectEQColCol(res, a, bb, sel)
		default:
			k = primitives.SelectNEColCol(res, a, bb, sel)
		}
		tr.RecordPrimitiveSince(name, t0, nin, nin*2*int(unsafeWidth[T]())+4*k)
		return res[:k]
	}
}

// wrapBoolStep runs a boolean program over the current candidates and
// selects the true positions.
func wrapBoolStep(pr *Pred, prog *Prog, opts Options) selStep {
	buf := pr.newSelBuf()
	tr := opts.Tracer
	return func(b *vector.Batch, sel []int32) []int32 {
		// Temporarily narrow the batch selection so the program only
		// evaluates live candidates.
		saved := b.Sel
		b.Sel = sel
		v := prog.Run(b)
		b.Sel = saved
		res := buf.get(b.N)
		bools := vector.Data[bool](v)
		nin := b.N
		if sel != nil {
			nin = len(sel)
		}
		t0 := tr.Now()
		k := primitives.SelectBoolCol(res, bools, sel)
		tr.RecordPrimitiveSince("select_bit_col", t0, nin, nin+4*k)
		return res[:k]
	}
}

// unsafeWidth reports the byte width of T for bandwidth accounting (strings
// count their header).
func unsafeWidth[T any]() uintptr {
	var z T
	switch any(z).(type) {
	case uint8:
		return 1
	case uint16:
		return 2
	case int32:
		return 4
	case int64, float64:
		return 8
	case string:
		return 16
	default:
		return 8
	}
}
