package expr

import (
	"fmt"

	"x100/internal/dateutil"
	"x100/internal/primitives"
	"x100/internal/trace"
	"x100/internal/vector"
)

// Options configure expression compilation.
type Options struct {
	// Fuse enables compound-primitive fusion of expression sub-trees
	// (Section 4.2); disabled it falls back to one primitive per node,
	// which the compound ablation bench measures.
	Fuse bool
	// Tracer receives per-primitive statistics; nil disables tracing.
	Tracer *trace.Collector
}

// DefaultOptions enable fusion without tracing.
func DefaultOptions() Options { return Options{Fuse: true} }

type okind uint8

const (
	oCol okind = iota
	oReg
	oConst
)

// operand locates a value source: a batch column, a register, or a literal.
type operand struct {
	kind okind
	idx  int
	cval any
	typ  vector.Type
}

type stepFn func(p *Prog, b *vector.Batch)

// Prog is a compiled vectorized expression: a sequence of primitive
// invocations over reusable vector registers. A Prog is not safe for
// concurrent use; each operator owns its own.
type Prog struct {
	steps   []stepFn
	regs    []*vector.Vector
	regTyps []vector.Type
	out     operand
	outType vector.Type
	tracer  *trace.Collector
}

// OutType returns the result type of the expression.
func (p *Prog) OutType() vector.Type { return p.outType }

// Run evaluates the program against a batch and returns the result vector.
// Values at unselected positions are unspecified; callers must respect
// b.Sel. The returned vector is owned by the Prog (or is a batch column)
// and is valid until the next Run.
func (p *Prog) Run(b *vector.Batch) *vector.Vector {
	for _, s := range p.steps {
		s(p, b)
	}
	switch p.out.kind {
	case oCol:
		return b.Vecs[p.out.idx]
	case oReg:
		return p.regs[p.out.idx].Slice(0, b.N)
	default:
		// Constant expression: materialize once per call.
		r := p.ensureReg(p.out.idx, p.outType, b.N)
		fillConst(r, p.out.cval, b)
		return r
	}
}

func (p *Prog) ensureReg(i int, t vector.Type, n int) *vector.Vector {
	r := p.regs[i]
	if r == nil || r.Len() < n {
		r = vector.New(t, n)
		p.regs[i] = r
	}
	return p.regs[i].Slice(0, n)
}

// regSlice returns register i as a typed slice of length n, growing it as
// needed.
func regSlice[T any](p *Prog, i int, t vector.Type, n int) []T {
	return vector.Data[T](p.ensureReg(i, t, n))
}

func fillConst(v *vector.Vector, val any, b *vector.Batch) {
	n := v.Len()
	if b.Sel != nil {
		for _, i := range b.Sel {
			v.Set(int(i), val)
		}
		return
	}
	for i := 0; i < n; i++ {
		v.Set(i, val)
	}
}

type compiler struct {
	schema vector.Schema
	opts   Options
	prog   *Prog
}

// Compile builds a vectorized program for e over the given input schema.
func Compile(e Expr, schema vector.Schema, opts Options) (*Prog, error) {
	if _, err := e.Type(schema); err != nil {
		return nil, err
	}
	c := &compiler{schema: schema, opts: opts, prog: &Prog{tracer: opts.Tracer}}
	out, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	if out.kind == oConst {
		// Reserve a register to materialize into.
		out.idx = c.newReg(out.typ)
	}
	c.prog.out = out
	c.prog.outType = out.typ
	return c.prog, nil
}

func (c *compiler) newReg(t vector.Type) int {
	c.prog.regs = append(c.prog.regs, nil)
	c.prog.regTyps = append(c.prog.regTyps, t)
	return len(c.prog.regs) - 1
}

func (c *compiler) compile(e Expr) (operand, error) {
	switch x := e.(type) {
	case *Col:
		i := c.schema.ColIndex(x.Name)
		if i < 0 {
			return operand{}, fmt.Errorf("expr: unknown column %q", x.Name)
		}
		return operand{kind: oCol, idx: i, typ: c.schema[i].Type}, nil
	case *Const:
		return operand{kind: oConst, cval: x.Val, typ: x.Typ}, nil
	case *Bin:
		return c.compileBin(x)
	case *Cast:
		return c.compileCast(x)
	case *Cmp:
		return c.compileCmpBool(x)
	case *And:
		return c.compileLogic(x.Args, true)
	case *Or:
		return c.compileLogic(x.Args, false)
	case *Not:
		a, err := c.compile(x.Arg)
		if err != nil {
			return operand{}, err
		}
		dst := c.newReg(vector.Bool)
		c.emit(func(p *Prog, b *vector.Batch) {
			res := regSlice[bool](p, dst, vector.Bool, b.N)
			t0 := p.tracer.Now()
			primitives.MapNotCol(res, fetch[bool](p, b, a), b.Sel)
			p.tracer.RecordPrimitiveSince("map_not_bool_col", t0, b.Rows(), 2*b.Rows())
		})
		return operand{kind: oReg, idx: dst, typ: vector.Bool}, nil
	case *Like:
		return c.compileLike(x)
	case *In:
		return c.compileIn(x)
	case *Case:
		return c.compileCase(x)
	case *Func:
		return c.compileFunc(x)
	default:
		return operand{}, fmt.Errorf("expr: cannot compile %T", e)
	}
}

func (c *compiler) emit(s stepFn) { c.prog.steps = append(c.prog.steps, s) }

// fetch extracts the typed slice of an operand, sized to the batch.
func fetch[T any](p *Prog, b *vector.Batch, o operand) []T {
	switch o.kind {
	case oCol:
		return vector.Data[T](b.Vecs[o.idx])[:b.N]
	case oReg:
		return vector.Data[T](p.regs[o.idx])[:b.N]
	default:
		panic("expr: fetch of constant operand")
	}
}

func constVal[T any](o operand) T { return o.cval.(T) }

// --- arithmetic ---

func (c *compiler) compileBin(x *Bin) (operand, error) {
	t, err := x.Type(c.schema)
	if err != nil {
		return operand{}, err
	}
	// Compound-primitive fusion (Section 4.2).
	if c.opts.Fuse {
		if op, ok, err := c.tryFuse(x, t); err != nil {
			return operand{}, err
		} else if ok {
			return op, nil
		}
	}
	l, err := c.compile(x.L)
	if err != nil {
		return operand{}, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return operand{}, err
	}
	if l.kind == oConst && r.kind == oConst {
		return foldBin(x.Op, t, l, r)
	}
	switch t.Physical() {
	case vector.Int32:
		return arithT[int32](c, x.Op, t, l, r)
	case vector.Int64:
		return arithT[int64](c, x.Op, t, l, r)
	case vector.Float64:
		return arithT[float64](c, x.Op, t, l, r)
	default:
		return operand{}, fmt.Errorf("expr: arithmetic on %v unsupported", t)
	}
}

func arithT[T primitives.Number](c *compiler, op BinKind, t vector.Type, l, r operand) (operand, error) {
	dst := c.newReg(t)
	name := fmt.Sprintf("map_%s_%s_%s_%s", opName(op), typeAbbrev(t), shape(l), shape(r))
	width := t.Width()
	c.emit(func(p *Prog, b *vector.Batch) {
		res := regSlice[T](p, dst, t, b.N)
		t0 := p.tracer.Now()
		switch {
		case l.kind == oConst:
			v := constVal[T](l)
			a := fetch[T](p, b, r)
			switch op {
			case Add:
				primitives.MapAddColVal(res, a, v, b.Sel)
			case Sub:
				primitives.MapSubValCol(res, v, a, b.Sel)
			case Mul:
				primitives.MapMulColVal(res, a, v, b.Sel)
			case Div:
				primitives.MapDivValCol(res, v, a, b.Sel)
			}
		case r.kind == oConst:
			a := fetch[T](p, b, l)
			v := constVal[T](r)
			switch op {
			case Add:
				primitives.MapAddColVal(res, a, v, b.Sel)
			case Sub:
				primitives.MapSubColVal(res, a, v, b.Sel)
			case Mul:
				primitives.MapMulColVal(res, a, v, b.Sel)
			case Div:
				primitives.MapDivColVal(res, a, v, b.Sel)
			}
		default:
			a := fetch[T](p, b, l)
			bb := fetch[T](p, b, r)
			switch op {
			case Add:
				primitives.MapAddColCol(res, a, bb, b.Sel)
			case Sub:
				primitives.MapSubColCol(res, a, bb, b.Sel)
			case Mul:
				primitives.MapMulColCol(res, a, bb, b.Sel)
			case Div:
				primitives.MapDivColCol(res, a, bb, b.Sel)
			}
		}
		p.tracer.RecordPrimitiveSince(name, t0, b.Rows(), 3*width*b.Rows())
	})
	return operand{kind: oReg, idx: dst, typ: t}, nil
}

func foldBin(op BinKind, t vector.Type, l, r operand) (operand, error) {
	switch t.Physical() {
	case vector.Float64:
		a, b := l.cval.(float64), r.cval.(float64)
		return operand{kind: oConst, cval: foldNum(op, a, b), typ: t}, nil
	case vector.Int64:
		a, b := l.cval.(int64), r.cval.(int64)
		return operand{kind: oConst, cval: foldNum(op, a, b), typ: t}, nil
	case vector.Int32:
		a, b := l.cval.(int32), r.cval.(int32)
		return operand{kind: oConst, cval: foldNum(op, a, b), typ: t}, nil
	}
	return operand{}, fmt.Errorf("expr: cannot fold %v", t)
}

func foldNum[T primitives.Number](op BinKind, a, b T) T {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	default:
		return a / b
	}
}

// tryFuse recognizes compound sub-trees and emits a single fused primitive:
//
//	mul(sub(const, col), x)  -> fused_sub_mul  ((1-discount)*extprice)
//	mul(add(const, col), x)  -> fused_add_mul  ((1+tax)*discountprice)
//	div(square(sub(a,b)), c) -> fused_mahalanobis
func (c *compiler) tryFuse(x *Bin, t vector.Type) (operand, bool, error) {
	if t.Physical() != vector.Float64 {
		return operand{}, false, nil
	}
	if x.Op == Mul {
		if inner, ok := x.L.(*Bin); ok && (inner.Op == Sub || inner.Op == Add) {
			if cst, ok := inner.L.(*Const); ok {
				return c.emitFusedValColCol(inner.Op, cst, inner.R, x.R)
			}
		}
		if inner, ok := x.R.(*Bin); ok && (inner.Op == Sub || inner.Op == Add) {
			if cst, ok := inner.L.(*Const); ok {
				return c.emitFusedValColCol(inner.Op, cst, inner.R, x.L)
			}
		}
	}
	if x.Op == Div {
		if sq, ok := x.L.(*Func); ok && sq.Kind == FuncSquare {
			if sub, ok := sq.Args[0].(*Bin); ok && sub.Op == Sub {
				a, err := c.compile(sub.L)
				if err != nil {
					return operand{}, false, err
				}
				bOp, err := c.compile(sub.R)
				if err != nil {
					return operand{}, false, err
				}
				cc, err := c.compile(x.R)
				if err != nil {
					return operand{}, false, err
				}
				if a.kind == oConst || bOp.kind == oConst || cc.kind == oConst {
					return operand{}, false, nil
				}
				dst := c.newReg(vector.Float64)
				c.emit(func(p *Prog, b *vector.Batch) {
					res := regSlice[float64](p, dst, vector.Float64, b.N)
					t0 := p.tracer.Now()
					primitives.FusedMahalanobis(res, fetch[float64](p, b, a), fetch[float64](p, b, bOp), fetch[float64](p, b, cc), b.Sel)
					p.tracer.RecordPrimitiveSince("fused_mahalanobis_flt", t0, b.Rows(), 4*8*b.Rows())
				})
				return operand{kind: oReg, idx: dst, typ: vector.Float64}, true, nil
			}
		}
	}
	return operand{}, false, nil
}

func (c *compiler) emitFusedValColCol(inner BinKind, cst *Const, colE, otherE Expr) (operand, bool, error) {
	a, err := c.compile(colE)
	if err != nil {
		return operand{}, false, err
	}
	if a.kind == oConst {
		return operand{}, false, nil
	}
	o, err := c.compile(otherE)
	if err != nil {
		return operand{}, false, err
	}
	if o.kind == oConst {
		return operand{}, false, nil
	}
	v, ok := cst.Val.(float64)
	if !ok {
		return operand{}, false, nil
	}
	dst := c.newReg(vector.Float64)
	name := "fused_sub_mul_flt_val_flt_col_flt_col"
	if inner == Add {
		name = "fused_add_mul_flt_val_flt_col_flt_col"
	}
	c.emit(func(p *Prog, b *vector.Batch) {
		res := regSlice[float64](p, dst, vector.Float64, b.N)
		t0 := p.tracer.Now()
		if inner == Sub {
			primitives.FusedSubMulValColCol(res, v, fetch[float64](p, b, a), fetch[float64](p, b, o), b.Sel)
		} else {
			primitives.FusedAddMulValColCol(res, v, fetch[float64](p, b, a), fetch[float64](p, b, o), b.Sel)
		}
		p.tracer.RecordPrimitiveSince(name, t0, b.Rows(), 3*8*b.Rows())
	})
	return operand{kind: oReg, idx: dst, typ: vector.Float64}, true, nil
}

// --- casts and functions ---

func (c *compiler) compileCast(x *Cast) (operand, error) {
	a, err := c.compile(x.Arg)
	if err != nil {
		return operand{}, err
	}
	if a.typ.Physical() == x.To.Physical() {
		a.typ = x.To
		return a, nil
	}
	if a.kind == oConst {
		return operand{kind: oConst, cval: convertConst(a.cval, x.To), typ: x.To}, nil
	}
	dst := c.newReg(x.To)
	name := fmt.Sprintf("map_cast_%s_%s_col", typeAbbrev(a.typ), typeAbbrev(x.To))
	from, to := a.typ.Physical(), x.To.Physical()
	c.emit(func(p *Prog, b *vector.Batch) {
		t0 := p.tracer.Now()
		castStep(p, b, dst, x.To, from, to, a)
		p.tracer.RecordPrimitiveSince(name, t0, b.Rows(), (a.typ.Width()+x.To.Width())*b.Rows())
	})
	return operand{kind: oReg, idx: dst, typ: x.To}, nil
}

func castStep(p *Prog, b *vector.Batch, dst int, logTo, from, to vector.Type, a operand) {
	switch to {
	case vector.Float64:
		res := regSlice[float64](p, dst, logTo, b.N)
		switch from {
		case vector.Int32:
			primitives.MapConvert(res, fetch[int32](p, b, a), b.Sel)
		case vector.Int64:
			primitives.MapConvert(res, fetch[int64](p, b, a), b.Sel)
		case vector.UInt8:
			primitives.MapConvert(res, fetch[uint8](p, b, a), b.Sel)
		case vector.UInt16:
			primitives.MapConvert(res, fetch[uint16](p, b, a), b.Sel)
		}
	case vector.Int64:
		res := regSlice[int64](p, dst, logTo, b.N)
		switch from {
		case vector.Int32:
			primitives.MapConvert(res, fetch[int32](p, b, a), b.Sel)
		case vector.Float64:
			primitives.MapConvert(res, fetch[float64](p, b, a), b.Sel)
		case vector.UInt8:
			primitives.MapConvert(res, fetch[uint8](p, b, a), b.Sel)
		case vector.UInt16:
			primitives.MapConvert(res, fetch[uint16](p, b, a), b.Sel)
		}
	case vector.Int32:
		res := regSlice[int32](p, dst, logTo, b.N)
		switch from {
		case vector.Int64:
			primitives.MapConvert(res, fetch[int64](p, b, a), b.Sel)
		case vector.Float64:
			primitives.MapConvert(res, fetch[float64](p, b, a), b.Sel)
		case vector.UInt8:
			primitives.MapConvert(res, fetch[uint8](p, b, a), b.Sel)
		case vector.UInt16:
			primitives.MapConvert(res, fetch[uint16](p, b, a), b.Sel)
		}
	}
}

func convertConst(v any, to vector.Type) any {
	var f float64
	switch x := v.(type) {
	case int32:
		f = float64(x)
	case int64:
		f = float64(x)
	case float64:
		f = x
	case uint8:
		f = float64(x)
	case uint16:
		f = float64(x)
	}
	switch to.Physical() {
	case vector.Int32:
		return int32(f)
	case vector.Int64:
		return int64(f)
	default:
		return f
	}
}

func (c *compiler) compileFunc(x *Func) (operand, error) {
	switch x.Kind {
	case FuncYear:
		a, err := c.compile(x.Args[0])
		if err != nil {
			return operand{}, err
		}
		dst := c.newReg(vector.Int32)
		c.emit(func(p *Prog, b *vector.Batch) {
			res := regSlice[int32](p, dst, vector.Int32, b.N)
			days := fetch[int32](p, b, a)
			t0 := p.tracer.Now()
			if b.Sel != nil {
				for _, i := range b.Sel {
					res[i] = dateutil.Year(days[i])
				}
			} else {
				for i := range res {
					res[i] = dateutil.Year(days[i])
				}
			}
			p.tracer.RecordPrimitiveSince("map_year_date_col", t0, b.Rows(), 8*b.Rows())
		})
		return operand{kind: oReg, idx: dst, typ: vector.Int32}, nil
	case FuncSquare:
		// Rewritten as x*x over a shared operand.
		a, err := c.compile(x.Args[0])
		if err != nil {
			return operand{}, err
		}
		if a.kind == oConst {
			f := a.cval.(float64)
			return operand{kind: oConst, cval: f * f, typ: a.typ}, nil
		}
		t := a.typ
		switch t.Physical() {
		case vector.Float64:
			return squareT[float64](c, t, a)
		case vector.Int64:
			return squareT[int64](c, t, a)
		case vector.Int32:
			return squareT[int32](c, t, a)
		}
		return operand{}, fmt.Errorf("expr: square on %v", t)
	case FuncSubstr:
		a, err := c.compile(x.Args[0])
		if err != nil {
			return operand{}, err
		}
		dst := c.newReg(vector.String)
		start, length := x.Start, x.Length
		c.emit(func(p *Prog, b *vector.Batch) {
			res := regSlice[string](p, dst, vector.String, b.N)
			t0 := p.tracer.Now()
			primitives.MapSubstrCol(res, fetch[string](p, b, a), start, length, b.Sel)
			p.tracer.RecordPrimitiveSince("map_substr_str_col", t0, b.Rows(), 32*b.Rows())
		})
		return operand{kind: oReg, idx: dst, typ: vector.String}, nil
	case FuncConcat:
		a, err := c.compile(x.Args[0])
		if err != nil {
			return operand{}, err
		}
		bOp, err := c.compile(x.Args[1])
		if err != nil {
			return operand{}, err
		}
		dst := c.newReg(vector.String)
		c.emit(func(p *Prog, b *vector.Batch) {
			res := regSlice[string](p, dst, vector.String, b.N)
			t0 := p.tracer.Now()
			primitives.MapConcatColCol(res, fetch[string](p, b, a), fetch[string](p, b, bOp), b.Sel)
			p.tracer.RecordPrimitiveSince("map_concat_str_col_str_col", t0, b.Rows(), 48*b.Rows())
		})
		return operand{kind: oReg, idx: dst, typ: vector.String}, nil
	default:
		return operand{}, fmt.Errorf("expr: unknown function kind %d", x.Kind)
	}
}

func squareT[T primitives.Number](c *compiler, t vector.Type, a operand) (operand, error) {
	dst := c.newReg(t)
	name := fmt.Sprintf("map_square_%s_col", typeAbbrev(t))
	c.emit(func(p *Prog, b *vector.Batch) {
		res := regSlice[T](p, dst, t, b.N)
		in := fetch[T](p, b, a)
		t0 := p.tracer.Now()
		primitives.MapMulColCol(res, in, in, b.Sel)
		p.tracer.RecordPrimitiveSince(name, t0, b.Rows(), 2*t.Width()*b.Rows())
	})
	return operand{kind: oReg, idx: dst, typ: t}, nil
}

// --- booleans ---

func (c *compiler) compileLogic(args []Expr, isAnd bool) (operand, error) {
	if len(args) == 0 {
		return operand{kind: oConst, cval: isAnd, typ: vector.Bool}, nil
	}
	acc, err := c.compileBoolOperand(args[0])
	if err != nil {
		return operand{}, err
	}
	for _, arg := range args[1:] {
		nxt, err := c.compileBoolOperand(arg)
		if err != nil {
			return operand{}, err
		}
		dst := c.newReg(vector.Bool)
		a, bOp := acc, nxt
		and := isAnd
		c.emit(func(p *Prog, b *vector.Batch) {
			res := regSlice[bool](p, dst, vector.Bool, b.N)
			t0 := p.tracer.Now()
			if and {
				primitives.MapAndColCol(res, fetch[bool](p, b, a), fetch[bool](p, b, bOp), b.Sel)
				p.tracer.RecordPrimitiveSince("map_and_bool_col_bool_col", t0, b.Rows(), 3*b.Rows())
			} else {
				primitives.MapOrColCol(res, fetch[bool](p, b, a), fetch[bool](p, b, bOp), b.Sel)
				p.tracer.RecordPrimitiveSince("map_or_bool_col_bool_col", t0, b.Rows(), 3*b.Rows())
			}
		})
		acc = operand{kind: oReg, idx: dst, typ: vector.Bool}
	}
	return acc, nil
}

// compileBoolOperand compiles a boolean expression, materializing constants
// into registers so logical steps can fetch slices uniformly.
func (c *compiler) compileBoolOperand(e Expr) (operand, error) {
	o, err := c.compile(e)
	if err != nil {
		return operand{}, err
	}
	if o.kind != oConst {
		return o, nil
	}
	dst := c.newReg(vector.Bool)
	v := o.cval.(bool)
	c.emit(func(p *Prog, b *vector.Batch) {
		res := regSlice[bool](p, dst, vector.Bool, b.N)
		for i := range res {
			res[i] = v
		}
	})
	return operand{kind: oReg, idx: dst, typ: vector.Bool}, nil
}

func (c *compiler) compileCmpBool(x *Cmp) (operand, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return operand{}, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return operand{}, err
	}
	if l.kind == oConst && r.kind == oConst {
		return operand{}, fmt.Errorf("expr: constant comparison %s not supported; fold it", x)
	}
	// Normalize const to the right side by flipping the operator.
	op := x.Op
	if l.kind == oConst {
		l, r = r, l
		op = flipCmp(op)
	}
	t := l.typ
	switch t.Physical() {
	case vector.Int32:
		return cmpBoolT[int32](c, op, t, l, r)
	case vector.Int64:
		return cmpBoolT[int64](c, op, t, l, r)
	case vector.Float64:
		return cmpBoolT[float64](c, op, t, l, r)
	case vector.String:
		return cmpBoolT[string](c, op, t, l, r)
	case vector.UInt8:
		return cmpBoolT[uint8](c, op, t, l, r)
	case vector.UInt16:
		return cmpBoolT[uint16](c, op, t, l, r)
	case vector.Bool:
		return c.cmpBoolBool(op, l, r)
	default:
		return operand{}, fmt.Errorf("expr: comparison on %v unsupported", t)
	}
}

func flipCmp(op CmpKind) CmpKind {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

func cmpBoolT[T primitives.Ordered](c *compiler, op CmpKind, t vector.Type, l, r operand) (operand, error) {
	dst := c.newReg(vector.Bool)
	name := fmt.Sprintf("map_%s_%s_%s_%s", cmpName(op), typeAbbrev(t), shape(l), shape(r))
	c.emit(func(p *Prog, b *vector.Batch) {
		res := regSlice[bool](p, dst, vector.Bool, b.N)
		a := fetch[T](p, b, l)
		t0 := p.tracer.Now()
		if r.kind == oConst {
			v := constVal[T](r)
			switch op {
			case LT:
				primitives.MapLTColValBool(res, a, v, b.Sel)
			case LE:
				primitives.MapLEColValBool(res, a, v, b.Sel)
			case GT:
				primitives.MapGTColValBool(res, a, v, b.Sel)
			case GE:
				primitives.MapGEColValBool(res, a, v, b.Sel)
			case EQ:
				primitives.MapEQColValBool(res, a, v, b.Sel)
			case NE:
				primitives.MapNEColValBool(res, a, v, b.Sel)
			}
		} else {
			bb := fetch[T](p, b, r)
			switch op {
			case LT:
				primitives.MapLTColColBool(res, a, bb, b.Sel)
			case LE:
				primitives.MapLEColColBool(res, a, bb, b.Sel)
			case GT:
				primitives.MapGTColColBool(res, a, bb, b.Sel)
			case GE:
				primitives.MapGEColColBool(res, a, bb, b.Sel)
			case EQ:
				primitives.MapEQColColBool(res, a, bb, b.Sel)
			case NE:
				primitives.MapNEColColBool(res, a, bb, b.Sel)
			}
		}
		p.tracer.RecordPrimitiveSince(name, t0, b.Rows(), (2*t.Width()+1)*b.Rows())
	})
	return operand{kind: oReg, idx: dst, typ: vector.Bool}, nil
}

func (c *compiler) cmpBoolBool(op CmpKind, l, r operand) (operand, error) {
	if op != EQ && op != NE {
		return operand{}, fmt.Errorf("expr: bool comparison only supports =/!=")
	}
	dst := c.newReg(vector.Bool)
	c.emit(func(p *Prog, b *vector.Batch) {
		res := regSlice[bool](p, dst, vector.Bool, b.N)
		a := fetch[bool](p, b, l)
		if r.kind == oConst {
			v := constVal[bool](r)
			if op == EQ {
				primitives.MapEQColValBool(res, a, v, b.Sel)
			} else {
				primitives.MapNEColValBool(res, a, v, b.Sel)
			}
			return
		}
		bb := fetch[bool](p, b, r)
		if op == EQ {
			primitives.MapEQColColBool(res, a, bb, b.Sel)
		} else {
			primitives.MapNEColColBool(res, a, bb, b.Sel)
		}
	})
	return operand{kind: oReg, idx: dst, typ: vector.Bool}, nil
}

func (c *compiler) compileLike(x *Like) (operand, error) {
	a, err := c.compile(x.Arg)
	if err != nil {
		return operand{}, err
	}
	dst := c.newReg(vector.Bool)
	m := primitives.CompileLike(x.Pattern)
	neg := x.Negate
	c.emit(func(p *Prog, b *vector.Batch) {
		res := regSlice[bool](p, dst, vector.Bool, b.N)
		in := fetch[string](p, b, a)
		t0 := p.tracer.Now()
		if b.Sel != nil {
			for _, i := range b.Sel {
				res[i] = m.Match(in[i]) != neg
			}
		} else {
			for i := range res {
				res[i] = m.Match(in[i]) != neg
			}
		}
		p.tracer.RecordPrimitiveSince("map_like_str_col", t0, b.Rows(), 24*b.Rows())
	})
	return operand{kind: oReg, idx: dst, typ: vector.Bool}, nil
}

func (c *compiler) compileIn(x *In) (operand, error) {
	a, err := c.compile(x.Arg)
	if err != nil {
		return operand{}, err
	}
	dst := c.newReg(vector.Bool)
	t := a.typ
	switch t.Physical() {
	case vector.String:
		set := make(map[string]struct{}, len(x.List))
		for _, cst := range x.List {
			set[cst.Val.(string)] = struct{}{}
		}
		c.emit(inStep[string](dst, a, set))
	case vector.Int32:
		set := make(map[int32]struct{}, len(x.List))
		for _, cst := range x.List {
			set[cst.Val.(int32)] = struct{}{}
		}
		c.emit(inStep[int32](dst, a, set))
	case vector.Int64:
		set := make(map[int64]struct{}, len(x.List))
		for _, cst := range x.List {
			set[cst.Val.(int64)] = struct{}{}
		}
		c.emit(inStep[int64](dst, a, set))
	default:
		return operand{}, fmt.Errorf("expr: in-list on %v unsupported", t)
	}
	return operand{kind: oReg, idx: dst, typ: vector.Bool}, nil
}

func inStep[T comparable](dst int, a operand, set map[T]struct{}) stepFn {
	return func(p *Prog, b *vector.Batch) {
		res := regSlice[bool](p, dst, vector.Bool, b.N)
		in := fetch[T](p, b, a)
		t0 := p.tracer.Now()
		if b.Sel != nil {
			for _, i := range b.Sel {
				_, res[i] = set[in[i]]
			}
		} else {
			for i := range res {
				_, res[i] = set[in[i]]
			}
		}
		p.tracer.RecordPrimitiveSince("map_in_col", t0, b.Rows(), 16*b.Rows())
	}
}

func (c *compiler) compileCase(x *Case) (operand, error) {
	cond, err := c.compileBoolOperand(x.Cond)
	if err != nil {
		return operand{}, err
	}
	thenO, err := c.materialize(x.Then)
	if err != nil {
		return operand{}, err
	}
	elseO, err := c.materialize(x.Else)
	if err != nil {
		return operand{}, err
	}
	t := thenO.typ
	dst := c.newReg(t)
	switch t.Physical() {
	case vector.Float64:
		c.emit(caseStep[float64](dst, t, cond, thenO, elseO))
	case vector.Int64:
		c.emit(caseStep[int64](dst, t, cond, thenO, elseO))
	case vector.Int32:
		c.emit(caseStep[int32](dst, t, cond, thenO, elseO))
	case vector.String:
		c.emit(caseStep[string](dst, t, cond, thenO, elseO))
	default:
		return operand{}, fmt.Errorf("expr: case of %v unsupported", t)
	}
	return operand{kind: oReg, idx: dst, typ: t}, nil
}

// materialize compiles e and, if constant, copies it into a register so
// MapSelectColBool can fetch it.
func (c *compiler) materialize(e Expr) (operand, error) {
	o, err := c.compile(e)
	if err != nil {
		return operand{}, err
	}
	if o.kind != oConst {
		return o, nil
	}
	dst := c.newReg(o.typ)
	val := o.cval
	t := o.typ
	c.emit(func(p *Prog, b *vector.Batch) {
		r := p.ensureReg(dst, t, b.N)
		fillConst(r, val, b)
	})
	return operand{kind: oReg, idx: dst, typ: o.typ}, nil
}

func caseStep[T any](dst int, t vector.Type, cond, thenO, elseO operand) stepFn {
	return func(p *Prog, b *vector.Batch) {
		res := regSlice[T](p, dst, t, b.N)
		t0 := p.tracer.Now()
		primitives.MapSelectColBool(res, fetch[bool](p, b, cond), fetch[T](p, b, thenO), fetch[T](p, b, elseO), b.Sel)
		p.tracer.RecordPrimitiveSince("map_case_bool_col", t0, b.Rows(), (3*t.Width()+1)*b.Rows())
	}
}

// --- naming helpers (paper-style primitive names) ---

func typeAbbrev(t vector.Type) string {
	switch t.Physical() {
	case vector.Float64:
		return "flt"
	case vector.Int64:
		return "lng"
	case vector.Int32:
		return "sint"
	case vector.UInt8:
		return "uchr"
	case vector.UInt16:
		return "usht"
	case vector.String:
		return "str"
	case vector.Bool:
		return "bit"
	default:
		return t.String()
	}
}

func opName(op BinKind) string {
	switch op {
	case Add:
		return "add"
	case Sub:
		return "sub"
	case Mul:
		return "mul"
	default:
		return "div"
	}
}

func cmpName(op CmpKind) string {
	switch op {
	case LT:
		return "lt"
	case LE:
		return "le"
	case GT:
		return "gt"
	case GE:
		return "ge"
	case EQ:
		return "eq"
	default:
		return "ne"
	}
}

func shape(o operand) string {
	if o.kind == oConst {
		return "val"
	}
	return "col"
}
