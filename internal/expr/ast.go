// Package expr defines the expression language shared by all three query
// engines, and its compiler into X100 vectorized-primitive programs.
//
// The same AST is evaluated three ways, mirroring the paper's comparison:
//
//   - internal/core compiles it into a sequence of vectorized primitive
//     calls over vector registers (X100, Section 4.2), optionally fusing
//     sub-trees into compound primitives;
//   - internal/volcano interprets it tuple-at-a-time through an interface
//     tree (the MySQL Item_func_plus::val architecture of Table 2);
//   - internal/mil evaluates it column-at-a-time with full materialization
//     of every intermediate result (MonetDB/MIL multiplexed operators,
//     Table 3).
package expr

import (
	"fmt"
	"strings"

	"x100/internal/vector"
)

// Expr is a typed scalar expression over the columns of a schema.
type Expr interface {
	// Type computes the result type against a schema, validating operand
	// types as it goes.
	Type(s vector.Schema) (vector.Type, error)
	// String renders the expression in X100-algebra syntax.
	String() string
}

// Col references a column by name.
type Col struct{ Name string }

// C is shorthand for a column reference.
func C(name string) *Col { return &Col{Name: name} }

// Type implements Expr.
func (c *Col) Type(s vector.Schema) (vector.Type, error) {
	f, ok := s.Field(c.Name)
	if !ok {
		return vector.Unknown, fmt.Errorf("expr: unknown column %q in schema %v", c.Name, s)
	}
	return f.Type, nil
}

func (c *Col) String() string { return c.Name }

// Const is a literal value of a fixed type.
type Const struct {
	Typ vector.Type
	Val any
}

// Float returns a float64 literal, Int an int64 literal, Str a string
// literal, DateConst a date literal from day number, and BoolConst a bool.
func Float(v float64) *Const    { return &Const{Typ: vector.Float64, Val: v} }
func Int(v int64) *Const        { return &Const{Typ: vector.Int64, Val: v} }
func Int32Const(v int32) *Const { return &Const{Typ: vector.Int32, Val: v} }
func Str(v string) *Const       { return &Const{Typ: vector.String, Val: v} }
func DateConst(days int32) *Const {
	return &Const{Typ: vector.Date, Val: days}
}
func BoolConst(v bool) *Const { return &Const{Typ: vector.Bool, Val: v} }

// Type implements Expr.
func (c *Const) Type(vector.Schema) (vector.Type, error) { return c.Typ, nil }

func (c *Const) String() string {
	switch v := c.Val.(type) {
	case string:
		return fmt.Sprintf("%q", v)
	default:
		return fmt.Sprintf("%v(%v)", c.Typ, c.Val)
	}
}

// BinKind enumerates arithmetic operators.
type BinKind uint8

// Arithmetic operators.
const (
	Add BinKind = iota
	Sub
	Mul
	Div
)

func (k BinKind) String() string {
	switch k {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "?"
	}
}

// Bin is an arithmetic expression; both operands must share a numeric type.
type Bin struct {
	Op   BinKind
	L, R Expr
}

// Arithmetic constructors.
func AddE(l, r Expr) *Bin { return &Bin{Op: Add, L: l, R: r} }
func SubE(l, r Expr) *Bin { return &Bin{Op: Sub, L: l, R: r} }
func MulE(l, r Expr) *Bin { return &Bin{Op: Mul, L: l, R: r} }
func DivE(l, r Expr) *Bin { return &Bin{Op: Div, L: l, R: r} }

// Type implements Expr.
func (b *Bin) Type(s vector.Schema) (vector.Type, error) {
	lt, err := b.L.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	rt, err := b.R.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	if lt.Physical() != rt.Physical() || !lt.IsNumeric() {
		return vector.Unknown, fmt.Errorf("expr: %v %v %v: operand types must be equal numeric types", lt, b.Op, rt)
	}
	return lt, nil
}

func (b *Bin) String() string {
	return fmt.Sprintf("%s(%s, %s)", b.Op, b.L, b.R)
}

// CmpKind enumerates comparison operators.
type CmpKind uint8

// Comparison operators.
const (
	LT CmpKind = iota
	LE
	GT
	GE
	EQ
	NE
)

func (k CmpKind) String() string {
	switch k {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	default:
		return "?"
	}
}

// Cmp compares two expressions of the same type and yields a bool.
type Cmp struct {
	Op   CmpKind
	L, R Expr
}

// Comparison constructors.
func LTE(l, r Expr) *Cmp { return &Cmp{Op: LT, L: l, R: r} }
func LEE(l, r Expr) *Cmp { return &Cmp{Op: LE, L: l, R: r} }
func GTE(l, r Expr) *Cmp { return &Cmp{Op: GT, L: l, R: r} }
func GEE(l, r Expr) *Cmp { return &Cmp{Op: GE, L: l, R: r} }
func EQE(l, r Expr) *Cmp { return &Cmp{Op: EQ, L: l, R: r} }
func NEE(l, r Expr) *Cmp { return &Cmp{Op: NE, L: l, R: r} }

// Type implements Expr.
func (c *Cmp) Type(s vector.Schema) (vector.Type, error) {
	lt, err := c.L.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	rt, err := c.R.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	if lt.Physical() != rt.Physical() {
		return vector.Unknown, fmt.Errorf("expr: %v %v %v: comparison operands must share a type", lt, c.Op, rt)
	}
	if (c.Op != EQ && c.Op != NE) && lt == vector.Bool {
		return vector.Unknown, fmt.Errorf("expr: bool operands only support =/!=")
	}
	return vector.Bool, nil
}

func (c *Cmp) String() string {
	return fmt.Sprintf("%s(%s, %s)", c.Op, c.L, c.R)
}

// And is an n-ary conjunction.
type And struct{ Args []Expr }

// AndE builds a conjunction.
func AndE(args ...Expr) *And { return &And{Args: args} }

// Type implements Expr.
func (a *And) Type(s vector.Schema) (vector.Type, error) { return boolArgs(s, "and", a.Args) }

func (a *And) String() string { return nary("and", a.Args) }

// Or is an n-ary disjunction.
type Or struct{ Args []Expr }

// OrE builds a disjunction.
func OrE(args ...Expr) *Or { return &Or{Args: args} }

// Type implements Expr.
func (o *Or) Type(s vector.Schema) (vector.Type, error) { return boolArgs(s, "or", o.Args) }

func (o *Or) String() string { return nary("or", o.Args) }

// Not negates a boolean expression.
type Not struct{ Arg Expr }

// NotE builds a negation.
func NotE(a Expr) *Not { return &Not{Arg: a} }

// Type implements Expr.
func (n *Not) Type(s vector.Schema) (vector.Type, error) {
	return boolArgs(s, "not", []Expr{n.Arg})
}

func (n *Not) String() string { return fmt.Sprintf("not(%s)", n.Arg) }

func boolArgs(s vector.Schema, op string, args []Expr) (vector.Type, error) {
	for _, a := range args {
		t, err := a.Type(s)
		if err != nil {
			return vector.Unknown, err
		}
		if t != vector.Bool {
			return vector.Unknown, fmt.Errorf("expr: %s argument %s is %v, want bool", op, a, t)
		}
	}
	return vector.Bool, nil
}

func nary(op string, args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return op + "(" + strings.Join(parts, ", ") + ")"
}

// Cast converts a numeric expression to another numeric type (the paper's
// dbl() in the Query 1 plan).
type Cast struct {
	To  vector.Type
	Arg Expr
}

// CastE builds a cast.
func CastE(to vector.Type, a Expr) *Cast { return &Cast{To: to, Arg: a} }

// Type implements Expr.
func (c *Cast) Type(s vector.Schema) (vector.Type, error) {
	t, err := c.Arg.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	if !t.IsNumeric() || !c.To.IsNumeric() {
		return vector.Unknown, fmt.Errorf("expr: cannot cast %v to %v", t, c.To)
	}
	return c.To, nil
}

func (c *Cast) String() string { return fmt.Sprintf("%s(%s)", castName(c.To), c.Arg) }

func castName(t vector.Type) string {
	switch t {
	case vector.Float64:
		return "dbl"
	case vector.Int64:
		return "lng"
	case vector.Int32:
		return "int"
	default:
		return "cast_" + t.String()
	}
}

// Like matches a string expression against a SQL LIKE pattern.
type Like struct {
	Arg     Expr
	Pattern string
	Negate  bool
}

// LikeE and NotLikeE build LIKE predicates.
func LikeE(a Expr, pattern string) *Like    { return &Like{Arg: a, Pattern: pattern} }
func NotLikeE(a Expr, pattern string) *Like { return &Like{Arg: a, Pattern: pattern, Negate: true} }

// Type implements Expr.
func (l *Like) Type(s vector.Schema) (vector.Type, error) {
	t, err := l.Arg.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	if t != vector.String {
		return vector.Unknown, fmt.Errorf("expr: like on %v, want string", t)
	}
	return vector.Bool, nil
}

func (l *Like) String() string {
	op := "like"
	if l.Negate {
		op = "notlike"
	}
	return fmt.Sprintf("%s(%s, %q)", op, l.Arg, l.Pattern)
}

// In tests membership of an expression in a literal list.
type In struct {
	Arg  Expr
	List []*Const
}

// InE builds an IN-list predicate.
func InE(a Expr, list ...*Const) *In { return &In{Arg: a, List: list} }

// Type implements Expr.
func (in *In) Type(s vector.Schema) (vector.Type, error) {
	t, err := in.Arg.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	for _, c := range in.List {
		if c.Typ.Physical() != t.Physical() {
			return vector.Unknown, fmt.Errorf("expr: in-list element %v does not match %v", c.Typ, t)
		}
	}
	return vector.Bool, nil
}

func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, c := range in.List {
		parts[i] = c.String()
	}
	return fmt.Sprintf("in(%s, [%s])", in.Arg, strings.Join(parts, ", "))
}

// Case is CASE WHEN cond THEN t ELSE e END; t and e must share a type.
type Case struct {
	Cond, Then, Else Expr
}

// CaseE builds a CASE expression.
func CaseE(cond, then, els Expr) *Case { return &Case{Cond: cond, Then: then, Else: els} }

// Type implements Expr.
func (c *Case) Type(s vector.Schema) (vector.Type, error) {
	ct, err := c.Cond.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	if ct != vector.Bool {
		return vector.Unknown, fmt.Errorf("expr: case condition is %v, want bool", ct)
	}
	tt, err := c.Then.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	et, err := c.Else.Type(s)
	if err != nil {
		return vector.Unknown, err
	}
	if tt.Physical() != et.Physical() {
		return vector.Unknown, fmt.Errorf("expr: case branches disagree: %v vs %v", tt, et)
	}
	return tt, nil
}

func (c *Case) String() string {
	return fmt.Sprintf("case(%s, %s, %s)", c.Cond, c.Then, c.Else)
}

// FuncKind enumerates scalar functions.
type FuncKind uint8

// Scalar functions.
const (
	FuncYear   FuncKind = iota // year(date) -> int32
	FuncSubstr                 // substr(str, start, len) -> string
	FuncSquare                 // square(x) -> x*x
	FuncConcat                 // concat(a, b) -> string
)

// Func applies a scalar function.
type Func struct {
	Kind FuncKind
	Args []Expr
	// Start/Length parameterize FuncSubstr.
	Start, Length int
}

// YearE extracts the year of a date expression.
func YearE(a Expr) *Func { return &Func{Kind: FuncYear, Args: []Expr{a}} }

// SubstrE takes the 1-based substring of a string expression.
func SubstrE(a Expr, start, length int) *Func {
	return &Func{Kind: FuncSubstr, Args: []Expr{a}, Start: start, Length: length}
}

// SquareE squares a numeric expression.
func SquareE(a Expr) *Func { return &Func{Kind: FuncSquare, Args: []Expr{a}} }

// ConcatE concatenates two string expressions.
func ConcatE(a, b Expr) *Func { return &Func{Kind: FuncConcat, Args: []Expr{a, b}} }

// Type implements Expr.
func (f *Func) Type(s vector.Schema) (vector.Type, error) {
	switch f.Kind {
	case FuncYear:
		t, err := f.Args[0].Type(s)
		if err != nil {
			return vector.Unknown, err
		}
		if t != vector.Date && t != vector.Int32 {
			return vector.Unknown, fmt.Errorf("expr: year on %v, want date", t)
		}
		return vector.Int32, nil
	case FuncSubstr:
		t, err := f.Args[0].Type(s)
		if err != nil {
			return vector.Unknown, err
		}
		if t != vector.String {
			return vector.Unknown, fmt.Errorf("expr: substr on %v, want string", t)
		}
		return vector.String, nil
	case FuncSquare:
		t, err := f.Args[0].Type(s)
		if err != nil {
			return vector.Unknown, err
		}
		if !t.IsNumeric() {
			return vector.Unknown, fmt.Errorf("expr: square on %v", t)
		}
		return t, nil
	case FuncConcat:
		for _, a := range f.Args {
			t, err := a.Type(s)
			if err != nil {
				return vector.Unknown, err
			}
			if t != vector.String {
				return vector.Unknown, fmt.Errorf("expr: concat on %v, want string", t)
			}
		}
		return vector.String, nil
	default:
		return vector.Unknown, fmt.Errorf("expr: unknown function kind %d", f.Kind)
	}
}

func (f *Func) String() string {
	switch f.Kind {
	case FuncYear:
		return fmt.Sprintf("year(%s)", f.Args[0])
	case FuncSubstr:
		return fmt.Sprintf("substr(%s, %d, %d)", f.Args[0], f.Start, f.Length)
	case FuncSquare:
		return fmt.Sprintf("square(%s)", f.Args[0])
	case FuncConcat:
		return fmt.Sprintf("concat(%s, %s)", f.Args[0], f.Args[1])
	default:
		return "func(?)"
	}
}

// Columns appends the column names referenced by e to dst (with
// duplicates); plan builders use it to prune scans.
func Columns(e Expr, dst []string) []string {
	switch x := e.(type) {
	case *Col:
		return append(dst, x.Name)
	case *Const:
		return dst
	case *Bin:
		return Columns(x.R, Columns(x.L, dst))
	case *Cmp:
		return Columns(x.R, Columns(x.L, dst))
	case *And:
		for _, a := range x.Args {
			dst = Columns(a, dst)
		}
		return dst
	case *Or:
		for _, a := range x.Args {
			dst = Columns(a, dst)
		}
		return dst
	case *Not:
		return Columns(x.Arg, dst)
	case *Cast:
		return Columns(x.Arg, dst)
	case *Like:
		return Columns(x.Arg, dst)
	case *In:
		return Columns(x.Arg, dst)
	case *Case:
		return Columns(x.Else, Columns(x.Then, Columns(x.Cond, dst)))
	case *Func:
		for _, a := range x.Args {
			dst = Columns(a, dst)
		}
		return dst
	default:
		return dst
	}
}
