package expr

import (
	"fmt"

	"x100/internal/dateutil"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// Scalar is a bound scalar evaluator: it computes the expression for one
// row of boxed values. It is the reference implementation the vectorized
// compiler is differentially tested against, and the building block of the
// column-at-a-time MIL evaluator's per-value path.
type Scalar func(row []any) any

// Bind resolves column references against a schema and returns a scalar
// evaluator closure tree (one dynamic call per node per row — deliberately
// the "interpreted" architecture of Section 3.1).
func Bind(e Expr, schema vector.Schema) (Scalar, vector.Type, error) {
	t, err := e.Type(schema)
	if err != nil {
		return nil, vector.Unknown, err
	}
	s, err := bind(e, schema)
	if err != nil {
		return nil, vector.Unknown, err
	}
	return s, t, nil
}

func bind(e Expr, schema vector.Schema) (Scalar, error) {
	switch x := e.(type) {
	case *Col:
		i := schema.ColIndex(x.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q", x.Name)
		}
		return func(row []any) any { return row[i] }, nil
	case *Const:
		v := x.Val
		return func([]any) any { return v }, nil
	case *Bin:
		t, err := x.Type(schema)
		if err != nil {
			return nil, err
		}
		l, err := bind(x.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, schema)
		if err != nil {
			return nil, err
		}
		op := x.Op
		switch t.Physical() {
		case vector.Float64:
			return func(row []any) any { return foldNum(op, l(row).(float64), r(row).(float64)) }, nil
		case vector.Int64:
			return func(row []any) any { return foldNum(op, l(row).(int64), r(row).(int64)) }, nil
		case vector.Int32:
			return func(row []any) any { return foldNum(op, l(row).(int32), r(row).(int32)) }, nil
		}
		return nil, fmt.Errorf("expr: arithmetic on %v", t)
	case *Cmp:
		lt, err := x.L.Type(schema)
		if err != nil {
			return nil, err
		}
		l, err := bind(x.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, schema)
		if err != nil {
			return nil, err
		}
		op := x.Op
		switch lt.Physical() {
		case vector.Float64:
			return func(row []any) any { return cmpOrd(op, l(row).(float64), r(row).(float64)) }, nil
		case vector.Int64:
			return func(row []any) any { return cmpOrd(op, l(row).(int64), r(row).(int64)) }, nil
		case vector.Int32:
			return func(row []any) any { return cmpOrd(op, l(row).(int32), r(row).(int32)) }, nil
		case vector.String:
			return func(row []any) any { return cmpOrd(op, l(row).(string), r(row).(string)) }, nil
		case vector.UInt8:
			return func(row []any) any { return cmpOrd(op, l(row).(uint8), r(row).(uint8)) }, nil
		case vector.UInt16:
			return func(row []any) any { return cmpOrd(op, l(row).(uint16), r(row).(uint16)) }, nil
		case vector.Bool:
			if op == EQ {
				return func(row []any) any { return l(row).(bool) == r(row).(bool) }, nil
			}
			return func(row []any) any { return l(row).(bool) != r(row).(bool) }, nil
		}
		return nil, fmt.Errorf("expr: comparison on %v", lt)
	case *And:
		args, err := bindAll(x.Args, schema)
		if err != nil {
			return nil, err
		}
		return func(row []any) any {
			for _, a := range args {
				if !a(row).(bool) {
					return false
				}
			}
			return true
		}, nil
	case *Or:
		args, err := bindAll(x.Args, schema)
		if err != nil {
			return nil, err
		}
		return func(row []any) any {
			for _, a := range args {
				if a(row).(bool) {
					return true
				}
			}
			return false
		}, nil
	case *Not:
		a, err := bind(x.Arg, schema)
		if err != nil {
			return nil, err
		}
		return func(row []any) any { return !a(row).(bool) }, nil
	case *Cast:
		a, err := bind(x.Arg, schema)
		if err != nil {
			return nil, err
		}
		to := x.To
		return func(row []any) any { return convertConst(a(row), to) }, nil
	case *Like:
		a, err := bind(x.Arg, schema)
		if err != nil {
			return nil, err
		}
		m := primitives.CompileLike(x.Pattern)
		neg := x.Negate
		return func(row []any) any { return m.Match(a(row).(string)) != neg }, nil
	case *In:
		a, err := bind(x.Arg, schema)
		if err != nil {
			return nil, err
		}
		set := make(map[any]struct{}, len(x.List))
		for _, c := range x.List {
			set[c.Val] = struct{}{}
		}
		return func(row []any) any {
			_, ok := set[a(row)]
			return ok
		}, nil
	case *Case:
		cond, err := bind(x.Cond, schema)
		if err != nil {
			return nil, err
		}
		th, err := bind(x.Then, schema)
		if err != nil {
			return nil, err
		}
		el, err := bind(x.Else, schema)
		if err != nil {
			return nil, err
		}
		return func(row []any) any {
			if cond(row).(bool) {
				return th(row)
			}
			return el(row)
		}, nil
	case *Func:
		switch x.Kind {
		case FuncYear:
			a, err := bind(x.Args[0], schema)
			if err != nil {
				return nil, err
			}
			return func(row []any) any { return dateutil.Year(a(row).(int32)) }, nil
		case FuncSquare:
			t, err := x.Args[0].Type(schema)
			if err != nil {
				return nil, err
			}
			a, err := bind(x.Args[0], schema)
			if err != nil {
				return nil, err
			}
			switch t.Physical() {
			case vector.Float64:
				return func(row []any) any { v := a(row).(float64); return v * v }, nil
			case vector.Int64:
				return func(row []any) any { v := a(row).(int64); return v * v }, nil
			case vector.Int32:
				return func(row []any) any { v := a(row).(int32); return v * v }, nil
			}
			return nil, fmt.Errorf("expr: square on %v", t)
		case FuncSubstr:
			a, err := bind(x.Args[0], schema)
			if err != nil {
				return nil, err
			}
			start, length := x.Start, x.Length
			return func(row []any) any { return substrEval(a(row).(string), start, length) }, nil
		case FuncConcat:
			a, err := bind(x.Args[0], schema)
			if err != nil {
				return nil, err
			}
			b, err := bind(x.Args[1], schema)
			if err != nil {
				return nil, err
			}
			return func(row []any) any { return a(row).(string) + b(row).(string) }, nil
		}
		return nil, fmt.Errorf("expr: unknown function kind %d", x.Kind)
	default:
		return nil, fmt.Errorf("expr: cannot bind %T", e)
	}
}

func bindAll(es []Expr, schema vector.Schema) ([]Scalar, error) {
	out := make([]Scalar, len(es))
	for i, e := range es {
		s, err := bind(e, schema)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func cmpOrd[T primitives.Ordered](op CmpKind, a, b T) bool {
	switch op {
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	case EQ:
		return a == b
	default:
		return a != b
	}
}

func substrEval(s string, start, length int) string {
	lo := start - 1
	if lo < 0 {
		lo = 0
	}
	if lo > len(s) {
		lo = len(s)
	}
	hi := lo + length
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
