package colstore

import (
	"errors"
	"sync"
	"testing"

	"x100/internal/vector"
)

// errFragment fails Materialize, for error-path coverage.
type errFragment struct{ rows int }

func (f errFragment) Rows() int { return f.rows }
func (f errFragment) Materialize(any) (any, bool, error) {
	return nil, false, errors.New("boom")
}

func TestMultiFragmentColumn(t *testing.T) {
	c := NewFragColumn("x", vector.Int64, nil, vector.Int64, []Fragment{
		MemFragment([]int64{1, 2, 3}),
		MemFragment([]int64{4, 5}),
		MemFragment([]int64{6, 7, 8, 9}),
	})
	if c.Len() != 9 || c.NumFrags() != 3 {
		t.Fatalf("len=%d frags=%d", c.Len(), c.NumFrags())
	}
	for _, tc := range []struct{ row, lo, hi int }{
		{0, 0, 3}, {2, 0, 3}, {3, 3, 5}, {4, 3, 5}, {5, 5, 9}, {8, 5, 9},
	} {
		if lo, hi := c.FragSpan(tc.row); lo != tc.lo || hi != tc.hi {
			t.Fatalf("FragSpan(%d) = [%d,%d), want [%d,%d)", tc.row, lo, hi, tc.lo, tc.hi)
		}
	}
	r := c.Reader()
	if v, err := r.Vector(3, 5); err != nil || v.Int64s()[0] != 4 || v.Int64s()[1] != 5 {
		t.Fatalf("Vector(3,5): %v %v", v, err)
	}
	if v, err := r.Vector(6, 9); err != nil || v.Int64s()[2] != 9 {
		t.Fatalf("Vector(6,9): %v %v", v, err)
	}
	if _, err := r.Vector(2, 4); err == nil {
		t.Fatal("cross-fragment read must fail")
	}
	// Pin concatenates all fragments.
	data := c.Data().([]int64)
	for i, want := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		if data[i] != want {
			t.Fatalf("pinned[%d] = %d, want %d", i, data[i], want)
		}
	}
	if c.VectorAt(4, 7).Int64s()[0] != 5 {
		t.Fatal("VectorAt over pinned data wrong")
	}
}

func TestAppendFragment(t *testing.T) {
	tab := NewTable("t")
	if err := tab.AddColumn("a", vector.Int32, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("s", vector.String, []string{"x", "y", "z"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendFragment([]any{[]int32{4, 5}, []string{"u", "v"}}); err != nil {
		t.Fatal(err)
	}
	if tab.N != 5 || tab.Col("a").Len() != 5 {
		t.Fatalf("table has %d rows", tab.N)
	}
	if got := tab.Col("a").Data().([]int32); got[3] != 4 || got[4] != 5 {
		t.Fatalf("appended values wrong: %v", got)
	}
	if got := tab.Col("s").DecodedValue(4); got != "v" {
		t.Fatalf("appended string wrong: %v", got)
	}
	// Mismatched lengths are rejected.
	if err := tab.AppendFragment([]any{[]int32{9}, []string{"a", "b"}}); err == nil {
		t.Fatal("ragged append must fail")
	}
}

func TestFragmentErrorPropagates(t *testing.T) {
	c := NewFragColumn("x", vector.Int64, nil, vector.Int64, []Fragment{
		MemFragment([]int64{1}),
		errFragment{rows: 2},
	})
	r := c.Reader()
	if _, err := r.Vector(0, 1); err != nil {
		t.Fatalf("mem fragment read failed: %v", err)
	}
	if _, err := r.Vector(1, 3); err == nil {
		t.Fatal("expected materialize error")
	}
	if _, err := c.Pin(); err == nil {
		t.Fatal("expected pin error")
	}
}

// TestConcurrentPin: lazy pinning must be safe when several goroutines
// construct plans against the same unpinned column (run under -race).
func TestConcurrentPin(t *testing.T) {
	c := NewFragColumn("x", vector.Int64, nil, vector.Int64, []Fragment{
		MemFragment([]int64{1, 2, 3}),
		MemFragment([]int64{4, 5, 6}),
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d, err := c.Pin()
				if err != nil || len(d.([]int64)) != 6 {
					t.Errorf("pin: %v %v", d, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReaderBufferNotAliased guards the scratch/owned distinction: after
// reading a memory fragment, a later decode must not overwrite the memory
// fragment's backing array.
func TestReaderBufferNotAliased(t *testing.T) {
	base := []int64{10, 11, 12}
	c := NewFragColumn("x", vector.Int64, nil, vector.Int64, []Fragment{
		MemFragment(base),
		MemFragment([]int64{20, 21, 22}),
	})
	r := c.Reader()
	v1, _ := r.Vector(0, 3)
	_ = v1
	if _, err := r.Vector(3, 6); err != nil {
		t.Fatal(err)
	}
	if base[0] != 10 || base[1] != 11 || base[2] != 12 {
		t.Fatalf("memory fragment clobbered: %v", base)
	}
}
