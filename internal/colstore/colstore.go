// Package colstore implements the vertically fragmented storage layer the
// X100 engine runs on: MonetDB-style BAT[void,T] columns.
//
// Each table is a set of equally long typed columns; the head (oid) column
// is "void" — a densely ascending row id starting at 0 that is never stored
// (paper Section 3.3). Every table therefore has a virtual #rowId column,
// which the Fetch1Join/FetchNJoin operators use for positional fetches.
//
// String columns may be stored as enumeration types (Section 4.3): a
// single-byte or two-byte integer code per row referring to the #rowId of a
// mapping table (the dictionary). The scan layer exposes the codes, and the
// plan builder inserts a Fetch1Join against the dictionary to rehydrate the
// original values — exactly as MonetDB/X100 "automatically adds a Fetch1Join
// operation" for enum columns.
package colstore

import (
	"fmt"

	"x100/internal/vector"
)

// Column is one vertical fragment: all values of one attribute.
// The base fragment is treated as immutable; updates are handled by the
// delta package layered on top.
type Column struct {
	Name string
	// Typ is the logical type visible to queries (String for enum columns).
	Typ vector.Type
	// data holds the physical values: a typed slice of length Table.NumRows.
	// For enum columns this is []uint8 or []uint16 codes.
	data any
	// Dict is non-nil for enumeration-typed columns.
	Dict *Dict
}

// Dict is the mapping table of an enumeration column: code -> value. The
// paper enum-compresses any small-domain column — Table 5 shows the float
// columns l_discount, l_tax and l_quantity stored as single-byte enums — so
// dictionaries hold either strings or float64 values.
type Dict struct {
	Typ    vector.Type // String or Float64
	Values []string
	F64s   []float64
	sindex map[string]int
	findex map[float64]int
}

// NewDict creates an empty string dictionary.
func NewDict() *Dict {
	return &Dict{Typ: vector.String, sindex: make(map[string]int)}
}

// NewF64Dict creates an empty float dictionary.
func NewF64Dict() *Dict {
	return &Dict{Typ: vector.Float64, findex: make(map[float64]int)}
}

// Code returns the code for s, inserting it if new.
func (d *Dict) Code(s string) int {
	if c, ok := d.sindex[s]; ok {
		return c
	}
	c := len(d.Values)
	d.Values = append(d.Values, s)
	d.sindex[s] = c
	return c
}

// CodeF64 returns the code for f, inserting it if new.
func (d *Dict) CodeF64(f float64) int {
	if c, ok := d.findex[f]; ok {
		return c
	}
	c := len(d.F64s)
	d.F64s = append(d.F64s, f)
	d.findex[f] = c
	return c
}

// Lookup returns the code for s without inserting.
func (d *Dict) Lookup(s string) (int, bool) {
	c, ok := d.sindex[s]
	return c, ok
}

// Len returns the number of distinct values.
func (d *Dict) Len() int {
	if d.Typ == vector.Float64 {
		return len(d.F64s)
	}
	return len(d.Values)
}

// PhysType returns the physical storage type of the column (the code type
// for enum columns).
func (c *Column) PhysType() vector.Type {
	if c.Dict != nil {
		if _, ok := c.data.([]uint8); ok {
			return vector.UInt8
		}
		return vector.UInt16
	}
	return c.Typ.Physical()
}

// IsEnum reports whether the column is enumeration-compressed.
func (c *Column) IsEnum() bool { return c.Dict != nil }

// Len returns the number of rows in the base fragment.
func (c *Column) Len() int {
	return vector.FromAny(c.PhysType(), c.data).Len()
}

// VectorAt returns a zero-copy view of rows [lo:hi) of the physical data.
// For enum columns the returned vector contains codes.
func (c *Column) VectorAt(lo, hi int) *vector.Vector {
	t := c.PhysType()
	if c.Dict == nil {
		t = c.Typ
	}
	return vector.FromAny(t, c.data).Slice(lo, hi)
}

// Data returns the raw physical slice (for baseline engines that operate
// column-at-a-time on whole columns).
func (c *Column) Data() any { return c.data }

// DecodedValue returns the logical value at row i, decoding enum codes
// (slow path for the tuple-at-a-time engine and tests).
func (c *Column) DecodedValue(i int) any {
	switch d := c.data.(type) {
	case []uint8:
		if c.Dict != nil {
			return c.Dict.decoded(int(d[i]))
		}
		return d[i]
	case []uint16:
		if c.Dict != nil {
			return c.Dict.decoded(int(d[i]))
		}
		return d[i]
	default:
		return vector.FromAny(c.Typ, c.data).Value(i)
	}
}

func (d *Dict) decoded(code int) any {
	if d.Typ == vector.Float64 {
		return d.F64s[code]
	}
	return d.Values[code]
}

// Bytes returns the physical storage footprint of the column, including the
// dictionary payload for enum columns (used to reproduce the storage-size
// comparison of Section 5).
func (c *Column) Bytes() int {
	b := vector.FromAny(c.PhysType(), c.data).Bytes()
	if c.Dict != nil {
		for _, v := range c.Dict.Values {
			b += len(v) + 16
		}
		b += 8 * len(c.Dict.F64s)
	}
	return b
}

// Table is a named collection of equally long columns.
type Table struct {
	Name string
	Cols []*Column
	N    int
}

// NewTable creates an empty table.
func NewTable(name string) *Table { return &Table{Name: name} }

// Schema returns the logical schema of the table.
func (t *Table) Schema() vector.Schema {
	s := make(vector.Schema, len(t.Cols))
	for i, c := range t.Cols {
		s[i] = vector.Field{Name: c.Name, Type: c.Typ}
	}
	return s
}

// Col returns the named column, or nil.
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// AddColumn attaches a fully built typed slice as a column. The slice
// length must match existing columns.
func (t *Table) AddColumn(name string, typ vector.Type, data any) error {
	n := vector.FromAny(typ.Physical(), data).Len()
	if len(t.Cols) > 0 && n != t.N {
		return fmt.Errorf("colstore: column %s has %d rows, table %s has %d", name, n, t.Name, t.N)
	}
	t.Cols = append(t.Cols, &Column{Name: name, Typ: typ, data: data})
	t.N = n
	return nil
}

// AddEnumColumn attaches a string column stored as enumeration codes. It
// chooses uint8 codes when the dictionary fits 256 values, else uint16; more
// than 65536 distinct values is an error (store such columns uncompressed).
func (t *Table) AddEnumColumn(name string, values []string) error {
	if len(t.Cols) > 0 && len(values) != t.N {
		return fmt.Errorf("colstore: column %s has %d rows, table %s has %d", name, len(values), t.Name, t.N)
	}
	dict := NewDict()
	codes := make([]int, len(values))
	for i, v := range values {
		codes[i] = dict.Code(v)
	}
	col := &Column{Name: name, Typ: vector.String, Dict: dict}
	if err := col.packCodes(codes, dict.Len()); err != nil {
		return fmt.Errorf("colstore: column %s: %w", name, err)
	}
	t.Cols = append(t.Cols, col)
	t.N = len(values)
	return nil
}

// AddEnumF64Column attaches a float column stored as enumeration codes (the
// paper stores l_discount, l_tax and l_quantity this way at SF=1).
func (t *Table) AddEnumF64Column(name string, values []float64) error {
	if len(t.Cols) > 0 && len(values) != t.N {
		return fmt.Errorf("colstore: column %s has %d rows, table %s has %d", name, len(values), t.Name, t.N)
	}
	dict := NewF64Dict()
	codes := make([]int, len(values))
	for i, v := range values {
		codes[i] = dict.CodeF64(v)
	}
	col := &Column{Name: name, Typ: vector.Float64, Dict: dict}
	if err := col.packCodes(codes, dict.Len()); err != nil {
		return fmt.Errorf("colstore: column %s: %w", name, err)
	}
	t.Cols = append(t.Cols, col)
	t.N = len(values)
	return nil
}

func (c *Column) packCodes(codes []int, distinct int) error {
	switch {
	case distinct <= 256:
		c8 := make([]uint8, len(codes))
		for i, x := range codes {
			c8[i] = uint8(x)
		}
		c.data = c8
	case distinct <= 65536:
		c16 := make([]uint16, len(codes))
		for i, x := range codes {
			c16[i] = uint16(x)
		}
		c.data = c16
	default:
		return fmt.Errorf("%d distinct values, too many for enumeration", distinct)
	}
	return nil
}

// Bytes returns the total storage footprint of the table.
func (t *Table) Bytes() int {
	total := 0
	for _, c := range t.Cols {
		total += c.Bytes()
	}
	return total
}

// Catalog maps table names to tables: the MonetDB storage manager role in
// the paper's Figure 5.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Add registers a table, replacing any previous table of the same name.
func (c *Catalog) Add(t *Table) { c.tables[t.Name] = t }

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown table %q", name)
	}
	return t, nil
}

// Names returns the registered table names (unordered).
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}
