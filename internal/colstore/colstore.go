// Package colstore implements the vertically fragmented storage layer the
// X100 engine runs on: MonetDB-style BAT[void,T] columns.
//
// Each table is a set of equally long typed columns; the head (oid) column
// is "void" — a densely ascending row id starting at 0 that is never stored
// (paper Section 3.3). Every table therefore has a virtual #rowId column,
// which the Fetch1Join/FetchNJoin operators use for positional fetches.
//
// A column is a sequence of Fragments: contiguous runs of physical values.
// Memory-resident columns are a single in-memory fragment (a typed slice);
// disk-backed columns attached from a ColumnBM chunk store are one fragment
// per compressed chunk, decompressed on demand through a FragReader that
// holds at most one materialized fragment at a time — the paper's Figure 5
// split between the X100 engine and the buffer-managed ColumnBM store.
//
// String columns may be stored as enumeration types (Section 4.3): a
// single-byte or two-byte integer code per row referring to the #rowId of a
// mapping table (the dictionary). The scan layer exposes the codes, and the
// plan builder inserts a Fetch1Join against the dictionary to rehydrate the
// original values — exactly as MonetDB/X100 "automatically adds a Fetch1Join
// operation" for enum columns.
package colstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"x100/internal/vector"
)

// Fragment is one contiguous run of a column's physical values.
type Fragment interface {
	// Rows returns the number of values in the fragment.
	Rows() int
	// Materialize returns the fragment's values as a typed slice of the
	// column's physical type. When buf is a slice of the right type with
	// sufficient capacity it may be reused as the destination. scratch
	// reports ownership: true means the returned slice is caller-owned (a
	// decode buffer, safe to pass back as buf for a later Materialize);
	// false means it aliases the fragment's own immutable storage and must
	// never be written to or reused as a decode buffer.
	Materialize(buf any) (data any, scratch bool, err error)
}

// CloneableFragment is implemented by fragments that carry mutable
// attach-time state (merged-dictionary remaps). Copy-on-write column
// updates clone such fragments so the storage layer can rebuild that state
// for the new column generation without disturbing readers that captured
// the previous one.
type CloneableFragment interface {
	CloneFragment() Fragment
}

// I64Bounded is implemented by fragments that know their integer value
// range (per-chunk min/max recorded by the ColumnBM writer), enabling
// summary-index-style pruning at chunk granularity.
type I64Bounded interface {
	BoundsI64() (min, max int64, ok bool)
}

// F64Bounded is the float counterpart of I64Bounded.
type F64Bounded interface {
	BoundsF64() (min, max float64, ok bool)
}

// StrBounded is the string counterpart of I64Bounded (byte-wise string
// ordering), implemented by ColumnBM string chunks so predicates on
// near-sorted string columns — dates-as-strings, front-coded keys — prune
// at chunk granularity too.
type StrBounded interface {
	BoundsStr() (min, max string, ok bool)
}

// memFragment is a memory-resident fragment: a typed slice.
type memFragment struct {
	data any
	rows int
}

func (f *memFragment) Rows() int { return f.rows }

func (f *memFragment) Materialize(any) (any, bool, error) { return f.data, false, nil }

// MemFragment wraps a typed slice as an in-memory fragment.
func MemFragment(data any) Fragment {
	return &memFragment{data: data, rows: sliceLen(data)}
}

func sliceLen(data any) int {
	return vector.FromAny(vector.Unknown, data).Len()
}

// Column is one vertical fragment sequence: all values of one attribute.
// Base fragments are treated as immutable; updates are handled by the
// delta package layered on top.
type Column struct {
	Name string
	// Typ is the logical type visible to queries (String for enum columns).
	Typ vector.Type
	// Dict is non-nil for enumeration-typed columns.
	Dict *Dict

	// phys is the physical storage type (the code type for enum columns).
	phys vector.Type
	// mdict is the table-level merged dictionary of a dict-compressed (but
	// not enum) string column, built at attach time when every chunk is
	// dict-coded and the merged cardinality is small enough. The column's
	// physical type stays String — writes and reorganization are untouched —
	// but scans can read globally comparable codes (mdictPhys wide) through
	// FragReader.CodeVector and decode strings only for surviving rows.
	mdict     *Dict
	mdictPhys vector.Type
	// frags are the base fragments; starts[i] is the first global row of
	// fragment i, starts[len(frags)] == n.
	frags  []Fragment
	starts []int
	n      int

	// pinned caches the full materialized column for random-access callers
	// (fetch joins, baseline engines, index builds). Memory-resident
	// columns are born pinned; disk-backed columns pin lazily. The atomic
	// pointer makes the read side race-free; materialization itself is
	// serialized by pinMu.
	pinned atomic.Pointer[any]
}

// pinMu serializes lazy full-column materialization.
var pinMu sync.Mutex

// NewFragColumn builds a fragment-backed column. phys is the physical
// storage type (the code type for enum columns, the logical type's
// Physical() otherwise).
func NewFragColumn(name string, typ vector.Type, dict *Dict, phys vector.Type, frags []Fragment) *Column {
	c := &Column{Name: name, Typ: typ, Dict: dict, phys: phys}
	c.setFrags(frags)
	return c
}

func (c *Column) setFrags(frags []Fragment) {
	c.frags = frags
	c.starts = make([]int, len(frags)+1)
	n := 0
	for i, f := range frags {
		c.starts[i] = n
		n += f.Rows()
	}
	c.starts[len(frags)] = n
	c.n = n
	c.pinned.Store(nil)
}

// withMoreFrags returns a new column equal to c plus the given base
// fragments appended — the copy-on-write append path. The receiver is left
// untouched, so operators that captured it (a scan pinned to its
// pre-checkpoint view) keep reading a consistent fragment sequence. Old
// fragments that carry mutable attach-time state (merged-dictionary remaps)
// are cloned so rebuilding that state for the new column cannot disturb
// readers of the old one. The merged-dictionary view itself is dropped: a
// checkpoint-appended fragment carries its own chunk dictionaries (or
// none), so the attach-time global code domain no longer covers the column
// until the storage layer refreshes it.
func (c *Column) withMoreFrags(extra ...Fragment) *Column {
	frags := make([]Fragment, 0, len(c.frags)+len(extra))
	for _, f := range c.frags {
		if cf, ok := f.(CloneableFragment); ok {
			f = cf.CloneFragment()
		}
		frags = append(frags, f)
	}
	frags = append(frags, extra...)
	nc := &Column{Name: c.Name, Typ: c.Typ, Dict: c.Dict, phys: c.phys}
	nc.setFrags(frags)
	return nc
}

// NumFrags returns the number of base fragments.
func (c *Column) NumFrags() int { return len(c.frags) }

// Frag returns the i-th fragment.
func (c *Column) Frag(i int) Fragment { return c.frags[i] }

// FragStart returns the first global row of fragment i; FragStart(NumFrags())
// is the column length.
func (c *Column) FragStart(i int) int { return c.starts[i] }

// fragIndex returns the index of the fragment containing global row i.
func (c *Column) fragIndex(row int) int {
	// sort.Search finds the first start > row; the owning fragment is one
	// earlier.
	return sort.SearchInts(c.starts[1:], row+1)
}

// FragSpan returns the global row range [lo, hi) of the fragment containing
// row.
func (c *Column) FragSpan(row int) (int, int) {
	i := c.fragIndex(row)
	return c.starts[i], c.starts[i+1]
}

// vecType is the type tag carried by vectors over this column's physical
// data: the code type for enum columns, the logical type otherwise.
func (c *Column) vecType() vector.Type {
	if c.Dict != nil {
		return c.phys
	}
	return c.Typ
}

// Dict is the mapping table of an enumeration column: code -> value. The
// paper enum-compresses any small-domain column — Table 5 shows the float
// columns l_discount, l_tax and l_quantity stored as single-byte enums — so
// dictionaries hold either strings or float64 values.
//
// Dictionaries are append-only and internally synchronized: Code/CodeF64
// may insert new values while concurrent scans decode existing codes.
// Concurrent readers must capture the value array through Strings/Floats
// (or go through Lookup/Len/decoded) instead of reading the exported
// fields directly — a captured slice header stays valid forever because
// existing entries are never rewritten, only appended past the captured
// length.
type Dict struct {
	Typ    vector.Type // String or Float64
	Values []string
	F64s   []float64
	// Sorted reports that Values is in ascending byte order, making codes
	// order-isomorphic to the strings they encode: range predicates then
	// translate exactly into code ranges. Merged dictionaries built at
	// attach time are sorted; insertion-ordered enum dictionaries are not,
	// and a sorted dictionary loses the property as soon as a new value is
	// appended (codes are positional and must stay stable).
	Sorted bool
	sindex map[string]int
	findex map[float64]int

	mu sync.Mutex
}

// NewSortedDict builds a string dictionary over values, which must be in
// strictly ascending order (codes are the positions).
func NewSortedDict(values []string) *Dict {
	d := &Dict{Typ: vector.String, Values: values, Sorted: true, sindex: make(map[string]int, len(values))}
	for i, v := range values {
		d.sindex[v] = i
	}
	return d
}

// NewDict creates an empty string dictionary.
func NewDict() *Dict {
	return &Dict{Typ: vector.String, sindex: make(map[string]int)}
}

// NewF64Dict creates an empty float dictionary.
func NewF64Dict() *Dict {
	return &Dict{Typ: vector.Float64, findex: make(map[float64]int)}
}

// Code returns the code for s, inserting it if new. Inserting into a
// sorted dictionary appends (codes are positional and stay stable) and
// clears the Sorted property.
func (d *Dict) Code(s string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.sindex[s]; ok {
		return c
	}
	c := len(d.Values)
	d.Values = append(d.Values, s)
	d.sindex[s] = c
	if c > 0 && d.Sorted && d.Values[c-1] >= s {
		d.Sorted = false
	}
	return c
}

// SearchValue returns the number of dictionary values byte-wise less than
// s (binary search; only meaningful on sorted dictionaries).
func (d *Dict) SearchValue(s string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return sort.SearchStrings(d.Values, s)
}

// CodeF64 returns the code for f, inserting it if new.
func (d *Dict) CodeF64(f float64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.findex[f]; ok {
		return c
	}
	c := len(d.F64s)
	d.F64s = append(d.F64s, f)
	d.findex[f] = c
	return c
}

// Lookup returns the code for s without inserting.
func (d *Dict) Lookup(s string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.sindex[s]
	return c, ok
}

// Len returns the number of distinct values.
func (d *Dict) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Typ == vector.Float64 {
		return len(d.F64s)
	}
	return len(d.Values)
}

// Strings captures the current string value array. The returned slice is
// immutable (appends never rewrite existing entries, and growth reallocates)
// and covers every code issued before the call, so it is safe to index from
// concurrent scans while writers keep inserting.
func (d *Dict) Strings() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Values
}

// Floats is the float64 counterpart of Strings.
func (d *Dict) Floats() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.F64s
}

// PhysType returns the physical storage type of the column (the code type
// for enum columns).
func (c *Column) PhysType() vector.Type { return c.phys }

// SetMergedDict attaches a table-level merged dictionary view: every base
// fragment must be able to serve codes into d (CodeMaterializer), phys is
// the code width (UInt8/UInt16). The storage layer calls it at attach time;
// appending fragments drops the view (new fragments cannot be assumed to
// share the domain).
func (c *Column) SetMergedDict(d *Dict, phys vector.Type) {
	c.mdict, c.mdictPhys = d, phys
}

// MergedDict returns the table-level merged dictionary of a dict-compressed
// string column, or nil.
func (c *Column) MergedDict() *Dict { return c.mdict }

// CodeDomain returns the column's shared string dictionary and code width
// when the column can serve globally comparable dictionary codes: enum
// string columns (insertion-ordered dictionary) and merged-dict columns
// (sorted dictionary). ok=false for every other column, including float
// enums.
func (c *Column) CodeDomain() (d *Dict, phys vector.Type, ok bool) {
	if c.Dict != nil && c.Dict.Typ == vector.String {
		return c.Dict, c.phys, true
	}
	if c.mdict != nil {
		return c.mdict, c.mdictPhys, true
	}
	return nil, vector.Unknown, false
}

// codePhys is the code vector type of the column's code domain.
func (c *Column) codePhys() vector.Type {
	if c.Dict != nil {
		return c.phys
	}
	return c.mdictPhys
}

// Pinned reports whether the column currently caches a full materialized
// copy. Memory-resident columns are born pinned; for disk-backed columns
// this staying false is the observable guarantee that no consumer fell off
// the bounded-memory paths (FragReader for scans, FragLocator for
// positional fetches).
func (c *Column) Pinned() bool { return c.pinned.Load() != nil }

// IsEnum reports whether the column is enumeration-compressed.
func (c *Column) IsEnum() bool { return c.Dict != nil }

// Len returns the number of rows in the base fragments.
func (c *Column) Len() int { return c.n }

// VectorAt returns a zero-copy view of rows [lo:hi) of the pinned physical
// data. For enum columns the returned vector contains codes. Disk-backed
// columns are pinned (fully materialized) on first use; sequential scans
// use a FragReader instead to stay within bounded memory.
func (c *Column) VectorAt(lo, hi int) *vector.Vector {
	return vector.FromAny(c.vecType(), c.Data()).Slice(lo, hi)
}

// Pin materializes the full column (concatenating all fragments) and caches
// it for random-access callers. Operators that fetch positionally at
// execution time (Fetch1Join, FetchNJoin) pin at construction, so the cache
// is read-only by the time worker goroutines run.
func (c *Column) Pin() (any, error) {
	if d := c.pinned.Load(); d != nil {
		return *d, nil
	}
	pinMu.Lock()
	defer pinMu.Unlock()
	if d := c.pinned.Load(); d != nil {
		return *d, nil
	}
	if len(c.frags) == 1 {
		data, _, err := c.frags[0].Materialize(nil)
		if err != nil {
			return nil, err
		}
		c.pinned.Store(&data)
		return data, nil
	}
	var dst any
	for i, f := range c.frags {
		part, _, err := f.Materialize(nil)
		if err != nil {
			return nil, fmt.Errorf("colstore: pin %s fragment %d: %w", c.Name, i, err)
		}
		dst = appendAny(dst, part)
	}
	if dst == nil {
		dst = emptySlice(c.vecType())
	}
	c.pinned.Store(&dst)
	return dst, nil
}

// Data returns the full physical slice (for baseline engines and other
// random-access callers that operate on whole columns). It pins disk-backed
// columns, panicking on I/O errors — error-aware callers use Pin.
func (c *Column) Data() any {
	d, err := c.Pin()
	if err != nil {
		panic(fmt.Sprintf("colstore: pin column %s: %v", c.Name, err))
	}
	return d
}

func appendAny(dst, src any) any {
	if dst == nil {
		switch s := src.(type) {
		case []bool:
			return append([]bool(nil), s...)
		case []uint8:
			return append([]uint8(nil), s...)
		case []uint16:
			return append([]uint16(nil), s...)
		case []int32:
			return append([]int32(nil), s...)
		case []int64:
			return append([]int64(nil), s...)
		case []float64:
			return append([]float64(nil), s...)
		case []string:
			return append([]string(nil), s...)
		}
		panic(fmt.Sprintf("colstore: unsupported fragment payload %T", src))
	}
	switch d := dst.(type) {
	case []bool:
		return append(d, src.([]bool)...)
	case []uint8:
		return append(d, src.([]uint8)...)
	case []uint16:
		return append(d, src.([]uint16)...)
	case []int32:
		return append(d, src.([]int32)...)
	case []int64:
		return append(d, src.([]int64)...)
	case []float64:
		return append(d, src.([]float64)...)
	case []string:
		return append(d, src.([]string)...)
	}
	panic(fmt.Sprintf("colstore: unsupported fragment payload %T", dst))
}

func emptySlice(t vector.Type) any {
	switch t.Physical() {
	case vector.Bool:
		return []bool{}
	case vector.UInt8:
		return []uint8{}
	case vector.UInt16:
		return []uint16{}
	case vector.Int32:
		return []int32{}
	case vector.Int64:
		return []int64{}
	case vector.Float64:
		return []float64{}
	default:
		return []string{}
	}
}

// DecodedValue returns the logical value at row i, decoding enum codes
// (slow path for the tuple-at-a-time engine and tests; pins the column).
func (c *Column) DecodedValue(i int) any {
	switch d := c.Data().(type) {
	case []uint8:
		if c.Dict != nil {
			return c.Dict.decoded(int(d[i]))
		}
		return d[i]
	case []uint16:
		if c.Dict != nil {
			return c.Dict.decoded(int(d[i]))
		}
		return d[i]
	default:
		return vector.FromAny(c.Typ, d).Value(i)
	}
}

func (d *Dict) decoded(code int) any {
	if d.Typ == vector.Float64 {
		return d.Floats()[code]
	}
	return d.Strings()[code]
}

// Bytes returns the in-memory storage footprint of the column, including
// the dictionary payload for enum columns (used to reproduce the
// storage-size comparison of Section 5). Pins disk-backed columns.
func (c *Column) Bytes() int {
	b := vector.FromAny(c.PhysType(), c.Data()).Bytes()
	if c.Dict != nil {
		for _, v := range c.Dict.Strings() {
			b += len(v) + 16
		}
		b += 8 * len(c.Dict.Floats())
	}
	return b
}

// Table is a named collection of equally long columns.
type Table struct {
	Name string
	Cols []*Column
	N    int
	// ChunkRows is the uniform fragment size of disk-backed tables (rows
	// per ColumnBM chunk; the last chunk may be shorter). Zero for
	// memory-resident tables. Parallel scans align morsels to this grid so
	// workers never split a chunk.
	ChunkRows int
}

// NewTable creates an empty table.
func NewTable(name string) *Table { return &Table{Name: name} }

// Schema returns the logical schema of the table.
func (t *Table) Schema() vector.Schema {
	s := make(vector.Schema, len(t.Cols))
	for i, c := range t.Cols {
		s[i] = vector.Field{Name: c.Name, Type: c.Typ}
	}
	return s
}

// Col returns the named column, or nil.
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// AddColumn attaches a fully built typed slice as a column. The slice
// length must match existing columns.
func (t *Table) AddColumn(name string, typ vector.Type, data any) error {
	n := vector.FromAny(typ.Physical(), data).Len()
	if len(t.Cols) > 0 && n != t.N {
		return fmt.Errorf("colstore: column %s has %d rows, table %s has %d", name, n, t.Name, t.N)
	}
	c := NewFragColumn(name, typ, nil, typ.Physical(), []Fragment{&memFragment{data: data, rows: n}})
	c.pinned.Store(&data)
	t.Cols = append(t.Cols, c)
	t.N = n
	return nil
}

// AttachColumn attaches a pre-built (e.g. fragment-backed) column. The
// column length must match existing columns.
func (t *Table) AttachColumn(c *Column) error {
	if len(t.Cols) > 0 && c.Len() != t.N {
		return fmt.Errorf("colstore: column %s has %d rows, table %s has %d", c.Name, c.Len(), t.Name, t.N)
	}
	t.Cols = append(t.Cols, c)
	t.N = c.Len()
	return nil
}

// AppendFragment appends one in-memory fragment per column (typed slices of
// each column's physical type, equal lengths) as new base fragments — the
// delta checkpoint path. Row ids of existing rows are unchanged. The append
// is copy-on-write: t.Cols is replaced with new column objects and the old
// ones stay valid, so readers that captured the previous column set keep a
// consistent pre-checkpoint view.
func (t *Table) AppendFragment(parts []any) error {
	if len(parts) != len(t.Cols) {
		return fmt.Errorf("colstore: append fragment has %d columns, table %s has %d", len(parts), t.Name, len(t.Cols))
	}
	n := -1
	for i, c := range t.Cols {
		k := sliceLen(parts[i])
		if n < 0 {
			n = k
		} else if k != n {
			return fmt.Errorf("colstore: append fragment column %s has %d rows, want %d", c.Name, k, n)
		}
	}
	if n == 0 {
		return nil
	}
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.withMoreFrags(&memFragment{data: parts[i], rows: n})
	}
	t.Cols = cols
	t.N += n
	return nil
}

// AppendFragments appends pre-built fragments (one slice per column, equal
// total rows — e.g. the freshly written ColumnBM chunks of a checkpoint
// write-back) as new base fragments. Row ids of existing rows are
// unchanged, and the append is copy-on-write exactly like AppendFragment.
func (t *Table) AppendFragments(perCol [][]Fragment) error {
	if len(perCol) != len(t.Cols) {
		return fmt.Errorf("colstore: append has %d columns, table %s has %d", len(perCol), t.Name, len(t.Cols))
	}
	n := -1
	for i, c := range t.Cols {
		k := 0
		for _, f := range perCol[i] {
			k += f.Rows()
		}
		if n < 0 {
			n = k
		} else if k != n {
			return fmt.Errorf("colstore: append column %s has %d rows, want %d", c.Name, k, n)
		}
	}
	if n == 0 {
		return nil
	}
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.withMoreFrags(perCol[i]...)
	}
	t.Cols = cols
	t.N += n
	return nil
}

// AddEnumColumn attaches a string column stored as enumeration codes. It
// chooses uint8 codes when the dictionary fits 256 values, else uint16; more
// than 65536 distinct values is an error (store such columns uncompressed).
func (t *Table) AddEnumColumn(name string, values []string) error {
	if len(t.Cols) > 0 && len(values) != t.N {
		return fmt.Errorf("colstore: column %s has %d rows, table %s has %d", name, len(values), t.Name, t.N)
	}
	dict := NewDict()
	codes := make([]int, len(values))
	for i, v := range values {
		codes[i] = dict.Code(v)
	}
	col := &Column{Name: name, Typ: vector.String, Dict: dict}
	if err := col.packCodes(codes, dict.Len()); err != nil {
		return fmt.Errorf("colstore: column %s: %w", name, err)
	}
	t.Cols = append(t.Cols, col)
	t.N = len(values)
	return nil
}

// AddEnumF64Column attaches a float column stored as enumeration codes (the
// paper stores l_discount, l_tax and l_quantity this way at SF=1).
func (t *Table) AddEnumF64Column(name string, values []float64) error {
	if len(t.Cols) > 0 && len(values) != t.N {
		return fmt.Errorf("colstore: column %s has %d rows, table %s has %d", name, len(values), t.Name, t.N)
	}
	dict := NewF64Dict()
	codes := make([]int, len(values))
	for i, v := range values {
		codes[i] = dict.CodeF64(v)
	}
	col := &Column{Name: name, Typ: vector.Float64, Dict: dict}
	if err := col.packCodes(codes, dict.Len()); err != nil {
		return fmt.Errorf("colstore: column %s: %w", name, err)
	}
	t.Cols = append(t.Cols, col)
	t.N = len(values)
	return nil
}

func (c *Column) packCodes(codes []int, distinct int) error {
	var data any
	switch {
	case distinct <= 256:
		c8 := make([]uint8, len(codes))
		for i, x := range codes {
			c8[i] = uint8(x)
		}
		data = c8
		c.phys = vector.UInt8
	case distinct <= 65536:
		c16 := make([]uint16, len(codes))
		for i, x := range codes {
			c16[i] = uint16(x)
		}
		data = c16
		c.phys = vector.UInt16
	default:
		return fmt.Errorf("%d distinct values, too many for enumeration", distinct)
	}
	c.setFrags([]Fragment{&memFragment{data: data, rows: len(codes)}})
	c.pinned.Store(&data)
	return nil
}

// Bytes returns the total storage footprint of the table.
func (t *Table) Bytes() int {
	total := 0
	for _, c := range t.Cols {
		total += c.Bytes()
	}
	return total
}

// Catalog maps table names to tables: the MonetDB storage manager role in
// the paper's Figure 5. It is internally synchronized: background
// checkpoints and compactions re-register dictionary tables while queries
// resolve names.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Add registers a table, replacing any previous table of the same name.
func (c *Catalog) Add(t *Table) {
	c.mu.Lock()
	c.tables[t.Name] = t
	c.mu.Unlock()
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("colstore: unknown table %q", name)
	}
	return t, nil
}

// Names returns the registered table names (unordered).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}
