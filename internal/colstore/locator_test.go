package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"x100/internal/vector"
)

// countingFragment wraps a memFragment counting materializations and
// returning owned copies, so the test observes the locator's LRU behavior
// exactly as with disk chunks (scratch buffers, eviction, reuse).
type countingFragment struct {
	vals         []int64
	materialized int
}

func (f *countingFragment) Rows() int { return len(f.vals) }

func (f *countingFragment) Materialize(buf any) (any, bool, error) {
	f.materialized++
	dst, _ := buf.([]int64)
	if cap(dst) < len(f.vals) {
		dst = make([]int64, len(f.vals))
	}
	dst = dst[:len(f.vals)]
	copy(dst, f.vals)
	return dst, true, nil
}

func locatorColumn(nfrags, rowsPer int) (*Column, []*countingFragment) {
	frags := make([]Fragment, nfrags)
	cfs := make([]*countingFragment, nfrags)
	v := int64(0)
	for i := range frags {
		vals := make([]int64, rowsPer)
		for j := range vals {
			vals[j] = v
			v++
		}
		cf := &countingFragment{vals: vals}
		frags[i], cfs[i] = cf, cf
	}
	return NewFragColumn("c", vector.Int64, nil, vector.Int64, frags), cfs
}

// TestLocatorBoundedCache asserts the locator never holds more than its
// capacity in decoded fragments, never pins the column, and returns correct
// values under a random access pattern.
func TestLocatorBoundedCache(t *testing.T) {
	col, _ := locatorColumn(16, 50)
	l := col.Locator(3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		id := rng.Intn(col.Len())
		got, err := l.Value(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.(int64) != int64(id) {
			t.Fatalf("Value(%d) = %v", id, got)
		}
		if l.Cached() > 3 {
			t.Fatalf("locator holds %d fragments, cap 3", l.Cached())
		}
	}
	if col.Pinned() {
		t.Fatal("locator access pinned the column")
	}
}

// TestLocatorClusteredReuse asserts a clustered (sorted) access pattern
// materializes each fragment exactly once: the MRU front entry absorbs
// runs, and the LRU keeps recently decoded neighbors.
func TestLocatorClusteredReuse(t *testing.T) {
	col, cfs := locatorColumn(8, 100)
	l := col.Locator(2)
	dst := vector.New(vector.Int64, 256)
	ids := make([]int32, 256)
	for lo := 0; lo < col.Len(); lo += 256 {
		n := min(256, col.Len()-lo)
		for j := 0; j < n; j++ {
			ids[j] = int32(lo + j)
		}
		if err := l.Gather(dst.Slice(0, n), ids[:n], nil, n); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if dst.Int64s()[j] != int64(lo+j) {
				t.Fatalf("gather at %d = %d", lo+j, dst.Int64s()[j])
			}
		}
	}
	for i, cf := range cfs {
		if cf.materialized != 1 {
			t.Fatalf("fragment %d materialized %d times on a clustered sweep", i, cf.materialized)
		}
	}
}

// TestLocatorGatherSelAndEnum covers the selection-vector path and enum
// decoding through the dictionary.
func TestLocatorGatherSelAndEnum(t *testing.T) {
	tab := NewTable("t")
	vals := make([]string, 300)
	for i := range vals {
		vals[i] = []string{"red", "green", "blue"}[i%3]
	}
	if err := tab.AddEnumColumn("e", vals); err != nil {
		t.Fatal(err)
	}
	col := tab.Col("e")
	l := col.Locator(0)
	ids := []int32{299, 0, 7, 100}
	sel := []int32{0, 2, 3}
	dst := vector.New(vector.String, 4)
	if err := l.Gather(dst, ids, sel, 4); err != nil {
		t.Fatal(err)
	}
	for _, i := range sel {
		want := vals[ids[i]]
		if dst.Strings()[i] != want {
			t.Fatalf("enum gather sel %d: %q, want %q", i, dst.Strings()[i], want)
		}
	}
	// PhysValue surfaces the raw code.
	pv, err := l.PhysValue(1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pv) != "1" {
		t.Fatalf("PhysValue(1) = %v, want code 1", pv)
	}
}

// TestLocatorOutOfRange asserts row ids outside the column fail cleanly.
func TestLocatorOutOfRange(t *testing.T) {
	col, _ := locatorColumn(2, 10)
	l := col.Locator(0)
	if _, err := l.Value(20); err == nil {
		t.Fatal("Value(20) over 20-row column did not fail")
	}
	if _, err := l.Value(-1); err == nil {
		t.Fatal("Value(-1) did not fail")
	}
	dst := vector.New(vector.Int64, 1)
	if err := l.Gather(dst, []int32{42}, nil, 1); err == nil {
		t.Fatal("gather past the column did not fail")
	}
}
