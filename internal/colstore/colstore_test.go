package colstore

import (
	"testing"

	"x100/internal/vector"
)

func TestTableBasics(t *testing.T) {
	tab := NewTable("t")
	if err := tab.AddColumn("a", vector.Int64, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("b", vector.Float64, []float64{1.5, 2.5, 3.5}); err != nil {
		t.Fatal(err)
	}
	if tab.N != 3 {
		t.Fatalf("N=%d", tab.N)
	}
	if err := tab.AddColumn("bad", vector.Int64, []int64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if tab.Col("a") == nil || tab.Col("zz") != nil {
		t.Fatal("col lookup")
	}
	s := tab.Schema()
	if len(s) != 2 || s[1].Type != vector.Float64 {
		t.Fatalf("schema: %v", s)
	}
	v := tab.Col("a").VectorAt(1, 3)
	if v.Len() != 2 || v.Int64s()[0] != 2 {
		t.Fatal("vectorAt")
	}
}

func TestEnumStringColumn(t *testing.T) {
	tab := NewTable("t")
	vals := []string{"x", "y", "x", "z", "y"}
	if err := tab.AddEnumColumn("c", vals); err != nil {
		t.Fatal(err)
	}
	c := tab.Col("c")
	if !c.IsEnum() || c.PhysType() != vector.UInt8 || c.Typ != vector.String {
		t.Fatal("enum metadata")
	}
	if c.Dict.Len() != 3 {
		t.Fatalf("dict len %d", c.Dict.Len())
	}
	for i, want := range vals {
		if got := c.DecodedValue(i); got != want {
			t.Fatalf("row %d: %v", i, got)
		}
	}
	code, ok := c.Dict.Lookup("z")
	if !ok || c.Dict.Values[code] != "z" {
		t.Fatal("lookup")
	}
	if _, ok := c.Dict.Lookup("nope"); ok {
		t.Fatal("lookup miss")
	}
}

func TestEnumF64Column(t *testing.T) {
	tab := NewTable("t")
	vals := []float64{0.05, 0.07, 0.05, 0.0}
	if err := tab.AddEnumF64Column("d", vals); err != nil {
		t.Fatal(err)
	}
	c := tab.Col("d")
	if !c.IsEnum() || c.Typ != vector.Float64 || c.Dict.Typ != vector.Float64 {
		t.Fatal("enum f64 metadata")
	}
	for i, want := range vals {
		if got := c.DecodedValue(i); got != want {
			t.Fatalf("row %d: %v", i, got)
		}
	}
}

func TestEnumUint16Promotion(t *testing.T) {
	vals := make([]string, 300)
	for i := range vals {
		vals[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	tab := NewTable("t")
	if err := tab.AddEnumColumn("c", vals); err != nil {
		t.Fatal(err)
	}
	c := tab.Col("c")
	if c.PhysType() != vector.UInt16 {
		t.Fatalf("expected uint16 codes, got %v", c.PhysType())
	}
	for i, want := range vals {
		if got := c.DecodedValue(i); got != want {
			t.Fatalf("row %d", i)
		}
	}
}

func TestEnumCompressionSavesSpace(t *testing.T) {
	n := 10000
	vals := make([]string, n)
	for i := range vals {
		vals[i] = []string{"RAIL", "TRUCK", "MAIL"}[i%3]
	}
	enum := NewTable("e")
	if err := enum.AddEnumColumn("c", vals); err != nil {
		t.Fatal(err)
	}
	plain := NewTable("p")
	if err := plain.AddColumn("c", vector.String, vals); err != nil {
		t.Fatal(err)
	}
	if enum.Bytes() >= plain.Bytes() {
		t.Fatalf("enum %d >= plain %d", enum.Bytes(), plain.Bytes())
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	tab := NewTable("t")
	if err := tab.AddColumn("a", vector.Int32, []int32{1}); err != nil {
		t.Fatal(err)
	}
	cat.Add(tab)
	got, err := cat.Table("t")
	if err != nil || got != tab {
		t.Fatal("catalog get")
	}
	if _, err := cat.Table("missing"); err == nil {
		t.Fatal("missing table must error")
	}
	if len(cat.Names()) != 1 {
		t.Fatal("names")
	}
}

func TestDictCodeStability(t *testing.T) {
	d := NewDict()
	a := d.Code("alpha")
	b := d.Code("beta")
	if d.Code("alpha") != a || d.Code("beta") != b {
		t.Fatal("codes must be stable")
	}
	f := NewF64Dict()
	x := f.CodeF64(0.5)
	if f.CodeF64(0.5) != x || f.Len() != 1 {
		t.Fatal("float codes must be stable")
	}
}
