package colstore

import (
	"fmt"

	"x100/internal/vector"
)

// CodeMaterializer is implemented by fragments that can produce the
// column's table-level dictionary codes directly, without materializing the
// decoded values (ColumnBM dict-coded string chunks remapped through the
// merged dictionary built at attach time).
type CodeMaterializer interface {
	// MaterializeCodes returns the fragment's values as global dictionary
	// codes ([]uint8 or []uint16, matching the column's code domain type).
	// buf follows the same reuse/ownership contract as Materialize.
	MaterializeCodes(buf any) (data any, scratch bool, err error)
}

// DictFragment is implemented by fragments that may be dictionary-coded on
// their own (a per-chunk dictionary with no table-level merged domain).
type DictFragment interface {
	// MaterializeDict returns the fragment's chunk-local dictionary and the
	// per-row codes into it ([]uint8 or []uint16). ok=false means the
	// fragment is not dict-coded (raw or prefix chunk) and the caller must
	// fall back to Materialize. codeBuf follows the buf reuse contract.
	MaterializeDict(codeBuf any) (dict []string, codes any, ok bool, err error)
}

// DictHint is implemented by fragments that know WITHOUT I/O whether
// MaterializeDict can succeed (ColumnBM chunks carry the per-chunk
// dictionary cardinality in the manifest). Scans use it to skip the
// per-chunk translation machinery for columns with no dict-coded chunk at
// all, and MaterializeDict probes on chunks known to be raw/prefix.
type DictHint interface {
	// MayServeDict reports whether the fragment is (or may be, when the
	// manifest predates the cardinality field) dictionary-coded.
	MayServeDict() bool
}

// ReaderStats counts the decode work a FragReader performed. Byte figures
// for strings are estimates (16 bytes per materialized or skipped string
// header); integer and code figures are exact.
type ReaderStats struct {
	// DecodedValues/DecodedBytes count values actually materialized
	// (full-fragment decodes plus per-row gathers).
	DecodedValues int64
	DecodedBytes  int64
	// SkippedValues/SkippedBytes count values a selection-pushdown read
	// (VectorSel) did NOT materialize because the row was filtered out.
	SkippedValues int64
	SkippedBytes  int64
}

// readerRep tags what the reader's cached payload holds.
type readerRep uint8

const (
	repNone      readerRep = iota
	repValues              // cur = decoded values of the column's vector type
	repCodes               // cur = table-level dictionary codes
	repChunkDict           // cur = chunk-local codes, dict = chunk dictionary
)

// FragReader streams a column's fragments for sequential scans, keeping at
// most one materialized fragment (plus reusable decode buffers) resident —
// the bounded-memory guarantee of the ColumnBM scan path. A reader is
// single-goroutine; every scan operator clone owns its own.
//
// Beyond the plain Vector access, the reader implements the code-domain /
// late-materialization scan path: CodeVector serves table-level dictionary
// codes, DictVector serves per-chunk dictionaries, and VectorSel accepts
// the scan's current selection vector so dict-backed fragments decode only
// surviving rows ("decompress only what you use").
type FragReader struct {
	col      *Column
	codeMode bool // Vector() serves table-level codes (code-view columns)

	idx  int // materialized fragment index, -1 = none
	rep  readerRep
	cur  any      // payload in rep representation
	dict []string // chunk-local dictionary when rep == repChunkDict

	vbuf any      // caller-owned value decode buffer
	cbuf any      // caller-owned code decode buffer
	sbuf []string // gather destination for partial string materialization

	// Stats accumulates decode counters for trace output.
	Stats ReaderStats
}

// Reader creates a fragment reader positioned before the first fragment.
func (c *Column) Reader() *FragReader { return &FragReader{col: c, idx: -1} }

// CodeReader creates a reader whose Vector returns table-level dictionary
// codes instead of decoded values. The column must have a code domain
// (enum columns serve codes through the plain Reader already; CodeReader is
// for merged-dict string columns whose physical type is string).
func (c *Column) CodeReader() *FragReader { return &FragReader{col: c, idx: -1, codeMode: true} }

// locate resolves the fragment containing [lo,hi) and its start row.
func (r *FragReader) locate(lo, hi int) (int, int, error) {
	c := r.col
	fi := c.fragIndex(lo)
	fs, fe := c.starts[fi], c.starts[fi+1]
	if hi > fe {
		return 0, 0, fmt.Errorf("colstore: column %s: range [%d,%d) crosses fragment boundary %d", c.Name, lo, hi, fe)
	}
	return fi, fs, nil
}

// estWidth estimates the byte width of one value of t for the stats.
func estWidth(t vector.Type) int64 {
	switch t.Physical() {
	case vector.Bool, vector.UInt8:
		return 1
	case vector.UInt16:
		return 2
	case vector.Int32:
		return 4
	case vector.String:
		return 16
	default:
		return 8
	}
}

// materializeValues fills the cache with the decoded values of fragment fi.
func (r *FragReader) materializeValues(fi int) error {
	c := r.col
	data, scratch, err := c.frags[fi].Materialize(r.vbuf)
	if err != nil {
		return fmt.Errorf("colstore: column %s fragment %d: %w", c.Name, fi, err)
	}
	r.cur = data
	r.idx = fi
	r.rep = repValues
	r.dict = nil
	if scratch {
		// Decode buffers are reusable; fragment-owned storage is not.
		r.vbuf = data
	}
	k := int64(c.frags[fi].Rows())
	r.Stats.DecodedValues += k
	r.Stats.DecodedBytes += k * estWidth(c.vecType())
	return nil
}

// materializeCodes fills the cache with the table-level codes of fragment
// fi. For enum columns the physical values already are the codes; merged
// dictionary columns go through CodeMaterializer.
func (r *FragReader) materializeCodes(fi int) error {
	c := r.col
	if c.IsEnum() {
		return r.materializeValues(fi)
	}
	cm, ok := c.frags[fi].(CodeMaterializer)
	if !ok {
		return fmt.Errorf("colstore: column %s fragment %d cannot serve codes", c.Name, fi)
	}
	data, scratch, err := cm.MaterializeCodes(r.cbuf)
	if err != nil {
		return fmt.Errorf("colstore: column %s fragment %d: %w", c.Name, fi, err)
	}
	r.cur = data
	r.idx = fi
	r.rep = repCodes
	r.dict = nil
	if scratch {
		r.cbuf = data
	}
	k := int64(c.frags[fi].Rows())
	r.Stats.DecodedValues += k
	r.Stats.DecodedBytes += k * estWidth(c.codePhys())
	return nil
}

// Vector returns a typed view of global rows [lo, hi), which must lie
// within a single fragment (scans clamp batches to fragment boundaries via
// FragSpan). For enum columns the values are codes; for code-mode readers
// (CodeReader) the values are table-level dictionary codes.
func (r *FragReader) Vector(lo, hi int) (*vector.Vector, error) {
	c := r.col
	fi, fs, err := r.locate(lo, hi)
	if err != nil {
		return nil, err
	}
	if r.codeMode {
		if fi != r.idx || (r.rep != repCodes && !(c.IsEnum() && r.rep == repValues)) {
			if err := r.materializeCodes(fi); err != nil {
				return nil, err
			}
		}
		return vector.FromAny(c.codePhys(), r.cur).Slice(lo-fs, hi-fs), nil
	}
	if fi == r.idx {
		switch r.rep {
		case repValues:
			return vector.FromAny(c.vecType(), r.cur).Slice(lo-fs, hi-fs), nil
		case repCodes, repChunkDict:
			// A code representation is cached (a predicate read codes
			// first): serve values by gathering through the dictionary
			// instead of re-decoding the chunk.
			return r.gather(lo, hi, fs, nil)
		}
	}
	if err := r.materializeValues(fi); err != nil {
		return nil, err
	}
	return vector.FromAny(c.vecType(), r.cur).Slice(lo-fs, hi-fs), nil
}

// CodeVector returns the table-level dictionary codes of rows [lo, hi).
// The column must have a code domain (Column.CodeDomain).
func (r *FragReader) CodeVector(lo, hi int) (*vector.Vector, error) {
	c := r.col
	fi, fs, err := r.locate(lo, hi)
	if err != nil {
		return nil, err
	}
	if fi != r.idx || (r.rep != repCodes && !(c.IsEnum() && r.rep == repValues)) {
		if err := r.materializeCodes(fi); err != nil {
			return nil, err
		}
	}
	return vector.FromAny(c.codePhys(), r.cur).Slice(lo-fs, hi-fs), nil
}

// DictVector tries to serve rows [lo, hi) of a string column as chunk-local
// dictionary codes plus the chunk's dictionary. ok=false means the current
// fragment is not dict-coded (raw or prefix chunk, or an in-memory
// fragment); the caller falls back to Vector — the decode-first path.
func (r *FragReader) DictVector(lo, hi int) (codes *vector.Vector, dict []string, ok bool, err error) {
	c := r.col
	fi, fs, err := r.locate(lo, hi)
	if err != nil {
		return nil, nil, false, err
	}
	if fi == r.idx {
		switch r.rep {
		case repChunkDict:
			return r.chunkCodesVec(lo, hi, fs), r.dict, true, nil
		case repValues:
			// Already decoded (a previous fallback); no point re-reading.
			return nil, nil, false, nil
		}
	}
	df, can := c.frags[fi].(DictFragment)
	if !can {
		return nil, nil, false, nil
	}
	d, cd, isDict, err := df.MaterializeDict(r.cbuf)
	if err != nil {
		return nil, nil, false, fmt.Errorf("colstore: column %s fragment %d: %w", c.Name, fi, err)
	}
	if !isDict {
		return nil, nil, false, nil
	}
	r.cur = cd
	r.cbuf = cd
	r.dict = d
	r.idx = fi
	r.rep = repChunkDict
	k := int64(c.frags[fi].Rows())
	r.Stats.DecodedValues += k
	r.Stats.DecodedBytes += k * int64(codeWidth(cd))
	return r.chunkCodesVec(lo, hi, fs), d, true, nil
}

func (r *FragReader) chunkCodesVec(lo, hi, fs int) *vector.Vector {
	t := vector.UInt8
	if _, is16 := r.cur.([]uint16); is16 {
		t = vector.UInt16
	}
	return vector.FromAny(t, r.cur).Slice(lo-fs, hi-fs)
}

func codeWidth(codes any) int {
	if _, is16 := codes.([]uint16); is16 {
		return 2
	}
	return 1
}

// VectorSel is Vector accepting the scan's current selection vector: only
// the positions listed in sel (relative to lo; nil = all) are guaranteed to
// be materialized, so dict-backed fragments decode only surviving rows.
// Values at unselected positions are unspecified. Non-dict fragments fall
// back to the full Vector decode.
func (r *FragReader) VectorSel(lo, hi int, sel []int32) (*vector.Vector, error) {
	if sel == nil || r.col.vecType().Physical() != vector.String {
		return r.Vector(lo, hi)
	}
	c := r.col
	fi, fs, err := r.locate(lo, hi)
	if err != nil {
		return nil, err
	}
	if fi != r.idx || r.rep == repNone {
		// Nothing cached yet: prefer the chunk-dictionary representation
		// when the fragment offers one (merged-dict columns never get
		// here — scans route them through CodeVector + dictionary
		// gathers), else fall back to a full value decode.
		materialized := false
		if df, can := c.frags[fi].(DictFragment); can {
			d, cd, isDict, err := df.MaterializeDict(r.cbuf)
			if err != nil {
				return nil, fmt.Errorf("colstore: column %s fragment %d: %w", c.Name, fi, err)
			}
			if isDict {
				r.cur, r.cbuf, r.dict, r.idx, r.rep = cd, cd, d, fi, repChunkDict
				k := int64(c.frags[fi].Rows())
				r.Stats.DecodedValues += k
				r.Stats.DecodedBytes += k * int64(codeWidth(cd))
				materialized = true
			}
		}
		if !materialized {
			if err := r.materializeValues(fi); err != nil {
				return nil, err
			}
		}
	}
	if r.rep == repValues {
		return vector.FromAny(c.vecType(), r.cur).Slice(lo-fs, hi-fs), nil
	}
	return r.gather(lo, hi, fs, sel)
}

// gather materializes string values of [lo,hi) from the cached code
// representation through the matching dictionary, restricted to sel.
func (r *FragReader) gather(lo, hi, fs int, sel []int32) (*vector.Vector, error) {
	values := r.dict
	if r.rep == repCodes {
		md := r.col.MergedDict()
		if md == nil {
			return nil, fmt.Errorf("colstore: column %s: codes cached without dictionary", r.col.Name)
		}
		values = md.Strings()
	}
	k := hi - lo
	if cap(r.sbuf) < k {
		r.sbuf = make([]string, k)
	}
	dst := r.sbuf[:k]
	off := lo - fs
	switch codes := r.cur.(type) {
	case []uint8:
		if sel == nil {
			for i := 0; i < k; i++ {
				dst[i] = values[codes[off+i]]
			}
		} else {
			for _, i := range sel {
				dst[i] = values[codes[off+int(i)]]
			}
		}
	case []uint16:
		if sel == nil {
			for i := 0; i < k; i++ {
				dst[i] = values[codes[off+i]]
			}
		} else {
			for _, i := range sel {
				dst[i] = values[codes[off+int(i)]]
			}
		}
	default:
		return nil, fmt.Errorf("colstore: column %s: unexpected code payload %T", r.col.Name, r.cur)
	}
	live := int64(k)
	if sel != nil {
		live = int64(len(sel))
	}
	r.Stats.DecodedValues += live
	r.Stats.DecodedBytes += live * 16
	r.Stats.SkippedValues += int64(k) - live
	r.Stats.SkippedBytes += (int64(k) - live) * 16
	v := vector.FromStrings(dst)
	v.Typ = r.col.vecType()
	return v, nil
}
