package colstore

import (
	"fmt"

	"x100/internal/vector"
)

// DefaultLocatorFrags is the decoded-fragment LRU capacity of a FragLocator
// when the caller does not choose one: enough that the clustered access
// patterns of positional fetch joins (join indices point at runs of nearby
// rows, enum dictionaries are a single fragment) stay cache-resident, small
// enough that the peak decoded footprint of a fetch operator stays a few
// chunks per column.
const DefaultLocatorFrags = 4

// FragLocator provides bounded-memory random access to a column: row ids
// map to (fragment, offset) by binary search over the fragment grid, and at
// most `cap` decoded fragments are held in a small MRU list. It is the
// non-pinning counterpart of FragReader for positional operators
// (Fetch1Join/FetchNJoin, the merged delta scan): disk-backed columns
// decode one chunk at a time through the ColumnBM buffer pool instead of
// materializing the whole column, so fetch joins against tables larger
// than RAM run within one-decoded-chunk-per-column (plus the LRU cap).
//
// A locator is single-goroutine, like FragReader; parallel plans build one
// per worker operator. Entries over in-memory fragments alias the
// fragment's own storage and cost no memory; entries over disk fragments
// own their decode buffer, which is recycled on eviction.
type FragLocator struct {
	col     *Column
	cap     int
	entries []locEntry // MRU order: entries[0] is the most recent
}

type locEntry struct {
	base, end int // global row range [base, end)
	data      any // materialized values
	scratch   bool
}

// Locator creates a fragment locator over the column. capacity is the
// decoded-fragment LRU size; <= 0 selects DefaultLocatorFrags.
func (c *Column) Locator(capacity int) *FragLocator {
	if capacity <= 0 {
		capacity = DefaultLocatorFrags
	}
	return &FragLocator{col: c, cap: capacity}
}

// Cached returns the number of decoded fragments currently held (always
// <= the locator's capacity — the memory bound fetch operators rely on).
func (l *FragLocator) Cached() int { return len(l.entries) }

// entryFor returns the cached entry of the fragment containing global row
// id, materializing (and possibly evicting) as needed.
func (l *FragLocator) entryFor(id int) (*locEntry, error) {
	for i := range l.entries {
		e := &l.entries[i]
		if id >= e.base && id < e.end {
			if i > 0 {
				hit := *e
				copy(l.entries[1:i+1], l.entries[:i])
				l.entries[0] = hit
			}
			return &l.entries[0], nil
		}
	}
	c := l.col
	if id < 0 || id >= c.n {
		return nil, fmt.Errorf("colstore: column %s: row id %d out of range [0,%d)", c.Name, id, c.n)
	}
	fi := c.fragIndex(id)
	// Reuse the evicted entry's decode buffer (if it owned one) for the
	// incoming fragment, so steady-state misses allocate nothing.
	var buf any
	if len(l.entries) >= l.cap {
		last := l.entries[len(l.entries)-1]
		if last.scratch {
			buf = last.data
		}
		l.entries = l.entries[:len(l.entries)-1]
	}
	data, scratch, err := c.frags[fi].Materialize(buf)
	if err != nil {
		return nil, fmt.Errorf("colstore: column %s fragment %d: %w", c.Name, fi, err)
	}
	l.entries = append(l.entries, locEntry{})
	copy(l.entries[1:], l.entries[:len(l.entries)-1])
	l.entries[0] = locEntry{base: c.starts[fi], end: c.starts[fi+1], data: data, scratch: scratch}
	return &l.entries[0], nil
}

// Gather copies the column's logical values at the given row ids into dst
// (enum codes decode through the dictionary), for the live positions: dst
// and ids are indexed by sel when non-nil, else by [0,n). It is the
// chunk-at-a-time replacement for the pinned gather of the fetch
// operators.
func (l *FragLocator) Gather(dst *vector.Vector, ids []int32, sel []int32, n int) error {
	c := l.col
	if c.Dict != nil {
		if c.Dict.Typ == vector.Float64 {
			return gatherEnumVia(l, dst.Float64s(), c.Dict.Floats(), ids, sel, n)
		}
		return gatherEnumVia(l, dst.Strings(), c.Dict.Strings(), ids, sel, n)
	}
	switch c.Typ.Physical() {
	case vector.Bool:
		return gatherVia(l, dst.Bools(), ids, sel, n)
	case vector.UInt8:
		return gatherVia(l, dst.UInt8s(), ids, sel, n)
	case vector.UInt16:
		return gatherVia(l, dst.UInt16s(), ids, sel, n)
	case vector.Int32:
		return gatherVia(l, dst.Int32s(), ids, sel, n)
	case vector.Int64:
		return gatherVia(l, dst.Int64s(), ids, sel, n)
	case vector.Float64:
		return gatherVia(l, dst.Float64s(), ids, sel, n)
	case vector.String:
		return gatherVia(l, dst.Strings(), ids, sel, n)
	default:
		return fmt.Errorf("colstore: cannot gather %v column %s", c.Typ, c.Name)
	}
}

// gatherVia is the plain-column gather loop: it tracks the current
// fragment's slice and bounds, so runs of clustered row ids cost one bounds
// check per value and fragment switches go through the locator's LRU.
func gatherVia[T any](l *FragLocator, dst []T, ids []int32, sel []int32, n int) error {
	var cur []T
	lo, hi := 0, 0
	if sel != nil {
		for _, i := range sel {
			id := int(ids[i])
			if id < lo || id >= hi {
				e, err := l.entryFor(id)
				if err != nil {
					return err
				}
				cur, lo, hi = e.data.([]T), e.base, e.end
			}
			dst[i] = cur[id-lo]
		}
		return nil
	}
	for i := 0; i < n; i++ {
		id := int(ids[i])
		if id < lo || id >= hi {
			e, err := l.entryFor(id)
			if err != nil {
				return err
			}
			cur, lo, hi = e.data.([]T), e.base, e.end
		}
		dst[i] = cur[id-lo]
	}
	return nil
}

// gatherEnumVia is the enum gather: the double indirection
// dict[codes[rowid]] of the paper's map_fetch primitives, with the code
// fragment resolved through the locator.
func gatherEnumVia[T any](l *FragLocator, dst []T, dict []T, ids []int32, sel []int32, n int) error {
	switch l.col.phys {
	case vector.UInt8:
		return gatherCodesVia[T, uint8](l, dst, dict, ids, sel, n)
	case vector.UInt16:
		return gatherCodesVia[T, uint16](l, dst, dict, ids, sel, n)
	default:
		return fmt.Errorf("colstore: enum column %s has code type %v", l.col.Name, l.col.phys)
	}
}

func gatherCodesVia[T any, C uint8 | uint16](l *FragLocator, dst []T, dict []T, ids []int32, sel []int32, n int) error {
	var cur []C
	lo, hi := 0, 0
	if sel != nil {
		for _, i := range sel {
			id := int(ids[i])
			if id < lo || id >= hi {
				e, err := l.entryFor(id)
				if err != nil {
					return err
				}
				cur, lo, hi = e.data.([]C), e.base, e.end
			}
			dst[i] = dict[cur[id-lo]]
		}
		return nil
	}
	for i := 0; i < n; i++ {
		id := int(ids[i])
		if id < lo || id >= hi {
			e, err := l.entryFor(id)
			if err != nil {
				return err
			}
			cur, lo, hi = e.data.([]C), e.base, e.end
		}
		dst[i] = dict[cur[id-lo]]
	}
	return nil
}

// Value returns the boxed logical value at a row id, decoding enum codes
// (value-at-a-time path: the merged delta scan and delta-aware fetches).
func (l *FragLocator) Value(id int) (any, error) {
	e, err := l.entryFor(id)
	if err != nil {
		return nil, err
	}
	c := l.col
	if c.Dict != nil {
		code := 0
		switch d := e.data.(type) {
		case []uint8:
			code = int(d[id-e.base])
		case []uint16:
			code = int(d[id-e.base])
		default:
			return nil, fmt.Errorf("colstore: enum column %s has payload %T", c.Name, e.data)
		}
		return c.Dict.decoded(code), nil
	}
	return vector.FromAny(c.Typ, e.data).Value(id - e.base), nil
}

// PhysValue returns the boxed physical value at a row id (the code for
// enum columns).
func (l *FragLocator) PhysValue(id int) (any, error) {
	e, err := l.entryFor(id)
	if err != nil {
		return nil, err
	}
	return vector.FromAny(l.col.vecType(), e.data).Value(id - e.base), nil
}
