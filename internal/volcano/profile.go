package volcano

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile is the gprof-style per-function profiler used to regenerate
// Table 2: call counts and cumulative self time per interpreter function.
// Like gprof, instrumentation itself adds per-call overhead; profiled runs
// are for shape analysis, unprofiled runs for timing (Table 1).
type Profile struct {
	funcs map[string]*FuncStat
	order []string
	total time.Duration
	stack []frame
}

type frame struct {
	stat    *FuncStat
	start   time.Time
	childNs int64
}

// FuncStat accumulates one function's counters.
type FuncStat struct {
	Name  string
	Calls int64
	Nanos int64
}

// NsPerCall returns the average time per call.
func (f *FuncStat) NsPerCall() float64 {
	if f.Calls == 0 {
		return 0
	}
	return float64(f.Nanos) / float64(f.Calls)
}

// NewProfile creates an empty profile.
func NewProfile() *Profile {
	return &Profile{funcs: make(map[string]*FuncStat)}
}

// enter records entry into a named function; the returned closure records
// the exit. Time is attributed exclusively (self time, like gprof's
// "excl." column): a nested call's duration is subtracted from its parent.
// A nil profile is a no-op.
func (p *Profile) enter(name string) func() {
	if p == nil {
		return func() {}
	}
	s, ok := p.funcs[name]
	if !ok {
		s = &FuncStat{Name: name}
		p.funcs[name] = s
		p.order = append(p.order, name)
	}
	s.Calls++
	p.stack = append(p.stack, frame{stat: s, start: time.Now()})
	return func() {
		top := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		elapsed := time.Since(top.start).Nanoseconds()
		top.stat.Nanos += elapsed - top.childNs
		if len(p.stack) > 0 {
			p.stack[len(p.stack)-1].childNs += elapsed
		}
	}
}

// SetTotal records the total query time for percentage columns.
func (p *Profile) SetTotal(d time.Duration) { p.total = d }

// Stats returns the per-function counters sorted by descending self time.
func (p *Profile) Stats() []*FuncStat {
	out := make([]*FuncStat, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.funcs[n])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nanos > out[j].Nanos })
	return out
}

// Render formats the profile in the layout of the paper's Table 2: cum.%,
// excl.%, calls, avg ns/call, function name.
func (p *Profile) Render() string {
	var b strings.Builder
	stats := p.Stats()
	var totalNs int64
	for _, s := range stats {
		totalNs += s.Nanos
	}
	if p.total > 0 {
		totalNs = p.total.Nanoseconds()
	}
	fmt.Fprintf(&b, "%6s %6s %12s %10s  %s\n", "cum.", "excl.", "calls", "ns/call", "function")
	cum := 0.0
	for _, s := range stats {
		pct := 0.0
		if totalNs > 0 {
			pct = 100 * float64(s.Nanos) / float64(totalNs)
		}
		cum += pct
		fmt.Fprintf(&b, "%5.1f%% %5.1f%% %12d %10.0f  %s\n", cum, pct, s.Calls, s.NsPerCall(), s.Name)
	}
	return b.String()
}
