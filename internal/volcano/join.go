package volcano

import (
	"fmt"

	"x100/internal/algebra"
	"x100/internal/core"
	"x100/internal/vector"
)

// joinOp is the tuple-at-a-time hash join (and nested-loop cross product
// when no equi-conditions are given). The right side is materialized into a
// boxed-row hash table; each left tuple probes it with an encoded key.
type joinOp struct {
	eng    *Engine
	left   Operator
	right  Operator
	node   *algebra.Join
	schema vector.Schema

	lKeyIdx  []int
	rKeyIdx  []int
	residual *item

	built    bool
	table    map[string][]Row
	rightAll []Row
	rWidth   int

	pending []Row
	keyBuf  []byte
}

func newJoin(e *Engine, l, r Operator, n *algebra.Join) (*joinOp, error) {
	op := &joinOp{eng: e, left: l, right: r, node: n}
	ls, rs := l.Schema(), r.Schema()
	for _, c := range n.On {
		li, ri := ls.ColIndex(c.L), rs.ColIndex(c.R)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("volcano: join key %s=%s not found", c.L, c.R)
		}
		op.lKeyIdx = append(op.lKeyIdx, li)
		op.rKeyIdx = append(op.rKeyIdx, ri)
	}
	switch n.Kind {
	case algebra.Semi, algebra.Anti:
		op.schema = ls.Clone()
	case algebra.Mark:
		op.schema = append(ls.Clone(), vector.Field{Name: n.MarkCol, Type: vector.Bool})
	default:
		op.schema = append(ls.Clone(), rs.Clone()...)
	}
	op.rWidth = len(rs)
	if n.Residual != nil {
		combined := append(ls.Clone(), rs.Clone()...)
		it, err := e.buildItem(n.Residual, combined)
		if err != nil {
			return nil, err
		}
		op.residual = it
	}
	return op, nil
}

func (j *joinOp) Schema() vector.Schema { return j.schema }

func (j *joinOp) Open() error {
	j.built = false
	j.pending = nil
	j.table = nil
	j.rightAll = nil
	if err := j.left.Open(); err != nil {
		return err
	}
	return j.right.Open()
}

func (j *joinOp) Close() error {
	if err := j.left.Close(); err != nil {
		j.right.Close()
		return err
	}
	return j.right.Close()
}

func (j *joinOp) build() error {
	j.table = make(map[string][]Row)
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if len(j.node.On) == 0 {
			j.rightAll = append(j.rightAll, row)
			continue
		}
		key := j.encodeKey(row, j.rKeyIdx)
		j.table[key] = append(j.table[key], row)
	}
	j.built = true
	return nil
}

func (j *joinOp) encodeKey(row Row, idx []int) string {
	j.keyBuf = j.keyBuf[:0]
	for _, i := range idx {
		j.keyBuf = appendField(j.keyBuf, row[i])
	}
	return string(j.keyBuf)
}

func (j *joinOp) residualOK(l, r Row) bool {
	if j.residual == nil {
		return true
	}
	combined := make(Row, 0, len(l)+len(r))
	combined = append(combined, l...)
	combined = append(combined, r...)
	return j.residual.eval(combined).(bool)
}

func (j *joinOp) Next() (Row, bool, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, false, err
		}
	}
	for {
		if len(j.pending) > 0 {
			row := j.pending[0]
			j.pending = j.pending[1:]
			return row, true, nil
		}
		l, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		var candidates []Row
		if len(j.node.On) == 0 {
			candidates = j.rightAll
		} else {
			candidates = j.table[j.encodeKey(l, j.lKeyIdx)]
		}
		matched := false
		for _, r := range candidates {
			if !j.residualOK(l, r) {
				continue
			}
			matched = true
			if j.node.Kind == algebra.Inner || j.node.Kind == algebra.LeftOuter {
				combined := make(Row, 0, len(l)+len(r))
				combined = append(combined, l...)
				combined = append(combined, r...)
				j.pending = append(j.pending, combined)
			} else {
				break
			}
		}
		switch j.node.Kind {
		case algebra.LeftOuter:
			if !matched {
				combined := make(Row, len(l)+j.rWidth)
				copy(combined, l)
				for i := 0; i < j.rWidth; i++ {
					combined[len(l)+i] = zeroOf(j.schema[len(l)+i].Type)
				}
				j.pending = append(j.pending, combined)
			}
		case algebra.Semi:
			if matched {
				return l, true, nil
			}
		case algebra.Anti:
			if !matched {
				return l, true, nil
			}
		case algebra.Mark:
			out := make(Row, len(l)+1)
			copy(out, l)
			out[len(l)] = matched
			return out, true, nil
		}
	}
}

// fetch1Op fetches referenced-table columns by row id, one tuple at a time.
type fetch1Op struct {
	eng    *Engine
	input  Operator
	node   *algebra.Fetch1Join
	rowID  *item
	cols   []func(int) any
	schema vector.Schema
}

func newFetch1(e *Engine, in Operator, n *algebra.Fetch1Join) (*fetch1Op, error) {
	t, err := e.DB.Table(n.Table)
	if err != nil {
		return nil, err
	}
	it, err := e.buildItem(n.RowID, in.Schema())
	if err != nil {
		return nil, err
	}
	op := &fetch1Op{eng: e, input: in, node: n, rowID: it, schema: in.Schema().Clone()}
	for i, cname := range n.Cols {
		col := t.Col(cname)
		if col == nil {
			return nil, fmt.Errorf("volcano: table %s has no column %q", n.Table, cname)
		}
		if _, err := col.Pin(); err != nil {
			return nil, fmt.Errorf("volcano: fetch %s.%s: %w", n.Table, cname, err)
		}
		cc := col
		op.cols = append(op.cols, func(r int) any { return cc.DecodedValue(r) })
		name := cname
		if i < len(n.As) && n.As[i] != "" {
			name = n.As[i]
		}
		op.schema = append(op.schema, vector.Field{Name: name, Type: col.Typ})
	}
	return op, nil
}

func (f *fetch1Op) Schema() vector.Schema { return f.schema }
func (f *fetch1Op) Open() error           { return f.input.Open() }
func (f *fetch1Op) Close() error          { return f.input.Close() }

func (f *fetch1Op) Next() (Row, bool, error) {
	row, ok, err := f.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	id := int(f.rowID.eval(row).(int32))
	out := make(Row, 0, len(f.schema))
	out = append(out, row...)
	p := f.eng.Profile
	for _, g := range f.cols {
		d := p.enter("rec_get_nth_field")
		out = append(out, g(id))
		d()
	}
	return out, true, nil
}

// fetchNOp expands each input row into its referenced-table range.
type fetchNOp struct {
	eng      *Engine
	input    Operator
	node     *algebra.FetchNJoin
	starts   []int32
	cols     []func(int) any
	schema   vector.Schema
	rangeIdx int

	cur   Row
	curLo int32
	curHi int32
}

func newFetchN(e *Engine, in Operator, n *algebra.FetchNJoin) (*fetchNOp, error) {
	t, err := e.DB.Table(n.Table)
	if err != nil {
		return nil, err
	}
	ri := e.DB.RangeIndexAny(n.Table)
	if ri == nil {
		return nil, fmt.Errorf("volcano: no range index registered for %s", n.Table)
	}
	rc := in.Schema().ColIndex(n.RangeOf)
	if rc < 0 {
		return nil, fmt.Errorf("volcano: input has no column %q", n.RangeOf)
	}
	op := &fetchNOp{eng: e, input: in, node: n, starts: ri.Starts, rangeIdx: rc, schema: in.Schema().Clone()}
	for i, cname := range n.Cols {
		col := t.Col(cname)
		if col == nil {
			return nil, fmt.Errorf("volcano: table %s has no column %q", n.Table, cname)
		}
		if _, err := col.Pin(); err != nil {
			return nil, fmt.Errorf("volcano: fetch %s.%s: %w", n.Table, cname, err)
		}
		cc := col
		op.cols = append(op.cols, func(r int) any { return cc.DecodedValue(r) })
		name := cname
		if i < len(n.As) && n.As[i] != "" {
			name = n.As[i]
		}
		op.schema = append(op.schema, vector.Field{Name: name, Type: col.Typ})
	}
	return op, nil
}

func (f *fetchNOp) Schema() vector.Schema { return f.schema }
func (f *fetchNOp) Open() error           { f.cur = nil; return f.input.Open() }
func (f *fetchNOp) Close() error          { return f.input.Close() }

func (f *fetchNOp) Next() (Row, bool, error) {
	for {
		if f.cur == nil {
			row, ok, err := f.input.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			id := row[f.rangeIdx].(int32)
			f.cur = row
			f.curLo, f.curHi = f.starts[id], f.starts[id+1]
		}
		if f.curLo >= f.curHi {
			f.cur = nil
			continue
		}
		r := int(f.curLo)
		f.curLo++
		out := make(Row, 0, len(f.schema))
		out = append(out, f.cur...)
		for _, g := range f.cols {
			out = append(out, g(r))
		}
		return out, true, nil
	}
}

var _ = core.DictSuffix
