package volcano

import (
	"encoding/binary"
	"fmt"
	"math"

	"x100/internal/dateutil"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// item is one node of the interpreted expression tree: the analogue of
// MySQL's Item classes. Each eval is a dynamic call per tuple; with
// profiling enabled each call is also counted and timed under its
// MySQL-style name (Item_func_plus::val and friends), which regenerates the
// gprof trace of Table 2.
type item struct {
	name string
	eval func(Row) any
}

func (e *Engine) wrap(name string, fn func(Row) any) *item {
	p := e.Profile
	if p == nil {
		return &item{name: name, eval: fn}
	}
	return &item{name: name, eval: func(r Row) any {
		done := p.enter(name)
		v := fn(r)
		done()
		return v
	}}
}

func (e *Engine) buildItem(x expr.Expr, schema vector.Schema) (*item, error) {
	switch n := x.(type) {
	case *expr.Col:
		i := schema.ColIndex(n.Name)
		if i < 0 {
			return nil, fmt.Errorf("volcano: unknown column %q", n.Name)
		}
		return e.wrap("Item_field::val", func(r Row) any { return r[i] }), nil
	case *expr.Const:
		v := n.Val
		return &item{name: "Item_literal", eval: func(Row) any { return v }}, nil
	case *expr.Bin:
		t, err := x.Type(schema)
		if err != nil {
			return nil, err
		}
		l, err := e.buildItem(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := e.buildItem(n.R, schema)
		if err != nil {
			return nil, err
		}
		name := "Item_func_" + binName(n.Op) + "::val"
		switch t.Physical() {
		case vector.Float64:
			return e.wrap(name, binEval[float64](n.Op, l, r)), nil
		case vector.Int64:
			return e.wrap(name, binEval[int64](n.Op, l, r)), nil
		case vector.Int32:
			return e.wrap(name, binEval[int32](n.Op, l, r)), nil
		}
		return nil, fmt.Errorf("volcano: arithmetic on %v", t)
	case *expr.Cmp:
		lt, err := n.L.Type(schema)
		if err != nil {
			return nil, err
		}
		l, err := e.buildItem(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := e.buildItem(n.R, schema)
		if err != nil {
			return nil, err
		}
		name := "Item_func_" + cmpName(n.Op) + "::val"
		switch lt.Physical() {
		case vector.Float64:
			return e.wrap(name, cmpEval[float64](n.Op, l, r)), nil
		case vector.Int64:
			return e.wrap(name, cmpEval[int64](n.Op, l, r)), nil
		case vector.Int32:
			return e.wrap(name, cmpEval[int32](n.Op, l, r)), nil
		case vector.String:
			return e.wrap(name, cmpEval[string](n.Op, l, r)), nil
		case vector.UInt8:
			return e.wrap(name, cmpEval[uint8](n.Op, l, r)), nil
		case vector.UInt16:
			return e.wrap(name, cmpEval[uint16](n.Op, l, r)), nil
		case vector.Bool:
			eq := n.Op == expr.EQ
			return e.wrap(name, func(row Row) any {
				return (l.eval(row).(bool) == r.eval(row).(bool)) == eq
			}), nil
		}
		return nil, fmt.Errorf("volcano: comparison on %v", lt)
	case *expr.And:
		items, err := e.buildItems(n.Args, schema)
		if err != nil {
			return nil, err
		}
		return e.wrap("Item_cond_and::val", func(r Row) any {
			for _, it := range items {
				if !it.eval(r).(bool) {
					return false
				}
			}
			return true
		}), nil
	case *expr.Or:
		items, err := e.buildItems(n.Args, schema)
		if err != nil {
			return nil, err
		}
		return e.wrap("Item_cond_or::val", func(r Row) any {
			for _, it := range items {
				if it.eval(r).(bool) {
					return true
				}
			}
			return false
		}), nil
	case *expr.Not:
		a, err := e.buildItem(n.Arg, schema)
		if err != nil {
			return nil, err
		}
		return e.wrap("Item_func_not::val", func(r Row) any { return !a.eval(r).(bool) }), nil
	case *expr.Cast:
		a, err := e.buildItem(n.Arg, schema)
		if err != nil {
			return nil, err
		}
		to := n.To
		return e.wrap("Item_func_cast::val", func(r Row) any { return convertAny(a.eval(r), to) }), nil
	case *expr.Like:
		a, err := e.buildItem(n.Arg, schema)
		if err != nil {
			return nil, err
		}
		m := primitives.CompileLike(n.Pattern)
		neg := n.Negate
		return e.wrap("Item_func_like::val", func(r Row) any {
			return m.Match(a.eval(r).(string)) != neg
		}), nil
	case *expr.In:
		a, err := e.buildItem(n.Arg, schema)
		if err != nil {
			return nil, err
		}
		set := make(map[any]struct{}, len(n.List))
		for _, c := range n.List {
			set[c.Val] = struct{}{}
		}
		return e.wrap("Item_func_in::val", func(r Row) any {
			_, ok := set[a.eval(r)]
			return ok
		}), nil
	case *expr.Case:
		cond, err := e.buildItem(n.Cond, schema)
		if err != nil {
			return nil, err
		}
		th, err := e.buildItem(n.Then, schema)
		if err != nil {
			return nil, err
		}
		el, err := e.buildItem(n.Else, schema)
		if err != nil {
			return nil, err
		}
		return e.wrap("Item_func_case::val", func(r Row) any {
			if cond.eval(r).(bool) {
				return th.eval(r)
			}
			return el.eval(r)
		}), nil
	case *expr.Func:
		return e.buildFuncItem(n, schema)
	default:
		return nil, fmt.Errorf("volcano: cannot interpret %T", x)
	}
}

func (e *Engine) buildItems(xs []expr.Expr, schema vector.Schema) ([]*item, error) {
	out := make([]*item, len(xs))
	for i, x := range xs {
		it, err := e.buildItem(x, schema)
		if err != nil {
			return nil, err
		}
		out[i] = it
	}
	return out, nil
}

func (e *Engine) buildFuncItem(n *expr.Func, schema vector.Schema) (*item, error) {
	switch n.Kind {
	case expr.FuncYear:
		a, err := e.buildItem(n.Args[0], schema)
		if err != nil {
			return nil, err
		}
		return e.wrap("Item_func_year::val", func(r Row) any {
			return dateutil.Year(a.eval(r).(int32))
		}), nil
	case expr.FuncSquare:
		t, err := n.Args[0].Type(schema)
		if err != nil {
			return nil, err
		}
		a, err := e.buildItem(n.Args[0], schema)
		if err != nil {
			return nil, err
		}
		switch t.Physical() {
		case vector.Float64:
			return e.wrap("Item_func_square::val", func(r Row) any {
				v := a.eval(r).(float64)
				return v * v
			}), nil
		case vector.Int64:
			return e.wrap("Item_func_square::val", func(r Row) any {
				v := a.eval(r).(int64)
				return v * v
			}), nil
		case vector.Int32:
			return e.wrap("Item_func_square::val", func(r Row) any {
				v := a.eval(r).(int32)
				return v * v
			}), nil
		}
		return nil, fmt.Errorf("volcano: square on %v", t)
	case expr.FuncSubstr:
		a, err := e.buildItem(n.Args[0], schema)
		if err != nil {
			return nil, err
		}
		start, length := n.Start, n.Length
		return e.wrap("Item_func_substr::val", func(r Row) any {
			s := a.eval(r).(string)
			lo := start - 1
			if lo < 0 {
				lo = 0
			}
			if lo > len(s) {
				lo = len(s)
			}
			hi := lo + length
			if hi > len(s) {
				hi = len(s)
			}
			return s[lo:hi]
		}), nil
	case expr.FuncConcat:
		a, err := e.buildItem(n.Args[0], schema)
		if err != nil {
			return nil, err
		}
		b, err := e.buildItem(n.Args[1], schema)
		if err != nil {
			return nil, err
		}
		return e.wrap("Item_func_concat::val", func(r Row) any {
			return a.eval(r).(string) + b.eval(r).(string)
		}), nil
	default:
		return nil, fmt.Errorf("volcano: unknown function kind %d", n.Kind)
	}
}

func binName(op expr.BinKind) string {
	switch op {
	case expr.Add:
		return "plus"
	case expr.Sub:
		return "minus"
	case expr.Mul:
		return "mul"
	default:
		return "div"
	}
}

func cmpName(op expr.CmpKind) string {
	switch op {
	case expr.LT:
		return "lt"
	case expr.LE:
		return "le"
	case expr.GT:
		return "gt"
	case expr.GE:
		return "ge"
	case expr.EQ:
		return "eq"
	default:
		return "ne"
	}
}

func binEval[T int32 | int64 | float64](op expr.BinKind, l, r *item) func(Row) any {
	switch op {
	case expr.Add:
		return func(row Row) any { return l.eval(row).(T) + r.eval(row).(T) }
	case expr.Sub:
		return func(row Row) any { return l.eval(row).(T) - r.eval(row).(T) }
	case expr.Mul:
		return func(row Row) any { return l.eval(row).(T) * r.eval(row).(T) }
	default:
		return func(row Row) any { return l.eval(row).(T) / r.eval(row).(T) }
	}
}

func cmpEval[T int32 | int64 | float64 | string | uint8 | uint16](op expr.CmpKind, l, r *item) func(Row) any {
	switch op {
	case expr.LT:
		return func(row Row) any { return l.eval(row).(T) < r.eval(row).(T) }
	case expr.LE:
		return func(row Row) any { return l.eval(row).(T) <= r.eval(row).(T) }
	case expr.GT:
		return func(row Row) any { return l.eval(row).(T) > r.eval(row).(T) }
	case expr.GE:
		return func(row Row) any { return l.eval(row).(T) >= r.eval(row).(T) }
	case expr.EQ:
		return func(row Row) any { return l.eval(row).(T) == r.eval(row).(T) }
	default:
		return func(row Row) any { return l.eval(row).(T) != r.eval(row).(T) }
	}
}

func convertAny(v any, to vector.Type) any {
	var f float64
	switch x := v.(type) {
	case int32:
		f = float64(x)
	case int64:
		f = float64(x)
	case float64:
		f = x
	case uint8:
		f = float64(x)
	case uint16:
		f = float64(x)
	}
	switch to.Physical() {
	case vector.Int32:
		return int32(f)
	case vector.Int64:
		return int64(f)
	default:
		return f
	}
}

// --- byte-record marshalling (MySQL record format stand-in) ---

func appendField(rec []byte, v any) []byte {
	switch x := v.(type) {
	case bool:
		if x {
			return append(rec, 1)
		}
		return append(rec, 0)
	case uint8:
		return append(rec, x)
	case uint16:
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], x)
		return append(rec, b[:]...)
	case int32:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		return append(rec, b[:]...)
	case int64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		return append(rec, b[:]...)
	case float64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		return append(rec, b[:]...)
	case string:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(x)))
		rec = append(rec, b[:]...)
		return append(rec, x...)
	default:
		panic(fmt.Sprintf("volcano: cannot marshal %T", v))
	}
}

func readField(rec []byte, off int, t vector.Type) (any, int) {
	switch t.Physical() {
	case vector.Bool:
		return rec[off] != 0, off + 1
	case vector.UInt8:
		return rec[off], off + 1
	case vector.UInt16:
		return binary.LittleEndian.Uint16(rec[off:]), off + 2
	case vector.Int32:
		return int32(binary.LittleEndian.Uint32(rec[off:])), off + 4
	case vector.Int64:
		return int64(binary.LittleEndian.Uint64(rec[off:])), off + 8
	case vector.Float64:
		return math.Float64frombits(binary.LittleEndian.Uint64(rec[off:])), off + 8
	case vector.String:
		n := int(binary.LittleEndian.Uint32(rec[off:]))
		off += 4
		return string(rec[off : off+n]), off + n
	default:
		panic(fmt.Sprintf("volcano: cannot unmarshal %v", t))
	}
}
