// Package volcano implements the tuple-at-a-time baseline engine of the
// paper's Section 3.1: a classical Volcano iterator interpreter in the
// style of MySQL. Every operator's Next returns a single boxed row; every
// expression node costs one dynamic call per tuple (the Item_func_plus::val
// architecture of Table 2); and the scan marshals each tuple through a
// byte-record representation, paying the rec_get_nth_field-style
// record-navigation cost that dominates MySQL's profile.
//
// The engine executes the same algebra plans as the X100 and MIL engines,
// which makes the three directly comparable (Table 1) and differentially
// testable. With a non-nil Profile it produces a gprof-style per-function
// trace reproducing the shape of Table 2.
package volcano

import (
	"fmt"
	"sort"

	"x100/internal/algebra"
	"x100/internal/core"
	"x100/internal/vector"
)

// Row is one boxed tuple.
type Row = []any

// Operator is the tuple-at-a-time iterator interface.
type Operator interface {
	Open() error
	Next() (Row, bool, error)
	Close() error
	Schema() vector.Schema
}

// Engine executes algebra plans tuple-at-a-time.
type Engine struct {
	DB      *core.Database
	Profile *Profile // nil disables instrumentation
}

// New creates an engine without profiling.
func New(db *core.Database) *Engine { return &Engine{DB: db} }

// Run executes a plan to completion.
func (e *Engine) Run(plan algebra.Node) (*core.Result, error) {
	schema, err := plan.Out(e.DB)
	if err != nil {
		return nil, err
	}
	op, err := e.build(plan)
	if err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	res := &core.Result{Schema: schema}
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.AppendRow(row)
	}
	return res, nil
}

func (e *Engine) build(plan algebra.Node) (Operator, error) {
	switch n := plan.(type) {
	case *algebra.Scan:
		return newScan(e, n)
	case *algebra.Select:
		in, err := e.build(n.Input)
		if err != nil {
			return nil, err
		}
		it, err := e.buildItem(n.Pred, in.Schema())
		if err != nil {
			return nil, err
		}
		return &selectOp{input: in, pred: it}, nil
	case *algebra.Project:
		in, err := e.build(n.Input)
		if err != nil {
			return nil, err
		}
		return newProject(e, in, n)
	case *algebra.Aggr:
		in, err := e.build(n.Input)
		if err != nil {
			return nil, err
		}
		return newAggr(e, in, n)
	case *algebra.Join:
		l, err := e.build(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.build(n.Right)
		if err != nil {
			return nil, err
		}
		return newJoin(e, l, r, n)
	case *algebra.Fetch1Join:
		in, err := e.build(n.Input)
		if err != nil {
			return nil, err
		}
		return newFetch1(e, in, n)
	case *algebra.FetchNJoin:
		in, err := e.build(n.Input)
		if err != nil {
			return nil, err
		}
		return newFetchN(e, in, n)
	case *algebra.Order:
		in, err := e.build(n.Input)
		if err != nil {
			return nil, err
		}
		return newOrder(e, in, n.Keys, 0)
	case *algebra.TopN:
		in, err := e.build(n.Input)
		if err != nil {
			return nil, err
		}
		return newOrder(e, in, n.Keys, n.N)
	case *algebra.Array:
		return newArray(n), nil
	default:
		return nil, fmt.Errorf("volcano: cannot build %T", plan)
	}
}

// --- scan with record marshalling ---

type scanOp struct {
	eng    *Engine
	schema vector.Schema
	get    []func(rowID int) any
	n      int
	pos    int
	record []byte
}

func newScan(e *Engine, n *algebra.Scan) (*scanOp, error) {
	t, err := e.DB.Table(n.Table)
	if err != nil {
		return nil, err
	}
	ds, err := e.DB.Delta(n.Table)
	if err != nil {
		return nil, err
	}
	if ds.NumDeleted() > 0 || ds.NumDeltaRows() > 0 {
		return nil, fmt.Errorf("volcano: table %s has pending deltas; reorganize first", n.Table)
	}
	cols := n.Cols
	if len(cols) == 0 {
		for _, c := range t.Cols {
			cols = append(cols, c.Name)
		}
	}
	op := &scanOp{eng: e, n: t.N}
	for _, name := range cols {
		switch {
		case name == algebra.RowIDCol:
			op.schema = append(op.schema, vector.Field{Name: name, Type: vector.Int32})
			op.get = append(op.get, func(r int) any { return int32(r) })
		case len(name) > 1 && name[len(name)-1] == '#':
			c := t.Col(name[:len(name)-1])
			if c == nil || !c.IsEnum() {
				return nil, fmt.Errorf("volcano: %s.%s is not an enum column", n.Table, name)
			}
			if _, err := c.Pin(); err != nil {
				return nil, fmt.Errorf("volcano: scan %s.%s: %w", n.Table, name, err)
			}
			v := c.VectorAt(0, t.N)
			op.schema = append(op.schema, vector.Field{Name: name, Type: c.PhysType()})
			op.get = append(op.get, func(r int) any { return v.Value(r) })
		default:
			c := t.Col(name)
			if c == nil {
				return nil, fmt.Errorf("volcano: table %s has no column %q", n.Table, name)
			}
			// Pin with a returned error here so the per-tuple DecodedValue
			// closures can never hit a disk fault mid-scan.
			if _, err := c.Pin(); err != nil {
				return nil, fmt.Errorf("volcano: scan %s.%s: %w", n.Table, name, err)
			}
			cc := c
			op.schema = append(op.schema, vector.Field{Name: name, Type: c.Typ})
			op.get = append(op.get, func(r int) any { return cc.DecodedValue(r) })
		}
	}
	return op, nil
}

func (s *scanOp) Schema() vector.Schema { return s.schema }
func (s *scanOp) Open() error           { s.pos = 0; return nil }
func (s *scanOp) Close() error          { return nil }

func (s *scanOp) Next() (Row, bool, error) {
	if s.pos >= s.n {
		return nil, false, nil
	}
	r := s.pos
	s.pos++
	// Marshal the tuple into a byte record, then unmarshal each field —
	// MySQL's row_sel_store_mysql_rec / rec_get_nth_field round trip.
	p := s.eng.Profile
	done := p.enter("row_sel_store_mysql_rec")
	s.record = s.record[:0]
	for _, g := range s.get {
		s.record = appendField(s.record, g(r))
	}
	done()
	row := make(Row, len(s.get))
	off := 0
	for i := range row {
		d2 := p.enter("rec_get_nth_field")
		row[i], off = readField(s.record, off, s.schema[i].Type)
		d2()
	}
	return row, true, nil
}

// --- select / project ---

type selectOp struct {
	input Operator
	pred  *item
}

func (s *selectOp) Schema() vector.Schema { return s.input.Schema() }
func (s *selectOp) Open() error           { return s.input.Open() }
func (s *selectOp) Close() error          { return s.input.Close() }

func (s *selectOp) Next() (Row, bool, error) {
	for {
		row, ok, err := s.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if s.pred.eval(row).(bool) {
			return row, true, nil
		}
	}
}

type projectOp struct {
	input  Operator
	items  []*item
	schema vector.Schema
}

func newProject(e *Engine, in Operator, n *algebra.Project) (*projectOp, error) {
	p := &projectOp{input: in}
	for _, ne := range n.Exprs {
		it, err := e.buildItem(ne.E, in.Schema())
		if err != nil {
			return nil, err
		}
		t, err := ne.E.Type(in.Schema())
		if err != nil {
			return nil, err
		}
		p.items = append(p.items, it)
		p.schema = append(p.schema, vector.Field{Name: ne.Alias, Type: t})
	}
	return p, nil
}

func (p *projectOp) Schema() vector.Schema { return p.schema }
func (p *projectOp) Open() error           { return p.input.Open() }
func (p *projectOp) Close() error          { return p.input.Close() }

func (p *projectOp) Next() (Row, bool, error) {
	row, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.items))
	for i, it := range p.items {
		out[i] = it.eval(row)
	}
	return out, true, nil
}

// --- order / topN / array ---

type orderOp struct {
	eng     *Engine
	input   Operator
	keys    []algebra.OrdExpr
	items   []*item
	limit   int
	rows    []Row
	keyVals [][]any
	pos     int
	done    bool
}

func newOrder(e *Engine, in Operator, keys []algebra.OrdExpr, limit int) (*orderOp, error) {
	op := &orderOp{eng: e, input: in, keys: keys, limit: limit}
	for _, k := range keys {
		it, err := e.buildItem(k.E, in.Schema())
		if err != nil {
			return nil, err
		}
		op.items = append(op.items, it)
	}
	return op, nil
}

func (o *orderOp) Schema() vector.Schema { return o.input.Schema() }
func (o *orderOp) Open() error           { o.done = false; o.pos = 0; o.rows = nil; return o.input.Open() }
func (o *orderOp) Close() error          { return o.input.Close() }

func (o *orderOp) Next() (Row, bool, error) {
	if !o.done {
		for {
			row, ok, err := o.input.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			keys := make([]any, len(o.items))
			for i, it := range o.items {
				keys[i] = it.eval(row)
			}
			o.rows = append(o.rows, row)
			o.keyVals = append(o.keyVals, keys)
		}
		idx := make([]int, len(o.rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := o.keyVals[idx[a]], o.keyVals[idx[b]]
			for i := range o.keys {
				c := compareAny(ka[i], kb[i])
				if c == 0 {
					continue
				}
				if o.keys[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([]Row, len(idx))
		for i, j := range idx {
			sorted[i] = o.rows[j]
		}
		o.rows = sorted
		if o.limit > 0 && len(o.rows) > o.limit {
			o.rows = o.rows[:o.limit]
		}
		o.done = true
	}
	if o.pos >= len(o.rows) {
		return nil, false, nil
	}
	r := o.rows[o.pos]
	o.pos++
	return r, true, nil
}

func compareAny(a, b any) int {
	switch x := a.(type) {
	case int32:
		return cmp3(x, b.(int32))
	case int64:
		return cmp3(x, b.(int64))
	case float64:
		return cmp3(x, b.(float64))
	case string:
		return cmp3(x, b.(string))
	case uint8:
		return cmp3(x, b.(uint8))
	case uint16:
		return cmp3(x, b.(uint16))
	case bool:
		y := b.(bool)
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	default:
		panic(fmt.Sprintf("volcano: cannot compare %T", a))
	}
}

func cmp3[T int32 | int64 | float64 | string | uint8 | uint16](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

type arrayOp struct {
	dims   []int
	schema vector.Schema
	total  int
	pos    int
}

func newArray(n *algebra.Array) *arrayOp {
	total := 1
	op := &arrayOp{dims: n.Dims}
	for i, d := range n.Dims {
		total *= d
		op.schema = append(op.schema, vector.Field{Name: fmt.Sprintf("dim%d", i), Type: vector.Int32})
	}
	if len(n.Dims) == 0 {
		total = 0
	}
	op.total = total
	return op
}

func (a *arrayOp) Schema() vector.Schema { return a.schema }
func (a *arrayOp) Open() error           { a.pos = 0; return nil }
func (a *arrayOp) Close() error          { return nil }

func (a *arrayOp) Next() (Row, bool, error) {
	if a.pos >= a.total {
		return nil, false, nil
	}
	row := make(Row, len(a.dims))
	idx := a.pos
	for d := 0; d < len(a.dims); d++ {
		row[d] = int32(idx % a.dims[d])
		idx /= a.dims[d]
	}
	a.pos++
	return row, true, nil
}
