package volcano

import (
	"strings"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/core"
	"x100/internal/expr"
	"x100/internal/vector"
)

func volDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	tab := colstore.NewTable("t")
	if err := tab.AddColumn("a", vector.Float64, []float64{5, 1, 4, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("g", []string{"p", "q", "p", "q", "p"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("d", vector.Date, []int32{10, 20, 30, 40, 50}); err != nil {
		t.Fatal(err)
	}
	db.AddTable(tab)
	return db
}

func TestVolcanoScanSelectsAndDecodes(t *testing.T) {
	db := volDB(t)
	eng := New(db)
	res, err := eng.Run(algebra.NewSelect(algebra.NewScan("t", "a", "g"),
		expr.GEE(expr.C("a"), expr.Float(3))))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	if res.Row(0)[1].(string) != "p" {
		t.Fatalf("enum decode: %v", res.Row(0))
	}
}

func TestVolcanoAggrOrderProject(t *testing.T) {
	db := volDB(t)
	eng := New(db)
	plan := algebra.NewOrder(
		algebra.NewAggr(
			algebra.NewProject(algebra.NewScan("t", "a", "g"),
				algebra.NE("g", expr.C("g")),
				algebra.NE("a2", expr.MulE(expr.C("a"), expr.Float(2)))),
			[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
			[]algebra.AggExpr{
				algebra.Sum("s", expr.C("a2")),
				algebra.Min("mn", expr.C("a2")),
				algebra.Max("mx", expr.C("a2")),
				algebra.Avg("av", expr.C("a2")),
				algebra.Count("n"),
			}),
		algebra.Asc(expr.C("g")))
	res, err := eng.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	p := res.Row(0) // group p: a = 5,4,3 doubled: 10,8,6
	if p[1].(float64) != 24 || p[2].(float64) != 6 || p[3].(float64) != 10 || p[4].(float64) != 8 || p[5].(int64) != 3 {
		t.Fatalf("group p: %v", p)
	}
}

func TestVolcanoProfileShape(t *testing.T) {
	db := volDB(t)
	prof := NewProfile()
	eng := &Engine{DB: db, Profile: prof}
	plan := algebra.NewAggr(
		algebra.NewSelect(algebra.NewScan("t", "a", "g", "d"),
			expr.LEE(expr.C("d"), expr.Int32Const(40))),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
		[]algebra.AggExpr{algebra.Sum("s", expr.AddE(expr.C("a"), expr.C("a")))})
	if _, err := eng.Run(plan); err != nil {
		t.Fatal(err)
	}
	stats := map[string]*FuncStat{}
	for _, s := range prof.Stats() {
		stats[s.Name] = s
	}
	// 5 tuples scanned: one record store each, 3 field decodes each.
	if s := stats["row_sel_store_mysql_rec"]; s == nil || s.Calls != 5 {
		t.Fatalf("record stores: %+v", s)
	}
	if s := stats["rec_get_nth_field"]; s == nil || s.Calls != 15 {
		t.Fatalf("field decodes: %+v", s)
	}
	// 4 qualifying tuples: one plus per tuple inside the sum argument.
	if s := stats["Item_func_plus::val"]; s == nil || s.Calls != 4 {
		t.Fatalf("plus calls: %+v", s)
	}
	if s := stats["Item_sum_sum::update_field"]; s == nil || s.Calls != 4 {
		t.Fatalf("sum updates: %+v", s)
	}
	out := prof.Render()
	for _, want := range []string{"cum.", "excl.", "Item_func_le::val", "ut_fold_binary"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestVolcanoJoinKinds(t *testing.T) {
	db := volDB(t)
	dim := colstore.NewTable("dim")
	if err := dim.AddColumn("k", vector.Float64, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := dim.AddColumn("lbl", vector.String, []string{"one", "two"}); err != nil {
		t.Fatal(err)
	}
	db.AddTable(dim)
	eng := New(db)
	left := func() algebra.Node { return algebra.NewScan("t", "a") }
	right := func() algebra.Node { return algebra.NewScan("dim", "k", "lbl") }

	inner, err := eng.Run(algebra.NewJoin(left(), right(), algebra.EquiCond{L: "a", R: "k"}))
	if err != nil {
		t.Fatal(err)
	}
	if inner.NumRows() != 2 {
		t.Fatalf("inner: %d", inner.NumRows())
	}
	anti, err := eng.Run(algebra.NewJoinKind(algebra.Anti, left(), right(), algebra.EquiCond{L: "a", R: "k"}))
	if err != nil {
		t.Fatal(err)
	}
	if anti.NumRows() != 3 {
		t.Fatalf("anti: %d", anti.NumRows())
	}
	outer, err := eng.Run(algebra.NewJoinKind(algebra.LeftOuter, left(), right(), algebra.EquiCond{L: "a", R: "k"}))
	if err != nil {
		t.Fatal(err)
	}
	if outer.NumRows() != 5 {
		t.Fatalf("outer: %d", outer.NumRows())
	}
	mark, err := eng.Run(algebra.NewJoinKind(algebra.Mark, left(), right(),
		algebra.EquiCond{L: "a", R: "k"}).WithMark("m"))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < mark.NumRows(); i++ {
		if mark.Row(i)[1].(bool) {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("mark hits: %d", hits)
	}
}

func TestVolcanoRejectsPendingDeltas(t *testing.T) {
	db := volDB(t)
	ds, err := db.Delta("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Insert([]any{1.0, "p", int32(60)}); err != nil {
		t.Fatal(err)
	}
	eng := New(db)
	if _, err := eng.Run(algebra.NewScan("t", "a")); err == nil {
		t.Fatal("volcano scan over pending deltas must be rejected")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	vals := []any{true, uint8(7), uint16(300), int32(-5), int64(1 << 40), 3.25, "hello"}
	types := []vector.Type{vector.Bool, vector.UInt8, vector.UInt16, vector.Int32, vector.Int64, vector.Float64, vector.String}
	var rec []byte
	for _, v := range vals {
		rec = appendField(rec, v)
	}
	off := 0
	for i, typ := range types {
		var got any
		got, off = readField(rec, off, typ)
		if got != vals[i] {
			t.Fatalf("field %d: %v != %v", i, got, vals[i])
		}
	}
	if off != len(rec) {
		t.Fatalf("offset %d != %d", off, len(rec))
	}
}
