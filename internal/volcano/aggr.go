package volcano

import (
	"fmt"

	"x100/internal/algebra"
	"x100/internal/vector"
)

// aggrOp is the tuple-at-a-time hash aggregation: one hash-table lookup and
// one update call per aggregate per tuple — the ut_fold / hash_get_nth_cell
// / Item_sum_sum::update_field trio that accounts for ~28% of MySQL's
// Query 1 profile in Table 2.
type aggrOp struct {
	eng        *Engine
	input      Operator
	node       *algebra.Aggr
	schema     vector.Schema
	groupItems []*item
	aggItems   []*item
	aggOut     []vector.Type
	argTypes   []vector.Type

	groups map[string]*aggGroup
	order  []string
	done   bool
	pos    int
	keyBuf []byte
}

type aggGroup struct {
	keys []any
	sums []float64
	isum []int64
	cnt  []int64
	min  []any
	n    int64
}

func newAggr(e *Engine, in Operator, n *algebra.Aggr) (*aggrOp, error) {
	op := &aggrOp{eng: e, input: in, node: n}
	is := in.Schema()
	for _, g := range n.GroupBy {
		it, err := e.buildItem(g.E, is)
		if err != nil {
			return nil, err
		}
		t, err := g.E.Type(is)
		if err != nil {
			return nil, err
		}
		op.groupItems = append(op.groupItems, it)
		op.schema = append(op.schema, vector.Field{Name: g.Alias, Type: t})
	}
	for _, a := range n.Aggs {
		var it *item
		var argT vector.Type
		if a.Arg != nil {
			var err error
			it, err = e.buildItem(a.Arg, is)
			if err != nil {
				return nil, err
			}
			argT, err = a.Arg.Type(is)
			if err != nil {
				return nil, err
			}
		}
		outT := aggOutType(a, argT)
		op.aggItems = append(op.aggItems, it)
		op.argTypes = append(op.argTypes, argT)
		op.aggOut = append(op.aggOut, outT)
		op.schema = append(op.schema, vector.Field{Name: a.Alias, Type: outT})
	}
	return op, nil
}

func aggOutType(a algebra.AggExpr, argT vector.Type) vector.Type {
	switch a.Fn {
	case algebra.AggCount:
		return vector.Int64
	case algebra.AggAvg:
		return vector.Float64
	case algebra.AggSum:
		if argT.Physical() == vector.Float64 {
			return vector.Float64
		}
		return vector.Int64
	default:
		return argT
	}
}

func (a *aggrOp) Schema() vector.Schema { return a.schema }

func (a *aggrOp) Open() error {
	a.groups = make(map[string]*aggGroup)
	a.order = nil
	a.done = false
	a.pos = 0
	if err := a.input.Open(); err != nil {
		return err
	}
	if len(a.node.GroupBy) == 0 {
		// Scalar aggregation always yields one row.
		g := a.newGroup(nil)
		a.groups[""] = g
		a.order = append(a.order, "")
	}
	return nil
}

func (a *aggrOp) Close() error { return a.input.Close() }

func (a *aggrOp) newGroup(keys []any) *aggGroup {
	n := len(a.node.Aggs)
	return &aggGroup{
		keys: keys,
		sums: make([]float64, n),
		isum: make([]int64, n),
		cnt:  make([]int64, n),
		min:  make([]any, n),
	}
}

func (a *aggrOp) Next() (Row, bool, error) {
	if !a.done {
		if err := a.consume(); err != nil {
			return nil, false, err
		}
		a.done = true
	}
	if a.pos >= len(a.order) {
		return nil, false, nil
	}
	g := a.groups[a.order[a.pos]]
	a.pos++
	row := make(Row, len(a.schema))
	copy(row, g.keys)
	ng := len(a.node.GroupBy)
	for i, agg := range a.node.Aggs {
		switch agg.Fn {
		case algebra.AggCount:
			row[ng+i] = g.cnt[i]
		case algebra.AggAvg:
			if g.cnt[i] > 0 {
				row[ng+i] = g.sums[i] / float64(g.cnt[i])
			} else {
				row[ng+i] = 0.0
			}
		case algebra.AggSum:
			if a.aggOut[i] == vector.Float64 {
				row[ng+i] = g.sums[i]
			} else {
				row[ng+i] = g.isum[i]
			}
		default:
			v := g.min[i]
			if v == nil {
				v = zeroOf(a.aggOut[i])
			}
			row[ng+i] = v
		}
	}
	return row, true, nil
}

func zeroOf(t vector.Type) any {
	switch t.Physical() {
	case vector.Float64:
		return 0.0
	case vector.Int64:
		return int64(0)
	case vector.Int32:
		return int32(0)
	case vector.String:
		return ""
	case vector.Bool:
		return false
	default:
		return nil
	}
}

func (a *aggrOp) consume() error {
	p := a.eng.Profile
	for {
		row, ok, err := a.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		var g *aggGroup
		if len(a.node.GroupBy) == 0 {
			g = a.groups[""]
		} else {
			keys := make([]any, len(a.groupItems))
			for i, it := range a.groupItems {
				keys[i] = it.eval(row)
			}
			done := p.enter("ut_fold_binary")
			a.keyBuf = a.keyBuf[:0]
			for _, k := range keys {
				a.keyBuf = appendField(a.keyBuf, k)
			}
			key := string(a.keyBuf)
			done()
			d2 := p.enter("hash_get_nth_cell")
			gg, exists := a.groups[key]
			d2()
			if !exists {
				gg = a.newGroup(keys)
				a.groups[key] = gg
				a.order = append(a.order, key)
			}
			g = gg
		}
		g.n++
		for i, agg := range a.node.Aggs {
			switch agg.Fn {
			case algebra.AggCount:
				d := p.enter("Item_sum_count::update_field")
				g.cnt[i]++
				d()
			case algebra.AggAvg:
				d := p.enter("Item_sum_avg::update_field")
				g.sums[i] += toF64(a.aggItems[i].eval(row))
				g.cnt[i]++
				d()
			case algebra.AggSum:
				d := p.enter("Item_sum_sum::update_field")
				v := a.aggItems[i].eval(row)
				if a.argTypes[i].Physical() == vector.Float64 {
					g.sums[i] += v.(float64)
				} else {
					g.isum[i] += toI64(v)
				}
				g.cnt[i]++
				d()
			case algebra.AggMin:
				d := p.enter("Item_sum_min::update_field")
				v := a.aggItems[i].eval(row)
				if g.min[i] == nil || compareAny(v, g.min[i]) < 0 {
					g.min[i] = v
				}
				d()
			case algebra.AggMax:
				d := p.enter("Item_sum_max::update_field")
				v := a.aggItems[i].eval(row)
				if g.min[i] == nil || compareAny(v, g.min[i]) > 0 {
					g.min[i] = v
				}
				d()
			}
		}
	}
}

func toF64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case int32:
		return float64(x)
	case uint8:
		return float64(x)
	case uint16:
		return float64(x)
	default:
		panic(fmt.Sprintf("volcano: cannot convert %T to float", v))
	}
}

func toI64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int32:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	default:
		panic(fmt.Sprintf("volcano: cannot convert %T to int", v))
	}
}
