package core

import (
	"fmt"
	"sync"
	"time"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/vector"
)

// joinBuild is the hash-join build state: the materialized build side plus
// its chained hash table. It is immutable once built, so N probe pipelines
// running on separate goroutines can share one instance — the first prober
// constructs it (the sync.Once), the rest wait and then probe concurrently.
type joinBuild struct {
	right     Operator // build-side pipeline, drained exactly once
	rightKeys []int
	// keyXlat, when non-nil for key i, maps the build side's dictionary
	// codes into the probe side's code domain (-1 = value absent from the
	// probe dictionary, can never match). It keeps both sides of a
	// code-domain join hashing and comparing narrow codes even though the
	// two columns carry distinct dictionaries.
	keyXlat [][]int32
	once    sync.Once
	err     error

	rbuild  []*colBuilder // all right columns
	buckets []int32       // head row id + 1
	next    []int32       // chain
	mask    uint64
	nRight  int
}

// buildKeyHash hashes build row r over the join keys, translating
// code-domain keys into the probe dictionary first.
func (jb *joinBuild) buildKeyHash(r int) uint64 {
	var h uint64
	for i, ki := range jb.rightKeys {
		if i < len(jb.keyXlat) && jb.keyXlat[i] != nil {
			h = hashCombine(h, uint64(uint32(jb.keyXlat[i][builderCode(jb.rbuild[ki], r)])))
			continue
		}
		h = jb.rbuild[ki].hashAt(r, h)
	}
	return h
}

// builderCode reads the narrow dictionary code at build row r.
func builderCode(cb *colBuilder, r int) int32 {
	if cb.typ.Physical() == vector.UInt8 {
		return int32(cb.u8[r])
	}
	return int32(cb.u16[r])
}

// probeCode reads the narrow dictionary code at probe position pos.
func probeCode(v *vector.Vector, pos int) int32 {
	if v.Typ.Physical() == vector.UInt8 {
		return int32(v.UInt8s()[pos])
	}
	return int32(v.UInt16s()[pos])
}

// run materializes the build side on first call; subsequent (possibly
// concurrent) calls return the first call's outcome.
func (jb *joinBuild) run(opts ExecOptions) error {
	jb.once.Do(func() { jb.err = jb.build(opts) })
	return jb.err
}

func (jb *joinBuild) build(opts ExecOptions) error {
	t0 := time.Now()
	if err := jb.right.Open(); err != nil {
		return err
	}
	rs := jb.right.Schema()
	jb.rbuild = make([]*colBuilder, len(rs))
	for i, f := range rs {
		jb.rbuild[i] = newColBuilder(f.Type)
	}
	for {
		b, err := jb.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i, v := range b.Vecs {
			jb.rbuild[i].appendVec(v, b.Sel, b.N)
		}
	}
	if len(jb.rbuild) > 0 {
		jb.nRight = jb.rbuild[0].len()
	}
	// Size the table to ~2x rows, power of two.
	sz := 1024
	for sz < jb.nRight*2 {
		sz *= 2
	}
	jb.buckets = make([]int32, sz)
	jb.mask = uint64(sz - 1)
	jb.next = make([]int32, jb.nRight)
	for r := 0; r < jb.nRight; r++ {
		slot := jb.buildKeyHash(r) & jb.mask
		jb.next[r] = jb.buckets[slot] - 1
		jb.buckets[slot] = int32(r) + 1
	}
	opts.Tracer.RecordOperator("HashJoin(build)", jb.nRight, time.Since(t0))
	return nil
}

// hashJoinOp implements the Join operator for equi-conditions. The right
// (build) side is drained into columnar builders and indexed by a chained
// hash table; left (probe) batches are hashed vector-at-a-time and matches
// are emitted in batch-sized chunks. Kinds: inner, semi, anti, leftouter,
// mark (Section 4.1.2 lists Join over left-deep plans; semi/anti/mark are
// the decorrelation workhorses for the TPC-H plans).
type hashJoinOp struct {
	left   Operator
	right  Operator // nil when the build is shared with sibling probe pipelines
	node   *algebra.Join
	opts   ExecOptions
	schema vector.Schema

	leftKeys  []int // column indices in left schema
	rightKeys []int // column indices in right schema
	// keyXlat mirrors joinBuild.keyXlat: per key, the build-code ->
	// probe-code translation of a code-domain join key (nil = plain key).
	keyXlat [][]int32

	// bld holds the build side. Serial joins own a fresh one per Open;
	// parallel probe pipelines share a single prebuilt instance.
	bld      *joinBuild
	hashBuf  []uint64
	residual expr.Scalar // optional, over concatenated schema

	// probe state
	curBatch   *vector.Batch
	curLive    int   // next live-row ordinal within curBatch
	curChain   int32 // current candidate right row (-2 = start next left row)
	matchedCur bool  // current left row has matched (left-outer tracking)
	lastBatch  *vector.Batch

	// reusable output buffers
	leftIdx  []int32
	rightIdx []int32
}

func newHashJoinOp(left, right Operator, node *algebra.Join, opts ExecOptions) (*hashJoinOp, error) {
	ls, rs := left.Schema(), right.Schema()
	op := &hashJoinOp{left: left, right: right, node: node, opts: opts}
	codeKeys := make(map[int]codeJoinKey)
	for _, ck := range opts.codeJoins[node] {
		codeKeys[ck.idx] = ck
	}
	op.keyXlat = make([][]int32, len(node.On))
	for i, c := range node.On {
		li := ls.ColIndex(c.L)
		ri := rs.ColIndex(c.R)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("core: join key %s=%s not found", c.L, c.R)
		}
		ck, isCode := codeKeys[i]
		if isCode && narrowCode(ls[li].Type) && narrowCode(rs[ri].Type) {
			// Code-domain key: the two sides carry distinct dictionaries
			// (possibly of different code widths); build the build-side ->
			// probe-side code translation once.
			xlat := make([]int32, ck.rdict.Len())
			for rc, v := range ck.rdict.Values {
				lc, found := ck.ldict.Lookup(v)
				if !found {
					lc = -1
				}
				xlat[rc] = int32(lc)
			}
			op.keyXlat[i] = xlat
		} else if ls[li].Type.Physical() != rs[ri].Type.Physical() {
			return nil, fmt.Errorf("core: join key type mismatch %v vs %v", ls[li].Type, rs[ri].Type)
		}
		op.leftKeys = append(op.leftKeys, li)
		op.rightKeys = append(op.rightKeys, ri)
	}
	switch node.Kind {
	case algebra.Semi, algebra.Anti:
		op.schema = ls.Clone()
	case algebra.Mark:
		op.schema = append(ls.Clone(), vector.Field{Name: node.MarkCol, Type: vector.Bool})
	default:
		op.schema = append(ls.Clone(), rs.Clone()...)
	}
	if node.Residual != nil {
		combined := append(ls.Clone(), rs.Clone()...)
		sc, _, err := expr.Bind(node.Residual, combined)
		if err != nil {
			return nil, err
		}
		op.residual = sc
	}
	return op, nil
}

// newSharedProbeJoinOp builds one probe pipeline of a parallel hash join:
// the left input is this worker's partition and jb is the build shared by
// all sibling probers. jb.right is only used for its schema here; the
// parallel plan builder retains ownership and closes it.
func newSharedProbeJoinOp(left Operator, jb *joinBuild, node *algebra.Join, opts ExecOptions) (*hashJoinOp, error) {
	op, err := newHashJoinOp(left, jb.right, node, opts)
	if err != nil {
		return nil, err
	}
	op.right = nil
	jb.rightKeys = op.rightKeys
	jb.keyXlat = op.keyXlat
	op.bld = jb
	return op, nil
}

// narrowCode reports whether a join key type is a dictionary code vector.
func narrowCode(t vector.Type) bool {
	p := t.Physical()
	return p == vector.UInt8 || p == vector.UInt16
}

func (op *hashJoinOp) Schema() vector.Schema { return op.schema }

func (op *hashJoinOp) Open() error {
	if err := op.left.Open(); err != nil {
		return err
	}
	if op.right != nil {
		// Owned build side: a fresh build per Open (the build-side pipeline
		// is opened and drained lazily by joinBuild.run at the first Next).
		op.bld = &joinBuild{right: op.right, rightKeys: op.rightKeys, keyXlat: op.keyXlat}
	}
	op.curBatch = nil
	op.curLive = 0
	op.curChain = -1
	op.hashBuf = nil
	op.leftIdx = op.leftIdx[:0]
	op.rightIdx = op.rightIdx[:0]
	return nil
}

func (op *hashJoinOp) Close() error {
	if err := op.left.Close(); err != nil {
		if op.right != nil {
			op.right.Close()
		}
		return err
	}
	if op.right != nil {
		return op.right.Close()
	}
	return nil
}

// probeHashes computes hashes of the left key columns for a batch.
func (op *hashJoinOp) probeHashes(b *vector.Batch) error {
	if b.N > len(op.hashBuf) {
		op.hashBuf = make([]uint64, b.N)
	}
	hashes := op.hashBuf[:b.N]
	for i, ki := range op.leftKeys {
		if err := hashVector(hashes, b.Vecs[ki], b.Sel, i == 0); err != nil {
			return err
		}
	}
	return nil
}

// keyMatch verifies that build row r equals left batch row pos on all keys.
// Code-domain keys compare the translated build code against the probe
// code — two narrow integer loads, no string touch.
func (op *hashJoinOp) keyMatch(r int32, b *vector.Batch, pos int) bool {
	for i, ki := range op.rightKeys {
		if x := op.keyXlat[i]; x != nil {
			if x[builderCode(op.bld.rbuild[ki], int(r))] != probeCode(b.Vecs[op.leftKeys[i]], pos) {
				return false
			}
			continue
		}
		if !op.bld.rbuild[ki].equalAt(int(r), b.Vecs[op.leftKeys[i]], pos) {
			return false
		}
	}
	return true
}

// residualOK evaluates the residual predicate on (left row pos, right row r).
func (op *hashJoinOp) residualOK(b *vector.Batch, pos int, r int32) bool {
	if op.residual == nil {
		return true
	}
	nl := len(b.Vecs)
	row := make([]any, nl+len(op.bld.rbuild))
	for c, v := range b.Vecs {
		row[c] = v.Value(pos)
	}
	for c, cb := range op.bld.rbuild {
		row[nl+c] = cb.vec().Value(int(r))
	}
	return op.residual(row).(bool)
}

func (op *hashJoinOp) Next() (*vector.Batch, error) {
	if err := op.bld.run(op.opts); err != nil {
		return nil, err
	}
	switch op.node.Kind {
	case algebra.Inner, algebra.LeftOuter:
		return op.nextExpand()
	default:
		return op.nextFiltered()
	}
}

// nextExpand emits (left,right) pairs for inner and left-outer joins,
// resuming mid-chain across calls.
func (op *hashJoinOp) nextExpand() (*vector.Batch, error) {
	t0 := time.Now()
	bs := op.opts.batchSize()
	op.leftIdx = op.leftIdx[:0]
	op.rightIdx = op.rightIdx[:0]
	outer := op.node.Kind == algebra.LeftOuter

	for len(op.leftIdx) < bs {
		if op.curBatch == nil {
			// Pending output pairs reference the previous batch's vectors;
			// emit them before pulling a new batch.
			if len(op.leftIdx) > 0 {
				break
			}
			b, err := op.left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if err := op.probeHashes(b); err != nil {
				return nil, err
			}
			op.curBatch = b
			op.curLive = 0
			op.curChain = -2 // -2: start a new left row
		}
		b := op.curBatch
		nLive := b.Rows()
		if op.curLive >= nLive {
			op.lastBatch = b
			op.curBatch = nil
			continue
		}
		pos := b.LiveRow(op.curLive)
		if op.curChain == -2 {
			// Begin chain for this left row.
			op.curChain = op.bld.buckets[op.hashBuf[pos]&op.bld.mask] - 1
			op.matchedCur = false
		}
		for op.curChain >= 0 && len(op.leftIdx) < bs {
			r := op.curChain
			op.curChain = op.bld.next[r]
			if op.keyMatch(r, b, pos) && op.residualOK(b, pos, r) {
				op.leftIdx = append(op.leftIdx, int32(pos))
				op.rightIdx = append(op.rightIdx, r)
				op.matchedCur = true
			}
		}
		if op.curChain < 0 {
			if outer && !op.matchedCur {
				op.leftIdx = append(op.leftIdx, int32(pos))
				op.rightIdx = append(op.rightIdx, -1)
			}
			op.curLive++
			op.curChain = -2
		}
	}
	if len(op.leftIdx) == 0 {
		return nil, nil
	}
	out := op.assembleExpand()
	op.opts.Tracer.RecordOperator("HashJoin(probe)", out.Rows(), time.Since(t0))
	return out, nil
}

func (op *hashJoinOp) assembleExpand() *vector.Batch {
	b := op.curBatch
	if b == nil {
		b = op.lastBatch
	}
	nl := len(b.Vecs)
	k := len(op.leftIdx)
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	for c := 0; c < nl; c++ {
		v := vector.New(op.schema[c].Type, k)
		v.Gather(b.Vecs[c], op.leftIdx)
		v.Typ = op.schema[c].Type
		out.Vecs[c] = v
	}
	for c := range op.bld.rbuild {
		out.Vecs[nl+c] = gatherOuter(op.bld.rbuild[c], op.rightIdx, op.schema[nl+c].Type)
	}
	return out
}

// gatherOuter gathers build rows by id, writing the zero value for -1
// (unmatched left-outer rows).
func gatherOuter(cb *colBuilder, idx []int32, t vector.Type) *vector.Vector {
	out := vector.New(t, len(idx))
	src := cb.vec()
	for j, r := range idx {
		if r < 0 {
			continue // zero value
		}
		out.Set(j, src.Value(int(r)))
	}
	out.Typ = t
	return out
}

// nextFiltered handles semi, anti and mark joins: one output row (at most)
// per left row, no expansion.
func (op *hashJoinOp) nextFiltered() (*vector.Batch, error) {
	for {
		t0 := time.Now()
		b, err := op.left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if err := op.probeHashes(b); err != nil {
			return nil, err
		}
		n := b.Rows()
		sel := make([]int32, 0, n)
		var marks []bool
		if op.node.Kind == algebra.Mark {
			marks = make([]bool, b.N)
		}
		check := func(pos int) bool {
			r := op.bld.buckets[op.hashBuf[pos]&op.bld.mask] - 1
			for r >= 0 {
				if op.keyMatch(r, b, pos) && op.residualOK(b, pos, r) {
					return true
				}
				r = op.bld.next[r]
			}
			return false
		}
		emit := func(pos int32) {
			matched := check(int(pos))
			switch op.node.Kind {
			case algebra.Semi:
				if matched {
					sel = append(sel, pos)
				}
			case algebra.Anti:
				if !matched {
					sel = append(sel, pos)
				}
			case algebra.Mark:
				marks[pos] = matched
				sel = append(sel, pos)
			}
		}
		if b.Sel != nil {
			for _, i := range b.Sel {
				emit(i)
			}
		} else {
			for i := 0; i < b.N; i++ {
				emit(int32(i))
			}
		}
		if len(sel) == 0 {
			continue
		}
		out := &vector.Batch{Schema: op.schema, Vecs: b.Vecs, Sel: sel, N: b.N}
		if op.node.Kind == algebra.Mark {
			out.Vecs = append(append([]*vector.Vector{}, b.Vecs...), vector.FromBools(marks))
		}
		op.opts.Tracer.RecordOperator(fmt.Sprintf("HashJoin(%s)", op.node.Kind), len(sel), time.Since(t0))
		return out, nil
	}
}

// cartProdOp is the nested-loop CartProd operator: the paper's default
// physical join (a Select on top applies the join condition).
type cartProdOp struct {
	left, right Operator
	opts        ExecOptions
	schema      vector.Schema

	rbuild    []*colBuilder
	nRight    int
	built     bool
	curBatch  *vector.Batch
	lastBatch *vector.Batch
	curLive   int
	curRight  int
	leftIdx   []int32
	rightIdx  []int32
}

func newCartProdOp(left, right Operator, opts ExecOptions) (*cartProdOp, error) {
	schema := append(left.Schema().Clone(), right.Schema().Clone()...)
	return &cartProdOp{left: left, right: right, opts: opts, schema: schema}, nil
}

func (op *cartProdOp) Schema() vector.Schema { return op.schema }

func (op *cartProdOp) Open() error {
	if err := op.left.Open(); err != nil {
		return err
	}
	if err := op.right.Open(); err != nil {
		return err
	}
	op.built = false
	op.curBatch = nil
	op.curLive = 0
	op.curRight = 0
	return nil
}

func (op *cartProdOp) Close() error {
	if err := op.left.Close(); err != nil {
		op.right.Close()
		return err
	}
	return op.right.Close()
}

func (op *cartProdOp) Next() (*vector.Batch, error) {
	if !op.built {
		rs := op.right.Schema()
		op.rbuild = make([]*colBuilder, len(rs))
		for i, f := range rs {
			op.rbuild[i] = newColBuilder(f.Type)
		}
		for {
			b, err := op.right.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			for i, v := range b.Vecs {
				op.rbuild[i].appendVec(v, b.Sel, b.N)
			}
		}
		if len(op.rbuild) > 0 {
			op.nRight = op.rbuild[0].len()
		}
		op.built = true
	}
	bs := op.opts.batchSize()
	op.leftIdx = op.leftIdx[:0]
	op.rightIdx = op.rightIdx[:0]
	for len(op.leftIdx) < bs {
		if op.curBatch == nil {
			if len(op.leftIdx) > 0 {
				break
			}
			b, err := op.left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			op.curBatch = b
			op.curLive = 0
			op.curRight = 0
		}
		b := op.curBatch
		if op.curLive >= b.Rows() {
			op.lastBatch = b
			op.curBatch = nil
			continue
		}
		pos := b.LiveRow(op.curLive)
		for op.curRight < op.nRight && len(op.leftIdx) < bs {
			op.leftIdx = append(op.leftIdx, int32(pos))
			op.rightIdx = append(op.rightIdx, int32(op.curRight))
			op.curRight++
		}
		if op.curRight >= op.nRight {
			op.curLive++
			op.curRight = 0
		}
	}
	if len(op.leftIdx) == 0 {
		return nil, nil
	}
	b := op.curBatch
	if b == nil {
		b = op.lastBatch
	}
	nl := len(op.left.Schema())
	k := len(op.leftIdx)
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	for c := 0; c < nl; c++ {
		v := vector.New(op.schema[c].Type, k)
		v.Gather(b.Vecs[c], op.leftIdx)
		v.Typ = op.schema[c].Type
		out.Vecs[c] = v
	}
	for c := range op.rbuild {
		out.Vecs[nl+c] = op.rbuild[c].gather(op.rightIdx)
	}
	return out, nil
}
