package core

import (
	"fmt"
	"sync"
	"time"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/sched"
	"x100/internal/trace"
	"x100/internal/vector"
)

// joinBuild is the hash-join build state: the materialized build side plus
// its chained hash table. It is immutable once built, so N probe pipelines
// running on separate goroutines can share one instance — the first prober
// constructs it (the sync.Once), the rest wait and then probe concurrently.
type joinBuild struct {
	right     Operator // build-side pipeline, drained exactly once
	rightKeys []int
	// keyXlat, when non-nil for key i, maps the build side's dictionary
	// codes into the probe side's code domain (-1 = value absent from the
	// probe dictionary, can never match). It keeps both sides of a
	// code-domain join hashing and comparing narrow codes even though the
	// two columns carry distinct dictionaries.
	keyXlat [][]int32
	once    sync.Once
	err     error

	// Parallel build (set at compile time when the build side is
	// partitionable and parallelism > 1): per-worker partition pipelines
	// drain concurrently into private builders, which concatenate and are
	// hashed/inserted in parallel. Empty = serial drain of right.
	parParts   []Operator
	parSources []*morselSource
	parExtra   []Operator
	parTracers []*trace.Collector
	parSlots   []*sched.Slot

	rbuild  []*colBuilder // all right columns
	buckets []int32       // head row id + 1
	next    []int32       // chain
	mask    uint64
	nRight  int
}

// hashRows bulk-hashes build rows [lo,hi) over the join keys into
// hashes[lo:hi] with the vectorized width kernels, translating code-domain
// keys into the probe dictionary first. Equivalent to folding hashCombine
// row-at-a-time from 0 (HashCombineValueInt(0, v) == HashValueInt(v)).
func (jb *joinBuild) hashRows(hashes []uint64, lo, hi int) error {
	h := hashes[lo:hi]
	var scratch []int64
	for i, ki := range jb.rightKeys {
		cb := jb.rbuild[ki]
		if i < len(jb.keyXlat) && jb.keyXlat[i] != nil {
			// Translated codes hash as their uint32 bit pattern (-1 =
			// absent-from-probe maps to 0xffffffff, matching the probe
			// side's code domain never).
			if scratch == nil {
				scratch = make([]int64, hi-lo)
			}
			x := jb.keyXlat[i]
			if cb.typ.Physical() == vector.UInt8 {
				for j, c := range cb.u8[lo:hi] {
					scratch[j] = int64(uint32(x[c]))
				}
			} else {
				for j, c := range cb.u16[lo:hi] {
					scratch[j] = int64(uint32(x[c]))
				}
			}
			if i == 0 {
				primitives.HashInt(h, scratch, nil)
			} else {
				primitives.HashCombineInt(h, scratch, nil)
			}
			continue
		}
		if err := hashVector(h, cb.slice(lo, hi), nil, i == 0); err != nil {
			return err
		}
	}
	return nil
}

// builderCode reads the narrow dictionary code at build row r.
func builderCode(cb *colBuilder, r int) int32 {
	if cb.typ.Physical() == vector.UInt8 {
		return int32(cb.u8[r])
	}
	return int32(cb.u16[r])
}

// probeCode reads the narrow dictionary code at probe position pos.
func probeCode(v *vector.Vector, pos int) int32 {
	if v.Typ.Physical() == vector.UInt8 {
		return int32(v.UInt8s()[pos])
	}
	return int32(v.UInt16s()[pos])
}

// run materializes the build side on first call; subsequent (possibly
// concurrent) calls return the first call's outcome.
func (jb *joinBuild) run(opts ExecOptions) error {
	jb.once.Do(func() { jb.err = jb.build(opts) })
	return jb.err
}

func (jb *joinBuild) build(opts ExecOptions) error {
	t0 := time.Now()
	life := opts.life
	if len(jb.parParts) > 0 {
		if err := jb.drainParallel(life); err != nil {
			return err
		}
	} else {
		if err := jb.drainSerial(life); err != nil {
			return err
		}
	}
	if len(jb.rbuild) > 0 {
		jb.nRight = jb.rbuild[0].len()
	}
	if err := jb.index(life); err != nil {
		return err
	}
	for _, tr := range jb.parTracers {
		if tr != nil {
			opts.Tracer.Merge(tr)
		}
	}
	opts.Tracer.RecordOperator("HashJoin(build)", jb.nRight, time.Since(t0))
	return nil
}

// drainSerial materializes the build side from the single right pipeline.
func (jb *joinBuild) drainSerial(life *lifecycle) error {
	if err := jb.right.Open(); err != nil {
		return err
	}
	rs := jb.right.Schema()
	jb.rbuild = make([]*colBuilder, len(rs))
	for i, f := range rs {
		jb.rbuild[i] = newColBuilder(f.Type)
	}
	for {
		if err := life.check(); err != nil {
			return err
		}
		b, err := jb.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for i, v := range b.Vecs {
			jb.rbuild[i].appendVec(v, b.Sel, b.N)
		}
		life.reserve(batchBytes(len(rs), b.Rows()))
	}
}

// drainParallel materializes the build side from N partition pipelines:
// each worker drains its morsels into private builders (no shared state,
// no locks), then the partitions concatenate in worker order. Row order —
// and therefore chain order — depends on the morsel race, so parallel
// builds are multiset-equivalent to serial ones, not row-identical.
func (jb *joinBuild) drainParallel(life *lifecycle) error {
	nw := len(jb.parParts)
	for _, src := range jb.parSources {
		src.reset()
	}
	rs := jb.parParts[0].Schema()
	partCols := make([][]*colBuilder, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := jb.parSlots[w]
			slot.Bind(life.stop())
			if !slot.Acquire() {
				errs[w] = life.check()
				return
			}
			defer slot.Release()
			p := jb.parParts[w]
			if err := p.Open(); err != nil {
				errs[w] = err
				return
			}
			defer p.Close()
			cols := make([]*colBuilder, len(rs))
			for i, f := range rs {
				cols[i] = newColBuilder(f.Type)
			}
			for {
				if err := life.check(); err != nil {
					errs[w] = err
					return
				}
				b, err := p.Next()
				if err != nil {
					errs[w] = err
					return
				}
				if b == nil {
					break
				}
				for i, v := range b.Vecs {
					cols[i].appendVec(v, b.Sel, b.N)
				}
				life.reserve(batchBytes(len(rs), b.Rows()))
			}
			partCols[w] = cols
		}(w)
	}
	wg.Wait()
	for _, p := range jb.parExtra {
		p.Close()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	jb.rbuild = partCols[0]
	for w := 1; w < nw; w++ {
		for i := range jb.rbuild {
			jb.rbuild[i].appendBuilder(partCols[w][i])
		}
	}
	return nil
}

// index hashes all build rows with the bulk width kernels and links the
// chained hash table. With worker pipelines available the hash pass splits
// into disjoint row ranges and the insert pass into disjoint slot ranges —
// every worker scans the hash array but only writes buckets it owns, and
// rows insert in ascending order per bucket, so the resulting chains are
// exactly the serial ones.
func (jb *joinBuild) index(life *lifecycle) error {
	// Size the table to ~2x rows, power of two.
	sz := 1024
	for sz < jb.nRight*2 {
		sz *= 2
	}
	// Charge the hash table (buckets + chain + hash scratch) before
	// allocating; a budget violation surfaces at the check below.
	life.reserve(int64(sz)*4 + int64(jb.nRight)*12)
	if err := life.check(); err != nil {
		return err
	}
	jb.buckets = make([]int32, sz)
	jb.mask = uint64(sz - 1)
	jb.next = make([]int32, jb.nRight)
	if jb.nRight == 0 {
		return nil
	}
	hashes := make([]uint64, jb.nRight)
	nw := len(jb.parParts)
	if nw > 1 && jb.nRight >= 1<<14 {
		chunk := (jb.nRight + nw - 1) / nw
		errs := make([]error, nw)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, jb.nRight)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				slot := jb.parSlots[w]
				slot.Bind(life.stop())
				if !slot.Acquire() {
					errs[w] = life.check()
					return
				}
				defer slot.Release()
				errs[w] = jb.hashRows(hashes, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		wg = sync.WaitGroup{}
		for w := 0; w < nw; w++ {
			slo := uint64(w) * uint64(sz) / uint64(nw)
			shi := uint64(w+1) * uint64(sz) / uint64(nw)
			wg.Add(1)
			go func(w int, slo, shi uint64) {
				defer wg.Done()
				ws := jb.parSlots[w]
				ws.Bind(life.stop())
				if !ws.Acquire() {
					return
				}
				defer ws.Release()
				for r := 0; r < jb.nRight; r++ {
					slot := hashes[r] & jb.mask
					if slot >= slo && slot < shi {
						jb.next[r] = jb.buckets[slot] - 1
						jb.buckets[slot] = int32(r) + 1
					}
				}
			}(w, slo, shi)
		}
		wg.Wait()
		// A cancelled insert worker leaves its bucket range unlinked; the
		// lifecycle check turns that partial table into a query error
		// before any prober can read it.
		return life.check()
	}
	if err := jb.hashRows(hashes, 0, jb.nRight); err != nil {
		return err
	}
	for r := 0; r < jb.nRight; r++ {
		slot := hashes[r] & jb.mask
		jb.next[r] = jb.buckets[slot] - 1
		jb.buckets[slot] = int32(r) + 1
	}
	return nil
}

// hashJoinOp implements the Join operator for equi-conditions. The right
// (build) side is drained into columnar builders and indexed by a chained
// hash table; left (probe) batches are hashed vector-at-a-time and matches
// are emitted in batch-sized chunks. Kinds: inner, semi, anti, leftouter,
// mark (Section 4.1.2 lists Join over left-deep plans; semi/anti/mark are
// the decorrelation workhorses for the TPC-H plans).
type hashJoinOp struct {
	left   Operator
	right  Operator // nil when the build is shared with sibling probe pipelines
	node   *algebra.Join
	opts   ExecOptions
	schema vector.Schema

	leftKeys  []int // column indices in left schema
	rightKeys []int // column indices in right schema
	// keyXlat mirrors joinBuild.keyXlat: per key, the build-code ->
	// probe-code translation of a code-domain join key (nil = plain key).
	keyXlat [][]int32

	// bld holds the build side. Serial joins own a fresh one per Open;
	// parallel probe pipelines share a single prebuilt instance.
	bld      *joinBuild
	hashBuf  []uint64
	residual expr.Scalar // optional, over concatenated schema

	// probe state
	curBatch   *vector.Batch
	curLive    int   // next live-row ordinal within curBatch
	curChain   int32 // current candidate right row (-2 = start next left row)
	matchedCur bool  // current left row has matched (left-outer tracking)
	lastBatch  *vector.Batch

	// reusable output buffers
	leftIdx  []int32
	rightIdx []int32
}

func newHashJoinOp(left, right Operator, node *algebra.Join, opts ExecOptions) (*hashJoinOp, error) {
	ls, rs := left.Schema(), right.Schema()
	op := &hashJoinOp{left: left, right: right, node: node, opts: opts}
	codeKeys := make(map[int]codeJoinKey)
	for _, ck := range opts.codeJoins[node] {
		codeKeys[ck.idx] = ck
	}
	op.keyXlat = make([][]int32, len(node.On))
	for i, c := range node.On {
		li := ls.ColIndex(c.L)
		ri := rs.ColIndex(c.R)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("core: join key %s=%s not found", c.L, c.R)
		}
		ck, isCode := codeKeys[i]
		if isCode && narrowCode(ls[li].Type) && narrowCode(rs[ri].Type) {
			// Code-domain key: the two sides carry distinct dictionaries
			// (possibly of different code widths); build the build-side ->
			// probe-side code translation once.
			rvals := ck.rdict.Strings()
			xlat := make([]int32, len(rvals))
			for rc, v := range rvals {
				lc, found := ck.ldict.Lookup(v)
				if !found {
					lc = -1
				}
				xlat[rc] = int32(lc)
			}
			op.keyXlat[i] = xlat
		} else if ls[li].Type.Physical() != rs[ri].Type.Physical() {
			return nil, fmt.Errorf("core: join key type mismatch %v vs %v", ls[li].Type, rs[ri].Type)
		}
		op.leftKeys = append(op.leftKeys, li)
		op.rightKeys = append(op.rightKeys, ri)
	}
	switch node.Kind {
	case algebra.Semi, algebra.Anti:
		op.schema = ls.Clone()
	case algebra.Mark:
		op.schema = append(ls.Clone(), vector.Field{Name: node.MarkCol, Type: vector.Bool})
	default:
		op.schema = append(ls.Clone(), rs.Clone()...)
	}
	if node.Residual != nil {
		combined := append(ls.Clone(), rs.Clone()...)
		sc, _, err := expr.Bind(node.Residual, combined)
		if err != nil {
			return nil, err
		}
		op.residual = sc
	}
	return op, nil
}

// newSharedProbeJoinOp builds one probe pipeline of a parallel hash join:
// the left input is this worker's partition and jb is the build shared by
// all sibling probers. jb.right is only used for its schema here; the
// parallel plan builder retains ownership and closes it.
func newSharedProbeJoinOp(left Operator, jb *joinBuild, node *algebra.Join, opts ExecOptions) (*hashJoinOp, error) {
	op, err := newHashJoinOp(left, jb.right, node, opts)
	if err != nil {
		return nil, err
	}
	op.right = nil
	jb.rightKeys = op.rightKeys
	jb.keyXlat = op.keyXlat
	op.bld = jb
	return op, nil
}

// narrowCode reports whether a join key type is a dictionary code vector.
func narrowCode(t vector.Type) bool {
	p := t.Physical()
	return p == vector.UInt8 || p == vector.UInt16
}

func (op *hashJoinOp) Schema() vector.Schema { return op.schema }

func (op *hashJoinOp) Open() error {
	if err := op.left.Open(); err != nil {
		return err
	}
	if op.right != nil {
		// Owned build side: a fresh build per Open (the build-side pipeline
		// is opened and drained lazily by joinBuild.run at the first Next).
		op.bld = &joinBuild{right: op.right, rightKeys: op.rightKeys, keyXlat: op.keyXlat}
	}
	op.curBatch = nil
	op.curLive = 0
	op.curChain = -1
	op.hashBuf = nil
	op.leftIdx = op.leftIdx[:0]
	op.rightIdx = op.rightIdx[:0]
	return nil
}

func (op *hashJoinOp) Close() error {
	if err := op.left.Close(); err != nil {
		if op.right != nil {
			op.right.Close()
		}
		return err
	}
	if op.right != nil {
		return op.right.Close()
	}
	return nil
}

// probeHashes computes hashes of the left key columns for a batch.
func (op *hashJoinOp) probeHashes(b *vector.Batch) error {
	if b.N > len(op.hashBuf) {
		op.hashBuf = make([]uint64, b.N)
	}
	hashes := op.hashBuf[:b.N]
	for i, ki := range op.leftKeys {
		if err := hashVector(hashes, b.Vecs[ki], b.Sel, i == 0); err != nil {
			return err
		}
	}
	return nil
}

// keyMatch verifies that build row r equals left batch row pos on all keys.
// Code-domain keys compare the translated build code against the probe
// code — two narrow integer loads, no string touch.
func (op *hashJoinOp) keyMatch(r int32, b *vector.Batch, pos int) bool {
	for i, ki := range op.rightKeys {
		if x := op.keyXlat[i]; x != nil {
			if x[builderCode(op.bld.rbuild[ki], int(r))] != probeCode(b.Vecs[op.leftKeys[i]], pos) {
				return false
			}
			continue
		}
		if !op.bld.rbuild[ki].equalAt(int(r), b.Vecs[op.leftKeys[i]], pos) {
			return false
		}
	}
	return true
}

// residualOK evaluates the residual predicate on (left row pos, right row r).
func (op *hashJoinOp) residualOK(b *vector.Batch, pos int, r int32) bool {
	if op.residual == nil {
		return true
	}
	nl := len(b.Vecs)
	row := make([]any, nl+len(op.bld.rbuild))
	for c, v := range b.Vecs {
		row[c] = v.Value(pos)
	}
	for c, cb := range op.bld.rbuild {
		row[nl+c] = cb.vec().Value(int(r))
	}
	return op.residual(row).(bool)
}

func (op *hashJoinOp) Next() (*vector.Batch, error) {
	// The first prober triggers the shared build; every other prober
	// blocks in run until it completes. Either way the prober cannot make
	// progress itself, so it hands its admission slot back for the
	// duration — with a capped pool, probers parked on once.Do must not
	// hold the slots the build workers need.
	op.opts.slot.Pause()
	err := op.bld.run(op.opts)
	op.opts.slot.Resume()
	if err != nil {
		return nil, err
	}
	switch op.node.Kind {
	case algebra.Inner, algebra.LeftOuter:
		return op.nextExpand()
	default:
		return op.nextFiltered()
	}
}

// nextExpand emits (left,right) pairs for inner and left-outer joins,
// resuming mid-chain across calls.
func (op *hashJoinOp) nextExpand() (*vector.Batch, error) {
	t0 := time.Now()
	bs := op.opts.batchSize()
	op.leftIdx = op.leftIdx[:0]
	op.rightIdx = op.rightIdx[:0]
	outer := op.node.Kind == algebra.LeftOuter

	for len(op.leftIdx) < bs {
		if op.curBatch == nil {
			// Pending output pairs reference the previous batch's vectors;
			// emit them before pulling a new batch.
			if len(op.leftIdx) > 0 {
				break
			}
			b, err := op.left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if err := op.probeHashes(b); err != nil {
				return nil, err
			}
			op.curBatch = b
			op.curLive = 0
			op.curChain = -2 // -2: start a new left row
		}
		b := op.curBatch
		nLive := b.Rows()
		if op.curLive >= nLive {
			op.lastBatch = b
			op.curBatch = nil
			continue
		}
		pos := b.LiveRow(op.curLive)
		if op.curChain == -2 {
			// Begin chain for this left row.
			op.curChain = op.bld.buckets[op.hashBuf[pos]&op.bld.mask] - 1
			op.matchedCur = false
		}
		for op.curChain >= 0 && len(op.leftIdx) < bs {
			r := op.curChain
			op.curChain = op.bld.next[r]
			if op.keyMatch(r, b, pos) && op.residualOK(b, pos, r) {
				op.leftIdx = append(op.leftIdx, int32(pos))
				op.rightIdx = append(op.rightIdx, r)
				op.matchedCur = true
			}
		}
		if op.curChain < 0 {
			if outer && !op.matchedCur {
				op.leftIdx = append(op.leftIdx, int32(pos))
				op.rightIdx = append(op.rightIdx, -1)
			}
			op.curLive++
			op.curChain = -2
		}
	}
	if len(op.leftIdx) == 0 {
		return nil, nil
	}
	out := op.assembleExpand()
	op.opts.Tracer.RecordOperator("HashJoin(probe)", out.Rows(), time.Since(t0))
	return out, nil
}

func (op *hashJoinOp) assembleExpand() *vector.Batch {
	b := op.curBatch
	if b == nil {
		b = op.lastBatch
	}
	nl := len(b.Vecs)
	k := len(op.leftIdx)
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	for c := 0; c < nl; c++ {
		v := vector.New(op.schema[c].Type, k)
		v.Gather(b.Vecs[c], op.leftIdx)
		v.Typ = op.schema[c].Type
		out.Vecs[c] = v
	}
	for c := range op.bld.rbuild {
		out.Vecs[nl+c] = gatherOuter(op.bld.rbuild[c], op.rightIdx, op.schema[nl+c].Type)
	}
	return out
}

// gatherOuter gathers build rows by id, writing the zero value for -1
// (unmatched left-outer rows).
func gatherOuter(cb *colBuilder, idx []int32, t vector.Type) *vector.Vector {
	out := vector.New(t, len(idx))
	src := cb.vec()
	for j, r := range idx {
		if r < 0 {
			continue // zero value
		}
		out.Set(j, src.Value(int(r)))
	}
	out.Typ = t
	return out
}

// nextFiltered handles semi, anti and mark joins: one output row (at most)
// per left row, no expansion.
func (op *hashJoinOp) nextFiltered() (*vector.Batch, error) {
	for {
		t0 := time.Now()
		b, err := op.left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if err := op.probeHashes(b); err != nil {
			return nil, err
		}
		n := b.Rows()
		sel := make([]int32, 0, n)
		var marks []bool
		if op.node.Kind == algebra.Mark {
			marks = make([]bool, b.N)
		}
		check := func(pos int) bool {
			r := op.bld.buckets[op.hashBuf[pos]&op.bld.mask] - 1
			for r >= 0 {
				if op.keyMatch(r, b, pos) && op.residualOK(b, pos, r) {
					return true
				}
				r = op.bld.next[r]
			}
			return false
		}
		emit := func(pos int32) {
			matched := check(int(pos))
			switch op.node.Kind {
			case algebra.Semi:
				if matched {
					sel = append(sel, pos)
				}
			case algebra.Anti:
				if !matched {
					sel = append(sel, pos)
				}
			case algebra.Mark:
				marks[pos] = matched
				sel = append(sel, pos)
			}
		}
		if b.Sel != nil {
			for _, i := range b.Sel {
				emit(i)
			}
		} else {
			for i := 0; i < b.N; i++ {
				emit(int32(i))
			}
		}
		if len(sel) == 0 {
			continue
		}
		out := &vector.Batch{Schema: op.schema, Vecs: b.Vecs, Sel: sel, N: b.N}
		if op.node.Kind == algebra.Mark {
			out.Vecs = append(append([]*vector.Vector{}, b.Vecs...), vector.FromBools(marks))
		}
		op.opts.Tracer.RecordOperator(fmt.Sprintf("HashJoin(%s)", op.node.Kind), len(sel), time.Since(t0))
		return out, nil
	}
}

// cartProdOp is the nested-loop CartProd operator: the paper's default
// physical join (a Select on top applies the join condition).
type cartProdOp struct {
	left, right Operator
	opts        ExecOptions
	schema      vector.Schema

	rbuild    []*colBuilder
	nRight    int
	built     bool
	curBatch  *vector.Batch
	lastBatch *vector.Batch
	curLive   int
	curRight  int
	leftIdx   []int32
	rightIdx  []int32
}

func newCartProdOp(left, right Operator, opts ExecOptions) (*cartProdOp, error) {
	schema := append(left.Schema().Clone(), right.Schema().Clone()...)
	return &cartProdOp{left: left, right: right, opts: opts, schema: schema}, nil
}

func (op *cartProdOp) Schema() vector.Schema { return op.schema }

func (op *cartProdOp) Open() error {
	if err := op.left.Open(); err != nil {
		return err
	}
	if err := op.right.Open(); err != nil {
		return err
	}
	op.built = false
	op.curBatch = nil
	op.curLive = 0
	op.curRight = 0
	return nil
}

func (op *cartProdOp) Close() error {
	if err := op.left.Close(); err != nil {
		op.right.Close()
		return err
	}
	return op.right.Close()
}

func (op *cartProdOp) Next() (*vector.Batch, error) {
	if !op.built {
		rs := op.right.Schema()
		op.rbuild = make([]*colBuilder, len(rs))
		for i, f := range rs {
			op.rbuild[i] = newColBuilder(f.Type)
		}
		for {
			if err := op.opts.life.check(); err != nil {
				return nil, err
			}
			b, err := op.right.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			for i, v := range b.Vecs {
				op.rbuild[i].appendVec(v, b.Sel, b.N)
			}
			op.opts.life.reserve(batchBytes(len(rs), b.Rows()))
		}
		if len(op.rbuild) > 0 {
			op.nRight = op.rbuild[0].len()
		}
		op.built = true
	}
	bs := op.opts.batchSize()
	op.leftIdx = op.leftIdx[:0]
	op.rightIdx = op.rightIdx[:0]
	for len(op.leftIdx) < bs {
		if op.curBatch == nil {
			if len(op.leftIdx) > 0 {
				break
			}
			b, err := op.left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			op.curBatch = b
			op.curLive = 0
			op.curRight = 0
		}
		b := op.curBatch
		if op.curLive >= b.Rows() {
			op.lastBatch = b
			op.curBatch = nil
			continue
		}
		pos := b.LiveRow(op.curLive)
		for op.curRight < op.nRight && len(op.leftIdx) < bs {
			op.leftIdx = append(op.leftIdx, int32(pos))
			op.rightIdx = append(op.rightIdx, int32(op.curRight))
			op.curRight++
		}
		if op.curRight >= op.nRight {
			op.curLive++
			op.curRight = 0
		}
	}
	if len(op.leftIdx) == 0 {
		return nil, nil
	}
	b := op.curBatch
	if b == nil {
		b = op.lastBatch
	}
	nl := len(op.left.Schema())
	k := len(op.leftIdx)
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	for c := 0; c < nl; c++ {
		v := vector.New(op.schema[c].Type, k)
		v.Gather(b.Vecs[c], op.leftIdx)
		v.Typ = op.schema[c].Type
		out.Vecs[c] = v
	}
	for c := range op.rbuild {
		out.Vecs[nl+c] = op.rbuild[c].gather(op.rightIdx)
	}
	return out, nil
}
