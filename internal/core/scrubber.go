package core

import (
	"sort"
	"sync"
	"time"

	"x100/internal/sched"
)

// ScrubberOptions tune the background CRC scrubber (StartScrubber).
type ScrubberOptions struct {
	// Interval is how often the scrubber sweeps the disk-attached tables.
	// <= 0 selects 1s: scrubbing is preventive maintenance, not latency
	// work, so it polls far less often than the compactor.
	Interval time.Duration
	// Pool is the admission-control pool the scrubber draws one execution
	// slot from per sweep, so verification I/O competes with queries for
	// the shared slot budget instead of starving them. nil uses the
	// process-wide default pool.
	Pool *sched.Pool
}

// ScrubStatus is a snapshot of the background scrubber's counters.
type ScrubStatus struct {
	// Sweeps counts completed passes over all disk-attached tables.
	Sweeps int64
	// ChunksVerified and ChunksFailed total the chunk CRC checks across
	// all sweeps; a failed chunk is one whose on-disk bytes no longer
	// match the committed manifest.
	ChunksVerified int64
	ChunksFailed   int64
	// Errors counts sweeps that could not complete (e.g. an unreadable
	// manifest); LastError is the most recent failure, and LastFailure
	// identifies the most recent chunk that failed verification.
	Errors      int64
	LastError   error
	LastFailure string
	// InFlight reports whether a sweep is running right now, and
	// LastTable names the table it (or the previous sweep) touched.
	InFlight  bool
	LastTable string
}

// Scrubber is a background disk scrubber: it periodically re-reads every
// chunk file referenced by the committed manifests of a database's
// disk-attached tables and verifies each against its recorded CRC32,
// surfacing latent corruption (bit rot, torn writes that escaped the
// foreground CRC check) before a query trips over it. Each sweep holds
// one admission slot, like the compactor, so verification I/O is paced
// against query work. Create one with StartScrubber; Stop it before
// discarding the database.
type Scrubber struct {
	db   *Database
	opts ScrubberOptions

	mu     sync.Mutex
	status ScrubStatus

	stop chan struct{}
	done chan struct{}
}

// StartScrubber launches a background CRC scrubber over db's
// disk-attached tables.
func StartScrubber(db *Database, opts ScrubberOptions) *Scrubber {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	s := &Scrubber{db: db, opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	go s.loop()
	return s
}

// Stop halts the scrubber and waits for an in-flight sweep to finish
// (a sweep aborts between chunks, so this is prompt). Idempotent.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	select {
	case <-s.stop:
		s.mu.Unlock()
		<-s.done
		return
	default:
	}
	close(s.stop)
	s.mu.Unlock()
	<-s.done
}

// Status returns a snapshot of the scrubber's counters.
func (s *Scrubber) Status() ScrubStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

func (s *Scrubber) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sweep()
		}
	}
}

// sweep verifies every disk-attached table once, holding one admission
// slot for the whole pass.
func (s *Scrubber) sweep() {
	s.db.mu.RLock()
	names := make([]string, 0, len(s.db.disk))
	for name := range s.db.disk {
		names = append(names, name)
	}
	s.db.mu.RUnlock()
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	s.mu.Lock()
	s.status.InFlight = true
	s.mu.Unlock()
	slot := s.pool().NewSlot()
	slot.Bind(s.stop)
	if !slot.Acquire() {
		s.mu.Lock()
		s.status.InFlight = false
		s.mu.Unlock()
		return
	}
	for _, name := range names {
		if stopping(s.stop) {
			break
		}
		s.db.mu.RLock()
		att := s.db.disk[name]
		s.db.mu.RUnlock()
		if att == nil {
			continue
		}
		s.mu.Lock()
		s.status.LastTable = name
		s.mu.Unlock()
		res, err := att.store.ScrubTable(name, s.stop)
		s.mu.Lock()
		s.status.ChunksVerified += int64(res.Checked)
		s.status.ChunksFailed += int64(len(res.Failed))
		if len(res.Failed) > 0 {
			s.status.LastFailure = res.Failed[0]
		}
		if err != nil {
			s.status.Errors++
			s.status.LastError = err
		}
		s.mu.Unlock()
	}
	slot.Release()
	s.mu.Lock()
	s.status.Sweeps++
	s.status.InFlight = false
	s.mu.Unlock()
}

// stopping is a non-blocking poll of a stop channel.
func stopping(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

func (s *Scrubber) pool() *sched.Pool {
	if s.opts.Pool != nil {
		return s.opts.Pool
	}
	return sched.Default()
}
