package core

import (
	"slices"
	"strings"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/vector"
)

// This file implements the code-domain plan rewrite: group-by keys and
// hash-join keys over dictionary-backed string columns (enum columns and
// merged-dict ColumnBM columns) are replaced by their narrow code columns,
// so aggregation and join hashing/comparison run on uint8/uint16 vectors;
// the decoded strings are rehydrated only at emit — a Fetch1Join against
// the "<column>#dict" mapping table above the aggregation, exactly the
// pattern the paper (and the hand-written Q1 plan) uses for enum columns.
// The rewrite is structural: it never changes the plan's output schema, so
// code-domain and decode-first runs are differentially comparable.

// codeJoinKey annotates one hash-join equi-condition rewritten onto
// dictionary codes. The two sides keep their own dictionaries; the join
// operator builds a right-code -> left-code translation table from them, so
// probe hashing and key comparison stay narrow-native on both sides.
type codeJoinKey struct {
	idx          int // index into Join.On
	ldict, rdict *colstore.Dict
}

// rewriteCodeDomain rewrites plan bottom-up. It returns the original node
// whenever nothing below it changed, so unmodified subtrees are shared, and
// records join-key annotations into opts.codeJoins.
func rewriteCodeDomain(db *Database, n algebra.Node, opts *ExecOptions) algebra.Node {
	switch x := n.(type) {
	case *algebra.Select:
		if in := rewriteCodeDomain(db, x.Input, opts); in != x.Input {
			return algebra.NewSelect(in, x.Pred)
		}
		return x
	case *algebra.Project:
		if in := rewriteCodeDomain(db, x.Input, opts); in != x.Input {
			return algebra.NewProject(in, x.Exprs...)
		}
		return x
	case *algebra.Aggr:
		node := x
		if in := rewriteCodeDomain(db, x.Input, opts); in != x.Input {
			node = &algebra.Aggr{Input: in, GroupBy: x.GroupBy, Aggs: x.Aggs, Mode: x.Mode}
		}
		return rewriteAggrKeys(db, node, opts)
	case *algebra.Join:
		node := x
		l := rewriteCodeDomain(db, x.Left, opts)
		r := rewriteCodeDomain(db, x.Right, opts)
		if l != x.Left || r != x.Right {
			node = cloneJoin(x, l, r, x.On)
		}
		return rewriteJoinKeys(db, node, opts)
	case *algebra.Fetch1Join:
		if in := rewriteCodeDomain(db, x.Input, opts); in != x.Input {
			c := *x
			c.Input = in
			return &c
		}
		return x
	case *algebra.FetchNJoin:
		if in := rewriteCodeDomain(db, x.Input, opts); in != x.Input {
			c := *x
			c.Input = in
			return &c
		}
		return x
	case *algebra.Order:
		if in := rewriteCodeDomain(db, x.Input, opts); in != x.Input {
			return algebra.NewOrder(in, x.Keys...)
		}
		return x
	case *algebra.TopN:
		if in := rewriteCodeDomain(db, x.Input, opts); in != x.Input {
			return algebra.NewTopN(in, x.N, x.Keys...)
		}
		return x
	default:
		return n
	}
}

func cloneJoin(x *algebra.Join, l, r algebra.Node, on []algebra.EquiCond) *algebra.Join {
	return &algebra.Join{Left: l, Right: r, Kind: x.Kind, On: on, Residual: x.Residual, MarkCol: x.MarkCol}
}

// addCodeColumn rewrites the subtree under n so that its output exposes the
// dictionary-code column of the named string column, flowing it up from the
// scan through Selects, Projects, Joins and fetch joins. It returns the
// rewritten node, the name of the exposed code column in n's output, the
// scan-level base column name (for the "<base>#dict" mapping table), and
// the storage column. ok=false leaves the plan untouched (non-code column,
// a pending insert delta, or a shape the pushdown does not handle).
func addCodeColumn(db *Database, n algebra.Node, name string, opts *ExecOptions) (algebra.Node, string, string, *colstore.Column, bool) {
	switch x := n.(type) {
	case *algebra.Scan:
		return scanCodeColumn(x, name, opts)
	case *algebra.Select:
		in, code, base, col, ok := addCodeColumn(db, x.Input, name, opts)
		if !ok {
			return nil, "", "", nil, false
		}
		return algebra.NewSelect(in, x.Pred), code, base, col, true
	case *algebra.Project:
		for _, ne := range x.Exprs {
			if ne.Alias != name {
				continue
			}
			c, isCol := ne.E.(*expr.Col)
			if !isCol {
				return nil, "", "", nil, false
			}
			in, innerCode, base, col, ok := addCodeColumn(db, x.Input, c.Name, opts)
			if !ok {
				return nil, "", "", nil, false
			}
			code := name + CodeSuffix
			exprs := slices.Clone(x.Exprs)
			if !hasAlias(exprs, code) {
				exprs = append(exprs, algebra.NE(code, expr.C(innerCode)))
			}
			return algebra.NewProject(in, exprs...), code, base, col, true
		}
		return nil, "", "", nil, false
	case *algebra.Join:
		if in, code, base, col, ok := addCodeColumn(db, x.Left, name, opts); ok {
			return cloneJoin(x, in, x.Right, x.On), code, base, col, true
		}
		if x.Kind != algebra.Inner {
			// Semi/anti/mark joins only output the left side (a same-named
			// right column would be a different attribute), and left-outer
			// joins zero-pad unmatched right rows: a padded code 0 would
			// rehydrate to dictionary value 0 instead of the empty string,
			// so right-side code columns are only safe through inner joins.
			return nil, "", "", nil, false
		}
		if in, code, base, col, ok := addCodeColumn(db, x.Right, name, opts); ok {
			return cloneJoin(x, x.Left, in, x.On), code, base, col, true
		}
		return nil, "", "", nil, false
	case *algebra.Fetch1Join:
		if fetches(x.Cols, x.As, name) {
			return nil, "", "", nil, false
		}
		in, code, base, col, ok := addCodeColumn(db, x.Input, name, opts)
		if !ok {
			return nil, "", "", nil, false
		}
		c := *x
		c.Input = in
		return &c, code, base, col, true
	case *algebra.FetchNJoin:
		if fetches(x.Cols, x.As, name) {
			return nil, "", "", nil, false
		}
		in, code, base, col, ok := addCodeColumn(db, x.Input, name, opts)
		if !ok {
			return nil, "", "", nil, false
		}
		c := *x
		c.Input = in
		return &c, code, base, col, true
	default:
		return nil, "", "", nil, false
	}
}

// fetches reports whether a fetch join emits an output column called name.
func fetches(cols, as []string, name string) bool {
	for i, c := range cols {
		out := c
		if i < len(as) && as[i] != "" {
			out = as[i]
		}
		if out == name {
			return true
		}
	}
	return false
}

func hasAlias(exprs []algebra.NamedExpr, alias string) bool {
	for _, ne := range exprs {
		if ne.Alias == alias {
			return true
		}
	}
	return false
}

// scanCodeColumn exposes "<name>#" on a Scan when the named column has a
// code domain and the table has no pending insert delta (delta rows carry
// values the compiled code constants have never seen; the decode-first
// path stays correct for them). Both checks resolve through the query's
// captured view, so the decision matches what the scan will read.
func scanCodeColumn(sc *algebra.Scan, name string, opts *ExecOptions) (algebra.Node, string, string, *colstore.Column, bool) {
	v, err := opts.snaps.view(sc.Table)
	if err != nil || v.delta.NumDeltaRows() > 0 {
		return nil, "", "", nil, false
	}
	col := v.col(name)
	if col == nil {
		return nil, "", "", nil, false
	}
	if _, _, ok := col.CodeDomain(); !ok {
		return nil, "", "", nil, false
	}
	code := name + CodeSuffix
	cols := sc.Cols
	if len(cols) == 0 {
		cols = make([]string, 0, len(v.cols)+1)
		for _, c := range v.cols {
			cols = append(cols, c.Name)
		}
	} else {
		if !slices.Contains(cols, name) {
			return nil, "", "", nil, false
		}
		if slices.Contains(cols, code) {
			return sc, code, name, col, true
		}
		cols = slices.Clone(cols)
	}
	return algebra.NewScan(sc.Table, append(cols, code)...), code, name, col, true
}

// dictTableOK verifies the captured "<base>#dict" mapping table matches
// the column's dictionary value-for-value (it is a snapshot taken at
// attach/registration time; a dictionary grown since must not be
// rehydrated through it). The mapping table resolves through the query's
// snapshot set, so the check and the later Fetch1Join see the same table.
func dictTableOK(opts *ExecOptions, base string, d *colstore.Dict) bool {
	v, err := opts.snaps.view(base + DictSuffix)
	if err != nil || len(v.cols) == 0 {
		return false
	}
	c := v.cols[0]
	if c.Typ != vector.String || v.n != d.Len() {
		return false
	}
	data, err := c.Pin()
	if err != nil {
		return false
	}
	vals, ok := data.([]string)
	if !ok {
		return false
	}
	dvals := d.Strings()
	if len(dvals) < len(vals) {
		return false
	}
	for i, v := range vals {
		if dvals[i] != v {
			return false
		}
	}
	return true
}

// rewriteAggrKeys rewrites bare-column group keys over dictionary-backed
// string columns onto their code columns: the aggregation hashes and
// compares uint8/uint16 codes (auto-selecting direct aggregation for small
// domains), and a Fetch1Join against the mapping table rehydrates the
// strings only for the emitted groups. The output schema is restored by a
// final Project, so the rewrite is invisible to the rest of the plan.
func rewriteAggrKeys(db *Database, n *algebra.Aggr, opts *ExecOptions) algebra.Node {
	if n.Mode != algebra.ModeAuto || len(n.GroupBy) == 0 {
		return n
	}
	if _, isOrd := n.Input.(*algebra.Order); isOrd {
		// Ordered aggregation relies on the input sort matching the group
		// expressions; keep it intact.
		return n
	}
	input := n.Input
	groups := slices.Clone(n.GroupBy)
	type rehydration struct{ alias, codeAlias, dictTable string }
	var rhs []rehydration
	var rewrittenNames []string
	for gi, g := range groups {
		c, isCol := g.E.(*expr.Col)
		if !isCol {
			continue
		}
		in, code, base, col, ok := addCodeColumn(db, input, c.Name, opts)
		if !ok {
			continue
		}
		d, _, _ := col.CodeDomain()
		if !dictTableOK(opts, base, d) {
			continue
		}
		codeAlias := g.Alias + CodeSuffix
		input = in
		groups[gi] = algebra.NE(codeAlias, expr.C(code))
		rhs = append(rhs, rehydration{alias: g.Alias, codeAlias: codeAlias, dictTable: base + DictSuffix})
		rewrittenNames = append(rewrittenNames, c.Name)
	}
	if len(rhs) == 0 {
		return n
	}
	input = pruneRewrittenKeys(input, groups, n.Aggs, rewrittenNames)
	var out algebra.Node = &algebra.Aggr{Input: input, GroupBy: groups, Aggs: n.Aggs, Mode: n.Mode}
	for _, rh := range rhs {
		out = algebra.NewFetch1Join(out, rh.dictTable,
			expr.CastE(vector.Int32, expr.C(rh.codeAlias)), "value").Renamed(rh.alias)
	}
	// Restore the original output schema (names and order); the code-key
	// columns are dropped here.
	proj := make([]algebra.NamedExpr, 0, len(n.GroupBy)+len(n.Aggs))
	for _, g := range n.GroupBy {
		proj = append(proj, algebra.NE(g.Alias, expr.C(g.Alias)))
	}
	for _, a := range n.Aggs {
		proj = append(proj, algebra.NE(a.Alias, expr.C(a.Alias)))
	}
	return algebra.NewProject(out, proj...)
}

// pruneRewrittenKeys drops the decoded string columns replaced by code
// keys from the scan below the aggregation when nothing else references
// them (no aggregate argument, no remaining group expression, no select
// predicate on the way down). It only walks Select chains over a Scan —
// deeper shapes keep the column, which is correct, just not minimal.
func pruneRewrittenKeys(n algebra.Node, groups []algebra.NamedExpr, aggs []algebra.AggExpr, names []string) algebra.Node {
	if len(names) == 0 {
		return n
	}
	drop := make(map[string]bool, len(names))
	for _, name := range names {
		drop[name] = true
	}
	for _, g := range groups {
		for _, c := range expr.Columns(g.E, nil) {
			delete(drop, c)
		}
	}
	for _, a := range aggs {
		if a.Arg != nil {
			for _, c := range expr.Columns(a.Arg, nil) {
				delete(drop, c)
			}
		}
	}
	return pruneScanCols(n, drop)
}

func pruneScanCols(n algebra.Node, drop map[string]bool) algebra.Node {
	if len(drop) == 0 {
		return n
	}
	switch x := n.(type) {
	case *algebra.Scan:
		if len(x.Cols) == 0 {
			return x
		}
		kept := make([]string, 0, len(x.Cols))
		for _, c := range x.Cols {
			if !drop[c] {
				kept = append(kept, c)
			}
		}
		if len(kept) == len(x.Cols) || len(kept) == 0 {
			return x
		}
		return algebra.NewScan(x.Table, kept...)
	case *algebra.Select:
		for _, c := range expr.Columns(x.Pred, nil) {
			delete(drop, c)
		}
		if in := pruneScanCols(x.Input, drop); in != x.Input {
			return algebra.NewSelect(in, x.Pred)
		}
		return x
	default:
		return n
	}
}

// rewriteJoinKeys rewrites equi-join keys where both sides are
// dictionary-backed string columns onto their code columns and records the
// translation annotation for hash-join construction. A wrapping Project
// restores the original output schema.
func rewriteJoinKeys(db *Database, n *algebra.Join, opts *ExecOptions) algebra.Node {
	if len(n.On) == 0 {
		return n
	}
	left, right := n.Left, n.Right
	on := slices.Clone(n.On)
	var keys []codeJoinKey
	for i, c := range n.On {
		if strings.HasSuffix(c.L, CodeSuffix) || strings.HasSuffix(c.R, CodeSuffix) {
			continue // already a code key (hand-written plan)
		}
		nl, lcode, _, lcol, lok := addCodeColumn(db, left, c.L, opts)
		if !lok {
			continue
		}
		nr, rcode, _, rcol, rok := addCodeColumn(db, right, c.R, opts)
		if !rok {
			continue
		}
		ld, _, _ := lcol.CodeDomain()
		rd, _, _ := rcol.CodeDomain()
		left, right = nl, nr
		on[i] = algebra.EquiCond{L: lcode, R: rcode}
		keys = append(keys, codeJoinKey{idx: i, ldict: ld, rdict: rd})
	}
	if len(keys) == 0 {
		return n
	}
	orig, err := n.Out(db)
	if err != nil {
		return n
	}
	j2 := cloneJoin(n, left, right, on)
	if opts.codeJoins == nil {
		opts.codeJoins = make(map[*algebra.Join][]codeJoinKey)
	}
	opts.codeJoins[j2] = keys
	proj := make([]algebra.NamedExpr, len(orig))
	for i, f := range orig {
		proj[i] = algebra.NE(f.Name, expr.C(f.Name))
	}
	return algebra.NewProject(j2, proj...)
}
