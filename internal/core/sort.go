package core

import (
	"sort"
	"time"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/vector"
)

// orderOp is the materializing sort operator. It drains its input into
// columnar builders (plus one builder per computed sort key), sorts an index
// permutation, and re-emits batches in order. TopN shares the machinery and
// truncates the permutation.
type orderOp struct {
	input Operator
	keys  []algebra.OrdExpr
	limit int // <= 0: no limit (Order); > 0: TopN
	opts  ExecOptions

	schema   vector.Schema
	keyProgs []*expr.Prog
	keyPass  []int

	cols    []*colBuilder
	keyCols []*colBuilder
	perm    []int32
	done    bool
	emitPos int
}

func newOrderOp(input Operator, keys []algebra.OrdExpr, limit int, opts ExecOptions) (*orderOp, error) {
	in := input.Schema()
	op := &orderOp{input: input, keys: keys, limit: limit, opts: opts, schema: in.Clone()}
	for _, k := range keys {
		if c, ok := k.E.(*expr.Col); ok {
			if i := in.ColIndex(c.Name); i >= 0 {
				op.keyPass = append(op.keyPass, i)
				op.keyProgs = append(op.keyProgs, nil)
				continue
			}
		}
		prog, err := expr.Compile(k.E, in, opts.exprOptions())
		if err != nil {
			return nil, err
		}
		op.keyPass = append(op.keyPass, -1)
		op.keyProgs = append(op.keyProgs, prog)
	}
	return op, nil
}

func (op *orderOp) Schema() vector.Schema { return op.schema }

func (op *orderOp) Open() error {
	op.done = false
	op.emitPos = 0
	op.cols = nil
	op.keyCols = nil
	op.perm = nil
	return op.input.Open()
}

func (op *orderOp) Close() error { return op.input.Close() }

func (op *orderOp) Next() (*vector.Batch, error) {
	if !op.done {
		if err := op.consume(); err != nil {
			return nil, err
		}
		op.done = true
	}
	total := len(op.perm)
	if op.emitPos >= total {
		return nil, nil
	}
	k := min(op.opts.batchSize(), total-op.emitPos)
	idx := op.perm[op.emitPos : op.emitPos+k]
	op.emitPos += k
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	for c, cb := range op.cols {
		out.Vecs[c] = cb.gather(idx)
	}
	return out, nil
}

func (op *orderOp) consume() error {
	var self time.Duration
	in := op.input.Schema()
	op.cols = make([]*colBuilder, len(in))
	for i, f := range in {
		op.cols[i] = newColBuilder(f.Type)
	}
	op.keyCols = make([]*colBuilder, len(op.keys))
	for i := range op.keys {
		var t vector.Type
		if pi := op.keyPass[i]; pi >= 0 {
			t = in[pi].Type
		} else {
			t = op.keyProgs[i].OutType()
		}
		op.keyCols[i] = newColBuilder(t)
	}
	for {
		// Batch boundary: cancellation/deadline/budget check of the sort's
		// materialization loop (also the check point of each parallel run).
		if err := op.opts.life.check(); err != nil {
			return err
		}
		b, err := op.input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		op.opts.life.reserve(batchBytes(len(in)+len(op.keys), b.Rows()))
		t0 := time.Now()
		for c, v := range b.Vecs {
			op.cols[c].appendVec(v, b.Sel, b.N)
		}
		for i := range op.keys {
			var kv *vector.Vector
			if pi := op.keyPass[i]; pi >= 0 {
				kv = b.Vecs[pi]
			} else {
				kv = op.keyProgs[i].Run(b)
			}
			op.keyCols[i].appendVec(kv, b.Sel, b.N)
		}
		op.maybePrune()
		self += time.Since(t0)
	}
	t1 := time.Now()
	n := 0
	if len(op.cols) > 0 {
		n = op.cols[0].len()
	}
	op.perm = make([]int32, n)
	for i := range op.perm {
		op.perm[i] = int32(i)
	}
	op.sortPerm(op.perm)
	if op.limit > 0 && len(op.perm) > op.limit {
		op.perm = op.perm[:op.limit]
	}
	name := "Order"
	if op.limit > 0 {
		name = "TopN"
	}
	op.opts.Tracer.RecordOperator(name, n, self+time.Since(t1))
	return nil
}

// sortPerm stably sorts a row permutation by the sort keys. Stability ranks
// equal rows by arrival order, which is what makes TopN pruning
// semantics-preserving.
func (op *orderOp) sortPerm(perm []int32) {
	sort.SliceStable(perm, func(a, b int) bool {
		i, j := int(perm[a]), int(perm[b])
		for c, k := range op.keys {
			cb := op.keyCols[c]
			if cb.equalRows(i, j) {
				continue
			}
			if k.Desc {
				return cb.less(j, i)
			}
			return cb.less(i, j)
		}
		return false
	})
}

// topNPruneFloor is the minimum candidate-set size before a TopN prune fires;
// below it a full sort at the end is cheaper than periodic re-sorting.
const topNPruneFloor = 4096

// maybePrune bounds TopN memory. Instead of materializing the whole input,
// whenever the buffered candidate set grows past max(4*limit, topNPruneFloor)
// it sorts a permutation, keeps the stable top limit rows, and gathers them
// into fresh builders. A dropped row has >= limit rows stably ranked ahead of
// it that are all kept, so it can never re-enter the final top N.
func (op *orderOp) maybePrune() {
	if op.limit <= 0 || len(op.keyCols) == 0 {
		return
	}
	bound := max(4*op.limit, topNPruneFloor)
	n := op.keyCols[0].len()
	if n <= bound {
		return
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	op.sortPerm(perm)
	perm = perm[:op.limit]
	for i, cb := range op.cols {
		nb := newColBuilder(cb.typ)
		nb.appendVec(cb.vec(), perm, len(perm))
		op.cols[i] = nb
	}
	for i, cb := range op.keyCols {
		nb := newColBuilder(cb.typ)
		nb.appendVec(cb.vec(), perm, len(perm))
		op.keyCols[i] = nb
	}
}
