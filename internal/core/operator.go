package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/sched"
	"x100/internal/trace"
	"x100/internal/vector"
)

// Operator is the X100 physical operator interface: a Volcano-style pull
// iterator whose granularity is a vector batch, not a tuple.
type Operator interface {
	// Open prepares the operator (and its children) for execution.
	Open() error
	// Next returns the next batch, or nil at end of dataflow. The returned
	// batch (and its vectors) are only valid until the following Next call.
	Next() (*vector.Batch, error)
	// Close releases resources.
	Close() error
	// Schema returns the output schema.
	Schema() vector.Schema
}

// ExecOptions configure plan execution.
type ExecOptions struct {
	// BatchSize is the vector length (the paper's default is ~1000 values;
	// Figure 10 sweeps it from 1 to 4M).
	BatchSize int
	// Fuse enables compound-primitive fusion in expressions.
	Fuse bool
	// Tracer collects per-primitive statistics (nil disables).
	Tracer *trace.Collector
	// NoSummaryIndex disables summary-index range pruning (ablation).
	NoSummaryIndex bool
	// NoCodeDomain disables code-domain execution: the scan-select fusion
	// with selection pushdown, string-predicate translation onto dictionary
	// codes, and the group-by/join-key code rewrite. Everything then runs
	// decode-first, which is the comparison baseline of the compressed
	// benchmark and the differential tests.
	NoCodeDomain bool
	// codeJoins carries the code-domain join-key annotations produced by
	// the plan rewrite (see rewriteCodeDomain) to hash-join construction.
	codeJoins map[*algebra.Join][]codeJoinKey
	// Parallelism is the number of worker pipelines for intra-query
	// parallelism. 0 and 1 run single-threaded; negative values select
	// runtime.GOMAXPROCS(0). Partitionable plan fragments (scan → select →
	// project chains, hash-join probes, and the input of hash/direct
	// aggregation) are split into row-range morsels executed by that many
	// goroutines; the rest of the plan runs serially on the merged stream.
	Parallelism int
	// Sched is the admission-control pool worker goroutines draw execution
	// slots from. nil selects the process-wide default pool (sched.Default,
	// sized to GOMAXPROCS), so concurrent queries share one slot budget
	// instead of oversubscribing cores with private worker fleets.
	Sched *sched.Pool
	// slot is the execution slot of the worker pipeline this options copy
	// was compiled for (set by workerOptions); nil on serial pipelines and
	// on the coordinator's own options.
	slot *sched.Slot
	// snaps is the query's snapshot set: the frozen per-table views every
	// operator of this plan resolves tables through (see snapshot.go).
	// Build creates it when absent; worker options copies share it.
	snaps *snapSet
	// Ctx, when non-nil, attaches a cancellation/deadline signal to the
	// query: every morsel and batch boundary checks it, and Run returns a
	// wrapped context error (context.Canceled / context.DeadlineExceeded)
	// with all slots, generation leases, and snapshot views released.
	Ctx context.Context
	// MemLimit, when positive, bounds the query's accounted memory in
	// bytes (batch buffers, sort runs, join builds, aggregation
	// accumulators, pinned decoded chunks). A query that crosses it fails
	// with a wrapped ErrMemoryBudget at the next batch boundary.
	MemLimit int64
	// life is the shared per-query lifecycle state derived from Ctx and
	// MemLimit (set by Run; shared by pointer across worker copies like
	// snaps). nil when the query asked for neither.
	life *lifecycle
}

// DefaultOptions returns the standard execution configuration.
func DefaultOptions() ExecOptions {
	return ExecOptions{BatchSize: vector.DefaultBatchSize, Fuse: true}
}

func (o ExecOptions) exprOptions() expr.Options {
	return expr.Options{Fuse: o.Fuse, Tracer: o.Tracer}
}

func (o ExecOptions) batchSize() int {
	if o.BatchSize <= 0 {
		return vector.DefaultBatchSize
	}
	return o.BatchSize
}

// pool resolves the Sched field to the admission pool: an explicit pool,
// or the process-wide default.
func (o ExecOptions) pool() *sched.Pool {
	if o.Sched != nil {
		return o.Sched
	}
	return sched.Default()
}

// parallelism resolves the Parallelism field to a worker count.
func (o ExecOptions) parallelism() int {
	if o.Parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism == 0 {
		return 1
	}
	return o.Parallelism
}

// Result is a fully materialized query result.
type Result struct {
	Schema vector.Schema
	cols   []*colBuilder
	n      int
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return r.n }

// Row returns row i as boxed values.
func (r *Result) Row(i int) []any {
	row := make([]any, len(r.cols))
	for c, cb := range r.cols {
		row[c] = cb.vec().Value(i)
	}
	return row
}

// Rows materializes all rows (tests and small outputs).
func (r *Result) Rows() [][]any {
	out := make([][]any, r.n)
	for i := range out {
		out[i] = r.Row(i)
	}
	return out
}

// Col returns result column i as a vector.
func (r *Result) Col(i int) *vector.Vector { return r.cols[i].vec() }

// Format renders the result as an aligned text table (up to max rows;
// max <= 0 means all).
func (r *Result) Format(max int) string {
	var b strings.Builder
	for i, f := range r.Schema {
		if i > 0 {
			b.WriteString("\t")
		}
		b.WriteString(f.Name)
	}
	b.WriteString("\n")
	n := r.n
	if max > 0 && n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		for c, v := range r.Row(i) {
			if c > 0 {
				b.WriteString("\t")
			}
			switch x := v.(type) {
			case float64:
				fmt.Fprintf(&b, "%.4f", x)
			default:
				fmt.Fprintf(&b, "%v", x)
			}
		}
		b.WriteString("\n")
	}
	if n < r.n {
		fmt.Fprintf(&b, "... (%d rows total)\n", r.n)
	}
	return b.String()
}

// AppendBatch adds the live rows of a batch to the result (used by the
// baseline engines, which materialize relations wholesale).
func (r *Result) AppendBatch(b *vector.Batch) {
	if r.cols == nil {
		r.cols = make([]*colBuilder, len(r.Schema))
		for i, f := range r.Schema {
			r.cols[i] = newColBuilder(f.Type)
		}
	}
	for i, v := range b.Vecs {
		r.cols[i].appendVec(v, b.Sel, b.N)
	}
	r.n += b.Rows()
}

// AppendRow adds one boxed row (tuple-at-a-time engine output).
func (r *Result) AppendRow(row []any) {
	if r.cols == nil {
		r.cols = make([]*colBuilder, len(r.Schema))
		for i, f := range r.Schema {
			r.cols[i] = newColBuilder(f.Type)
		}
	}
	for i, cb := range r.cols {
		cb.appendValue(row[i])
	}
	r.n++
}

// Drain pulls an operator to exhaustion, materializing the result.
func Drain(op Operator) (*Result, error) { return drain(op, nil) }

// drain is Drain with a query lifecycle: every batch checks for
// cancellation/deadline/budget violations, and the materialized result's
// growth is charged against the memory budget.
func drain(op Operator, life *lifecycle) (*Result, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	schema := op.Schema()
	res := &Result{Schema: schema, cols: make([]*colBuilder, len(schema))}
	for i, f := range schema {
		res.cols[i] = newColBuilder(f.Type)
	}
	for {
		if err := life.check(); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for i, v := range b.Vecs {
			res.cols[i].appendVec(v, b.Sel, b.N)
		}
		res.n += b.Rows()
		life.reserve(batchBytes(len(schema), b.Rows()))
	}
	return res, nil
}

// scalar hash helpers consistent with the vectorized hash primitives.
func hashCombine(h, v uint64) uint64            { return primitives.HashCombineValueInt(h, v) }
func hashCombineF64(h uint64, f float64) uint64 { return primitives.HashCombineValueF64(h, f) }
func hashCombineStr(h uint64, s string) uint64  { return primitives.HashCombineValueStr(h, s) }
