package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/sched"
	"x100/internal/trace"
	"x100/internal/vector"
)

// This file implements intra-query parallelism: morsel-driven partitioned
// scans, the exchange (fan-out/fan-in) operator, and parallel partial
// aggregation with a merge phase. The paper executes on one core; on
// multi-core hardware the same vectorized pipelines parallelize naturally
// because all per-batch state (selection vectors, expression registers,
// decode buffers) is owned by the operator instance, so cloning the
// pipeline per worker makes each goroutine race-free by construction.
// Shared read-only structures — base column fragments, dictionaries,
// summary indices, and the hash-join build — are probed concurrently
// without locks.

// defaultMorselRows is the number of rows handed to a worker per claim: a
// multiple of the vector size large enough to amortize the atomic claim,
// small enough that stragglers rebalance (morsel-driven scheduling).
const defaultMorselRows = 16384

// morselSource hands out contiguous row-range morsels of a scan to worker
// pipelines. Claiming is a single atomic add, so workers that finish early
// keep pulling work until the range is exhausted.
//
// For disk-backed tables the morsel grid is aligned to the table's ColumnBM
// chunk size: the morsel length is rounded up to a chunk multiple and
// claims start on the chunk grid, so two workers never split one chunk
// (each compressed chunk is decoded by exactly one worker; only the scan
// range's pruned edges can begin or end mid-chunk).
type morselSource struct {
	lo, hi int
	base   int // first grid position, <= lo
	morsel int
	next   atomic.Int64
}

func newMorselSource(lo, hi, align int, opts ExecOptions) *morselSource {
	morsel := max(opts.batchSize(), defaultMorselRows)
	if align > 0 {
		morsel = (morsel + align - 1) / align * align
	}
	base := lo
	if align > 0 {
		base = lo / morsel * morsel
	}
	m := &morselSource{lo: lo, hi: hi, base: base, morsel: morsel}
	m.next.Store(int64(base))
	return m
}

// reset rewinds the dispenser so a re-Opened plan scans the full range
// again. The coordinating operator (exchange, parallel aggregation) calls
// it at Open, before any worker goroutine starts claiming.
func (m *morselSource) reset() { m.next.Store(int64(m.base)) }

// claim returns the next unclaimed morsel [lo,hi), or ok=false when the
// range is exhausted.
func (m *morselSource) claim() (int, int, bool) {
	lo := int(m.next.Add(int64(m.morsel))) - m.morsel
	if lo >= m.hi {
		return 0, 0, false
	}
	return max(lo, m.lo), min(lo+m.morsel, m.hi), true
}

// exchMsg is one hand-off from a worker to the consumer.
type exchMsg struct {
	b   *vector.Batch
	err error
}

// exchangeOp merges the batch streams of N worker pipelines into one
// stream (the exchange operator of parallel Volcano engines). Each worker
// goroutine pulls from its own partition pipeline and copies live rows
// into an owned buffer batch before sending, preserving the "batch valid
// until the next Next()" contract across the goroutine boundary; buffers
// recycle through a free list so the steady state allocates nothing.
// Batch order across partitions is not deterministic — order-sensitive
// consumers (Order, TopN) sort downstream.
//
// Workers are goroutines but not threads of their own: each holds an
// admission slot from the shared scheduler pool while it computes,
// releases it around blocking hand-offs to a slow consumer, and yields it
// at morsel boundaries (see scanOp.claimRange), so the morsels of all
// in-flight queries multiplex over one process-wide slot budget.
type exchangeOp struct {
	parts   []Operator      // per-worker partition pipelines
	extra   []Operator      // shared build-side pipelines to close with the op
	sources []*morselSource // morsel dispensers, rewound at Open
	tracers []*trace.Collector
	slots   []*sched.Slot // per-worker admission slots, parallel to parts
	opts    ExecOptions
	schema  vector.Schema

	out     chan exchMsg
	recycle chan *vector.Batch
	stop    chan struct{}
	// stopFn idempotently closes stop. It is re-created per Open and
	// captured by value in the lifecycle watcher goroutine, so a watcher
	// from a previous Open can never race a later Open's state.
	stopFn func()
	wg     sync.WaitGroup
	cur    *vector.Batch
	merged bool
}

func newExchangeOpFromParts(parts []Operator, ctx *parCtx, tracers []*trace.Collector, slots []*sched.Slot, opts ExecOptions) *exchangeOp {
	return &exchangeOp{
		parts:   parts,
		extra:   ctx.extra,
		sources: ctx.sources(),
		tracers: tracers,
		slots:   slots,
		opts:    opts,
		schema:  parts[0].Schema(),
	}
}

func (e *exchangeOp) Schema() vector.Schema { return e.schema }

func (e *exchangeOp) Open() error {
	for _, src := range e.sources {
		src.reset()
	}
	for i, p := range e.parts {
		if err := p.Open(); err != nil {
			for _, q := range e.parts[:i] {
				q.Close()
			}
			return err
		}
	}
	e.out = make(chan exchMsg, len(e.parts))
	e.recycle = make(chan *vector.Batch, 2*len(e.parts)+1)
	e.stop = make(chan struct{})
	stopCh := e.stop
	var stopOnce sync.Once
	e.stopFn = func() { stopOnce.Do(func() { close(stopCh) }) }
	e.cur = nil
	e.merged = false
	for i, p := range e.parts {
		e.wg.Add(1)
		go e.worker(i, p)
	}
	go func() {
		e.wg.Wait()
		close(e.out)
	}()
	if done := e.opts.life.stop(); done != nil {
		// Lifecycle watcher: propagate query cancellation/deadline into
		// the exchange's stop signal so every worker — computing, queued
		// for a slot, or parked on a hand-off — unwinds within one
		// scheduler quantum. Exits with the exchange either way.
		stopFn := e.stopFn
		go func() {
			select {
			case <-done:
				stopFn()
			case <-stopCh:
			}
		}()
	}
	return nil
}

func (e *exchangeOp) worker(i int, p Operator) {
	defer e.wg.Done()
	slot := e.slots[i]
	slot.Bind(e.stop)
	if !slot.Acquire() {
		return
	}
	defer slot.Release()
	for {
		// An abandoned query (Close before exhaustion) stops within one
		// batch: queued slot waits cancel via the Bind above, and the
		// stop check here catches workers that never re-queue.
		select {
		case <-e.stop:
			return
		default:
		}
		b, err := p.Next()
		if err != nil {
			slot.Release()
			select {
			case e.out <- exchMsg{err: err}:
			case <-e.stop:
			}
			return
		}
		if b == nil {
			return
		}
		var buf *vector.Batch
		select {
		case buf = <-e.recycle:
		default:
			buf = &vector.Batch{}
		}
		buf.CopyFrom(b)
		// Fast path: the consumer is keeping up, hand off without pool
		// traffic. Otherwise release the slot for the duration of the
		// blocking send — a stalled consumer must not park a core.
		select {
		case e.out <- exchMsg{b: buf}:
			continue
		case <-e.stop:
			return
		default:
		}
		slot.Release()
		select {
		case e.out <- exchMsg{b: buf}:
		case <-e.stop:
			return
		}
		if !slot.Acquire() {
			return
		}
	}
}

func (e *exchangeOp) Next() (*vector.Batch, error) {
	t0 := time.Now()
	if e.cur != nil {
		select {
		case e.recycle <- e.cur:
		default:
		}
		e.cur = nil
	}
	msg, ok := <-e.out
	if !ok {
		// A cancelled query's workers exit without sending an error; the
		// lifecycle check turns the resulting early EOF into the wrapped
		// context (or budget) error instead of a silent truncated result.
		return nil, e.opts.life.err()
	}
	if msg.err != nil {
		e.signalStop()
		return nil, msg.err
	}
	e.cur = msg.b
	e.opts.Tracer.RecordOperator("Exchange", msg.b.Rows(), time.Since(t0))
	return msg.b, nil
}

func (e *exchangeOp) signalStop() {
	if e.stopFn != nil {
		e.stopFn()
	}
}

func (e *exchangeOp) Close() error {
	if e.stop != nil {
		e.signalStop()
		// Unblock workers parked on the full out channel, then wait them
		// out (the closer goroutine closes out after the last worker).
		for range e.out {
		}
	}
	var firstErr error
	for _, p := range e.parts {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range e.extra {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.mergeTracers()
	return firstErr
}

func (e *exchangeOp) mergeTracers() {
	if e.merged {
		return
	}
	e.merged = true
	for _, tr := range e.tracers {
		e.opts.Tracer.Merge(tr)
	}
}

// schemaOnlyOp is a zero-row input used to instantiate the merge-phase
// aggregation of parallelAggrOp with the partition pipelines' schema.
type schemaOnlyOp struct{ schema vector.Schema }

func (s schemaOnlyOp) Schema() vector.Schema        { return s.schema }
func (s schemaOnlyOp) Open() error                  { return nil }
func (s schemaOnlyOp) Next() (*vector.Batch, error) { return nil, nil }
func (s schemaOnlyOp) Close() error                 { return nil }

// parallelAggrOp executes an aggregation in two phases: N workers each run
// a full aggrOp over their partition of the input (partial aggregation,
// building thread-local group tables), then the partials merge into one
// final group table which emits the result. The merge is order-insensitive
// — sums and counts add, min/max compare, avg combines sums and row counts
// before finalization — so the group set and all integer aggregates are
// identical to serial execution; float aggregates agree up to summation
// order.
type parallelAggrOp struct {
	workers []*aggrOp
	extra   []Operator
	sources []*morselSource
	tracers []*trace.Collector
	slots   []*sched.Slot
	merged  *aggrOp
	opts    ExecOptions
	done    bool
}

func (op *parallelAggrOp) Schema() vector.Schema { return op.merged.Schema() }

func (op *parallelAggrOp) Open() error {
	op.done = false
	for _, src := range op.sources {
		src.reset()
	}
	return op.merged.Open()
}

func (op *parallelAggrOp) Close() error {
	var firstErr error
	for _, w := range op.workers {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range op.extra {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := op.merged.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (op *parallelAggrOp) Next() (*vector.Batch, error) {
	if !op.done {
		if err := op.run(); err != nil {
			return nil, err
		}
		op.done = true
	}
	return op.merged.emit()
}

// run executes the partial-aggregation phase on worker goroutines, then
// merges the partials in worker order (fixed merge order keeps repeated
// runs at the same parallelism bit-identical for a given partitioning).
func (op *parallelAggrOp) run() error {
	t0 := time.Now()
	errs := make([]error, len(op.workers))
	var wg sync.WaitGroup
	for i, w := range op.workers {
		wg.Add(1)
		go func(i int, w *aggrOp) {
			defer wg.Done()
			slot := op.slots[i]
			slot.Bind(op.opts.life.stop())
			if !slot.Acquire() {
				errs[i] = op.opts.life.check()
				return
			}
			defer slot.Release()
			if err := w.Open(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.consume()
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, w := range op.workers {
		op.merged.mergeFrom(w)
	}
	for _, tr := range op.tracers {
		op.opts.Tracer.Merge(tr)
	}
	op.merged.done = true
	op.opts.Tracer.RecordOperator("Aggr(parallel-merge)", op.merged.nGroups, time.Since(t0))
	return nil
}

// --- parallel plan compilation ---

// partitionable reports whether the subtree rooted at plan can be compiled
// into per-worker partition pipelines over a shared morsel source: a chain
// of Select/Project/Fetch1Join/FetchNJoin and hash-join probe sides rooted
// at a Scan. Pending insert deltas are checkpointed into base fragments
// before parallel compilation (see Build), and deletion lists are applied
// as selection vectors inside the partitioned scan, so only the rare
// un-checkpointable table (enum dictionary outgrew its code width) still
// falls back to the serial merged scan.
func partitionable(opts ExecOptions, plan algebra.Node) bool {
	switch n := plan.(type) {
	case *algebra.Scan:
		// Resolved through the query's captured view, so the decision is
		// consistent with what the partitioned scan will actually read even
		// when writers append concurrently.
		v, err := opts.snaps.view(n.Table)
		if err != nil {
			return false
		}
		return v.delta.NumDeltaRows() == 0
	case *algebra.Select:
		return partitionable(opts, n.Input)
	case *algebra.Project:
		return partitionable(opts, n.Input)
	case *algebra.Join:
		// Equi-joins only: the probe side partitions, the build side is
		// materialized once and probed concurrently.
		return len(n.On) > 0 && partitionable(opts, n.Left)
	case *algebra.Fetch1Join:
		return partitionable(opts, n.Input)
	case *algebra.FetchNJoin:
		return partitionable(opts, n.Input)
	default:
		return false
	}
}

// parCtx carries the state shared by the N partition pipelines of one
// parallel plan fragment: per-Scan morsel sources and per-Join shared
// builds, keyed by plan node identity.
type parCtx struct {
	db    *Database
	scans map[algebra.Node]*morselSource
	joins map[algebra.Node]*joinBuild
	extra []Operator // build-side pipelines owned by the fragment
}

// sources lists the fragment's morsel dispensers.
func (c *parCtx) sources() []*morselSource {
	out := make([]*morselSource, 0, len(c.scans))
	for _, src := range c.scans {
		out = append(out, src)
	}
	return out
}

func newParCtx(db *Database) *parCtx {
	return &parCtx{
		db:    db,
		scans: make(map[algebra.Node]*morselSource),
		joins: make(map[algebra.Node]*joinBuild),
	}
}

// buildPartition compiles one worker's copy of a partitionable subtree.
// Every operator instance (and its compiled expression programs, buffers
// and selection vectors) is private to the worker; only the morsel sources
// and join builds are shared.
func (c *parCtx) buildPartition(plan algebra.Node, opts ExecOptions) (Operator, error) {
	switch n := plan.(type) {
	case *algebra.Scan:
		return c.partScan(n, nil, opts)
	case *algebra.Select:
		if sc, ok := n.Input.(*algebra.Scan); ok {
			boundsPred := n.Pred
			if opts.NoSummaryIndex {
				boundsPred = nil // fuse without summary/fragment pruning
			}
			in, err := c.partScan(sc, boundsPred, opts)
			if err != nil {
				return nil, err
			}
			if !opts.NoCodeDomain {
				return newScanSelectOp(in, n.Pred, opts)
			}
			return newSelectOp(in, n.Pred, opts)
		}
		in, err := c.buildPartition(n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newSelectOp(in, n.Pred, opts)
	case *algebra.Project:
		in, err := c.buildPartition(n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newProjectOp(in, n.Exprs, opts)
	case *algebra.Join:
		left, err := c.buildPartition(n.Left, opts)
		if err != nil {
			return nil, err
		}
		jb := c.joins[n]
		if jb == nil {
			if nw := opts.parallelism(); nw > 1 && partitionable(opts, n.Right) {
				// Partitioned parallel build: per-worker pipelines drain
				// morsels into private builders, hash and insert in
				// parallel (joinBuild.drainParallel/index). The build still
				// runs exactly once, triggered by the first prober.
				bparts, bctx, btracers, bslots, err := newParallelPipelines(c.db, n.Right, opts)
				if err != nil {
					return nil, err
				}
				jb = &joinBuild{
					right:      schemaOnlyOp{schema: bparts[0].Schema()},
					parParts:   bparts,
					parSources: bctx.sources(),
					parExtra:   bctx.extra,
					parTracers: btracers,
					parSlots:   bslots,
				}
			} else {
				// The build side runs once, serially, shared by all probers
				// — executed by whichever prober wins the build's once.Do,
				// not necessarily the worker whose compile pass created it.
				// Its operators must not capture the compiling worker's
				// slot: the executing goroutine pauses its own slot around
				// the build, and two workers touching one slot is a race.
				bopts := opts
				bopts.slot = nil
				right, err := build(c.db, n.Right, bopts)
				if err != nil {
					return nil, err
				}
				jb = &joinBuild{right: right}
				c.extra = append(c.extra, right)
			}
			c.joins[n] = jb
		}
		return newSharedProbeJoinOp(left, jb, n, opts)
	case *algebra.Fetch1Join:
		in, err := c.buildPartition(n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetch1JoinOp(c.db, in, n, opts)
	case *algebra.FetchNJoin:
		in, err := c.buildPartition(n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetchNJoinOp(c.db, in, n, opts)
	default:
		return nil, fmt.Errorf("core: internal: buildPartition on non-partitionable %T", plan)
	}
}

// partScan builds one worker's partitioned scan. The first worker derives
// the scanned row range (after summary-index pruning from the enclosing
// Select, when present) and creates the shared morsel source.
func (c *parCtx) partScan(n *algebra.Scan, pred expr.Expr, opts ExecOptions) (*scanOp, error) {
	op, err := newScanOp(c.db, n.Table, n.Cols, opts)
	if err != nil {
		return nil, err
	}
	src := c.scans[n]
	if src == nil {
		if pred != nil {
			applySummaryBounds(op.view, pred, op)
		}
		// Align morsels to the ColumnBM chunk grid of disk-backed tables so
		// workers never split (and thus never redundantly decompress) a chunk.
		src = newMorselSource(op.lo, op.hi, op.view.chunkRows, opts)
		c.scans[n] = src
	}
	op.source = src
	return op, nil
}

// workerOptions derives the per-worker ExecOptions: identical to the
// query's options except for the tracer, which each worker owns (the trace
// collector is not synchronized) and merges back when the workers join,
// and the admission slot the worker's goroutine holds while it computes.
func workerOptions(opts ExecOptions, tracers []*trace.Collector, slots []*sched.Slot, i int) ExecOptions {
	w := opts
	if opts.Tracer != nil {
		tracers[i] = trace.New()
		w.Tracer = tracers[i]
	}
	slots[i] = opts.pool().NewSlot()
	w.slot = slots[i]
	return w
}

// newParallelPipelines compiles plan into opts.parallelism() partition
// pipelines sharing one parCtx, each with its own tracer and admission
// slot.
func newParallelPipelines(db *Database, plan algebra.Node, opts ExecOptions) ([]Operator, *parCtx, []*trace.Collector, []*sched.Slot, error) {
	nw := opts.parallelism()
	ctx := newParCtx(db)
	parts := make([]Operator, nw)
	tracers := make([]*trace.Collector, nw)
	slots := make([]*sched.Slot, nw)
	for i := range parts {
		p, err := ctx.buildPartition(plan, workerOptions(opts, tracers, slots, i))
		if err != nil {
			return nil, nil, nil, nil, err
		}
		parts[i] = p
	}
	return parts, ctx, tracers, slots, nil
}

// newExchangeOp compiles a partitionable subtree into an exchange over N
// partition pipelines.
func newExchangeOp(db *Database, plan algebra.Node, opts ExecOptions) (Operator, error) {
	parts, ctx, tracers, slots, err := newParallelPipelines(db, plan, opts)
	if err != nil {
		return nil, err
	}
	return newExchangeOpFromParts(parts, ctx, tracers, slots, opts), nil
}

// newParallelAggr compiles Aggr(partitionable input) into partial
// aggregations over partition pipelines plus a merge phase. ok=false means
// the aggregation mode cannot merge (ordered aggregation) and the caller
// should fall back.
func newParallelAggr(db *Database, n *algebra.Aggr, opts ExecOptions) (Operator, bool, error) {
	parts, ctx, tracers, slots, err := newParallelPipelines(db, n.Input, opts)
	if err != nil {
		return nil, false, err
	}
	workers := make([]*aggrOp, len(parts))
	for i, p := range parts {
		w := opts
		if tracers[i] != nil {
			w.Tracer = tracers[i]
		}
		workers[i], err = newAggrOp(p, n, w)
		if err != nil {
			return nil, false, err
		}
	}
	if workers[0].mode == algebra.ModeOrdered {
		// Ordered aggregation relies on global input order; its inputs
		// (Order nodes) are not partitionable, so this is unreachable —
		// kept as a correctness backstop.
		return nil, false, nil
	}
	merged, err := newAggrOp(schemaOnlyOp{schema: parts[0].Schema()}, n, opts)
	if err != nil {
		return nil, false, err
	}
	return &parallelAggrOp{
		workers: workers,
		extra:   ctx.extra,
		sources: ctx.sources(),
		tracers: tracers,
		slots:   slots,
		merged:  merged,
		opts:    opts,
	}, true, nil
}

// buildParallel compiles a plan with intra-query parallelism: maximal
// partitionable fragments become exchange fan-outs or two-phase parallel
// aggregations, and the remaining (pipeline-breaking or order-sensitive)
// operators run serially on the merged stream.
func buildParallel(db *Database, plan algebra.Node, opts ExecOptions) (Operator, error) {
	switch n := plan.(type) {
	case *algebra.Aggr:
		if partitionable(opts, n.Input) {
			op, ok, err := newParallelAggr(db, n, opts)
			if err != nil {
				return nil, err
			}
			if ok {
				return op, nil
			}
		}
		in, err := buildParallel(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newAggrOp(in, n, opts)
	case *algebra.Scan:
		if partitionable(opts, n) {
			return newExchangeOp(db, n, opts)
		}
		return build(db, plan, opts)
	case *algebra.Select:
		if partitionable(opts, n) {
			return newExchangeOp(db, n, opts)
		}
		if _, ok := n.Input.(*algebra.Scan); ok {
			// Delta-bearing scan below: serial path keeps the
			// summary-bounds special case.
			return build(db, plan, opts)
		}
		in, err := buildParallel(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newSelectOp(in, n.Pred, opts)
	case *algebra.Project:
		if partitionable(opts, n) {
			return newExchangeOp(db, n, opts)
		}
		in, err := buildParallel(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newProjectOp(in, n.Exprs, opts)
	case *algebra.Join:
		if partitionable(opts, n) {
			return newExchangeOp(db, n, opts)
		}
		if len(n.On) == 0 {
			return build(db, plan, opts)
		}
		l, err := buildParallel(db, n.Left, opts)
		if err != nil {
			return nil, err
		}
		r, err := buildParallel(db, n.Right, opts)
		if err != nil {
			return nil, err
		}
		return newHashJoinOp(l, r, n, opts)
	case *algebra.Fetch1Join:
		if partitionable(opts, n) {
			return newExchangeOp(db, n, opts)
		}
		in, err := buildParallel(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetch1JoinOp(db, in, n, opts)
	case *algebra.FetchNJoin:
		if partitionable(opts, n) {
			return newExchangeOp(db, n, opts)
		}
		in, err := buildParallel(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetchNJoinOp(db, in, n, opts)
	case *algebra.Order:
		if opts.parallelism() > 1 && partitionable(opts, n.Input) {
			return newParallelOrderOp(db, n.Input, n.Keys, 0, opts)
		}
		in, err := buildParallel(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newOrderOp(in, n.Keys, 0, opts)
	case *algebra.TopN:
		if opts.parallelism() > 1 && partitionable(opts, n.Input) {
			return newParallelOrderOp(db, n.Input, n.Keys, n.N, opts)
		}
		in, err := buildParallel(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newOrderOp(in, n.Keys, n.N, opts)
	default:
		return build(db, plan, opts)
	}
}
