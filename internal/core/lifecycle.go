package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrMemoryBudget is returned (wrapped) when a query's memory accounting
// exceeds the limit set via ExecOptions.MemLimit. The query fails cleanly
// at the next batch boundary instead of driving the process out of memory;
// concurrent queries within their budgets are unaffected.
var ErrMemoryBudget = errors.New("core: query memory budget exceeded")

// lifecycle is the per-query governance state: the cancellation signal
// (context) and the memory budget. One lifecycle is shared — by pointer,
// like snaps — across every ExecOptions copy of a query, including the
// per-worker copies of parallel pipelines, so a single check()/reserve()
// discipline covers serial loops, exchange workers, sort runs, and join
// builds alike.
//
// All methods are nil-receiver-safe: queries executed without WithContext
// or a memory limit carry a nil lifecycle and pay only a nil check per
// batch.
type lifecycle struct {
	ctx      context.Context
	done     <-chan struct{}
	memLimit int64
	memUsed  atomic.Int64
	// exceeded latches the first budget violation; reserve flips it and
	// check surfaces it, so hot loops never compare against the limit
	// more than once per batch.
	exceeded atomic.Bool
}

// newLifecycle builds the query lifecycle from exec options; nil when the
// query asked for neither cancellation nor a budget.
func newLifecycle(ctx context.Context, memLimit int64) *lifecycle {
	if ctx == nil && memLimit <= 0 {
		return nil
	}
	l := &lifecycle{ctx: ctx, memLimit: memLimit}
	if ctx != nil {
		l.done = ctx.Done()
	}
	return l
}

// check reports the query's lifecycle violation, if any: a wrapped context
// error after cancellation/deadline, or a wrapped ErrMemoryBudget after the
// accounting crossed the limit. It is called at every morsel/batch boundary
// and is two atomic loads on the happy path.
func (l *lifecycle) check() error {
	if l == nil {
		return nil
	}
	if l.done != nil {
		select {
		case <-l.done:
			return fmt.Errorf("core: query aborted: %w", l.ctx.Err())
		default:
		}
	}
	if l.exceeded.Load() {
		return fmt.Errorf("core: used %d of %d budgeted bytes: %w",
			l.memUsed.Load(), l.memLimit, ErrMemoryBudget)
	}
	return nil
}

// err is like check but for code paths that already know the query ended
// early (an exchange whose output closed under cancellation) and only need
// the violation to surface.
func (l *lifecycle) err() error { return l.check() }

// stop returns the cancellation channel for sched.Slot.Bind and select
// loops; nil (block-forever / never-cancelled) without a context.
func (l *lifecycle) stop() <-chan struct{} {
	if l == nil {
		return nil
	}
	return l.done
}

// reserve charges n bytes against the query's budget. It never blocks and
// never fails in place — a violation latches and surfaces at the caller's
// next check(), keeping allocation call sites signature-stable.
func (l *lifecycle) reserve(n int64) {
	if l == nil || l.memLimit <= 0 || n == 0 {
		return
	}
	if l.memUsed.Add(n) > l.memLimit {
		l.exceeded.Store(true)
	}
}

// batchBytes estimates the resident size of rows materialized across
// cols columns: 8 bytes per value (string headers are wider, codes are
// narrower; an estimate is enough — the budget guards against runaway
// allocation, not exact RSS).
func batchBytes(cols, rows int) int64 {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	return int64(cols) * 8 * int64(rows)
}
