package core

import (
	"time"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/vector"
)

// selectOp filters batches by attaching a selection vector; data vectors
// flow through untouched (Section 4.1.1: "the selection-vector is taken
// into account by map-primitives to perform calculations only for relevant
// tuples").
type selectOp struct {
	input Operator
	pred  *expr.Pred
	opts  ExecOptions
}

func newSelectOp(input Operator, p expr.Expr, opts ExecOptions) (*selectOp, error) {
	pred, err := expr.CompilePred(p, input.Schema(), opts.exprOptions())
	if err != nil {
		return nil, err
	}
	return &selectOp{input: input, pred: pred, opts: opts}, nil
}

func (s *selectOp) Schema() vector.Schema { return s.input.Schema() }

func (s *selectOp) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	// Preallocate the predicate's selection buffers once; Next then runs
	// allocation-free.
	s.pred.Reserve(s.opts.batchSize())
	return nil
}

func (s *selectOp) Close() error { return s.input.Close() }

func (s *selectOp) Next() (*vector.Batch, error) {
	for {
		b, err := s.input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		t0 := time.Now()
		sel := s.pred.Select(b)
		if len(sel) == 0 {
			s.opts.Tracer.RecordOperator("Select", 0, time.Since(t0))
			continue // fully filtered batch; pull the next one
		}
		b.Sel = sel
		s.opts.Tracer.RecordOperator("Select", len(sel), time.Since(t0))
		return b, nil
	}
}

// projectOp computes the output expressions of a Project node. Column
// pass-through expressions alias the input vectors (zero copy); computed
// expressions run their compiled primitive programs.
type projectOp struct {
	input  Operator
	exprs  []algebra.NamedExpr
	progs  []*expr.Prog
	pass   []int // input column index for pass-through, else -1
	schema vector.Schema
	opts   ExecOptions
	out    *vector.Batch // reused output batch (valid until the next Next)
}

func newProjectOp(input Operator, exprs []algebra.NamedExpr, opts ExecOptions) (*projectOp, error) {
	in := input.Schema()
	p := &projectOp{input: input, exprs: exprs, opts: opts}
	for _, ne := range exprs {
		if c, ok := ne.E.(*expr.Col); ok {
			if i := in.ColIndex(c.Name); i >= 0 {
				p.pass = append(p.pass, i)
				p.progs = append(p.progs, nil)
				p.schema = append(p.schema, vector.Field{Name: ne.Alias, Type: in[i].Type})
				continue
			}
		}
		prog, err := expr.Compile(ne.E, in, opts.exprOptions())
		if err != nil {
			return nil, err
		}
		p.pass = append(p.pass, -1)
		p.progs = append(p.progs, prog)
		p.schema = append(p.schema, vector.Field{Name: ne.Alias, Type: prog.OutType()})
	}
	return p, nil
}

func (p *projectOp) Schema() vector.Schema { return p.schema }

func (p *projectOp) Open() error {
	// The output batch struct and vector-pointer slice are reused across
	// Next calls; the vectors themselves alias input columns or
	// program-owned registers, so no payload is allocated here either.
	p.out = &vector.Batch{Schema: p.schema, Vecs: make([]*vector.Vector, len(p.exprs))}
	return p.input.Open()
}

func (p *projectOp) Close() error { return p.input.Close() }

func (p *projectOp) Next() (*vector.Batch, error) {
	b, err := p.input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	t0 := time.Now()
	out := p.out
	out.Sel = b.Sel
	out.N = b.N
	for i := range p.exprs {
		if pi := p.pass[i]; pi >= 0 {
			out.Vecs[i] = b.Vecs[pi]
			continue
		}
		out.Vecs[i] = p.progs[i].Run(b)
	}
	p.opts.Tracer.RecordOperator("Project", out.Rows(), time.Since(t0))
	return out, nil
}
