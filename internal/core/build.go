package core

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/sindex"
	"x100/internal/vector"
)

// Build compiles an algebra plan into an X100 operator tree. With
// opts.Parallelism > 1, partitionable plan fragments compile into parallel
// worker pipelines joined by exchange/merge operators (see exchange.go).
//
// Build captures a snapshot set (frozen per-table views, see snapshot.go)
// the whole operator tree executes against; closing the root operator —
// Drain always does — releases it. Concurrent checkpoints and compactions
// therefore never change what a built plan reads.
func Build(db *Database, plan algebra.Node, opts ExecOptions) (Operator, error) {
	if _, err := plan.Out(db); err != nil {
		return nil, err
	}
	ownSnaps := opts.snaps == nil
	if ownSnaps {
		opts.snaps = db.newSnapSet()
	}
	root, err := buildRoot(db, plan, opts)
	if err != nil {
		if ownSnaps {
			opts.snaps.release()
		}
		return nil, err
	}
	if ownSnaps {
		root = &releaseOp{Operator: root, snaps: opts.snaps}
	}
	return root, nil
}

func buildRoot(db *Database, plan algebra.Node, opts ExecOptions) (Operator, error) {
	if opts.parallelism() > 1 {
		// Absorb pending insert deltas into base fragments so scans
		// partition (row ids are preserved; see delta.Store.Checkpoint).
		// Runs before view capture, so the query sees the absorbed state.
		checkpointPending(db, plan)
	}
	// Capture the plan's tables (and their dictionary mapping tables) in
	// one snapshot acquisition — the query's consistency point. The
	// code-domain rewrite below resolves columns through these views.
	if err := opts.snaps.capture(planTables(plan, nil)); err != nil {
		return nil, err
	}
	if !opts.NoCodeDomain {
		// Run group-by and join keys over dictionary-backed string columns
		// in the code domain, rehydrating via Fetch1Join at emit. The
		// rewrite happens after checkpointPending so freshly absorbed
		// deltas no longer block it. Unchanged plans return the original
		// node, so only rewritten plans pay the re-validation walk.
		if rewritten := rewriteCodeDomain(db, plan, &opts); rewritten != plan {
			if _, err := rewritten.Out(db); err != nil {
				return nil, fmt.Errorf("core: code-domain rewrite produced an invalid plan: %w", err)
			}
			plan = rewritten
			// Tables the rewrite introduced (dictionary rehydration
			// fetches) are normally captured already; pick up stragglers.
			if err := opts.snaps.capture(planTables(plan, nil)); err != nil {
				return nil, err
			}
		}
	}
	if opts.parallelism() > 1 {
		return buildParallel(db, plan, opts)
	}
	return build(db, plan, opts)
}

// planTables collects the tables a plan reads (scans and fetch joins).
func planTables(plan algebra.Node, dst []string) []string {
	switch n := plan.(type) {
	case *algebra.Scan:
		dst = append(dst, n.Table)
	case *algebra.Fetch1Join:
		dst = append(dst, n.Table)
	case *algebra.FetchNJoin:
		dst = append(dst, n.Table)
	}
	for _, ch := range plan.Children() {
		dst = planTables(ch, dst)
	}
	return dst
}

// checkpointPending checkpoints the insert delta of every table scanned by
// the plan. Tables whose checkpoint is declined (dictionary overflow) or
// fails (e.g. the chunk directory of a disk-attached table is not
// writable) keep their deltas and compile to the serial merged scan — the
// implicit checkpoint is a performance optimization and must never turn a
// readable database unqueryable; the durable-write contract belongs to the
// explicit Checkpoint call, which does surface errors. Tables with no
// pending inserts are never checkpointed here, so a parallel query over a
// read-only attached directory performs no writes at all.
func checkpointPending(db *Database, plan algebra.Node) {
	if sc, ok := plan.(*algebra.Scan); ok {
		if ds, err := db.Delta(sc.Table); err == nil && ds.NumDeltaRows() > 0 {
			_, _ = db.Checkpoint(sc.Table)
		}
	}
	for _, ch := range plan.Children() {
		checkpointPending(db, ch)
	}
}

func build(db *Database, plan algebra.Node, opts ExecOptions) (Operator, error) {
	switch n := plan.(type) {
	case *algebra.Scan:
		return newScanOp(db, n.Table, n.Cols, opts)
	case *algebra.Select:
		// Summary-index pruning: a Select directly over a Scan derives
		// #rowId bounds from range conjuncts on indexed columns
		// (Section 4.3), then still applies the full predicate — fused into
		// the scan so predicate translation runs on dictionary codes and
		// later columns decode only surviving rows. The two optimizations
		// are independent: NoSummaryIndex only skips the bounds,
		// NoCodeDomain only skips the fusion.
		if sc, ok := n.Input.(*algebra.Scan); ok {
			op, err := newScanOp(db, sc.Table, sc.Cols, opts)
			if err != nil {
				return nil, err
			}
			if !opts.NoSummaryIndex {
				applySummaryBounds(op.view, n.Pred, op)
			}
			if !opts.NoCodeDomain {
				return newScanSelectOp(op, n.Pred, opts)
			}
			return newSelectOp(op, n.Pred, opts)
		}
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newSelectOp(in, n.Pred, opts)
	case *algebra.Project:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newProjectOp(in, n.Exprs, opts)
	case *algebra.Aggr:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newAggrOp(in, n, opts)
	case *algebra.Join:
		l, err := build(db, n.Left, opts)
		if err != nil {
			return nil, err
		}
		r, err := build(db, n.Right, opts)
		if err != nil {
			return nil, err
		}
		if len(n.On) == 0 {
			if n.Kind != algebra.Inner {
				return nil, fmt.Errorf("core: %v join requires equi-conditions", n.Kind)
			}
			// The paper's default join: CartProd with a Select on top.
			cp, err := newCartProdOp(l, r, opts)
			if err != nil {
				return nil, err
			}
			if n.Residual == nil {
				return cp, nil
			}
			return newSelectOp(cp, n.Residual, opts)
		}
		return newHashJoinOp(l, r, n, opts)
	case *algebra.Fetch1Join:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetch1JoinOp(db, in, n, opts)
	case *algebra.FetchNJoin:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetchNJoinOp(db, in, n, opts)
	case *algebra.Order:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newOrderOp(in, n.Keys, 0, opts)
	case *algebra.TopN:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newOrderOp(in, n.Keys, n.N, opts)
	case *algebra.Array:
		return newArrayOp(n.Dims, opts), nil
	default:
		return nil, fmt.Errorf("core: cannot build operator for %T", plan)
	}
}

// applySummaryBounds narrows a scan's base-row range using summary indices
// for conjuncts of the form col <op> const over indexed columns. It works
// entirely on the captured table view, so the bounds always describe the
// same base the scan will read — a summary refreshed mid-query can never
// prune rows the view still contains, nor miss rows it gained.
func applySummaryBounds(v *tableView, pred expr.Expr, op *scanOp) {
	for _, cj := range conjuncts(pred, nil) {
		cmp, ok := cj.(*expr.Cmp)
		if !ok {
			continue
		}
		col, cOk := cmp.L.(*expr.Col)
		cst, vOk := cmp.R.(*expr.Const)
		opKind := cmp.Op
		if !cOk || !vOk {
			// Try the flipped form const <op> col.
			if col2, ok2 := cmp.R.(*expr.Col); ok2 {
				if cst2, ok3 := cmp.L.(*expr.Const); ok3 {
					col, cst = col2, cst2
					opKind = flipCmpKind(cmp.Op)
					cOk, vOk = true, true
				}
			}
			if !cOk || !vOk {
				continue
			}
		}
		switch cst.Typ.Physical() {
		case vector.Int32:
			cv := cst.Val.(int32)
			if si := v.sumI32[col.Name]; si != nil {
				lo, hi := boundsFor(opKind, cv, si.Bounds)
				op.lo, op.hi = max(op.lo, lo), min(op.hi, hi)
			}
			applyFragBoundsI64(v, col.Name, opKind, int64(cv), op)
		case vector.Int64:
			applyFragBoundsI64(v, col.Name, opKind, cst.Val.(int64), op)
		case vector.Float64:
			cv := cst.Val.(float64)
			if si := v.sumF64[col.Name]; si != nil {
				lo, hi := boundsFor(opKind, cv, si.Bounds)
				op.lo, op.hi = max(op.lo, lo), min(op.hi, hi)
			}
			applyFragBoundsF64(v, col.Name, opKind, cv, op)
		case vector.String:
			if cv, ok := cst.Val.(string); ok {
				applyFragBoundsStr(v, col.Name, opKind, cv, op)
			}
		}
	}
	if op.lo > op.hi {
		op.lo = op.hi
	}
}

// rangeFor converts a comparison against a constant into the conservative
// value interval [loVal, hiVal] a matching row must fall into.
func rangeFor[T any](op expr.CmpKind, v T) (loVal T, hasLo bool, hiVal T, hasHi bool) {
	switch op {
	case expr.LT, expr.LE:
		return v, false, v, true
	case expr.GT, expr.GE:
		return v, true, v, false
	case expr.EQ:
		return v, true, v, true
	default:
		return v, false, v, false
	}
}

func boundsFor[T any](op expr.CmpKind, v T, bounds func(lo T, hasLo bool, hi T, hasHi bool) (int, int)) (int, int) {
	loVal, hasLo, hiVal, hasHi := rangeFor(op, v)
	return bounds(loVal, hasLo, hiVal, hasHi)
}

// applyFragBoundsI64 narrows a scan using per-fragment (ColumnBM chunk)
// min/max bounds — summary-index-style pruning at chunk granularity,
// available on disk-attached tables without building any in-memory index.
func applyFragBoundsI64(tv *tableView, colName string, opKind expr.CmpKind, v int64, op *scanOp) {
	applyFragBounds(tv, colName, opKind, v, op, func(f colstore.Fragment) (int64, int64, bool) {
		if b, ok := f.(colstore.I64Bounded); ok {
			return b.BoundsI64()
		}
		return 0, 0, false
	}, vector.Int32, vector.Int64)
}

// applyFragBoundsF64 is the float counterpart of applyFragBoundsI64.
func applyFragBoundsF64(tv *tableView, colName string, opKind expr.CmpKind, v float64, op *scanOp) {
	applyFragBounds(tv, colName, opKind, v, op, func(f colstore.Fragment) (float64, float64, bool) {
		if b, ok := f.(colstore.F64Bounded); ok {
			return b.BoundsF64()
		}
		return 0, 0, false
	}, vector.Float64)
}

// applyFragBoundsStr is the string counterpart of applyFragBoundsI64: plain
// (non-enum) string columns persisted through ColumnBM carry per-chunk
// min/max strings in the manifest, so range and equality predicates on
// near-sorted string columns prune chunks exactly like numeric ones.
func applyFragBoundsStr(tv *tableView, colName string, opKind expr.CmpKind, v string, op *scanOp) {
	applyFragBounds(tv, colName, opKind, v, op, func(f colstore.Fragment) (string, string, bool) {
		if b, ok := f.(colstore.StrBounded); ok {
			return b.BoundsStr()
		}
		return "", "", false
	}, vector.String)
}

func applyFragBounds[T primitives.Ordered](tv *tableView, colName string, opKind expr.CmpKind, v T,
	op *scanOp, bounds func(colstore.Fragment) (T, T, bool), physTypes ...vector.Type) {
	c := tv.col(colName)
	if c == nil || c.IsEnum() || c.NumFrags() <= 1 || !slices.Contains(physTypes, c.PhysType()) {
		return
	}
	nf := c.NumFrags()
	starts := make([]int, nf+1)
	mins := make([]T, nf)
	maxs := make([]T, nf)
	ok := make([]bool, nf)
	bounded := false
	for i := 0; i < nf; i++ {
		starts[i] = c.FragStart(i)
		mins[i], maxs[i], ok[i] = bounds(c.Frag(i))
		bounded = bounded || ok[i]
	}
	if !bounded {
		return
	}
	starts[nf] = c.Len()
	loVal, hasLo, hiVal, hasHi := rangeFor(opKind, v)
	lo, hi := sindex.PruneFragments(starts, mins, maxs, ok, loVal, hasLo, hiVal, hasHi)
	op.lo, op.hi = max(op.lo, lo), min(op.hi, hi)
}

func conjuncts(e expr.Expr, dst []expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		for _, arg := range a.Args {
			dst = conjuncts(arg, dst)
		}
		return dst
	}
	return append(dst, e)
}

func flipCmpKind(op expr.CmpKind) expr.CmpKind {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

// Run builds and drains a plan, returning the materialized result. When
// opts.Ctx or opts.MemLimit is set, the query runs under a lifecycle:
// cancellation/deadline is honored at every morsel boundary (returning a
// wrapped context error with all slots, leases, and views released), and
// accounted memory beyond the limit fails the query with a wrapped
// ErrMemoryBudget instead of exhausting the process.
func Run(db *Database, plan algebra.Node, opts ExecOptions) (*Result, error) {
	if opts.life == nil {
		opts.life = newLifecycle(opts.Ctx, opts.MemLimit)
	}
	if err := opts.life.check(); err != nil {
		return nil, err
	}
	if opts.MemLimit > 0 {
		// Make the declared budget visible to the admission pool for the
		// query's duration.
		pool := opts.pool()
		pool.ReserveMemory(opts.MemLimit)
		defer pool.ReleaseMemory(opts.MemLimit)
	}
	op, err := Build(db, plan, opts)
	if err != nil {
		return nil, err
	}
	opts.Tracer.Begin()
	res, err := drain(op, opts.life)
	opts.Tracer.End()
	if opts.Tracer != nil {
		// Classify lifecycle terminations so traces count cancellations,
		// deadline hits, and budget rejections.
		switch {
		case errors.Is(err, context.Canceled):
			opts.Tracer.RecordCounter("query_cancellations", 1)
		case errors.Is(err, context.DeadlineExceeded):
			opts.Tracer.RecordCounter("query_deadline_hits", 1)
		case errors.Is(err, ErrMemoryBudget):
			opts.Tracer.RecordCounter("query_budget_rejections", 1)
		}
		// Surface storage/WAL health next to the execution counters so a
		// trace shows recovery and corruption events alongside the query.
		for _, st := range db.WalStatuses() {
			if st.Store.ChecksumFailures > 0 {
				opts.Tracer.RecordCounter("storage_checksum_failures", st.Store.ChecksumFailures)
			}
			if st.Store.DirSyncErrors > 0 {
				opts.Tracer.RecordCounter("storage_dirsync_errors", st.Store.DirSyncErrors)
			}
			if st.Store.RetriedReads > 0 {
				opts.Tracer.RecordCounter("storage_retried_reads", st.Store.RetriedReads)
			}
			if st.Store.ScrubVerified > 0 {
				opts.Tracer.RecordCounter("scrub_chunks_verified", st.Store.ScrubVerified)
			}
			if st.Store.ScrubFailed > 0 {
				opts.Tracer.RecordCounter("scrub_chunks_failed", st.Store.ScrubFailed)
			}
			if st.Wal.Replayed > 0 {
				opts.Tracer.RecordCounter("wal_replayed_records", st.Wal.Replayed)
			}
			if st.Wal.TailTruncations > 0 {
				opts.Tracer.RecordCounter("wal_tail_truncations", st.Wal.TailTruncations)
			}
			if st.Wal.StaleDiscards > 0 {
				opts.Tracer.RecordCounter("wal_stale_discards", st.Wal.StaleDiscards)
			}
			// Buffer-pool observability: decoded-chunk cache hit/miss/attach
			// counters show whether concurrent scans of the same table are
			// actually sharing circulating chunks.
			if c := st.Store.Cache; c.Hits > 0 || c.Misses > 0 {
				opts.Tracer.RecordCounter("pool_hits", c.Hits)
				opts.Tracer.RecordCounter("pool_misses", c.Misses)
				if c.Attaches > 0 {
					opts.Tracer.RecordCounter("pool_attaches", c.Attaches)
				}
				if c.Evictions > 0 {
					opts.Tracer.RecordCounter("pool_evictions", c.Evictions)
				}
			}
		}
	}
	return res, err
}
