package core

import (
	"fmt"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/vector"
)

// Build compiles an algebra plan into an X100 operator tree. With
// opts.Parallelism > 1, partitionable plan fragments compile into parallel
// worker pipelines joined by exchange/merge operators (see exchange.go).
func Build(db *Database, plan algebra.Node, opts ExecOptions) (Operator, error) {
	if _, err := plan.Out(db); err != nil {
		return nil, err
	}
	if opts.parallelism() > 1 {
		return buildParallel(db, plan, opts)
	}
	return build(db, plan, opts)
}

func build(db *Database, plan algebra.Node, opts ExecOptions) (Operator, error) {
	switch n := plan.(type) {
	case *algebra.Scan:
		return newScanOp(db, n.Table, n.Cols, opts)
	case *algebra.Select:
		// Summary-index pruning: a Select directly over a Scan derives
		// #rowId bounds from range conjuncts on indexed columns
		// (Section 4.3), then still applies the full predicate.
		if sc, ok := n.Input.(*algebra.Scan); ok && !opts.NoSummaryIndex {
			op, err := newScanOp(db, sc.Table, sc.Cols, opts)
			if err != nil {
				return nil, err
			}
			applySummaryBounds(db, sc.Table, n.Pred, op)
			return newSelectOp(op, n.Pred, opts)
		}
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newSelectOp(in, n.Pred, opts)
	case *algebra.Project:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newProjectOp(in, n.Exprs, opts)
	case *algebra.Aggr:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newAggrOp(in, n, opts)
	case *algebra.Join:
		l, err := build(db, n.Left, opts)
		if err != nil {
			return nil, err
		}
		r, err := build(db, n.Right, opts)
		if err != nil {
			return nil, err
		}
		if len(n.On) == 0 {
			if n.Kind != algebra.Inner {
				return nil, fmt.Errorf("core: %v join requires equi-conditions", n.Kind)
			}
			// The paper's default join: CartProd with a Select on top.
			cp, err := newCartProdOp(l, r, opts)
			if err != nil {
				return nil, err
			}
			if n.Residual == nil {
				return cp, nil
			}
			return newSelectOp(cp, n.Residual, opts)
		}
		return newHashJoinOp(l, r, n, opts)
	case *algebra.Fetch1Join:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetch1JoinOp(db, in, n, opts)
	case *algebra.FetchNJoin:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newFetchNJoinOp(db, in, n, opts)
	case *algebra.Order:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newOrderOp(in, n.Keys, 0, opts)
	case *algebra.TopN:
		in, err := build(db, n.Input, opts)
		if err != nil {
			return nil, err
		}
		return newOrderOp(in, n.Keys, n.N, opts)
	case *algebra.Array:
		return newArrayOp(n.Dims, opts), nil
	default:
		return nil, fmt.Errorf("core: cannot build operator for %T", plan)
	}
}

// applySummaryBounds narrows a scan's base-row range using summary indices
// for conjuncts of the form col <op> const over indexed columns.
func applySummaryBounds(db *Database, table string, pred expr.Expr, op *scanOp) {
	for _, cj := range conjuncts(pred, nil) {
		cmp, ok := cj.(*expr.Cmp)
		if !ok {
			continue
		}
		col, cOk := cmp.L.(*expr.Col)
		cst, vOk := cmp.R.(*expr.Const)
		opKind := cmp.Op
		if !cOk || !vOk {
			// Try the flipped form const <op> col.
			if col2, ok2 := cmp.R.(*expr.Col); ok2 {
				if cst2, ok3 := cmp.L.(*expr.Const); ok3 {
					col, cst = col2, cst2
					opKind = flipCmpKind(cmp.Op)
					cOk, vOk = true, true
				}
			}
			if !cOk || !vOk {
				continue
			}
		}
		switch cst.Typ.Physical() {
		case vector.Int32:
			si := db.SummaryI32(table, col.Name)
			if si == nil {
				continue
			}
			v := cst.Val.(int32)
			lo, hi := boundsFor(opKind, v, si.Bounds)
			op.lo, op.hi = max(op.lo, lo), min(op.hi, hi)
		case vector.Float64:
			si := db.SummaryF64(table, col.Name)
			if si == nil {
				continue
			}
			v := cst.Val.(float64)
			lo, hi := boundsFor(opKind, v, si.Bounds)
			op.lo, op.hi = max(op.lo, lo), min(op.hi, hi)
		}
	}
	if op.lo > op.hi {
		op.lo = op.hi
	}
}

func boundsFor[T any](op expr.CmpKind, v T, bounds func(lo T, hasLo bool, hi T, hasHi bool) (int, int)) (int, int) {
	switch op {
	case expr.LT, expr.LE:
		return bounds(v, false, v, true)
	case expr.GT, expr.GE:
		return bounds(v, true, v, false)
	case expr.EQ:
		return bounds(v, true, v, true)
	default:
		var zero T
		_ = zero
		return bounds(v, false, v, false)
	}
}

func conjuncts(e expr.Expr, dst []expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		for _, arg := range a.Args {
			dst = conjuncts(arg, dst)
		}
		return dst
	}
	return append(dst, e)
}

func flipCmpKind(op expr.CmpKind) expr.CmpKind {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

// Run builds and drains a plan, returning the materialized result.
func Run(db *Database, plan algebra.Node, opts ExecOptions) (*Result, error) {
	op, err := Build(db, plan, opts)
	if err != nil {
		return nil, err
	}
	opts.Tracer.Begin()
	res, err := Drain(op)
	opts.Tracer.End()
	return res, err
}
