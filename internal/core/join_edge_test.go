package core

import (
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/vector"
)

// TestSkewedJoinExpansion exercises the mid-chain resume path: a single
// probe row matching far more build rows than fit one output batch.
func TestSkewedJoinExpansion(t *testing.T) {
	db := NewDatabase()
	left := colstore.NewTable("l")
	must(t, left.AddColumn("k", vector.Int32, []int32{7, 8}))
	db.AddTable(left)

	nRight := 5000 // ~5 output batches from one probe row
	rk := make([]int32, nRight+3)
	rv := make([]int64, nRight+3)
	for i := 0; i < nRight; i++ {
		rk[i] = 7
		rv[i] = int64(i)
	}
	for i := nRight; i < nRight+3; i++ {
		rk[i] = 8
		rv[i] = int64(i)
	}
	right := colstore.NewTable("r")
	must(t, right.AddColumn("rk", vector.Int32, rk))
	must(t, right.AddColumn("rv", vector.Int64, rv))
	db.AddTable(right)

	plan := algebra.NewAggr(
		algebra.NewJoin(algebra.NewScan("l", "k"), algebra.NewScan("r", "rk", "rv"),
			algebra.EquiCond{L: "k", R: "rk"}),
		[]algebra.NamedExpr{algebra.NE("k", expr.C("k"))},
		[]algebra.AggExpr{algebra.Count("n"), algebra.Sum("s", expr.C("rv"))})
	res := runPlan(t, db, algebra.NewOrder(plan, algebra.Asc(expr.C("k"))), DefaultOptions())
	if res.NumRows() != 2 {
		t.Fatalf("groups: %d", res.NumRows())
	}
	if res.Row(0)[1].(int64) != int64(nRight) {
		t.Fatalf("k=7 matches: %v", res.Row(0))
	}
	var wantSum int64
	for i := 0; i < nRight; i++ {
		wantSum += int64(i)
	}
	if res.Row(0)[2].(int64) != wantSum {
		t.Fatalf("k=7 sum: %v want %v", res.Row(0)[2], wantSum)
	}
	if res.Row(1)[1].(int64) != 3 {
		t.Fatalf("k=8 matches: %v", res.Row(1))
	}
}

// TestJoinAcrossManyProbeBatches: probe side much larger than one batch,
// build side tiny — exercises the batch-boundary flush (pending pairs must
// be emitted before a new probe batch is pulled).
func TestJoinAcrossManyProbeBatches(t *testing.T) {
	db := NewDatabase()
	n := 10000
	lk := make([]int32, n)
	for i := range lk {
		lk[i] = int32(i % 4)
	}
	left := colstore.NewTable("l")
	must(t, left.AddColumn("k", vector.Int32, lk))
	db.AddTable(left)
	right := colstore.NewTable("r")
	must(t, right.AddColumn("rk", vector.Int32, []int32{0, 1, 2}))
	must(t, right.AddColumn("lbl", vector.String, []string{"zero", "one", "two"}))
	db.AddTable(right)

	plan := algebra.NewAggr(
		algebra.NewJoin(algebra.NewScan("l", "k"), algebra.NewScan("r", "rk", "lbl"),
			algebra.EquiCond{L: "k", R: "rk"}),
		nil,
		[]algebra.AggExpr{algebra.Count("n")})
	for _, bs := range []int{1, 7, 1024, 1 << 20} {
		opts := DefaultOptions()
		opts.BatchSize = bs
		res := runPlan(t, db, plan, opts)
		if got := res.Row(0)[0].(int64); got != int64(3*n/4) {
			t.Fatalf("batch size %d: %d matches, want %d", bs, got, 3*n/4)
		}
	}
}

// TestCartProdMultiBatch: cross product larger than one batch resumes
// correctly and respects the residual select on top.
func TestCartProdMultiBatch(t *testing.T) {
	db := NewDatabase()
	n := 100
	av := make([]int32, n)
	for i := range av {
		av[i] = int32(i)
	}
	ta := colstore.NewTable("ta")
	must(t, ta.AddColumn("a", vector.Int32, av))
	db.AddTable(ta)
	tb := colstore.NewTable("tb")
	must(t, tb.AddColumn("b", vector.Int32, append([]int32(nil), av...)))
	db.AddTable(tb)

	// 100x100 = 10000 pairs > default batch; residual a == b keeps 100.
	plan := algebra.NewAggr(
		algebra.NewJoin(algebra.NewScan("ta", "a"), algebra.NewScan("tb", "b")).
			WithResidual(expr.EQE(expr.C("a"), expr.C("b"))),
		nil,
		[]algebra.AggExpr{algebra.Count("n")})
	res := runPlan(t, db, plan, DefaultOptions())
	if got := res.Row(0)[0].(int64); got != 100 {
		t.Fatalf("pairs: %d", got)
	}
}

// TestOrderByComputedKey sorts on an expression (keyProgs path).
func TestOrderByComputedKey(t *testing.T) {
	db := NewDatabase()
	tab := colstore.NewTable("t")
	must(t, tab.AddColumn("x", vector.Float64, []float64{3, -5, 1, -2}))
	db.AddTable(tab)
	// Sort by x*x ascending: 1, -2, 3, -5.
	plan := algebra.NewOrder(algebra.NewScan("t", "x"),
		algebra.Asc(expr.MulE(expr.C("x"), expr.C("x"))))
	res := runPlan(t, db, plan, DefaultOptions())
	want := []float64{1, -2, 3, -5}
	for i, w := range want {
		if res.Row(i)[0].(float64) != w {
			t.Fatalf("order: %v", res.Rows())
		}
	}
}

// TestJoinEmptySides covers empty build and empty probe sides.
func TestJoinEmptySides(t *testing.T) {
	db := NewDatabase()
	tab := colstore.NewTable("t")
	must(t, tab.AddColumn("k", vector.Int32, []int32{1, 2, 3}))
	db.AddTable(tab)
	empty := colstore.NewTable("e")
	must(t, empty.AddColumn("ek", vector.Int32, []int32{}))
	db.AddTable(empty)

	inner := runPlan(t, db, algebra.NewJoin(
		algebra.NewScan("t", "k"), algebra.NewScan("e", "ek"),
		algebra.EquiCond{L: "k", R: "ek"}), DefaultOptions())
	if inner.NumRows() != 0 {
		t.Fatal("join with empty build must be empty")
	}
	anti := runPlan(t, db, algebra.NewJoinKind(algebra.Anti,
		algebra.NewScan("t", "k"), algebra.NewScan("e", "ek"),
		algebra.EquiCond{L: "k", R: "ek"}), DefaultOptions())
	if anti.NumRows() != 3 {
		t.Fatal("anti join with empty build keeps all left rows")
	}
	inner2 := runPlan(t, db, algebra.NewJoin(
		algebra.NewScan("e", "ek"), algebra.NewScan("t", "k"),
		algebra.EquiCond{L: "ek", R: "k"}), DefaultOptions())
	if inner2.NumRows() != 0 {
		t.Fatal("join with empty probe must be empty")
	}
}
