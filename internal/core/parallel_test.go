package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/vector"
)

// parallelDB builds a fact table large enough for several morsels plus a
// small dimension table.
func parallelDB(t *testing.T, rows int) *Database {
	t.Helper()
	db := NewDatabase()
	fact := colstore.NewTable("fact")
	keys := make([]int64, rows)
	vals := make([]float64, rows)
	grp := make([]int64, rows)
	cat := make([]string, rows)
	cats := []string{"a", "b", "c", "d", "e"}
	r := uint64(7)
	for i := range keys {
		r ^= r >> 12
		r ^= r << 25
		r ^= r >> 27
		keys[i] = int64(i % 977)
		vals[i] = float64(r%100000) / 100
		grp[i] = int64(r % 53)
		cat[i] = cats[r%uint64(len(cats))]
	}
	must0(t, fact.AddColumn("k", vector.Int64, keys))
	must0(t, fact.AddColumn("v", vector.Float64, vals))
	must0(t, fact.AddColumn("g", vector.Int64, grp))
	must0(t, fact.AddEnumColumn("cat", cat))
	db.AddTable(fact)

	dim := colstore.NewTable("dim")
	dk := make([]int64, 977)
	dn := make([]string, 977)
	for i := range dk {
		dk[i] = int64(i)
		dn[i] = fmt.Sprintf("name%03d", i%10)
	}
	must0(t, dim.AddColumn("dk", vector.Int64, dk))
	must0(t, dim.AddColumn("dn", vector.String, dn))
	db.AddTable(dim)
	return db
}

func must0(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// exactKeys renders every row with full precision (bit-exact floats).
func exactKeys(res *Result) []string {
	keys := make([]string, res.NumRows())
	for i := range keys {
		s := ""
		for _, v := range res.Row(i) {
			s += fmt.Sprintf("|%v", v)
		}
		keys[i] = s
	}
	return keys
}

// nonFloatKey renders a row's non-float columns: group keys, counts and
// integer/string min/max are bit-deterministic at any parallelism, so they
// identify the row for the tolerance-based float comparison.
func nonFloatKey(row []any) string {
	s := ""
	for _, v := range row {
		if _, ok := v.(float64); ok {
			continue
		}
		s += fmt.Sprintf("|%v", v)
	}
	return s
}

// assertSameResult checks got against want as row multisets. Rows that are
// bit-identical (including floats) match exactly; otherwise rows pair up by
// their non-float columns — which must then be unique per row — and float
// columns compare within relative 1e-9 (parallel aggregation sums floats
// in a different order than serial execution).
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("row count %d, want %d", got.NumRows(), want.NumRows())
	}
	ew, eg := exactKeys(want), exactKeys(got)
	sort.Strings(ew)
	sort.Strings(eg)
	exact := true
	for i := range ew {
		if ew[i] != eg[i] {
			exact = false
			break
		}
	}
	if exact {
		return
	}
	index := func(res *Result) map[string][]any {
		m := make(map[string][]any, res.NumRows())
		for i := 0; i < res.NumRows(); i++ {
			row := res.Row(i)
			k := nonFloatKey(row)
			if _, dup := m[k]; dup {
				t.Fatalf("non-float key %q not unique; cannot pair rows for float tolerance", k)
			}
			m[k] = row
		}
		return m
	}
	mw, mg := index(want), index(got)
	for k, wrow := range mw {
		grow, ok := mg[k]
		if !ok {
			t.Fatalf("row %q missing from parallel result", k)
		}
		for c := range wrow {
			wf, wok := wrow[c].(float64)
			gf, gok := grow[c].(float64)
			if wok && gok {
				if diff := math.Abs(wf - gf); diff > 1e-9*math.Max(1, math.Abs(wf)) {
					t.Fatalf("row %q col %d: %v != %v", k, c, gf, wf)
				}
				continue
			}
			if wrow[c] != grow[c] {
				t.Fatalf("row %q col %d: %v != %v", k, c, grow[c], wrow[c])
			}
		}
	}
}

// runParallelLevels executes plan at Parallelism 1, 2 and 8 and asserts
// identical results.
func runParallelLevels(t *testing.T, db *Database, plan algebra.Node) {
	t.Helper()
	opts := DefaultOptions()
	opts.Parallelism = 1
	want, err := Run(db, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		t.Run(fmt.Sprintf("parallelism%d", p), func(t *testing.T) {
			o := DefaultOptions()
			o.Parallelism = p
			got, err := Run(db, plan, o)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, want, got)
		})
	}
}

func TestParallelScanSelectProject(t *testing.T) {
	db := parallelDB(t, 100_000)
	plan := algebra.NewProject(
		algebra.NewSelect(
			algebra.NewScan("fact", "k", "v", "g"),
			expr.LTE(expr.C("v"), expr.Float(300)),
		),
		algebra.NE("k", expr.C("k")),
		algebra.NE("vv", expr.MulE(expr.C("v"), expr.Float(2))),
	)
	runParallelLevels(t, db, plan)
}

func TestParallelHashAggr(t *testing.T) {
	db := parallelDB(t, 100_000)
	plan := algebra.NewAggr(
		algebra.NewSelect(
			algebra.NewScan("fact", "k", "v", "g"),
			expr.GTE(expr.C("v"), expr.Float(100)),
		),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("v")),
			algebra.Count("n"),
			algebra.Min("lo", expr.C("v")),
			algebra.Max("hi", expr.C("v")),
			algebra.Avg("av", expr.C("v")),
			algebra.Min("klo", expr.C("k")),
			algebra.Max("khi", expr.C("k")),
		},
	)
	runParallelLevels(t, db, plan)
}

func TestParallelDirectAggr(t *testing.T) {
	db := parallelDB(t, 100_000)
	// Group by the enum code column: the direct-aggregation path.
	plan := algebra.NewAggr(
		algebra.NewScan("fact", "cat#", "v"),
		[]algebra.NamedExpr{algebra.NE("c", expr.C("cat#"))},
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("v")),
			algebra.Count("n"),
		},
	)
	runParallelLevels(t, db, plan)
}

func TestParallelScalarAggr(t *testing.T) {
	db := parallelDB(t, 100_000)
	plan := algebra.NewAggr(
		algebra.NewSelect(
			algebra.NewScan("fact", "v"),
			expr.LTE(expr.C("v"), expr.Float(700)),
		),
		nil,
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("v")),
			algebra.Count("n"),
			algebra.Min("lo", expr.C("v")),
			algebra.Max("hi", expr.C("v")),
		},
	)
	runParallelLevels(t, db, plan)
}

func TestParallelJoinProbe(t *testing.T) {
	db := parallelDB(t, 60_000)
	// Partitioned probe over fact, shared build over dim, aggregated above
	// the exchange so the comparison is order-insensitive.
	plan := algebra.NewAggr(
		algebra.NewJoin(
			algebra.NewScan("fact", "k", "v"),
			algebra.NewScan("dim", "dk", "dn"),
			algebra.EquiCond{L: "k", R: "dk"},
		),
		[]algebra.NamedExpr{algebra.NE("dn", expr.C("dn"))},
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("v")),
			algebra.Count("n"),
		},
	)
	runParallelLevels(t, db, plan)
}

func TestParallelSemiJoin(t *testing.T) {
	db := parallelDB(t, 60_000)
	plan := algebra.NewAggr(
		algebra.NewJoinKind(algebra.Semi,
			algebra.NewSelect(
				algebra.NewScan("fact", "k", "v"),
				expr.LTE(expr.C("v"), expr.Float(500)),
			),
			algebra.NewSelect(
				algebra.NewScan("dim", "dk"),
				expr.LTE(expr.C("dk"), expr.Int(100)),
			),
			algebra.EquiCond{L: "k", R: "dk"},
		),
		nil,
		[]algebra.AggExpr{algebra.Sum("s", expr.C("v")), algebra.Count("n")},
	)
	runParallelLevels(t, db, plan)
}

func TestParallelOrderOverExchange(t *testing.T) {
	db := parallelDB(t, 60_000)
	// Order runs serially above the exchange, restoring determinism of
	// row order.
	plan := algebra.NewOrder(
		algebra.NewAggr(
			algebra.NewScan("fact", "g", "v"),
			[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
			[]algebra.AggExpr{algebra.Count("n")},
		),
		algebra.Asc(expr.C("g")),
	)
	opts := DefaultOptions()
	opts.Parallelism = 1
	want, err := Run(db, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		o := DefaultOptions()
		o.Parallelism = p
		got, err := Run(db, plan, o)
		if err != nil {
			t.Fatal(err)
		}
		// Exact positional comparison: output order must be deterministic.
		if want.NumRows() != got.NumRows() {
			t.Fatalf("P=%d: %d rows, want %d", p, got.NumRows(), want.NumRows())
		}
		for i := 0; i < want.NumRows(); i++ {
			w, g := want.Row(i), got.Row(i)
			for c := range w {
				if w[c] != g[c] {
					t.Fatalf("P=%d row %d col %d: %v != %v", p, i, c, g[c], w[c])
				}
			}
		}
	}
}

func TestParallelEmptyTable(t *testing.T) {
	db := NewDatabase()
	empty := colstore.NewTable("empty")
	must0(t, empty.AddColumn("a", vector.Int64, []int64{}))
	must0(t, empty.AddColumn("b", vector.Float64, []float64{}))
	db.AddTable(empty)

	scanPlan := algebra.NewSelect(
		algebra.NewScan("empty", "a", "b"),
		expr.GTE(expr.C("a"), expr.Int(0)),
	)
	groupPlan := algebra.NewAggr(scanPlan,
		[]algebra.NamedExpr{algebra.NE("a", expr.C("a"))},
		[]algebra.AggExpr{algebra.Sum("s", expr.C("b"))},
	)
	scalarPlan := algebra.NewAggr(scanPlan, nil,
		[]algebra.AggExpr{algebra.Sum("s", expr.C("b")), algebra.Count("n")},
	)
	for name, plan := range map[string]algebra.Node{
		"scan": scanPlan, "group": groupPlan, "scalar": scalarPlan,
	} {
		t.Run(name, func(t *testing.T) { runParallelLevels(t, db, plan) })
	}
}

// TestParallelDeltaFallback: a table with pending deltas must fall back to
// the serial scan and still produce correct results at any parallelism.
func TestParallelDeltaFallback(t *testing.T) {
	db := parallelDB(t, 20_000)
	ds, err := db.Delta("fact")
	must0(t, err)
	if _, err := ds.Insert([]any{int64(1), 42.0, int64(1), "a"}); err != nil {
		t.Fatal(err)
	}
	must0(t, ds.Delete(3))
	plan := algebra.NewAggr(
		algebra.NewScan("fact", "g", "v"),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
		[]algebra.AggExpr{algebra.Sum("s", expr.C("v")), algebra.Count("n")},
	)
	runParallelLevels(t, db, plan)
}

// TestParallelReopen: a Built parallel plan must produce the full result
// again after Close/re-Open (the shared morsel sources rewind at Open).
func TestParallelReopen(t *testing.T) {
	db := parallelDB(t, 50_000)
	plan := algebra.NewAggr(
		algebra.NewScan("fact", "v"),
		nil,
		[]algebra.AggExpr{algebra.Sum("s", expr.C("v")), algebra.Count("n")},
	)
	opts := DefaultOptions()
	opts.Parallelism = 4
	op, err := Build(db, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if first.Row(0)[1].(int64) != 50_000 || second.Row(0)[1].(int64) != 50_000 {
		t.Fatalf("counts: first %v, second %v", first.Row(0), second.Row(0))
	}
	assertSameResult(t, first, second)

	// Same through an exchange (scan-only fragment).
	scanOnly := algebra.NewScan("fact", "k")
	op2, err := Build(db, scanOnly, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Drain(op2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Drain(op2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NumRows() != 50_000 || r2.NumRows() != 50_000 {
		t.Fatalf("rows: first %d, second %d", r1.NumRows(), r2.NumRows())
	}
}

// TestParallelVectorSizes sweeps batch sizes across the morsel boundary.
func TestParallelVectorSizes(t *testing.T) {
	db := parallelDB(t, 50_000)
	plan := algebra.NewAggr(
		algebra.NewScan("fact", "g", "v"),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
		[]algebra.AggExpr{algebra.Sum("s", expr.C("v")), algebra.Count("n")},
	)
	serial := DefaultOptions()
	want, err := Run(db, plan, serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 64, 1024, 100_000} {
		o := DefaultOptions()
		o.BatchSize = bs
		o.Parallelism = 4
		got, err := Run(db, plan, o)
		if err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		assertSameResult(t, want, got)
	}
}
