package core

import (
	"fmt"
	"testing"

	"x100/internal/algebra"
	"x100/internal/expr"
)

// appendAndCheckpoint pushes rows (mode, mixed, v) through the delta store
// and runs a durable checkpoint, which appends new chunks to the ColumnBM
// directory and re-attaches them.
func appendAndCheckpoint(t *testing.T, db *Database, rows [][3]any) {
	t.Helper()
	ds, err := db.Delta("events")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := ds.Insert([]any{r[0], r[1], r[2]}); err != nil {
			t.Fatal(err)
		}
	}
	done, err := db.Checkpoint("events")
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("checkpoint declined")
	}
}

// groupCounts runs a code-domain-sensitive plan (group by the string
// column, count) both with and without code-domain execution, requires the
// results to agree, and returns the per-mode counts.
func groupCounts(t *testing.T, db *Database, par int) map[string]int64 {
	t.Helper()
	plan := algebra.NewAggr(
		algebra.NewScan("events", "mode"),
		[]algebra.NamedExpr{algebra.NE("m", expr.C("mode"))},
		[]algebra.AggExpr{algebra.Count("n")},
	)
	code, decode := runBoth(t, db, plan, par)
	assertSameRows(t, "group-by mode after append", code, decode)
	out := make(map[string]int64)
	for i := 0; i < code.NumRows(); i++ {
		row := code.Row(i)
		out[row[0].(string)] = row[1].(int64)
	}
	return out
}

// TestCodeDomainSurvivesAppend is the regression test for merged
// dictionaries being dropped by a checkpoint append: appending rows to a
// disk-attached table invalidates the attach-time merged dictionary
// (colstore cannot assume new fragments share the code domain), and before
// the incremental refresh every append+query cycle silently fell back to
// decode-first execution. The three phases cover the refresh paths:
// same-domain appends reinstall the saved dictionary, a new value forces a
// rebuild over all chunks, and a non-dict-coded append legitimately drops
// the code domain without breaking queries.
func TestCodeDomainSurvivesAppend(t *testing.T) {
	db, _, n := codeDomainDiskDB(t)
	modes := []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	base := groupCounts(t, db, 1)

	// Phase 1: append 2000 rows repeating the existing 7-value domain. The
	// new chunks dict-code and every value is already in the saved
	// dictionary, so the refresh must reinstall it unchanged.
	rows := make([][3]any, 2000)
	for i := range rows {
		rows[i] = [3]any{modes[i%len(modes)], fmt.Sprintf("key-prefix-%08d", n+i), int64(n + i)}
	}
	appendAndCheckpoint(t, db, rows)

	tab, err := db.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	md := tab.Col("mode").MergedDict()
	if md == nil {
		t.Fatal("same-domain append dropped the merged dictionary")
	}
	if md.Len() != len(modes) {
		t.Fatalf("merged cardinality %d after same-domain append, want %d", md.Len(), len(modes))
	}
	if _, _, ok := tab.Col("mode").CodeDomain(); !ok {
		t.Fatal("same-domain append dropped the code domain")
	}
	for _, par := range []int{1, 4} {
		got := groupCounts(t, db, par)
		var total int64
		for _, m := range modes {
			if got[m] < base[m] {
				t.Fatalf("p%d: mode %s count shrank after append: %d -> %d", par, m, base[m], got[m])
			}
			total += got[m]
		}
		if total != int64(n+2000) {
			t.Fatalf("p%d: total rows %d after append, want %d", par, total, n+2000)
		}
	}

	// Phase 2: append a value outside the saved dictionary. The chunk still
	// dict-codes (single distinct value), so the refresh must rebuild the
	// merged dictionary over all chunks and keep the code domain.
	rows = rows[:1000]
	for i := range rows {
		rows[i] = [3]any{"ZEPPELIN", "zep", int64(n + 2000 + i)}
	}
	appendAndCheckpoint(t, db, rows)
	md = tab.Col("mode").MergedDict()
	if md == nil {
		t.Fatal("new-value append dropped the merged dictionary instead of rebuilding it")
	}
	if md.Len() != len(modes)+1 {
		t.Fatalf("merged cardinality %d after new-value append, want %d", md.Len(), len(modes)+1)
	}
	sel := algebra.NewSelect(
		algebra.NewScan("events", "mode", "v"),
		expr.EQE(expr.C("mode"), expr.Str("ZEPPELIN")),
	)
	code, decode := runBoth(t, db, sel, 4)
	assertSameRows(t, "eq new value", code, decode)
	if code.NumRows() != 1000 {
		t.Fatalf("predicate on appended value matched %d rows, want 1000", code.NumRows())
	}
	// The "mode#dict" mapping table must track the rebuilt dictionary.
	dt, err := db.Table("mode" + DictSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if dn := dt.Col("value").Len(); dn != len(modes)+1 {
		t.Fatalf("dict table has %d values, want %d", dn, len(modes)+1)
	}

	// Phase 3: append high-cardinality strings. The new chunks cannot
	// dict-code, so the column legitimately loses its code domain — and
	// queries must keep answering correctly via decode-first execution.
	rows = rows[:1000]
	for i := range rows {
		rows[i] = [3]any{fmt.Sprintf("unique-mode-%08x-%04d", i*2654435761, i), "raw", int64(n + 3000 + i)}
	}
	appendAndCheckpoint(t, db, rows)
	if _, _, ok := tab.Col("mode").CodeDomain(); ok {
		t.Fatal("non-dict append must drop the code domain (new chunks have no codes)")
	}
	got := groupCounts(t, db, 4)
	var total int64
	for _, c := range got {
		total += c
	}
	if total != int64(n+4000) {
		t.Fatalf("total rows %d after non-dict append, want %d", total, n+4000)
	}
	if got["ZEPPELIN"] != 1000 {
		t.Fatalf("ZEPPELIN count %d after non-dict append, want 1000", got["ZEPPELIN"])
	}
}
