package core

import (
	"fmt"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/sindex"
	"x100/internal/vector"
)

// fetchDiskDBs builds a dim table (several column types, enum included) and
// a fact table whose rows reference dim rows positionally (clustered, so a
// range index dim->fact exists too), persists both through a ColumnBM store
// with tiny chunks and a tiny buffer pool, and returns the in-memory and
// disk-attached databases.
func fetchDiskDBs(t *testing.T) (mem, disk *Database) {
	t.Helper()
	const nDim, perDim = 3000, 4
	const nFact = nDim * perDim
	dimName := make([]string, nDim)
	dimPrice := make([]float64, nDim)
	dimTag := make([]string, nDim)
	for i := 0; i < nDim; i++ {
		dimName[i] = fmt.Sprintf("dim#%07d", i)
		dimPrice[i] = float64(i%97) / 3
		dimTag[i] = []string{"N", "A", "R"}[i%3]
	}
	factRef := make([]int32, nFact)
	factQty := make([]int64, nFact)
	for i := 0; i < nFact; i++ {
		factRef[i] = int32(i / perDim) // clustered by dim row id
		factQty[i] = int64(i % 11)
	}
	build := func() *colstore.Table {
		dim := colstore.NewTable("dim")
		if err := dim.AddColumn("name", vector.String, append([]string(nil), dimName...)); err != nil {
			t.Fatal(err)
		}
		if err := dim.AddColumn("price", vector.Float64, append([]float64(nil), dimPrice...)); err != nil {
			t.Fatal(err)
		}
		if err := dim.AddEnumColumn("tag", append([]string(nil), dimTag...)); err != nil {
			t.Fatal(err)
		}
		return dim
	}
	buildFact := func() *colstore.Table {
		fact := colstore.NewTable("fact")
		if err := fact.AddColumn("ref", vector.Int32, append([]int32(nil), factRef...)); err != nil {
			t.Fatal(err)
		}
		if err := fact.AddColumn("qty", vector.Int64, append([]int64(nil), factQty...)); err != nil {
			t.Fatal(err)
		}
		return fact
	}
	registerRange := func(db *Database) {
		ji := &sindex.JoinIndex{From: "fact", To: "dim", RowIDs: append([]int32(nil), factRef...)}
		ri, err := sindex.BuildRangeIndex(ji, nDim)
		if err != nil {
			t.Fatal(err)
		}
		db.RegisterRangeIndex("fact", "dim", ri)
	}

	mem = NewDatabase()
	mem.AddTable(build())
	mem.AddTable(buildFact())
	registerRange(mem)

	dir := t.TempDir()
	// 512-value chunks: the dim columns span ~6 chunks each; pool of 2
	// compressed chunks forces eviction during any cross-chunk fetch.
	wstore, err := columnbm.NewStore(dir, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wstore.SaveTable(build()); err != nil {
		t.Fatal(err)
	}
	if err := wstore.SaveTable(buildFact()); err != nil {
		t.Fatal(err)
	}
	store, err := columnbm.NewStore(dir, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	disk = NewDatabase()
	for _, name := range []string{"dim", "fact"} {
		if _, err := AttachDiskTable(disk, store, name); err != nil {
			t.Fatal(err)
		}
	}
	registerRange(disk)
	return mem, disk
}

func runRows(t *testing.T, db *Database, plan algebra.Node, parallelism int) map[string]int {
	t.Helper()
	opts := DefaultOptions()
	opts.Parallelism = parallelism
	res, err := Run(db, plan, opts)
	if err != nil {
		t.Fatalf("p=%d: %v", parallelism, err)
	}
	out := map[string]int{}
	for i := 0; i < res.NumRows(); i++ {
		out[fmt.Sprint(res.Row(i)...)]++
	}
	return out
}

func assertUnpinned(t *testing.T, db *Database, table string, cols ...string) {
	t.Helper()
	tab, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cols {
		if tab.Col(c).Pinned() {
			t.Fatalf("disk column %s.%s was pinned — fetch joins must stay chunk-wise", table, c)
		}
	}
}

// TestFetch1JoinDiskNonPinning runs positional Fetch1Joins (plain, float,
// and enum fetch columns; random and clustered row-id patterns) against the
// disk-attached dim table with a 2-chunk buffer pool, asserts results match
// the in-memory database at parallelism 1/2/4, and that no fetched disk
// column was ever pinned — the bounded-memory contract (at most one decoded
// chunk per column per gather, plus the locator's small LRU).
func TestFetch1JoinDiskNonPinning(t *testing.T) {
	mem, disk := fetchDiskDBs(t)
	// fact.ref is clustered; qty*773%3000 makes a scattered id too.
	queries := map[string]string{
		"clustered": `Aggr(Fetch1Join(Scan(fact, [ref, qty]), dim, ref, [name, price, tag]),
		               [tag], [n = count(), s = sum(price), q = sum(qty), mx = max(name)])`,
		"filtered": `Aggr(Fetch1Join(Select(Scan(fact, [ref, qty]), >(qty, 5)), dim, ref, [price, tag]),
		               [tag], [n = count(), s = sum(price)])`,
	}
	for label, text := range queries {
		t.Run(label, func(t *testing.T) {
			plan, err := algebra.Parse(text)
			if err != nil {
				t.Fatal(err)
			}
			want := runRows(t, mem, plan, 1)
			for _, p := range []int{1, 2, 4} {
				got := runRows(t, disk, plan, p)
				if len(got) != len(want) {
					t.Fatalf("p=%d: %d rows, want %d", p, len(got), len(want))
				}
				for k, n := range want {
					if got[k] != n {
						t.Fatalf("p=%d: row %q count %d, want %d", p, k, got[k], n)
					}
				}
			}
			assertUnpinned(t, disk, "dim", "name", "price", "tag")
		})
	}
}

// TestFetchNJoinDiskNonPinning expands dim rows into their fact ranges via
// FetchNJoin against the disk-attached fact table and asserts identical
// results and no pinning of the fetched fact columns.
func TestFetchNJoinDiskNonPinning(t *testing.T) {
	mem, disk := fetchDiskDBs(t)
	plan, err := algebra.Parse(`Aggr(FetchNJoin(Scan(dim, [#rowid, price]), fact, #rowid, [qty]),
	                             [], [n = count(), q = sum(qty), s = sum(price)])`)
	if err != nil {
		t.Fatal(err)
	}
	want := runRows(t, mem, plan, 1)
	got := runRows(t, disk, plan, 1)
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %q count %d, want %d", k, got[k], n)
		}
	}
	assertUnpinned(t, disk, "fact", "qty")
}

// TestFetch1JoinDiskWithDelta covers the delta-aware fetch path on a disk
// table: pending inserts on dim resolve from the delta, base ids through
// the locator, still without pinning.
func TestFetch1JoinDiskWithDelta(t *testing.T) {
	mem, disk := fetchDiskDBs(t)
	for _, db := range []*Database{mem, disk} {
		ds, err := db.Delta("dim")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.Insert([]any{"dim#new", 123.5, "X"}); err != nil {
			t.Fatal(err)
		}
		dt, err := db.Table("fact")
		if err != nil {
			t.Fatal(err)
		}
		fds, err := db.Delta("fact")
		if err != nil {
			t.Fatal(err)
		}
		// One fact row referencing the delta dim row.
		if _, err := fds.Insert([]any{int32(3000), int64(99)}); err != nil {
			t.Fatal(err)
		}
		_ = dt
	}
	plan, err := algebra.Parse(`Aggr(Fetch1Join(Scan(fact, [ref, qty]), dim, ref, [name, tag]),
	                             [tag], [n = count(), q = sum(qty), mx = max(name)])`)
	if err != nil {
		t.Fatal(err)
	}
	want := runRows(t, mem, plan, 1)
	got := runRows(t, disk, plan, 1)
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %q count %d, want %d", k, got[k], n)
		}
	}
	assertUnpinned(t, disk, "dim", "name", "tag")
}

// TestReregisterDropsDiskAttachment asserts that re-registering a table
// name previously attached from disk detaches it: checkpoints of the new
// in-memory table must not write back to the unrelated old directory.
func TestReregisterDropsDiskAttachment(t *testing.T) {
	_, disk := fetchDiskDBs(t)
	att, err := disk.Table("dim")
	if err != nil {
		t.Fatal(err)
	}
	// Shadow "dim" with a fresh in-memory table of the same shape.
	mem := colstore.NewTable("dim")
	if err := mem.AddColumn("x", vector.Int64, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	disk.AddTable(mem)
	ds, err := disk.Delta("dim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Insert([]any{int64(4)}); err != nil {
		t.Fatal(err)
	}
	if done, err := disk.Checkpoint("dim"); err != nil || !done {
		t.Fatalf("in-memory checkpoint after re-register: done=%v err=%v", done, err)
	}
	if mem.N != 4 || mem.Col("x").NumFrags() != 2 {
		t.Fatalf("checkpoint did not extend the in-memory table: N=%d", mem.N)
	}
	// The old disk table object is untouched and its directory unchanged
	// (a disk write-back of the 1-column table would have failed or, worse,
	// appended to the 3-column manifest).
	if att.N != 3000 {
		t.Fatalf("detached disk table mutated: N=%d", att.N)
	}
}
