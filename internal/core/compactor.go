package core

import (
	"sort"
	"sync"
	"time"

	"x100/internal/sched"
)

// CompactorOptions tune the background compactor (StartCompactor).
type CompactorOptions struct {
	// Interval is how often the compactor polls the disk-attached tables
	// for work. <= 0 selects 100ms.
	Interval time.Duration
	// MinDeltaRows is the pending-insert threshold above which a table is
	// checkpointed (incrementally absorbing the delta into new chunks).
	// <= 0 selects 4096.
	MinDeltaRows int
	// DeleteFraction is the deleted-row fraction above which a table is
	// compacted (Reorganize: the base is rewritten without the deleted
	// rows into a fresh chunk generation). <= 0 selects 0.25.
	DeleteFraction float64
	// Pool is the admission-control pool the compactor draws one execution
	// slot from per maintenance run, so background compaction competes
	// with queries for the shared slot budget instead of starving them.
	// nil uses the process-wide default pool.
	Pool *sched.Pool
}

// CompactionStatus is a snapshot of the background compactor's counters.
type CompactionStatus struct {
	// Runs counts completed maintenance operations (checkpoints plus
	// compactions).
	Runs int64
	// Checkpoints counts incremental delta write-backs.
	Checkpoints int64
	// Compactions counts full base rewrites (Reorganize cutovers).
	Compactions int64
	// RowsAbsorbed totals the delta rows absorbed into base chunks.
	RowsAbsorbed int64
	// Errors counts failed maintenance operations; LastError is the most
	// recent failure (nil when none).
	Errors    int64
	LastError error
	// InFlight reports whether a maintenance operation is running right
	// now, and LastTable names the table it (or the previous run) touched.
	InFlight  bool
	LastTable string
}

// Compactor runs checkpoint and Reorganize as background maintenance over
// a database's disk-attached tables: it periodically absorbs grown insert
// deltas into new chunks (incremental checkpoint) and rewrites tables
// whose deleted fraction passed the threshold (compaction), while queries
// keep executing against their captured snapshots. Create one with
// StartCompactor; Stop it before discarding the database.
type Compactor struct {
	db   *Database
	opts CompactorOptions

	mu     sync.Mutex
	status CompactionStatus

	stop chan struct{}
	done chan struct{}
}

// StartCompactor launches a background compactor over db's disk-attached
// tables.
func StartCompactor(db *Database, opts CompactorOptions) *Compactor {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.MinDeltaRows <= 0 {
		opts.MinDeltaRows = 4096
	}
	if opts.DeleteFraction <= 0 {
		opts.DeleteFraction = 0.25
	}
	c := &Compactor{db: db, opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	go c.loop()
	return c
}

// Stop halts the compactor and waits for an in-flight maintenance run to
// finish. Idempotent.
func (c *Compactor) Stop() {
	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		<-c.done
		return
	default:
	}
	close(c.stop)
	c.mu.Unlock()
	<-c.done
}

// Status returns a snapshot of the compactor's counters.
func (c *Compactor) Status() CompactionStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

func (c *Compactor) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.sweep()
		}
	}
}

// sweep scans the disk-attached tables once and runs at most one
// maintenance operation per table. Each operation holds an admission slot
// for its duration: the heavy work (part encoding, chunk compression)
// competes with query workers for the shared core budget.
func (c *Compactor) sweep() {
	c.db.mu.RLock()
	names := make([]string, 0, len(c.db.disk))
	for name := range c.db.disk {
		names = append(names, name)
	}
	c.db.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		select {
		case <-c.stop:
			return
		default:
		}
		c.maintain(name)
	}
}

func (c *Compactor) maintain(table string) {
	ds, err := c.db.Delta(table)
	if err != nil {
		return
	}
	nDel := ds.NumDeleted()
	nIns := ds.NumDeltaRows()
	total := ds.BaseN() + nIns
	compact := total > 0 && float64(nDel) >= c.opts.DeleteFraction*float64(total)
	checkpoint := nIns >= c.opts.MinDeltaRows
	if !compact && !checkpoint {
		return
	}
	c.mu.Lock()
	c.status.InFlight = true
	c.status.LastTable = table
	c.mu.Unlock()
	slot := c.pool().NewSlot()
	slot.Acquire()
	if compact {
		err = c.db.Reorganize(table)
	} else {
		_, err = c.db.Checkpoint(table)
	}
	slot.Release()
	c.mu.Lock()
	c.status.InFlight = false
	if err != nil {
		c.status.Errors++
		c.status.LastError = err
	} else {
		c.status.Runs++
		if compact {
			c.status.Compactions++
			c.status.RowsAbsorbed += int64(nIns)
		} else {
			c.status.Checkpoints++
			c.status.RowsAbsorbed += int64(nIns)
		}
	}
	c.mu.Unlock()
}

func (c *Compactor) pool() *sched.Pool {
	if c.opts.Pool != nil {
		return c.opts.Pool
	}
	return sched.Default()
}
