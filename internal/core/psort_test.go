package core

import (
	"fmt"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/vector"
)

// psortDB builds a fact table for sort tests: u is a unique pseudo-random
// permutation (total order, so sorted output is positionally deterministic
// at any parallelism), v is a random float, g a small-domain group key
// (forcing ties).
func psortDB(t *testing.T, rows int) *Database {
	t.Helper()
	db := NewDatabase()
	fact := colstore.NewTable("pfact")
	u := make([]int64, rows)
	v := make([]float64, rows)
	g := make([]int64, rows)
	r := uint64(11)
	for i := range u {
		// 2654435761 is odd and not divisible by 5, hence coprime with the
		// row counts used here, so i*2654435761 mod rows is a permutation.
		u[i] = int64(uint64(i) * 2654435761 % uint64(rows))
		r ^= r >> 12
		r ^= r << 25
		r ^= r >> 27
		v[i] = float64(r%100000) / 100
		g[i] = int64(r % 53)
	}
	must0(t, fact.AddColumn("u", vector.Int64, u))
	must0(t, fact.AddColumn("v", vector.Float64, v))
	must0(t, fact.AddColumn("g", vector.Int64, g))
	db.AddTable(fact)
	return db
}

// assertRowsEqualOrdered does an exact positional comparison.
func assertRowsEqualOrdered(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: %d rows, want %d", label, got.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		w, g := want.Row(i), got.Row(i)
		for c := range w {
			if w[c] != g[c] {
				t.Fatalf("%s: row %d col %d: %v != %v", label, i, c, g[c], w[c])
			}
		}
	}
}

// TestParallelOrderUniqueKey: Order directly over a partitionable scan runs
// as parallel sorted runs + k-way merge. The sort key is unique, so output
// must be positionally identical to the serial sort at every parallelism.
func TestParallelOrderUniqueKey(t *testing.T) {
	db := psortDB(t, 80_000)
	for _, desc := range []bool{false, true} {
		key := algebra.Asc(expr.C("u"))
		if desc {
			key = algebra.Desc(expr.C("u"))
		}
		plan := algebra.NewOrder(algebra.NewScan("pfact", "u", "v", "g"), key)
		opts := DefaultOptions()
		opts.Parallelism = 1
		want, err := Run(db, plan, opts)
		must0(t, err)
		for _, p := range []int{2, 8} {
			o := DefaultOptions()
			o.Parallelism = p
			got, err := Run(db, plan, o)
			must0(t, err)
			assertRowsEqualOrdered(t, fmt.Sprintf("desc=%v P=%d", desc, p), want, got)
		}
	}
}

// TestParallelOrderTies: sorting by a 53-value key leaves massive tie
// groups whose internal order is not deterministic under parallel merge
// (morsel scheduling decides run membership). The guarantees that remain:
// the output is a row-multiset identical to serial, and it is sorted.
func TestParallelOrderTies(t *testing.T) {
	db := psortDB(t, 60_000)
	plan := algebra.NewOrder(algebra.NewScan("pfact", "g", "u"), algebra.Asc(expr.C("g")))
	opts := DefaultOptions()
	opts.Parallelism = 1
	want, err := Run(db, plan, opts)
	must0(t, err)
	for _, p := range []int{2, 8} {
		o := DefaultOptions()
		o.Parallelism = p
		got, err := Run(db, plan, o)
		must0(t, err)
		assertSameResult(t, want, got)
		prev := int64(-1 << 62)
		for i := 0; i < got.NumRows(); i++ {
			g := got.Row(i)[0].(int64)
			if g < prev {
				t.Fatalf("P=%d: row %d out of order: %d after %d", p, i, g, prev)
			}
			prev = g
		}
	}
}

// TestParallelTopNUniqueKey: per-worker pruned runs merged with a global
// cutoff must equal the serial TopN exactly when the key is unique.
func TestParallelTopNUniqueKey(t *testing.T) {
	db := psortDB(t, 80_000)
	for _, n := range []int{1, 100, 5000} {
		plan := algebra.NewTopN(
			algebra.NewScan("pfact", "u", "v"), n, algebra.Desc(expr.C("u")))
		opts := DefaultOptions()
		opts.Parallelism = 1
		want, err := Run(db, plan, opts)
		must0(t, err)
		for _, p := range []int{2, 8} {
			o := DefaultOptions()
			o.Parallelism = p
			got, err := Run(db, plan, o)
			must0(t, err)
			assertRowsEqualOrdered(t, fmt.Sprintf("n=%d P=%d", n, p), want, got)
		}
	}
}

// TestParallelTopNTies: at the cutoff rank the tied rows kept may differ
// from serial in their non-key columns, but the key column itself is a
// deterministic multiset — compared positionally since both outputs are
// sorted.
func TestParallelTopNTies(t *testing.T) {
	db := psortDB(t, 60_000)
	plan := algebra.NewTopN(
		algebra.NewScan("pfact", "g", "u"), 500, algebra.Asc(expr.C("g")))
	opts := DefaultOptions()
	opts.Parallelism = 1
	want, err := Run(db, plan, opts)
	must0(t, err)
	for _, p := range []int{2, 8} {
		o := DefaultOptions()
		o.Parallelism = p
		got, err := Run(db, plan, o)
		must0(t, err)
		if want.NumRows() != got.NumRows() {
			t.Fatalf("P=%d: %d rows, want %d", p, got.NumRows(), want.NumRows())
		}
		for i := 0; i < want.NumRows(); i++ {
			if want.Row(i)[0] != got.Row(i)[0] {
				t.Fatalf("P=%d: row %d key %v, want %v", p, i, got.Row(i)[0], want.Row(i)[0])
			}
		}
	}
}

// TestParallelOrderEmpty: a parallel sort over an empty partitionable scan
// must return zero rows, not error or hang.
func TestParallelOrderEmpty(t *testing.T) {
	db := NewDatabase()
	empty := colstore.NewTable("empty")
	must0(t, empty.AddColumn("a", vector.Int64, []int64{}))
	db.AddTable(empty)
	plan := algebra.NewOrder(algebra.NewScan("empty", "a"), algebra.Asc(expr.C("a")))
	for _, p := range []int{2, 8} {
		o := DefaultOptions()
		o.Parallelism = p
		got, err := Run(db, plan, o)
		must0(t, err)
		if got.NumRows() != 0 {
			t.Fatalf("P=%d: %d rows from empty table", p, got.NumRows())
		}
	}
}

// TestTopNPruneMatchesFullSort: the bounded-candidate-set prune
// (orderOp.maybePrune) must be invisible: TopN(n) over a large input equals
// the first n rows of the full stable Order, positionally, ties included.
// With limit 10 the prune bound is the 4096 floor, so a 50k-row input
// prunes many times.
func TestTopNPruneMatchesFullSort(t *testing.T) {
	db := psortDB(t, 50_000)
	const n = 10
	// g has 53 distinct values over 50k rows: rank n sits deep inside a tie
	// group, exercising the stable-order guarantee of the prune.
	topn := algebra.NewTopN(
		algebra.NewScan("pfact", "g", "u", "v"), n, algebra.Asc(expr.C("g")))
	full := algebra.NewOrder(
		algebra.NewScan("pfact", "g", "u", "v"), algebra.Asc(expr.C("g")))
	opts := DefaultOptions()
	opts.Parallelism = 1
	want, err := Run(db, full, opts)
	must0(t, err)
	got, err := Run(db, topn, opts)
	must0(t, err)
	if got.NumRows() != n {
		t.Fatalf("TopN returned %d rows, want %d", got.NumRows(), n)
	}
	for i := 0; i < n; i++ {
		w, g := want.Row(i), got.Row(i)
		for c := range w {
			if w[c] != g[c] {
				t.Fatalf("row %d col %d: %v != %v (prune broke stable order)", i, c, g[c], w[c])
			}
		}
	}
}

// TestParallelJoinBuildLarge: a build side over the parallel-index
// threshold (1<<14 rows) exercises the partitioned drain, bulk parallel
// hashing, and slot-range-partitioned insert. Aggregation above the join
// makes the comparison order-insensitive.
func TestParallelJoinBuildLarge(t *testing.T) {
	db := psortDB(t, 60_000)
	dim := colstore.NewTable("bigdim")
	const dimRows = 40_000
	dk := make([]int64, dimRows)
	dv := make([]int64, dimRows)
	for i := range dk {
		dk[i] = int64(uint64(i) * 2654435761 % dimRows)
		dv[i] = int64(i % 97)
	}
	must0(t, dim.AddColumn("dk", vector.Int64, dk))
	must0(t, dim.AddColumn("dv", vector.Int64, dv))
	db.AddTable(dim)

	plan := algebra.NewAggr(
		algebra.NewJoin(
			algebra.NewScan("pfact", "u", "v"),
			algebra.NewScan("bigdim", "dk", "dv"),
			algebra.EquiCond{L: "u", R: "dk"},
		),
		[]algebra.NamedExpr{algebra.NE("dv", expr.C("dv"))},
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("v")),
			algebra.Count("n"),
		},
	)
	runParallelLevels(t, db, plan)
}
