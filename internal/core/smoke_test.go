package core

import (
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/vector"
)

func smokeDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	tab := colstore.NewTable("t")
	if err := tab.AddColumn("a", vector.Int64, []int64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("b", vector.Float64, []float64{1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("c", []string{"x", "y", "x", "y", "x", "y", "x", "y"}); err != nil {
		t.Fatal(err)
	}
	db.AddTable(tab)
	return db
}

func TestSmokeScanSelectProjectAggr(t *testing.T) {
	db := smokeDB(t)
	plan := algebra.NewAggr(
		algebra.NewProject(
			algebra.NewSelect(
				algebra.NewScan("t", "a", "b", "c"),
				expr.GTE(expr.C("a"), expr.Int(2)),
			),
			algebra.NE("c", expr.C("c")),
			algebra.NE("double_b", expr.MulE(expr.C("b"), expr.Float(2))),
		),
		[]algebra.NamedExpr{algebra.NE("c", expr.C("c"))},
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("double_b")),
			algebra.Count("n"),
		},
	)
	res, err := Run(db, plan, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("got %d rows, want 2: %v", res.NumRows(), res.Rows())
	}
	// Rows a>2: a=3..8. Group x: b=3.5,5.5,7.5 doubled sum=33; y: 4.5,6.5,8.5 -> 39.
	got := map[string]float64{}
	cnt := map[string]int64{}
	for _, row := range res.Rows() {
		got[row[0].(string)] = row[1].(float64)
		cnt[row[0].(string)] = row[2].(int64)
	}
	if got["x"] != 33 || got["y"] != 39 {
		t.Fatalf("sums: %v", got)
	}
	if cnt["x"] != 3 || cnt["y"] != 3 {
		t.Fatalf("counts: %v", cnt)
	}
}

func TestSmokeJoinOrder(t *testing.T) {
	db := smokeDB(t)
	dim := colstore.NewTable("d")
	if err := dim.AddColumn("k", vector.Int64, []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := dim.AddColumn("name", vector.String, []string{"one", "two", "three", "four"}); err != nil {
		t.Fatal(err)
	}
	db.AddTable(dim)
	plan := algebra.NewOrder(
		algebra.NewJoin(
			algebra.NewScan("t", "a", "b"),
			algebra.NewScan("d", "k", "name"),
			algebra.EquiCond{L: "a", R: "k"},
		),
		algebra.Desc(expr.C("a")),
	)
	res, err := Run(db, plan, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("got %d rows, want 4: %v", res.NumRows(), res.Rows())
	}
	first := res.Row(0)
	if first[0].(int64) != 4 || first[3].(string) != "four" {
		t.Fatalf("first row: %v", first)
	}
}
