package core

import (
	"fmt"
	"math"
	"time"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// aggrOp implements the three physical aggregation flavors of Section
// 4.1.2: hash aggregation (general case), direct aggregation (small
// bit-domain keys indexed straight into accumulator arrays, as in the
// hard-coded Query 1 UDF), and ordered aggregation (group members arrive
// consecutively). With no group-by expressions it degrades to scalar
// aggregation over a single group.
type aggrOp struct {
	input Operator
	node  *algebra.Aggr
	opts  ExecOptions

	schema     vector.Schema
	groupProgs []*expr.Prog
	groupPass  []int
	aggProgs   []*expr.Prog
	mode       algebra.AggMode

	// group key storage (hash/ordered mode).
	groups []*colBuilder
	// hash table: buckets hold group id + 1 (0 = empty).
	buckets []int32
	mask    uint64
	hashBuf []uint64
	gidBuf  []int32
	// accumulators, one per aggregate, plus a hidden row counter used by
	// avg finalization and direct-mode occupancy.
	accs     []*accumulator
	rowCount []int64

	// direct mode.
	directCols  [2]int // group column indices in the input schema
	directWidth int    // domain size
	occupied    []int32

	done    bool
	emitPos int
	nGroups int
}

type accumulator struct {
	fn      algebra.AggFn
	argTyp  vector.Type
	outTyp  vector.Type
	f64     []float64
	i64     []int64
	i32     []int32
	str     []string
	seen    []bool
	hasSeen bool
}

func newAccumulator(fn algebra.AggFn, argTyp, outTyp vector.Type) *accumulator {
	a := &accumulator{fn: fn, argTyp: argTyp, outTyp: outTyp}
	a.hasSeen = fn == algebra.AggMin || fn == algebra.AggMax
	return a
}

// growTo zero-extends s to length n in one allocation (direct aggregation
// opens with the full 256/65536-slot domain, so element-wise growth would
// cost more than the aggregation itself on small inputs).
func growTo[T any](s []T, n int) []T {
	if len(s) >= n {
		return s
	}
	return append(s, make([]T, n-len(s))...)
}

// growFill extends s to length n, setting new cells to fill. Min/max
// accumulators grow with the fold identity (+Inf/MaxInt for min,
// -Inf/MinInt for max) so the branchless kernels can fold unconditionally
// without consulting seen flags.
func growFill[T any](s []T, n int, fill T) []T {
	if len(s) >= n {
		return s
	}
	old := len(s)
	s = append(s, make([]T, n-len(s))...)
	for i := old; i < len(s); i++ {
		s[i] = fill
	}
	return s
}

func (a *accumulator) grow(n int) {
	switch a.fn {
	case algebra.AggCount:
		a.i64 = growTo(a.i64, n)
		return
	case algebra.AggAvg:
		a.f64 = growTo(a.f64, n)
		return
	case algebra.AggSum:
		if a.outTyp == vector.Float64 {
			a.f64 = growTo(a.f64, n)
		} else {
			a.i64 = growTo(a.i64, n)
		}
		return
	default: // min/max
		isMin := a.fn == algebra.AggMin
		switch a.outTyp.Physical() {
		case vector.Float64:
			if isMin {
				a.f64 = growFill(a.f64, n, math.Inf(1))
			} else {
				a.f64 = growFill(a.f64, n, math.Inf(-1))
			}
		case vector.Int64:
			if isMin {
				a.i64 = growFill(a.i64, n, math.MaxInt64)
			} else {
				a.i64 = growFill(a.i64, n, math.MinInt64)
			}
		case vector.Int32:
			if isMin {
				a.i32 = growFill(a.i32, n, math.MaxInt32)
			} else {
				a.i32 = growFill(a.i32, n, math.MinInt32)
			}
		case vector.String:
			a.str = growTo(a.str, n)
		}
		a.seen = growTo(a.seen, n)
	}
}

// update folds one batch into the accumulator. v is nil for count(*).
func (a *accumulator) update(v *vector.Vector, gids []int32, sel []int32, n int) {
	switch a.fn {
	case algebra.AggCount:
		primitives.AggrCount(a.i64, gids, sel, n)
	case algebra.AggSum, algebra.AggAvg:
		dstF := a.f64
		if a.fn == algebra.AggSum && a.outTyp != vector.Float64 {
			switch a.argTyp.Physical() {
			case vector.Int32:
				primitives.AggrSum(a.i64, v.Int32s(), gids, sel)
			case vector.Int64:
				primitives.AggrSum(a.i64, v.Int64s(), gids, sel)
			case vector.UInt8:
				primitives.AggrSum(a.i64, v.UInt8s(), gids, sel)
			case vector.UInt16:
				primitives.AggrSum(a.i64, v.UInt16s(), gids, sel)
			}
			return
		}
		switch a.argTyp.Physical() {
		case vector.Float64:
			primitives.AggrSum(dstF, v.Float64s(), gids, sel)
		case vector.Int32:
			primitives.AggrSum(dstF, v.Int32s(), gids, sel)
		case vector.Int64:
			primitives.AggrSum(dstF, v.Int64s(), gids, sel)
		case vector.UInt8:
			primitives.AggrSum(dstF, v.UInt8s(), gids, sel)
		case vector.UInt16:
			primitives.AggrSum(dstF, v.UInt16s(), gids, sel)
		}
	case algebra.AggMin:
		// Numeric accumulators are sentinel-initialized (+Inf/MaxInt) by
		// grow(), so the branch-free kernels fold unconditionally.
		switch a.outTyp.Physical() {
		case vector.Float64:
			primitives.AggrMinBranchlessF64(a.f64, a.seen, v.Float64s(), gids, sel)
		case vector.Int64:
			primitives.AggrMinBranchlessI64(a.i64, a.seen, v.Int64s(), gids, sel)
		case vector.Int32:
			primitives.AggrMinBranchlessI32(a.i32, a.seen, v.Int32s(), gids, sel)
		case vector.String:
			primitives.AggrMin(a.str, a.seen, v.Strings(), gids, sel)
		}
	case algebra.AggMax:
		switch a.outTyp.Physical() {
		case vector.Float64:
			primitives.AggrMaxBranchlessF64(a.f64, a.seen, v.Float64s(), gids, sel)
		case vector.Int64:
			primitives.AggrMaxBranchlessI64(a.i64, a.seen, v.Int64s(), gids, sel)
		case vector.Int32:
			primitives.AggrMaxBranchlessI32(a.i32, a.seen, v.Int32s(), gids, sel)
		case vector.String:
			primitives.AggrMax(a.str, a.seen, v.Strings(), gids, sel)
		}
	}
}

// updateFusedCount folds one batch into the accumulator AND the hidden
// per-group row counter in a single fused pass (aggr_sumcount kernels),
// saving one full sweep over the groups vector. Returns false when the
// accumulator is not a sum/avg over a fusible width, in which case the
// caller must count rows separately.
func (a *accumulator) updateFusedCount(v *vector.Vector, cnt []int64, gids []int32, sel []int32) bool {
	if v == nil {
		return false
	}
	switch a.fn {
	case algebra.AggSum:
		if a.outTyp != vector.Float64 {
			switch a.argTyp.Physical() {
			case vector.Int32:
				primitives.AggrSumCountI64FromI32(a.i64, cnt, v.Int32s(), gids, sel)
			case vector.Int64:
				primitives.AggrSumCountI64FromI64(a.i64, cnt, v.Int64s(), gids, sel)
			case vector.UInt8:
				primitives.AggrSumCountI64FromU8(a.i64, cnt, v.UInt8s(), gids, sel)
			case vector.UInt16:
				primitives.AggrSumCountI64FromU16(a.i64, cnt, v.UInt16s(), gids, sel)
			default:
				return false
			}
			return true
		}
		fallthrough
	case algebra.AggAvg:
		switch a.argTyp.Physical() {
		case vector.Float64:
			primitives.AggrSumCountF64FromF64(a.f64, cnt, v.Float64s(), gids, sel)
		case vector.Int32:
			primitives.AggrSumCountF64FromI32(a.f64, cnt, v.Int32s(), gids, sel)
		case vector.Int64:
			primitives.AggrSumCountF64FromI64(a.f64, cnt, v.Int64s(), gids, sel)
		case vector.UInt8:
			primitives.AggrSumCountF64FromU8(a.f64, cnt, v.UInt8s(), gids, sel)
		case vector.UInt16:
			primitives.AggrSumCountF64FromU16(a.f64, cnt, v.UInt16s(), gids, sel)
		default:
			return false
		}
		return true
	}
	return false
}

// output materializes accumulator values for the group ids in idx.
func (a *accumulator) output(idx []int32, rowCount []int64) *vector.Vector {
	switch a.fn {
	case algebra.AggAvg:
		out := make([]float64, len(idx))
		for j, g := range idx {
			if rowCount[g] > 0 {
				out[j] = a.f64[g] / float64(rowCount[g])
			}
		}
		return vector.FromFloat64s(out)
	case algebra.AggCount:
		out := make([]int64, len(idx))
		for j, g := range idx {
			out[j] = a.i64[g]
		}
		return vector.FromInt64s(out)
	default:
		// Min/max accumulators hold the fold-identity sentinel for groups
		// that never saw a value (possible only for the pre-existing group
		// of a scalar aggregation over empty input); emit the zero value
		// there, matching the pre-sentinel behavior.
		switch a.outTyp.Physical() {
		case vector.Float64:
			out := make([]float64, len(idx))
			for j, g := range idx {
				if !a.hasSeen || a.seen[g] {
					out[j] = a.f64[g]
				}
			}
			return vector.FromFloat64s(out)
		case vector.Int64:
			out := make([]int64, len(idx))
			for j, g := range idx {
				if !a.hasSeen || a.seen[g] {
					out[j] = a.i64[g]
				}
			}
			return vector.FromInt64s(out)
		case vector.Int32:
			out := make([]int32, len(idx))
			for j, g := range idx {
				if !a.hasSeen || a.seen[g] {
					out[j] = a.i32[g]
				}
			}
			v := vector.FromInt32s(out)
			v.Typ = a.outTyp
			return v
		default:
			out := make([]string, len(idx))
			for j, g := range idx {
				out[j] = a.str[g]
			}
			return vector.FromStrings(out)
		}
	}
}

func aggResultType(a algebra.AggExpr, in vector.Schema) (argT, outT vector.Type, err error) {
	if a.Arg != nil {
		argT, err = a.Arg.Type(in)
		if err != nil {
			return
		}
	}
	switch a.Fn {
	case algebra.AggCount:
		outT = vector.Int64
	case algebra.AggAvg:
		outT = vector.Float64
	case algebra.AggSum:
		if argT.Physical() == vector.Float64 {
			outT = vector.Float64
		} else {
			outT = vector.Int64
		}
	default:
		outT = argT
	}
	return
}

func newAggrOp(input Operator, node *algebra.Aggr, opts ExecOptions) (*aggrOp, error) {
	in := input.Schema()
	op := &aggrOp{input: input, node: node, opts: opts, mode: node.Mode}
	for _, g := range node.GroupBy {
		t, err := g.E.Type(in)
		if err != nil {
			return nil, err
		}
		op.schema = append(op.schema, vector.Field{Name: g.Alias, Type: t})
		if c, ok := g.E.(*expr.Col); ok {
			op.groupPass = append(op.groupPass, in.ColIndex(c.Name))
			op.groupProgs = append(op.groupProgs, nil)
		} else {
			prog, err := expr.Compile(g.E, in, opts.exprOptions())
			if err != nil {
				return nil, err
			}
			op.groupPass = append(op.groupPass, -1)
			op.groupProgs = append(op.groupProgs, prog)
		}
	}
	for _, a := range node.Aggs {
		argT, outT, err := aggResultType(a, in)
		if err != nil {
			return nil, err
		}
		op.schema = append(op.schema, vector.Field{Name: a.Alias, Type: outT})
		if a.Arg != nil {
			prog, err := expr.Compile(a.Arg, in, opts.exprOptions())
			if err != nil {
				return nil, err
			}
			op.aggProgs = append(op.aggProgs, prog)
		} else {
			op.aggProgs = append(op.aggProgs, nil)
		}
		op.accs = append(op.accs, newAccumulator(a.Fn, argT, outT))
	}
	if op.mode == algebra.ModeAuto {
		op.mode = op.pickMode(in)
		// Ordered aggregation is chosen when group members are known to
		// arrive consecutively (paper Section 4.1.2): the input is sorted
		// with the group-by expressions as a prefix of its sort keys.
		if op.mode == algebra.ModeHash && len(node.GroupBy) > 0 && inputSortedByGroups(node) {
			op.mode = algebra.ModeOrdered
		}
	}
	if op.mode == algebra.ModeDirect {
		if err := op.prepareDirect(in); err != nil {
			return nil, err
		}
	}
	return op, nil
}

// inputSortedByGroups reports whether the aggregation input is an Order
// whose leading sort keys cover all group-by expressions (any direction:
// equal keys are adjacent either way).
func inputSortedByGroups(node *algebra.Aggr) bool {
	ord, ok := node.Input.(*algebra.Order)
	if !ok || len(ord.Keys) < len(node.GroupBy) {
		return false
	}
	for i, g := range node.GroupBy {
		if ord.Keys[i].E.String() != g.E.String() {
			return false
		}
	}
	return true
}

// pickMode chooses direct aggregation when all group-bys are small-domain
// code columns (at most two uint8 columns), else hash aggregation.
func (op *aggrOp) pickMode(in vector.Schema) algebra.AggMode {
	if len(op.node.GroupBy) == 0 {
		return algebra.ModeHash // scalar path shares the hash machinery
	}
	if len(op.node.GroupBy) <= 2 {
		ok := true
		for i := range op.node.GroupBy {
			pi := op.groupPass[i]
			if pi < 0 || in[pi].Type.Physical() != vector.UInt8 {
				ok = false
				break
			}
		}
		if ok {
			return algebra.ModeDirect
		}
	}
	return algebra.ModeHash
}

func (op *aggrOp) prepareDirect(in vector.Schema) error {
	n := len(op.node.GroupBy)
	if n == 0 || n > 2 {
		return fmt.Errorf("core: direct aggregation needs 1 or 2 group columns, got %d", n)
	}
	for i := 0; i < n; i++ {
		pi := op.groupPass[i]
		if pi < 0 || in[pi].Type.Physical() != vector.UInt8 {
			return fmt.Errorf("core: direct aggregation group %q must be a uint8 code column", op.node.GroupBy[i].Alias)
		}
		op.directCols[i] = pi
	}
	op.directWidth = 256
	if n == 2 {
		op.directWidth = 65536
	}
	return nil
}

func (op *aggrOp) Schema() vector.Schema { return op.schema }

func (op *aggrOp) Open() error {
	if err := op.input.Open(); err != nil {
		return err
	}
	op.done = false
	op.emitPos = 0
	op.nGroups = 0
	op.occupied = nil
	op.groups = nil
	op.rowCount = nil
	op.buckets = nil
	for _, a := range op.accs {
		*a = *newAccumulator(a.fn, a.argTyp, a.outTyp)
	}
	op.hashBuf = nil
	op.gidBuf = nil
	switch op.mode {
	case algebra.ModeDirect:
		// Open with one single-code plane (256 slots) and grow lazily from
		// the codes actually seen: the nominal two-column domain is 64K
		// slots, but real enum domains are tiny (Q1 groups 3x2), and eagerly
		// zeroing 64K slots per accumulator per worker dominated the profile
		// under concurrent serving.
		op.growGroups(min(op.directWidth, 256))
	default:
		for i := range op.node.GroupBy {
			t := op.schema[i].Type
			op.groups = append(op.groups, newColBuilder(t))
		}
		op.buckets = make([]int32, 1024)
		op.mask = 1023
		if len(op.node.GroupBy) == 0 {
			// Scalar aggregation: one pre-existing group.
			op.nGroups = 1
			op.growGroups(1)
		}
	}
	return nil
}

func (op *aggrOp) growGroups(n int) {
	// Charge accumulator growth against the query's memory budget: one
	// 8-byte-ish cell per accumulator (plus the row count) per new group.
	if grown := n - len(op.rowCount); grown > 0 {
		op.opts.life.reserve(batchBytes(len(op.accs)+1, grown))
	}
	for _, a := range op.accs {
		a.grow(n)
	}
	op.rowCount = growTo(op.rowCount, n)
}

func (op *aggrOp) Close() error { return op.input.Close() }

func (op *aggrOp) Next() (*vector.Batch, error) {
	if !op.done {
		if err := op.consume(); err != nil {
			return nil, err
		}
		op.done = true
	}
	return op.emit()
}

func (op *aggrOp) consume() error {
	for {
		// Batch boundary: cancellation/deadline/budget check for serial
		// aggregation and every partial-aggregation worker alike.
		if err := op.opts.life.check(); err != nil {
			return err
		}
		b, err := op.input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		t0 := time.Now()
		if b.N > len(op.gidBuf) {
			op.hashBuf = make([]uint64, b.N)
			op.gidBuf = make([]int32, b.N)
		}
		// 1. compute group ids for all live rows.
		switch op.mode {
		case algebra.ModeDirect:
			op.assignDirect(b)
		case algebra.ModeOrdered:
			if err := op.assignOrdered(b); err != nil {
				return err
			}
		default:
			if len(op.node.GroupBy) == 0 {
				zeroGids(op.gidBuf[:b.N], b.Sel)
			} else if err := op.assignHash(b); err != nil {
				return err
			}
		}
		// 2. update accumulators with vectorized aggr primitives. The first
		// sum/avg accumulator fuses the hidden row-count sweep into its own
		// pass (aggr_sumcount kernel); remaining accumulators and the
		// no-fusible-sum case fall back to a separate count pass.
		gids := op.gidBuf[:b.N]
		rowCounted := false
		for i, a := range op.accs {
			var v *vector.Vector
			if prog := op.aggProgs[i]; prog != nil {
				v = prog.Run(b)
			}
			name := fmt.Sprintf("aggr_%s_%s_col_uidx_col", aggName(a.fn), typeAbbrevCore(a.argTyp))
			if a.fn == algebra.AggCount {
				name = "aggr_count_uidx_col"
			}
			tr := op.opts.Tracer.Now()
			if !rowCounted && a.updateFusedCount(v, op.rowCount, gids, b.Sel) {
				rowCounted = true
				name = fmt.Sprintf("aggr_sumcount_%s_col_uidx_col", typeAbbrevCore(a.argTyp))
			} else {
				a.update(v, gids, b.Sel, b.N)
			}
			op.opts.Tracer.RecordPrimitiveSince(name, tr, b.Rows(), (a.argTyp.Width()+8)*b.Rows())
		}
		if !rowCounted {
			primitives.AggrCount(op.rowCount, gids, b.Sel, b.N)
		}
		op.opts.Tracer.RecordOperator(fmt.Sprintf("Aggr(%s)", op.mode), b.Rows(), time.Since(t0))
	}
}

func zeroGids(gids []int32, sel []int32) {
	if sel != nil {
		for _, i := range sel {
			gids[i] = 0
		}
		return
	}
	for i := range gids {
		gids[i] = 0
	}
}

// assignDirect computes group ids straight from enum code columns
// (map_directgrp in Table 5).
func (op *aggrOp) assignDirect(b *vector.Batch) {
	gids := op.gidBuf[:b.N]
	var c2 []uint8
	c1 := b.Vecs[op.directCols[0]].UInt8s()
	if len(op.node.GroupBy) == 2 {
		c2 = b.Vecs[op.directCols[1]].UInt8s()
	}
	t0 := op.opts.Tracer.Now()
	primitives.DirectGroupU8(gids, c1, c2, b.Sel)
	op.opts.Tracer.RecordPrimitiveSince("map_directgrp_uidx_col_uchr_col", t0, b.Rows(), 6*b.Rows())
	if c2 != nil {
		// The two-column group id is c1 | c2<<8; grow the accumulators to
		// the highest id actually present instead of the full 64K domain.
		maxGid := int32(-1)
		if b.Sel != nil {
			for _, i := range b.Sel {
				if gids[i] > maxGid {
					maxGid = gids[i]
				}
			}
		} else {
			for _, g := range gids {
				if g > maxGid {
					maxGid = g
				}
			}
		}
		if need := int(maxGid) + 1; need > len(op.rowCount) {
			op.growGroups(need)
		}
	}
}

// groupKeyVectors evaluates the group-by expressions for a batch.
func (op *aggrOp) groupKeyVectors(b *vector.Batch) []*vector.Vector {
	keys := make([]*vector.Vector, len(op.node.GroupBy))
	for i := range op.node.GroupBy {
		if pi := op.groupPass[i]; pi >= 0 {
			keys[i] = b.Vecs[pi]
		} else {
			keys[i] = op.groupProgs[i].Run(b)
		}
	}
	return keys
}

// assignHash hashes group keys vector-at-a-time (map_hash_* primitives),
// then probes/extends the group hash table.
func (op *aggrOp) assignHash(b *vector.Batch) error {
	keys := op.groupKeyVectors(b)
	hashes := op.hashBuf[:b.N]
	t0 := op.opts.Tracer.Now()
	for i, k := range keys {
		if err := hashVector(hashes, k, b.Sel, i == 0); err != nil {
			return err
		}
	}
	op.opts.Tracer.RecordPrimitiveSince("map_hash_col", t0, b.Rows(), 8*b.Rows())

	gids := op.gidBuf[:b.N]
	t1 := op.opts.Tracer.Now()
	if b.Sel != nil {
		for _, i := range b.Sel {
			gids[i] = op.findOrAddGroup(keys, int(i), hashes[i])
		}
	} else {
		for i := 0; i < b.N; i++ {
			gids[i] = op.findOrAddGroup(keys, i, hashes[i])
		}
	}
	op.opts.Tracer.RecordPrimitiveSince("aggr_hashprobe_uidx_col", t1, b.Rows(), 12*b.Rows())
	return nil
}

// findOrAddGroup probes the group hash table for the key at the given row
// of the key vectors (hash h), inserting a new group on miss. Shared by the
// per-batch hash-assignment path and the parallel partial-result merge.
func (op *aggrOp) findOrAddGroup(keys []*vector.Vector, row int, h uint64) int32 {
	slot := h & op.mask
	for {
		g := op.buckets[slot] - 1
		if g < 0 {
			// New group: store keys.
			for c, k := range keys {
				op.groups[c].appendAt(k, row)
			}
			g = int32(op.nGroups)
			op.nGroups++
			op.buckets[slot] = g + 1
			op.growGroups(op.nGroups)
			op.maybeGrowTable()
			return g
		}
		if op.groupEquals(int(g), keys, row) {
			return g
		}
		slot = (slot + 1) & op.mask
	}
}

func (op *aggrOp) groupEquals(g int, keys []*vector.Vector, row int) bool {
	for c, k := range keys {
		if !op.groups[c].equalAt(g, k, row) {
			return false
		}
	}
	return true
}

func (op *aggrOp) maybeGrowTable() {
	if op.nGroups*10 < len(op.buckets)*7 {
		return
	}
	newLen := len(op.buckets) * 2
	op.buckets = make([]int32, newLen)
	op.mask = uint64(newLen - 1)
	for g := 0; g < op.nGroups; g++ {
		var h uint64
		for _, cb := range op.groups {
			h = cb.hashAt(g, h)
		}
		slot := h & op.mask
		for op.buckets[slot] != 0 {
			slot = (slot + 1) & op.mask
		}
		op.buckets[slot] = int32(g) + 1
	}
}

// assignOrdered assigns group ids assuming group members arrive
// consecutively: a new group starts whenever the key differs from the
// previous live row's key.
func (op *aggrOp) assignOrdered(b *vector.Batch) error {
	keys := op.groupKeyVectors(b)
	gids := op.gidBuf[:b.N]
	process := func(i int32) {
		isNew := op.nGroups == 0
		if !isNew {
			last := op.nGroups - 1
			for c, k := range keys {
				if !op.groups[c].equalAt(last, k, int(i)) {
					isNew = true
					break
				}
			}
		}
		if isNew {
			for c, k := range keys {
				op.groups[c].appendAt(k, int(i))
			}
			op.nGroups++
			op.growGroups(op.nGroups)
		}
		gids[i] = int32(op.nGroups - 1)
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			process(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			process(int32(i))
		}
	}
	return nil
}

// emit produces output batches from the accumulated groups.
func (op *aggrOp) emit() (*vector.Batch, error) {
	if op.mode == algebra.ModeDirect && op.occupied == nil {
		op.occupied = make([]int32, 0, 64)
		for g := 0; g < op.directWidth && g < len(op.rowCount); g++ {
			if op.rowCount[g] > 0 {
				op.occupied = append(op.occupied, int32(g))
			}
		}
	}
	total := op.nGroups
	if op.mode == algebra.ModeDirect {
		total = len(op.occupied)
	}
	if op.emitPos >= total {
		return nil, nil
	}
	k := min(op.opts.batchSize(), total-op.emitPos)
	lo, hi := op.emitPos, op.emitPos+k
	op.emitPos = hi

	idx := make([]int32, k)
	if op.mode == algebra.ModeDirect {
		copy(idx, op.occupied[lo:hi])
	} else {
		for j := range idx {
			idx[j] = int32(lo + j)
		}
	}
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	ng := len(op.node.GroupBy)
	for c := 0; c < ng; c++ {
		if op.mode == algebra.ModeDirect {
			// Decode group key codes from the direct slot index.
			codes := make([]uint8, k)
			if ng == 2 && c == 0 {
				for j, g := range idx {
					codes[j] = uint8(g >> 8)
				}
			} else {
				for j, g := range idx {
					codes[j] = uint8(g & 0xff)
				}
			}
			v := vector.FromUint8s(codes)
			v.Typ = op.schema[c].Type
			out.Vecs[c] = v
		} else {
			out.Vecs[c] = op.groups[c].gather(idx)
		}
	}
	for i, a := range op.accs {
		v := a.output(idx, op.rowCount)
		v.Typ = op.schema[ng+i].Type
		out.Vecs[ng+i] = v
	}
	return out, nil
}

// mergeFrom folds the partial aggregation state of src — a worker's
// aggregation over one partition of the input — into op. The group sets are
// unioned and the accumulators combine order-insensitively: sums and counts
// add, min/max compare (respecting seen flags), and avg adds its sums and
// row counts before finalization, so the merged result equals a serial
// aggregation up to floating-point summation order. op and src must be
// built from the same Aggr node and run in the same mode.
func (op *aggrOp) mergeFrom(src *aggrOp) {
	switch op.mode {
	case algebra.ModeDirect:
		// Group id is the code slot itself: merge slot-wise.
		op.growGroups(len(src.rowCount))
		for g, rc := range src.rowCount {
			if rc == 0 {
				continue
			}
			op.rowCount[g] += rc
			for i, a := range op.accs {
				a.merge(src.accs[i], g, g)
			}
		}
	default:
		if len(op.node.GroupBy) == 0 {
			// Scalar aggregation: the single pre-existing group 0.
			op.rowCount[0] += src.rowCount[0]
			for i, a := range op.accs {
				a.merge(src.accs[i], 0, 0)
			}
			return
		}
		keys := make([]*vector.Vector, len(src.groups))
		for c, cb := range src.groups {
			keys[c] = cb.vec()
		}
		for g := 0; g < src.nGroups; g++ {
			var h uint64
			for _, cb := range src.groups {
				h = cb.hashAt(g, h)
			}
			dg := int(op.findOrAddGroup(keys, g, h))
			op.rowCount[dg] += src.rowCount[g]
			for i, a := range op.accs {
				a.merge(src.accs[i], g, dg)
			}
		}
	}
}

// merge combines the partial accumulator state of src group sg into group
// dg of a.
func (a *accumulator) merge(src *accumulator, sg, dg int) {
	switch a.fn {
	case algebra.AggCount:
		a.i64[dg] += src.i64[sg]
	case algebra.AggAvg:
		a.f64[dg] += src.f64[sg]
	case algebra.AggSum:
		if a.outTyp == vector.Float64 {
			a.f64[dg] += src.f64[sg]
		} else {
			a.i64[dg] += src.i64[sg]
		}
	default: // min/max
		if !src.seen[sg] {
			return
		}
		first := !a.seen[dg]
		a.seen[dg] = true
		takeMin := a.fn == algebra.AggMin
		switch a.outTyp.Physical() {
		case vector.Float64:
			a.f64[dg] = mergeMinMax(takeMin, first, a.f64[dg], src.f64[sg])
		case vector.Int64:
			a.i64[dg] = mergeMinMax(takeMin, first, a.i64[dg], src.i64[sg])
		case vector.Int32:
			a.i32[dg] = mergeMinMax(takeMin, first, a.i32[dg], src.i32[sg])
		case vector.String:
			a.str[dg] = mergeMinMax(takeMin, first, a.str[dg], src.str[sg])
		}
	}
}

func mergeMinMax[T primitives.Ordered](takeMin, first bool, dst, src T) T {
	if first || (takeMin && src < dst) || (!takeMin && src > dst) {
		return src
	}
	return dst
}

// hashVector hashes one key vector into hashes (first column initializes,
// the rest combine).
func hashVector(hashes []uint64, v *vector.Vector, sel []int32, first bool) error {
	switch v.Typ.Physical() {
	case vector.Int32:
		if first {
			primitives.HashInt(hashes, v.Int32s(), sel)
		} else {
			primitives.HashCombineInt(hashes, v.Int32s(), sel)
		}
	case vector.Int64:
		if first {
			primitives.HashInt(hashes, v.Int64s(), sel)
		} else {
			primitives.HashCombineInt(hashes, v.Int64s(), sel)
		}
	case vector.UInt8:
		if first {
			primitives.HashInt(hashes, v.UInt8s(), sel)
		} else {
			primitives.HashCombineInt(hashes, v.UInt8s(), sel)
		}
	case vector.UInt16:
		if first {
			primitives.HashInt(hashes, v.UInt16s(), sel)
		} else {
			primitives.HashCombineInt(hashes, v.UInt16s(), sel)
		}
	case vector.Float64:
		if first {
			primitives.HashFloat64(hashes, v.Float64s(), sel)
		} else {
			primitives.HashCombineFloat64(hashes, v.Float64s(), sel)
		}
	case vector.String:
		if first {
			primitives.HashString(hashes, v.Strings(), sel)
		} else {
			primitives.HashCombineString(hashes, v.Strings(), sel)
		}
	case vector.Bool:
		if first {
			primitives.HashBool(hashes, v.Bools(), sel)
		} else {
			primitives.HashCombineBool(hashes, v.Bools(), sel)
		}
	default:
		return fmt.Errorf("core: cannot hash %v", v.Typ)
	}
	return nil
}

func aggName(fn algebra.AggFn) string {
	switch fn {
	case algebra.AggSum:
		return "sum"
	case algebra.AggCount:
		return "count"
	case algebra.AggMin:
		return "min"
	case algebra.AggMax:
		return "max"
	default:
		return "avg"
	}
}

func typeAbbrevCore(t vector.Type) string {
	switch t.Physical() {
	case vector.Float64:
		return "flt"
	case vector.Int64:
		return "lng"
	case vector.Int32:
		return "sint"
	case vector.UInt8:
		return "uchr"
	case vector.UInt16:
		return "usht"
	case vector.String:
		return "str"
	default:
		return t.String()
	}
}
