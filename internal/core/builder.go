package core

import (
	"fmt"

	"x100/internal/vector"
)

// colBuilder accumulates values of one column across batches: the
// materialization buffer used by hash-join build sides, aggregation group
// keys, and the Order operator.
type colBuilder struct {
	typ  vector.Type
	b    []bool
	u8   []uint8
	u16  []uint16
	i32  []int32
	i64  []int64
	f64  []float64
	strs []string
}

func newColBuilder(t vector.Type) *colBuilder { return &colBuilder{typ: t} }

// appendVec appends the live values of v (restricted by sel) in order.
func (cb *colBuilder) appendVec(v *vector.Vector, sel []int32, n int) {
	switch cb.typ.Physical() {
	case vector.Bool:
		d := v.Bools()
		if sel == nil {
			cb.b = append(cb.b, d[:n]...)
		} else {
			for _, i := range sel {
				cb.b = append(cb.b, d[i])
			}
		}
	case vector.UInt8:
		d := v.UInt8s()
		if sel == nil {
			cb.u8 = append(cb.u8, d[:n]...)
		} else {
			for _, i := range sel {
				cb.u8 = append(cb.u8, d[i])
			}
		}
	case vector.UInt16:
		d := v.UInt16s()
		if sel == nil {
			cb.u16 = append(cb.u16, d[:n]...)
		} else {
			for _, i := range sel {
				cb.u16 = append(cb.u16, d[i])
			}
		}
	case vector.Int32:
		d := v.Int32s()
		if sel == nil {
			cb.i32 = append(cb.i32, d[:n]...)
		} else {
			for _, i := range sel {
				cb.i32 = append(cb.i32, d[i])
			}
		}
	case vector.Int64:
		d := v.Int64s()
		if sel == nil {
			cb.i64 = append(cb.i64, d[:n]...)
		} else {
			for _, i := range sel {
				cb.i64 = append(cb.i64, d[i])
			}
		}
	case vector.Float64:
		d := v.Float64s()
		if sel == nil {
			cb.f64 = append(cb.f64, d[:n]...)
		} else {
			for _, i := range sel {
				cb.f64 = append(cb.f64, d[i])
			}
		}
	case vector.String:
		d := v.Strings()
		if sel == nil {
			cb.strs = append(cb.strs, d[:n]...)
		} else {
			for _, i := range sel {
				cb.strs = append(cb.strs, d[i])
			}
		}
	default:
		panic(fmt.Sprintf("core: colBuilder of %v", cb.typ))
	}
}

// appendAt appends the value at physical position i of v.
func (cb *colBuilder) appendAt(v *vector.Vector, i int) {
	switch cb.typ.Physical() {
	case vector.Bool:
		cb.b = append(cb.b, v.Bools()[i])
	case vector.UInt8:
		cb.u8 = append(cb.u8, v.UInt8s()[i])
	case vector.UInt16:
		cb.u16 = append(cb.u16, v.UInt16s()[i])
	case vector.Int32:
		cb.i32 = append(cb.i32, v.Int32s()[i])
	case vector.Int64:
		cb.i64 = append(cb.i64, v.Int64s()[i])
	case vector.Float64:
		cb.f64 = append(cb.f64, v.Float64s()[i])
	case vector.String:
		cb.strs = append(cb.strs, v.Strings()[i])
	}
}

// appendValue appends one boxed value (tuple-at-a-time paths).
func (cb *colBuilder) appendValue(v any) {
	switch cb.typ.Physical() {
	case vector.Bool:
		cb.b = append(cb.b, v.(bool))
	case vector.UInt8:
		cb.u8 = append(cb.u8, v.(uint8))
	case vector.UInt16:
		cb.u16 = append(cb.u16, v.(uint16))
	case vector.Int32:
		cb.i32 = append(cb.i32, v.(int32))
	case vector.Int64:
		cb.i64 = append(cb.i64, v.(int64))
	case vector.Float64:
		cb.f64 = append(cb.f64, v.(float64))
	case vector.String:
		cb.strs = append(cb.strs, v.(string))
	}
}

// appendBuilder appends all rows accumulated in src (same type) — the
// concatenation step when per-worker partition builders merge into one.
func (cb *colBuilder) appendBuilder(src *colBuilder) {
	cb.b = append(cb.b, src.b...)
	cb.u8 = append(cb.u8, src.u8...)
	cb.u16 = append(cb.u16, src.u16...)
	cb.i32 = append(cb.i32, src.i32...)
	cb.i64 = append(cb.i64, src.i64...)
	cb.f64 = append(cb.f64, src.f64...)
	cb.strs = append(cb.strs, src.strs...)
}

// len returns the number of accumulated values.
func (cb *colBuilder) len() int {
	switch cb.typ.Physical() {
	case vector.Bool:
		return len(cb.b)
	case vector.UInt8:
		return len(cb.u8)
	case vector.UInt16:
		return len(cb.u16)
	case vector.Int32:
		return len(cb.i32)
	case vector.Int64:
		return len(cb.i64)
	case vector.Float64:
		return len(cb.f64)
	default:
		return len(cb.strs)
	}
}

// vec wraps the accumulated values as a full-length vector (zero copy).
func (cb *colBuilder) vec() *vector.Vector {
	var v *vector.Vector
	switch cb.typ.Physical() {
	case vector.Bool:
		v = vector.FromBools(cb.b)
	case vector.UInt8:
		v = vector.FromUint8s(cb.u8)
	case vector.UInt16:
		v = vector.FromUint16s(cb.u16)
	case vector.Int32:
		v = vector.FromInt32s(cb.i32)
	case vector.Int64:
		v = vector.FromInt64s(cb.i64)
	case vector.Float64:
		v = vector.FromFloat64s(cb.f64)
	default:
		v = vector.FromStrings(cb.strs)
	}
	v.Typ = cb.typ
	return v
}

// slice returns rows [lo:hi) as a vector view.
func (cb *colBuilder) slice(lo, hi int) *vector.Vector {
	return cb.vec().Slice(lo, hi)
}

// gather builds a new vector of the rows at the given indices.
func (cb *colBuilder) gather(idx []int32) *vector.Vector {
	out := vector.New(cb.typ, len(idx))
	out.Gather(cb.vec(), idx)
	out.Typ = cb.typ
	return out
}

// equalAt reports whether the accumulated row i equals the live row j of v
// (key verification in hash tables).
func (cb *colBuilder) equalAt(i int, v *vector.Vector, j int) bool {
	switch cb.typ.Physical() {
	case vector.Bool:
		return cb.b[i] == v.Bools()[j]
	case vector.UInt8:
		return cb.u8[i] == v.UInt8s()[j]
	case vector.UInt16:
		return cb.u16[i] == v.UInt16s()[j]
	case vector.Int32:
		return cb.i32[i] == v.Int32s()[j]
	case vector.Int64:
		return cb.i64[i] == v.Int64s()[j]
	case vector.Float64:
		return cb.f64[i] == v.Float64s()[j]
	default:
		return cb.strs[i] == v.Strings()[j]
	}
}

// less compares accumulated rows i and j (sort support).
func (cb *colBuilder) less(i, j int) bool {
	switch cb.typ.Physical() {
	case vector.Bool:
		return !cb.b[i] && cb.b[j]
	case vector.UInt8:
		return cb.u8[i] < cb.u8[j]
	case vector.UInt16:
		return cb.u16[i] < cb.u16[j]
	case vector.Int32:
		return cb.i32[i] < cb.i32[j]
	case vector.Int64:
		return cb.i64[i] < cb.i64[j]
	case vector.Float64:
		return cb.f64[i] < cb.f64[j]
	default:
		return cb.strs[i] < cb.strs[j]
	}
}

// appendRow appends accumulated row i of src (same type) — the gather step
// when k-way merging sorted runs held in separate builders.
func (cb *colBuilder) appendRow(src *colBuilder, i int) {
	switch cb.typ.Physical() {
	case vector.Bool:
		cb.b = append(cb.b, src.b[i])
	case vector.UInt8:
		cb.u8 = append(cb.u8, src.u8[i])
	case vector.UInt16:
		cb.u16 = append(cb.u16, src.u16[i])
	case vector.Int32:
		cb.i32 = append(cb.i32, src.i32[i])
	case vector.Int64:
		cb.i64 = append(cb.i64, src.i64[i])
	case vector.Float64:
		cb.f64 = append(cb.f64, src.f64[i])
	case vector.String:
		cb.strs = append(cb.strs, src.strs[i])
	}
}

// lessCross compares accumulated row i against row j of another builder of
// the same type (k-way merge across sorted runs).
func (cb *colBuilder) lessCross(i int, ob *colBuilder, j int) bool {
	switch cb.typ.Physical() {
	case vector.Bool:
		return !cb.b[i] && ob.b[j]
	case vector.UInt8:
		return cb.u8[i] < ob.u8[j]
	case vector.UInt16:
		return cb.u16[i] < ob.u16[j]
	case vector.Int32:
		return cb.i32[i] < ob.i32[j]
	case vector.Int64:
		return cb.i64[i] < ob.i64[j]
	case vector.Float64:
		return cb.f64[i] < ob.f64[j]
	default:
		return cb.strs[i] < ob.strs[j]
	}
}

// equalCross compares accumulated row i against row j of another builder of
// the same type.
func (cb *colBuilder) equalCross(i int, ob *colBuilder, j int) bool {
	switch cb.typ.Physical() {
	case vector.Bool:
		return cb.b[i] == ob.b[j]
	case vector.UInt8:
		return cb.u8[i] == ob.u8[j]
	case vector.UInt16:
		return cb.u16[i] == ob.u16[j]
	case vector.Int32:
		return cb.i32[i] == ob.i32[j]
	case vector.Int64:
		return cb.i64[i] == ob.i64[j]
	case vector.Float64:
		return cb.f64[i] == ob.f64[j]
	default:
		return cb.strs[i] == ob.strs[j]
	}
}

// equalRows compares accumulated rows i and j.
func (cb *colBuilder) equalRows(i, j int) bool {
	switch cb.typ.Physical() {
	case vector.Bool:
		return cb.b[i] == cb.b[j]
	case vector.UInt8:
		return cb.u8[i] == cb.u8[j]
	case vector.UInt16:
		return cb.u16[i] == cb.u16[j]
	case vector.Int32:
		return cb.i32[i] == cb.i32[j]
	case vector.Int64:
		return cb.i64[i] == cb.i64[j]
	case vector.Float64:
		return cb.f64[i] == cb.f64[j]
	default:
		return cb.strs[i] == cb.strs[j]
	}
}

// hashAt returns the hash of accumulated row i (rebuild path for growing
// hash tables).
func (cb *colBuilder) hashAt(i int, h uint64) uint64 {
	switch cb.typ.Physical() {
	case vector.Bool:
		x := uint64(0)
		if cb.b[i] {
			x = 1
		}
		return hashCombine(h, x)
	case vector.UInt8:
		return hashCombine(h, uint64(cb.u8[i]))
	case vector.UInt16:
		return hashCombine(h, uint64(cb.u16[i]))
	case vector.Int32:
		return hashCombine(h, uint64(cb.i32[i]))
	case vector.Int64:
		return hashCombine(h, uint64(cb.i64[i]))
	case vector.Float64:
		return hashCombineF64(h, cb.f64[i])
	default:
		return hashCombineStr(h, cb.strs[i])
	}
}
