package core

import (
	"fmt"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/vector"
)

func deltaTestDB(t *testing.T, n int) *Database {
	t.Helper()
	db := NewDatabase()
	tab := colstore.NewTable("ev")
	keys := make([]int32, n)
	vals := make([]float64, n)
	tags := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = int32(i)
		vals[i] = float64(i % 13)
		tags[i] = []string{"a", "b", "c"}[i%3]
	}
	if err := tab.AddColumn("k", vector.Int32, keys); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("v", vector.Float64, vals); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("tag", tags); err != nil {
		t.Fatal(err)
	}
	db.AddTable(tab)
	return db
}

func evPlan(t *testing.T) algebra.Node {
	t.Helper()
	plan, err := algebra.Parse(`Aggr(Scan(ev), [tag], [n = count(), s = sum(v), mk = max(k)])`)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func runSorted(t *testing.T, db *Database, plan algebra.Node, parallelism int) map[string][]any {
	t.Helper()
	opts := DefaultOptions()
	opts.Parallelism = parallelism
	res, err := Run(db, plan, opts)
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	out := map[string][]any{}
	for i := 0; i < res.NumRows(); i++ {
		row := res.Row(i)
		out[fmt.Sprint(row[0])] = row[1:]
	}
	return out
}

// TestParallelScanWithInsertDeltas asserts a table with pending insert
// deltas executes partitioned (via the automatic checkpoint) with results
// identical to the serial merged scan, and that the checkpoint preserved
// visible state.
func TestParallelScanWithInsertDeltas(t *testing.T) {
	const n = 5000
	db := deltaTestDB(t, n)
	ds, _ := db.Delta("ev")
	for i := 0; i < 500; i++ {
		// New enum value "d" exercises dictionary growth across the
		// checkpoint.
		tag := []string{"a", "d"}[i%2]
		if _, err := ds.Insert([]any{int32(n + i), float64(100 + i%7), tag}); err != nil {
			t.Fatal(err)
		}
	}
	plan := evPlan(t)
	serial := runSorted(t, db, plan, 1)
	if ds.NumDeltaRows() != 500 {
		t.Fatalf("serial run must leave deltas, has %d", ds.NumDeltaRows())
	}
	par := runSorted(t, db, plan, 4)
	if ds.NumDeltaRows() != 0 {
		t.Fatalf("parallel run should have checkpointed, %d delta rows left", ds.NumDeltaRows())
	}
	tab, _ := db.Table("ev")
	if tab.N != n+500 || tab.Col("k").NumFrags() != 2 {
		t.Fatalf("base not extended: N=%d frags=%d", tab.N, tab.Col("k").NumFrags())
	}
	if len(par) != len(serial) {
		t.Fatalf("group sets differ: %v vs %v", par, serial)
	}
	for k, want := range serial {
		got, ok := par[k]
		if !ok {
			t.Fatalf("group %q missing in parallel result", k)
		}
		for c := range want {
			if fmt.Sprint(got[c]) != fmt.Sprint(want[c]) {
				t.Fatalf("group %q col %d: %v vs %v", k, c, got[c], want[c])
			}
		}
	}
	// And the checkpointed table agrees with itself again at higher
	// parallelism.
	par8 := runSorted(t, db, plan, 8)
	for k, want := range serial {
		got := par8[k]
		for c := range want {
			if fmt.Sprint(got[c]) != fmt.Sprint(want[c]) {
				t.Fatalf("p=8 group %q col %d: %v vs %v", k, c, got[c], want[c])
			}
		}
	}
}

// TestParallelScanWithDeletions asserts deletion lists are honored by the
// partitioned (selection-vector) scan path at any parallelism.
func TestParallelScanWithDeletions(t *testing.T) {
	const n = 5000
	db := deltaTestDB(t, n)
	ds, _ := db.Delta("ev")
	for i := 0; i < n; i += 3 {
		if err := ds.Delete(int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	plan := evPlan(t)
	serial := runSorted(t, db, plan, 1)
	for _, p := range []int{2, 4, 8} {
		par := runSorted(t, db, plan, p)
		if len(par) != len(serial) {
			t.Fatalf("p=%d: group sets differ", p)
		}
		for k, want := range serial {
			got := par[k]
			for c := range want {
				if fmt.Sprint(got[c]) != fmt.Sprint(want[c]) {
					t.Fatalf("p=%d group %q col %d: %v vs %v", p, k, c, got[c], want[c])
				}
			}
		}
	}
	// Sanity: deletions actually removed rows (count per group shrank).
	total := 0
	for _, row := range serial {
		total += int(row[0].(int64))
	}
	if want := n - (n+2)/3; total != want {
		t.Fatalf("visible rows %d, want %d", total, want)
	}
}

// TestCheckpointThenDeleteRowIDsStable asserts checkpoint keeps row ids
// valid: a row id captured before the checkpoint deletes the same logical
// row after it.
func TestCheckpointThenDeleteRowIDsStable(t *testing.T) {
	db := deltaTestDB(t, 10)
	ds, _ := db.Delta("ev")
	id, err := ds.Insert([]any{int32(10), 42.0, "a"})
	if err != nil {
		t.Fatal(err)
	}
	if done, err := db.Checkpoint("ev"); err != nil || !done {
		t.Fatalf("checkpoint: done=%v err=%v", done, err)
	}
	if err := ds.Delete(id); err != nil {
		t.Fatal(err)
	}
	if got := ds.NumRows(); got != 10 {
		t.Fatalf("visible rows %d, want 10", got)
	}
	res, err := Run(db, mustParse(t, `Aggr(Scan(ev), [], [mk = max(k)])`), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mk := res.Row(0)[0]; fmt.Sprint(mk) != "9" {
		t.Fatalf("max k = %v after deleting checkpointed row, want 9", mk)
	}
}

func mustParse(t *testing.T, s string) algebra.Node {
	t.Helper()
	plan, err := algebra.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}
