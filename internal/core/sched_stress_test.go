package core

import (
	"sync/atomic"
	"testing"
	"time"

	"x100/internal/algebra"
	"x100/internal/expr"
	"x100/internal/sched"
)

// longPlan is a full-table hash aggregation — many morsels of real work.
func longPlan() algebra.Node {
	return algebra.NewAggr(
		algebra.NewScan("fact", "k", "v", "g"),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("g"))},
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("v")),
			algebra.Count("n"),
		},
	)
}

// shortPlan is a tight-predicate scalar aggregate: the "interactive" query.
func shortPlan() algebra.Node {
	return algebra.NewAggr(
		algebra.NewSelect(
			algebra.NewScan("fact", "v"),
			expr.LTE(expr.C("v"), expr.Float(5)),
		),
		nil,
		[]algebra.AggExpr{algebra.Count("n")},
	)
}

// TestSchedulerNoStarvation serves one long scan-heavy query in a loop
// alongside a stream of short queries, all through a pool capped at a
// single slot. The shorts must keep completing while the long workload is
// in flight (FIFO admission plus quantum-paced yields guarantee rotation),
// the long workload must also make progress, and answers must not change
// under contention.
func TestSchedulerNoStarvation(t *testing.T) {
	db := parallelDB(t, 100_000)
	pool := sched.NewPool(1)

	serial := DefaultOptions()
	shortRef, err := Run(db, shortPlan(), serial)
	must0(t, err)
	longRef, err := Run(db, longPlan(), serial)
	must0(t, err)

	contended := func() ExecOptions {
		opts := DefaultOptions()
		opts.Parallelism = 2
		opts.Sched = pool
		return opts
	}

	stop := make(chan struct{})
	var longRuns atomic.Int64
	longErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				longErr <- nil
				return
			default:
			}
			res, err := Run(db, longPlan(), contended())
			if err != nil {
				longErr <- err
				return
			}
			if len(res.Rows()) != len(longRef.Rows()) {
				longErr <- errGroupCount{len(res.Rows()), len(longRef.Rows())}
				return
			}
			longRuns.Add(1)
		}
	}()

	// Wait until the long workload holds the pool before firing shorts.
	deadline := time.Now().Add(10 * time.Second)
	for pool.Stats().Admitted == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if pool.Stats().Admitted == 0 {
		t.Fatal("long workload never acquired a slot")
	}

	const shorts = 20
	// The bound is a liveness guard, not a latency SLO: a starved short
	// query would block on Acquire indefinitely.
	const bound = 30 * time.Second
	for i := 0; i < shorts; i++ {
		start := time.Now()
		res, err := Run(db, shortPlan(), contended())
		must0(t, err)
		if d := time.Since(start); d > bound {
			t.Fatalf("short query %d took %v under contention: starved", i, d)
		}
		assertSameResult(t, shortRef, res)
	}

	close(stop)
	if err := <-longErr; err != nil {
		t.Fatal(err)
	}
	if longRuns.Load() == 0 {
		t.Fatal("long workload starved: zero completions while shorts ran")
	}
	st := pool.Stats()
	if st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("pool not drained after serving: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatalf("no admissions recorded — queries bypassed the pool: %+v", st)
	}
	// Queued waits (st.Waits) are NOT asserted: on a single-core host a
	// slot is often released before any competing goroutine is scheduled
	// to observe it held, so contention-free serving is legitimate.
}

type errGroupCount [2]int

func (e errGroupCount) Error() string {
	return "long query group count changed under contention"
}

// TestQueryAbandonment closes a parallel query after consuming a single
// batch — a client walking away mid-stream — and requires every worker
// slot to come back to the pool: Close must stop and drain the exchange
// without leaking slots or queued waiters.
func TestQueryAbandonment(t *testing.T) {
	db := parallelDB(t, 100_000)
	pool := sched.NewPool(1)
	// A pipelined scan+select compiles to an exchange operator whose
	// output can be abandoned between batches (an aggregation materializes
	// fully inside the first Next, so it could never be caught mid-stream).
	plan := algebra.NewSelect(
		algebra.NewScan("fact", "k", "v"),
		expr.LTE(expr.C("v"), expr.Float(900)),
	)
	for round := 0; round < 5; round++ {
		opts := DefaultOptions()
		opts.Parallelism = 4
		opts.Sched = pool
		op, err := Build(db, plan, opts)
		must0(t, err)
		must0(t, op.Open())
		b, err := op.Next()
		must0(t, err)
		if b == nil || b.Rows() == 0 {
			t.Fatalf("round %d: expected a first batch before abandoning", round)
		}
		must0(t, op.Close())
		// Workers blocked on the full output channel or queued on the
		// pool must all observe the stop signal and give their slots back.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			st := pool.Stats()
			if st.InUse == 0 && st.Waiting == 0 {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if st := pool.Stats(); st.InUse != 0 || st.Waiting != 0 {
			t.Fatalf("round %d: abandoned query leaked slots: %+v", round, st)
		}
	}
}
