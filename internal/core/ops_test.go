package core

import (
	"fmt"
	"reflect"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/sindex"
	"x100/internal/vector"
)

// opsDB builds a database exercising enums, dates and multiple tables.
func opsDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()

	n := 1000
	keys := make([]int32, n)
	grp := make([]string, n)
	val := make([]float64, n)
	date := make([]int32, n)
	fk := make([]int32, n)
	for i := 0; i < n; i++ {
		keys[i] = int32(i)
		grp[i] = []string{"a", "b", "c"}[i%3]
		val[i] = float64(i) / 10
		date[i] = int32(i) // ascending -> clustered
		fk[i] = int32(i % 10)
	}
	fact := colstore.NewTable("fact")
	must(t, fact.AddColumn("k", vector.Int32, keys))
	must(t, fact.AddEnumColumn("grp", grp))
	must(t, fact.AddColumn("val", vector.Float64, val))
	must(t, fact.AddColumn("d", vector.Date, date))
	must(t, fact.AddColumn("fk", vector.Int32, fk))
	db.AddTable(fact)

	// Expose the grp enum dictionary as a mapping table for Fetch1Join.
	dict := colstore.NewTable("grp" + DictSuffix)
	must(t, dict.AddColumn("value", vector.String,
		append([]string(nil), fact.Col("grp").Dict.Values...)))
	db.AddTable(dict)

	dim := colstore.NewTable("dim")
	dk := make([]int32, 10)
	dn := make([]string, 10)
	for i := range dk {
		dk[i] = int32(i)
		dn[i] = fmt.Sprintf("dim-%d", i)
	}
	must(t, dim.AddColumn("dk", vector.Int32, dk))
	must(t, dim.AddColumn("dname", vector.String, dn))
	db.AddTable(dim)

	must(t, db.BuildSummaryIndex("fact", "d", 64))
	return db
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func runPlan(t *testing.T, db *Database, plan algebra.Node, opts ExecOptions) *Result {
	t.Helper()
	res, err := Run(db, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAggrModesAgree(t *testing.T) {
	db := opsDB(t)
	build := func(mode algebra.AggMode) algebra.Node {
		return algebra.NewAggr(
			algebra.NewScan("fact", "grp", "val"),
			[]algebra.NamedExpr{algebra.NE("grp", expr.C("grp"))},
			[]algebra.AggExpr{
				algebra.Sum("s", expr.C("val")),
				algebra.Count("n"),
				algebra.Min("mn", expr.C("val")),
				algebra.Max("mx", expr.C("val")),
				algebra.Avg("av", expr.C("val")),
			}).WithMode(mode)
	}
	// The scan is in round-robin group order, so ordered mode would be
	// wrong here; compare hash against the sorted reference. Ordered mode
	// is tested separately on sorted input.
	ref := runPlan(t, db, algebra.NewOrder(build(algebra.ModeHash), algebra.Asc(expr.C("grp"))), DefaultOptions())
	if ref.NumRows() != 3 {
		t.Fatalf("groups: %d", ref.NumRows())
	}
	// Direct aggregation over the enum code column must agree after decode.
	direct := algebra.NewAggr(
		algebra.NewScan("fact", "grp#", "val"),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("grp#"))},
		[]algebra.AggExpr{
			algebra.Sum("s", expr.C("val")),
			algebra.Count("n"),
			algebra.Min("mn", expr.C("val")),
			algebra.Max("mx", expr.C("val")),
			algebra.Avg("av", expr.C("val")),
		})
	withDecode := algebra.NewFetch1Join(direct, "grp#dict",
		expr.CastE(vector.Int32, expr.C("g")), "value").Renamed("grp")
	final := algebra.NewOrder(
		algebra.NewProject(withDecode,
			algebra.NE("grp", expr.C("grp")), algebra.NE("s", expr.C("s")),
			algebra.NE("n", expr.C("n")), algebra.NE("mn", expr.C("mn")),
			algebra.NE("mx", expr.C("mx")), algebra.NE("av", expr.C("av"))),
		algebra.Asc(expr.C("grp")))
	got := runPlan(t, db, final, DefaultOptions())
	if !reflect.DeepEqual(ref.Rows(), got.Rows()) {
		t.Fatalf("direct disagrees:\nhash:   %v\ndirect: %v", ref.Rows(), got.Rows())
	}
}

func TestOrderedAggrOnSortedInput(t *testing.T) {
	db := opsDB(t)
	// Sort by grp first, then ordered-aggregate.
	sorted := algebra.NewOrder(algebra.NewScan("fact", "grp", "val"), algebra.Asc(expr.C("grp")))
	ordered := algebra.NewAggr(sorted,
		[]algebra.NamedExpr{algebra.NE("grp", expr.C("grp"))},
		[]algebra.AggExpr{algebra.Sum("s", expr.C("val")), algebra.Count("n")},
	).WithMode(algebra.ModeOrdered)
	hash := algebra.NewOrder(
		algebra.NewAggr(algebra.NewScan("fact", "grp", "val"),
			[]algebra.NamedExpr{algebra.NE("grp", expr.C("grp"))},
			[]algebra.AggExpr{algebra.Sum("s", expr.C("val")), algebra.Count("n")},
		).WithMode(algebra.ModeHash),
		algebra.Asc(expr.C("grp")))
	a := runPlan(t, db, ordered, DefaultOptions())
	b := runPlan(t, db, hash, DefaultOptions())
	if !reflect.DeepEqual(a.Rows(), b.Rows()) {
		t.Fatalf("ordered: %v\nhash: %v", a.Rows(), b.Rows())
	}
}

// unwrapRoot strips the snapshot-release wrapper Build installs around a
// query's root operator, exposing the physical root for inspection.
func unwrapRoot(op Operator) Operator {
	if r, ok := op.(*releaseOp); ok {
		return r.Operator
	}
	return op
}

func TestOrderedAggrAutoDetected(t *testing.T) {
	db := opsDB(t)
	sorted := algebra.NewOrder(algebra.NewScan("fact", "grp", "val"), algebra.Asc(expr.C("grp")))
	aggr := algebra.NewAggr(sorted,
		[]algebra.NamedExpr{algebra.NE("grp", expr.C("grp"))},
		[]algebra.AggExpr{algebra.Count("n")})
	op, err := Build(db, aggr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := unwrapRoot(op).(*aggrOp).mode; got != algebra.ModeOrdered {
		t.Fatalf("auto mode over sorted input: %v, want ORDERED", got)
	}
	res, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("groups: %d", res.NumRows())
	}
	// Unsorted input must NOT pick ordered mode (decode-first build: the
	// code-domain rewrite would otherwise group on the enum codes).
	plain := algebra.NewAggr(algebra.NewScan("fact", "grp", "val"),
		[]algebra.NamedExpr{algebra.NE("grp", expr.C("grp"))},
		[]algebra.AggExpr{algebra.Count("n")})
	decodeFirst := DefaultOptions()
	decodeFirst.NoCodeDomain = true
	op2, err := Build(db, plain, decodeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if got := unwrapRoot(op2).(*aggrOp).mode; got != algebra.ModeHash {
		t.Fatalf("auto mode over unsorted input: %v, want HASH", got)
	}
	// With code-domain execution the same plan groups on the uint8 enum
	// codes and upgrades to direct aggregation (rehydrated via Fetch1Join).
	op3, err := Build(db, plain, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, isAggr := unwrapRoot(op3).(*aggrOp); isAggr {
		t.Fatalf("code-domain build did not rewrite the string group key")
	}
	res3, err := Drain(op3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.NumRows() != 3 {
		t.Fatalf("code-domain groups: %d", res3.NumRows())
	}
}

func TestScalarAggrOnEmptyInput(t *testing.T) {
	db := opsDB(t)
	plan := algebra.NewAggr(
		algebra.NewSelect(algebra.NewScan("fact", "val"), expr.GTE(expr.C("val"), expr.Float(1e9))),
		nil,
		[]algebra.AggExpr{algebra.Sum("s", expr.C("val")), algebra.Count("n")})
	res := runPlan(t, db, plan, DefaultOptions())
	if res.NumRows() != 1 {
		t.Fatalf("scalar aggregation must yield one row, got %d", res.NumRows())
	}
	row := res.Row(0)
	if row[0].(float64) != 0 || row[1].(int64) != 0 {
		t.Fatalf("empty aggregates: %v", row)
	}
}

func TestJoinKinds(t *testing.T) {
	db := opsDB(t)
	// dim rows 0..9; restrict right side to dk < 5 so half the fact rows miss.
	right := algebra.NewSelect(algebra.NewScan("dim", "dk", "dname"),
		expr.LTE(expr.C("dk"), expr.Int32Const(5)))
	scanFact := func() algebra.Node { return algebra.NewScan("fact", "k", "fk") }

	inner := runPlan(t, db, algebra.NewJoin(scanFact(), right, algebra.EquiCond{L: "fk", R: "dk"}), DefaultOptions())
	if inner.NumRows() != 500 {
		t.Fatalf("inner: %d", inner.NumRows())
	}
	semi := runPlan(t, db, algebra.NewJoinKind(algebra.Semi, scanFact(), right,
		algebra.EquiCond{L: "fk", R: "dk"}), DefaultOptions())
	if semi.NumRows() != 500 {
		t.Fatalf("semi: %d", semi.NumRows())
	}
	anti := runPlan(t, db, algebra.NewJoinKind(algebra.Anti, scanFact(), right,
		algebra.EquiCond{L: "fk", R: "dk"}), DefaultOptions())
	if anti.NumRows() != 500 {
		t.Fatalf("anti: %d", anti.NumRows())
	}
	outer := runPlan(t, db, algebra.NewJoinKind(algebra.LeftOuter, scanFact(), right,
		algebra.EquiCond{L: "fk", R: "dk"}), DefaultOptions())
	if outer.NumRows() != 1000 {
		t.Fatalf("outer: %d", outer.NumRows())
	}
	// Unmatched rows carry zero values on the right.
	sawZero := false
	for i := 0; i < outer.NumRows(); i++ {
		row := outer.Row(i)
		if row[1].(int32) >= 5 { // fk >= 5 had no match
			if row[3].(string) != "" {
				t.Fatalf("unmatched outer row has %v", row)
			}
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatal("expected unmatched rows")
	}
	mark := runPlan(t, db, algebra.NewJoinKind(algebra.Mark, scanFact(), right,
		algebra.EquiCond{L: "fk", R: "dk"}).WithMark("hit"), DefaultOptions())
	if mark.NumRows() != 1000 {
		t.Fatalf("mark: %d", mark.NumRows())
	}
	for i := 0; i < mark.NumRows(); i++ {
		row := mark.Row(i)
		if (row[1].(int32) < 5) != row[2].(bool) {
			t.Fatalf("mark row %v", row)
		}
	}
}

func TestJoinResidual(t *testing.T) {
	db := opsDB(t)
	// Inner join with residual k < 100.
	plan := algebra.NewJoin(
		algebra.NewScan("fact", "k", "fk"),
		algebra.NewScan("dim", "dk", "dname"),
		algebra.EquiCond{L: "fk", R: "dk"},
	).WithResidual(expr.LTE(expr.C("k"), expr.Int32Const(100)))
	res := runPlan(t, db, plan, DefaultOptions())
	if res.NumRows() != 100 {
		t.Fatalf("residual: %d", res.NumRows())
	}
}

func TestCartProdWithSelect(t *testing.T) {
	db := opsDB(t)
	// CartProd(dim, dim) with residual dk == dk2 -> 10 rows.
	left := algebra.NewScan("dim", "dk", "dname")
	rightProj := algebra.NewProject(algebra.NewScan("dim", "dk"),
		algebra.NE("dk2", expr.C("dk")))
	plan := algebra.NewJoin(left, rightProj).WithResidual(
		expr.EQE(expr.C("dk"), expr.C("dk2")))
	res := runPlan(t, db, plan, DefaultOptions())
	if res.NumRows() != 10 {
		t.Fatalf("cartprod+select: %d", res.NumRows())
	}
}

func TestFetch1JoinAndRowID(t *testing.T) {
	db := opsDB(t)
	plan := algebra.NewFetch1Join(
		algebra.NewScan("fact", "#rowid", "fk"),
		"dim", expr.C("fk"), "dname")
	res := runPlan(t, db, plan, DefaultOptions())
	if res.NumRows() != 1000 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	row := res.Row(17)
	if row[0].(int32) != 17 {
		t.Fatalf("rowid: %v", row)
	}
	if row[2].(string) != fmt.Sprintf("dim-%d", row[1].(int32)) {
		t.Fatalf("fetched: %v", row)
	}
}

func TestFetchNJoin(t *testing.T) {
	db := opsDB(t)
	// Range index: fact clustered by bucket (k/100).
	starts := make([]int32, 11)
	for i := range starts {
		starts[i] = int32(i * 100)
	}
	db.RegisterRangeIndex("fact", "buckets", &sindex.RangeIndex{Starts: starts})
	bt := colstore.NewTable("buckets")
	must(t, bt.AddColumn("b", vector.Int32, []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}))
	db.AddTable(bt)
	plan := algebra.NewFetchNJoin(
		algebra.NewSelect(algebra.NewScan("buckets", "b"),
			expr.LTE(expr.C("b"), expr.Int32Const(2))),
		"fact", "b", "k")
	res := runPlan(t, db, plan, DefaultOptions())
	if res.NumRows() != 200 { // buckets 0 and 1
		t.Fatalf("fetchN: %d", res.NumRows())
	}
	last := res.Row(199)
	if last[0].(int32) != 1 || last[1].(int32) != 199 {
		t.Fatalf("last row: %v", last)
	}
}

func TestTopNEqualsOrderedPrefix(t *testing.T) {
	db := opsDB(t)
	keys := []algebra.OrdExpr{algebra.Desc(expr.C("val")), algebra.Asc(expr.C("k"))}
	top := runPlan(t, db, algebra.NewTopN(algebra.NewScan("fact", "k", "val"), 7, keys...), DefaultOptions())
	full := runPlan(t, db, algebra.NewOrder(algebra.NewScan("fact", "k", "val"), keys...), DefaultOptions())
	if top.NumRows() != 7 {
		t.Fatalf("topn rows: %d", top.NumRows())
	}
	for i := 0; i < 7; i++ {
		if !reflect.DeepEqual(top.Row(i), full.Row(i)) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestArrayOperator(t *testing.T) {
	db := NewDatabase()
	res := runPlan(t, db, algebra.NewArray(3, 2), DefaultOptions())
	if res.NumRows() != 6 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	// Column-major: dim0 varies fastest.
	want := [][]int32{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for i, w := range want {
		row := res.Row(i)
		if row[0].(int32) != w[0] || row[1].(int32) != w[1] {
			t.Fatalf("row %d: %v", i, row)
		}
	}
}

func TestSummaryIndexPruningCorrect(t *testing.T) {
	db := opsDB(t)
	plan := func() algebra.Node {
		return algebra.NewAggr(
			algebra.NewSelect(algebra.NewScan("fact", "d", "val"),
				expr.AndE(
					expr.GEE(expr.C("d"), expr.Int32Const(300)),
					expr.LEE(expr.C("d"), expr.Int32Const(350)),
				)),
			nil,
			[]algebra.AggExpr{algebra.Count("n"), algebra.Sum("s", expr.C("val"))})
	}
	on := runPlan(t, db, plan(), DefaultOptions())
	offOpts := DefaultOptions()
	offOpts.NoSummaryIndex = true
	off := runPlan(t, db, plan(), offOpts)
	if !reflect.DeepEqual(on.Rows(), off.Rows()) {
		t.Fatalf("pruned %v vs unpruned %v", on.Rows(), off.Rows())
	}
	if on.Row(0)[0].(int64) != 51 {
		t.Fatalf("count: %v", on.Row(0))
	}
}

// TestVectorSizeInvariance is the Figure 10 correctness side: results are
// identical for any vector size.
func TestVectorSizeInvariance(t *testing.T) {
	db := opsDB(t)
	plan := algebra.NewOrder(
		algebra.NewAggr(
			algebra.NewSelect(algebra.NewScan("fact", "grp", "val", "d"),
				expr.LTE(expr.C("d"), expr.Int32Const(777))),
			[]algebra.NamedExpr{algebra.NE("grp", expr.C("grp"))},
			[]algebra.AggExpr{algebra.Sum("s", expr.C("val")), algebra.Count("n")}),
		algebra.Asc(expr.C("grp")))
	ref := runPlan(t, db, plan, DefaultOptions())
	for _, size := range []int{1, 3, 17, 128, 4096, 1 << 20} {
		opts := DefaultOptions()
		opts.BatchSize = size
		got := runPlan(t, db, plan, opts)
		if !reflect.DeepEqual(ref.Rows(), got.Rows()) {
			t.Fatalf("vector size %d changes results", size)
		}
	}
}

func TestScanWithDeltas(t *testing.T) {
	db := opsDB(t)
	ds, err := db.Delta("fact")
	if err != nil {
		t.Fatal(err)
	}
	must(t, ds.Delete(0))
	must(t, ds.Delete(999))
	if _, err := ds.Insert([]any{int32(5000), "b", 123.5, int32(2000), int32(3)}); err != nil {
		t.Fatal(err)
	}
	plan := algebra.NewAggr(algebra.NewScan("fact", "k", "val"), nil,
		[]algebra.AggExpr{algebra.Count("n"), algebra.Max("mx", expr.C("val"))})
	res := runPlan(t, db, plan, DefaultOptions())
	if res.Row(0)[0].(int64) != 999 { // 1000 - 2 + 1
		t.Fatalf("count: %v", res.Row(0))
	}
	if res.Row(0)[1].(float64) != 123.5 {
		t.Fatalf("max must include delta row: %v", res.Row(0))
	}
	// Code columns work on delta rows too (encoded via the dictionary).
	plan2 := algebra.NewAggr(algebra.NewScan("fact", "grp#"),
		[]algebra.NamedExpr{algebra.NE("g", expr.C("grp#"))},
		[]algebra.AggExpr{algebra.Count("n")})
	res2 := runPlan(t, db, plan2, DefaultOptions())
	if res2.NumRows() != 3 {
		t.Fatalf("groups with deltas: %d", res2.NumRows())
	}
}

func TestBuildErrors(t *testing.T) {
	db := opsDB(t)
	bad := []algebra.Node{
		algebra.NewScan("nope"),
		algebra.NewScan("fact", "nope"),
		algebra.NewSelect(algebra.NewScan("fact", "val"), expr.C("val")), // non-bool
		algebra.NewJoin(algebra.NewScan("fact", "k"), algebra.NewScan("dim", "dk"),
			algebra.EquiCond{L: "missing", R: "dk"}),
		algebra.NewJoinKind(algebra.Semi, algebra.NewScan("fact", "k"), algebra.NewScan("dim", "dk")),
		algebra.NewFetchNJoin(algebra.NewScan("dim", "dk"), "unindexed", "dk", "x"),
	}
	for i, plan := range bad {
		if _, err := Run(db, plan, DefaultOptions()); err == nil {
			t.Errorf("plan %d should fail", i)
		}
	}
}

func TestResultFormat(t *testing.T) {
	db := opsDB(t)
	res := runPlan(t, db, algebra.NewTopN(algebra.NewScan("dim", "dk", "dname"), 3,
		algebra.Asc(expr.C("dk"))), DefaultOptions())
	out := res.Format(2)
	if !contains(out, "dk") || !contains(out, "dim-0") || !contains(out, "3 rows total") {
		t.Fatalf("format:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}
