package core

import (
	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/vector"
)

// AttachDiskTable attaches a ColumnBM-persisted table to the database as a
// fragment-backed table: scans decompress one chunk per column at a time
// through the store's buffer pool instead of materializing columns. Enum
// dictionaries from the manifest are registered as "<column>#dict" mapping
// tables so plans can group on codes and rehydrate values with a
// Fetch1Join, exactly as for generated in-memory tables.
func AttachDiskTable(db *Database, store *columnbm.Store, name string) (*colstore.Table, error) {
	t, err := store.AttachTable(name)
	if err != nil {
		return nil, err
	}
	db.AddTable(t)
	for _, c := range t.Cols {
		if !c.IsEnum() {
			continue
		}
		dt := colstore.NewTable(c.Name + DictSuffix)
		if c.Dict.Typ == vector.Float64 {
			if err := dt.AddColumn("value", vector.Float64, append([]float64(nil), c.Dict.F64s...)); err != nil {
				return nil, err
			}
		} else {
			if err := dt.AddColumn("value", vector.String, append([]string(nil), c.Dict.Values...)); err != nil {
				return nil, err
			}
		}
		db.AddTable(dt)
	}
	return t, nil
}
