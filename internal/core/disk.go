package core

import (
	"slices"

	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/vector"
)

// AttachDiskTable attaches a ColumnBM-persisted table to the database as a
// fragment-backed table: scans decompress one chunk per column at a time
// through the store's buffer pool instead of materializing columns. Enum
// dictionaries from the manifest are registered as "<column>#dict" mapping
// tables so plans can group on codes and rehydrate values with a
// Fetch1Join, exactly as for generated in-memory tables. The store is
// remembered as the table's write-back target — Checkpoint writes deltas
// back to the directory and Reorganize rewrites it — and the deletion list
// persisted by earlier checkpoints is restored into the table's delta
// store, so an attach after a restart recovers the full committed state.
func AttachDiskTable(db *Database, store *columnbm.Store, name string) (*colstore.Table, error) {
	t, err := store.AttachTable(name)
	if err != nil {
		return nil, err
	}
	m, err := store.ReadManifest(name)
	if err != nil {
		return nil, err
	}
	db.AddTable(t)
	att := &diskAttachment{store: store, persistedDel: len(m.Deleted)}
	db.mu.Lock()
	db.disk[name] = att
	db.mu.Unlock()
	ds, err := db.Delta(name)
	if err != nil {
		return nil, err
	}
	if len(m.Deleted) > 0 {
		ds.RestoreDeleted(m.Deleted)
	}
	if db.durability != DurabilityCheckpoint {
		// Open the table's write-ahead log and replay the committed tail
		// past the last checkpoint into the delta store — the crash-recovery
		// half of the WAL. A stale-epoch or torn log is handled inside
		// OpenWAL; replayed records re-enter through the same delta-store
		// operations the original calls used.
		wal, err := store.OpenWAL(name, m.WalEpoch, func(rec columnbm.WALRecord) error {
			switch rec.Kind {
			case columnbm.WALInsert:
				_, err := ds.Insert(rec.Row)
				return err
			case columnbm.WALDelete:
				return ds.Delete(rec.RowID)
			case columnbm.WALUpdate:
				_, err := ds.Update(rec.RowID, rec.Row)
				return err
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		att.wal = wal
	}
	registerDictTables(db, t)
	return t, nil
}

// registerDictTables (re-)registers the "<column>#dict" mapping tables of a
// table's code-domain columns — enum columns and merged-dict string
// columns: single-column value tables the plan layer Fetch1Joins against to
// rehydrate dictionary codes. Re-registration replaces stale mappings after
// a Reorganize re-encoded the dictionaries.
func registerDictTables(db *Database, t *colstore.Table) {
	for _, c := range t.Cols {
		dt := colstore.NewTable(c.Name + DictSuffix)
		switch d, _, ok := c.CodeDomain(); {
		case ok: // enum string or merged-dict column
			// AddColumn over fresh copies cannot fail (single column).
			// Strings() snapshots the append-only dictionary race-free.
			_ = dt.AddColumn("value", vector.String, slices.Clone(d.Strings()))
		case c.IsEnum(): // float enum
			_ = dt.AddColumn("value", vector.Float64, slices.Clone(c.Dict.Floats()))
		default:
			continue
		}
		db.AddTable(dt)
	}
}
