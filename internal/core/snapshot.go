package core

import (
	"sync"

	"x100/internal/colstore"
	"x100/internal/delta"
	"x100/internal/sindex"
)

// This file implements the per-query snapshot layer that makes checkpoints
// and compaction concurrent with scans. A query captures, per table, one
// immutable tableView — the column set, row count, delta snapshot and the
// secondary-index maps — under the database's snapshot lock. Checkpoint and
// compaction cutovers take that lock exclusively and swap in new state with
// copy-on-write (new column slices, new index maps), so a captured view
// stays internally consistent for the lifetime of the query no matter how
// many cutovers happen underneath it.
//
// Views of disk-attached tables additionally hold a generation lease on the
// attachment: the background compactor defers deleting superseded chunk
// files until every query that might still read them has released its
// lease.

// tableView is one query's frozen view of a table.
type tableView struct {
	name  string
	table *colstore.Table
	// cols/n/chunkRows are the base-table state at capture time. The table
	// mutators are copy-on-write (AppendFragment(s) and the compaction
	// cutover install fresh *Column sets), so these stay valid after any
	// number of cutovers.
	cols      []*colstore.Column
	n         int
	chunkRows int
	// delta is the captured insert/delete delta; its buffers are immune to
	// concurrent appends and ClearInsertsN/Rebase by construction.
	delta *delta.Snapshot
	// Captured secondary-index maps (nil when none registered). Cutovers
	// swap whole maps, never mutate them, so reads here are race-free.
	sumI32   map[string]*sindex.Summary[int32]
	sumF64   map[string]*sindex.Summary[float64]
	rangeIdx map[string]*sindex.RangeIndex
}

// col returns the captured column by name, nil when absent.
func (v *tableView) col(name string) *colstore.Column {
	for _, c := range v.cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// rangeIndexAny mirrors Database.RangeIndexAny against the captured maps.
func (v *tableView) rangeIndexAny() *sindex.RangeIndex {
	if len(v.rangeIdx) != 1 {
		return nil
	}
	for _, ri := range v.rangeIdx {
		return ri
	}
	return nil
}

// snapSet is the set of table views one query executes against. Build
// captures every plan table (and their enum-dictionary mapping tables) in
// one snapshot-lock acquisition so a multi-table query sees a single
// cutover point; view() lazily captures stragglers.
type snapSet struct {
	db       *Database
	mu       sync.Mutex
	views    map[string]*tableView
	releases []func()
	released bool
}

func (db *Database) newSnapSet() *snapSet {
	return &snapSet{db: db, views: make(map[string]*tableView)}
}

// view returns the frozen view of a table, capturing it on first use.
func (ss *snapSet) view(name string) (*tableView, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if v := ss.views[name]; v != nil {
		return v, nil
	}
	ss.db.snapMu.RLock()
	defer ss.db.snapMu.RUnlock()
	return ss.captureLocked(name)
}

// capture pre-captures the views of the given tables — and, for every
// enum or dict-compressed column of those tables, the "<col>#dict" mapping
// table when registered — under ONE snapshot-lock acquisition. This is the
// query's consistency point: a compaction re-encodes enum columns with
// fresh dictionaries, so a column's codes and its mapping table must come
// from the same side of the cutover.
func (ss *snapSet) capture(tables []string) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.db.snapMu.RLock()
	defer ss.db.snapMu.RUnlock()
	for _, name := range tables {
		v, err := ss.captureLocked(name)
		if err != nil {
			return err
		}
		for _, c := range v.cols {
			if !c.IsEnum() {
				if _, _, ok := c.CodeDomain(); !ok {
					continue
				}
			}
			dictName := c.Name + DictSuffix
			if _, err := ss.db.Table(dictName); err != nil {
				continue // mapping table not registered
			}
			if _, err := ss.captureLocked(dictName); err != nil {
				return err
			}
		}
	}
	return nil
}

// captureLocked captures one table under the held snapshot read lock and
// takes a generation lease when the table is disk-attached.
func (ss *snapSet) captureLocked(name string) (*tableView, error) {
	if v := ss.views[name]; v != nil {
		return v, nil
	}
	db := ss.db
	t, err := db.Table(name)
	if err != nil {
		return nil, err
	}
	ds, err := db.Delta(name)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	v := &tableView{
		name:      name,
		table:     t,
		cols:      t.Cols,
		n:         t.N,
		chunkRows: t.ChunkRows,
		delta:     ds.Snapshot(),
		sumI32:    db.sumI32[name],
		sumF64:    db.sumF64[name],
		rangeIdx:  db.rangeIdx[name],
	}
	att := db.disk[name]
	db.mu.RUnlock()
	if att != nil {
		att.acquire()
		ss.releases = append(ss.releases, att.release)
	}
	ss.views[name] = v
	return v, nil
}

// release drops the set's generation leases; superseded chunk-file
// generations whose removal was deferred behind this query are deleted
// when the last lease goes. Idempotent.
func (ss *snapSet) release() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.released {
		return
	}
	ss.released = true
	for _, r := range ss.releases {
		r()
	}
	ss.releases = nil
}

// releaseOp wraps a query's root operator so closing the pipeline releases
// the snapshot set's generation leases. Build installs it when it created
// the set; Drain (and every well-behaved caller) closes the root exactly
// once.
type releaseOp struct {
	Operator
	snaps *snapSet
}

func (r *releaseOp) Close() error {
	err := r.Operator.Close()
	r.snaps.release()
	return err
}

// acquire takes a generation lease on the attachment.
func (att *diskAttachment) acquire() {
	att.genMu.Lock()
	att.genRefs++
	att.genMu.Unlock()
}

// release drops a lease; at zero the deferred cleanups (superseded
// chunk-file generations) run.
func (att *diskAttachment) release() {
	att.genMu.Lock()
	att.genRefs--
	var run []func()
	if att.genRefs == 0 {
		run = att.genPending
		att.genPending = nil
	}
	att.genMu.Unlock()
	for _, f := range run {
		f()
	}
}

// deferCleanup runs f now when no query holds a generation lease, else
// parks it until the last lease is released.
func (att *diskAttachment) deferCleanup(f func()) {
	att.genMu.Lock()
	busy := att.genRefs > 0
	if busy {
		att.genPending = append(att.genPending, f)
	}
	att.genMu.Unlock()
	if !busy {
		f()
	}
}
