package core

import (
	"fmt"
	"sort"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/expr"
	"x100/internal/trace"
	"x100/internal/vector"
)

// sortedRows renders a result as a sorted multiset of row strings so
// code-domain and decode-first runs compare independent of row order
// (hash-chain order differs when keys hash as codes vs strings).
func sortedRows(res *Result) []string {
	out := make([]string, res.NumRows())
	for i := range out {
		out[i] = fmt.Sprintf("%v", res.Row(i))
	}
	sort.Strings(out)
	return out
}

func runBoth(t *testing.T, db *Database, plan algebra.Node, parallelism int) (code, decode *Result) {
	t.Helper()
	opts := DefaultOptions()
	opts.Parallelism = parallelism
	code, err := Run(db, plan, opts)
	if err != nil {
		t.Fatalf("code-domain run: %v", err)
	}
	opts.NoCodeDomain = true
	decode, err = Run(db, plan, opts)
	if err != nil {
		t.Fatalf("decode-first run: %v", err)
	}
	return code, decode
}

func assertSameRows(t *testing.T, label string, code, decode *Result) {
	t.Helper()
	a, b := sortedRows(code), sortedRows(decode)
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows code-domain, %d decode-first", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: row %d differs:\n code-domain: %s\n decode-first: %s", label, i, a[i], b[i])
		}
	}
}

// codeDomainDiskDB persists a string-heavy table in 1000-row chunks and
// attaches it: mode (7 distinct values, every chunk dict-coded -> merged
// dictionary), mixed (dict chunks interleaved with raw/prefix chunks -> no
// merged dictionary, per-chunk translation with decode-first fallback),
// and an int payload.
func codeDomainDiskDB(t *testing.T) (*Database, *colstore.Table, int) {
	t.Helper()
	const n = 10000
	modes := []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	mode := make([]string, n)
	mixed := make([]string, n)
	v := make([]int64, n)
	rng := uint64(7)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for i := range mode {
		mode[i] = modes[int(next()%uint64(len(modes)))]
		v[i] = int64(i)
		switch (i / 1000) % 3 {
		case 0: // dict chunk: low cardinality
			mixed[i] = modes[int(next()%uint64(len(modes)))]
		case 1: // raw chunk: incompressible random strings
			mixed[i] = fmt.Sprintf("r%016x%016x", next(), next())
		default: // prefix chunk: shared-prefix ascending keys
			mixed[i] = fmt.Sprintf("key-prefix-%08d", i)
		}
	}
	tab := colstore.NewTable("events")
	if err := tab.AddColumn("mode", vector.String, mode); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("mixed", vector.String, mixed); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("v", vector.Int64, v); err != nil {
		t.Fatal(err)
	}
	store, err := columnbm.NewStore(t.TempDir(), 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	att, err := AttachDiskTable(db, store, "events")
	if err != nil {
		t.Fatal(err)
	}
	return db, att, n
}

// TestMergedDictAttach asserts the attach-time merged dictionary exists
// exactly where it should: on the fully dict-coded column, not on the
// mixed-codec one, sorted, and complete.
func TestMergedDictAttach(t *testing.T) {
	_, tab, _ := codeDomainDiskDB(t)
	md := tab.Col("mode").MergedDict()
	if md == nil {
		t.Fatal("mode column has no merged dictionary")
	}
	if !md.Sorted {
		t.Error("merged dictionary not marked sorted")
	}
	if md.Len() != 7 {
		t.Errorf("merged cardinality %d, want 7", md.Len())
	}
	if !sort.StringsAreSorted(md.Values) {
		t.Errorf("merged dictionary not sorted: %v", md.Values)
	}
	if _, _, ok := tab.Col("mode").CodeDomain(); !ok {
		t.Error("mode column has no code domain")
	}
	if tab.Col("mixed").MergedDict() != nil {
		t.Error("mixed-codec column unexpectedly has a merged dictionary")
	}
	if tab.Col("v").MergedDict() != nil {
		t.Error("integer column unexpectedly has a merged dictionary")
	}
}

// TestCodeDomainPredicates runs every translatable predicate shape over
// both the merged-dict column and the mixed-codec column (per-chunk
// translation with decode-first fallback on raw/prefix chunks) and
// requires identical results to decode-first execution.
func TestCodeDomainPredicates(t *testing.T) {
	db, _, _ := codeDomainDiskDB(t)
	preds := []struct {
		name string
		e    expr.Expr
	}{
		{"eq", expr.EQE(expr.C("mode"), expr.Str("RAIL"))},
		{"eq-missing", expr.EQE(expr.C("mode"), expr.Str("ZEPPELIN"))},
		{"ne", expr.NEE(expr.C("mode"), expr.Str("AIR"))},
		{"ne-missing", expr.NEE(expr.C("mode"), expr.Str("ZEPPELIN"))},
		{"lt", expr.LTE(expr.C("mode"), expr.Str("MAIL"))},
		{"le", expr.LEE(expr.C("mode"), expr.Str("MAIL"))},
		{"gt", expr.GTE(expr.C("mode"), expr.Str("REG"))},
		{"ge", expr.GEE(expr.C("mode"), expr.Str("REG AIR"))},
		{"in", expr.InE(expr.C("mode"), expr.Str("SHIP"), expr.Str("FOB"), expr.Str("NONE"))},
		{"like", expr.LikeE(expr.C("mode"), "%AI%")},
		{"or-same-col", expr.OrE(
			expr.EQE(expr.C("mode"), expr.Str("AIR")),
			expr.EQE(expr.C("mode"), expr.Str("TRUCK")))},
		{"conj-two-cols", expr.AndE(
			expr.GEE(expr.C("mode"), expr.Str("MAIL")),
			expr.GTE(expr.C("v"), expr.Int(5000)))},
		{"mixed-eq", expr.EQE(expr.C("mixed"), expr.Str("RAIL"))},
		{"mixed-like", expr.LikeE(expr.C("mixed"), "key-prefix-0000%")},
		{"mixed-and-mode", expr.AndE(
			expr.EQE(expr.C("mixed"), expr.Str("SHIP")),
			expr.LEE(expr.C("mode"), expr.Str("RAIL")))},
	}
	for _, p := range preds {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/p%d", p.name, par), func(t *testing.T) {
				plan := algebra.NewSelect(algebra.NewScan("events", "mode", "mixed", "v"), p.e)
				code, decode := runBoth(t, db, plan, par)
				assertSameRows(t, p.name, code, decode)
			})
		}
	}
}

// TestCodeDomainCounters asserts the new trace counters fire: code-domain
// predicate evaluations, skipped (never-materialized) values on the
// pushdown path, and decode-first fallbacks on non-dict chunks.
func TestCodeDomainCounters(t *testing.T) {
	db, _, _ := codeDomainDiskDB(t)
	tr := trace.New()
	opts := DefaultOptions()
	opts.Tracer = tr
	plan := algebra.NewSelect(algebra.NewScan("events", "mode", "mixed", "v"),
		expr.EQE(expr.C("mode"), expr.Str("RAIL")))
	if _, err := Run(db, plan, opts); err != nil {
		t.Fatal(err)
	}
	if tr.CounterValue("select_code_domain") == 0 {
		t.Error("select_code_domain counter not recorded")
	}
	if tr.CounterValue("scan_skipped_values") == 0 {
		t.Error("scan_skipped_values counter not recorded (no selection pushdown?)")
	}
	if tr.CounterValue("scan_decoded_values") == 0 {
		t.Error("scan_decoded_values counter not recorded")
	}

	// The mixed column's raw/prefix chunks must take the decode-first path.
	tr2 := trace.New()
	opts.Tracer = tr2
	plan2 := algebra.NewSelect(algebra.NewScan("events", "mixed", "v"),
		expr.EQE(expr.C("mixed"), expr.Str("SHIP")))
	if _, err := Run(db, plan2, opts); err != nil {
		t.Fatal(err)
	}
	if tr2.CounterValue("select_code_domain") == 0 {
		t.Error("per-chunk translation never ran on dict chunks")
	}
	if tr2.CounterValue("select_decode_first") == 0 {
		t.Error("decode-first fallback never ran on raw/prefix chunks")
	}
}

// TestCodeDomainGroupBy checks the group-key rewrite end to end on the
// merged-dict column: identical groups and aggregates, serial and
// parallel, and the rewritten plan no longer hashes strings.
func TestCodeDomainGroupBy(t *testing.T) {
	db, _, _ := codeDomainDiskDB(t)
	plan := algebra.NewOrder(
		algebra.NewAggr(
			algebra.NewSelect(algebra.NewScan("events", "mode", "v"),
				expr.GTE(expr.C("v"), expr.Int(100))),
			[]algebra.NamedExpr{algebra.NE("mode", expr.C("mode"))},
			[]algebra.AggExpr{
				algebra.Count("n"),
				algebra.Sum("sv", expr.C("v")),
				algebra.Min("mn", expr.C("mode")),
			}),
		algebra.Asc(expr.C("mode")))
	for _, par := range []int{1, 2, 8} {
		code, decode := runBoth(t, db, plan, par)
		assertSameRows(t, fmt.Sprintf("groupby p=%d", par), code, decode)
	}

	tr := trace.New()
	opts := DefaultOptions()
	opts.Tracer = tr
	if _, err := Run(db, plan, opts); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Primitives() {
		if s.Name == "map_hash_col" {
			// Hash aggregation may still run, but on the uint8 codes; the
			// tell-tale full-string group materialization is the gather at
			// emit only. Direct aggregation (7 codes -> uint8) should have
			// removed hashing entirely for this single-key group-by.
			t.Errorf("code-domain group-by still hashed group keys")
		}
	}
}

// TestCodeDomainJoin joins two disk tables on dictionary-backed string
// keys with distinct dictionaries (overlapping but unequal value sets) for
// every join kind, comparing against decode-first execution.
func TestCodeDomainJoin(t *testing.T) {
	const n = 4000
	left := make([]string, n)
	lv := make([]int64, n)
	lmodes := []string{"AIR", "FOB", "MAIL", "RAIL", "SHIP", "ONLY-LEFT"}
	rmodes := []string{"AIR", "FOB", "MAIL", "RAIL", "SHIP", "ONLY-RIGHT"}
	right := make([]string, n/2)
	rv := make([]int64, n/2)
	for i := range left {
		left[i] = lmodes[i%len(lmodes)]
		lv[i] = int64(i)
	}
	for i := range right {
		right[i] = rmodes[i%len(rmodes)]
		rv[i] = int64(i * 10)
	}
	lt := colstore.NewTable("lt")
	if err := lt.AddColumn("lmode", vector.String, left); err != nil {
		t.Fatal(err)
	}
	if err := lt.AddColumn("lv", vector.Int64, lv); err != nil {
		t.Fatal(err)
	}
	rt := colstore.NewTable("rt")
	if err := rt.AddColumn("rmode", vector.String, right); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddColumn("rv", vector.Int64, rv); err != nil {
		t.Fatal(err)
	}
	store, err := columnbm.NewStore(t.TempDir(), 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(lt); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(rt); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if _, err := AttachDiskTable(db, store, "lt"); err != nil {
		t.Fatal(err)
	}
	if _, err := AttachDiskTable(db, store, "rt"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("lt")
	if tbl.Col("lmode").MergedDict() == nil {
		t.Fatal("lmode has no merged dictionary; join test would not exercise code keys")
	}
	// Keep the build side small so expansion joins stay manageable.
	rsel := algebra.NewSelect(algebra.NewScan("rt", "rmode", "rv"),
		expr.LTE(expr.C("rv"), expr.Int(300)))
	for _, kind := range []algebra.JoinKind{algebra.Inner, algebra.Semi, algebra.Anti, algebra.LeftOuter, algebra.Mark} {
		j := algebra.NewJoinKind(kind, algebra.NewScan("lt", "lmode", "lv"), rsel,
			algebra.EquiCond{L: "lmode", R: "rmode"})
		if kind == algebra.Mark {
			j = j.WithMark("matched")
		}
		var plan algebra.Node = j
		for _, par := range []int{1, 4} {
			code, decode := runBoth(t, db, plan, par)
			assertSameRows(t, fmt.Sprintf("join %v p=%d", kind, par), code, decode)
		}
	}
}

// TestCodeDomainLeftOuterGroupKey pins the left-outer padding rule: a
// group key flowing from the RIGHT side of a left-outer join must NOT be
// rewritten onto codes — unmatched left rows zero-pad the right columns,
// and a padded code 0 would rehydrate to dictionary value 0 instead of the
// empty string. The "" group must survive identically on both paths.
func TestCodeDomainLeftOuterGroupKey(t *testing.T) {
	db := NewDatabase()
	lt := colstore.NewTable("lo_left")
	if err := lt.AddColumn("k", vector.Int32, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	rt := colstore.NewTable("lo_right")
	if err := rt.AddColumn("rk", vector.Int32, []int32{1, 2}); err != nil {
		t.Fatal(err)
	}
	// First-occurrence order "zeta","alpha": code 0 is "zeta", so folding a
	// padded 0 into the dictionary is observable.
	if err := rt.AddEnumColumn("grp", []string{"zeta", "alpha"}); err != nil {
		t.Fatal(err)
	}
	db.AddTable(lt)
	db.AddTable(rt)
	registerDictTables(db, rt)
	plan := algebra.NewAggr(
		algebra.NewJoinKind(algebra.LeftOuter,
			algebra.NewScan("lo_left", "k"),
			algebra.NewScan("lo_right", "rk", "grp"),
			algebra.EquiCond{L: "k", R: "rk"}),
		[]algebra.NamedExpr{algebra.NE("grp", expr.C("grp"))},
		[]algebra.AggExpr{algebra.Count("n")})
	code, decode := runBoth(t, db, plan, 1)
	assertSameRows(t, "leftouter group key", code, decode)
	found := false
	for i := 0; i < code.NumRows(); i++ {
		if code.Row(i)[0] == "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unmatched left row lost its empty-string group: %v", sortedRows(code))
	}
}

// TestCodeDomainWithDeletions checks the fused scan-select respects the
// deletion list (deleted rows are filtered before predicate evaluation).
func TestCodeDomainWithDeletions(t *testing.T) {
	db, _, n := codeDomainDiskDB(t)
	ds, err := db.Delta("events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 3 {
		if err := ds.Delete(int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	plan := algebra.NewSelect(algebra.NewScan("events", "mode", "v"),
		expr.EQE(expr.C("mode"), expr.Str("SHIP")))
	for _, par := range []int{1, 4} {
		code, decode := runBoth(t, db, plan, par)
		assertSameRows(t, fmt.Sprintf("deletions p=%d", par), code, decode)
	}
}

// TestCodeDomainWithInsertDelta checks the merged-delta fallback: with
// pending inserts the scan-select evaluates decode-first over the merged
// stream, and the group-key rewrite declines (values may be outside the
// compiled dictionaries) — results must stay correct either way.
func TestCodeDomainWithInsertDelta(t *testing.T) {
	db, _, _ := codeDomainDiskDB(t)
	ds, err := db.Delta("events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m := "SHIP"
		if i%5 == 0 {
			m = "TELEPORT" // value absent from every dictionary
		}
		if _, err := ds.Insert([]any{m, fmt.Sprintf("note-%d", i), int64(100000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	plan := algebra.NewSelect(algebra.NewScan("events", "mode", "v"),
		expr.EQE(expr.C("mode"), expr.Str("TELEPORT")))
	code, decode := runBoth(t, db, plan, 1)
	assertSameRows(t, "delta scan", code, decode)
	if code.NumRows() != 10 {
		t.Fatalf("delta rows found: %d, want 10", code.NumRows())
	}
}
