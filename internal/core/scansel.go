package core

import (
	"sort"
	"time"

	"x100/internal/colstore"
	"x100/internal/expr"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// scanSelectOp fuses a Select directly over a Scan, enabling the two
// code-domain scan optimizations of this engine:
//
//   - Code-domain predicates: conjuncts over a single dictionary-backed
//     string column (enum columns, merged-dict ColumnBM columns, and
//     per-chunk dict-coded chunks) are translated into the code domain and
//     evaluated with narrow-native integer select primitives — string
//     equality becomes select_eq_uchr, arbitrary predicates (IN, LIKE,
//     ranges over unsorted dictionaries) become one predicate evaluation
//     per distinct dictionary value plus a byte-lookup per row
//     (select_lookup). Raw and prefix chunks fall back to the decode-first
//     string evaluation per chunk.
//
//   - Selection pushdown into decode: predicate columns are read before the
//     remaining scan columns, so every column read after the predicate only
//     materializes the rows that survived it ("decompress only what you
//     use") via FragReader.VectorSel and selective dictionary gathers.
//
// The delta-bearing merged scan path keeps the decode-first evaluation: it
// materializes logical values anyway, and delta rows may carry dictionary
// values the compiled translation has never seen.
type scanSelectOp struct {
	scan *scanOp
	opts ExecOptions

	codeSteps []*codeStep
	// strPred evaluates the conjuncts that did not translate, over the
	// scan's schema; strCols lists the scan columns it reads.
	strPred *expr.Pred
	strCols []int
	// fullPred is the whole predicate, used on the merged delta path.
	fullPred *expr.Pred

	filled []bool
}

// stepKind tags how a code-domain step evaluates.
type stepKind uint8

const (
	stepCmp   stepKind = iota // compare codes against a translated constant
	stepBits                  // byte-lookup into a precomputed bitmap
	stepChunk                 // per-chunk dictionary: bitmap rebuilt per chunk
	stepNone                  // conjunct can never match (constant false)
)

// codeStep is one translated conjunct.
type codeStep struct {
	kind   stepKind
	colIdx int // scan column index

	// stepCmp: narrow comparison against code.
	op   expr.CmpKind
	code int

	// stepBits: bitmap over the table-level dictionary.
	bits []bool

	// stepChunk: per-chunk translation state. predOnDict evaluates the
	// original string conjunct over a chunk's dictionary values to build
	// the chunk bitmap; strFallback evaluates it decode-first when the
	// chunk is not dict-coded.
	predOnDict  *expr.Pred
	dictSchema  vector.Schema
	strFallback *expr.Pred
	lastFrag    int

	buf []int32
}

// newScanSelectOp fuses pred over the scan. It always applies selection
// pushdown; conjuncts additionally translate into the code domain when
// they touch exactly one dictionary-backed string column.
func newScanSelectOp(op *scanOp, pred expr.Expr, opts ExecOptions) (*scanSelectOp, error) {
	full, err := expr.CompilePred(pred, op.schema, opts.exprOptions())
	if err != nil {
		return nil, err
	}
	s := &scanSelectOp{scan: op, opts: opts, fullPred: full, filled: make([]bool, len(op.cols))}
	var rest []expr.Expr
	for _, cj := range conjuncts(pred, nil) {
		if st := s.translate(cj); st != nil {
			s.codeSteps = append(s.codeSteps, st)
			continue
		}
		rest = append(rest, cj)
	}
	if len(rest) > 0 {
		restPred := rest[0]
		if len(rest) > 1 {
			restPred = expr.AndE(rest...)
		}
		if s.strPred, err = expr.CompilePred(restPred, op.schema, opts.exprOptions()); err != nil {
			return nil, err
		}
		seen := map[int]bool{}
		for _, name := range expr.Columns(restPred, nil) {
			if ci := op.schema.ColIndex(name); ci >= 0 && !seen[ci] {
				seen[ci] = true
				s.strCols = append(s.strCols, ci)
			}
		}
	}
	return s, nil
}

// singleStringCol returns the scan column index when cj references exactly
// one column and that column is a logically read string column.
func (s *scanSelectOp) singleStringCol(cj expr.Expr) (int, bool) {
	names := expr.Columns(cj, nil)
	if len(names) == 0 {
		return -1, false
	}
	for _, n := range names[1:] {
		if n != names[0] {
			return -1, false
		}
	}
	ci := s.scan.schema.ColIndex(names[0])
	if ci < 0 {
		return -1, false
	}
	sc := &s.scan.cols[ci]
	if sc.col == nil || sc.isRowID || sc.rawCode || sc.typ.Physical() != vector.String {
		return -1, false
	}
	return ci, true
}

// translate attempts to turn one conjunct into a code-domain step. nil
// means the conjunct stays on the decode-first path.
func (s *scanSelectOp) translate(cj expr.Expr) *codeStep {
	ci, ok := s.singleStringCol(cj)
	if !ok {
		return nil
	}
	sc := &s.scan.cols[ci]
	if d, _, ok := sc.col.CodeDomain(); ok {
		return s.translateGlobal(cj, ci, d)
	}
	return s.translateChunk(cj, ci)
}

// translateGlobal translates a conjunct against a table-level dictionary
// (enum or merged-dict column): equality and inequality become narrow code
// comparisons; sorted-dictionary ranges become code-range comparisons;
// everything else (IN, LIKE, ranges over insertion-ordered enum
// dictionaries, single-column boolean combinations) becomes a bitmap built
// by evaluating the predicate once per distinct dictionary value.
func (s *scanSelectOp) translateGlobal(cj expr.Expr, ci int, d *colstore.Dict) *codeStep {
	if cmp, cst, ok := colConstCmp(cj); ok {
		switch cmp {
		case expr.EQ:
			code, found := d.Lookup(cst)
			if !found {
				return &codeStep{kind: stepNone, colIdx: ci}
			}
			return &codeStep{kind: stepCmp, colIdx: ci, op: expr.EQ, code: code}
		case expr.NE:
			code, found := d.Lookup(cst)
			if !found {
				// Every dictionary value differs from the constant: the
				// conjunct is always true on base rows. Keep an all-true
				// step so the trace still shows a code-domain evaluation.
				return allTrueStep(ci, d)
			}
			return &codeStep{kind: stepCmp, colIdx: ci, op: expr.NE, code: code}
		case expr.LT, expr.LE, expr.GT, expr.GE:
			if d.Sorted {
				if st := rangeStep(cmp, cst, ci, d); st != nil {
					return st
				}
			}
		}
	}
	bits := s.bitsFor(cj, ci, d.Strings())
	if bits == nil {
		return nil
	}
	return &codeStep{kind: stepBits, colIdx: ci, bits: bits}
}

// rangeStep translates a range comparison over a sorted dictionary into a
// code-range comparison: codes of a sorted dictionary are order-isomorphic
// to their strings, so "col < v" is exactly "code < #values(< v)". It works
// on one captured value array (Strings), so a concurrent dictionary append
// cannot desynchronize the search and the boundary test.
func rangeStep(op expr.CmpKind, v string, ci int, d *colstore.Dict) *codeStep {
	vals := d.Strings()
	below := sort.SearchStrings(vals, v) // number of values < v
	atOrBelow := below
	if below < len(vals) && vals[below] == v {
		atOrBelow++
	}
	// Express every range as "code < bound" or "code >= bound".
	var bound int
	ge := false
	switch op {
	case expr.LT:
		bound = below
	case expr.LE:
		bound = atOrBelow
	case expr.GE:
		bound, ge = below, true
	case expr.GT:
		bound, ge = atOrBelow, true
	}
	switch {
	case !ge && bound <= 0, ge && bound >= len(vals):
		return &codeStep{kind: stepNone, colIdx: ci}
	case !ge && bound >= len(vals), ge && bound <= 0:
		return allTrueStep(ci, d)
	case ge:
		return &codeStep{kind: stepCmp, colIdx: ci, op: expr.GE, code: bound}
	default:
		return &codeStep{kind: stepCmp, colIdx: ci, op: expr.LT, code: bound}
	}
}

// allTrueStep is a bitmap step every dictionary code passes: the conjunct
// is a tautology on base rows but stays visible in the trace counters.
func allTrueStep(ci int, d *colstore.Dict) *codeStep {
	bits := make([]bool, d.Len())
	for i := range bits {
		bits[i] = true
	}
	return &codeStep{kind: stepBits, colIdx: ci, bits: bits}
}

// colConstCmp matches cj as a comparison between the conjunct's column and
// a string constant, normalizing the constant to the right-hand side.
func colConstCmp(cj expr.Expr) (expr.CmpKind, string, bool) {
	cmp, ok := cj.(*expr.Cmp)
	if !ok {
		return 0, "", false
	}
	if _, lcol := cmp.L.(*expr.Col); lcol {
		if cst, rconst := cmp.R.(*expr.Const); rconst {
			if v, isStr := cst.Val.(string); isStr {
				return cmp.Op, v, true
			}
		}
		return 0, "", false
	}
	if cst, lconst := cmp.L.(*expr.Const); lconst {
		if _, rcol := cmp.R.(*expr.Col); rcol {
			if v, isStr := cst.Val.(string); isStr {
				return flipCmpKind(cmp.Op), v, true
			}
		}
	}
	return 0, "", false
}

// dictPred compiles cj against a one-column {name: string} schema so it can
// be evaluated over dictionary values instead of rows.
func (s *scanSelectOp) dictPred(cj expr.Expr, ci int) (*expr.Pred, vector.Schema) {
	schema := vector.Schema{{Name: s.scan.schema[ci].Name, Type: vector.String}}
	// Dictionary evaluation is off the per-row hot path; keep it out of the
	// primitive trace so per-row primitive counts stay meaningful.
	p, err := expr.CompilePred(cj, schema, expr.Options{Fuse: s.opts.Fuse})
	if err != nil {
		return nil, nil
	}
	return p, schema
}

// bitsFor evaluates cj over the dictionary values and returns the
// qualifying-code bitmap, or nil when the conjunct cannot be compiled
// against the single-column schema.
func (s *scanSelectOp) bitsFor(cj expr.Expr, ci int, values []string) []bool {
	p, schema := s.dictPred(cj, ci)
	if p == nil {
		return nil
	}
	return evalDictBits(p, schema, values)
}

// evalDictBits runs a compiled single-column predicate over the dictionary
// values and records the qualifying codes.
func evalDictBits(p *expr.Pred, schema vector.Schema, values []string) []bool {
	bits := make([]bool, len(values))
	if len(values) == 0 {
		return bits
	}
	b := &vector.Batch{Schema: schema, Vecs: []*vector.Vector{vector.FromStrings(values)}, N: len(values)}
	for _, i := range p.Select(b) {
		bits[i] = true
	}
	return bits
}

// translateChunk prepares a per-chunk code-domain step for a plain string
// column whose ColumnBM chunks may be dict-coded: the chunk's dictionary is
// read instead of its rows, the conjunct is evaluated once per distinct
// value, and rows filter through a byte lookup. Chunks that are not
// dict-coded (raw/prefix, or in-memory fragments) evaluate decode-first.
func (s *scanSelectOp) translateChunk(cj expr.Expr, ci int) *codeStep {
	sc := &s.scan.cols[ci]
	hasDict := false
	for i := 0; i < sc.col.NumFrags(); i++ {
		f := sc.col.Frag(i)
		if _, ok := f.(colstore.DictFragment); !ok {
			continue
		}
		if h, ok := f.(colstore.DictHint); ok && !h.MayServeDict() {
			continue // manifest says raw/prefix: no dictionary to serve
		}
		hasDict = true
		break
	}
	if !hasDict {
		return nil
	}
	p, schema := s.dictPred(cj, ci)
	if p == nil {
		return nil
	}
	fallback, err := expr.CompilePred(cj, s.scan.schema, s.opts.exprOptions())
	if err != nil {
		return nil
	}
	return &codeStep{
		kind: stepChunk, colIdx: ci,
		predOnDict: p, dictSchema: schema, strFallback: fallback,
		lastFrag: -1,
	}
}

func (s *scanSelectOp) Schema() vector.Schema { return s.scan.schema }

func (s *scanSelectOp) Open() error {
	if err := s.scan.Open(); err != nil {
		return err
	}
	bs := s.opts.batchSize()
	s.fullPred.Reserve(bs)
	if s.strPred != nil {
		s.strPred.Reserve(bs)
	}
	for _, st := range s.codeSteps {
		if cap(st.buf) < bs {
			st.buf = make([]int32, bs)
		}
		st.lastFrag = -1
		if st.strFallback != nil {
			st.strFallback.Reserve(bs)
		}
	}
	return nil
}

func (s *scanSelectOp) Close() error { return s.scan.Close() }

// apply runs one code step over the batch range, returning the surviving
// selection (explicit, possibly empty). filled tracks per-batch column
// materialization for the decode-first chunk fallback.
func (st *codeStep) apply(s *scanSelectOp, lo, hi int, sel []int32) ([]int32, error) {
	sc := &s.scan.cols[st.colIdx]
	k := hi - lo
	nin := k
	if sel != nil {
		nin = len(sel)
	}
	tr := s.opts.Tracer
	if st.kind == stepNone {
		tr.RecordCounter("select_code_domain", int64(nin))
		return st.buf[:0], nil
	}
	if st.kind == stepChunk {
		codes, dict, ok, err := sc.reader.DictVector(lo, hi)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Decode-first fallback for raw/prefix chunks: materialize the
			// column (only surviving rows when dict-backed upstream) and
			// evaluate the string conjunct.
			if err := s.fill(st.colIdx, lo, hi, sel); err != nil {
				return nil, err
			}
			b := s.scan.batch
			saved := b.Sel
			b.Sel = sel
			out := st.strFallback.Select(b)
			b.Sel = saved
			tr.RecordCounter("select_decode_first", int64(nin))
			return out, nil
		}
		if fs, _ := sc.col.FragSpan(lo); fs != st.lastFrag {
			st.bits = evalDictBits(st.predOnDict, st.dictSchema, dict)
			st.lastFrag = fs
		}
		res := st.buf[:k]
		t0 := tr.Now()
		var n int
		if codes.Typ == vector.UInt8 {
			n = primitives.SelectLookupCol(res, codes.UInt8s(), st.bits, sel)
		} else {
			n = primitives.SelectLookupCol(res, codes.UInt16s(), st.bits, sel)
		}
		tr.RecordPrimitiveSince(lookupPrimName(codes.Typ), t0, nin, nin+4*n)
		tr.RecordCounter("select_code_domain", int64(nin))
		return res[:n], nil
	}
	codes, err := sc.reader.CodeVector(lo, hi)
	if err != nil {
		return nil, err
	}
	res := st.buf[:k]
	t0 := tr.Now()
	var n int
	switch st.kind {
	case stepBits:
		if codes.Typ == vector.UInt8 {
			n = primitives.SelectLookupCol(res, codes.UInt8s(), st.bits, sel)
		} else {
			n = primitives.SelectLookupCol(res, codes.UInt16s(), st.bits, sel)
		}
		tr.RecordPrimitiveSince(lookupPrimName(codes.Typ), t0, nin, nin+4*n)
	default: // stepCmp
		n = selectCodeCmp(res, codes, st.op, st.code, sel)
		tr.RecordPrimitiveSince(cmpPrimName(st.op, codes.Typ), t0, nin, nin+4*n)
	}
	tr.RecordCounter("select_code_domain", int64(nin))
	return res[:n], nil
}

func lookupPrimName(t vector.Type) string {
	if t == vector.UInt8 {
		return "select_lookup_uchr_col"
	}
	return "select_lookup_usht_col"
}

func cmpPrimName(op expr.CmpKind, t vector.Type) string {
	kind := "uchr"
	if t == vector.UInt16 {
		kind = "usht"
	}
	var o string
	switch op {
	case expr.EQ:
		o = "eq"
	case expr.NE:
		o = "ne"
	case expr.LT:
		o = "lt"
	default:
		o = "ge"
	}
	return "select_" + o + "_" + kind + "_col_" + kind + "_val"
}

// selectCodeCmp applies a narrow-native comparison of the code vector
// against a translated constant code.
func selectCodeCmp(res []int32, codes *vector.Vector, op expr.CmpKind, code int, sel []int32) int {
	if codes.Typ == vector.UInt8 {
		in := codes.UInt8s()
		switch op {
		case expr.EQ:
			return primitives.SelectEQColVal(res, in, uint8(code), sel)
		case expr.NE:
			return primitives.SelectNEColVal(res, in, uint8(code), sel)
		case expr.LT:
			return primitives.SelectLTColVal(res, in, uint8(code), sel)
		default:
			return primitives.SelectGEColVal(res, in, uint8(code), sel)
		}
	}
	in := codes.UInt16s()
	switch op {
	case expr.EQ:
		return primitives.SelectEQColVal(res, in, uint16(code), sel)
	case expr.NE:
		return primitives.SelectNEColVal(res, in, uint16(code), sel)
	case expr.LT:
		return primitives.SelectLTColVal(res, in, uint16(code), sel)
	default:
		return primitives.SelectGEColVal(res, in, uint16(code), sel)
	}
}

// fill materializes scan column ci for the current batch once.
func (s *scanSelectOp) fill(ci, lo, hi int, sel []int32) error {
	if s.filled[ci] {
		return nil
	}
	if err := s.scan.fillCol(ci, lo, hi, sel); err != nil {
		return err
	}
	s.filled[ci] = true
	return nil
}

func (s *scanSelectOp) Next() (*vector.Batch, error) {
	if s.scan.dsnap.NumDeltaRows() > 0 {
		// Merged delta path: logical values are materialized anyway, so the
		// whole predicate evaluates decode-first.
		for {
			b, err := s.scan.nextMerged()
			if err != nil || b == nil {
				return nil, err
			}
			t0 := time.Now()
			sel := s.fullPred.Select(b)
			s.opts.Tracer.RecordCounter("select_decode_first", int64(b.Rows()))
			s.opts.Tracer.RecordOperator("Select", len(sel), time.Since(t0))
			if len(sel) == 0 {
				continue
			}
			b.Sel = sel
			return b, nil
		}
	}
	hasDel := s.scan.dsnap.NumDeleted() > 0
	for {
		lo, hi, ok := s.scan.claimRange()
		if !ok {
			return nil, nil
		}
		t0 := time.Now()
		k := hi - lo
		b := s.scan.batch
		b.N = k
		b.Sel = nil
		for i := range s.filled {
			s.filled[i] = false
		}
		var sel []int32
		dead := false
		if hasDel {
			sel = s.scan.deletionSel(lo, hi)
			if len(sel) == 0 {
				continue
			}
			if len(sel) == k {
				sel = nil
			}
		}
		for _, st := range s.codeSteps {
			out, err := st.apply(s, lo, hi, sel)
			if err != nil {
				return nil, err
			}
			sel = out
			if len(sel) == 0 {
				dead = true
				break
			}
		}
		if dead {
			s.opts.Tracer.RecordOperator("Select", 0, time.Since(t0))
			continue
		}
		if s.strPred != nil {
			for _, ci := range s.strCols {
				if err := s.fill(ci, lo, hi, sel); err != nil {
					return nil, err
				}
			}
			nin := k
			if sel != nil {
				nin = len(sel)
			}
			b.Sel = sel
			sel = s.strPred.Select(b)
			s.opts.Tracer.RecordCounter("select_decode_first", int64(nin))
			if len(sel) == 0 {
				s.opts.Tracer.RecordOperator("Select", 0, time.Since(t0))
				continue
			}
		}
		// Materialize the remaining columns only for surviving rows.
		for i := range s.scan.cols {
			if err := s.fill(i, lo, hi, sel); err != nil {
				return nil, err
			}
		}
		b.Sel = sel
		s.opts.Tracer.RecordOperator("Select", b.Rows(), time.Since(t0))
		return b, nil
	}
}
