package core

import (
	"fmt"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/expr"
	"x100/internal/vector"
)

// stringPruneDB persists a table with a sorted dates-as-strings column in
// 1000-row chunks and attaches it disk-backed, so each chunk carries string
// min/max bounds from the manifest.
func stringPruneDB(t *testing.T) (*Database, int) {
	t.Helper()
	const n = 10000
	days := make([]string, n)
	vals := make([]int64, n)
	for i := range days {
		// 100 rows per "day", so chunk bounds are tight and distinct.
		days[i] = fmt.Sprintf("2024-%02d-%02d", 1+(i/100)/28, 1+(i/100)%28)
		vals[i] = int64(i)
	}
	tab := colstore.NewTable("events")
	if err := tab.AddColumn("day", vector.String, days); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("v", vector.Int64, vals); err != nil {
		t.Fatal(err)
	}
	store, err := columnbm.NewStore(t.TempDir(), 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTable(tab); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if _, err := AttachDiskTable(db, store, "events"); err != nil {
		t.Fatal(err)
	}
	return db, n
}

// TestStringChunkPruning asserts per-chunk string min/max bounds narrow a
// scan below a string range predicate, and that the pruned scan still
// returns exactly the matching rows.
func TestStringChunkPruning(t *testing.T) {
	db, n := stringPruneDB(t)
	pred := expr.GEE(expr.C("day"), expr.Str("2024-03-01"))

	opts := DefaultOptions()
	opts.snaps = db.newSnapSet()
	op, err := newScanOp(db, "events", []string{"day", "v"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	applySummaryBounds(op.view, pred, op)
	if op.lo == 0 {
		t.Errorf("scan lower bound not pruned: lo=%d", op.lo)
	}
	if op.hi != n {
		t.Errorf("scan upper bound moved: hi=%d, want %d", op.hi, n)
	}

	// An upper-bounded predicate prunes the tail instead.
	opLE, err := newScanOp(db, "events", []string{"day"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	applySummaryBounds(opLE.view, expr.LTE(expr.C("day"), expr.Str("2024-02-01")), opLE)
	if opLE.hi == n {
		t.Errorf("scan upper bound not pruned: hi=%d", opLE.hi)
	}

	// The pruned plan still returns exactly the matching rows.
	plan := algebra.NewAggr(
		algebra.NewSelect(algebra.NewScan("events", "day", "v"), pred),
		nil, []algebra.AggExpr{algebra.Count("n")})
	res, err := Run(db, plan, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		if fmt.Sprintf("2024-%02d-%02d", 1+(i/100)/28, 1+(i/100)%28) >= "2024-03-01" {
			want++
		}
	}
	if got := res.Row(0)[0].(int64); got != int64(want) {
		t.Errorf("pruned scan counted %d rows, want %d", got, want)
	}
}
