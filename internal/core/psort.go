package core

import (
	"sync"
	"time"

	"x100/internal/algebra"
	"x100/internal/sched"
	"x100/internal/trace"
	"x100/internal/vector"
)

// parallelOrderOp executes Order/TopN in two phases: N workers each drain a
// partition pipeline through a private orderOp (producing a sorted run; for
// TopN each run is already pruned to its local top N, a superset of its
// contribution to the global top N), then a k-way heap merge interleaves the
// runs into one globally ordered stream. Only the merge is serial, and it is
// O(output * log N) comparisons instead of the full O(input log input) sort.
//
// Rows that compare equal on the sort keys may interleave differently from
// the serial (stable) sort, because morsel scheduling decides which run a
// row lands in — the output is deterministic in sort-key order but not in
// tie order.
type parallelOrderOp struct {
	runs    []*orderOp
	keys    []algebra.OrdExpr
	limit   int
	sources []*morselSource
	extra   []Operator
	tracers []*trace.Collector
	slots   []*sched.Slot
	opts    ExecOptions
	schema  vector.Schema

	done    bool
	merged  []runRow // globally sorted (run, physical row) pairs
	emitPos int
}

// runRow addresses one row of one sorted run: row is the physical index in
// that run's builders (a value of its perm).
type runRow struct {
	run int32
	row int32
}

func newParallelOrderOp(db *Database, input algebra.Node, keys []algebra.OrdExpr, limit int, opts ExecOptions) (Operator, error) {
	parts, ctx, tracers, slots, err := newParallelPipelines(db, input, opts)
	if err != nil {
		return nil, err
	}
	runs := make([]*orderOp, len(parts))
	for i, p := range parts {
		w := opts
		if tracers[i] != nil {
			w.Tracer = tracers[i]
		}
		runs[i], err = newOrderOp(p, keys, limit, w)
		if err != nil {
			return nil, err
		}
	}
	return &parallelOrderOp{
		runs:    runs,
		keys:    keys,
		limit:   limit,
		sources: ctx.sources(),
		extra:   ctx.extra,
		tracers: tracers,
		slots:   slots,
		opts:    opts,
		schema:  parts[0].Schema().Clone(),
	}, nil
}

func (op *parallelOrderOp) Schema() vector.Schema { return op.schema }

func (op *parallelOrderOp) Open() error {
	op.done = false
	op.merged = nil
	op.emitPos = 0
	for _, src := range op.sources {
		src.reset()
	}
	return nil
}

func (op *parallelOrderOp) Close() error {
	var firstErr error
	for _, r := range op.runs {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range op.extra {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, tr := range op.tracers {
		op.opts.Tracer.Merge(tr)
	}
	return firstErr
}

func (op *parallelOrderOp) Next() (*vector.Batch, error) {
	if !op.done {
		if err := op.run(); err != nil {
			return nil, err
		}
		op.done = true
	}
	total := len(op.merged)
	if op.emitPos >= total {
		return nil, nil
	}
	k := min(op.opts.batchSize(), total-op.emitPos)
	chunk := op.merged[op.emitPos : op.emitPos+k]
	op.emitPos += k
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	for c := range op.schema {
		nb := newColBuilder(op.schema[c].Type)
		for _, rr := range chunk {
			nb.appendRow(op.runs[rr.run].cols[c], int(rr.row))
		}
		out.Vecs[c] = nb.vec()
	}
	return out, nil
}

// run sorts the partition runs on worker goroutines, then k-way merges them.
func (op *parallelOrderOp) run() error {
	t0 := time.Now()
	errs := make([]error, len(op.runs))
	var wg sync.WaitGroup
	for i, r := range op.runs {
		wg.Add(1)
		go func(i int, r *orderOp) {
			defer wg.Done()
			slot := op.slots[i]
			slot.Bind(op.opts.life.stop())
			if !slot.Acquire() {
				errs[i] = op.opts.life.check()
				return
			}
			defer slot.Release()
			if err := r.Open(); err != nil {
				errs[i] = err
				return
			}
			if err := r.consume(); err != nil {
				errs[i] = err
				return
			}
			r.done = true
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	op.merge()
	for _, tr := range op.tracers {
		op.opts.Tracer.Merge(tr)
	}
	op.tracers = nil
	name := "Order(parallel-merge)"
	if op.limit > 0 {
		name = "TopN(parallel-merge)"
	}
	op.opts.Tracer.RecordOperator(name, len(op.merged), time.Since(t0))
	return nil
}

// merge interleaves the sorted runs with a binary min-heap of run indices,
// stopping at limit rows for TopN.
func (op *parallelOrderOp) merge() {
	total := 0
	heads := make([]int, len(op.runs))
	var heap []int32
	for i, r := range op.runs {
		total += len(r.perm)
		if len(r.perm) > 0 {
			heap = append(heap, int32(i))
		}
	}
	if op.limit > 0 {
		total = min(total, op.limit)
	}
	less := func(a, b int32) bool {
		ia := int(op.runs[a].perm[heads[a]])
		ib := int(op.runs[b].perm[heads[b]])
		for c, k := range op.keys {
			ca, cb := op.runs[a].keyCols[c], op.runs[b].keyCols[c]
			if ca.equalCross(ia, cb, ib) {
				continue
			}
			if k.Desc {
				return cb.lessCross(ib, ca, ia)
			}
			return ca.lessCross(ia, cb, ib)
		}
		return a < b // deterministic tie-break by run id
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heap) {
				return
			}
			m := l
			if r := l + 1; r < len(heap) && less(heap[r], heap[l]) {
				m = r
			}
			if !less(heap[m], heap[i]) {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	op.merged = make([]runRow, 0, total)
	for len(op.merged) < total && len(heap) > 0 {
		r := heap[0]
		op.merged = append(op.merged, runRow{run: r, row: op.runs[r].perm[heads[r]]})
		heads[r]++
		if heads[r] >= len(op.runs[r].perm) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
}
