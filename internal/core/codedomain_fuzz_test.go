package core

import (
	"fmt"
	"testing"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/expr"
	"x100/internal/vector"
)

// FuzzCodeDomainPredicate cross-checks string -> code predicate
// translation against decode-first evaluation on a table whose chunks are
// deliberately adversarial: tiny chunks (so predicates span many per-chunk
// dictionary boundaries), per-chunk value pools that shift with the chunk
// index (so chunk-local dictionaries overlap but differ, and chunk-local
// codes mean different strings in different chunks), and periodic
// incompressible chunks (so the per-chunk path interleaves with the
// decode-first fallback inside one scan). Any divergence between the two
// evaluation paths is a bug in the translation.
func FuzzCodeDomainPredicate(f *testing.F) {
	f.Add(uint64(1), byte(0), byte(0), false)
	f.Add(uint64(2), byte(1), byte(13), true)
	f.Add(uint64(3), byte(4), byte(200), false)
	f.Add(uint64(42), byte(6), byte(77), true)
	f.Add(uint64(99), byte(7), byte(5), false)
	f.Fuzz(func(t *testing.T, seed uint64, opb, pick byte, missing bool) {
		const (
			n         = 2000
			chunkRows = 173 // prime: chunk boundaries never align with value periods
		)
		rng := seed | 1
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		vals := make([]string, n)
		for i := range vals {
			chunk := i / chunkRows
			if chunk%4 == 3 {
				// Incompressible chunk: unique long strings -> raw codec.
				vals[i] = fmt.Sprintf("raw-%016x-%016x", next(), next())
				continue
			}
			// Low-cardinality pool shifted per chunk: dictionaries overlap
			// across boundaries but are never identical.
			pool := 5 + chunk%7
			vals[i] = fmt.Sprintf("w%03d", (chunk*3+int(next()%uint64(pool)))%64)
		}
		tab := colstore.NewTable("fz")
		if err := tab.AddColumn("s", vector.String, vals); err != nil {
			t.Fatal(err)
		}
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i)
		}
		if err := tab.AddColumn("id", vector.Int64, ids); err != nil {
			t.Fatal(err)
		}
		store, err := columnbm.NewStore(t.TempDir(), chunkRows, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.SaveTable(tab); err != nil {
			t.Fatal(err)
		}
		db := NewDatabase()
		if _, err := AttachDiskTable(db, store, "fz"); err != nil {
			t.Fatal(err)
		}

		cst := vals[int(pick)%n]
		if missing {
			cst = "nowhere-" + cst
		}
		col := expr.C("s")
		var pred expr.Expr
		switch opb % 8 {
		case 0:
			pred = expr.EQE(col, expr.Str(cst))
		case 1:
			pred = expr.NEE(col, expr.Str(cst))
		case 2:
			pred = expr.LTE(col, expr.Str(cst))
		case 3:
			pred = expr.LEE(col, expr.Str(cst))
		case 4:
			pred = expr.GTE(col, expr.Str(cst))
		case 5:
			pred = expr.GEE(col, expr.Str(cst))
		case 6:
			pred = expr.InE(col, expr.Str(cst), expr.Str("w001"), expr.Str("w010"))
		default:
			if len(cst) > 3 {
				cst = cst[:3]
			}
			pred = expr.LikeE(col, "%"+cst+"%")
		}
		plan := algebra.NewSelect(algebra.NewScan("fz", "s", "id"), pred)
		code, decode := runBoth(t, db, plan, 1)
		assertSameRows(t, fmt.Sprintf("op=%d cst=%q", opb%8, cst), code, decode)
	})
}
