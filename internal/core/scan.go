package core

import (
	"fmt"
	"strings"

	"x100/internal/colstore"
	"x100/internal/delta"
	"x100/internal/primitives"
	"x100/internal/vector"
)

// CodeSuffix marks a request for the raw enumeration codes of an enum
// column: scanning "l_returnflag#" yields the uint8/uint16 codes instead of
// decoded values. The matching dictionary is exposed as the mapping table
// "l_returnflag#dict" with a single "value" column, so plans can group by
// the small code domain (DirectAggr) and rehydrate values with a Fetch1Join
// — exactly the paper's enum machinery (Sections 4.3, 5.1).
const CodeSuffix = "#"

// DictSuffix names dictionary mapping tables.
const DictSuffix = "#dict"

type scanCol struct {
	name    string
	col     *colstore.Column
	isRowID bool
	rawCode bool
	// dictRead marks a logical read served through the code domain: enum
	// columns and merged-dict string columns scan their narrow codes and
	// gather the decoded values through the shared dictionary — only for
	// rows that survive the selection vector (late materialization).
	dictRead bool
	typ      vector.Type // output type
	// reader streams the column's base fragments, materializing at most
	// one (decompressed ColumnBM chunk or in-memory slice) at a time.
	reader *colstore.FragReader
	// loc resolves single row ids on the merged delta path without pinning
	// (built lazily: most scans never need it).
	loc *colstore.FragLocator
	// decode buffer for dictionary columns read logically.
	buf *vector.Vector
}

// newReader creates the column's fragment reader: a "<col>#" scan of a
// merged-dict string column needs the code-mode reader (its Vector serves
// codes); every other column — including dictRead columns, which ask for
// codes explicitly via CodeVector — uses the plain reader.
func (sc *scanCol) newReader() *colstore.FragReader {
	if sc.col == nil {
		return nil
	}
	if sc.rawCode && !sc.col.IsEnum() {
		return sc.col.CodeReader()
	}
	return sc.col.Reader()
}

// domainValues returns the shared dictionary of a dictRead/rawCode string
// column.
func (sc *scanCol) domainDict() *colstore.Dict {
	if d, _, ok := sc.col.CodeDomain(); ok {
		return d
	}
	return sc.col.Dict // float enums
}

type scanOp struct {
	db *Database
	// view is the query's frozen view of the table (column set, base row
	// count); dsnap is the matching delta snapshot. Both come from the
	// plan's snapshot set, so a concurrent checkpoint or compaction never
	// changes what this scan reads.
	view   *tableView
	dsnap  *delta.Snapshot
	cols   []scanCol
	schema vector.Schema
	opts   ExecOptions
	lo, hi int // base-fragment row bounds (summary-index pruning)

	// source, when non-nil, makes this a partitioned scan: instead of
	// walking [lo,hi) sequentially the operator claims row-range morsels
	// from the shared dispenser, so sibling scans on other goroutines
	// balance the work dynamically.
	source   *morselSource
	morselHi int

	pos      int
	deltaPos int
	rowIDBuf []int32
	selBuf   []int32
	batch    *vector.Batch
}

func newScanOp(db *Database, table string, cols []string, opts ExecOptions) (*scanOp, error) {
	v, err := opts.snaps.view(table)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		for _, c := range v.cols {
			cols = append(cols, c.Name)
		}
	}
	op := &scanOp{db: db, view: v, dsnap: v.delta, opts: opts, lo: 0, hi: v.n}
	for _, name := range cols {
		sc := scanCol{name: name}
		switch {
		case name == "#rowid":
			sc.isRowID = true
			sc.typ = vector.Int32
		case strings.HasSuffix(name, CodeSuffix):
			base := strings.TrimSuffix(name, CodeSuffix)
			c := v.col(base)
			if c == nil {
				return nil, fmt.Errorf("core: table %s has no column %q", table, base)
			}
			sc.col = c
			sc.rawCode = true
			switch {
			case c.IsEnum():
				sc.typ = c.PhysType()
			default:
				_, phys, ok := c.CodeDomain()
				if !ok {
					return nil, fmt.Errorf("core: %s.%s is not an enum or dict-compressed column", table, base)
				}
				sc.typ = phys
			}
		default:
			c := v.col(name)
			if c == nil {
				return nil, fmt.Errorf("core: table %s has no column %q", table, name)
			}
			sc.col = c
			sc.typ = c.Typ
			if c.IsEnum() {
				sc.dictRead = true
			} else if _, _, ok := c.CodeDomain(); ok {
				sc.dictRead = true
			}
		}
		op.cols = append(op.cols, sc)
		op.schema = append(op.schema, vector.Field{Name: name, Type: sc.typ})
	}
	return op, nil
}

func (s *scanOp) Schema() vector.Schema { return s.schema }

func (s *scanOp) Open() error {
	s.pos = s.lo
	s.morselHi = 0
	if s.source != nil {
		// Partitioned scan: rows come from claimed morsels, not [lo,hi).
		s.pos = 0
	}
	s.deltaPos = 0
	// Buffers are sized to the actual batch length: with vector sizes far
	// beyond the table size (Figure 10's right edge) a batch is at most the
	// table itself.
	n := min(s.opts.batchSize(), max(s.hi-s.lo, 1))
	s.rowIDBuf = make([]int32, n)
	s.selBuf = make([]int32, 0, n)
	for i := range s.cols {
		sc := &s.cols[i]
		sc.reader = sc.newReader()
		if sc.dictRead {
			sc.buf = vector.New(sc.typ, n)
		}
	}
	s.batch = &vector.Batch{Schema: s.schema, Vecs: make([]*vector.Vector, len(s.cols))}
	// Charge the scan's decode/row-id buffers against the query budget.
	s.opts.life.reserve(batchBytes(len(s.cols)+1, n))
	return nil
}

// Close flushes the readers' decode counters into the tracer.
func (s *scanOp) Close() error {
	tr := s.opts.Tracer
	for i := range s.cols {
		if r := s.cols[i].reader; r != nil {
			tr.RecordCounter("scan_decoded_values", r.Stats.DecodedValues)
			tr.RecordCounter("scan_decoded_bytes", r.Stats.DecodedBytes)
			tr.RecordCounter("scan_skipped_values", r.Stats.SkippedValues)
			tr.RecordCounter("scan_skipped_bytes", r.Stats.SkippedBytes)
			r.Stats = colstore.ReaderStats{}
		}
	}
	return nil
}

// claimRange returns the next batch row range [lo, hi), clamped so that no
// batch spans a fragment boundary: each column's reader then holds exactly
// one materialized fragment per batch. ok=false means the scan (or its
// morsel source) is exhausted.
func (s *scanOp) claimRange() (int, int, bool) {
	limit := s.hi
	if s.source != nil {
		if s.pos >= s.morselHi {
			// A morsel claim is the natural scheduling quantum: offer the
			// worker's admission slot to the oldest waiter so concurrent
			// queries rotate over the shared pool. Yield only fails when
			// the query was abandoned while re-queued — end the scan.
			if !s.opts.slot.Yield() {
				return 0, 0, false
			}
			mlo, mhi, ok := s.source.claim()
			if !ok {
				return 0, 0, false
			}
			s.pos, s.morselHi = mlo, mhi
		}
		limit = s.morselHi
	}
	if s.pos >= limit {
		return 0, 0, false
	}
	lo := s.pos
	hi := min(lo+s.opts.batchSize(), limit)
	for i := range s.cols {
		if c := s.cols[i].col; c != nil {
			if _, fe := c.FragSpan(lo); fe < hi {
				hi = fe
			}
		}
	}
	s.pos = hi
	return lo, hi, true
}

// deletionSel fills the scan's selection buffer with the positions of
// [lo,hi) not on the deletion list.
func (s *scanOp) deletionSel(lo, hi int) []int32 {
	sel := s.selBuf[:0]
	for j := 0; j < hi-lo; j++ {
		if !s.dsnap.IsDeleted(int32(lo + j)) {
			sel = append(sel, int32(j))
		}
	}
	s.selBuf = sel
	return sel
}

// fillCol materializes column i of the current batch over [lo,hi). sel
// (batch-relative positions, nil = all) is the selection known so far:
// dictionary-backed columns decode only the selected rows.
func (s *scanOp) fillCol(i, lo, hi int, sel []int32) error {
	sc := &s.cols[i]
	k := hi - lo
	switch {
	case sc.isRowID:
		ids := s.rowIDBuf[:k]
		for j := range ids {
			ids[j] = int32(lo + j)
		}
		s.batch.Vecs[i] = vector.FromInt32s(ids)
	case sc.dictRead:
		v, err := s.decodeDict(sc, lo, hi, sel)
		if err != nil {
			return err
		}
		s.batch.Vecs[i] = v
	case sc.rawCode:
		v, err := sc.reader.Vector(lo, hi)
		if err != nil {
			return err
		}
		v.Typ = sc.typ
		s.batch.Vecs[i] = v
	default:
		v, err := sc.reader.VectorSel(lo, hi, sel)
		if err != nil {
			return err
		}
		v.Typ = sc.typ
		s.batch.Vecs[i] = v
	}
	return nil
}

func (s *scanOp) Next() (*vector.Batch, error) {
	// Insert deltas require the value-at-a-time merged scan; a bare
	// deletion list is handled below on the vectorized path with a
	// selection vector, so deletions neither break partitioned scans nor
	// force the slow path. The choice is made on the captured snapshot,
	// so it cannot flip mid-query when a checkpoint absorbs the delta.
	if s.dsnap.NumDeltaRows() > 0 {
		return s.nextMerged()
	}
	hasDel := s.dsnap.NumDeleted() > 0
	for {
		// Batch boundary: the cancellation/budget check of this pipeline.
		if err := s.opts.life.check(); err != nil {
			return nil, err
		}
		lo, hi, ok := s.claimRange()
		if !ok {
			return nil, nil
		}
		k := hi - lo
		b := s.batch
		b.N = k
		b.Sel = nil
		var sel []int32
		if hasDel {
			sel = s.deletionSel(lo, hi)
			if len(sel) == 0 {
				continue // fully deleted batch: pull the next range
			}
			if len(sel) == k {
				sel = nil
			}
		}
		for i := range s.cols {
			if err := s.fillCol(i, lo, hi, sel); err != nil {
				return nil, err
			}
		}
		b.Sel = sel
		return b, nil
	}
}

// decodeDict gathers dictionary values through the code vector — the
// automatic Fetch1Join against the mapping table (map_fetch_uchr_col in
// Table 5 of the paper). With a selection vector only surviving rows are
// materialized: the decompress-only-what-you-use scan path.
func (s *scanOp) decodeDict(sc *scanCol, lo, hi int, sel []int32) (*vector.Vector, error) {
	k := hi - lo
	out := sc.buf.Slice(0, k)
	out.Typ = sc.typ
	codes, err := sc.reader.CodeVector(lo, hi)
	if err != nil {
		return nil, err
	}
	tr := s.opts.Tracer
	t0 := tr.Now()
	var name string
	dict := sc.domainDict()
	if sc.typ.Physical() == vector.Float64 {
		base := dict.Floats()
		if codes.Typ == vector.UInt8 {
			primitives.GatherColU8(out.Float64s(), base, codes.UInt8s(), sel)
			name = "map_fetch_uchr_col_flt_col"
		} else {
			primitives.GatherColU16(out.Float64s(), base, codes.UInt16s(), sel)
			name = "map_fetch_usht_col_flt_col"
		}
	} else {
		base := dict.Strings()
		if codes.Typ == vector.UInt8 {
			primitives.GatherColU8(out.Strings(), base, codes.UInt8s(), sel)
			name = "map_fetch_uchr_col_str_col"
		} else {
			primitives.GatherColU16(out.Strings(), base, codes.UInt16s(), sel)
			name = "map_fetch_usht_col_str_col"
		}
	}
	live := k
	if sel != nil {
		live = len(sel)
		width := int64(16) // string header estimate
		if sc.typ.Physical() == vector.Float64 {
			width = 8
		}
		tr.RecordCounter("scan_skipped_values", int64(k-live))
		tr.RecordCounter("scan_skipped_bytes", int64(k-live)*width)
	}
	tr.RecordPrimitiveSince(name, t0, live, live+8*live)
	return out, nil
}

// nextMerged is the delta-aware scan path: base rows minus the deletion
// list, then insert-delta rows minus deletions. It is value-at-a-time; the
// paper keeps deltas small (a small percentile of the table) before
// reorganizing, so this path never dominates. Base values resolve through
// per-column FragLocators, so even this path never pins disk columns.
func (s *scanOp) nextMerged() (*vector.Batch, error) {
	if err := s.opts.life.check(); err != nil {
		return nil, err
	}
	bs := s.opts.batchSize()
	baseN := s.view.n
	type srcRow struct{ id int32 }
	rows := make([]srcRow, 0, bs)
	for len(rows) < bs && s.pos < s.hi {
		id := int32(s.pos)
		s.pos++
		if !s.dsnap.IsDeleted(id) {
			rows = append(rows, srcRow{id: id})
		}
	}
	for len(rows) < bs && s.deltaPos < s.dsnap.NumDeltaRows() {
		id := int32(baseN + s.deltaPos)
		s.deltaPos++
		if !s.dsnap.IsDeleted(id) {
			rows = append(rows, srcRow{id: id})
		}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	b := &vector.Batch{Schema: s.schema, Vecs: make([]*vector.Vector, len(s.cols)), N: len(rows)}
	for ci := range s.cols {
		sc := &s.cols[ci]
		if sc.col != nil && sc.loc == nil {
			sc.loc = sc.col.Locator(0)
		}
		v := vector.New(sc.typ, len(rows))
		for j, r := range rows {
			switch {
			case sc.isRowID:
				v.Int32s()[j] = r.id
			case int(r.id) < baseN:
				var val any
				var err error
				switch {
				case sc.rawCode && !sc.col.IsEnum():
					// Merged-dict column: the physical value is the string;
					// translate it through the shared code domain (base rows
					// are covered by the attach-time merged dictionary).
					val, err = sc.loc.Value(int(r.id))
					if err == nil {
						val, err = sc.lookupCode(val.(string))
					}
				case sc.rawCode:
					val, err = sc.loc.PhysValue(int(r.id))
				default:
					val, err = sc.loc.Value(int(r.id))
				}
				if err != nil {
					return nil, err
				}
				v.Set(j, val)
			default:
				val, err := s.deltaValue(sc, int(r.id)-baseN)
				if err != nil {
					return nil, err
				}
				v.Set(j, val)
			}
		}
		b.Vecs[ci] = v
	}
	return b, nil
}

func (s *scanOp) deltaValue(sc *scanCol, j int) (any, error) {
	ti := 0
	for i, c := range s.view.cols {
		if c == sc.col {
			ti = i
			break
		}
	}
	val := s.dsnap.DeltaValue(ti, j)
	if !sc.rawCode {
		return val, nil
	}
	// Encode the uncompressed delta value into the dictionary code space.
	// Enum dictionaries are append-only and grow with the delta (the
	// existing insert contract); the attach-time merged dictionary of a
	// dict-compressed disk column is a shared immutable snapshot — growing
	// it would desynchronize compiled predicate translations and the
	// registered "<col>#dict" mapping table — so an unseen value is an
	// explicit error (checkpoint or reorganize first, then re-attach).
	if d := sc.col.Dict; d != nil {
		if d.Typ == vector.Float64 {
			return sc.encodeCode(d.CodeF64(val.(float64))), nil
		}
		return sc.encodeCode(d.Code(val.(string))), nil
	}
	return sc.lookupCode(val.(string))
}

// lookupCode translates a string through a merged-dict column's shared
// dictionary without inserting.
func (sc *scanCol) lookupCode(s string) (any, error) {
	code, ok := sc.domainDict().Lookup(s)
	if !ok {
		return nil, fmt.Errorf("core: column %s: value %q is not in the attached merged dictionary (checkpoint/reorganize and re-attach before scanning %s%s)",
			sc.col.Name, s, sc.col.Name, CodeSuffix)
	}
	return sc.encodeCode(code), nil
}

// encodeCode casts a dictionary code to the column's code vector type.
func (sc *scanCol) encodeCode(code int) any {
	if sc.typ == vector.UInt8 {
		return uint8(code)
	}
	return uint16(code)
}

// arrayOp generates all coordinates of an N-dimensional array in
// column-major dimension order (paper Section 4.1.2).
type arrayOp struct {
	dims   []int
	schema vector.Schema
	opts   ExecOptions
	total  int
	pos    int
}

func newArrayOp(dims []int, opts ExecOptions) *arrayOp {
	total := 1
	schema := make(vector.Schema, len(dims))
	for i, d := range dims {
		total *= d
		schema[i] = vector.Field{Name: fmt.Sprintf("dim%d", i), Type: vector.Int32}
	}
	if len(dims) == 0 {
		total = 0
	}
	return &arrayOp{dims: dims, schema: schema, total: total, opts: opts}
}

func (a *arrayOp) Schema() vector.Schema { return a.schema }
func (a *arrayOp) Open() error           { a.pos = 0; return nil }
func (a *arrayOp) Close() error          { return nil }

func (a *arrayOp) Next() (*vector.Batch, error) {
	if a.pos >= a.total {
		return nil, nil
	}
	bs := a.opts.batchSize()
	if bs <= 0 {
		bs = vector.DefaultBatchSize
	}
	k := min(bs, a.total-a.pos)
	b := &vector.Batch{Schema: a.schema, Vecs: make([]*vector.Vector, len(a.dims)), N: k}
	for d := range a.dims {
		b.Vecs[d] = vector.New(vector.Int32, k)
	}
	for j := 0; j < k; j++ {
		idx := a.pos + j
		// Column-major: dim0 varies fastest.
		for d := 0; d < len(a.dims); d++ {
			b.Vecs[d].Int32s()[j] = int32(idx % a.dims[d])
			idx /= a.dims[d]
		}
	}
	a.pos += k
	return b, nil
}
