package core

import (
	"fmt"
	"time"

	"x100/internal/algebra"
	"x100/internal/colstore"
	"x100/internal/delta"
	"x100/internal/expr"
	"x100/internal/vector"
)

// fetch1JoinOp fetches columns of a referenced table positionally by row id
// (Section 4.1.2): the vectorized inner loop is a gather through the row-id
// vector. Enum columns decode through their dictionary in the same pass
// (double indirection: dict[codes[rowid]]). Disk-backed columns are never
// pinned: each fetched column gathers through a colstore.FragLocator that
// resolves row ids to (fragment, offset) by binary search over the
// fragment grid and holds at most a small LRU of decoded chunks, so fetch
// joins against directories larger than RAM stay within bounded memory.
type fetch1JoinOp struct {
	input   Operator
	node    *algebra.Fetch1Join
	view    *tableView
	dsnap   *delta.Snapshot
	prog    *expr.Prog
	rowPass int // input column index when RowID is a plain column
	opts    ExecOptions
	schema  vector.Schema
	cols    []*colstore.Column
	locs    []*colstore.FragLocator
	bufs    []*vector.Vector
}

func newFetch1JoinOp(db *Database, input Operator, node *algebra.Fetch1Join, opts ExecOptions) (*fetch1JoinOp, error) {
	v, err := opts.snaps.view(node.Table)
	if err != nil {
		return nil, err
	}
	op := &fetch1JoinOp{input: input, node: node, view: v, dsnap: v.delta, opts: opts, rowPass: -1}
	in := input.Schema()
	if c, ok := node.RowID.(*expr.Col); ok {
		if i := in.ColIndex(c.Name); i >= 0 && in[i].Type.Physical() == vector.Int32 {
			op.rowPass = i
		}
	}
	if op.rowPass < 0 {
		prog, err := expr.Compile(node.RowID, in, opts.exprOptions())
		if err != nil {
			return nil, err
		}
		if prog.OutType().Physical() != vector.Int32 {
			return nil, fmt.Errorf("core: fetch1join rowid type %v, want int32", prog.OutType())
		}
		op.prog = prog
	}
	op.schema = in.Clone()
	for i, cname := range node.Cols {
		c := v.col(cname)
		if c == nil {
			return nil, fmt.Errorf("core: table %s has no column %q", node.Table, cname)
		}
		op.cols = append(op.cols, c)
		name := cname
		if i < len(node.As) && node.As[i] != "" {
			name = node.As[i]
		}
		op.schema = append(op.schema, vector.Field{Name: name, Type: c.Typ})
	}
	return op, nil
}

func (op *fetch1JoinOp) Schema() vector.Schema { return op.schema }

func (op *fetch1JoinOp) Open() error {
	if err := op.input.Open(); err != nil {
		return err
	}
	op.bufs = make([]*vector.Vector, len(op.cols))
	op.locs = make([]*colstore.FragLocator, len(op.cols))
	for i, c := range op.cols {
		op.bufs[i] = vector.New(c.Typ, 0)
		// One locator per fetched column per operator instance: parallel
		// plans build one fetch op per worker, so locators (like readers)
		// are single-goroutine by construction.
		op.locs[i] = c.Locator(0)
	}
	return nil
}

func (op *fetch1JoinOp) Close() error { return op.input.Close() }

func (op *fetch1JoinOp) Next() (*vector.Batch, error) {
	b, err := op.input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	t0 := time.Now()
	var ids []int32
	if op.rowPass >= 0 {
		ids = b.Vecs[op.rowPass].Int32s()
	} else {
		ids = op.prog.Run(b).Int32s()
	}
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, 0, len(op.schema)), Sel: b.Sel, N: b.N}
	out.Vecs = append(out.Vecs, b.Vecs...)
	hasDelta := op.dsnap.NumDeltaRows() > 0
	for ci, col := range op.cols {
		dst := op.bufs[ci]
		if dst.Len() < b.N {
			dst = vector.New(col.Typ, b.N)
			op.bufs[ci] = dst
		}
		v := dst.Slice(0, b.N)
		v.Typ = col.Typ
		tr := op.opts.Tracer.Now()
		if hasDelta {
			err = op.fetchWithDelta(v, ci, ids, b.Sel, b.N)
		} else {
			err = op.locs[ci].Gather(v, ids, b.Sel, b.N)
		}
		if err != nil {
			return nil, err
		}
		op.opts.Tracer.RecordPrimitiveSince(
			fmt.Sprintf("map_fetch_sint_col_%s_col", typeAbbrevCore(col.Typ)),
			tr, b.Rows(), (4+col.Typ.Width())*b.Rows())
		out.Vecs = append(out.Vecs, v)
	}
	op.opts.Tracer.RecordOperator("Fetch1Join("+op.node.Table+")", b.Rows(), time.Since(t0))
	return out, nil
}

// FetchColumn gathers col values (decoding enums) at the given row ids into
// dst, for the live positions. It is exported for the baseline engines,
// which perform the same positional joins on whole pinned columns; the
// vectorized fetch operators gather through FragLocators instead and never
// pin. Pinning a disk-backed column can fail (e.g. a corrupt chunk), which
// surfaces as a returned error rather than a panic out of Data.
func FetchColumn(dst *vector.Vector, col *colstore.Column, ids []int32, sel []int32, n int) error {
	if _, err := col.Pin(); err != nil {
		return fmt.Errorf("core: fetch %s: %w", col.Name, err)
	}
	if col.IsEnum() {
		fetchEnum(dst, col, ids, sel, n)
		return nil
	}
	switch col.Typ.Physical() {
	case vector.Bool:
		gatherLoop(dst.Bools(), col.Data().([]bool), ids, sel, n)
	case vector.UInt8:
		gatherLoop(dst.UInt8s(), col.Data().([]uint8), ids, sel, n)
	case vector.UInt16:
		gatherLoop(dst.UInt16s(), col.Data().([]uint16), ids, sel, n)
	case vector.Int32:
		gatherLoop(dst.Int32s(), col.Data().([]int32), ids, sel, n)
	case vector.Int64:
		gatherLoop(dst.Int64s(), col.Data().([]int64), ids, sel, n)
	case vector.Float64:
		gatherLoop(dst.Float64s(), col.Data().([]float64), ids, sel, n)
	case vector.String:
		gatherLoop(dst.Strings(), col.Data().([]string), ids, sel, n)
	}
	return nil
}

func gatherLoop[T any](dst []T, base []T, ids []int32, sel []int32, n int) {
	if sel != nil {
		for _, i := range sel {
			dst[i] = base[ids[i]]
		}
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = base[ids[i]]
	}
}

func fetchEnum(dst *vector.Vector, col *colstore.Column, ids []int32, sel []int32, n int) {
	if col.Dict.Typ == vector.Float64 {
		out := dst.Float64s()
		base := col.Dict.Floats()
		switch codes := col.Data().(type) {
		case []uint8:
			enumGather(out, base, codes, ids, sel, n)
		case []uint16:
			enumGather(out, base, codes, ids, sel, n)
		}
		return
	}
	out := dst.Strings()
	base := col.Dict.Strings()
	switch codes := col.Data().(type) {
	case []uint8:
		enumGather(out, base, codes, ids, sel, n)
	case []uint16:
		enumGather(out, base, codes, ids, sel, n)
	}
}

func enumGather[T any, C uint8 | uint16](dst []T, base []T, codes []C, ids []int32, sel []int32, n int) {
	if sel != nil {
		for _, i := range sel {
			dst[i] = base[codes[ids[i]]]
		}
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = base[codes[ids[i]]]
	}
}

// fetchWithDelta is the slow path when the referenced table has pending
// inserts: row ids at or beyond the captured base resolve into the delta
// snapshot, base ids resolve value-at-a-time through the column's locator
// (still never pinning).
func (op *fetch1JoinOp) fetchWithDelta(dst *vector.Vector, ci int, ids []int32, sel []int32, n int) error {
	baseN := op.view.n
	col := op.cols[ci]
	loc := op.locs[ci]
	ti := 0
	for i, c := range op.view.cols {
		if c == col {
			ti = i
			break
		}
	}
	get := func(id int32) (any, error) {
		if int(id) < baseN {
			return loc.Value(int(id))
		}
		return op.dsnap.DeltaValue(ti, int(id)-baseN), nil
	}
	if sel != nil {
		for _, i := range sel {
			v, err := get(ids[i])
			if err != nil {
				return err
			}
			dst.Set(int(i), v)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		v, err := get(ids[i])
		if err != nil {
			return err
		}
		dst.Set(i, v)
	}
	return nil
}

// fetchNJoinOp expands each input row into the contiguous range of
// referenced-table rows given by a range index, fetching columns
// positionally (the FetchNJoin of Section 4.1.2). Like Fetch1Join it
// gathers through per-column FragLocators, so disk-backed fetch targets
// decode at most a few chunks at a time instead of pinning.
type fetchNJoinOp struct {
	input    Operator
	node     *algebra.FetchNJoin
	view     *tableView
	del      *delta.Snapshot // non-nil when the fetch target has deletions
	ranges   *rangeLookup
	opts     ExecOptions
	schema   vector.Schema
	rangeCol int
	cols     []*colstore.Column
	locs     []*colstore.FragLocator

	curBatch  *vector.Batch
	lastBatch *vector.Batch
	curLive   int
	curFetch  int32 // next referenced row within current range (-1 = start)
	curHi     int32
	leftIdx   []int32
	fetchIdx  []int32
}

type rangeLookup struct{ starts []int32 }

// rng returns the referenced-row range of id. Ids beyond the index (rows
// the referencing table gained after the index was derived) map to an
// empty range rather than a panic.
func (r *rangeLookup) rng(id int32) (int32, int32) {
	if int(id)+1 >= len(r.starts) {
		return 0, 0
	}
	return r.starts[id], r.starts[id+1]
}

func newFetchNJoinOp(db *Database, input Operator, node *algebra.FetchNJoin, opts ExecOptions) (*fetchNJoinOp, error) {
	v, err := opts.snaps.view(node.Table)
	if err != nil {
		return nil, err
	}
	ri := v.rangeIndexAny()
	if ri == nil {
		return nil, fmt.Errorf("core: no range index registered for table %s", node.Table)
	}
	in := input.Schema()
	rc := in.ColIndex(node.RangeOf)
	if rc < 0 {
		return nil, fmt.Errorf("core: fetchnjoin input has no column %q", node.RangeOf)
	}
	op := &fetchNJoinOp{
		input: input, node: node, view: v,
		ranges: &rangeLookup{starts: ri.Starts}, opts: opts, rangeCol: rc,
	}
	if v.delta.NumDeleted() > 0 {
		op.del = v.delta
	}
	op.schema = in.Clone()
	for i, cname := range node.Cols {
		c := v.col(cname)
		if c == nil {
			return nil, fmt.Errorf("core: table %s has no column %q", node.Table, cname)
		}
		op.cols = append(op.cols, c)
		name := cname
		if i < len(node.As) && node.As[i] != "" {
			name = node.As[i]
		}
		op.schema = append(op.schema, vector.Field{Name: name, Type: c.Typ})
	}
	return op, nil
}

func (op *fetchNJoinOp) Schema() vector.Schema { return op.schema }

func (op *fetchNJoinOp) Open() error {
	op.curBatch = nil
	op.curLive = 0
	op.curFetch = -1
	bs := op.opts.batchSize()
	op.leftIdx = make([]int32, 0, bs)
	op.fetchIdx = make([]int32, 0, bs)
	op.locs = make([]*colstore.FragLocator, len(op.cols))
	for i, c := range op.cols {
		op.locs[i] = c.Locator(0)
	}
	return op.input.Open()
}

func (op *fetchNJoinOp) Close() error { return op.input.Close() }

func (op *fetchNJoinOp) Next() (*vector.Batch, error) {
	t0 := time.Now()
	bs := op.opts.batchSize()
	op.leftIdx = op.leftIdx[:0]
	op.fetchIdx = op.fetchIdx[:0]
	for len(op.leftIdx) < bs {
		if op.curBatch == nil {
			if len(op.leftIdx) > 0 {
				break
			}
			b, err := op.input.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			op.curBatch = b
			op.curLive = 0
			op.curFetch = -1
		}
		b := op.curBatch
		if op.curLive >= b.Rows() {
			op.lastBatch = b
			op.curBatch = nil
			continue
		}
		pos := b.LiveRow(op.curLive)
		if op.curFetch < 0 {
			id := b.Vecs[op.rangeCol].Int32s()[pos]
			op.curFetch, op.curHi = op.ranges.rng(id)
		}
		for op.curFetch < op.curHi && len(op.leftIdx) < bs {
			if op.del != nil && op.del.IsDeleted(op.curFetch) {
				op.curFetch++
				continue
			}
			op.leftIdx = append(op.leftIdx, int32(pos))
			op.fetchIdx = append(op.fetchIdx, op.curFetch)
			op.curFetch++
		}
		if op.curFetch >= op.curHi {
			op.curLive++
			op.curFetch = -1
		}
	}
	if len(op.leftIdx) == 0 {
		return nil, nil
	}
	b := op.curBatch
	if b == nil {
		b = op.lastBatch
	}
	nl := len(b.Vecs)
	k := len(op.leftIdx)
	out := &vector.Batch{Schema: op.schema, Vecs: make([]*vector.Vector, len(op.schema)), N: k}
	for c := 0; c < nl; c++ {
		v := vector.New(op.schema[c].Type, k)
		v.Gather(b.Vecs[c], op.leftIdx)
		v.Typ = op.schema[c].Type
		out.Vecs[c] = v
	}
	hasDelta := op.view.delta.NumDeltaRows() > 0
	for i, col := range op.cols {
		v := vector.New(col.Typ, k)
		var err error
		if hasDelta {
			err = op.fetchWithDelta(v, i, op.fetchIdx, k)
		} else {
			err = op.locs[i].Gather(v, op.fetchIdx, nil, k)
		}
		if err != nil {
			return nil, err
		}
		v.Typ = col.Typ
		out.Vecs[nl+i] = v
	}
	op.opts.Tracer.RecordOperator("FetchNJoin("+op.node.Table+")", k, time.Since(t0))
	return out, nil
}

// fetchWithDelta mirrors fetch1JoinOp.fetchWithDelta: a range index derived
// while the referenced table had pending inserts addresses delta-resident
// rows past the captured base, which resolve through the delta snapshot.
func (op *fetchNJoinOp) fetchWithDelta(dst *vector.Vector, ci int, ids []int32, n int) error {
	baseN := op.view.n
	col := op.cols[ci]
	loc := op.locs[ci]
	ti := 0
	for i, c := range op.view.cols {
		if c == col {
			ti = i
			break
		}
	}
	for i := 0; i < n; i++ {
		id := ids[i]
		if int(id) < baseN {
			v, err := loc.Value(int(id))
			if err != nil {
				return err
			}
			dst.Set(i, v)
			continue
		}
		dst.Set(i, op.view.delta.DeltaValue(ti, int(id)-baseN))
	}
	return nil
}
