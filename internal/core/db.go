// Package core implements the X100 vectorized query engine — the primary
// contribution of Boncz, Zukowski & Nes (CIDR 2005). Execution follows a
// Volcano-style pull pipeline whose unit of exchange is a vector.Batch of
// ~1000 values per column; all data-touching work happens inside the
// vectorized primitives of internal/primitives, so per-tuple interpretation
// overhead is amortized over whole vectors.
package core

import (
	"fmt"
	"sort"

	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/delta"
	"x100/internal/sindex"
	"x100/internal/vector"
)

// Durability selects how updates to disk-attached tables survive a crash.
type Durability int

const (
	// DurabilityGroup (the default) logs every insert/delete to the
	// table's write-ahead log and group-commits the fsync before the call
	// returns: an acknowledged update survives a crash.
	DurabilityGroup Durability = iota
	// DurabilityAsync logs every update but defers the fsync to the next
	// group commit or checkpoint: a crash may lose the most recent
	// (unsynced) updates, never the log's prefix.
	DurabilityAsync
	// DurabilityCheckpoint is the legacy mode: no write-ahead log; updates
	// since the last Checkpoint die with the process.
	DurabilityCheckpoint
)

// Database bundles the storage-layer state the engines execute against: the
// column catalog, per-table delta stores, summary indices and range (join)
// indices. Join indices over FK paths are materialized as ordinary int32
// row-id columns of the fact tables, exactly like MonetDB's positional-join
// columns; plans reference them by name in Fetch1Join.
type Database struct {
	Catalog *colstore.Catalog
	deltas  map[string]*delta.Store
	// summaries: table -> column -> typed summary index.
	sumI32 map[string]map[string]*sindex.Summary[int32]
	sumF64 map[string]map[string]*sindex.Summary[float64]
	// rangeIdx: fetched-table -> referenced-table -> range index.
	rangeIdx map[string]map[string]*sindex.RangeIndex
	// disk: tables attached from a ColumnBM directory, with the store they
	// came from (the checkpoint write-back target) and how many deletions
	// the committed manifest already records.
	disk map[string]*diskAttachment
	// durability governs WAL logging of disk-attached tables. It must be
	// chosen before AttachDiskTable: attaching decides whether a log is
	// opened and replayed.
	durability Durability
}

type diskAttachment struct {
	store *columnbm.Store
	// wal is the table's write-ahead log; nil under
	// DurabilityCheckpoint.
	wal *columnbm.WAL
	// persistedDel is the size of the deletion list in the committed
	// manifest; checkpoints only rewrite the manifest when the list (or the
	// insert delta) has grown past it. Deletion lists only grow, so the
	// count identifies the persisted set.
	persistedDel int
}

// NewDatabase creates a database over an empty catalog.
func NewDatabase() *Database {
	return &Database{
		Catalog:  colstore.NewCatalog(),
		deltas:   make(map[string]*delta.Store),
		sumI32:   make(map[string]map[string]*sindex.Summary[int32]),
		sumF64:   make(map[string]map[string]*sindex.Summary[float64]),
		rangeIdx: make(map[string]map[string]*sindex.RangeIndex),
		disk:     make(map[string]*diskAttachment),
	}
}

// SetDurability selects the durability mode for disk-attached tables.
// Call it before AttachDiskTable: the mode decides whether an attach opens
// (and replays) the table's write-ahead log.
func (db *Database) SetDurability(d Durability) { db.durability = d }

// Durability returns the database's durability mode.
func (db *Database) Durability() Durability { return db.durability }

// Insert appends one row (boxed logical values, schema order) to a table,
// returning its row id. For a disk-attached table with a write-ahead log
// the row is validated, logged (and under DurabilityGroup fsynced) before
// it is applied, so an acknowledged insert survives a restart.
func (db *Database) Insert(table string, row []any) (int32, error) {
	ds, err := db.Delta(table)
	if err != nil {
		return 0, err
	}
	// Validate BEFORE logging: a record that reaches the log must always
	// apply, both now and at replay.
	if err := ds.CheckRow(row); err != nil {
		return 0, err
	}
	if att := db.disk[table]; att != nil && att.wal != nil {
		if err := att.wal.LogInsert(row, db.durability == DurabilityGroup); err != nil {
			return 0, err
		}
	}
	return ds.Insert(row)
}

// Delete marks a row id deleted, write-ahead logging it like Insert.
func (db *Database) Delete(table string, rowID int32) error {
	ds, err := db.Delta(table)
	if err != nil {
		return err
	}
	if err := ds.CheckDelete(rowID); err != nil {
		return err
	}
	if att := db.disk[table]; att != nil && att.wal != nil {
		if err := att.wal.LogDelete(rowID, db.durability == DurabilityGroup); err != nil {
			return err
		}
	}
	return ds.Delete(rowID)
}

// Update deletes rowID and inserts row (the paper's delete+insert update),
// logged as one atomic write-ahead record: a replay applies both halves or
// neither.
func (db *Database) Update(table string, rowID int32, row []any) (int32, error) {
	ds, err := db.Delta(table)
	if err != nil {
		return 0, err
	}
	if err := ds.CheckDelete(rowID); err != nil {
		return 0, err
	}
	if err := ds.CheckRow(row); err != nil {
		return 0, err
	}
	if att := db.disk[table]; att != nil && att.wal != nil {
		if err := att.wal.LogUpdate(rowID, row, db.durability == DurabilityGroup); err != nil {
			return 0, err
		}
	}
	return ds.Update(rowID, row)
}

// WalStatus reports one disk-attached table's write-ahead-log and store
// counters (WalStatuses).
type WalStatus struct {
	Table string
	Wal   columnbm.WALStats
	Store columnbm.StoreStats
}

// WalStatuses returns WAL/recovery counters for every disk-attached table,
// sorted by table name. Tables without a log (DurabilityCheckpoint) report
// zero WAL counters but live store counters.
func (db *Database) WalStatuses() []WalStatus {
	out := make([]WalStatus, 0, len(db.disk))
	for name, att := range db.disk {
		st := WalStatus{Table: name, Store: att.store.Stats()}
		if att.wal != nil {
			st.Wal = att.wal.Stats()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// AddTable registers a table and creates its delta store. Re-registering a
// name drops any disk attachment recorded under it: the new table is not
// the one the old chunk directory describes, so checkpoints must not write
// back there (AttachDiskTable re-records its attachment after calling
// this).
func (db *Database) AddTable(t *colstore.Table) {
	db.Catalog.Add(t)
	db.deltas[t.Name] = delta.NewStore(t)
	if att := db.disk[t.Name]; att != nil && att.wal != nil {
		att.wal.Close()
	}
	delete(db.disk, t.Name)
}

// Table returns the named base table.
func (db *Database) Table(name string) (*colstore.Table, error) {
	return db.Catalog.Table(name)
}

// Delta returns the delta store of a table (created on first use).
func (db *Database) Delta(name string) (*delta.Store, error) {
	if d, ok := db.deltas[name]; ok {
		return d, nil
	}
	t, err := db.Catalog.Table(name)
	if err != nil {
		return nil, err
	}
	d := delta.NewStore(t)
	db.deltas[name] = d
	return d, nil
}

// Checkpoint absorbs a table's pending insert delta into new base
// fragments (preserving row ids; the deletion list survives) and refreshes
// any summary indices over the grown base. For a table attached from a
// ColumnBM directory the checkpoint is durable: the delta is written back
// to the directory as new compressed chunks, the deletion list is recorded,
// and the manifest is extended atomically — re-attaching after a restart
// sees every checkpointed row and deletion. The new chunks re-attach to the
// live table as lazily decoded disk fragments, so the table stays within
// bounded memory. done=false means the delta store declined (an enum
// dictionary outgrew its code width) and the table keeps its deltas.
func (db *Database) Checkpoint(table string) (bool, error) {
	ds, err := db.Delta(table)
	if err != nil {
		return false, err
	}
	if att := db.disk[table]; att != nil {
		return db.checkpointDisk(table, ds, att)
	}
	if ds.NumDeltaRows() == 0 {
		return true, nil
	}
	done, err := ds.Checkpoint()
	if err != nil || !done {
		return done, err
	}
	return true, db.refreshSummaries(table)
}

// checkpointDisk is the durable checkpoint of a disk-attached table: write
// the delta back through the store, then re-attach the new chunks.
func (db *Database) checkpointDisk(table string, ds *delta.Store, att *diskAttachment) (bool, error) {
	if ds.NumDeltaRows() == 0 && ds.NumDeleted() == att.persistedDel {
		// Read-only (or already fully persisted) table: a checkpoint is a
		// no-op and must not touch the directory.
		return true, nil
	}
	t, err := db.Table(table)
	if err != nil {
		return false, err
	}
	parts, done, err := ds.Parts()
	if err != nil || !done {
		return done, err
	}
	// Appending fragments drops the attach-time merged dictionaries
	// (colstore cannot assume new fragments share the code domain).
	// Snapshot them first so they can be refreshed incrementally below —
	// code-domain execution must survive an append+query cycle.
	mdicts := columnbm.SnapshotMergedDicts(t)
	frags, err := att.store.AppendTable(t, parts, ds.SortedDeleted())
	if err != nil {
		// Nothing was committed (the manifest rename is the single commit
		// point), so the delta stays pending and scans remain correct.
		return false, err
	}
	if parts != nil {
		if err := t.AppendFragments(frags); err != nil {
			return false, err
		}
		ds.ClearInserts()
		if err := att.store.RefreshMergedDicts(t, mdicts); err != nil {
			return false, err
		}
		// The "<col>#dict" mapping tables must track the (possibly
		// rebuilt) merged dictionaries.
		registerDictTables(db, t)
	}
	att.persistedDel = ds.NumDeleted()
	if att.wal != nil {
		// The manifest commit advanced the WAL epoch, so the logged records
		// are absorbed: start a fresh log. A failed rotation is reported
		// (the checkpoint itself is committed) and retried on the next
		// append; until then a restart discards the stale-epoch log.
		if err := att.wal.Rotate(); err != nil {
			return false, err
		}
	}
	return true, db.refreshSummaries(table)
}

// refreshSummaries rebuilds the summary indices registered over a table
// (after its base fragments changed).
func (db *Database) refreshSummaries(table string) error {
	for col, si := range db.sumI32[table] {
		if err := db.BuildSummaryIndex(table, col, si.Granule); err != nil {
			return err
		}
	}
	for col, si := range db.sumF64[table] {
		if err := db.BuildSummaryIndex(table, col, si.Granule); err != nil {
			return err
		}
	}
	return nil
}

// Reorganize rewrites a table's base to absorb all deltas: deleted rows are
// dropped, delta rows appended, enum columns re-encoded. For a disk-attached
// table the compacted result is also written back to the ColumnBM directory
// as a fresh chunk-file generation (committed by one atomic manifest
// rename, with the persisted deletion list cleared) and re-attached
// fragment-backed, so the table keeps scanning off disk chunks within
// bounded memory. Summary indices and enum dictionary mapping tables are
// rebuilt; positional join indices over the table are NOT adjusted — as
// with the in-memory Reorganize, callers re-derive them when row ids moved.
func (db *Database) Reorganize(table string) error {
	ds, err := db.Delta(table)
	if err != nil {
		return err
	}
	if err := ds.Reorganize(); err != nil {
		return err
	}
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	if att := db.disk[table]; att != nil {
		if err := att.store.RewriteTable(t); err != nil {
			return err
		}
		// Swap the memory-resident rewrite for the freshly attached
		// fragment-backed version (same *Table identity: the delta store
		// and catalog keep their pointers).
		nt, err := att.store.AttachTable(table)
		if err != nil {
			return err
		}
		t.Cols, t.N, t.ChunkRows = nt.Cols, nt.N, nt.ChunkRows
		att.persistedDel = 0
		if att.wal != nil {
			// The rewrite renumbered row ids; the old log (stale epoch
			// after the manifest commit) must never replay.
			if err := att.wal.Rotate(); err != nil {
				return err
			}
		}
	}
	registerDictTables(db, t)
	return db.refreshSummaries(table)
}

// TableSchema implements algebra.Resolver.
func (db *Database) TableSchema(name string) (vector.Schema, error) {
	t, err := db.Catalog.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// CodeColumnType implements algebra.CodeResolver: the physical type of a
// code-domain column's code vector — enum columns and merged-dict string
// columns both expose "<column>#" scan targets.
func (db *Database) CodeColumnType(table, column string) (vector.Type, error) {
	t, err := db.Catalog.Table(table)
	if err != nil {
		return vector.Unknown, err
	}
	c := t.Col(column)
	if c == nil {
		return vector.Unknown, fmt.Errorf("core: table %s has no column %q", table, column)
	}
	if c.IsEnum() {
		return c.PhysType(), nil
	}
	if _, phys, ok := c.CodeDomain(); ok {
		return phys, nil
	}
	return vector.Unknown, fmt.Errorf("core: %s.%s is not an enum or dict-compressed column", table, column)
}

// BuildSummaryIndex builds a summary index over a clustered column of a
// table (paper Section 4.3). Supported column types: Date/Int32, Float64.
func (db *Database) BuildSummaryIndex(table, column string, granule int) error {
	t, err := db.Catalog.Table(table)
	if err != nil {
		return err
	}
	c := t.Col(column)
	if c == nil {
		return fmt.Errorf("core: table %s has no column %q", table, column)
	}
	// Materialize with a returned error first: the column may be backed by
	// disk fragments, and a corrupt chunk must not panic out of Data().
	if _, err := c.Pin(); err != nil {
		return fmt.Errorf("core: summary index %s.%s: %w", table, column, err)
	}
	switch c.PhysType() {
	case vector.Int32:
		m := db.sumI32[table]
		if m == nil {
			m = make(map[string]*sindex.Summary[int32])
			db.sumI32[table] = m
		}
		m[column] = sindex.BuildSummary(c.Data().([]int32), granule)
	case vector.Float64:
		m := db.sumF64[table]
		if m == nil {
			m = make(map[string]*sindex.Summary[float64])
			db.sumF64[table] = m
		}
		m[column] = sindex.BuildSummary(c.Data().([]float64), granule)
	default:
		return fmt.Errorf("core: summary index over %v column %s.%s unsupported", c.Typ, table, column)
	}
	return nil
}

// SummaryI32 returns the int32/date summary index of table.column, if any.
func (db *Database) SummaryI32(table, column string) *sindex.Summary[int32] {
	return db.sumI32[table][column]
}

// SummaryF64 returns the float summary index of table.column, if any.
func (db *Database) SummaryF64(table, column string) *sindex.Summary[float64] {
	return db.sumF64[table][column]
}

// RegisterRangeIndex attaches a range index: rows of fetchedTable are
// clustered by refTable row id (FetchNJoin input).
func (db *Database) RegisterRangeIndex(fetchedTable, refTable string, ri *sindex.RangeIndex) {
	m := db.rangeIdx[fetchedTable]
	if m == nil {
		m = make(map[string]*sindex.RangeIndex)
		db.rangeIdx[fetchedTable] = m
	}
	m[refTable] = ri
}

// RangeIndex returns the range index of fetchedTable clustered by refTable.
func (db *Database) RangeIndex(fetchedTable, refTable string) *sindex.RangeIndex {
	return db.rangeIdx[fetchedTable][refTable]
}

// RangeIndexAny returns the sole range index of fetchedTable when exactly
// one is registered (plans that omit the referenced table).
func (db *Database) RangeIndexAny(fetchedTable string) *sindex.RangeIndex {
	m := db.rangeIdx[fetchedTable]
	if len(m) != 1 {
		return nil
	}
	for _, ri := range m {
		return ri
	}
	return nil
}
