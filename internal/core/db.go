// Package core implements the X100 vectorized query engine — the primary
// contribution of Boncz, Zukowski & Nes (CIDR 2005). Execution follows a
// Volcano-style pull pipeline whose unit of exchange is a vector.Batch of
// ~1000 values per column; all data-touching work happens inside the
// vectorized primitives of internal/primitives, so per-tuple interpretation
// overhead is amortized over whole vectors.
package core

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"x100/internal/colstore"
	"x100/internal/columnbm"
	"x100/internal/delta"
	"x100/internal/sched"
	"x100/internal/sindex"
	"x100/internal/vector"
)

// Durability selects how updates to disk-attached tables survive a crash.
type Durability int

const (
	// DurabilityGroup (the default) logs every insert/delete to the
	// table's write-ahead log and group-commits the fsync before the call
	// returns: an acknowledged update survives a crash.
	DurabilityGroup Durability = iota
	// DurabilityAsync logs every update but defers the fsync to the next
	// group commit or checkpoint: a crash may lose the most recent
	// (unsynced) updates, never the log's prefix.
	DurabilityAsync
	// DurabilityCheckpoint is the legacy mode: no write-ahead log; updates
	// since the last Checkpoint die with the process.
	DurabilityCheckpoint
)

// Database bundles the storage-layer state the engines execute against: the
// column catalog, per-table delta stores, summary indices and range (join)
// indices. Join indices over FK paths are materialized as ordinary int32
// row-id columns of the fact tables, exactly like MonetDB's positional-join
// columns; plans reference them by name in Fetch1Join.
//
// Concurrency model: queries never read live mutable state directly — Build
// captures per-table views (snapSet) under snapMu's read side, and every
// structural cutover (checkpoint fragment attach, compaction table swap,
// in-memory Checkpoint/Reorganize) happens under snapMu's write side with
// copy-on-write replacements, so a captured view stays consistent for the
// query's lifetime. mu guards the registry maps only and is always taken
// after snapMu.
type Database struct {
	Catalog *colstore.Catalog
	// snapMu orders query view capture (read side) against structural
	// cutovers (write side). Cutovers only replace state — column slices,
	// index maps — so captures are brief and cutovers never invalidate a
	// captured view.
	snapMu sync.RWMutex
	// mu guards the registry maps below. Always acquired after snapMu when
	// both are held.
	mu     sync.RWMutex
	deltas map[string]*delta.Store
	// summaries: table -> column -> typed summary index. The per-table maps
	// are immutable once published; refreshes swap whole maps.
	sumI32 map[string]map[string]*sindex.Summary[int32]
	sumF64 map[string]map[string]*sindex.Summary[float64]
	// rangeIdx: fetched-table -> referenced-table -> range index. Same
	// copy-on-write discipline as the summary maps.
	rangeIdx map[string]map[string]*sindex.RangeIndex
	// rangeRecipes: fetched-table -> referenced-table -> row-id column the
	// range index was derived from (DeriveRangeIndex); cutovers that move
	// row ids re-run the recipe so indices never go stale.
	rangeRecipes map[string]map[string]string
	// disk: tables attached from a ColumnBM directory, with the store they
	// came from (the checkpoint write-back target) and how many deletions
	// the committed manifest already records.
	disk map[string]*diskAttachment
	// durability governs WAL logging of disk-attached tables. It must be
	// chosen before AttachDiskTable: attaching decides whether a log is
	// opened and replayed.
	durability Durability
}

type diskAttachment struct {
	store *columnbm.Store
	// wal is the table's write-ahead log; nil under
	// DurabilityCheckpoint.
	wal *columnbm.WAL
	// writeMu serializes the table's structural writers — checkpoint and
	// compaction — so at most one manifest-advancing operation is in
	// flight per table.
	writeMu sync.Mutex
	// tailMu orders the write path (WAL log + delta apply, read side)
	// against the tail-relog window of a checkpoint/compaction cutover
	// (write side): while the cutover collects the post-snapshot tail into
	// the next-epoch log, no writer may slip a record into the old-epoch
	// log, where it would be invalidated by the epoch bump.
	tailMu sync.RWMutex
	// persistedDel is the size of the deletion list in the committed
	// manifest; checkpoints only rewrite the manifest when the list (or the
	// insert delta) has grown past it. Deletion lists only grow between
	// compactions, so the count identifies the persisted set. Guarded by
	// writeMu (attach writes it before the attachment is published).
	persistedDel int
	// Generation leases: queries that captured a view of this table hold a
	// ref; removal of superseded chunk-file generations is deferred until
	// the count returns to zero (see snapshot.go).
	genMu      sync.Mutex
	genRefs    int
	genPending []func()
}

// NewDatabase creates a database over an empty catalog.
func NewDatabase() *Database {
	return &Database{
		Catalog:      colstore.NewCatalog(),
		deltas:       make(map[string]*delta.Store),
		sumI32:       make(map[string]map[string]*sindex.Summary[int32]),
		sumF64:       make(map[string]map[string]*sindex.Summary[float64]),
		rangeIdx:     make(map[string]map[string]*sindex.RangeIndex),
		rangeRecipes: make(map[string]map[string]string),
		disk:         make(map[string]*diskAttachment),
	}
}

// SetDurability selects the durability mode for disk-attached tables.
// Call it before AttachDiskTable: the mode decides whether an attach opens
// (and replays) the table's write-ahead log.
func (db *Database) SetDurability(d Durability) { db.durability = d }

// Durability returns the database's durability mode.
func (db *Database) Durability() Durability { return db.durability }

// attachment returns the disk attachment of a table, nil when not attached.
func (db *Database) attachment(table string) *diskAttachment {
	db.mu.RLock()
	att := db.disk[table]
	db.mu.RUnlock()
	return att
}

// Insert appends one row (boxed logical values, schema order) to a table,
// returning its row id. For a disk-attached table with a write-ahead log
// the row is validated, logged (and under DurabilityGroup fsynced) before
// it is applied, so an acknowledged insert survives a restart.
func (db *Database) Insert(table string, row []any) (int32, error) {
	return db.InsertCancel(table, row, nil)
}

// InsertCancel is Insert with a cancellation channel threaded through to
// the write-ahead log's group-commit wait: a durable insert parked behind
// another appender's fsync returns promptly (wrapping context.Canceled)
// when cancel fires, instead of riding out the sync. The record was
// already appended, so — as after a crash — the row's durability is
// unknown to the caller; it is not applied to the in-memory delta.
func (db *Database) InsertCancel(table string, row []any, cancel <-chan struct{}) (int32, error) {
	ds, err := db.Delta(table)
	if err != nil {
		return 0, err
	}
	// Validate BEFORE logging: a record that reaches the log must always
	// apply, both now and at replay.
	if err := ds.CheckRow(row); err != nil {
		return 0, err
	}
	if att := db.attachment(table); att != nil {
		att.tailMu.RLock()
		defer att.tailMu.RUnlock()
		if att.wal != nil {
			if err := att.wal.LogInsertCancel(row, db.durability == DurabilityGroup, cancel); err != nil {
				return 0, err
			}
		}
	}
	return ds.Insert(row)
}

// Delete marks a row id deleted, write-ahead logging it like Insert.
func (db *Database) Delete(table string, rowID int32) error {
	ds, err := db.Delta(table)
	if err != nil {
		return err
	}
	if err := ds.CheckDelete(rowID); err != nil {
		return err
	}
	if att := db.attachment(table); att != nil {
		att.tailMu.RLock()
		defer att.tailMu.RUnlock()
		if att.wal != nil {
			if err := att.wal.LogDelete(rowID, db.durability == DurabilityGroup); err != nil {
				return err
			}
		}
	}
	return ds.Delete(rowID)
}

// Update deletes rowID and inserts row (the paper's delete+insert update),
// logged as one atomic write-ahead record: a replay applies both halves or
// neither.
func (db *Database) Update(table string, rowID int32, row []any) (int32, error) {
	ds, err := db.Delta(table)
	if err != nil {
		return 0, err
	}
	if err := ds.CheckDelete(rowID); err != nil {
		return 0, err
	}
	if err := ds.CheckRow(row); err != nil {
		return 0, err
	}
	if att := db.attachment(table); att != nil {
		att.tailMu.RLock()
		defer att.tailMu.RUnlock()
		if att.wal != nil {
			if err := att.wal.LogUpdate(rowID, row, db.durability == DurabilityGroup); err != nil {
				return 0, err
			}
		}
	}
	return ds.Update(rowID, row)
}

// GenLeases reports the number of outstanding generation leases on a
// disk-attached table — the count of captured query views that are
// pinning superseded chunk generations. Zero when no query holds a view.
// Diagnostic hook: cancelled and completed queries alike must return the
// count to its pre-query value.
func (db *Database) GenLeases(table string) int {
	att := db.attachment(table)
	if att == nil {
		return 0
	}
	att.genMu.Lock()
	defer att.genMu.Unlock()
	return att.genRefs
}

// WalStatus reports one disk-attached table's write-ahead-log and store
// counters (WalStatuses).
type WalStatus struct {
	Table string
	Wal   columnbm.WALStats
	Store columnbm.StoreStats
}

// WalStatuses returns WAL/recovery counters for every disk-attached table,
// sorted by table name. Tables without a log (DurabilityCheckpoint) report
// zero WAL counters but live store counters.
func (db *Database) WalStatuses() []WalStatus {
	db.mu.RLock()
	out := make([]WalStatus, 0, len(db.disk))
	for name, att := range db.disk {
		st := WalStatus{Table: name, Store: att.store.Stats()}
		if att.wal != nil {
			st.Wal = att.wal.Stats()
		}
		out = append(out, st)
	}
	db.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// AddTable registers a table and creates its delta store. Re-registering a
// name drops any disk attachment recorded under it: the new table is not
// the one the old chunk directory describes, so checkpoints must not write
// back there (AttachDiskTable re-records its attachment after calling
// this).
func (db *Database) AddTable(t *colstore.Table) {
	db.Catalog.Add(t)
	db.mu.Lock()
	db.deltas[t.Name] = delta.NewStore(t)
	att := db.disk[t.Name]
	delete(db.disk, t.Name)
	db.mu.Unlock()
	if att != nil && att.wal != nil {
		att.wal.Close()
	}
}

// Table returns the named base table.
func (db *Database) Table(name string) (*colstore.Table, error) {
	return db.Catalog.Table(name)
}

// Delta returns the delta store of a table (created on first use).
func (db *Database) Delta(name string) (*delta.Store, error) {
	db.mu.RLock()
	d, ok := db.deltas[name]
	db.mu.RUnlock()
	if ok {
		return d, nil
	}
	t, err := db.Catalog.Table(name)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if d, ok := db.deltas[name]; ok {
		return d, nil
	}
	d = delta.NewStore(t)
	db.deltas[name] = d
	return d, nil
}

// Checkpoint absorbs a table's pending insert delta into new base
// fragments (preserving row ids; the deletion list survives) and refreshes
// any summary indices over the grown base. For a table attached from a
// ColumnBM directory the checkpoint is durable and incremental: only the
// delta accumulated since the previous checkpoint is written back to the
// directory as new compressed chunks, the deletion list is recorded, and
// the manifest is extended atomically. The new chunks re-attach to the
// live table as lazily decoded disk fragments, so the table stays within
// bounded memory. Scans running concurrently keep their captured
// pre-checkpoint view and see identical results. done=false means the
// delta store declined (an enum dictionary outgrew its code width) and the
// table keeps its deltas; Reorganize absorbs them by re-encoding.
func (db *Database) Checkpoint(table string) (bool, error) {
	ds, err := db.Delta(table)
	if err != nil {
		return false, err
	}
	if att := db.attachment(table); att != nil {
		return db.checkpointDisk(table, ds, att)
	}
	if ds.NumDeltaRows() == 0 {
		return true, nil
	}
	db.snapMu.Lock()
	done, err := ds.Checkpoint()
	if done && err == nil {
		err = db.refreshSummaries(table)
		// Row ids are preserved, so a failed re-derivation (e.g. inserts
		// broke the clustering) safely keeps the old index: it covers the
		// rows it always covered.
		db.rederiveRangeIndexes(table, false)
	}
	db.snapMu.Unlock()
	return done, err
}

// checkpointDisk is the durable, incremental checkpoint of a disk-attached
// table. The snapshot taken at entry defines the checkpoint's content;
// everything after it — part encoding, chunk writes — runs off the write
// path. Writers are excluded only for the tail-relog window: rows and
// deletes that arrived after the snapshot are re-logged into the
// next-epoch WAL sidecar before the manifest commit bumps the epoch, so
// the epoch handshake can invalidate the superseded log without losing
// the tail.
func (db *Database) checkpointDisk(table string, ds *delta.Store, att *diskAttachment) (bool, error) {
	att.writeMu.Lock()
	defer att.writeMu.Unlock()
	snap := ds.Snapshot()
	if snap.NumDeltaRows() == 0 && snap.NumDeleted() == att.persistedDel {
		// Read-only (or already fully persisted) table: a checkpoint is a
		// no-op and must not touch the directory.
		return true, nil
	}
	t, err := db.Table(table)
	if err != nil {
		return false, err
	}
	// t.Cols is stable here: every mutator holds writeMu.
	parts, done, err := snap.Parts(t.Cols)
	if err != nil || !done {
		return done, err
	}
	// Appending fragments drops the attach-time merged dictionaries
	// (colstore cannot assume new fragments share the code domain).
	// Snapshot them first so they can be refreshed incrementally below —
	// code-domain execution must survive an append+query cycle.
	mdicts := columnbm.SnapshotMergedDicts(t)
	att.tailMu.Lock()
	defer att.tailMu.Unlock()
	var next int64
	if att.wal != nil {
		m, err := att.store.ReadManifest(table)
		if err != nil {
			return false, err
		}
		next = m.WalEpoch + 1
		if err := att.wal.PrepareRotate(next, tailRecords(ds, snap)); err != nil {
			return false, err
		}
	}
	// The manifest records the SNAPSHOT's deletion list, not the current
	// one: deletes that arrived after the snapshot live in the next-epoch
	// sidecar and must not also be in the manifest, or replay would apply
	// them twice.
	frags, err := att.store.AppendTable(t, parts, snap.SortedDeleted())
	if err != nil {
		// Nothing was committed (the manifest rename is the single commit
		// point), so the delta stays pending and scans remain correct. A
		// written sidecar carries an epoch the manifest never reached and
		// is discarded at the next open.
		return false, err
	}
	db.snapMu.Lock()
	err = func() error {
		if parts != nil {
			if err := t.AppendFragments(frags); err != nil {
				return err
			}
			ds.ClearInsertsN(snap.NumDeltaRows())
			if err := att.store.RefreshMergedDicts(t, mdicts); err != nil {
				return err
			}
			// The "<col>#dict" mapping tables must track the (possibly
			// rebuilt) merged dictionaries.
			registerDictTables(db, t)
		}
		att.persistedDel = snap.NumDeleted()
		// Summaries must be swapped inside the cutover: a stale (shorter)
		// summary seen next to the grown row count would wrongly prune the
		// appended rows.
		if err := db.refreshSummaries(table); err != nil {
			return err
		}
		db.rederiveRangeIndexes(table, false)
		return nil
	}()
	db.snapMu.Unlock()
	if err != nil {
		return false, err
	}
	if att.wal != nil {
		// The manifest commit advanced the WAL epoch; publishing the
		// sidecar as the live log completes the rotation. Until it
		// succeeds writers stay excluded, so no record lands in the
		// stale-epoch log.
		if err := att.wal.CommitRotate(next); err != nil {
			return false, err
		}
	}
	return true, nil
}

// tailRecords re-encodes the operations that arrived after a checkpoint
// snapshot as WAL records for the next-epoch sidecar. Inserts come first:
// a tail delete may target a tail-inserted row, and replay must create the
// row before deleting it. Callers hold the table's tailMu write lock, so
// the tail is stable.
func tailRecords(ds *delta.Store, snap *delta.Snapshot) []columnbm.WALRecord {
	var recs []columnbm.WALRecord
	for _, row := range ds.TailRows(snap.NumDeltaRows()) {
		recs = append(recs, columnbm.WALRecord{Kind: columnbm.WALInsert, Row: row})
	}
	for _, id := range ds.NewDeletesSince(snap) {
		recs = append(recs, columnbm.WALRecord{Kind: columnbm.WALDelete, RowID: id})
	}
	return recs
}

// Reorganize rewrites a table's base to absorb all deltas: deleted rows are
// dropped, delta rows appended, enum columns re-encoded. For a disk-attached
// table the compacted result is written to a fresh chunk-file generation in
// the background (queries keep scanning the previous generation) and cut
// over with one atomic manifest rename; the superseded generation's files
// are removed once the last query reading them finishes. Summary indices,
// enum dictionary mapping tables and derived range indices (DeriveRangeIndex)
// are rebuilt at the cutover; positional join indices registered without a
// recipe are NOT adjusted — callers re-derive them when row ids moved.
func (db *Database) Reorganize(table string) error {
	ds, err := db.Delta(table)
	if err != nil {
		return err
	}
	if att := db.attachment(table); att != nil {
		return db.compactTable(table, ds, att)
	}
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	db.snapMu.Lock()
	err = func() error {
		if err := ds.Reorganize(); err != nil {
			return err
		}
		registerDictTables(db, t)
		if err := db.refreshSummaries(table); err != nil {
			return err
		}
		return db.rederiveRangeIndexes(table, true)
	}()
	db.snapMu.Unlock()
	return err
}

// compactTable rewrites a disk-attached table into a fresh chunk-file
// generation. The heavy work — building the compacted table, writing its
// chunks — happens against a snapshot, off the write path and outside all
// locks; only the cutover (manifest rename, table swap, delta rebase,
// index refresh) excludes writers and view capture. Deletes and inserts
// that arrived after the snapshot are remapped into the new id space and
// re-logged into the next-epoch WAL sidecar, so the epoch handshake
// invalidates the superseded log without losing them.
func (db *Database) compactTable(table string, ds *delta.Store, att *diskAttachment) error {
	att.writeMu.Lock()
	defer att.writeMu.Unlock()
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	snap := ds.Snapshot()
	nt, live, err := delta.BuildCompacted(table, t.Cols, snap)
	if err != nil {
		return err
	}
	pr, err := att.store.PrepareRewrite(nt)
	if err != nil {
		return err
	}
	next := pr.NextWalEpoch()
	att.tailMu.Lock()
	defer att.tailMu.Unlock()
	// Remap an old-space row id into the compacted id space: surviving
	// snapshot rows take their rank in the live list; rows inserted after
	// the snapshot are re-appended behind the compacted base in arrival
	// order.
	snapTotal := snap.BaseN() + snap.NumDeltaRows()
	remap := func(id int32) (int32, bool) {
		if int(id) >= snapTotal {
			return int32(nt.N + int(id) - snapTotal), true
		}
		if i, ok := slices.BinarySearch(live, id); ok {
			return int32(i), true
		}
		return 0, false
	}
	tail := ds.TailRows(snap.NumDeltaRows())
	recs := make([]columnbm.WALRecord, 0, len(tail))
	for _, row := range tail {
		recs = append(recs, columnbm.WALRecord{Kind: columnbm.WALInsert, Row: row})
	}
	newDel := make(map[int32]struct{})
	for _, id := range ds.NewDeletesSince(snap) {
		nid, ok := remap(id)
		if !ok {
			return fmt.Errorf("core: compact %s: post-snapshot delete of unknown row %d", table, id)
		}
		newDel[nid] = struct{}{}
		recs = append(recs, columnbm.WALRecord{Kind: columnbm.WALDelete, RowID: nid})
	}
	if att.wal != nil {
		if err := att.wal.PrepareRotate(next, recs); err != nil {
			return err
		}
	}
	old, err := pr.Commit()
	if err != nil {
		// Nothing committed: the old generation (and in-memory state)
		// stands, deltas stay pending, the next-generation orphans are
		// overwritten by the next attempt.
		return err
	}
	db.snapMu.Lock()
	err = func() error {
		// Re-attach fragment-backed so the table keeps scanning off disk
		// chunks within bounded memory. Same *Table identity: the delta
		// store and catalog keep their pointers; the column-set swap is
		// copy-on-write for captured views.
		nt2, err := att.store.AttachTable(table)
		if err != nil {
			return err
		}
		t.Cols, t.N, t.ChunkRows = nt2.Cols, nt2.N, nt2.ChunkRows
		if err := ds.Rebase(nt2.N, newDel, tail); err != nil {
			return err
		}
		att.persistedDel = 0
		registerDictTables(db, t)
		if err := db.refreshSummaries(table); err != nil {
			return err
		}
		// Compaction moved row ids: derived range indices MUST be re-run
		// here (the stale-index bug this path exists to fix).
		return db.rederiveRangeIndexes(table, true)
	}()
	db.snapMu.Unlock()
	if err != nil {
		return err
	}
	if att.wal != nil {
		if err := att.wal.CommitRotate(next); err != nil {
			return err
		}
	}
	// The superseded generation's chunk files may still be read by queries
	// that captured their view before the cutover; deletion waits for the
	// last generation lease.
	att.deferCleanup(func() { att.store.RemoveGeneration(old) })
	return nil
}

// CheckpointAll checkpoints every disk-attached table, concurrently across
// tables. Each worker draws an admission slot from pool (nil uses no
// admission control) so bulk checkpoints cannot starve running queries.
// The first error per table is collected; all tables are attempted.
func (db *Database) CheckpointAll(pool *sched.Pool) error {
	db.mu.RLock()
	names := make([]string, 0, len(db.disk))
	for name := range db.disk {
		names = append(names, name)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			slot := pool.NewSlot()
			slot.Acquire()
			defer slot.Release()
			if _, err := db.Checkpoint(name); err != nil {
				errs[i] = fmt.Errorf("checkpoint %s: %w", name, err)
			}
		}(i, name)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// refreshSummaries rebuilds the summary indices registered over a table
// (after its base fragments changed). The per-table maps are replaced
// wholesale — captured views keep their frozen maps.
func (db *Database) refreshSummaries(table string) error {
	type job struct {
		col     string
		granule int
	}
	db.mu.RLock()
	var i32jobs, f64jobs []job
	for col, si := range db.sumI32[table] {
		i32jobs = append(i32jobs, job{col, si.Granule})
	}
	for col, si := range db.sumF64[table] {
		f64jobs = append(f64jobs, job{col, si.Granule})
	}
	db.mu.RUnlock()
	if len(i32jobs) == 0 && len(f64jobs) == 0 {
		return nil
	}
	newI32 := make(map[string]*sindex.Summary[int32], len(i32jobs))
	newF64 := make(map[string]*sindex.Summary[float64], len(f64jobs))
	for _, j := range i32jobs {
		s32, _, err := db.buildSummary(table, j.col, j.granule)
		if err != nil {
			return err
		}
		newI32[j.col] = s32
	}
	for _, j := range f64jobs {
		_, s64, err := db.buildSummary(table, j.col, j.granule)
		if err != nil {
			return err
		}
		newF64[j.col] = s64
	}
	db.mu.Lock()
	if len(i32jobs) > 0 {
		db.sumI32[table] = newI32
	}
	if len(f64jobs) > 0 {
		db.sumF64[table] = newF64
	}
	db.mu.Unlock()
	return nil
}

// TableSchema implements algebra.Resolver.
func (db *Database) TableSchema(name string) (vector.Schema, error) {
	t, err := db.Catalog.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// CodeColumnType implements algebra.CodeResolver: the physical type of a
// code-domain column's code vector — enum columns and merged-dict string
// columns both expose "<column>#" scan targets.
func (db *Database) CodeColumnType(table, column string) (vector.Type, error) {
	t, err := db.Catalog.Table(table)
	if err != nil {
		return vector.Unknown, err
	}
	c := t.Col(column)
	if c == nil {
		return vector.Unknown, fmt.Errorf("core: table %s has no column %q", table, column)
	}
	if c.IsEnum() {
		return c.PhysType(), nil
	}
	if _, phys, ok := c.CodeDomain(); ok {
		return phys, nil
	}
	return vector.Unknown, fmt.Errorf("core: %s.%s is not an enum or dict-compressed column", table, column)
}

// buildSummary builds a summary over a column's current base; exactly one
// of the returned summaries is non-nil, by physical type.
func (db *Database) buildSummary(table, column string, granule int) (*sindex.Summary[int32], *sindex.Summary[float64], error) {
	t, err := db.Catalog.Table(table)
	if err != nil {
		return nil, nil, err
	}
	c := t.Col(column)
	if c == nil {
		return nil, nil, fmt.Errorf("core: table %s has no column %q", table, column)
	}
	// Materialize with a returned error first: the column may be backed by
	// disk fragments, and a corrupt chunk must not panic out of Data().
	if _, err := c.Pin(); err != nil {
		return nil, nil, fmt.Errorf("core: summary index %s.%s: %w", table, column, err)
	}
	switch c.PhysType() {
	case vector.Int32:
		return sindex.BuildSummary(c.Data().([]int32), granule), nil, nil
	case vector.Float64:
		return nil, sindex.BuildSummary(c.Data().([]float64), granule), nil
	default:
		return nil, nil, fmt.Errorf("core: summary index over %v column %s.%s unsupported", c.Typ, table, column)
	}
}

// cloneWith returns a copy of m with k set to v (copy-on-write map update).
func cloneWith[V any](m map[string]V, k string, v V) map[string]V {
	out := make(map[string]V, len(m)+1)
	for kk, vv := range m {
		out[kk] = vv
	}
	out[k] = v
	return out
}

// BuildSummaryIndex builds a summary index over a clustered column of a
// table (paper Section 4.3). Supported column types: Date/Int32, Float64.
func (db *Database) BuildSummaryIndex(table, column string, granule int) error {
	s32, s64, err := db.buildSummary(table, column, granule)
	if err != nil {
		return err
	}
	db.mu.Lock()
	if s32 != nil {
		db.sumI32[table] = cloneWith(db.sumI32[table], column, s32)
	} else {
		db.sumF64[table] = cloneWith(db.sumF64[table], column, s64)
	}
	db.mu.Unlock()
	return nil
}

// SummaryI32 returns the int32/date summary index of table.column, if any.
func (db *Database) SummaryI32(table, column string) *sindex.Summary[int32] {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.sumI32[table][column]
}

// SummaryF64 returns the float summary index of table.column, if any.
func (db *Database) SummaryF64(table, column string) *sindex.Summary[float64] {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.sumF64[table][column]
}

// RegisterRangeIndex attaches a range index: rows of fetchedTable are
// clustered by refTable row id (FetchNJoin input). Indices registered this
// way are NOT rebuilt when a Reorganize moves row ids — use
// DeriveRangeIndex to keep an index valid across compactions.
func (db *Database) RegisterRangeIndex(fetchedTable, refTable string, ri *sindex.RangeIndex) {
	db.mu.Lock()
	db.rangeIdx[fetchedTable] = cloneWith(db.rangeIdx[fetchedTable], refTable, ri)
	db.mu.Unlock()
}

// DeriveRangeIndex builds and registers the range index of fetchedTable
// clustered by refTable from the fetched table's row-id column (an int32
// positional-join column such as "l_orderrow"), and records the recipe:
// whenever a Checkpoint or Reorganize of either table changes what the
// index must cover, it is re-derived automatically from the same column,
// so FetchNJoin plans never run against stale row ids. The row-id column
// must be ascending (the fetched table clustered with the referenced one).
func (db *Database) DeriveRangeIndex(fetchedTable, refTable, rowIDCol string) error {
	ri, err := db.buildRangeIndexFromCol(fetchedTable, refTable, rowIDCol)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.rangeIdx[fetchedTable] = cloneWith(db.rangeIdx[fetchedTable], refTable, ri)
	db.rangeRecipes[fetchedTable] = cloneWith(db.rangeRecipes[fetchedTable], refTable, rowIDCol)
	db.mu.Unlock()
	return nil
}

// buildRangeIndexFromCol derives a range index from a fetched table's
// row-id column over the referenced table's current row-id space (base
// plus pending delta, so referenced ids a merged scan can produce always
// resolve to a — possibly empty — range).
func (db *Database) buildRangeIndexFromCol(fetchedTable, refTable, rowIDCol string) (*sindex.RangeIndex, error) {
	ft, err := db.Table(fetchedTable)
	if err != nil {
		return nil, err
	}
	c := ft.Col(rowIDCol)
	if c == nil {
		return nil, fmt.Errorf("core: table %s has no column %q", fetchedTable, rowIDCol)
	}
	if _, err := c.Pin(); err != nil {
		return nil, fmt.Errorf("core: range index %s->%s: %w", fetchedTable, refTable, err)
	}
	ids, ok := c.Data().([]int32)
	if !ok {
		return nil, fmt.Errorf("core: range index %s->%s: column %s is not int32", fetchedTable, refTable, rowIDCol)
	}
	refDs, err := db.Delta(refTable)
	if err != nil {
		return nil, err
	}
	refN := refDs.BaseN() + refDs.NumDeltaRows()
	return sindex.BuildRangeIndex(&sindex.JoinIndex{From: fetchedTable, To: refTable, RowIDs: ids}, refN)
}

// rederiveRangeIndexes re-runs every DeriveRangeIndex recipe that involves
// the given table (as fetched or referenced side). When mustSucceed is
// false (checkpoints: row ids preserved) a failed derivation keeps the old
// index, which remains valid for the rows it covered; when true
// (reorganize/compaction: row ids moved) a failed derivation drops the
// index — a loud plan error beats silently wrong join results — and the
// error is returned.
func (db *Database) rederiveRangeIndexes(table string, mustSucceed bool) error {
	type recipe struct{ fetched, ref, col string }
	db.mu.RLock()
	var jobs []recipe
	for fetched, m := range db.rangeRecipes {
		for ref, col := range m {
			if fetched == table || ref == table {
				jobs = append(jobs, recipe{fetched, ref, col})
			}
		}
	}
	db.mu.RUnlock()
	var firstErr error
	for _, j := range jobs {
		ri, err := db.buildRangeIndexFromCol(j.fetched, j.ref, j.col)
		if err != nil {
			if mustSucceed {
				db.mu.Lock()
				m := make(map[string]*sindex.RangeIndex, len(db.rangeIdx[j.fetched]))
				for k, v := range db.rangeIdx[j.fetched] {
					if k != j.ref {
						m[k] = v
					}
				}
				db.rangeIdx[j.fetched] = m
				db.mu.Unlock()
				if firstErr == nil {
					firstErr = fmt.Errorf("core: re-derive range index %s->%s: %w", j.fetched, j.ref, err)
				}
			}
			continue
		}
		db.mu.Lock()
		db.rangeIdx[j.fetched] = cloneWith(db.rangeIdx[j.fetched], j.ref, ri)
		db.mu.Unlock()
	}
	return firstErr
}

// RangeIndex returns the range index of fetchedTable clustered by refTable.
func (db *Database) RangeIndex(fetchedTable, refTable string) *sindex.RangeIndex {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rangeIdx[fetchedTable][refTable]
}

// RangeIndexAny returns the sole range index of fetchedTable when exactly
// one is registered (plans that omit the referenced table).
func (db *Database) RangeIndexAny(fetchedTable string) *sindex.RangeIndex {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.rangeIdx[fetchedTable]
	if len(m) != 1 {
		return nil
	}
	for _, ri := range m {
		return ri
	}
	return nil
}
