package trace

import (
	"strings"
	"testing"
	"time"
)

func TestDisabledCollectorIsNoop(t *testing.T) {
	var c *Collector // nil collector
	if !c.Now().IsZero() {
		t.Fatal("nil collector Now must be zero")
	}
	c.RecordPrimitiveSince("x", time.Now(), 1, 1) // must not panic
	c.RecordOperator("x", 1, time.Second)
	c.Begin()
	c.End()
	zero := &Collector{} // disabled
	if !zero.Now().IsZero() {
		t.Fatal("disabled collector Now must be zero")
	}
}

func TestCollectAndRender(t *testing.T) {
	c := New()
	c.Begin()
	t0 := c.Now()
	if t0.IsZero() {
		t.Fatal("enabled collector must return real time")
	}
	time.Sleep(time.Millisecond)
	c.RecordPrimitiveSince("map_add_flt_col_flt_col", t0, 1000, 24000)
	c.RecordPrimitiveSince("map_add_flt_col_flt_col", c.Now(), 500, 12000)
	c.RecordOperator("Select", 1500, 2*time.Millisecond)
	c.End()

	prims := c.Primitives()
	if len(prims) != 1 || prims[0].Calls != 2 || prims[0].Tuples != 1500 {
		t.Fatalf("prims: %+v", prims)
	}
	if prims[0].NsPerTuple() <= 0 || prims[0].MBPerSec() <= 0 || prims[0].CyclesPerTuple() <= 0 {
		t.Fatal("derived metrics must be positive")
	}
	ops := c.Operators()
	if len(ops) != 1 || ops[0].Tuples != 1500 {
		t.Fatalf("ops: %+v", ops)
	}
	if c.Total() <= 0 {
		t.Fatal("total")
	}
	out := c.Render()
	for _, want := range []string{"map_add_flt_col_flt_col", "Select", "X100 primitive", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	top := c.TopPrimitives(5)
	if len(top) != 1 {
		t.Fatal("top")
	}
}

func TestZeroDivisionSafe(t *testing.T) {
	s := &Stat{Name: "x"}
	if s.MBPerSec() != 0 || s.NsPerTuple() != 0 || s.CyclesPerTuple() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}
