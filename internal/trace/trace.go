// Package trace implements the detailed profiling support of X100
// (Section 5.1, Table 5): per-primitive and per-operator counters — call
// counts, tuples processed, elapsed time, and bandwidth — collected during
// query execution and rendered in the paper's trace-table format.
//
// The paper reads low-level CPU cycle counters; the Go stdlib cannot, so
// time is wall-clock and "cycles/tuple" is derived from a configurable
// nominal clock frequency purely for comparability with the paper's tables.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// NominalGHz is the clock frequency used to convert ns/tuple into a
// cycles/tuple estimate in rendered traces. It is presentation only.
var NominalGHz = 3.0

// Stat accumulates counters for one primitive or operator.
type Stat struct {
	Name   string
	Calls  int64
	Tuples int64
	Bytes  int64
	Nanos  int64
}

// MBPerSec returns the achieved bandwidth in MB/s (input+output bytes).
func (s *Stat) MBPerSec() float64 {
	if s.Nanos == 0 {
		return 0
	}
	return float64(s.Bytes) / 1e6 / (float64(s.Nanos) / 1e9)
}

// NsPerTuple returns the average time per tuple in nanoseconds.
func (s *Stat) NsPerTuple() float64 {
	if s.Tuples == 0 {
		return 0
	}
	return float64(s.Nanos) / float64(s.Tuples)
}

// CyclesPerTuple estimates cycles/tuple at the nominal clock.
func (s *Stat) CyclesPerTuple() float64 {
	return s.NsPerTuple() * NominalGHz
}

// Collector gathers stats during one query execution. The zero Collector is
// disabled: Record* calls are cheap no-ops so production paths can leave
// tracing statements in place.
type Collector struct {
	Enabled  bool
	prims    map[string]*Stat
	ops      map[string]*Stat
	counters map[string]*Counter
	primSeq  []string
	opSeq    []string
	ctrSeq   []string
	start    time.Time
	total    time.Duration
}

// Counter is a named event counter (no timing attached): decoded vs
// skipped values on the scan path, code-domain vs decode-first predicate
// evaluations, and similar observability totals.
type Counter struct {
	Name  string
	Value int64
}

// New returns an enabled collector.
func New() *Collector {
	return &Collector{
		Enabled:  true,
		prims:    make(map[string]*Stat),
		ops:      make(map[string]*Stat),
		counters: make(map[string]*Counter),
	}
}

// Begin marks the start of query execution.
func (c *Collector) Begin() {
	if c == nil || !c.Enabled {
		return
	}
	c.start = time.Now()
}

// End marks the end of query execution.
func (c *Collector) End() {
	if c == nil || !c.Enabled {
		return
	}
	c.total = time.Since(c.start)
}

// Total returns the wall-clock time between Begin and End.
func (c *Collector) Total() time.Duration {
	if c == nil {
		return 0
	}
	return c.total
}

// Now returns the current time when tracing is enabled, else the zero time;
// paired with RecordPrimitiveSince it keeps disabled-path cost to one branch.
func (c *Collector) Now() time.Time {
	if c == nil || !c.Enabled {
		return time.Time{}
	}
	return time.Now()
}

// RecordPrimitiveSince accumulates one primitive invocation that started at
// t0 (obtained from Now), processing n tuples and touching bytes bytes.
func (c *Collector) RecordPrimitiveSince(name string, t0 time.Time, n, bytes int) {
	if c == nil || !c.Enabled || t0.IsZero() {
		return
	}
	c.record(c.prims, &c.primSeq, name, n, bytes, time.Since(t0).Nanoseconds())
}

// RecordCounter adds n to a named event counter. Unlike primitives and
// operators, counters carry no timing — they count data-path events such as
// decoded vs skipped values or code-domain predicate evaluations.
func (c *Collector) RecordCounter(name string, n int64) {
	if c == nil || !c.Enabled || n == 0 {
		return
	}
	if c.counters == nil {
		c.counters = make(map[string]*Counter)
	}
	ctr, ok := c.counters[name]
	if !ok {
		ctr = &Counter{Name: name}
		c.counters[name] = ctr
		c.ctrSeq = append(c.ctrSeq, name)
	}
	ctr.Value += n
}

// RecordOperator accumulates time attributed to an algebra operator.
func (c *Collector) RecordOperator(name string, n int, d time.Duration) {
	if c == nil || !c.Enabled {
		return
	}
	c.record(c.ops, &c.opSeq, name, n, 0, d.Nanoseconds())
}

func (c *Collector) record(m map[string]*Stat, seq *[]string, name string, n, bytes int, ns int64) {
	s, ok := m[name]
	if !ok {
		s = &Stat{Name: name}
		m[name] = s
		*seq = append(*seq, name)
	}
	s.Calls++
	s.Tuples += int64(n)
	s.Bytes += int64(bytes)
	s.Nanos += ns
}

// Merge folds the counters of other into c. Parallel execution gives each
// worker pipeline its own Collector (Record* calls are not synchronized)
// and merges them into the query's main collector when the workers join.
func (c *Collector) Merge(other *Collector) {
	if c == nil || !c.Enabled || other == nil || !other.Enabled {
		return
	}
	merge := func(m map[string]*Stat, seq *[]string, src map[string]*Stat, srcSeq []string) {
		for _, name := range srcSeq {
			s := src[name]
			d, ok := m[name]
			if !ok {
				d = &Stat{Name: name}
				m[name] = d
				*seq = append(*seq, name)
			}
			d.Calls += s.Calls
			d.Tuples += s.Tuples
			d.Bytes += s.Bytes
			d.Nanos += s.Nanos
		}
	}
	merge(c.prims, &c.primSeq, other.prims, other.primSeq)
	merge(c.ops, &c.opSeq, other.ops, other.opSeq)
	for _, name := range other.ctrSeq {
		c.RecordCounter(name, other.counters[name].Value)
	}
}

// Primitives returns primitive stats in first-seen order.
func (c *Collector) Primitives() []*Stat { return c.ordered(c.prims, c.primSeq) }

// Counters returns event counters in first-seen order.
func (c *Collector) Counters() []*Counter {
	out := make([]*Counter, 0, len(c.ctrSeq))
	for _, n := range c.ctrSeq {
		out = append(out, c.counters[n])
	}
	return out
}

// CounterValue returns the value of a named counter (0 if never recorded).
func (c *Collector) CounterValue(name string) int64 {
	if c == nil || c.counters == nil {
		return 0
	}
	if ctr, ok := c.counters[name]; ok {
		return ctr.Value
	}
	return 0
}

// Operators returns operator stats in first-seen order.
func (c *Collector) Operators() []*Stat { return c.ordered(c.ops, c.opSeq) }

func (c *Collector) ordered(m map[string]*Stat, seq []string) []*Stat {
	out := make([]*Stat, 0, len(seq))
	for _, n := range seq {
		out = append(out, m[n])
	}
	return out
}

// Render formats the collector in the layout of the paper's Table 5: the
// primitive-level block on top, the operator-level block below.
func (c *Collector) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %12s %9s %7s  %s\n",
		"input count", "total MB", "time (us)", "BW MB/s", "cyc/tup", "X100 primitive")
	for _, s := range c.Primitives() {
		fmt.Fprintf(&b, "%12d %10.1f %12.0f %9.0f %7.1f  %s\n",
			s.Tuples, float64(s.Bytes)/1e6, float64(s.Nanos)/1e3, s.MBPerSec(), s.CyclesPerTuple(), s.Name)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%12s %12s  %s\n", "tuples", "time (us)", "X100 operator")
	for _, s := range c.Operators() {
		fmt.Fprintf(&b, "%12d %12.0f  %s\n", s.Tuples, float64(s.Nanos)/1e3, s.Name)
	}
	if len(c.ctrSeq) > 0 {
		b.WriteString("\n")
		fmt.Fprintf(&b, "%12s  %s\n", "count", "X100 counter")
		for _, ctr := range c.Counters() {
			fmt.Fprintf(&b, "%12d  %s\n", ctr.Value, ctr.Name)
		}
	}
	if c.total > 0 {
		fmt.Fprintf(&b, "\nTOTAL %12.0f us\n", float64(c.total.Nanoseconds())/1e3)
	}
	return b.String()
}

// TopPrimitives returns up to k primitive stats sorted by descending time,
// for profile-style summaries.
func (c *Collector) TopPrimitives(k int) []*Stat {
	out := c.Primitives()
	sort.Slice(out, func(i, j int) bool { return out[i].Nanos > out[j].Nanos })
	if len(out) > k {
		out = out[:k]
	}
	return out
}
