package sched

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal(msg)
}

func TestPoolDefaults(t *testing.T) {
	if got := NewPool(0).Cap(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Cap() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if NewPool(-3).Cap() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative worker count must select GOMAXPROCS")
	}
	if NewPool(7).Cap() != 7 {
		t.Fatal("explicit worker count ignored")
	}
	if Default() != Default() {
		t.Fatal("Default must return one process-wide pool")
	}
}

// TestPoolFIFOOrder queues three waiters on a one-slot pool and checks
// releases admit them strictly in arrival order.
func TestPoolFIFOOrder(t *testing.T) {
	p := NewPool(1)
	holder := p.NewSlot()
	if !holder.Acquire() {
		t.Fatal("first acquire must succeed")
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		before := p.Stats().Waiting
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := p.NewSlot()
			s.Acquire()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release()
		}()
		// Admit waiters to the queue one at a time so arrival order is
		// deterministic.
		waitFor(t, func() bool { return p.Stats().Waiting == before+1 }, "waiter never queued")
	}
	holder.Release()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, g := range order {
		if g != i {
			t.Fatalf("admission order %v, want [0 1 2]", order)
		}
	}
	st := p.Stats()
	if st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
	if st.Waits != 3 {
		t.Fatalf("want 3 queued waits, got %+v", st)
	}
}

// TestYieldUncontended checks the fast paths: with no waiters, or within
// the quantum, Yield keeps the slot and counts no handoff.
func TestYieldUncontended(t *testing.T) {
	p := NewPool(1)
	s := p.NewSlot()
	s.Acquire()
	if !s.Yield() {
		t.Fatal("uncontended yield must succeed")
	}
	if !s.Held() {
		t.Fatal("uncontended yield must keep the slot")
	}
	if st := p.Stats(); st.Yields != 0 {
		t.Fatalf("uncontended yield must not count a handoff: %+v", st)
	}
	s.Release()
}

// TestYieldQuantum checks both halves of the pacing rule: a contended
// yield within the quantum keeps the slot; one past the quantum hands it
// to the oldest waiter and re-queues.
func TestYieldQuantum(t *testing.T) {
	p := NewPool(1)
	s := p.NewSlot()
	s.Acquire()
	done := make(chan struct{})
	go func() {
		w := p.NewSlot()
		w.Acquire()
		w.Release()
		close(done)
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 }, "waiter never queued")
	// Within the quantum: keep the slot even though someone is waiting.
	// Queueing the waiter may itself have burned the 1ms quantum on a slow
	// host, so pin the tenancy clock instead of racing it.
	s.heldSince = time.Now()
	if !s.Yield() || !s.Held() {
		t.Fatal("yield within quantum must keep the slot")
	}
	if st := p.Stats(); st.Yields != 0 || st.Waiting != 1 {
		t.Fatalf("within-quantum yield must not hand off: %+v", st)
	}
	// Past the quantum: hand off, re-queue, and come back holding.
	s.heldSince = time.Now().Add(-2 * Quantum)
	if !s.Yield() {
		t.Fatal("contended yield must reacquire")
	}
	if !s.Held() {
		t.Fatal("slot must be held after yield returns")
	}
	<-done
	if st := p.Stats(); st.Yields != 1 {
		t.Fatalf("want exactly one counted handoff: %+v", st)
	}
	s.Release()
}

// TestAcquireCancel closes the bound stop channel while queued: Acquire
// must return false, leave the queue clean, and leave the pool usable.
func TestAcquireCancel(t *testing.T) {
	p := NewPool(1)
	holder := p.NewSlot()
	holder.Acquire()
	stop := make(chan struct{})
	got := make(chan bool)
	go func() {
		s := p.NewSlot()
		s.Bind(stop)
		got <- s.Acquire()
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 }, "waiter never queued")
	close(stop)
	if <-got {
		t.Fatal("cancelled acquire must report false")
	}
	waitFor(t, func() bool { return p.Stats().Waiting == 0 }, "cancelled waiter left in queue")
	holder.Release()
	// The slot the cancelled waiter never took must still be grantable.
	s := p.NewSlot()
	if !s.Acquire() {
		t.Fatal("pool unusable after cancellation")
	}
	s.Release()
	if st := p.Stats(); st.InUse != 0 {
		t.Fatalf("slot leaked: %+v", st)
	}
}

// TestCancelRacesHandoff exercises the raced path: a release hands the
// slot to a waiter at the same moment its stop channel closes. Whatever
// interleaving wins, the slot must come back to the pool.
func TestCancelRacesHandoff(t *testing.T) {
	p := NewPool(1)
	for round := 0; round < 200; round++ {
		holder := p.NewSlot()
		holder.Acquire()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			s := p.NewSlot()
			s.Bind(stop)
			if s.Acquire() {
				s.Release()
			}
			close(done)
		}()
		waitFor(t, func() bool { return p.Stats().Waiting == 1 }, "waiter never queued")
		go close(stop)
		holder.Release()
		<-done
		waitFor(t, func() bool {
			st := p.Stats()
			return st.InUse == 0 && st.Waiting == 0
		}, "slot lost in cancel/handoff race")
	}
}

// TestPauseResume checks Pause releases the slot to a waiter and Resume
// takes it back.
func TestPauseResume(t *testing.T) {
	p := NewPool(1)
	s := p.NewSlot()
	s.Acquire()
	acquired := make(chan *Slot)
	go func() {
		w := p.NewSlot()
		w.Acquire()
		acquired <- w
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 }, "waiter never queued")
	s.Pause()
	w := <-acquired // pause handed the slot over
	if s.Held() {
		t.Fatal("paused slot must not be held")
	}
	w.Release()
	s.Resume()
	if !s.Held() {
		t.Fatal("resume must reacquire")
	}
	s.Release()
}

// TestNilSlot checks the nil handle contract serial pipelines rely on.
func TestNilSlot(t *testing.T) {
	var s *Slot
	s.Bind(nil)
	if !s.Acquire() || !s.Yield() {
		t.Fatal("nil slot must report success")
	}
	s.Pause()
	s.Resume()
	s.Release()
	if s.Held() {
		t.Fatal("nil slot is never held")
	}
}
