// Package sched implements process-wide admission control for query
// worker goroutines: a fixed pool of execution slots shared by every
// in-flight query.
//
// Go's runtime multiplexes any number of goroutines onto GOMAXPROCS
// threads, so spawning per-query workers never crashes — but with N
// concurrent queries each fanning out GOMAXPROCS pipelines, N*P runnable
// goroutines thrash caches and destroy the per-query latency the morsel
// size was tuned for. The pool caps the number of *runnable* worker
// pipelines at its slot count; excess workers queue FIFO, so every query
// makes progress in admission order (no starvation) and morsel-boundary
// yields rotate slots between queries. Rotation is paced by a time quantum
// (Quantum): a worker that has held its slot for less than the quantum
// keeps it through a yield, so under heavy oversubscription slots don't
// ping-pong between the working sets of dozens of queries at every morsel
// — each tenancy runs enough morsels back-to-back to amortize the cache
// refill, which is what keeps aggregate throughput flat while latency
// degrades gracefully.
//
// A Slot is a worker goroutine's handle on the pool. All Slot methods are
// nil-safe no-ops so serial pipelines (which never create slots) pay
// nothing, and they must be called from the single goroutine that owns
// the worker pipeline.
package sched

import (
	"runtime"
	"sync"
	"time"
)

// Quantum is the minimum slot tenancy: a Yield within Quantum of acquiring
// keeps the slot even when workers are queued. One millisecond is tens of
// morsels of work — long enough to amortize cache refill after a handoff,
// short enough that a queued short query starts within a few milliseconds
// times the queue depth.
const Quantum = time.Millisecond

// Pool is a FIFO semaphore of worker slots shared by the pipelines of all
// in-flight queries. Release hands the freed slot directly to the oldest
// waiter, so admission is strictly first-come-first-served.
type Pool struct {
	mu      sync.Mutex
	cap     int
	inUse   int
	waiters []chan struct{}

	admitted int64 // slot grants (fast-path + handoffs)
	waits    int64 // acquisitions that had to queue
	yields   int64 // voluntary morsel-boundary handoffs

	// memReserved sums the declared memory budgets of in-flight queries
	// (ReserveMemory/ReleaseMemory), so admission decisions can see the
	// aggregate budget commitment alongside slot occupancy.
	memReserved int64
}

// Stats is a point-in-time snapshot of pool occupancy and admission
// counters.
type Stats struct {
	// Cap is the slot count the pool was created with.
	Cap int
	// InUse is the number of currently held slots.
	InUse int
	// Waiting is the number of goroutines queued for a slot.
	Waiting int
	// Admitted counts every slot grant since creation.
	Admitted int64
	// Waits counts acquisitions that found the pool full and queued.
	Waits int64
	// Yields counts voluntary morsel-boundary slot handoffs.
	Yields int64
	// MemReserved is the sum of the declared memory budgets of in-flight
	// queries, in bytes.
	MemReserved int64
}

// NewPool creates a pool with n slots; n < 1 selects runtime.GOMAXPROCS.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{cap: n}
}

var defaultPool = struct {
	once sync.Once
	p    *Pool
}{}

// Default returns the process-wide pool, created on first use with
// GOMAXPROCS slots. Queries that don't select an explicit scheduler share
// it, which is the point: admission control only works when everyone is
// subject to it.
func Default() *Pool {
	defaultPool.once.Do(func() { defaultPool.p = NewPool(0) })
	return defaultPool.p
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return p.cap }

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Cap:         p.cap,
		InUse:       p.inUse,
		Waiting:     len(p.waiters),
		Admitted:    p.admitted,
		Waits:       p.waits,
		Yields:      p.yields,
		MemReserved: p.memReserved,
	}
}

// ReserveMemory records a query's declared memory budget for the duration
// of its execution; pair with ReleaseMemory. It never blocks or rejects —
// it makes aggregate budget commitment visible to admission decisions and
// Stats.
func (p *Pool) ReserveMemory(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.memReserved += n
	p.mu.Unlock()
}

// ReleaseMemory returns a budget recorded by ReserveMemory.
func (p *Pool) ReleaseMemory(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.memReserved -= n
	p.mu.Unlock()
}

// NewSlot creates an unacquired slot handle on the pool.
func (p *Pool) NewSlot() *Slot {
	if p == nil {
		return nil
	}
	return &Slot{pool: p}
}

// acquire blocks until a slot is granted, or stop closes first (returns
// false). The grant channel is buffered so a releaser never blocks handing
// off; an abandoned waiter that lost the race to a handoff returns the
// slot before reporting cancellation.
func (p *Pool) acquire(stop <-chan struct{}) bool {
	p.mu.Lock()
	if p.inUse < p.cap {
		p.inUse++
		p.admitted++
		p.mu.Unlock()
		return true
	}
	grant := make(chan struct{}, 1)
	p.waiters = append(p.waiters, grant)
	p.waits++
	p.mu.Unlock()
	if stop == nil {
		<-grant
		return true
	}
	select {
	case <-grant:
		return true
	case <-stop:
		p.mu.Lock()
		for i, w := range p.waiters {
			if w == grant {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				p.mu.Unlock()
				return false
			}
		}
		p.mu.Unlock()
		// A handoff raced the cancellation: the slot is (or is about to
		// be) in the grant buffer. Take it and give it back.
		<-grant
		p.release()
		return false
	}
}

// release frees a slot: handed straight to the oldest waiter if any
// (inUse is unchanged — the slot transfers), otherwise returned to the
// pool.
func (p *Pool) release() {
	p.mu.Lock()
	if len(p.waiters) > 0 {
		grant := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.admitted++
		p.mu.Unlock()
		grant <- struct{}{}
		return
	}
	p.inUse--
	p.mu.Unlock()
}

// Slot is one worker pipeline's handle on its pool. The zero of the type
// is a held-nothing handle; a nil *Slot is valid and makes every method a
// no-op (Acquire/Yield report success), so serial pipelines run untouched
// by admission control.
type Slot struct {
	pool      *Pool
	stop      <-chan struct{}
	held      bool
	paused    bool
	heldSince time.Time
}

// Bind attaches a cancellation channel: Acquire/Yield/Resume calls that
// are queued when stop closes give up and report false instead of waiting
// for a slot that an abandoned query no longer needs.
func (s *Slot) Bind(stop <-chan struct{}) {
	if s == nil {
		return
	}
	s.stop = stop
}

// Acquire blocks until the slot is held. It returns false only when the
// bound stop channel closed while queued; the slot is then not held.
func (s *Slot) Acquire() bool {
	if s == nil || s.held {
		return true
	}
	if !s.pool.acquire(s.stop) {
		return false
	}
	s.held = true
	s.heldSince = time.Now()
	return true
}

// Release returns a held slot to the pool (no-op when not held).
func (s *Slot) Release() {
	if s == nil || !s.held {
		return
	}
	s.held = false
	s.pool.release()
}

// Yield offers the slot to the oldest waiter at a natural scheduling
// boundary (a morsel claim). Within Quantum of acquiring, or when nobody
// is waiting, it keeps the slot — the fast paths are a clock read and at
// most one mutex acquisition. Otherwise the slot is handed off and the
// caller re-queues at the back, which is what rotates cores between
// queries under contention. Returns false when cancelled while re-queued.
func (s *Slot) Yield() bool {
	if s == nil || !s.held {
		return true
	}
	if time.Since(s.heldSince) < Quantum {
		return true
	}
	p := s.pool
	p.mu.Lock()
	if len(p.waiters) == 0 {
		p.mu.Unlock()
		return true
	}
	grant := p.waiters[0]
	p.waiters = p.waiters[1:]
	p.yields++
	p.admitted++
	p.mu.Unlock()
	grant <- struct{}{}
	s.held = false
	return s.Acquire()
}

// Pause releases a held slot before the caller blocks on work it cannot
// progress (waiting for a shared join build owned by other workers).
// Pair with Resume.
func (s *Slot) Pause() {
	if s == nil || !s.held {
		return
	}
	s.paused = true
	s.held = false
	s.pool.release()
}

// Resume reacquires after Pause. Cancellation while queued leaves the
// slot unheld, which is safe: a cancelled worker only unwinds.
func (s *Slot) Resume() {
	if s == nil || !s.paused {
		return
	}
	s.paused = false
	s.Acquire()
}

// Held reports whether the slot is currently held (tests).
func (s *Slot) Held() bool { return s != nil && s.held }
