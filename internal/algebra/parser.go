package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"x100/internal/dateutil"
	"x100/internal/expr"
	"x100/internal/vector"
)

// Parse reads a plan in the paper's textual X100 algebra syntax, e.g.:
//
//	Aggr(
//	  Project(
//	    Select(Scan(lineitem), <(l_shipdate, date('1998-09-03'))),
//	    [discountprice = *(-(flt('1.0'), l_discount), l_extendedprice)]),
//	  [l_returnflag],
//	  [sum_disc_price = sum(discountprice)])
//
// Operators: Table/Scan, Select, Project, Aggr, HashAggr, DirectAggr,
// OrdAggr, Order, TopN, Fetch1Join, FetchNJoin, Array. Expressions use
// prefix syntax: +,-,*,/ for arithmetic; <,<=,>,>=,==,!= for comparison;
// and/or/not; like/notlike; in; case; year/substr/square/concat;
// flt/int/lng/dbl casts; date('YYYY-MM-DD') and str('...') literals.
func Parse(input string) (Node, error) {
	p := &parser{lex: newLexer(input)}
	n, err := p.parsePlan()
	if err != nil {
		return nil, err
	}
	if tok := p.lex.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("algebra: trailing input at %q", tok.text)
	}
	return n, nil
}

// ParseExpr parses a standalone expression in the same syntax.
func ParseExpr(input string) (expr.Expr, error) {
	p := &parser{lex: newLexer(input)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if tok := p.lex.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("algebra: trailing input at %q", tok.text)
	}
	return e, nil
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) [ ] ,
	tokOp    // + - * / < <= > >= == != =
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	in   string
	pos  int
	cur  token
	next *token
}

func newLexer(in string) *lexer {
	l := &lexer{in: in}
	return l
}

func (l *lexer) peek() token {
	if l.next == nil {
		t := l.scan()
		l.next = &t
	}
	return *l.next
}

func (l *lexer) take() token {
	t := l.peek()
	l.next = nil
	return t
}

func (l *lexer) scan() token {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF}
	}
	c := l.in[l.pos]
	switch {
	case c == '(' || c == ')' || c == '[' || c == ']' || c == ',':
		l.pos++
		return token{kind: tokPunct, text: string(c)}
	case c == '\'':
		end := strings.IndexByte(l.in[l.pos+1:], '\'')
		if end < 0 {
			return token{kind: tokEOF, text: "unterminated string"}
		}
		s := l.in[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tokString, text: s}
	case c == '<' || c == '>' || c == '=' || c == '!':
		start := l.pos
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.in[start:l.pos]}
	case c == '+' || c == '*' || c == '/':
		l.pos++
		return token{kind: tokOp, text: string(c)}
	case c == '-':
		// Minus is an operator unless followed by a digit (negative literal).
		if l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
			return l.scanNumber()
		}
		l.pos++
		return token{kind: tokOp, text: "-"}
	case c >= '0' && c <= '9':
		return l.scanNumber()
	default:
		start := l.pos
		for l.pos < len(l.in) {
			c := l.in[l.pos]
			if c == '_' || c == '#' || c == '@' || c == '.' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
				l.pos++
				continue
			}
			break
		}
		if l.pos == start {
			l.pos++
			return token{kind: tokPunct, text: string(c)}
		}
		return token{kind: tokIdent, text: l.in[start:l.pos]}
	}
}

func (l *lexer) scanNumber() token {
	start := l.pos
	if l.in[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return token{kind: tokNumber, text: l.in[start:l.pos]}
}

type parser struct {
	lex *lexer
}

func (p *parser) expect(kind tokKind, text string) error {
	t := p.lex.take()
	if t.kind != kind || (text != "" && t.text != text) {
		return fmt.Errorf("algebra: expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *parser) parsePlan() (Node, error) {
	t := p.lex.take()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("algebra: expected operator name, got %q", t.text)
	}
	if err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var n Node
	var err error
	switch t.text {
	case "Table", "Scan":
		n, err = p.parseScan()
	case "Select":
		n, err = p.parseSelect()
	case "Project":
		n, err = p.parseProject()
	case "Aggr", "HashAggr", "DirectAggr", "OrdAggr":
		n, err = p.parseAggr(t.text)
	case "Order":
		n, err = p.parseOrder()
	case "TopN":
		n, err = p.parseTopN()
	case "Fetch1Join":
		n, err = p.parseFetch1Join()
	case "FetchNJoin":
		n, err = p.parseFetchNJoin()
	case "Array":
		n, err = p.parseArray()
	default:
		return nil, fmt.Errorf("algebra: unknown operator %q", t.text)
	}
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseScan() (Node, error) {
	t := p.lex.take()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("algebra: expected table name, got %q", t.text)
	}
	s := &Scan{Table: t.text}
	if p.lex.peek().text == "," {
		p.lex.take()
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		s.Cols = cols
	}
	return s, nil
}

func (p *parser) parseSelect() (Node, error) {
	in, err := p.parseChild()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Select{Input: in, Pred: pred}, nil
}

// parseChild parses a nested plan; a bare identifier is shorthand for
// Scan(ident).
func (p *parser) parseChild() (Node, error) {
	t := p.lex.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("algebra: expected plan, got %q", t.text)
	}
	switch t.text {
	case "Table", "Scan", "Select", "Project", "Aggr", "HashAggr", "DirectAggr",
		"OrdAggr", "Order", "TopN", "Fetch1Join", "FetchNJoin", "Array":
		return p.parsePlan()
	default:
		p.lex.take()
		return &Scan{Table: t.text}, nil
	}
}

func (p *parser) parseProject() (Node, error) {
	in, err := p.parseChild()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	nes, err := p.parseNamedExprList()
	if err != nil {
		return nil, err
	}
	return &Project{Input: in, Exprs: nes}, nil
}

func (p *parser) parseAggr(kind string) (Node, error) {
	in, err := p.parseChild()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	groups, err := p.parseNamedExprList()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	aggs, err := p.parseAggList()
	if err != nil {
		return nil, err
	}
	a := &Aggr{Input: in, GroupBy: groups, Aggs: aggs}
	switch kind {
	case "HashAggr":
		a.Mode = ModeHash
	case "DirectAggr":
		a.Mode = ModeDirect
	case "OrdAggr":
		a.Mode = ModeOrdered
	}
	return a, nil
}

func (p *parser) parseOrder() (Node, error) {
	in, err := p.parseChild()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	keys, err := p.parseOrdList()
	if err != nil {
		return nil, err
	}
	return &Order{Input: in, Keys: keys}, nil
}

func (p *parser) parseTopN() (Node, error) {
	in, err := p.parseChild()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	keys, err := p.parseOrdList()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	t := p.lex.take()
	if t.kind != tokNumber {
		return nil, fmt.Errorf("algebra: TopN limit must be a number, got %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return nil, err
	}
	return &TopN{Input: in, Keys: keys, N: n}, nil
}

func (p *parser) parseFetch1Join() (Node, error) {
	in, err := p.parseChild()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	tbl := p.lex.take()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("algebra: expected table name, got %q", tbl.text)
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	rowID, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	cols, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	return &Fetch1Join{Input: in, Table: tbl.text, RowID: rowID, Cols: cols}, nil
}

func (p *parser) parseFetchNJoin() (Node, error) {
	in, err := p.parseChild()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	tbl := p.lex.take()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("algebra: expected table name, got %q", tbl.text)
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	rangeOf := p.lex.take()
	if rangeOf.kind != tokIdent {
		return nil, fmt.Errorf("algebra: expected range column, got %q", rangeOf.text)
	}
	if err := p.expect(tokPunct, ","); err != nil {
		return nil, err
	}
	cols, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	return &FetchNJoin{Input: in, Table: tbl.text, RangeOf: rangeOf.text, Cols: cols}, nil
}

func (p *parser) parseArray() (Node, error) {
	if err := p.expect(tokPunct, "["); err != nil {
		return nil, err
	}
	var dims []int
	for {
		t := p.lex.take()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("algebra: expected dimension, got %q", t.text)
		}
		d, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		dims = append(dims, d)
		nxt := p.lex.take()
		if nxt.text == "]" {
			break
		}
		if nxt.text != "," {
			return nil, fmt.Errorf("algebra: expected , or ], got %q", nxt.text)
		}
	}
	return &Array{Dims: dims}, nil
}

func (p *parser) parseIdentList() ([]string, error) {
	if err := p.expect(tokPunct, "["); err != nil {
		return nil, err
	}
	var out []string
	if p.lex.peek().text == "]" {
		p.lex.take()
		return out, nil
	}
	for {
		t := p.lex.take()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("algebra: expected identifier, got %q", t.text)
		}
		out = append(out, t.text)
		nxt := p.lex.take()
		if nxt.text == "]" {
			return out, nil
		}
		if nxt.text != "," {
			return nil, fmt.Errorf("algebra: expected , or ], got %q", nxt.text)
		}
	}
}

func (p *parser) parseNamedExprList() ([]NamedExpr, error) {
	if err := p.expect(tokPunct, "["); err != nil {
		return nil, err
	}
	var out []NamedExpr
	if p.lex.peek().text == "]" {
		p.lex.take()
		return out, nil
	}
	for {
		ne, err := p.parseNamedExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, ne)
		nxt := p.lex.take()
		if nxt.text == "]" {
			return out, nil
		}
		if nxt.text != "," {
			return nil, fmt.Errorf("algebra: expected , or ], got %q", nxt.text)
		}
	}
}

func (p *parser) parseNamedExpr() (NamedExpr, error) {
	t := p.lex.peek()
	if t.kind == tokIdent {
		// Could be "name = expr" or a bare column.
		name := p.lex.take()
		if p.lex.peek().text == "=" {
			p.lex.take()
			e, err := p.parseExpr()
			if err != nil {
				return NamedExpr{}, err
			}
			return NamedExpr{Alias: name.text, E: e}, nil
		}
		// Bare column — but it might be a call like year(x) without alias.
		if p.lex.peek().text == "(" {
			e, err := p.parseCall(name.text)
			if err != nil {
				return NamedExpr{}, err
			}
			return NamedExpr{Alias: e.String(), E: e}, nil
		}
		return NamedExpr{Alias: name.text, E: expr.C(name.text)}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return NamedExpr{}, err
	}
	return NamedExpr{Alias: e.String(), E: e}, nil
}

func (p *parser) parseAggList() ([]AggExpr, error) {
	if err := p.expect(tokPunct, "["); err != nil {
		return nil, err
	}
	var out []AggExpr
	if p.lex.peek().text == "]" {
		p.lex.take()
		return out, nil
	}
	for {
		name := p.lex.take()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("algebra: expected aggregate alias, got %q", name.text)
		}
		if err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		fn := p.lex.take()
		if fn.kind != tokIdent {
			return nil, fmt.Errorf("algebra: expected aggregate function, got %q", fn.text)
		}
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var arg expr.Expr
		if p.lex.peek().text != ")" {
			var err error
			arg, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		var kind AggFn
		switch fn.text {
		case "sum":
			kind = AggSum
		case "count":
			kind = AggCount
		case "min":
			kind = AggMin
		case "max":
			kind = AggMax
		case "avg":
			kind = AggAvg
		default:
			return nil, fmt.Errorf("algebra: unknown aggregate %q", fn.text)
		}
		if kind != AggCount && arg == nil {
			return nil, fmt.Errorf("algebra: aggregate %s requires an argument", fn.text)
		}
		out = append(out, AggExpr{Alias: name.text, Fn: kind, Arg: arg})
		nxt := p.lex.take()
		if nxt.text == "]" {
			return out, nil
		}
		if nxt.text != "," {
			return nil, fmt.Errorf("algebra: expected , or ], got %q", nxt.text)
		}
	}
}

func (p *parser) parseOrdList() ([]OrdExpr, error) {
	if err := p.expect(tokPunct, "["); err != nil {
		return nil, err
	}
	var out []OrdExpr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		o := OrdExpr{E: e}
		if t := p.lex.peek(); t.kind == tokIdent && (t.text == "ASC" || t.text == "DESC") {
			p.lex.take()
			o.Desc = t.text == "DESC"
		}
		out = append(out, o)
		nxt := p.lex.take()
		if nxt.text == "]" {
			return out, nil
		}
		if nxt.text != "," {
			return nil, fmt.Errorf("algebra: expected , or ], got %q", nxt.text)
		}
	}
}

func (p *parser) parseExpr() (expr.Expr, error) {
	t := p.lex.take()
	switch t.kind {
	case tokOp:
		return p.parseOpCall(t.text)
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return expr.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return expr.Int(n), nil
	case tokString:
		return expr.Str(t.text), nil
	case tokIdent:
		if p.lex.peek().text == "(" {
			return p.parseCall(t.text)
		}
		return expr.C(t.text), nil
	default:
		return nil, fmt.Errorf("algebra: unexpected token %q in expression", t.text)
	}
}

func (p *parser) parseOpCall(op string) (expr.Expr, error) {
	args, err := p.parseArgs(2, 2)
	if err != nil {
		return nil, fmt.Errorf("algebra: operator %s: %w", op, err)
	}
	switch op {
	case "+":
		return expr.AddE(args[0], args[1]), nil
	case "-":
		return expr.SubE(args[0], args[1]), nil
	case "*":
		return expr.MulE(args[0], args[1]), nil
	case "/":
		return expr.DivE(args[0], args[1]), nil
	case "<":
		return expr.LTE(args[0], args[1]), nil
	case "<=":
		return expr.LEE(args[0], args[1]), nil
	case ">":
		return expr.GTE(args[0], args[1]), nil
	case ">=":
		return expr.GEE(args[0], args[1]), nil
	case "==", "=":
		return expr.EQE(args[0], args[1]), nil
	case "!=":
		return expr.NEE(args[0], args[1]), nil
	default:
		return nil, fmt.Errorf("algebra: unknown operator %q", op)
	}
}

func (p *parser) parseArgs(minN, maxN int) ([]expr.Expr, error) {
	if err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var args []expr.Expr
	if p.lex.peek().text == ")" {
		p.lex.take()
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			nxt := p.lex.take()
			if nxt.text == ")" {
				break
			}
			if nxt.text != "," {
				return nil, fmt.Errorf("expected , or ), got %q", nxt.text)
			}
		}
	}
	if len(args) < minN || (maxN >= 0 && len(args) > maxN) {
		return nil, fmt.Errorf("expected %d..%d arguments, got %d", minN, maxN, len(args))
	}
	return args, nil
}

func (p *parser) parseCall(fn string) (expr.Expr, error) {
	switch fn {
	case "flt", "dbl":
		// flt('1.0') literal or dbl(expr) cast.
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		t := p.lex.peek()
		if t.kind == tokString {
			p.lex.take()
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("algebra: bad float literal %q", t.text)
			}
			if err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return expr.Float(f), nil
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return expr.CastE(vector.Float64, arg), nil
	case "lng":
		args, err := p.parseArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return expr.CastE(vector.Int64, args[0]), nil
	case "int", "sint":
		args, err := p.parseArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return expr.CastE(vector.Int32, args[0]), nil
	case "date":
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		t := p.lex.take()
		if t.kind != tokString {
			return nil, fmt.Errorf("algebra: date() wants a 'YYYY-MM-DD' literal")
		}
		d, err := dateutil.Parse(t.text)
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return expr.DateConst(d), nil
	case "str":
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		t := p.lex.take()
		if t.kind != tokString {
			return nil, fmt.Errorf("algebra: str() wants a string literal")
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return expr.Str(t.text), nil
	case "and":
		args, err := p.parseArgs(2, -1)
		if err != nil {
			return nil, err
		}
		return expr.AndE(args...), nil
	case "or":
		args, err := p.parseArgs(2, -1)
		if err != nil {
			return nil, err
		}
		return expr.OrE(args...), nil
	case "not":
		args, err := p.parseArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return expr.NotE(args[0]), nil
	case "like", "notlike":
		args, err := p.parseArgs(2, 2)
		if err != nil {
			return nil, err
		}
		pat, ok := args[1].(*expr.Const)
		if !ok || pat.Typ != vector.String {
			return nil, fmt.Errorf("algebra: like pattern must be a string literal")
		}
		if fn == "like" {
			return expr.LikeE(args[0], pat.Val.(string)), nil
		}
		return expr.NotLikeE(args[0], pat.Val.(string)), nil
	case "in":
		args, err := p.parseArgs(2, -1)
		if err != nil {
			return nil, err
		}
		list := make([]*expr.Const, 0, len(args)-1)
		for _, a := range args[1:] {
			c, ok := a.(*expr.Const)
			if !ok {
				return nil, fmt.Errorf("algebra: in-list elements must be literals")
			}
			list = append(list, c)
		}
		return expr.InE(args[0], list...), nil
	case "case":
		args, err := p.parseArgs(3, 3)
		if err != nil {
			return nil, err
		}
		return expr.CaseE(args[0], args[1], args[2]), nil
	case "year":
		args, err := p.parseArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return expr.YearE(args[0]), nil
	case "square":
		args, err := p.parseArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return expr.SquareE(args[0]), nil
	case "concat":
		args, err := p.parseArgs(2, 2)
		if err != nil {
			return nil, err
		}
		return expr.ConcatE(args[0], args[1]), nil
	case "substr":
		args, err := p.parseArgs(3, 3)
		if err != nil {
			return nil, err
		}
		start, ok1 := args[1].(*expr.Const)
		length, ok2 := args[2].(*expr.Const)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("algebra: substr start/length must be integer literals")
		}
		return expr.SubstrE(args[0], int(start.Val.(int64)), int(length.Val.(int64))), nil
	default:
		return nil, fmt.Errorf("algebra: unknown function %q", fn)
	}
}
