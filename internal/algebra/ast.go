// Package algebra defines the X100 relational algebra of Section 4.1: the
// logical plan language all three engines in this repository execute. A
// plan is a tree of operators over Dataflows; Table is a materialized
// relation, Scan turns a Table into a Dataflow, and the remaining operators
// transform Dataflows (Figure 7 of the paper).
//
// Plans are built either with the Go constructors in this package or parsed
// from the paper's textual syntax (see Parse):
//
//	Aggr(
//	  Project(
//	    Select(Table(lineitem), <(shipdate, date('1998-09-03'))),
//	    [discountprice = *(-(flt('1.0'), discount), extendedprice)]),
//	  [returnflag],
//	  [sum_disc_price = sum(discountprice)])
package algebra

import (
	"fmt"

	"x100/internal/expr"
	"x100/internal/vector"
)

// Node is a plan operator.
type Node interface {
	// Out computes the output schema against a catalog resolver.
	Out(r Resolver) (vector.Schema, error)
	// Name returns the operator name for EXPLAIN.
	Name() string
	// Children returns input operators.
	Children() []Node
}

// Resolver supplies base-table schemas (implemented by the storage layer).
type Resolver interface {
	TableSchema(name string) (vector.Schema, error)
}

// CodeResolver is implemented by storage layers that expose the raw
// enumeration codes of enum columns as virtual "<column>#" scan targets.
type CodeResolver interface {
	// CodeColumnType returns the physical code type (UInt8/UInt16) of an
	// enum column.
	CodeColumnType(table, column string) (vector.Type, error)
}

// Scan reads a base table, producing only the named columns (vertically
// fragmented storage means unused columns are never touched). An empty
// Cols list means all columns. Scan can also expose the virtual #rowid
// column by listing "#rowid".
type Scan struct {
	Table string
	Cols  []string
}

// NewScan builds a Scan node.
func NewScan(table string, cols ...string) *Scan { return &Scan{Table: table, Cols: cols} }

// Out implements Node.
func (s *Scan) Out(r Resolver) (vector.Schema, error) {
	ts, err := r.TableSchema(s.Table)
	if err != nil {
		return nil, err
	}
	if len(s.Cols) == 0 {
		return ts.Clone(), nil
	}
	out := make(vector.Schema, 0, len(s.Cols))
	for _, c := range s.Cols {
		if c == RowIDCol {
			out = append(out, vector.Field{Name: RowIDCol, Type: vector.Int32})
			continue
		}
		f, ok := ts.Field(c)
		if !ok {
			if len(c) > 1 && c[len(c)-1] == '#' {
				if cr, isCR := r.(CodeResolver); isCR {
					t, err := cr.CodeColumnType(s.Table, c[:len(c)-1])
					if err != nil {
						return nil, err
					}
					out = append(out, vector.Field{Name: c, Type: t})
					continue
				}
			}
			return nil, fmt.Errorf("algebra: table %s has no column %q", s.Table, c)
		}
		out = append(out, f)
	}
	return out, nil
}

// Name implements Node.
func (s *Scan) Name() string { return "Scan(" + s.Table + ")" }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// RowIDCol is the name of the virtual dense row id column every table has
// (the void head column of MonetDB BATs).
const RowIDCol = "#rowid"

// Select filters a dataflow by a boolean predicate, producing a dataflow of
// the same shape (it only attaches a selection vector in the X100 engine).
type Select struct {
	Input Node
	Pred  expr.Expr
}

// NewSelect builds a Select node.
func NewSelect(in Node, pred expr.Expr) *Select { return &Select{Input: in, Pred: pred} }

// Out implements Node.
func (s *Select) Out(r Resolver) (vector.Schema, error) {
	in, err := s.Input.Out(r)
	if err != nil {
		return nil, err
	}
	t, err := s.Pred.Type(in)
	if err != nil {
		return nil, err
	}
	if t != vector.Bool {
		return nil, fmt.Errorf("algebra: select predicate has type %v, want bool", t)
	}
	return in, nil
}

// Name implements Node.
func (s *Select) Name() string { return "Select(" + s.Pred.String() + ")" }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// NamedExpr binds an expression to an output column name.
type NamedExpr struct {
	Alias string
	E     expr.Expr
}

// NE builds a named expression.
func NE(alias string, e expr.Expr) NamedExpr { return NamedExpr{Alias: alias, E: e} }

func (n NamedExpr) String() string {
	if c, ok := n.E.(*expr.Col); ok && c.Name == n.Alias {
		return n.Alias
	}
	return n.Alias + " = " + n.E.String()
}

// Project computes expressions; it defines the full output shape (column
// pass-through is an identity expression). Per the paper, Project performs
// no duplicate elimination.
type Project struct {
	Input Node
	Exprs []NamedExpr
}

// NewProject builds a Project node.
func NewProject(in Node, exprs ...NamedExpr) *Project { return &Project{Input: in, Exprs: exprs} }

// Out implements Node.
func (p *Project) Out(r Resolver) (vector.Schema, error) {
	in, err := p.Input.Out(r)
	if err != nil {
		return nil, err
	}
	out := make(vector.Schema, len(p.Exprs))
	for i, ne := range p.Exprs {
		t, err := ne.E.Type(in)
		if err != nil {
			return nil, err
		}
		out[i] = vector.Field{Name: ne.Alias, Type: t}
	}
	return out, nil
}

// Name implements Node.
func (p *Project) Name() string {
	s := "Project["
	for i, ne := range p.Exprs {
		if i > 0 {
			s += ", "
		}
		s += ne.String()
	}
	return s + "]"
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// AggFn enumerates aggregate functions.
type AggFn uint8

// Aggregate functions.
const (
	AggSum AggFn = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

func (f AggFn) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return "agg?"
	}
}

// AggExpr is one aggregate computation; Arg is nil for count(*).
type AggExpr struct {
	Alias string
	Fn    AggFn
	Arg   expr.Expr
}

// Sum, Count, Min, Max, Avg build aggregate expressions.
func Sum(alias string, arg expr.Expr) AggExpr { return AggExpr{Alias: alias, Fn: AggSum, Arg: arg} }
func Count(alias string) AggExpr              { return AggExpr{Alias: alias, Fn: AggCount} }
func Min(alias string, arg expr.Expr) AggExpr { return AggExpr{Alias: alias, Fn: AggMin, Arg: arg} }
func Max(alias string, arg expr.Expr) AggExpr { return AggExpr{Alias: alias, Fn: AggMax, Arg: arg} }
func Avg(alias string, arg expr.Expr) AggExpr { return AggExpr{Alias: alias, Fn: AggAvg, Arg: arg} }

func (a AggExpr) String() string {
	if a.Fn == AggCount && a.Arg == nil {
		return a.Alias + " = count()"
	}
	return fmt.Sprintf("%s = %s(%s)", a.Alias, a.Fn, a.Arg)
}

// resultType computes the output type of the aggregate.
func (a AggExpr) resultType(in vector.Schema) (vector.Type, error) {
	switch a.Fn {
	case AggCount:
		return vector.Int64, nil
	case AggAvg:
		return vector.Float64, nil
	default:
		t, err := a.Arg.Type(in)
		if err != nil {
			return vector.Unknown, err
		}
		if a.Fn == AggSum {
			switch t.Physical() {
			case vector.Float64:
				return vector.Float64, nil
			default:
				if !t.IsNumeric() {
					return vector.Unknown, fmt.Errorf("algebra: sum of %v", t)
				}
				return vector.Int64, nil
			}
		}
		return t, nil
	}
}

// AggMode selects the physical aggregation flavor (paper Section 4.1.2):
// hash aggregation in general, direct-array aggregation for small key
// domains, and ordered aggregation when groups arrive consecutively.
type AggMode uint8

// Aggregation modes. ModeAuto lets the engine pick.
const (
	ModeAuto AggMode = iota
	ModeHash
	ModeDirect
	ModeOrdered
)

func (m AggMode) String() string {
	switch m {
	case ModeHash:
		return "HASH"
	case ModeDirect:
		return "DIRECT"
	case ModeOrdered:
		return "ORDERED"
	default:
		return "AUTO"
	}
}

// Aggr groups by the given expressions and computes aggregates. With no
// group-by expressions it produces exactly one row (scalar aggregation);
// with no aggregates it performs duplicate elimination.
type Aggr struct {
	Input   Node
	GroupBy []NamedExpr
	Aggs    []AggExpr
	Mode    AggMode
}

// NewAggr builds an aggregation node.
func NewAggr(in Node, groupBy []NamedExpr, aggs []AggExpr) *Aggr {
	return &Aggr{Input: in, GroupBy: groupBy, Aggs: aggs}
}

// WithMode sets the physical aggregation mode.
func (a *Aggr) WithMode(m AggMode) *Aggr {
	a.Mode = m
	return a
}

// Out implements Node.
func (a *Aggr) Out(r Resolver) (vector.Schema, error) {
	in, err := a.Input.Out(r)
	if err != nil {
		return nil, err
	}
	out := make(vector.Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		t, err := g.E.Type(in)
		if err != nil {
			return nil, err
		}
		out = append(out, vector.Field{Name: g.Alias, Type: t})
	}
	for _, ag := range a.Aggs {
		t, err := ag.resultType(in)
		if err != nil {
			return nil, err
		}
		out = append(out, vector.Field{Name: ag.Alias, Type: t})
	}
	return out, nil
}

// Name implements Node.
func (a *Aggr) Name() string {
	s := fmt.Sprintf("Aggr(%s)[", a.Mode)
	for i, g := range a.GroupBy {
		if i > 0 {
			s += ", "
		}
		s += g.String()
	}
	s += "]["
	for i, ag := range a.Aggs {
		if i > 0 {
			s += ", "
		}
		s += ag.String()
	}
	return s + "]"
}

// Children implements Node.
func (a *Aggr) Children() []Node { return []Node{a.Input} }

// JoinKind enumerates join semantics.
type JoinKind uint8

// Join kinds. Semi and Anti implement decorrelated EXISTS / NOT EXISTS;
// LeftOuter keeps unmatched left rows with zero/empty right columns (used
// by Q13); Mark adds a boolean match column.
const (
	Inner JoinKind = iota
	Semi
	Anti
	LeftOuter
	Mark
)

func (k JoinKind) String() string {
	switch k {
	case Inner:
		return "inner"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	case LeftOuter:
		return "leftouter"
	case Mark:
		return "mark"
	default:
		return "join?"
	}
}

// EquiCond equates a left column with a right column.
type EquiCond struct{ L, R string }

// Join combines a left dataflow with a right dataflow. With equi-conditions
// the engines build a hash table on the right side; without any it degrades
// to CartProd + Select (the paper's default nested-loop join). Residual is
// an extra predicate over the concatenated schema. MarkCol names the output
// column for Mark joins.
type Join struct {
	Left, Right Node
	Kind        JoinKind
	On          []EquiCond
	Residual    expr.Expr
	MarkCol     string
}

// NewJoin builds an inner equi-join.
func NewJoin(l, r Node, on ...EquiCond) *Join { return &Join{Left: l, Right: r, On: on} }

// NewJoinKind builds a join of the given kind.
func NewJoinKind(kind JoinKind, l, r Node, on ...EquiCond) *Join {
	return &Join{Left: l, Right: r, Kind: kind, On: on}
}

// WithResidual attaches a residual predicate evaluated on joined rows.
func (j *Join) WithResidual(e expr.Expr) *Join {
	j.Residual = e
	return j
}

// WithMark names the mark column of a Mark join.
func (j *Join) WithMark(col string) *Join {
	j.MarkCol = col
	return j
}

// Out implements Node.
func (j *Join) Out(r Resolver) (vector.Schema, error) {
	ls, err := j.Left.Out(r)
	if err != nil {
		return nil, err
	}
	rs, err := j.Right.Out(r)
	if err != nil {
		return nil, err
	}
	for _, c := range j.On {
		if ls.ColIndex(c.L) < 0 {
			return nil, fmt.Errorf("algebra: join: left has no column %q", c.L)
		}
		if rs.ColIndex(c.R) < 0 {
			return nil, fmt.Errorf("algebra: join: right has no column %q", c.R)
		}
	}
	switch j.Kind {
	case Semi, Anti:
		return ls.Clone(), nil
	case Mark:
		out := ls.Clone()
		return append(out, vector.Field{Name: j.MarkCol, Type: vector.Bool}), nil
	default:
		out := ls.Clone()
		for _, f := range rs {
			if out.ColIndex(f.Name) >= 0 {
				return nil, fmt.Errorf("algebra: join output has duplicate column %q", f.Name)
			}
			out = append(out, f)
		}
		if j.Residual != nil {
			t, err := j.Residual.Type(out)
			if err != nil {
				return nil, err
			}
			if t != vector.Bool {
				return nil, fmt.Errorf("algebra: join residual has type %v", t)
			}
		}
		return out, nil
	}
}

// Name implements Node.
func (j *Join) Name() string {
	s := fmt.Sprintf("Join(%s)[", j.Kind)
	for i, c := range j.On {
		if i > 0 {
			s += ", "
		}
		s += c.L + "=" + c.R
	}
	s += "]"
	if j.Residual != nil {
		s += "{" + j.Residual.String() + "}"
	}
	return s
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Fetch1Join positionally fetches columns of a referenced table by an int32
// row-id expression over the input (paper Section 4.1.2). Each fetched
// column may be renamed via the As list (empty alias keeps the name).
type Fetch1Join struct {
	Input Node
	Table string
	RowID expr.Expr
	Cols  []string
	As    []string
}

// NewFetch1Join builds a positional fetch join.
func NewFetch1Join(in Node, table string, rowID expr.Expr, cols ...string) *Fetch1Join {
	return &Fetch1Join{Input: in, Table: table, RowID: rowID, Cols: cols}
}

// Renamed sets output aliases for the fetched columns.
func (f *Fetch1Join) Renamed(as ...string) *Fetch1Join {
	f.As = as
	return f
}

// Out implements Node.
func (f *Fetch1Join) Out(r Resolver) (vector.Schema, error) {
	in, err := f.Input.Out(r)
	if err != nil {
		return nil, err
	}
	t, err := f.RowID.Type(in)
	if err != nil {
		return nil, err
	}
	if t.Physical() != vector.Int32 {
		return nil, fmt.Errorf("algebra: fetch1join rowid expression has type %v, want int32", t)
	}
	ts, err := r.TableSchema(f.Table)
	if err != nil {
		return nil, err
	}
	out := in.Clone()
	for i, c := range f.Cols {
		fl, ok := ts.Field(c)
		if !ok {
			return nil, fmt.Errorf("algebra: table %s has no column %q", f.Table, c)
		}
		name := c
		if i < len(f.As) && f.As[i] != "" {
			name = f.As[i]
		}
		if out.ColIndex(name) >= 0 {
			return nil, fmt.Errorf("algebra: fetch1join output has duplicate column %q", name)
		}
		out = append(out, vector.Field{Name: name, Type: fl.Type})
	}
	return out, nil
}

// Name implements Node.
func (f *Fetch1Join) Name() string {
	return fmt.Sprintf("Fetch1Join(%s by %s)%v", f.Table, f.RowID, f.Cols)
}

// Children implements Node.
func (f *Fetch1Join) Children() []Node { return []Node{f.Input} }

// FetchNJoin expands each input row into the contiguous row range
// [Start(row), End(row)) of the referenced table via a range index, fetching
// the given columns (the 1-to-N positional join of Section 4.1.2; e.g.
// orders -> lineitem with lineitem clustered by order).
type FetchNJoin struct {
	Input Node
	Table string
	// RangeOf names the input column holding the referenced-table row id
	// whose range index drives the expansion.
	RangeOf string
	Cols    []string
	As      []string
}

// NewFetchNJoin builds a range fetch join.
func NewFetchNJoin(in Node, table, rangeOf string, cols ...string) *FetchNJoin {
	return &FetchNJoin{Input: in, Table: table, RangeOf: rangeOf, Cols: cols}
}

// Renamed sets output aliases for the fetched columns.
func (f *FetchNJoin) Renamed(as ...string) *FetchNJoin {
	f.As = as
	return f
}

// Out implements Node.
func (f *FetchNJoin) Out(r Resolver) (vector.Schema, error) {
	in, err := f.Input.Out(r)
	if err != nil {
		return nil, err
	}
	if i := in.ColIndex(f.RangeOf); i < 0 {
		return nil, fmt.Errorf("algebra: fetchnjoin input has no column %q", f.RangeOf)
	} else if in[i].Type.Physical() != vector.Int32 {
		return nil, fmt.Errorf("algebra: fetchnjoin range column %q must be int32", f.RangeOf)
	}
	ts, err := r.TableSchema(f.Table)
	if err != nil {
		return nil, err
	}
	out := in.Clone()
	for i, c := range f.Cols {
		fl, ok := ts.Field(c)
		if !ok {
			return nil, fmt.Errorf("algebra: table %s has no column %q", f.Table, c)
		}
		name := c
		if i < len(f.As) && f.As[i] != "" {
			name = f.As[i]
		}
		out = append(out, vector.Field{Name: name, Type: fl.Type})
	}
	return out, nil
}

// Name implements Node.
func (f *FetchNJoin) Name() string {
	return fmt.Sprintf("FetchNJoin(%s by %s)%v", f.Table, f.RangeOf, f.Cols)
}

// Children implements Node.
func (f *FetchNJoin) Children() []Node { return []Node{f.Input} }

// OrdExpr is a sort key.
type OrdExpr struct {
	E    expr.Expr
	Desc bool
}

// Asc and Desc build sort keys.
func Asc(e expr.Expr) OrdExpr  { return OrdExpr{E: e} }
func Desc(e expr.Expr) OrdExpr { return OrdExpr{E: e, Desc: true} }

func (o OrdExpr) String() string {
	if o.Desc {
		return o.E.String() + " DESC"
	}
	return o.E.String() + " ASC"
}

// Order sorts the full dataflow (a materializing operator, defined on
// Tables in the paper's algebra).
type Order struct {
	Input Node
	Keys  []OrdExpr
}

// NewOrder builds a sort node.
func NewOrder(in Node, keys ...OrdExpr) *Order { return &Order{Input: in, Keys: keys} }

// Out implements Node.
func (o *Order) Out(r Resolver) (vector.Schema, error) {
	in, err := o.Input.Out(r)
	if err != nil {
		return nil, err
	}
	for _, k := range o.Keys {
		if _, err := k.E.Type(in); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Name implements Node.
func (o *Order) Name() string {
	s := "Order["
	for i, k := range o.Keys {
		if i > 0 {
			s += ", "
		}
		s += k.String()
	}
	return s + "]"
}

// Children implements Node.
func (o *Order) Children() []Node { return []Node{o.Input} }

// TopN keeps the first N rows in key order.
type TopN struct {
	Input Node
	Keys  []OrdExpr
	N     int
}

// NewTopN builds a top-N node.
func NewTopN(in Node, n int, keys ...OrdExpr) *TopN { return &TopN{Input: in, Keys: keys, N: n} }

// Out implements Node.
func (t *TopN) Out(r Resolver) (vector.Schema, error) {
	in, err := t.Input.Out(r)
	if err != nil {
		return nil, err
	}
	for _, k := range t.Keys {
		if _, err := k.E.Type(in); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Name implements Node.
func (t *TopN) Name() string { return fmt.Sprintf("TopN(%d)", t.N) }

// Children implements Node.
func (t *TopN) Children() []Node { return []Node{t.Input} }

// Array generates an N-dimensional array as an N-ary relation of all valid
// index coordinates in column-major dimension order (used by the RAM array
// front-end, Section 4.1.2). Dimension i yields a column named dimN.
type Array struct {
	Dims []int
}

// NewArray builds an array generator.
func NewArray(dims ...int) *Array { return &Array{Dims: dims} }

// Out implements Node.
func (a *Array) Out(Resolver) (vector.Schema, error) {
	out := make(vector.Schema, len(a.Dims))
	for i := range a.Dims {
		out[i] = vector.Field{Name: fmt.Sprintf("dim%d", i), Type: vector.Int32}
	}
	return out, nil
}

// Name implements Node.
func (a *Array) Name() string { return fmt.Sprintf("Array%v", a.Dims) }

// Children implements Node.
func (a *Array) Children() []Node { return nil }
