package algebra

import (
	"fmt"
	"strings"
)

// Explain renders a plan tree as indented text — the textual form of the
// paper's Figure 6 execution scheme.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), n.Name())
	for _, c := range n.Children() {
		explain(b, c, depth+1)
	}
}

// Walk visits the plan tree depth-first, parents before children.
func Walk(n Node, f func(Node)) {
	f(n)
	for _, c := range n.Children() {
		Walk(c, f)
	}
}

// Tables returns the distinct base tables referenced by a plan.
func Tables(n Node) []string {
	seen := map[string]bool{}
	var out []string
	Walk(n, func(m Node) {
		var name string
		switch x := m.(type) {
		case *Scan:
			name = x.Table
		case *Fetch1Join:
			name = x.Table
		case *FetchNJoin:
			name = x.Table
		default:
			return
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	})
	return out
}
