package algebra

import (
	"strings"
	"testing"

	"x100/internal/expr"
	"x100/internal/vector"
)

// fakeResolver supplies table schemas for plan validation tests.
type fakeResolver map[string]vector.Schema

func (f fakeResolver) TableSchema(name string) (vector.Schema, error) {
	if s, ok := f[name]; ok {
		return s, nil
	}
	return nil, errNoTable(name)
}

type errNoTable string

func (e errNoTable) Error() string { return "no table " + string(e) }

var testRes = fakeResolver{
	"lineitem": {
		{Name: "l_shipdate", Type: vector.Date},
		{Name: "l_discount", Type: vector.Float64},
		{Name: "l_extendedprice", Type: vector.Float64},
		{Name: "l_returnflag", Type: vector.String},
		{Name: "l_orderkey", Type: vector.Int32},
	},
	"orders": {
		{Name: "o_orderkey", Type: vector.Int32},
		{Name: "o_orderdate", Type: vector.Date},
	},
}

func TestParsePaperQuery(t *testing.T) {
	// The plan text from the paper's Section 4.1.1 example (with Table ≡
	// Scan and, as in the full Figure 9 plan, the pass-through column
	// listed explicitly: Project defines the complete output shape).
	n, err := Parse(`
	Aggr(
	  Project(
	    Select(
	      Table(lineitem),
	      <(l_shipdate, date('1998-09-03'))),
	    [l_returnflag, discountprice = *(-(flt('1.0'), l_discount), l_extendedprice)]),
	  [l_returnflag],
	  [sum_disc_price = sum(discountprice)])`)
	if err != nil {
		t.Fatal(err)
	}
	aggr, ok := n.(*Aggr)
	if !ok {
		t.Fatalf("root is %T", n)
	}
	if len(aggr.GroupBy) != 1 || aggr.GroupBy[0].Alias != "l_returnflag" {
		t.Fatalf("groupby: %v", aggr.GroupBy)
	}
	if len(aggr.Aggs) != 1 || aggr.Aggs[0].Fn != AggSum || aggr.Aggs[0].Alias != "sum_disc_price" {
		t.Fatalf("aggs: %v", aggr.Aggs)
	}
	proj, ok := aggr.Input.(*Project)
	if !ok {
		t.Fatalf("input is %T", aggr.Input)
	}
	sel, ok := proj.Input.(*Select)
	if !ok {
		t.Fatalf("project input is %T", proj.Input)
	}
	if _, ok := sel.Input.(*Scan); !ok {
		t.Fatalf("select input is %T", sel.Input)
	}
	// The plan type-checks against the catalog.
	out, err := aggr.Out(testRes)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Type != vector.Float64 {
		t.Fatalf("schema: %v", out)
	}
}

func TestParseOperators(t *testing.T) {
	good := []string{
		`Scan(lineitem, [l_orderkey, l_discount])`,
		`Order(Scan(orders), [o_orderdate DESC, o_orderkey])`,
		`TopN(Scan(orders), [o_orderdate], 10)`,
		`Fetch1Join(Scan(lineitem), orders, l_orderkey, [o_orderdate])`,
		`FetchNJoin(Scan(orders), lineitem, o_orderkey, [l_discount])`,
		`Array([3, 4, 5])`,
		`HashAggr(Scan(lineitem), [l_returnflag], [n = count()])`,
		`DirectAggr(Scan(lineitem), [l_returnflag], [n = count()])`,
		`OrdAggr(Scan(lineitem), [l_returnflag], [n = count()])`,
		`Select(lineitem, and(>=(l_discount, 0.05), <=(l_discount, 0.07)))`,
		`Select(lineitem, in(l_returnflag, 'A', 'R'))`,
		`Select(lineitem, notlike(l_returnflag, 'x%'))`,
		`Project(lineitem, [y = year(l_shipdate), c = case(<(l_discount, 0.05), 1, 0)])`,
		`Project(lineitem, [s = substr(l_returnflag, 1, 1)])`,
	}
	for _, text := range good {
		if _, err := Parse(text); err != nil {
			t.Errorf("%s: %v", text, err)
		}
	}
}

func TestParseModes(t *testing.T) {
	for text, want := range map[string]AggMode{
		`Aggr(Scan(t), [], [n = count()])`:       ModeAuto,
		`HashAggr(Scan(t), [], [n = count()])`:   ModeHash,
		`DirectAggr(Scan(t), [], [n = count()])`: ModeDirect,
		`OrdAggr(Scan(t), [], [n = count()])`:    ModeOrdered,
	} {
		n, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if n.(*Aggr).Mode != want {
			t.Errorf("%s: mode %v", text, n.(*Aggr).Mode)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`Bogus(x)`,
		`Select(lineitem)`,
		`Select(lineitem, <(a, b)) trailing`,
		`Aggr(Scan(t), [x], [y = frobnicate(z)])`,
		`TopN(Scan(t), [x], notanumber)`,
		`Select(t, like(a, b))`,
		`Select(t, date('13-01-2020x'))`,
		`Project(t, [x = substr(s, a, b)])`,
		`Scan(t, [1, 2])`,
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: expected parse error", text)
		}
	}
}

func TestParseExprLiterals(t *testing.T) {
	e, err := ParseExpr(`*(-(flt('1.0'), l_discount), l_extendedprice)`)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "*(-(float64(1), l_discount), l_extendedprice)" {
		t.Fatalf("got %q", e.String())
	}
	e2, err := ParseExpr(`-5`)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := e2.(*expr.Const); !ok || c.Val.(int64) != -5 {
		t.Fatalf("negative literal: %v", e2)
	}
	e3, err := ParseExpr(`3.25`)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := e3.(*expr.Const); !ok || c.Val.(float64) != 3.25 {
		t.Fatalf("float literal: %v", e3)
	}
}

func TestSchemaValidation(t *testing.T) {
	// Unknown column in select.
	n, _ := Parse(`Select(lineitem, <(no_such_col, 5))`)
	if _, err := n.Out(testRes); err == nil {
		t.Error("unknown column must fail validation")
	}
	// Join duplicate output column.
	j := NewJoin(NewScan("orders"), NewScan("orders"), EquiCond{L: "o_orderkey", R: "o_orderkey"})
	if _, err := j.Out(testRes); err == nil {
		t.Error("duplicate join columns must fail")
	}
	// Semi join output is the left schema.
	sj := NewJoinKind(Semi, NewScan("lineitem"), NewScan("orders"), EquiCond{L: "l_orderkey", R: "o_orderkey"})
	out, err := sj.Out(testRes)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(testRes["lineitem"]) {
		t.Errorf("semi schema: %v", out)
	}
	// Mark join appends the mark column.
	mj := NewJoinKind(Mark, NewScan("lineitem"), NewScan("orders"),
		EquiCond{L: "l_orderkey", R: "o_orderkey"}).WithMark("m")
	out, err = mj.Out(testRes)
	if err != nil {
		t.Fatal(err)
	}
	if out[len(out)-1].Name != "m" || out[len(out)-1].Type != vector.Bool {
		t.Errorf("mark schema: %v", out)
	}
}

func TestExplainAndTables(t *testing.T) {
	n, err := Parse(`TopN(Select(Scan(lineitem), <(l_discount, 0.05)), [l_orderkey], 5)`)
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(n)
	for _, want := range []string{"TopN(5)", "Select", "Scan(lineitem)"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	// Indentation reflects depth.
	if !strings.Contains(text, "    Scan(lineitem)") {
		t.Errorf("scan not indented:\n%s", text)
	}
	tabs := Tables(NewFetch1Join(NewScan("lineitem"), "orders", expr.C("l_orderkey"), "o_orderdate"))
	if len(tabs) != 2 {
		t.Errorf("tables: %v", tabs)
	}
}

func TestRowIDColumn(t *testing.T) {
	s := NewScan("orders", RowIDCol, "o_orderkey")
	out, err := s.Out(testRes)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Name != RowIDCol || out[0].Type != vector.Int32 {
		t.Fatalf("rowid schema: %v", out)
	}
}
