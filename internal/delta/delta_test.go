package delta

import (
	"testing"
	"testing/quick"

	"x100/internal/colstore"
	"x100/internal/vector"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	tab := colstore.NewTable("t")
	if err := tab.AddColumn("k", vector.Int32, []int32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumColumn("s", []string{"a", "b", "a", "c"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddEnumF64Column("f", []float64{0.1, 0.2, 0.1, 0.3}); err != nil {
		t.Fatal(err)
	}
	return NewStore(tab)
}

func TestInsertDeleteUpdate(t *testing.T) {
	s := newTestStore(t)
	if s.NumRows() != 4 {
		t.Fatal("initial rows")
	}
	id, err := s.Insert([]any{int32(5), "d", 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 || s.NumRows() != 5 || s.NumDeltaRows() != 1 {
		t.Fatalf("insert: id=%d rows=%d", id, s.NumRows())
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 4 || !s.IsDeleted(1) {
		t.Fatal("delete")
	}
	if _, err := s.Update(0, []any{int32(10), "z", 0.9}); err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 4 || !s.IsDeleted(0) {
		t.Fatal("update")
	}
	live := s.LiveRowIDs()
	want := []int32{2, 3, 4, 5}
	if len(live) != len(want) {
		t.Fatalf("live: %v", live)
	}
	for i := range want {
		if live[i] != want[i] {
			t.Fatalf("live: %v", live)
		}
	}
	if s.DeltaFraction() <= 0 {
		t.Fatal("delta fraction must be positive")
	}
}

func TestInsertErrors(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Insert([]any{int32(1)}); err == nil {
		t.Fatal("wrong arity must fail")
	}
	if _, err := s.Insert([]any{"x", "y", 0.1}); err == nil {
		t.Fatal("wrong type must fail")
	}
	if err := s.Delete(99); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
}

func TestDeltaValueAndVector(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Insert([]any{int32(7), "q", 0.7}); err != nil {
		t.Fatal(err)
	}
	if s.DeltaValue(0, 0) != int32(7) || s.DeltaValue(1, 0) != "q" || s.DeltaValue(2, 0) != 0.7 {
		t.Fatal("delta values")
	}
	v := s.DeltaVector(1, 0, 1)
	if v.Strings()[0] != "q" {
		t.Fatal("delta vector")
	}
}

func TestReorganize(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Insert([]any{int32(5), "newval", 0.55}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Reorganize(); err != nil {
		t.Fatal(err)
	}
	tab := s.Table()
	if tab.N != 4 || s.NumDeltaRows() != 0 || s.NumDeleted() != 0 {
		t.Fatalf("after reorganize: N=%d", tab.N)
	}
	// Row order: old rows 1,2,3 then the insert.
	wantK := []int32{2, 3, 4, 5}
	wantS := []string{"b", "a", "c", "newval"}
	wantF := []float64{0.2, 0.1, 0.3, 0.55}
	for i := 0; i < 4; i++ {
		if tab.Col("k").DecodedValue(i) != wantK[i] ||
			tab.Col("s").DecodedValue(i) != wantS[i] ||
			tab.Col("f").DecodedValue(i) != wantF[i] {
			t.Fatalf("row %d: %v %v %v", i,
				tab.Col("k").DecodedValue(i), tab.Col("s").DecodedValue(i), tab.Col("f").DecodedValue(i))
		}
	}
	// Enum columns stay enum-compressed after reorganization.
	if !tab.Col("s").IsEnum() || !tab.Col("f").IsEnum() {
		t.Fatal("reorganize must keep enum compression")
	}
}

// Property: for any sequence of operations, the visible rows after
// Reorganize equal the visible rows before (linearization check).
func TestReorganizeLinearization(t *testing.T) {
	f := func(ops []uint8, vals []int32) bool {
		tab := colstore.NewTable("t")
		if err := tab.AddColumn("v", vector.Int32, []int32{10, 20, 30}); err != nil {
			return false
		}
		s := NewStore(tab)
		vi := 0
		nextVal := func() int32 {
			if vi < len(vals) {
				vi++
				return vals[vi-1]
			}
			return int32(vi * 7)
		}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if _, err := s.Insert([]any{nextVal()}); err != nil {
					return false
				}
			case 1:
				total := int32(s.Table().N + s.NumDeltaRows())
				if total > 0 {
					_ = s.Delete(int32(op) % total)
				}
			case 2:
				total := int32(s.Table().N + s.NumDeltaRows())
				if total > 0 {
					if _, err := s.Update(int32(op)%total, []any{nextVal()}); err != nil {
						return false
					}
				}
			}
		}
		var before []any
		for _, id := range s.LiveRowIDs() {
			if int(id) < s.Table().N {
				before = append(before, s.Table().Col("v").DecodedValue(int(id)))
			} else {
				before = append(before, s.DeltaValue(0, int(id)-s.Table().N))
			}
		}
		if err := s.Reorganize(); err != nil {
			return false
		}
		if s.Table().N != len(before) {
			return false
		}
		for i, want := range before {
			if s.Table().Col("v").DecodedValue(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
