// Package delta implements the update scheme of Section 4.3 / Figure 8 of
// the paper: vertical fragments are immutable; deletes append the row id to
// a deletion list, inserts append to in-memory delta columns (the PAX-like
// chunk of the paper), and an update is a delete plus an insert. When the
// deltas exceed a small fraction of the table, Reorganize rewrites the base
// fragments and clears the deltas.
//
// Scans therefore see: base rows minus the deletion list, followed by the
// delta rows minus deletions of delta rows. Delta columns are never
// compressed (inserted strings into enum columns extend the dictionary,
// which is append-only, so existing codes stay valid).
//
// Checkpoint absorbs the insert delta into a new in-memory base fragment
// appended to every column, preserving all row ids (deletions stay on the
// deletion list). It is cheaper than Reorganize — no base rewrite — and is
// what the parallel scan path uses to avoid the value-at-a-time merged
// scan. Reorganize remains the full rewrite that also drops deleted rows
// and re-encodes enum columns.
package delta

import (
	"fmt"
	"sort"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// Store tracks pending modifications for one table.
type Store struct {
	table *colstore.Table
	// deleted row ids (over base + delta space), kept as a set.
	deleted map[int32]struct{}
	// insert delta: one untyped column buffer per table column.
	ins []deltaCol
	// number of rows appended to the delta.
	nIns int
}

type deltaCol struct {
	name string
	typ  vector.Type
	// vals holds boxed values row-wise converted into typed slices lazily;
	// kept typed to avoid per-value boxing on scan.
	bools    []bool
	u8s      []uint8
	u16s     []uint16
	i32s     []int32
	i64s     []int64
	f64s     []float64
	strs     []string
	physical vector.Type
}

// NewStore creates an empty delta store over a base table.
func NewStore(t *colstore.Table) *Store {
	s := &Store{table: t, deleted: make(map[int32]struct{})}
	for _, c := range t.Cols {
		s.ins = append(s.ins, deltaCol{name: c.Name, typ: c.Typ, physical: c.Typ.Physical()})
	}
	return s
}

// Table returns the underlying base table.
func (s *Store) Table() *colstore.Table { return s.table }

// NumRows returns the visible row count: base + inserts - deletions.
func (s *Store) NumRows() int {
	return s.table.N + s.nIns - len(s.deleted)
}

// NumDeltaRows returns the number of rows in the insert delta.
func (s *Store) NumDeltaRows() int { return s.nIns }

// NumDeleted returns the size of the deletion list.
func (s *Store) NumDeleted() int { return len(s.deleted) }

// Delete marks a row id (base or delta space) as deleted.
func (s *Store) Delete(rowID int32) error {
	if int(rowID) < 0 || int(rowID) >= s.table.N+s.nIns {
		return fmt.Errorf("delta: row id %d out of range [0,%d)", rowID, s.table.N+s.nIns)
	}
	s.deleted[rowID] = struct{}{}
	return nil
}

// IsDeleted reports whether a row id is on the deletion list.
func (s *Store) IsDeleted(rowID int32) bool {
	_, ok := s.deleted[rowID]
	return ok
}

// Insert appends one row (one boxed value per column, in schema order) to
// the delta columns and returns its row id.
func (s *Store) Insert(row []any) (int32, error) {
	if len(row) != len(s.ins) {
		return 0, fmt.Errorf("delta: insert row has %d values, table %s has %d columns", len(row), s.table.Name, len(s.ins))
	}
	for i := range s.ins {
		c := &s.ins[i]
		v := row[i]
		switch c.physical {
		case vector.Bool:
			x, ok := v.(bool)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.bools = append(c.bools, x)
		case vector.UInt8:
			x, ok := v.(uint8)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.u8s = append(c.u8s, x)
		case vector.UInt16:
			x, ok := v.(uint16)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.u16s = append(c.u16s, x)
		case vector.Int32:
			x, ok := v.(int32)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.i32s = append(c.i32s, x)
		case vector.Int64:
			x, ok := v.(int64)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.i64s = append(c.i64s, x)
		case vector.Float64:
			x, ok := v.(float64)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.f64s = append(c.f64s, x)
		case vector.String:
			x, ok := v.(string)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.strs = append(c.strs, x)
		}
	}
	id := int32(s.table.N + s.nIns)
	s.nIns++
	return id, nil
}

// CheckRow validates one boxed row against the table schema without
// appending it — the same arity and per-column type checks Insert performs.
// Durable callers use it to validate BEFORE logging the row to a WAL, so a
// logged record can never fail to apply.
func (s *Store) CheckRow(row []any) error {
	if len(row) != len(s.ins) {
		return fmt.Errorf("delta: insert row has %d values, table %s has %d columns", len(row), s.table.Name, len(s.ins))
	}
	for i := range s.ins {
		c := &s.ins[i]
		v := row[i]
		ok := true
		switch c.physical {
		case vector.Bool:
			_, ok = v.(bool)
		case vector.UInt8:
			_, ok = v.(uint8)
		case vector.UInt16:
			_, ok = v.(uint16)
		case vector.Int32:
			_, ok = v.(int32)
		case vector.Int64:
			_, ok = v.(int64)
		case vector.Float64:
			_, ok = v.(float64)
		case vector.String:
			_, ok = v.(string)
		}
		if !ok {
			return typeErr(c.name, c.typ, v)
		}
	}
	return nil
}

// CheckDelete validates a row id the way Delete would, without deleting.
func (s *Store) CheckDelete(rowID int32) error {
	if int(rowID) < 0 || int(rowID) >= s.table.N+s.nIns {
		return fmt.Errorf("delta: row id %d out of range [0,%d)", rowID, s.table.N+s.nIns)
	}
	return nil
}

// Update is a delete of rowID followed by an insert of row, per Figure 8.
func (s *Store) Update(rowID int32, row []any) (int32, error) {
	if err := s.Delete(rowID); err != nil {
		return 0, err
	}
	return s.Insert(row)
}

func typeErr(col string, t vector.Type, v any) error {
	return fmt.Errorf("delta: column %s expects %v, got %T", col, t, v)
}

// DeltaValue returns the boxed logical value of delta row j (0-based within
// the delta) for column index ci.
func (s *Store) DeltaValue(ci int, j int) any {
	c := &s.ins[ci]
	switch c.physical {
	case vector.Bool:
		return c.bools[j]
	case vector.UInt8:
		return c.u8s[j]
	case vector.UInt16:
		return c.u16s[j]
	case vector.Int32:
		return c.i32s[j]
	case vector.Int64:
		return c.i64s[j]
	case vector.Float64:
		return c.f64s[j]
	default:
		return c.strs[j]
	}
}

// DeltaVector returns delta rows [lo:hi) of column ci as a logical-typed
// vector (enum columns come back as plain strings: deltas are uncompressed).
func (s *Store) DeltaVector(ci, lo, hi int) *vector.Vector {
	c := &s.ins[ci]
	switch c.physical {
	case vector.Bool:
		return vector.FromBools(c.bools[lo:hi])
	case vector.UInt8:
		return vector.FromUint8s(c.u8s[lo:hi])
	case vector.UInt16:
		return vector.FromUint16s(c.u16s[lo:hi])
	case vector.Int32:
		v := vector.FromInt32s(c.i32s[lo:hi])
		v.Typ = c.typ
		return v
	case vector.Int64:
		return vector.FromInt64s(c.i64s[lo:hi])
	case vector.Float64:
		return vector.FromFloat64s(c.f64s[lo:hi])
	default:
		return vector.FromStrings(c.strs[lo:hi])
	}
}

// LiveRowIDs returns all visible row ids in ascending order (base rows
// first, then delta rows), excluding deletions. Scans over tables with
// small deltas use this to build their position lists.
func (s *Store) LiveRowIDs() []int32 {
	out := make([]int32, 0, s.NumRows())
	total := int32(s.table.N + s.nIns)
	for id := int32(0); id < total; id++ {
		if _, dead := s.deleted[id]; !dead {
			out = append(out, id)
		}
	}
	return out
}

// DeltaFraction returns the fraction of the table held in deltas (inserts +
// deletes vs base size); the storage layer reorganizes when this exceeds a
// small percentile (paper Section 4.3).
func (s *Store) DeltaFraction() float64 {
	if s.table.N == 0 {
		if s.nIns == 0 {
			return 0
		}
		return 1
	}
	return float64(s.nIns+len(s.deleted)) / float64(s.table.N)
}

// Parts encodes the insert delta as one slice per column in the column's
// physical representation (enum inserts encode through the append-only
// dictionary), without clearing the delta: the checkpoint paths hand the
// parts either to Table.AppendFragment (in-memory) or to the ColumnBM
// write-back (disk), then call ClearInserts once the rows are durably part
// of the base. done=false is returned without changes when a dictionary has
// outgrown its column's code width — callers fall back to the merged scan
// or a full Reorganize. With no pending inserts it returns (nil, true, nil).
func (s *Store) Parts() (parts []any, done bool, err error) {
	if s.nIns == 0 {
		return nil, true, nil
	}
	t := s.table
	parts = make([]any, len(t.Cols))
	for ci, col := range t.Cols {
		dc := &s.ins[ci]
		if col.IsEnum() {
			codes := make([]int, s.nIns)
			for j := 0; j < s.nIns; j++ {
				if col.Dict.Typ == vector.Float64 {
					codes[j] = col.Dict.CodeF64(dc.f64s[j])
				} else {
					codes[j] = col.Dict.Code(dc.strs[j])
				}
			}
			switch col.PhysType() {
			case vector.UInt8:
				if col.Dict.Len() > 256 {
					return nil, false, nil
				}
				c8 := make([]uint8, s.nIns)
				for j, c := range codes {
					c8[j] = uint8(c)
				}
				parts[ci] = c8
			case vector.UInt16:
				if col.Dict.Len() > 65536 {
					return nil, false, nil
				}
				c16 := make([]uint16, s.nIns)
				for j, c := range codes {
					c16[j] = uint16(c)
				}
				parts[ci] = c16
			default:
				return nil, false, fmt.Errorf("delta: enum column %s has code type %v", col.Name, col.PhysType())
			}
			continue
		}
		// Plain columns hand their delta slice over as the new fragment;
		// ClearInserts releases ownership.
		switch dc.physical {
		case vector.Bool:
			parts[ci] = dc.bools
		case vector.UInt8:
			parts[ci] = dc.u8s
		case vector.UInt16:
			parts[ci] = dc.u16s
		case vector.Int32:
			parts[ci] = dc.i32s
		case vector.Int64:
			parts[ci] = dc.i64s
		case vector.Float64:
			parts[ci] = dc.f64s
		default:
			parts[ci] = dc.strs
		}
	}
	return parts, true, nil
}

// ClearInserts drops the insert delta (after the caller has absorbed the
// Parts into base fragments). The deletion list is untouched.
func (s *Store) ClearInserts() {
	for i := range s.ins {
		s.ins[i] = deltaCol{name: s.ins[i].name, typ: s.ins[i].typ, physical: s.ins[i].physical}
	}
	s.nIns = 0
}

// RestoreDeleted seeds the deletion list from a persisted manifest
// (attach-time recovery of a disk table's checkpointed deletions).
func (s *Store) RestoreDeleted(ids []int32) {
	for _, id := range ids {
		if int(id) >= 0 && int(id) < s.table.N+s.nIns {
			s.deleted[id] = struct{}{}
		}
	}
}

// Checkpoint appends the insert delta as one new in-memory base fragment
// per column and clears it. Row ids are preserved: delta row baseN+j simply
// becomes base row baseN+j, so the deletion list and any materialized join
// indices stay valid. done=false is returned without changes when a
// dictionary has outgrown its column's code width (see Parts). Disk-backed
// tables checkpoint through core.Database.Checkpoint instead, which routes
// the same Parts into a ColumnBM write-back so the rows survive restarts.
func (s *Store) Checkpoint() (done bool, err error) {
	parts, done, err := s.Parts()
	if err != nil || !done || parts == nil {
		return done, err
	}
	if err := s.table.AppendFragment(parts); err != nil {
		return false, err
	}
	s.ClearInserts()
	return true, nil
}

// Reorganize rewrites the base table to absorb all deltas: deleted base rows
// are dropped, delta rows are appended, and the deltas are cleared. Enum
// columns are re-encoded (dictionaries may have grown).
func (s *Store) Reorganize() error {
	t := s.table
	// Build the surviving row id list deterministically.
	live := s.LiveRowIDs()
	baseN := t.N
	for ci := range t.Cols {
		col := t.Cols[ci]
		logical := col.Typ
		// Materialize the base column up front with a returned error: the
		// fragments may live on disk, and a corrupt chunk must surface as an
		// error from Reorganize, not a panic from Data().
		if _, err := col.Pin(); err != nil {
			return fmt.Errorf("delta: reorganize %s.%s: %w", t.Name, col.Name, err)
		}
		if col.IsEnum() {
			// Rebuild decoded values, then re-encode.
			nt := colstore.NewTable("tmp")
			if col.Dict.Typ == vector.Float64 {
				vals := make([]float64, 0, len(live))
				for _, id := range live {
					if int(id) < baseN {
						vals = append(vals, col.DecodedValue(int(id)).(float64))
					} else {
						vals = append(vals, s.DeltaValue(ci, int(id)-baseN).(float64))
					}
				}
				if err := nt.AddEnumF64Column(col.Name, vals); err != nil {
					return err
				}
			} else {
				vals := make([]string, 0, len(live))
				for _, id := range live {
					if int(id) < baseN {
						vals = append(vals, col.DecodedValue(int(id)).(string))
					} else {
						vals = append(vals, s.DeltaValue(ci, int(id)-baseN).(string))
					}
				}
				if err := nt.AddEnumColumn(col.Name, vals); err != nil {
					return err
				}
			}
			// Swap in the rebuilt column wholesale (Column holds an atomic
			// pin cache and must not be copied by value).
			t.Cols[ci] = nt.Cols[0]
			continue
		}
		newData, err := rebuildPlain(col, &s.ins[ci], live, baseN)
		if err != nil {
			return err
		}
		nt := colstore.NewTable("tmp")
		if err := nt.AddColumn(col.Name, logical, newData); err != nil {
			return err
		}
		t.Cols[ci] = nt.Cols[0]
	}
	t.N = len(live)
	// The rewrite leaves every column memory-resident in one fragment, so
	// chunk alignment no longer applies.
	t.ChunkRows = 0
	s.deleted = make(map[int32]struct{})
	for i := range s.ins {
		s.ins[i] = deltaCol{name: s.ins[i].name, typ: s.ins[i].typ, physical: s.ins[i].physical}
	}
	s.nIns = 0
	return nil
}

func rebuildPlain(col *colstore.Column, dc *deltaCol, live []int32, baseN int) (any, error) {
	switch dc.physical {
	case vector.Bool:
		base := col.Data().([]bool)
		out := make([]bool, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.bools[int(id)-baseN])
			}
		}
		return out, nil
	case vector.UInt8:
		base := col.Data().([]uint8)
		out := make([]uint8, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.u8s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.UInt16:
		base := col.Data().([]uint16)
		out := make([]uint16, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.u16s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.Int32:
		base := col.Data().([]int32)
		out := make([]int32, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.i32s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.Int64:
		base := col.Data().([]int64)
		out := make([]int64, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.i64s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.Float64:
		base := col.Data().([]float64)
		out := make([]float64, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.f64s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.String:
		base := col.Data().([]string)
		out := make([]string, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.strs[int(id)-baseN])
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("delta: unsupported physical type %v", dc.physical)
}

// SortedDeleted returns the deletion list in ascending order (for scans
// that subtract it positionally and for deterministic tests).
func (s *Store) SortedDeleted() []int32 {
	out := make([]int32, 0, len(s.deleted))
	for id := range s.deleted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
