// Package delta implements the update scheme of Section 4.3 / Figure 8 of
// the paper: vertical fragments are immutable; deletes append the row id to
// a deletion list, inserts append to in-memory delta columns (the PAX-like
// chunk of the paper), and an update is a delete plus an insert. When the
// deltas exceed a small fraction of the table, Reorganize rewrites the base
// fragments and clears the deltas.
//
// Scans therefore see: base rows minus the deletion list, followed by the
// delta rows minus deletions of delta rows. Delta columns are never
// compressed (inserted strings into enum columns extend the dictionary,
// which is append-only, so existing codes stay valid).
//
// Checkpoint absorbs the insert delta into a new in-memory base fragment
// appended to every column, preserving all row ids (deletions stay on the
// deletion list). It is cheaper than Reorganize — no base rewrite — and is
// what the parallel scan path uses to avoid the value-at-a-time merged
// scan. Reorganize remains the full rewrite that also drops deleted rows
// and re-encodes enum columns.
//
// The store is internally synchronized so that checkpoints and compaction
// can run concurrently with writers and scans: Snapshot captures an
// immutable view (delta slices are append-only, so captured slice headers
// stay valid), ClearInsertsN absorbs only a snapshot prefix while later
// inserts keep their row ids, and Rebase swings the store onto a rewritten
// base at a compaction cutover.
package delta

import (
	"fmt"
	"sort"
	"sync"

	"x100/internal/colstore"
	"x100/internal/vector"
)

// Store tracks pending modifications for one table. It is internally
// synchronized: writers append while concurrent scans read through
// immutable Snapshots, and the checkpoint/compaction pipelines absorb a
// snapshot prefix while later writes keep accumulating.
type Store struct {
	mu    sync.Mutex
	table *colstore.Table
	// baseN is the number of base rows the delta is layered over. It is
	// tracked explicitly (not read from table.N) so that scans pinned to a
	// pre-checkpoint snapshot never race with a base cutover mutating the
	// table.
	baseN int
	// deleted row ids (over base + delta space), kept as a set.
	deleted map[int32]struct{}
	// insert delta: one untyped column buffer per table column.
	ins []deltaCol
	// number of rows appended to the delta.
	nIns int
}

type deltaCol struct {
	name string
	typ  vector.Type
	// vals holds boxed values row-wise converted into typed slices lazily;
	// kept typed to avoid per-value boxing on scan.
	bools    []bool
	u8s      []uint8
	u16s     []uint16
	i32s     []int32
	i64s     []int64
	f64s     []float64
	strs     []string
	physical vector.Type
}

// NewStore creates an empty delta store over a base table.
func NewStore(t *colstore.Table) *Store {
	s := &Store{table: t, baseN: t.N, deleted: make(map[int32]struct{})}
	for _, c := range t.Cols {
		s.ins = append(s.ins, deltaCol{name: c.Name, typ: c.Typ, physical: c.Typ.Physical()})
	}
	return s
}

// Table returns the underlying base table.
func (s *Store) Table() *colstore.Table { return s.table }

// BaseN returns the number of base rows the delta is layered over.
func (s *Store) BaseN() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseN
}

// NumRows returns the visible row count: base + inserts - deletions.
func (s *Store) NumRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseN + s.nIns - len(s.deleted)
}

// NumDeltaRows returns the number of rows in the insert delta.
func (s *Store) NumDeltaRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nIns
}

// NumDeleted returns the size of the deletion list.
func (s *Store) NumDeleted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deleted)
}

// Delete marks a row id (base or delta space) as deleted.
func (s *Store) Delete(rowID int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(rowID)
}

func (s *Store) deleteLocked(rowID int32) error {
	if int(rowID) < 0 || int(rowID) >= s.baseN+s.nIns {
		return fmt.Errorf("delta: row id %d out of range [0,%d)", rowID, s.baseN+s.nIns)
	}
	s.deleted[rowID] = struct{}{}
	return nil
}

// IsDeleted reports whether a row id is on the deletion list.
func (s *Store) IsDeleted(rowID int32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.deleted[rowID]
	return ok
}

// Insert appends one row (one boxed value per column, in schema order) to
// the delta columns and returns its row id.
func (s *Store) Insert(row []any) (int32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(row)
}

func (s *Store) insertLocked(row []any) (int32, error) {
	if len(row) != len(s.ins) {
		return 0, fmt.Errorf("delta: insert row has %d values, table %s has %d columns", len(row), s.table.Name, len(s.ins))
	}
	for i := range s.ins {
		c := &s.ins[i]
		v := row[i]
		switch c.physical {
		case vector.Bool:
			x, ok := v.(bool)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.bools = append(c.bools, x)
		case vector.UInt8:
			x, ok := v.(uint8)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.u8s = append(c.u8s, x)
		case vector.UInt16:
			x, ok := v.(uint16)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.u16s = append(c.u16s, x)
		case vector.Int32:
			x, ok := v.(int32)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.i32s = append(c.i32s, x)
		case vector.Int64:
			x, ok := v.(int64)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.i64s = append(c.i64s, x)
		case vector.Float64:
			x, ok := v.(float64)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.f64s = append(c.f64s, x)
		case vector.String:
			x, ok := v.(string)
			if !ok {
				return 0, typeErr(c.name, c.typ, v)
			}
			c.strs = append(c.strs, x)
		}
	}
	id := int32(s.baseN + s.nIns)
	s.nIns++
	return id, nil
}

// CheckRow validates one boxed row against the table schema without
// appending it — the same arity and per-column type checks Insert performs.
// Durable callers use it to validate BEFORE logging the row to a WAL, so a
// logged record can never fail to apply.
func (s *Store) CheckRow(row []any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(row) != len(s.ins) {
		return fmt.Errorf("delta: insert row has %d values, table %s has %d columns", len(row), s.table.Name, len(s.ins))
	}
	for i := range s.ins {
		c := &s.ins[i]
		v := row[i]
		ok := true
		switch c.physical {
		case vector.Bool:
			_, ok = v.(bool)
		case vector.UInt8:
			_, ok = v.(uint8)
		case vector.UInt16:
			_, ok = v.(uint16)
		case vector.Int32:
			_, ok = v.(int32)
		case vector.Int64:
			_, ok = v.(int64)
		case vector.Float64:
			_, ok = v.(float64)
		case vector.String:
			_, ok = v.(string)
		}
		if !ok {
			return typeErr(c.name, c.typ, v)
		}
	}
	return nil
}

// CheckDelete validates a row id the way Delete would, without deleting.
func (s *Store) CheckDelete(rowID int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(rowID) < 0 || int(rowID) >= s.baseN+s.nIns {
		return fmt.Errorf("delta: row id %d out of range [0,%d)", rowID, s.baseN+s.nIns)
	}
	return nil
}

// Update is a delete of rowID followed by an insert of row, per Figure 8.
func (s *Store) Update(rowID int32, row []any) (int32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.deleteLocked(rowID); err != nil {
		return 0, err
	}
	return s.insertLocked(row)
}

func typeErr(col string, t vector.Type, v any) error {
	return fmt.Errorf("delta: column %s expects %v, got %T", col, t, v)
}

// deltaValue reads the boxed logical value of delta row j from a column
// buffer (shared by Store and Snapshot accessors).
func deltaValue(c *deltaCol, j int) any {
	switch c.physical {
	case vector.Bool:
		return c.bools[j]
	case vector.UInt8:
		return c.u8s[j]
	case vector.UInt16:
		return c.u16s[j]
	case vector.Int32:
		return c.i32s[j]
	case vector.Int64:
		return c.i64s[j]
	case vector.Float64:
		return c.f64s[j]
	default:
		return c.strs[j]
	}
}

func deltaVector(c *deltaCol, lo, hi int) *vector.Vector {
	switch c.physical {
	case vector.Bool:
		return vector.FromBools(c.bools[lo:hi])
	case vector.UInt8:
		return vector.FromUint8s(c.u8s[lo:hi])
	case vector.UInt16:
		return vector.FromUint16s(c.u16s[lo:hi])
	case vector.Int32:
		v := vector.FromInt32s(c.i32s[lo:hi])
		v.Typ = c.typ
		return v
	case vector.Int64:
		return vector.FromInt64s(c.i64s[lo:hi])
	case vector.Float64:
		return vector.FromFloat64s(c.f64s[lo:hi])
	default:
		return vector.FromStrings(c.strs[lo:hi])
	}
}

// DeltaValue returns the boxed logical value of delta row j (0-based within
// the delta) for column index ci.
func (s *Store) DeltaValue(ci int, j int) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return deltaValue(&s.ins[ci], j)
}

// DeltaVector returns delta rows [lo:hi) of column ci as a logical-typed
// vector (enum columns come back as plain strings: deltas are uncompressed).
func (s *Store) DeltaVector(ci, lo, hi int) *vector.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return deltaVector(&s.ins[ci], lo, hi)
}

// DeltaRow returns delta row j (0-based within the delta) as one boxed
// value per column — the shape Insert accepts and the WAL logs.
func (s *Store) DeltaRow(j int) []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return rowOf(s.ins, j)
}

func rowOf(cols []deltaCol, j int) []any {
	row := make([]any, len(cols))
	for i := range cols {
		row[i] = deltaValue(&cols[i], j)
	}
	return row
}

// TailRows returns the boxed delta rows from index `from` (0-based within
// the delta) to the end, in insertion order. Compaction uses it to carry
// writes that arrived after its snapshot across a cutover.
func (s *Store) TailRows(from int) [][]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 {
		from = 0
	}
	out := make([][]any, 0, s.nIns-from)
	for j := from; j < s.nIns; j++ {
		out = append(out, rowOf(s.ins, j))
	}
	return out
}

// NewDeletesSince returns the row ids deleted after the given snapshot was
// taken, in ascending order (still in the snapshot's id space).
func (s *Store) NewDeletesSince(snap *Snapshot) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int32, 0)
	for id := range s.deleted {
		if _, old := snap.deleted[id]; !old {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func liveIDs(total int, deleted map[int32]struct{}, n int) []int32 {
	out := make([]int32, 0, n)
	for id := int32(0); id < int32(total); id++ {
		if _, dead := deleted[id]; !dead {
			out = append(out, id)
		}
	}
	return out
}

// LiveRowIDs returns all visible row ids in ascending order (base rows
// first, then delta rows), excluding deletions. Scans over tables with
// small deltas use this to build their position lists.
func (s *Store) LiveRowIDs() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return liveIDs(s.baseN+s.nIns, s.deleted, s.baseN+s.nIns-len(s.deleted))
}

// DeltaFraction returns the fraction of the table held in deltas (inserts +
// deletes vs base size); the storage layer reorganizes when this exceeds a
// small percentile (paper Section 4.3).
func (s *Store) DeltaFraction() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseN == 0 {
		if s.nIns == 0 {
			return 0
		}
		return 1
	}
	return float64(s.nIns+len(s.deleted)) / float64(s.baseN)
}

// partsFrom encodes the first nIns delta rows as one slice per column in the
// column's physical representation. Enum inserts encode through the
// append-only dictionary; done=false signals a dictionary that outgrew its
// column's code width. Plain columns alias the delta buffers (capped at
// nIns, so later appends to the live buffers cannot leak into a fragment).
func partsFrom(cols []*colstore.Column, ins []deltaCol, nIns int) (parts []any, done bool, err error) {
	if nIns == 0 {
		return nil, true, nil
	}
	parts = make([]any, len(cols))
	for ci, col := range cols {
		dc := &ins[ci]
		if col.IsEnum() {
			codes := make([]int, nIns)
			for j := 0; j < nIns; j++ {
				if col.Dict.Typ == vector.Float64 {
					codes[j] = col.Dict.CodeF64(dc.f64s[j])
				} else {
					codes[j] = col.Dict.Code(dc.strs[j])
				}
			}
			switch col.PhysType() {
			case vector.UInt8:
				if col.Dict.Len() > 256 {
					return nil, false, nil
				}
				c8 := make([]uint8, nIns)
				for j, c := range codes {
					c8[j] = uint8(c)
				}
				parts[ci] = c8
			case vector.UInt16:
				if col.Dict.Len() > 65536 {
					return nil, false, nil
				}
				c16 := make([]uint16, nIns)
				for j, c := range codes {
					c16[j] = uint16(c)
				}
				parts[ci] = c16
			default:
				return nil, false, fmt.Errorf("delta: enum column %s has code type %v", col.Name, col.PhysType())
			}
			continue
		}
		switch dc.physical {
		case vector.Bool:
			parts[ci] = dc.bools[:nIns:nIns]
		case vector.UInt8:
			parts[ci] = dc.u8s[:nIns:nIns]
		case vector.UInt16:
			parts[ci] = dc.u16s[:nIns:nIns]
		case vector.Int32:
			parts[ci] = dc.i32s[:nIns:nIns]
		case vector.Int64:
			parts[ci] = dc.i64s[:nIns:nIns]
		case vector.Float64:
			parts[ci] = dc.f64s[:nIns:nIns]
		default:
			parts[ci] = dc.strs[:nIns:nIns]
		}
	}
	return parts, true, nil
}

// Parts encodes the insert delta as one slice per column in the column's
// physical representation (enum inserts encode through the append-only
// dictionary), without clearing the delta: the checkpoint paths hand the
// parts either to Table.AppendFragment (in-memory) or to the ColumnBM
// write-back (disk), then call ClearInserts once the rows are durably part
// of the base. done=false is returned without changes when a dictionary has
// outgrown its column's code width — callers fall back to the merged scan
// or a full Reorganize. With no pending inserts it returns (nil, true, nil).
func (s *Store) Parts() (parts []any, done bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return partsFrom(s.table.Cols, s.ins, s.nIns)
}

// ClearInserts drops the entire insert delta (after the caller has absorbed
// the Parts into base fragments). The deletion list is untouched, and baseN
// advances by the absorbed count so row ids are preserved.
func (s *Store) ClearInserts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clearInsertsLocked(s.nIns)
}

// ClearInsertsN absorbs the first n delta rows into the base: they become
// base rows baseN..baseN+n-1 (ids unchanged) and the remaining tail shifts
// to delta indices 0..nIns-n-1 — also with unchanged ids, because baseN
// grows by exactly n. The tail is copied into fresh buffers so slices
// captured by concurrent Snapshots stay valid.
func (s *Store) ClearInsertsN(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.nIns {
		n = s.nIns
	}
	if n <= 0 {
		return
	}
	s.clearInsertsLocked(n)
}

func (s *Store) clearInsertsLocked(n int) {
	for i := range s.ins {
		c := &s.ins[i]
		nc := deltaCol{name: c.name, typ: c.typ, physical: c.physical}
		switch c.physical {
		case vector.Bool:
			nc.bools = append([]bool(nil), c.bools[n:]...)
		case vector.UInt8:
			nc.u8s = append([]uint8(nil), c.u8s[n:]...)
		case vector.UInt16:
			nc.u16s = append([]uint16(nil), c.u16s[n:]...)
		case vector.Int32:
			nc.i32s = append([]int32(nil), c.i32s[n:]...)
		case vector.Int64:
			nc.i64s = append([]int64(nil), c.i64s[n:]...)
		case vector.Float64:
			nc.f64s = append([]float64(nil), c.f64s[n:]...)
		case vector.String:
			nc.strs = append([]string(nil), c.strs[n:]...)
		}
		s.ins[i] = nc
	}
	s.nIns -= n
	s.baseN += n
}

// RestoreDeleted seeds the deletion list from a persisted manifest
// (attach-time recovery of a disk table's checkpointed deletions).
func (s *Store) RestoreDeleted(ids []int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if int(id) >= 0 && int(id) < s.baseN+s.nIns {
			s.deleted[id] = struct{}{}
		}
	}
}

// Rebase swings the store onto a rewritten base at a compaction cutover:
// newBaseN is the compacted base row count, deleted is the deletion set
// already remapped into the new id space (nil for none), and tail holds the
// boxed rows inserted after the compaction snapshot, re-appended in order
// so they receive the ids the caller's remap assigned them.
func (s *Store) Rebase(newBaseN int, deleted map[int32]struct{}, tail [][]any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.baseN = newBaseN
	if deleted == nil {
		deleted = make(map[int32]struct{})
	}
	s.deleted = deleted
	for i := range s.ins {
		s.ins[i] = deltaCol{name: s.ins[i].name, typ: s.ins[i].typ, physical: s.ins[i].physical}
	}
	s.nIns = 0
	for _, row := range tail {
		if _, err := s.insertLocked(row); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot is an immutable view of a delta store at one instant: the base
// row count, the insert-delta prefix, and a copy of the deletion set.
// Because delta buffers are append-only and ClearInsertsN copies surviving
// tails into fresh buffers, the captured slice headers stay valid no matter
// what the live store does afterwards. Scans pin one per table so a query
// sees a single consistent view across a concurrent checkpoint.
type Snapshot struct {
	baseN   int
	nIns    int
	deleted map[int32]struct{}
	cols    []deltaCol
}

// Snapshot captures an immutable view of the store's current state.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	del := make(map[int32]struct{}, len(s.deleted))
	for id := range s.deleted {
		del[id] = struct{}{}
	}
	cols := make([]deltaCol, len(s.ins))
	copy(cols, s.ins)
	for i := range cols {
		clampCol(&cols[i], s.nIns)
	}
	return &Snapshot{baseN: s.baseN, nIns: s.nIns, deleted: del, cols: cols}
}

// clampCol caps the populated slice at n with a full slice expression so an
// append through the live store can never write into the captured view.
func clampCol(c *deltaCol, n int) {
	switch c.physical {
	case vector.Bool:
		c.bools = c.bools[:n:n]
	case vector.UInt8:
		c.u8s = c.u8s[:n:n]
	case vector.UInt16:
		c.u16s = c.u16s[:n:n]
	case vector.Int32:
		c.i32s = c.i32s[:n:n]
	case vector.Int64:
		c.i64s = c.i64s[:n:n]
	case vector.Float64:
		c.f64s = c.f64s[:n:n]
	case vector.String:
		c.strs = c.strs[:n:n]
	}
}

// BaseN returns the snapshot's base row count.
func (sn *Snapshot) BaseN() int { return sn.baseN }

// NumDeltaRows returns the number of insert-delta rows in the snapshot.
func (sn *Snapshot) NumDeltaRows() int { return sn.nIns }

// NumDeleted returns the size of the snapshot's deletion list.
func (sn *Snapshot) NumDeleted() int { return len(sn.deleted) }

// NumRows returns the visible row count of the snapshot.
func (sn *Snapshot) NumRows() int { return sn.baseN + sn.nIns - len(sn.deleted) }

// IsDeleted reports whether a row id is deleted in the snapshot.
func (sn *Snapshot) IsDeleted(rowID int32) bool {
	_, ok := sn.deleted[rowID]
	return ok
}

// DeltaValue returns the boxed logical value of snapshot delta row j for
// column index ci.
func (sn *Snapshot) DeltaValue(ci, j int) any { return deltaValue(&sn.cols[ci], j) }

// DeltaVector returns snapshot delta rows [lo:hi) of column ci as a
// logical-typed vector.
func (sn *Snapshot) DeltaVector(ci, lo, hi int) *vector.Vector {
	return deltaVector(&sn.cols[ci], lo, hi)
}

// DeltaRow returns snapshot delta row j as one boxed value per column.
func (sn *Snapshot) DeltaRow(j int) []any { return rowOf(sn.cols, j) }

// LiveRowIDs returns the snapshot's visible row ids in ascending order.
func (sn *Snapshot) LiveRowIDs() []int32 {
	return liveIDs(sn.baseN+sn.nIns, sn.deleted, sn.NumRows())
}

// SortedDeleted returns the snapshot's deletion list in ascending order.
func (sn *Snapshot) SortedDeleted() []int32 { return sortedSet(sn.deleted) }

// Parts encodes the snapshot's insert delta against the given column set
// (the columns the fragments will be appended to — enum inserts encode
// through those columns' live dictionaries, which are append-only, so codes
// assigned here stay valid at cutover). Same contract as Store.Parts.
func (sn *Snapshot) Parts(cols []*colstore.Column) (parts []any, done bool, err error) {
	return partsFrom(cols, sn.cols, sn.nIns)
}

// Reorganize rewrites the base table to absorb all deltas: deleted base rows
// are dropped, delta rows are appended, and the deltas are cleared. Enum
// columns are re-encoded (dictionaries may have grown). The new column set
// is assembled off to the side and swapped in as one slice assignment, so
// callers that serialize Reorganize against snapshot capture (core does,
// via its snapshot lock) never expose a half-rewritten table.
func (s *Store) Reorganize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.table
	live := liveIDs(s.baseN+s.nIns, s.deleted, s.baseN+s.nIns-len(s.deleted))
	cols, err := rebuildCols(t.Cols, s.ins, live, s.baseN)
	if err != nil {
		return fmt.Errorf("delta: reorganize %s: %w", t.Name, err)
	}
	t.Cols = cols
	t.N = len(live)
	// The rewrite leaves every column memory-resident in one fragment, so
	// chunk alignment no longer applies.
	t.ChunkRows = 0
	s.baseN = len(live)
	s.deleted = make(map[int32]struct{})
	for i := range s.ins {
		s.ins[i] = deltaCol{name: s.ins[i].name, typ: s.ins[i].typ, physical: s.ins[i].physical}
	}
	s.nIns = 0
	return nil
}

// BuildCompacted builds a fully reorganized copy of a table from a frozen
// column set and a delta snapshot, without touching the live table: deleted
// rows dropped, snapshot delta rows appended, enum columns re-encoded with
// fresh dictionaries. It returns the new table (single memory-resident
// fragment per column) and the surviving row ids in the OLD id space, in
// the order they occupy the new table — the remap compaction cutover needs.
// The background compactor runs this off the write path; only the cutover
// itself needs the exclusive lock.
func BuildCompacted(name string, cols []*colstore.Column, snap *Snapshot) (*colstore.Table, []int32, error) {
	live := snap.LiveRowIDs()
	nt := colstore.NewTable(name)
	newCols, err := rebuildCols(cols, snap.cols, live, snap.baseN)
	if err != nil {
		return nil, nil, fmt.Errorf("delta: compact %s: %w", name, err)
	}
	nt.Cols = newCols
	nt.N = len(live)
	return nt, live, nil
}

// rebuildCols materializes a reorganized column set: live base rows (ids <
// baseN) gathered from the old columns, delta rows (ids >= baseN) from the
// insert buffers. The old columns are only read, never mutated.
func rebuildCols(cols []*colstore.Column, ins []deltaCol, live []int32, baseN int) ([]*colstore.Column, error) {
	out := make([]*colstore.Column, len(cols))
	for ci, col := range cols {
		// Materialize the base column up front with a returned error: the
		// fragments may live on disk, and a corrupt chunk must surface as an
		// error, not a panic from Data().
		if _, err := col.Pin(); err != nil {
			return nil, fmt.Errorf("column %s: %w", col.Name, err)
		}
		if col.IsEnum() {
			nt := colstore.NewTable("tmp")
			if col.Dict.Typ == vector.Float64 {
				vals := make([]float64, 0, len(live))
				for _, id := range live {
					if int(id) < baseN {
						vals = append(vals, col.DecodedValue(int(id)).(float64))
					} else {
						vals = append(vals, deltaValue(&ins[ci], int(id)-baseN).(float64))
					}
				}
				if err := nt.AddEnumF64Column(col.Name, vals); err != nil {
					return nil, err
				}
			} else {
				vals := make([]string, 0, len(live))
				for _, id := range live {
					if int(id) < baseN {
						vals = append(vals, col.DecodedValue(int(id)).(string))
					} else {
						vals = append(vals, deltaValue(&ins[ci], int(id)-baseN).(string))
					}
				}
				if err := nt.AddEnumColumn(col.Name, vals); err != nil {
					return nil, err
				}
			}
			out[ci] = nt.Cols[0]
			continue
		}
		newData, err := rebuildPlain(col, &ins[ci], live, baseN)
		if err != nil {
			return nil, err
		}
		nt := colstore.NewTable("tmp")
		if err := nt.AddColumn(col.Name, col.Typ, newData); err != nil {
			return nil, err
		}
		out[ci] = nt.Cols[0]
	}
	return out, nil
}

func rebuildPlain(col *colstore.Column, dc *deltaCol, live []int32, baseN int) (any, error) {
	switch dc.physical {
	case vector.Bool:
		base := col.Data().([]bool)
		out := make([]bool, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.bools[int(id)-baseN])
			}
		}
		return out, nil
	case vector.UInt8:
		base := col.Data().([]uint8)
		out := make([]uint8, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.u8s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.UInt16:
		base := col.Data().([]uint16)
		out := make([]uint16, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.u16s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.Int32:
		base := col.Data().([]int32)
		out := make([]int32, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.i32s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.Int64:
		base := col.Data().([]int64)
		out := make([]int64, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.i64s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.Float64:
		base := col.Data().([]float64)
		out := make([]float64, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.f64s[int(id)-baseN])
			}
		}
		return out, nil
	case vector.String:
		base := col.Data().([]string)
		out := make([]string, 0, len(live))
		for _, id := range live {
			if int(id) < baseN {
				out = append(out, base[id])
			} else {
				out = append(out, dc.strs[int(id)-baseN])
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("delta: unsupported physical type %v", dc.physical)
}

func sortedSet(set map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedDeleted returns the deletion list in ascending order (for scans
// that subtract it positionally and for deterministic tests).
func (s *Store) SortedDeleted() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedSet(s.deleted)
}

// Checkpoint appends the insert delta as one new in-memory base fragment
// per column and clears it. Row ids are preserved: delta row baseN+j simply
// becomes base row baseN+j, so the deletion list and any materialized join
// indices stay valid. done=false is returned without changes when a
// dictionary has outgrown its column's code width (see Parts). Disk-backed
// tables checkpoint through core.Database.Checkpoint instead, which routes
// the same Parts into a ColumnBM write-back so the rows survive restarts.
func (s *Store) Checkpoint() (done bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parts, done, err := partsFrom(s.table.Cols, s.ins, s.nIns)
	if err != nil || !done || parts == nil {
		return done, err
	}
	if err := s.table.AppendFragment(parts); err != nil {
		return false, err
	}
	s.clearInsertsLocked(s.nIns)
	return true, nil
}
