package vector

// Batch is the unit of exchange between X100 operators: a set of aligned
// column vectors of the same logical length plus an optional selection
// vector.
//
// When Sel is nil, all N positions are live. When Sel is non-nil, only the
// positions it lists (strictly increasing, each < N) are live; the data
// vectors still contain the unselected values, which downstream primitives
// simply skip. This avoids copying survivors after a filter (Section 4.2 of
// the paper).
type Batch struct {
	Schema Schema
	Vecs   []*Vector
	Sel    []int32 // nil means "all N rows live"
	N      int     // physical length of each vector
}

// NewBatch allocates a batch with capacity cap values per column.
func NewBatch(schema Schema, capacity int) *Batch {
	b := &Batch{Schema: schema.Clone(), Vecs: make([]*Vector, len(schema))}
	for i, f := range schema {
		b.Vecs[i] = New(f.Type, capacity)
	}
	b.N = capacity
	return b
}

// Rows returns the number of live rows: len(Sel) if a selection vector is
// present, otherwise N.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Col returns the vector of the named column, or nil if absent.
func (b *Batch) Col(name string) *Vector {
	if i := b.Schema.ColIndex(name); i >= 0 {
		return b.Vecs[i]
	}
	return nil
}

// AddCol appends a column to the batch.
func (b *Batch) AddCol(name string, v *Vector) {
	b.Schema = append(b.Schema, Field{Name: name, Type: v.Typ})
	b.Vecs = append(b.Vecs, v)
}

// Compact materializes the selection vector: survivors are gathered into
// fresh dense vectors and Sel is cleared. Operators that need contiguous
// data (e.g. Order) call this; most do not.
func (b *Batch) Compact() {
	if b.Sel == nil {
		return
	}
	for i, v := range b.Vecs {
		out := New(v.Typ, len(b.Sel))
		out.Gather(v, b.Sel)
		b.Vecs[i] = out
	}
	b.N = len(b.Sel)
	b.Sel = nil
}

// CopyFrom replaces b's contents with a dense copy of src's live rows.
// Existing vector buffers are reused when large enough, so a consumer that
// recycles batches (the exchange operator's per-worker buffers) allocates
// only on the first few calls. After the call b owns its data: it stays
// valid when src's producer reuses src on its next Next().
func (b *Batch) CopyFrom(src *Batch) {
	if len(b.Vecs) != len(src.Vecs) {
		b.Schema = src.Schema.Clone()
		b.Vecs = make([]*Vector, len(src.Vecs))
	}
	k := src.Rows()
	for i, v := range src.Vecs {
		if b.Vecs[i] == nil {
			b.Vecs[i] = New(v.Typ, k)
		}
		if src.Sel != nil {
			b.Vecs[i].Gather(v, src.Sel)
		} else {
			b.Vecs[i].CopyN(v, k)
		}
		b.Vecs[i].Typ = v.Typ
	}
	b.N = k
	b.Sel = nil
}

// LiveRow returns the physical position of the i-th live row.
func (b *Batch) LiveRow(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Row materializes the i-th live row as a boxed value slice (slow path for
// result collection and tests).
func (b *Batch) Row(i int) []any {
	p := b.LiveRow(i)
	row := make([]any, len(b.Vecs))
	for c, v := range b.Vecs {
		row[c] = v.Value(p)
	}
	return row
}

// Bytes returns the total live payload size of the batch, for bandwidth
// accounting.
func (b *Batch) Bytes() int {
	total := 0
	for _, v := range b.Vecs {
		total += v.Bytes()
	}
	return total
}
