// Package vector provides the typed columnar vectors and batches that form
// the unit of data exchange in the X100 vectorized execution engine.
//
// A Vector is a small (default 1024 values) typed array of a single column's
// values. A Batch groups aligned vectors for several columns together with an
// optional selection vector listing the positions that survived a selection.
// Keeping data vectors intact and carrying a separate selection vector is the
// core X100 trick: after a filter, downstream primitives iterate only the
// selected positions without copying (Boncz et al., CIDR 2005, Section 4.2).
package vector

import "fmt"

// Type identifies the logical type of a vector or column.
type Type uint8

// Supported logical types. Date is physically an int32 (days since
// 1970-01-01); Enum8/Enum16 are dictionary-encoded strings whose codes are
// physically uint8/uint16 with the dictionary kept by the storage layer.
const (
	Unknown Type = iota
	Bool
	UInt8
	UInt16
	Int32
	Int64
	Float64
	String
	Date
)

// String returns the lower-case name of the type as used by the algebra
// parser and EXPLAIN output.
func (t Type) String() string {
	switch t {
	case Bool:
		return "bool"
	case UInt8:
		return "uint8"
	case UInt16:
		return "uint16"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Date:
		return "date"
	default:
		return "unknown"
	}
}

// ParseType converts a type name to a Type. It is the inverse of
// Type.String.
func ParseType(s string) (Type, error) {
	switch s {
	case "bool":
		return Bool, nil
	case "uint8":
		return UInt8, nil
	case "uint16":
		return UInt16, nil
	case "int32":
		return Int32, nil
	case "int64":
		return Int64, nil
	case "float64", "double", "flt":
		return Float64, nil
	case "string", "str":
		return String, nil
	case "date":
		return Date, nil
	default:
		return Unknown, fmt.Errorf("vector: unknown type %q", s)
	}
}

// Width returns the in-memory width in bytes of one value of the type.
// Strings report the slice-header size (16) plus average payload is
// accounted separately by the bandwidth tracer.
func (t Type) Width() int {
	switch t {
	case Bool, UInt8:
		return 1
	case UInt16:
		return 2
	case Int32, Date:
		return 4
	case Int64, Float64:
		return 8
	case String:
		return 16
	default:
		return 0
	}
}

// IsNumeric reports whether arithmetic primitives exist for the type.
func (t Type) IsNumeric() bool {
	switch t {
	case UInt8, UInt16, Int32, Int64, Float64, Date:
		return true
	default:
		return false
	}
}

// Physical returns the physical storage type: Date degrades to Int32,
// everything else is itself.
func (t Type) Physical() Type {
	if t == Date {
		return Int32
	}
	return t
}

// Field describes one column of a schema: a name and a logical type.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of named, typed columns.
type Schema []Field

// ColIndex returns the position of the named column, or -1 if absent.
func (s Schema) ColIndex(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the field with the given name.
func (s Schema) Field(name string) (Field, bool) {
	if i := s.ColIndex(name); i >= 0 {
		return s[i], true
	}
	return Field{}, false
}

// String renders the schema as "(name:type, ...)".
func (s Schema) String() string {
	out := "("
	for i, f := range s {
		if i > 0 {
			out += ", "
		}
		out += f.Name + ":" + f.Type.String()
	}
	return out + ")"
}

// Clone returns an independent copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}
