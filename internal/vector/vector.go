package vector

import "fmt"

// DefaultBatchSize is the default number of values per vector. The paper
// finds the sweet spot around 1000 values (Figure 10); 1024 keeps vectors
// comfortably inside L1/L2 caches for typical query widths.
const DefaultBatchSize = 1024

// Vector is a typed column fragment of up to the batch size values.
// Exactly one of the typed slices is in use, selected by Typ. Hot loops in
// the primitives package extract the typed slice once per vector (not per
// value), so the dynamic dispatch cost is amortized over the whole vector.
type Vector struct {
	Typ  Type
	data any
}

// New allocates a vector of the given logical type with capacity n.
func New(t Type, n int) *Vector {
	v := &Vector{Typ: t}
	switch t.Physical() {
	case Bool:
		v.data = make([]bool, n)
	case UInt8:
		v.data = make([]uint8, n)
	case UInt16:
		v.data = make([]uint16, n)
	case Int32:
		v.data = make([]int32, n)
	case Int64:
		v.data = make([]int64, n)
	case Float64:
		v.data = make([]float64, n)
	case String:
		v.data = make([]string, n)
	default:
		panic(fmt.Sprintf("vector: cannot allocate vector of type %v", t))
	}
	return v
}

// FromAny wraps an existing typed slice in a Vector. The slice is not
// copied; it must be one of the supported physical slice types.
func FromAny(t Type, data any) *Vector {
	v := &Vector{Typ: t, data: data}
	v.Len() // validates the dynamic type
	return v
}

// FromInt32s, FromInt64s, FromFloat64s, FromStrings, FromBools, FromUint8s
// and FromUint16s wrap a typed slice without copying.
func FromInt32s(s []int32) *Vector     { return &Vector{Typ: Int32, data: s} }
func FromInt64s(s []int64) *Vector     { return &Vector{Typ: Int64, data: s} }
func FromFloat64s(s []float64) *Vector { return &Vector{Typ: Float64, data: s} }
func FromStrings(s []string) *Vector   { return &Vector{Typ: String, data: s} }
func FromBools(s []bool) *Vector       { return &Vector{Typ: Bool, data: s} }
func FromUint8s(s []uint8) *Vector     { return &Vector{Typ: UInt8, data: s} }
func FromUint16s(s []uint16) *Vector   { return &Vector{Typ: UInt16, data: s} }

// FromDates wraps a slice of day numbers as a Date vector.
func FromDates(s []int32) *Vector { return &Vector{Typ: Date, data: s} }

// Len returns the number of values currently in the vector.
func (v *Vector) Len() int {
	switch d := v.data.(type) {
	case []bool:
		return len(d)
	case []uint8:
		return len(d)
	case []uint16:
		return len(d)
	case []int32:
		return len(d)
	case []int64:
		return len(d)
	case []float64:
		return len(d)
	case []string:
		return len(d)
	default:
		panic(fmt.Sprintf("vector: unsupported payload %T", v.data))
	}
}

// Slice restricts the vector to [lo:hi) in place and returns it. The
// underlying array is shared.
func (v *Vector) Slice(lo, hi int) *Vector {
	switch d := v.data.(type) {
	case []bool:
		return &Vector{Typ: v.Typ, data: d[lo:hi]}
	case []uint8:
		return &Vector{Typ: v.Typ, data: d[lo:hi]}
	case []uint16:
		return &Vector{Typ: v.Typ, data: d[lo:hi]}
	case []int32:
		return &Vector{Typ: v.Typ, data: d[lo:hi]}
	case []int64:
		return &Vector{Typ: v.Typ, data: d[lo:hi]}
	case []float64:
		return &Vector{Typ: v.Typ, data: d[lo:hi]}
	case []string:
		return &Vector{Typ: v.Typ, data: d[lo:hi]}
	default:
		panic(fmt.Sprintf("vector: unsupported payload %T", v.data))
	}
}

// Bools returns the underlying []bool; it panics if the physical type
// differs. The same contract applies to the other typed accessors.
func (v *Vector) Bools() []bool       { return v.data.([]bool) }
func (v *Vector) UInt8s() []uint8     { return v.data.([]uint8) }
func (v *Vector) UInt16s() []uint16   { return v.data.([]uint16) }
func (v *Vector) Int32s() []int32     { return v.data.([]int32) }
func (v *Vector) Int64s() []int64     { return v.data.([]int64) }
func (v *Vector) Float64s() []float64 { return v.data.([]float64) }
func (v *Vector) Strings() []string   { return v.data.([]string) }

// Value returns the i-th value boxed as any (slow path: tests, row output,
// the tuple-at-a-time baseline engine).
func (v *Vector) Value(i int) any {
	switch d := v.data.(type) {
	case []bool:
		return d[i]
	case []uint8:
		return d[i]
	case []uint16:
		return d[i]
	case []int32:
		return d[i]
	case []int64:
		return d[i]
	case []float64:
		return d[i]
	case []string:
		return d[i]
	default:
		panic(fmt.Sprintf("vector: unsupported payload %T", v.data))
	}
}

// Set stores a boxed value at position i (slow path).
func (v *Vector) Set(i int, val any) {
	switch d := v.data.(type) {
	case []bool:
		d[i] = val.(bool)
	case []uint8:
		d[i] = val.(uint8)
	case []uint16:
		d[i] = val.(uint16)
	case []int32:
		d[i] = val.(int32)
	case []int64:
		d[i] = val.(int64)
	case []float64:
		d[i] = val.(float64)
	case []string:
		d[i] = val.(string)
	default:
		panic(fmt.Sprintf("vector: unsupported payload %T", v.data))
	}
}

// Float64At converts the i-th value to float64, for numeric types (slow
// path used by interpreters and tests).
func (v *Vector) Float64At(i int) float64 {
	switch d := v.data.(type) {
	case []uint8:
		return float64(d[i])
	case []uint16:
		return float64(d[i])
	case []int32:
		return float64(d[i])
	case []int64:
		return float64(d[i])
	case []float64:
		return d[i]
	default:
		panic(fmt.Sprintf("vector: Float64At on %v", v.Typ))
	}
}

// Bytes returns the memory footprint of the vector payload in bytes,
// counting string payloads at their actual length. Used by the bandwidth
// tracer.
func (v *Vector) Bytes() int {
	if s, ok := v.data.([]string); ok {
		total := 0
		for _, x := range s {
			total += len(x)
		}
		return total + 16*len(s)
	}
	return v.Len() * v.Typ.Width()
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	out := New(v.Typ, v.Len())
	switch d := v.data.(type) {
	case []bool:
		copy(out.data.([]bool), d)
	case []uint8:
		copy(out.data.([]uint8), d)
	case []uint16:
		copy(out.data.([]uint16), d)
	case []int32:
		copy(out.data.([]int32), d)
	case []int64:
		copy(out.data.([]int64), d)
	case []float64:
		copy(out.data.([]float64), d)
	case []string:
		copy(out.data.([]string), d)
	}
	return out
}

// CopyN copies the first n values of src into v, resizing v to n and
// reusing its buffer when large enough. v and src must share a physical
// type.
func (v *Vector) CopyN(src *Vector, n int) {
	switch d := src.data.(type) {
	case []bool:
		dst := ensureCap(v.data.([]bool), n)
		copy(dst, d[:n])
		v.data = dst
	case []uint8:
		dst := ensureCap(v.data.([]uint8), n)
		copy(dst, d[:n])
		v.data = dst
	case []uint16:
		dst := ensureCap(v.data.([]uint16), n)
		copy(dst, d[:n])
		v.data = dst
	case []int32:
		dst := ensureCap(v.data.([]int32), n)
		copy(dst, d[:n])
		v.data = dst
	case []int64:
		dst := ensureCap(v.data.([]int64), n)
		copy(dst, d[:n])
		v.data = dst
	case []float64:
		dst := ensureCap(v.data.([]float64), n)
		copy(dst, d[:n])
		v.data = dst
	case []string:
		dst := ensureCap(v.data.([]string), n)
		copy(dst, d[:n])
		v.data = dst
	default:
		panic(fmt.Sprintf("vector: unsupported payload %T", src.data))
	}
	v.Typ = src.Typ
}

// Gather copies the values of src at the given positions into v, resizing v
// to len(sel). v and src must share a physical type.
func (v *Vector) Gather(src *Vector, sel []int32) {
	switch d := src.data.(type) {
	case []bool:
		dst := ensureCap(v.data.([]bool), len(sel))
		for j, i := range sel {
			dst[j] = d[i]
		}
		v.data = dst
	case []uint8:
		dst := ensureCap(v.data.([]uint8), len(sel))
		for j, i := range sel {
			dst[j] = d[i]
		}
		v.data = dst
	case []uint16:
		dst := ensureCap(v.data.([]uint16), len(sel))
		for j, i := range sel {
			dst[j] = d[i]
		}
		v.data = dst
	case []int32:
		dst := ensureCap(v.data.([]int32), len(sel))
		for j, i := range sel {
			dst[j] = d[i]
		}
		v.data = dst
	case []int64:
		dst := ensureCap(v.data.([]int64), len(sel))
		for j, i := range sel {
			dst[j] = d[i]
		}
		v.data = dst
	case []float64:
		dst := ensureCap(v.data.([]float64), len(sel))
		for j, i := range sel {
			dst[j] = d[i]
		}
		v.data = dst
	case []string:
		dst := ensureCap(v.data.([]string), len(sel))
		for j, i := range sel {
			dst[j] = d[i]
		}
		v.data = dst
	default:
		panic(fmt.Sprintf("vector: unsupported payload %T", src.data))
	}
	v.Typ = src.Typ
}

// Data returns the payload of v as a typed slice; it panics if the
// physical element type is not T. Generic code (the expression compiler)
// uses it to extract slices once per vector before entering its hot loop.
func Data[T any](v *Vector) []T { return v.data.([]T) }

func ensureCap[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
