package vector

import (
	"testing"
	"testing/quick"
)

func TestTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{Bool, UInt8, UInt16, Int32, Int64, Float64, String, Date} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if got != typ {
			t.Errorf("round trip %v -> %v", typ, got)
		}
	}
	if _, err := ParseType("nope"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestTypeProperties(t *testing.T) {
	if Date.Physical() != Int32 {
		t.Error("date must be physically int32")
	}
	if !Date.IsNumeric() || String.IsNumeric() || Bool.IsNumeric() {
		t.Error("numeric classification wrong")
	}
	if Int64.Width() != 8 || Int32.Width() != 4 || UInt8.Width() != 1 || String.Width() != 16 {
		t.Error("widths wrong")
	}
}

func TestNewAndAccessors(t *testing.T) {
	for _, typ := range []Type{Bool, UInt8, UInt16, Int32, Int64, Float64, String, Date} {
		v := New(typ, 5)
		if v.Len() != 5 {
			t.Fatalf("%v: len %d", typ, v.Len())
		}
	}
	v := FromInt64s([]int64{1, 2, 3})
	if v.Len() != 3 || v.Int64s()[2] != 3 {
		t.Fatal("FromInt64s")
	}
	if v.Value(1).(int64) != 2 {
		t.Fatal("Value")
	}
	v.Set(1, int64(42))
	if v.Int64s()[1] != 42 {
		t.Fatal("Set")
	}
	if Data[int64](v)[0] != 1 {
		t.Fatal("Data")
	}
}

func TestSliceSharesBacking(t *testing.T) {
	v := FromFloat64s([]float64{1, 2, 3, 4})
	s := v.Slice(1, 3)
	if s.Len() != 2 || s.Float64s()[0] != 2 {
		t.Fatal("slice")
	}
	s.Float64s()[0] = 99
	if v.Float64s()[1] != 99 {
		t.Fatal("slice must share backing array")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := FromStrings([]string{"a", "b"})
	c := v.Clone()
	c.Strings()[0] = "z"
	if v.Strings()[0] != "a" {
		t.Fatal("clone must not share backing")
	}
}

func TestGather(t *testing.T) {
	src := FromInt32s([]int32{10, 20, 30, 40})
	dst := New(Int32, 0)
	dst.Gather(src, []int32{3, 1})
	if dst.Len() != 2 || dst.Int32s()[0] != 40 || dst.Int32s()[1] != 20 {
		t.Fatalf("gather: %v", dst.Int32s())
	}
}

func TestFloat64At(t *testing.T) {
	if FromInt32s([]int32{7}).Float64At(0) != 7 {
		t.Fatal("int32")
	}
	if FromUint8s([]uint8{3}).Float64At(0) != 3 {
		t.Fatal("uint8")
	}
	if FromFloat64s([]float64{1.5}).Float64At(0) != 1.5 {
		t.Fatal("float")
	}
}

func TestBytes(t *testing.T) {
	if FromInt64s(make([]int64, 4)).Bytes() != 32 {
		t.Fatal("int64 bytes")
	}
	s := FromStrings([]string{"ab", "c"})
	if s.Bytes() != 3+32 {
		t.Fatalf("string bytes %d", s.Bytes())
	}
}

func TestDateVector(t *testing.T) {
	v := FromDates([]int32{100, 200})
	if v.Typ != Date || v.Int32s()[1] != 200 {
		t.Fatal("dates")
	}
}

func TestBatchBasics(t *testing.T) {
	schema := Schema{{Name: "a", Type: Int64}, {Name: "b", Type: String}}
	b := NewBatch(schema, 4)
	if b.Rows() != 4 || b.N != 4 {
		t.Fatal("rows")
	}
	b.Vecs[0].Int64s()[2] = 7
	b.Vecs[1].Strings()[2] = "x"
	b.Sel = []int32{2}
	if b.Rows() != 1 {
		t.Fatal("sel rows")
	}
	if b.LiveRow(0) != 2 {
		t.Fatal("live row")
	}
	row := b.Row(0)
	if row[0].(int64) != 7 || row[1].(string) != "x" {
		t.Fatalf("row: %v", row)
	}
	if b.Col("b") == nil || b.Col("zz") != nil {
		t.Fatal("col lookup")
	}
}

func TestBatchCompact(t *testing.T) {
	schema := Schema{{Name: "a", Type: Int32}}
	b := NewBatch(schema, 4)
	copy(b.Vecs[0].Int32s(), []int32{10, 20, 30, 40})
	b.Sel = []int32{1, 3}
	b.Compact()
	if b.Sel != nil || b.N != 2 {
		t.Fatal("compact meta")
	}
	got := b.Vecs[0].Int32s()
	if got[0] != 20 || got[1] != 40 {
		t.Fatalf("compact data: %v", got)
	}
	// Compacting a dense batch is a no-op.
	b.Compact()
	if b.N != 2 {
		t.Fatal("double compact")
	}
}

func TestBatchAddCol(t *testing.T) {
	b := NewBatch(Schema{{Name: "a", Type: Int32}}, 2)
	b.AddCol("c", FromBools([]bool{true, false}))
	if b.Schema.ColIndex("c") != 1 || b.Col("c").Bools()[0] != true {
		t.Fatal("addcol")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{Name: "x", Type: Int64}, {Name: "y", Type: String}}
	if s.ColIndex("y") != 1 || s.ColIndex("z") != -1 {
		t.Fatal("colindex")
	}
	f, ok := s.Field("x")
	if !ok || f.Type != Int64 {
		t.Fatal("field")
	}
	c := s.Clone()
	c[0].Name = "q"
	if s[0].Name != "x" {
		t.Fatal("clone aliases")
	}
	if s.String() != "(x:int64, y:string)" {
		t.Fatalf("string: %s", s.String())
	}
}

// Property: Gather(src, sel) picks exactly src[sel[i]].
func TestGatherProperty(t *testing.T) {
	f := func(vals []int64, picks []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		sel := make([]int32, len(picks))
		for i, p := range picks {
			sel[i] = int32(int(p) % len(vals))
		}
		src := FromInt64s(vals)
		dst := New(Int64, 0)
		dst.Gather(src, sel)
		for i, s := range sel {
			if dst.Int64s()[i] != vals[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
