package primitives

import "unsafe"

//go:generate go run ./gen

// This file holds the handwritten building blocks shared by the generated
// width-specialized kernels (kernels_dense_gen.go, kernels_sel_gen.go):
// the unsafe pre-bounded compaction store, the SWAR lane helpers for
// word-parallel uint8 compares, and the xmx hash round.

// SWAR lane masks for 8x-uint8 words.
const (
	swarL8 = 0x0101010101010101 // low bit of every byte
	swarH8 = 0x8080808080808080 // high bit of every byte
	swarL7 = 0x7f7f7f7f7f7f7f7f // low 7 bits of every byte
)

// swarProbe is the number of leading values a SWAR select kernel processes
// by bit-extraction before deciding whether the vector is sparse enough to
// stay word-parallel. Bit-extraction emits per match, so above ~1/8
// selectivity the selectivity-independent predicated loop wins; one
// decision per vector avoids a per-word mispredicting branch.
const swarProbe = 256

// swarZeroU8 returns a mask with the MSB set in every byte lane of w that
// is exactly zero. This is the exact per-lane form: the classic
// (w-L)&^w&H detects "some byte is zero" but lets a borrow from a lower
// zero lane flag a non-zero lane.
func swarZeroU8(w uint64) uint64 {
	return ^(((w & swarL7) + swarL7) | w | swarL7)
}

// swarLTU8 returns a mask with the MSB set in every byte lane where
// x's byte < y's byte (unsigned). d computes the low-7-bit per-lane
// subtraction with the minuend MSB forced, so borrows never cross lanes:
// lane MSB of d is then "low bits of x >= low bits of y", and the
// full compare combines it with the lane MSBs of x and y.
func swarLTU8(x, y uint64) uint64 {
	d := (x | swarH8) - (y &^ swarH8)
	return ((^x & y) | (^(x ^ y) & ^d)) & swarH8
}

// storeIdx stores v at the k-th int32 slot behind p without a bounds
// check. Select kernels use it for the compaction store res[k] = v: k is
// data-dependent (it advances only on matches), so the compiler can never
// prove it in bounds, but the kernels pre-size res to the input length
// and maintain k <= i < len(res) by construction.
func storeIdx(p unsafe.Pointer, k int, v int32) {
	*(*int32)(unsafe.Add(p, uintptr(k)*4)) = v
}

// xmx is the single-multiply hash round used by every hash primitive:
// xorshift-multiply-xorshift. One multiply per value instead of mix64's
// two; combined keys get lane separation from rotl27 instead of a second
// full round.
func xmx(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 29
	return v
}

// rotl27 rotates x left by 27 bits; used to combine multi-key hashes so
// that combine(a,b) != combine(b,a).
func rotl27(x uint64) uint64 {
	return x<<27 | x>>37
}
