package primitives

import "math"

// Frozen pre-kernel implementations: the plain generic per-element loops
// (and the two-multiply mix64 hash scheme) exactly as they ran before the
// width-specialized kernel layer landed. They serve two purposes:
//
//   - differential oracles for the kernel property tests, and
//   - the "pre-PR generic loop" baseline that `x100bench -exp primitives`
//     reports kernel speedups against (BENCH_primitives.json).
//
// Nothing in the engine calls these on a query path.

const (
	refHashMult1 = 0xbf58476d1ce4e5b9
	refHashMult2 = 0x94d049bb133111eb
)

// refMix64 is the splitmix64 finalizer the hash primitives used before
// the single-multiply xmx round replaced it.
func refMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= refHashMult1
	x ^= x >> 27
	x *= refHashMult2
	x ^= x >> 31
	return x
}

// RefSelectLTColVal is the pre-kernel predicated select loop.
func RefSelectLTColVal[T Ordered](res []int32, in []T, v T, sel []int32) int {
	k := 0
	if sel != nil {
		for _, i := range sel {
			res[k] = i
			k += b2i(in[i] < v)
		}
		return k
	}
	for i := range in {
		res[k] = int32(i)
		k += b2i(in[i] < v)
	}
	return k
}

// RefSelectEQColVal is the pre-kernel predicated equality select loop.
func RefSelectEQColVal[T Ordered](res []int32, in []T, v T, sel []int32) int {
	k := 0
	if sel != nil {
		for _, i := range sel {
			res[k] = i
			k += b2i(in[i] == v)
		}
		return k
	}
	for i := range in {
		res[k] = int32(i)
		k += b2i(in[i] == v)
	}
	return k
}

// RefHashInt is the pre-kernel mix64 integer hash loop.
func RefHashInt[T ~uint8 | ~uint16 | ~int32 | ~int64](res []uint64, vals []T, sel []int32) {
	if sel != nil {
		for _, i := range sel {
			res[i] = refMix64(uint64(vals[i]) + hashSeed)
		}
		return
	}
	vals = vals[:len(res)]
	for i := range res {
		res[i] = refMix64(uint64(vals[i]) + hashSeed)
	}
}

// RefHashCombineInt is the pre-kernel mix64 hash-combine loop.
func RefHashCombineInt[T ~uint8 | ~uint16 | ~int32 | ~int64](res []uint64, vals []T, sel []int32) {
	if sel != nil {
		for _, i := range sel {
			res[i] = refMix64(res[i] ^ (uint64(vals[i]) + hashSeed))
		}
		return
	}
	vals = vals[:len(res)]
	for i := range res {
		res[i] = refMix64(res[i] ^ (uint64(vals[i]) + hashSeed))
	}
}

// RefHashFloat64 is the pre-kernel mix64 float hash loop.
func RefHashFloat64(res []uint64, vals []float64, sel []int32) {
	if sel != nil {
		for _, i := range sel {
			v := vals[i]
			if v == 0 {
				v = 0
			}
			res[i] = refMix64(math.Float64bits(v) + hashSeed)
		}
		return
	}
	vals = vals[:len(res)]
	for i := range res {
		v := vals[i]
		if v == 0 {
			v = 0
		}
		res[i] = refMix64(math.Float64bits(v) + hashSeed)
	}
}

// RefAggrSum is the pre-kernel grouped sum loop.
func RefAggrSum[A, T Number](acc []A, vals []T, groups []int32, sel []int32) {
	if sel != nil {
		for _, i := range sel {
			acc[groups[i]] += A(vals[i])
		}
		return
	}
	groups = groups[:len(vals)]
	for i := range vals {
		acc[groups[i]] += A(vals[i])
	}
}

// RefAggrCount is the pre-kernel grouped count loop.
func RefAggrCount(acc []int64, groups []int32, sel []int32, n int) {
	if sel != nil {
		for _, i := range sel {
			acc[groups[i]]++
		}
		return
	}
	groups = groups[:n]
	for i := 0; i < n; i++ {
		acc[groups[i]]++
	}
}

// RefAggrMin is the pre-kernel branchy grouped min loop (first-seen
// gating via seen flags, zero-initialized accumulators).
func RefAggrMin[T Number](acc []T, seen []bool, vals []T, groups []int32, sel []int32) {
	upd := func(i int32) {
		g := groups[i]
		if !seen[g] || vals[i] < acc[g] {
			acc[g] = vals[i]
			seen[g] = true
		}
	}
	if sel != nil {
		for _, i := range sel {
			upd(i)
		}
		return
	}
	for i := range vals {
		upd(int32(i))
	}
}

// RefAggrMax is the pre-kernel branchy grouped max loop.
func RefAggrMax[T Number](acc []T, seen []bool, vals []T, groups []int32, sel []int32) {
	upd := func(i int32) {
		g := groups[i]
		if !seen[g] || vals[i] > acc[g] {
			acc[g] = vals[i]
			seen[g] = true
		}
	}
	if sel != nil {
		for _, i := range sel {
			upd(i)
		}
		return
	}
	for i := range vals {
		upd(int32(i))
	}
}

// RefMapMulColCol is the pre-kernel per-element multiply loop.
func RefMapMulColCol[T Number](res, a, b []T, sel []int32) {
	if sel != nil {
		for _, i := range sel {
			res[i] = a[i] * b[i]
		}
		return
	}
	a = a[:len(res)]
	b = b[:len(res)]
	for i := range res {
		res[i] = a[i] * b[i]
	}
}
